"""Self-tests for the custom linters (check_layering / check_determinism).

Each test builds a small fixture tree (or fixture file) that must pass or
fail the checker, so the linters themselves are regression-guarded. Runs
under the stdlib runner (no pytest dependency in the container/CI image):

    python3 -m unittest discover -s tools/tests -v

and is also collectable by pytest where available.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir))
import check_determinism  # noqa: E402
import check_layering  # noqa: E402
import vanet_lint  # noqa: E402


def write_tree(root, files):
    for rel, text in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)


class LayeringTest(unittest.TestCase):
    def scan(self, files):
        with tempfile.TemporaryDirectory() as root:
            write_tree(root, files)
            violations, _ = check_layering.scan_tree(root)
            return violations

    def test_downward_edges_pass(self):
        violations = self.scan({
            "core/vec2.h": "#pragma once\n",
            "map/graph.h": '#include "core/vec2.h"\n',
            "mobility/model.h": '#include "map/graph.h"\n'
                                '#include "core/vec2.h"\n',
            "net/net.h": '#include "mobility/model.h"\n'
                         '#include "analysis/stats.h"\n',
            "routing/proto.h": '#include "net/net.h"\n',
            "sim/scenario.h": '#include "routing/proto.h"\n',
            "analysis/stats.h": '#include "core/vec2.h"\n',
        })
        self.assertEqual(violations, [])

    def test_upward_edge_fails_with_rule_name(self):
        violations = self.scan({
            "mobility/model.h": '#include "routing/proto.h"\n',
        })
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].rule, "layering")
        self.assertEqual(violations[0].line, 1)
        self.assertIn("'mobility' -> 'routing'", violations[0].message)

    def test_core_must_not_include_anything(self):
        violations = self.scan({
            "core/simulator.h": '#include "analysis/stats.h"\n',
        })
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].rule, "layering")

    def test_same_layer_and_bare_includes_pass(self):
        violations = self.scan({
            "net/a.h": '#include "net/b.h"\n#include "b.h"\n',
            "net/b.h": "#pragma once\n",
        })
        self.assertEqual(violations, [])

    def test_unknown_layer_fails(self):
        violations = self.scan({"plugins/x.h": "#pragma once\n"})
        self.assertEqual(len(violations), 1)
        self.assertIn("unknown layer 'plugins'", violations[0].message)

    def test_suppression_with_reason_passes(self):
        violations = self.scan({
            "mobility/model.h":
                '#include "routing/proto.h"  '
                '// NOLINT-vanet(layering): transitional, tracked in #42\n',
        })
        self.assertEqual(violations, [])

    def test_suppression_on_previous_line_passes(self):
        violations = self.scan({
            "mobility/model.h":
                '// NOLINT-vanet(layering): transitional, tracked in #42\n'
                '#include "routing/proto.h"\n',
        })
        self.assertEqual(violations, [])

    def test_suppression_without_reason_fails(self):
        violations = self.scan({
            "mobility/model.h":
                '#include "routing/proto.h"  // NOLINT-vanet(layering)\n',
        })
        self.assertEqual(len(violations), 1)
        self.assertIn("missing its ': <reason>'", violations[0].message)

    def test_unknown_rule_in_suppression_fails(self):
        violations = self.scan({
            "core/x.h": "// NOLINT-vanet(laering): typo'd rule\nint x;\n",
        })
        self.assertEqual(len(violations), 1)
        self.assertIn("unknown rule 'laering'", violations[0].message)

    def test_wrong_rule_does_not_suppress(self):
        violations = self.scan({
            "mobility/model.h":
                '#include "routing/proto.h"  '
                '// NOLINT-vanet(unordered-iter): wrong rule for this site\n',
        })
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].rule, "layering")


class DeterminismTest(unittest.TestCase):
    def check(self, text, rel_path="sim/x.cpp", sibling_text=""):
        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, rel_path)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            return check_determinism.check_file(
                path, rel_path=rel_path, sibling_text=sibling_text)

    def rules(self, violations):
        return sorted(v.rule for v in violations)

    def test_clean_file_passes(self):
        self.assertEqual(self.check(
            "int run(core::Rng& rng) { return rng.uniform_int(0, 5); }\n"), [])

    def test_rand_fails(self):
        self.assertEqual(self.rules(self.check(
            "int x = rand() % 6;\n")), ["raw-rand"])
        self.assertEqual(self.rules(self.check(
            "void seed() { srand(42); }\n")), ["raw-rand"])

    def test_rand_as_member_or_substring_passes(self):
        self.assertEqual(self.check("int y = rng.rand();\n"), [])
        self.assertEqual(self.check("auto s = strand(7);\n"), [])

    def test_random_device_fails_outside_core_rng(self):
        self.assertEqual(self.rules(self.check(
            "std::random_device rd;\n")), ["random-device"])

    def test_random_device_allowed_in_core_rng(self):
        self.assertEqual(self.check(
            "std::random_device rd;\n", rel_path="core/rng.cpp"), [])

    def test_wall_clock_fails(self):
        self.assertEqual(self.rules(self.check(
            "auto t = std::chrono::steady_clock::now();\n")), ["wall-clock"])
        self.assertEqual(self.rules(self.check(
            "auto t = std::time(nullptr);\n")), ["wall-clock"])
        self.assertEqual(self.rules(self.check(
            "long t = time(NULL);\n")), ["wall-clock"])

    def test_sim_time_accessor_named_clock_passes(self):
        # A member *named* clock (e.g. trace.h's trace clock accessor) is not
        # a wall-clock read.
        self.assertEqual(self.check("double clock() const { return c_; }\n"), [])
        self.assertEqual(self.check("double t = sample.clock();\n"), [])

    def test_unordered_range_for_fails(self):
        text = ("std::unordered_map<int, int> table_;\n"
                "void f() { for (const auto& [k, v] : table_) use(k, v); }\n")
        self.assertEqual(self.rules(self.check(text)), ["unordered-iter"])

    def test_unordered_begin_loop_fails(self):
        text = ("std::unordered_set<long> seen_;\n"
                "void f() { for (auto it = seen_.begin(); it != seen_.end();)"
                " it = seen_.erase(it); }\n")
        self.assertEqual(self.rules(self.check(text)), ["unordered-iter"])

    def test_unordered_lookup_passes(self):
        text = ("std::unordered_map<int, int> table_;\n"
                "int g(int k) { auto it = table_.find(k); "
                "return it == table_.end() ? 0 : it->second; }\n")
        self.assertEqual(self.check(text), [])

    def test_member_declared_in_sibling_header_fails(self):
        sibling = "std::unordered_map<int, int> table_;\n"
        text = "void f() { for (const auto& [k, v] : table_) use(k, v); }\n"
        self.assertEqual(
            self.rules(self.check(text, sibling_text=sibling)),
            ["unordered-iter"])

    def test_alias_typed_unordered_fails(self):
        text = ("using FerrySet = std::unordered_set<int>;\n"
                "FerrySet ferries_;\n"
                "void f() { for (int id : ferries_) use(id); }\n")
        self.assertEqual(self.rules(self.check(text)), ["unordered-iter"])

    def test_ordered_map_iteration_passes(self):
        text = ("std::map<int, int> table_;\n"
                "void f() { for (const auto& [k, v] : table_) use(k, v); }\n")
        self.assertEqual(self.check(text), [])

    def test_pointer_keyed_map_fails(self):
        self.assertEqual(self.rules(self.check(
            "std::map<Node*, int> rank_;\n")), ["ptr-key"])
        self.assertEqual(self.rules(self.check(
            "std::set<const Segment*> dirty_;\n")), ["ptr-key"])

    def test_id_keyed_map_passes(self):
        self.assertEqual(self.check("std::map<std::int32_t, int> rank_;\n"), [])

    def test_suppression_with_reason_passes(self):
        text = ("std::unordered_map<int, int> table_;\n"
                "// NOLINT-vanet(unordered-iter): sorted below\n"
                "void f() { for (const auto& [k, v] : table_) out.push_back(v); }\n")
        self.assertEqual(self.check(text), [])

    def test_suppression_without_reason_fails(self):
        text = ("std::unordered_map<int, int> table_;\n"
                "void f() { for (const auto& [k, v] : table_) use(v); }"
                "  // NOLINT-vanet(unordered-iter)\n")
        violations = self.check(text)
        self.assertEqual(len(violations), 1)
        self.assertIn("missing its ': <reason>'", violations[0].message)

    def test_hazard_in_comment_or_string_passes(self):
        self.assertEqual(self.check("// never call rand() here\n"), [])
        self.assertEqual(self.check(
            'const char* kMsg = "rand() is banned";\n'), [])

    def test_repo_tree_is_clean(self):
        # The committed tree must stay lint-clean — this is the same gate CI
        # runs, kept here so `unittest discover` alone catches regressions.
        repo = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir)
        total_files = 0
        for root in check_determinism._DEFAULT_ROOTS:
            violations, files = check_determinism.scan_tree(
                os.path.join(repo, root))
            self.assertEqual(violations, [], root)
            total_files += files
        self.assertGreater(total_files, 150)
        violations, edges = check_layering.scan_tree(os.path.join(repo, "src"))
        self.assertEqual(violations, [])
        self.assertGreater(len(edges), 10)


class SuppressionParsingTest(unittest.TestCase):
    def test_multi_rule_suppression(self):
        sup = vanet_lint.parse_suppressions(
            ["x;  // NOLINT-vanet(wall-clock,unordered-iter): bench-only path"])
        self.assertEqual(sup[1].rules, ("wall-clock", "unordered-iter"))
        self.assertEqual(sup[1].reason, "bench-only path")

    def test_suppression_for_scans_line_and_previous(self):
        sup = vanet_lint.parse_suppressions(
            ["// NOLINT-vanet(ptr-key): fixture", "std::map<int*, int> m;"])
        self.assertIsNotNone(vanet_lint.suppression_for(sup, 2, "ptr-key"))
        self.assertIsNone(vanet_lint.suppression_for(sup, 3, "ptr-key"))
        self.assertIsNone(vanet_lint.suppression_for(sup, 2, "layering"))


if __name__ == "__main__":
    unittest.main()
