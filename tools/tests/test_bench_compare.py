"""Self-tests for bench_compare (the bench-JSON regression gate).

Covers the run-matching key (shard-aware, backward compatible with
pre-sharding bench JSONs) and both branches of the sharded engine's
scaling-efficiency floor: enforced when the fresh document records enough
hardware threads, skipped-with-a-note when the recording machine was too
small or the row pair is absent. Runs under the stdlib runner (no pytest
dependency in the container/CI image):

    python3 -m unittest discover -s tools/tests -v
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir))
import bench_compare  # noqa: E402


def scale_row(vehicles, shards, events_per_sec, seed=1, duration=5,
              protocol="greedy"):
    return {
        "family": "scale",
        "protocol": protocol,
        "vehicles": vehicles,
        "requested_vehicles": vehicles,
        "seed": seed,
        "sim_duration_s": duration,
        "shards": shards,
        "threads": shards,
        "events_dispatched": 1000000,
        "events_per_sec": events_per_sec,
        "report_digest": "d",
    }


def runs_of(rows):
    return {bench_compare.key_of(r): r for r in rows}


class KeyOfTest(unittest.TestCase):
    def test_shards_distinguish_scale_ladder_rows(self):
        k1 = bench_compare.key_of(scale_row(50000, 1, 1e5))
        k4 = bench_compare.key_of(scale_row(50000, 4, 3e5))
        self.assertNotEqual(k1, k4)
        self.assertEqual(k1[:-1], k4[:-1])

    def test_pre_sharding_rows_default_to_serial(self):
        old = {
            "family": "manhattan",
            "vehicles": 100,
            "seed": 1,
            "sim_duration_s": 10,
        }
        new = dict(old, shards=1, threads=1, protocol="")
        self.assertEqual(bench_compare.key_of(old), bench_compare.key_of(new))


class ScalingFloorTest(unittest.TestCase):
    def floor(self, rows, hw_threads):
        return bench_compare.scaling_floor_failures(runs_of(rows), hw_threads)

    def test_enforced_and_failing_on_multicore_recording(self):
        rows = [scale_row(50000, 1, 100000.0), scale_row(50000, 4, 150000.0)]
        failures, notes = self.floor(rows, hw_threads=8)
        self.assertEqual(len(failures), 1)
        self.assertIn("1.50x", failures[0])
        self.assertIn("2.0x floor", failures[0])
        self.assertEqual(notes, [])

    def test_enforced_and_passing_on_multicore_recording(self):
        rows = [scale_row(50000, 1, 100000.0), scale_row(50000, 4, 230000.0)]
        failures, notes = self.floor(rows, hw_threads=4)
        self.assertEqual(failures, [])
        self.assertEqual(len(notes), 1)
        self.assertIn("2.30x", notes[0])

    def test_skipped_on_single_core_recording(self):
        # This repo's committed baselines: the row pair exists but the
        # machine had one hardware thread, so the floor must skip (with a
        # note), never fail.
        rows = [scale_row(50000, 1, 100000.0), scale_row(50000, 4, 90000.0)]
        failures, notes = self.floor(rows, hw_threads=1)
        self.assertEqual(failures, [])
        self.assertEqual(len(notes), 1)
        self.assertIn("hw_threads=1", notes[0])
        self.assertIn("skipped", notes[0])

    def test_skipped_when_document_predates_hw_threads(self):
        rows = [scale_row(50000, 1, 100000.0), scale_row(50000, 4, 90000.0)]
        failures, notes = self.floor(rows, hw_threads=None)
        self.assertEqual(failures, [])
        self.assertIn("skipped", notes[0])

    def test_skipped_without_the_50k_row_pair(self):
        # Smoke documents only carry the 10k @ K=4 row: no pair, no floor.
        rows = [scale_row(10000, 4, 200000.0, duration=2)]
        failures, notes = self.floor(rows, hw_threads=16)
        self.assertEqual(failures, [])
        self.assertEqual(len(notes), 1)
        self.assertIn("no scale/50000 row pair", notes[0])

    def test_other_families_never_trip_the_floor(self):
        rows = [
            dict(scale_row(50000, 1, 100000.0), family="manhattan"),
            dict(scale_row(50000, 4, 90000.0), family="manhattan"),
        ]
        failures, notes = self.floor(rows, hw_threads=8)
        self.assertEqual(failures, [])
        self.assertIn("no scale/50000 row pair", notes[0])

    def test_pairs_match_within_a_cell_only(self):
        # K=1 at seed 1 and K=4 at seed 2 are different cells: no pair.
        rows = [
            scale_row(50000, 1, 100000.0, seed=1),
            scale_row(50000, 4, 90000.0, seed=2),
        ]
        failures, notes = self.floor(rows, hw_threads=8)
        self.assertEqual(failures, [])
        self.assertIn("no scale/50000 row pair", notes[0])


if __name__ == "__main__":
    unittest.main()
