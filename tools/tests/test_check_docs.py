"""Self-tests for check_docs.py (config-key round-trip) and the
bench_compare.py warm-cache check.

Fixture-driven like test_linters.py; runs under the stdlib runner:

    python3 -m unittest discover -s tools/tests -v
"""

import os
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir))
import bench_compare  # noqa: E402
import check_docs  # noqa: E402

FAKE_CONFIG_KV = """
  num("seed", REF(seed));
  num("lifetime.memo", REF(lifetime_memo));
  num("lifetime.interp", REF(lifetime_interp));
  num("traffic.rate_pps", REF(traffic.rate_pps));
  fields.push_back(string_field("map.file", REF(map.file)));
  fields.push_back(geometry_field("zone.geometry", REF(zone_geometry)));
  fields.push_back(simtime_field("hello.interval_s", REF(hello.interval)));
  {
    Field f;
    f.key = "map.source";
  }
"""


class ConfigKeyExtractionTest(unittest.TestCase):
    def keys(self, text=FAKE_CONFIG_KV):
        with tempfile.TemporaryDirectory() as root:
            path = pathlib.Path(root) / "config_kv.cpp"
            path.write_text(text, encoding="utf-8")
            return check_docs.config_keys_of(path)

    def test_all_registration_forms_extracted(self):
        self.assertEqual(
            self.keys(),
            {
                "seed",
                "lifetime.memo",
                "lifetime.interp",
                "traffic.rate_pps",
                "map.file",
                "zone.geometry",
                "hello.interval_s",
                "map.source",
            },
        )

    def test_real_registry_contains_the_cache_keys(self):
        # Round-trip against the actual repo file: the keys this PR
        # documents must be registered.
        real = pathlib.Path(__file__).resolve().parents[2] / (
            "src/sim/config_kv.cpp"
        )
        keys = check_docs.config_keys_of(real)
        self.assertIn("lifetime.memo", keys)
        self.assertIn("lifetime.interp", keys)
        self.assertIn("density.incremental", keys)
        self.assertGreater(len(keys), 40)


class ConfigKeyRefsTest(unittest.TestCase):
    def refs(self, md_text):
        with tempfile.TemporaryDirectory() as root:
            path = pathlib.Path(root) / "doc.md"
            path.write_text(md_text, encoding="utf-8")
            return [tok for _, tok in check_docs.config_key_refs_of(path)]

    def test_plain_and_assigned_keys_are_found(self):
        self.assertEqual(
            self.refs("Set `lifetime.memo` or `--set lifetime.interp=true`.\n"),
            ["lifetime.memo", "lifetime.interp"],
        )

    def test_file_names_and_fenced_code_are_ignored(self):
        text = (
            "See `traffic.cpp` and `maps/town.csv`.\n"
            "```sh\n"
            "./cli --set lifetime.memo=false   # fenced: out of scope\n"
            "```\n"
        )
        self.assertEqual(self.refs(text), [])

    def test_non_key_shapes_are_ignored(self):
        self.assertEqual(
            self.refs("`highway.*` and `std::sort` and `Results[0].pdr`\n"),
            [],
        )


class ConfigKeyCheckTest(unittest.TestCase):
    def run_check(self, md_text):
        with tempfile.TemporaryDirectory() as root:
            kv = pathlib.Path(root) / "config_kv.cpp"
            kv.write_text(FAKE_CONFIG_KV, encoding="utf-8")
            md = pathlib.Path(root) / "doc.md"
            md.write_text(md_text, encoding="utf-8")
            return check_docs.check_config_keys([md], kv)

    def test_registered_keys_pass(self):
        refs, failures = self.run_check(
            "`lifetime.memo=false` beats `zone.geometry=route`.\n"
        )
        self.assertEqual(refs, 2)
        self.assertEqual(failures, [])

    def test_unknown_key_in_known_namespace_fails_with_location(self):
        refs, failures = self.run_check("first line\n`lifetime.memmo` typo\n")
        self.assertEqual(refs, 1)
        self.assertEqual(len(failures), 1)
        self.assertIn("doc.md:2", failures[0])
        self.assertIn("lifetime.memmo", failures[0])

    def test_foreign_namespace_is_out_of_scope(self):
        refs, failures = self.run_check("`json.dumps` is not a config key.\n")
        self.assertEqual(refs, 0)
        self.assertEqual(failures, [])


def run_row(**overrides):
    row = {
        "lifetime_memo_hits": 90_000,
        "lifetime_memo_misses": 10_000,
        "lifetime_memo_hit_rate": 0.9,
        "seg_snapshot_queries": 50_000,
        "seg_snapshot_hit_rate": 0.8,
    }
    row.update(overrides)
    return row


class BenchCacheRateTest(unittest.TestCase):
    def test_warm_rates_pass(self):
        self.assertEqual(
            bench_compare.cache_rate_failures("run", run_row(), run_row()), []
        )

    def test_small_drop_within_slack_passes(self):
        fresh = run_row(lifetime_memo_hit_rate=0.86)
        self.assertEqual(
            bench_compare.cache_rate_failures("run", run_row(), fresh), []
        )

    def test_cold_memo_fails(self):
        fresh = run_row(lifetime_memo_hit_rate=0.5)
        failures = bench_compare.cache_rate_failures("run", run_row(), fresh)
        self.assertEqual(len(failures), 1)
        self.assertIn("lifetime memo", failures[0])
        self.assertIn("90.0% -> 50.0%", failures[0])

    def test_cold_snapshot_fails(self):
        fresh = run_row(seg_snapshot_hit_rate=0.1)
        failures = bench_compare.cache_rate_failures("run", run_row(), fresh)
        self.assertEqual(len(failures), 1)
        self.assertIn("segment snapshot", failures[0])

    def test_missing_counters_skip_the_check(self):
        # Pre-cache baseline JSON has no cache fields at all.
        failures = bench_compare.cache_rate_failures(
            "run", {"events_per_sec": 1.0}, run_row(seg_snapshot_hit_rate=0.0)
        )
        self.assertEqual(failures, [])

    def test_sparse_lookups_skip_the_check(self):
        baseline = run_row()
        fresh = run_row(
            lifetime_memo_hits=5,
            lifetime_memo_misses=5,
            lifetime_memo_hit_rate=0.0,
            seg_snapshot_queries=10,
            seg_snapshot_hit_rate=0.0,
        )
        self.assertEqual(
            bench_compare.cache_rate_failures("run", baseline, fresh), []
        )


if __name__ == "__main__":
    unittest.main()
