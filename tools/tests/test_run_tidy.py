"""Self-tests for tools/run_tidy.py (no clang-tidy required).

The driver's job is plumbing: load compile_commands.json, keep only
first-party sources, fan out to the binary, and fold exit codes. These tests
exercise that plumbing with fake clang-tidy shims so they run (and run in CI)
on machines without clang-tidy installed.
"""

import json
import os
import stat
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import run_tidy


def _write_shim(path, exit_code, stdout=""):
    with open(path, "w", encoding="utf-8") as f:
        f.write("#!/bin/sh\n")
        if stdout:
            f.write(f"echo '{stdout}'\n")
        f.write(f"exit {exit_code}\n")
    os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR)


class SelectSourcesTest(unittest.TestCase):
    REPO = "/repo"

    def _db(self, files):
        return [{"directory": self.REPO, "file": f, "command": "c++ ..."}
                for f in files]

    def test_keeps_first_party_drops_tests_and_external(self):
        db = self._db([
            "src/net/network.cpp",
            "tools/vanet_cli.cpp",
            "bench/bench_micro_core.cpp",
            "examples/quickstart.cpp",
            "tests/test_experiment.cpp",          # excluded by policy
            "/usr/src/gtest/src/gtest-all.cc",    # outside the repo
        ])
        got = run_tidy.select_sources(db, self.REPO, [])
        self.assertEqual(got, sorted([
            "/repo/src/net/network.cpp",
            "/repo/tools/vanet_cli.cpp",
            "/repo/bench/bench_micro_core.cpp",
            "/repo/examples/quickstart.cpp",
        ]))

    def test_path_filters_are_substring_matches(self):
        db = self._db(["src/net/network.cpp", "src/sim/scenario.cpp"])
        got = run_tidy.select_sources(db, self.REPO, ["src/net/"])
        self.assertEqual(got, ["/repo/src/net/network.cpp"])

    def test_duplicate_entries_collapse(self):
        db = self._db(["src/net/network.cpp", "src/net/network.cpp"])
        got = run_tidy.select_sources(db, self.REPO, [])
        self.assertEqual(len(got), 1)


class DriverEndToEndTest(unittest.TestCase):
    """Run main() against a temp repo layout and fake clang-tidy binaries."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.root = self.tmp.name
        self.build = os.path.join(self.root, "build")
        os.makedirs(os.path.join(self.root, "src"))
        os.makedirs(self.build)
        src = os.path.join(self.root, "src", "a.cpp")
        with open(src, "w", encoding="utf-8") as f:
            f.write("int main() { return 0; }\n")
        with open(os.path.join(self.build, "compile_commands.json"), "w",
                  encoding="utf-8") as f:
            json.dump([{"directory": self.root, "file": "src/a.cpp",
                        "command": "c++ -c src/a.cpp"}], f)
        # select_sources anchors on the repo root derived from run_tidy's own
        # __file__; point it at the temp tree for the duration of the test.
        self._orig_file = run_tidy.__file__
        run_tidy.__file__ = os.path.join(self.root, "tools", "run_tidy.py")
        self.addCleanup(self._restore_file)

    def _restore_file(self):
        run_tidy.__file__ = self._orig_file

    def _main(self, shim_exit, stdout=""):
        shim = os.path.join(self.root, "fake_tidy")
        _write_shim(shim, shim_exit, stdout)
        return run_tidy.main(["--build-dir", self.build,
                              "--clang-tidy", shim, "--jobs", "1"])

    def test_clean_run_exits_zero(self):
        self.assertEqual(self._main(0), 0)

    def test_diagnostics_exit_nonzero(self):
        self.assertEqual(self._main(1, "src/a.cpp:1:1: error: ..."), 1)

    def test_missing_database_is_fatal(self):
        with self.assertRaises(SystemExit):
            run_tidy.main(["--build-dir", os.path.join(self.root, "nope"),
                           "--clang-tidy", "/bin/true"])

    def test_missing_binary_is_fatal(self):
        with self.assertRaises(SystemExit):
            run_tidy.main(["--build-dir", self.build,
                           "--clang-tidy", "/nonexistent/clang-tidy"])

    def test_no_matching_sources_is_fatal(self):
        shim = os.path.join(self.root, "fake_tidy")
        _write_shim(shim, 0)
        with self.assertRaises(SystemExit):
            run_tidy.main(["--build-dir", self.build, "--clang-tidy", shim,
                           "no/such/path/"])


if __name__ == "__main__":
    unittest.main()
