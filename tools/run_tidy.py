#!/usr/bin/env python3
"""clang-tidy driver over compile_commands.json.

Runs the repo's curated .clang-tidy profile (warnings are errors there) over
every first-party translation unit in the compilation database and fails on
any diagnostic. CI calls this in the lint job; locally:

    cmake -B build -S .             # CMAKE_EXPORT_COMPILE_COMMANDS is on
    python3 tools/run_tidy.py --build-dir build [--jobs N] [--fix] [paths...]

Positional `paths` filter the database (substring match against the source
path) so one file or one layer can be re-linted quickly, e.g.:

    python3 tools/run_tidy.py --build-dir build src/net/

Third-party and generated code never enters the run: only sources under
src/, tools/, bench/ and examples/ (tests/ ride on the same library but
gtest macros trip several checks; the suite is covered by the compiler
warning floor and the sanitizer legs instead).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

_FIRST_PARTY = ("src/", "tools/", "bench/", "examples/")


def load_database(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        sys.exit(f"run_tidy: {db_path} not found — configure with "
                 "cmake -B build -S . first (CMAKE_EXPORT_COMPILE_COMMANDS "
                 "is on by default in this repo)")
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


def select_sources(database, repo_root, filters):
    sources = []
    for entry in database:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, repo_root)
        if rel.startswith(".."):
            continue
        if not rel.replace(os.sep, "/").startswith(_FIRST_PARTY):
            continue
        if filters and not any(f in rel for f in filters):
            continue
        sources.append(path)
    return sorted(set(sources))


def run_one(args):
    tidy, build_dir, extra, path = args
    cmd = [tidy, "-p", build_dir, "--quiet", *extra, path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy exits nonzero when WarningsAsErrors fires; stderr carries
    # "N warnings treated as errors" noise, stdout the diagnostics.
    return path, proc.returncode, proc.stdout.strip()


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="substring filters on source paths (default: all)")
    ap.add_argument("--build-dir", default="build",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--clang-tidy", default=os.environ.get(
        "CLANG_TIDY", "clang-tidy"), help="clang-tidy binary to use")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count()))
    ap.add_argument("--fix", action="store_true",
                    help="apply clang-tidy's suggested fixes in place")
    args = ap.parse_args(argv)

    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"run_tidy: '{args.clang_tidy}' not on PATH "
                 "(set --clang-tidy or $CLANG_TIDY)")

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    database = load_database(args.build_dir)
    sources = select_sources(database, repo_root, args.paths)
    if not sources:
        sys.exit("run_tidy: no first-party sources matched")

    extra = ["--fix"] if args.fix else []
    jobs = [(args.clang_tidy, args.build_dir, extra, s) for s in sources]
    failures = 0
    # --fix must not run concurrently: two TUs touching one header would
    # race on the rewrite.
    pool_size = 1 if args.fix else args.jobs
    with multiprocessing.Pool(pool_size) as pool:
        for path, rc, output in pool.imap_unordered(run_one, jobs):
            rel = os.path.relpath(path, repo_root)
            if rc != 0:
                failures += 1
                print(f"== {rel}")
                if output:
                    print(output)
            else:
                print(f"ok {rel}")
    print(f"run_tidy: {len(sources)} translation units, "
          f"{failures} with diagnostics")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
