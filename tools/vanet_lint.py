"""Shared plumbing for the repo's custom linters.

Both checkers (`check_layering.py`, `check_determinism.py`) report violations
as `path:line: [rule] message` and honour one escape hatch:

    // NOLINT-vanet(<rule>[,<rule>...]): <reason>

placed on the offending line or on the line directly above it. The reason is
mandatory — a suppression without a written justification is itself a
violation, as is a suppression naming a rule no checker owns (catches typos).
The syntax is grep-able: `grep -rn 'NOLINT-vanet' src/` lists every opt-out
with its reason.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Every rule any vanet linter may emit or suppress. Checkers validate
# suppressions against this registry so a typo'd rule name fails loudly
# instead of silently not suppressing (or silently suppressing nothing).
KNOWN_RULES = {
    "layering",        # check_layering: #include edge violates the layer DAG
    "raw-rand",        # check_determinism: rand()/srand() anywhere in src/
    "random-device",   # check_determinism: std::random_device outside core/rng
    "wall-clock",      # check_determinism: wall-clock reads (chrono clocks, time())
    "unordered-iter",  # check_determinism: iteration over unordered containers
    "ptr-key",         # check_determinism: pointer-keyed ordered container
}

_SUPPRESS_RE = re.compile(
    r"//\s*NOLINT-vanet\(([^)]*)\)\s*(?::\s*(.*?))?\s*$"
)


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    rules: tuple
    reason: str
    line: int  # 1-based line the comment sits on


def parse_suppressions(lines):
    """Map line number -> Suppression for every NOLINT-vanet comment."""
    out = {}
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if m:
            rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
            reason = (m.group(2) or "").strip()
            out[i] = Suppression(rules=rules, reason=reason, line=i)
    return out


def suppression_for(suppressions, line, rule):
    """The suppression covering `rule` at `line` (same line or line above)."""
    for cand_line in (line, line - 1):
        s = suppressions.get(cand_line)
        if s and rule in s.rules:
            return s
    return None


def audit_suppressions(path, suppressions, owned_rules, report_unknown=False):
    """Structural violations in the suppression comments themselves.

    Always: an empty reason on a rule this checker owns. With
    `report_unknown` (exactly one checker sets it, so CI prints each typo
    once): a rule not present in KNOWN_RULES.
    """
    violations = []
    for s in suppressions.values():
        for rule in s.rules:
            if rule in owned_rules and not s.reason:
                violations.append(Violation(
                    path, s.line, rule,
                    "NOLINT-vanet suppression is missing its ': <reason>'"))
            if report_unknown and rule not in KNOWN_RULES:
                violations.append(Violation(
                    path, s.line, rule,
                    f"NOLINT-vanet names unknown rule '{rule}' "
                    f"(known: {', '.join(sorted(KNOWN_RULES))})"))
    return violations


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string literals from one line.

    Keeps the linters from matching hazards inside comments or log strings.
    Block comments spanning lines are not handled; both linters operate on
    code where that has not been an issue, and a miss fails safe (it flags,
    and the author writes a NOLINT or rewords the comment).
    """
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]
