#!/usr/bin/env python3
"""Layering linter: every `#include "..."` edge in src/ must follow the DAG.

docs/ARCHITECTURE.md declares that layers only depend downward. This checker
makes the rule machine-checked: it parses the quoted-include edges of every
translation unit under src/ and fails on any edge the dependency DAG below
does not allow. The DAG (also drawn in ARCHITECTURE.md, "Layer map"):

    core  <-  analysis, map  <-  mobility  <-  net  <-  routing  <-  sim

`analysis` and `map` are parallel leaf libraries directly above core;
everything higher may use either. A file's layer is its first path component
under src/ (src/ directory == namespace).

Escape hatch (reason mandatory, see tools/vanet_lint.py):

    #include "sim/whatever.h"  // NOLINT-vanet(layering): <why this edge>

Usage:
    python3 tools/check_layering.py [--root src] [--list-edges]

Exit status 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import vanet_lint  # noqa: E402

# layer -> layers it may include from (itself always allowed). This is the
# transitive downward closure of the ARCHITECTURE.md layer map; edit BOTH
# together when the architecture changes.
ALLOWED_DEPS = {
    "core": set(),
    "analysis": {"core"},
    "map": {"core"},
    "mobility": {"core", "analysis", "map"},
    "net": {"core", "analysis", "map", "mobility"},
    "routing": {"core", "analysis", "map", "mobility", "net"},
    "sim": {"core", "analysis", "map", "mobility", "net", "routing"},
}

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
_SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc", ".cxx")


def check_file(path, rel_layer, text=None):
    """Violations for one file whose layer is `rel_layer`."""
    if text is None:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    lines = text.splitlines()
    suppressions = vanet_lint.parse_suppressions(lines)
    violations = vanet_lint.audit_suppressions(
        path, suppressions, owned_rules={"layering"}, report_unknown=True)

    if rel_layer not in ALLOWED_DEPS:
        violations.append(vanet_lint.Violation(
            path, 1, "layering",
            f"file sits in unknown layer '{rel_layer}' — add it to "
            "ALLOWED_DEPS in tools/check_layering.py and to the "
            "ARCHITECTURE.md layer map"))
        return violations

    allowed = ALLOWED_DEPS[rel_layer] | {rel_layer}
    for lineno, line in enumerate(lines, start=1):
        m = _INCLUDE_RE.match(line)
        if not m:
            continue
        target_layer = m.group(1).split("/")[0]
        if "/" not in m.group(1):
            # A bare quoted include ("foo.h") resolves within the same
            # directory — always the file's own layer.
            continue
        if target_layer in allowed:
            continue
        if vanet_lint.suppression_for(suppressions, lineno, "layering"):
            continue
        known = target_layer in ALLOWED_DEPS
        detail = (
            f"layer '{rel_layer}' may only include from "
            f"{{{', '.join(sorted(allowed))}}}" if known else
            f"include target '{m.group(1)}' is outside the known layers")
        violations.append(vanet_lint.Violation(
            path, lineno, "layering",
            f"'{rel_layer}' -> '{target_layer}' violates the dependency DAG "
            f"({detail})"))
    return violations


def scan_tree(root):
    violations = []
    edges = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(_SOURCE_EXTS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            parts = rel.split(os.sep)
            if len(parts) < 2:
                # Files directly under root have no layer; nothing to check.
                continue
            layer = parts[0]
            violations.extend(check_file(path, layer))
            with open(path, encoding="utf-8") as f:
                for line in f:
                    m = _INCLUDE_RE.match(line)
                    if m and "/" in m.group(1):
                        tgt = m.group(1).split("/")[0]
                        if tgt != layer:
                            edges.add((layer, tgt))
    return violations, edges


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default="src", help="tree to scan (default: src)")
    ap.add_argument("--list-edges", action="store_true",
                    help="print the observed cross-layer include edges")
    args = ap.parse_args(argv)

    if not os.path.isdir(args.root):
        print(f"check_layering: no such directory: {args.root}", file=sys.stderr)
        return 2

    violations, edges = scan_tree(args.root)
    if args.list_edges:
        for src_layer, dst_layer in sorted(edges):
            print(f"{src_layer} -> {dst_layer}")
    for v in violations:
        print(v)
    if violations:
        print(f"check_layering: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"check_layering: OK ({len(edges)} cross-layer edges conform to the DAG)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
