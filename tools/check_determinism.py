#!/usr/bin/env python3
"""Determinism linter: ban nondeterminism hazards in src/.

Same seed => bit-identical run is part of every interface in this repo
(docs/ARCHITECTURE.md, "Determinism is part of every interface"): golden
report digests and serial==parallel aggregation both rest on it. This checker
bans the constructs that silently break it:

  raw-rand        rand()/srand() anywhere — all randomness goes through the
                  named streams of core/rng (RngManager).
  random-device   std::random_device outside core/rng.* — nondeterministic
                  seeding invalidates fixed-seed reproduction.
  wall-clock      wall-clock reads (std::chrono system/steady/high_resolution
                  clocks, time(), clock(), gettimeofday, clock_gettime)
                  outside core/rng.* — sim logic must use SimTime only.
  unordered-iter  iteration (range-for or .begin()) over a container declared
                  as std::unordered_map/set/multimap/multiset — iteration
                  order is stdlib-specific, so anything it feeds (packet
                  contents, event ordering, digests) becomes implementation-
                  defined. Sort the output or iterate a deterministic index.
  ptr-key         std::map/set keyed on a pointer type — ordering follows the
                  allocator, which varies run to run.

Detection is line-based and heuristic (multi-line declarations can escape the
unordered-iter net); it is a ratchet, not a proof. Escape hatch (reason
mandatory, validated, grep-able — see tools/vanet_lint.py):

    for (const auto& [id, info] : map_) {  // NOLINT-vanet(unordered-iter): sorted below

Usage:
    python3 tools/check_determinism.py [--root DIR ...]

Default roots are every C++ tree in the repo (src bench examples tools
tests): benches and the CLI feed report digests just like the library, so
they obey the same rules.

Exit status 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import vanet_lint  # noqa: E402

_SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc", ".cxx")

# Files allowed to touch entropy / wall-clock sources: the RNG subsystem
# itself (seeding policy lives there, nowhere else).
_RNG_EXEMPT_RE = re.compile(r"(^|/)core/rng\.(h|hpp|cpp|cc|cxx)$")

_PATTERN_RULES = [
    ("raw-rand",
     re.compile(r"(?<![\w.:>])s?rand\s*\("),
     "use a named core/rng stream (RngManager), never the C PRNG"),
    ("random-device",
     re.compile(r"\brandom_device\b"),
     "nondeterministic seeding breaks fixed-seed reproduction; "
     "seed through core/rng"),
    ("wall-clock",
     re.compile(r"std::chrono::(?:system_clock|steady_clock|"
                r"high_resolution_clock)\b"),
     "sim logic must be driven by SimTime, not wall-clock reads"),
    ("wall-clock",
     re.compile(r"(?:(?<!\w)::|std::)time\s*\(|"
                r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)\s*\)|"
                r"\bgettimeofday\b|\bclock_gettime\b|std::clock\b|"
                r"(?<!\w)::clock\s*\("),
     "sim logic must be driven by SimTime, not wall-clock reads"),
    ("ptr-key",
     re.compile(r"std::(?:map|set|multimap|multiset)\s*<\s*"
                r"(?:const\s+)?[\w:]+\s*\*"),
     "pointer keys order by address, which varies run to run; "
     "key on a stable id instead"),
]

_UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;={(]")
_UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[^;]*\bunordered_(?:map|set|multimap|multiset)\b")


def _unordered_names(text):
    """Names of variables/members declared with an unordered container type
    (or with a `using` alias of one) anywhere in `text`."""
    names = set()
    aliases = set()
    for m in _UNORDERED_ALIAS_RE.finditer(text):
        aliases.add(m.group(1))
    for m in _UNORDERED_DECL_RE.finditer(text):
        names.add(m.group(1))
    for alias in aliases:
        for m in re.finditer(
                r"\b" + re.escape(alias) + r"\s+(\w+)\s*[;={(]", text):
            names.add(m.group(1))
    return names


def _sibling_text(path):
    """Contents of the .h/.cpp sibling (members declared in the header are
    iterated in the .cpp and vice versa)."""
    stem, ext = os.path.splitext(path)
    siblings = {".h": (".cpp", ".cc"), ".hpp": (".cpp", ".cc"),
                ".cpp": (".h", ".hpp"), ".cc": (".h", ".hpp")}
    out = []
    for sib_ext in siblings.get(ext, ()):
        sib = stem + sib_ext
        if os.path.isfile(sib):
            with open(sib, encoding="utf-8") as f:
                out.append(f.read())
    return "\n".join(out)


def check_file(path, rel_path=None, text=None, sibling_text=None):
    if text is None:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    if sibling_text is None:
        sibling_text = _sibling_text(path)
    rel = (rel_path or path).replace(os.sep, "/")
    lines = text.splitlines()
    suppressions = vanet_lint.parse_suppressions(lines)
    owned = {"raw-rand", "random-device", "wall-clock",
             "unordered-iter", "ptr-key"}
    violations = vanet_lint.audit_suppressions(path, suppressions, owned)

    rng_exempt = bool(_RNG_EXEMPT_RE.search(rel))

    unordered = _unordered_names(text) | _unordered_names(sibling_text)
    iter_res = []
    for n in sorted(unordered):
        esc = re.escape(n)
        # Range-for over the container (possibly through a member access),
        # and explicit iterator loops anchored at .begin()/.cbegin().
        iter_res.append(re.compile(
            r"for\s*\([^;{}()]*:\s*[^;{})]*\b" + esc + r"\s*\)"))
        iter_res.append(re.compile(
            r"\b" + esc + r"\s*\.\s*c?begin\s*\("))

    for lineno, raw in enumerate(lines, start=1):
        code = vanet_lint.strip_comments_and_strings(raw)
        if not code.strip():
            continue
        for rule, pattern, advice in _PATTERN_RULES:
            if rule in ("random-device", "wall-clock") and rng_exempt:
                continue
            if pattern.search(code):
                if vanet_lint.suppression_for(suppressions, lineno, rule):
                    continue
                violations.append(vanet_lint.Violation(
                    path, lineno, rule, advice))
        for pattern in iter_res:
            if pattern.search(code):
                if vanet_lint.suppression_for(
                        suppressions, lineno, "unordered-iter"):
                    break
                violations.append(vanet_lint.Violation(
                    path, lineno, "unordered-iter",
                    "iteration order of an unordered container is "
                    "stdlib-specific; sort the result or iterate a "
                    "deterministic index"))
                break
    return violations


def scan_tree(root):
    violations = []
    files = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(_SOURCE_EXTS):
                continue
            path = os.path.join(dirpath, name)
            files += 1
            violations.extend(
                check_file(path, rel_path=os.path.relpath(path, root)))
    return violations, files


_DEFAULT_ROOTS = ["src", "bench", "examples", "tools", "tests"]


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", action="append", dest="roots", default=None,
                    help="tree(s) to scan (repeatable; default: "
                         f"{' '.join(_DEFAULT_ROOTS)})")
    args = ap.parse_args(argv)

    roots = args.roots if args.roots else _DEFAULT_ROOTS
    for root in roots:
        if not os.path.isdir(root):
            print(f"check_determinism: no such directory: {root}",
                  file=sys.stderr)
            return 2

    violations, files = [], 0
    for root in roots:
        v, f = scan_tree(root)
        violations.extend(v)
        files += f
    for v in violations:
        print(v)
    if violations:
        print(f"check_determinism: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_determinism: OK ({files} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
