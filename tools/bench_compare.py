#!/usr/bin/env python3
"""Diff a fresh bench_scenario_throughput JSON against a committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--perf-tolerance 0.15]

Runs are matched by (family, protocol, requested_vehicles, seed,
sim_duration_s); a baseline can therefore carry both the full sweep and the
CI `--smoke` rows, and the comparison uses whatever subset the fresh file
exercised. The protocol is part of the key so a family whose protocol varies
per row (map-aware) can never be compared against the wrong baseline row.

Exit status 1 (regression) when any matched run:
  - disagrees on `report_digest` or `events_dispatched` — the physics moved,
    which a perf refactor must never do (see docs/PERFORMANCE.md);
  - slowed down by more than --perf-tolerance in events/sec (default 15%);
  - reports a warm scheduler heap-fallback (`sched_oversize_callbacks` above
    0.1% of dispatched events) — the small-buffer optimisation went cold;
  - shows a geometry-cache warm hit rate (lifetime memo / segment snapshot,
    see docs/ARCHITECTURE.md "Scenario-owned caches") more than 5 points
    below the baseline rate — only enforced when both runs expose the
    counters and both saw enough lookups for the rate to mean anything.
Also fails when no runs matched at all, so a renamed config cannot silently
disable the check.

Perf numbers only compare like with like when baseline and fresh ran on the
same class of machine; the digest check is machine-independent and is the
part that must never fire.
"""

import argparse
import json
import sys


# Warm-cache regression thresholds. A cache that was never exercised (tiny
# run, or a family that does not own the cache) has a meaningless rate, so
# rates only compare when both runs saw at least MIN_CACHE_SAMPLE lookups.
CACHE_RATE_CHECKS = (
    # (label, rate field, fields summed for the lookup count)
    (
        "lifetime memo",
        "lifetime_memo_hit_rate",
        ("lifetime_memo_hits", "lifetime_memo_misses"),
    ),
    ("segment snapshot", "seg_snapshot_hit_rate", ("seg_snapshot_queries",)),
)
MIN_CACHE_SAMPLE = 1000
CACHE_RATE_SLACK = 0.05


def cache_rate_failures(name, baseline, fresh):
    """Failure strings for geometry caches that went cold vs the baseline.

    Returns [] when the counters are absent on either side (pre-cache
    baseline JSON, or a fresh build with the fields compiled out) or when
    either run saw too few lookups for a rate comparison.
    """
    out = []
    for label, rate_field, count_fields in CACHE_RATE_CHECKS:
        if rate_field not in baseline or rate_field not in fresh:
            continue
        b_lookups = sum(baseline.get(f, 0) for f in count_fields)
        f_lookups = sum(fresh.get(f, 0) for f in count_fields)
        if min(b_lookups, f_lookups) < MIN_CACHE_SAMPLE:
            continue
        if fresh[rate_field] < baseline[rate_field] - CACHE_RATE_SLACK:
            out.append(
                f"{name}: {label} went cold (warm hit rate "
                f"{baseline[rate_field]:.1%} -> {fresh[rate_field]:.1%})"
            )
    return out


def key_of(run):
    return (
        run["family"],
        # Older bench JSONs predate the protocol field; default matches any.
        run.get("protocol", ""),
        run.get("requested_vehicles", run["vehicles"]),
        run["seed"],
        run["sim_duration_s"],
    )


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("benchmark") != "scenario_throughput":
        sys.exit(f"{path}: not a scenario_throughput document")
    return {key_of(r): r for r in doc["results"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--perf-tolerance",
        type=float,
        default=0.15,
        help="max fractional events/sec regression (default: 0.15)",
    )
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    fresh = load_runs(args.fresh)

    matched = sorted(set(baseline) & set(fresh))
    if not matched:
        sys.exit(
            "bench_compare: no runs in common between "
            f"{args.baseline} and {args.fresh}"
        )
    for k in sorted(set(fresh) - set(baseline)):
        print(f"note: {k} only in fresh results (no baseline row)")

    failures = []
    for k in matched:
        b, f = baseline[k], fresh[k]
        name = "{}[{}]/{} seed={} dur={}s".format(*k)

        if f["report_digest"] != b["report_digest"]:
            failures.append(
                f"{name}: report digest {f['report_digest']} != "
                f"baseline {b['report_digest']} (PHYSICS CHANGED)"
            )
        if f["events_dispatched"] != b["events_dispatched"]:
            failures.append(
                f"{name}: events_dispatched {f['events_dispatched']} != "
                f"baseline {b['events_dispatched']}"
            )

        ratio = f["events_per_sec"] / b["events_per_sec"]
        if ratio < 1.0 - args.perf_tolerance:
            failures.append(
                f"{name}: events/sec regressed {1.0 - ratio:.1%} "
                f"({b['events_per_sec']:.0f} -> {f['events_per_sec']:.0f})"
            )

        oversize = f.get("sched_oversize_callbacks")
        if oversize is not None and f["events_dispatched"] > 0:
            rate = oversize / f["events_dispatched"]
            if rate > 1e-3:
                failures.append(
                    f"{name}: scheduler heap fallback is warm "
                    f"({oversize} oversize callbacks, {rate:.2%} of events)"
                )

        failures.extend(cache_rate_failures(name, b, f))

        print(
            f"{name}: digest ok, {f['events_per_sec']:.0f} ev/s "
            f"({ratio - 1.0:+.1%} vs baseline)"
            if not any(x.startswith(name) for x in failures)
            else f"{name}: FAILED"
        )

    if failures:
        print("\nbench_compare FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: {len(matched)} run(s) ok")


if __name__ == "__main__":
    main()
