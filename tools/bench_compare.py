#!/usr/bin/env python3
"""Diff a fresh bench_scenario_throughput JSON against a committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--perf-tolerance 0.15]

Runs are matched by (family, protocol, requested_vehicles, seed,
sim_duration_s, shards); a baseline can therefore carry both the full sweep
and the CI `--smoke` rows, and the comparison uses whatever subset the fresh
file exercised. The protocol is part of the key so a family whose protocol
varies per row (map-aware) can never be compared against the wrong baseline
row, and the shard count is part of the key so the `scale` family's K-ladder
rows (same population, different sharding) never collide.

Exit status 1 (regression) when any matched run:
  - disagrees on `report_digest` or `events_dispatched` — the physics moved,
    which a perf refactor must never do (see docs/PERFORMANCE.md);
  - slowed down by more than --perf-tolerance in events/sec (default 15%);
  - reports a warm scheduler heap-fallback (`sched_oversize_callbacks` above
    0.1% of dispatched events) — the small-buffer optimisation went cold;
  - shows a geometry-cache warm hit rate (lifetime memo / segment snapshot,
    see docs/ARCHITECTURE.md "Scenario-owned caches") more than 5 points
    below the baseline rate — only enforced when both runs expose the
    counters and both saw enough lookups for the rate to mean anything.
Also fails when no runs matched at all, so a renamed config cannot silently
disable the check.

Scaling-efficiency floor (sharded engine, docs/PERFORMANCE.md "Sharded
scaling"): when the FRESH document carries the scale family's 50k-vehicle
row at both K=1 and K=4, the K=4 row must reach at least 2x the K=1
events/sec — but only when the fresh document's recorded `hw_threads` is at
least 4. A single-core recording machine (this repo's committed baselines
included, where K=4 runs 4 worker threads on 1 core) cannot exhibit parallel
speedup, so the floor is skipped with a printed note rather than failed;
digest and events_dispatched checks still apply to every scale row
regardless, because determinism is machine-independent.

Perf numbers only compare like with like when baseline and fresh ran on the
same class of machine; the digest check is machine-independent and is the
part that must never fire.
"""

import argparse
import json
import sys


# Warm-cache regression thresholds. A cache that was never exercised (tiny
# run, or a family that does not own the cache) has a meaningless rate, so
# rates only compare when both runs saw at least MIN_CACHE_SAMPLE lookups.
CACHE_RATE_CHECKS = (
    # (label, rate field, fields summed for the lookup count)
    (
        "lifetime memo",
        "lifetime_memo_hit_rate",
        ("lifetime_memo_hits", "lifetime_memo_misses"),
    ),
    ("segment snapshot", "seg_snapshot_hit_rate", ("seg_snapshot_queries",)),
)
MIN_CACHE_SAMPLE = 1000
CACHE_RATE_SLACK = 0.05


def cache_rate_failures(name, baseline, fresh):
    """Failure strings for geometry caches that went cold vs the baseline.

    Returns [] when the counters are absent on either side (pre-cache
    baseline JSON, or a fresh build with the fields compiled out) or when
    either run saw too few lookups for a rate comparison.
    """
    out = []
    for label, rate_field, count_fields in CACHE_RATE_CHECKS:
        if rate_field not in baseline or rate_field not in fresh:
            continue
        b_lookups = sum(baseline.get(f, 0) for f in count_fields)
        f_lookups = sum(fresh.get(f, 0) for f in count_fields)
        if min(b_lookups, f_lookups) < MIN_CACHE_SAMPLE:
            continue
        if fresh[rate_field] < baseline[rate_field] - CACHE_RATE_SLACK:
            out.append(
                f"{name}: {label} went cold (warm hit rate "
                f"{baseline[rate_field]:.1%} -> {fresh[rate_field]:.1%})"
            )
    return out


# Scaling-efficiency floor for the sharded engine (scale family). The 50k
# band is the one that carries the full K-ladder in the committed sweep.
SCALING_FLOOR_VEHICLES = 50000
SCALING_FLOOR_SHARDS = 4
SCALING_FLOOR_SPEEDUP = 2.0
SCALING_FLOOR_MIN_HW_THREADS = 4


def key_of(run):
    return (
        run["family"],
        # Older bench JSONs predate the protocol field; default matches any.
        run.get("protocol", ""),
        run.get("requested_vehicles", run["vehicles"]),
        run["seed"],
        run["sim_duration_s"],
        # Pre-sharding rows predate the field and were all serial.
        run.get("shards", 1),
    )


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("benchmark") != "scenario_throughput":
        sys.exit(f"{path}: not a scenario_throughput document")
    return doc


def runs_of(doc):
    return {key_of(r): r for r in doc["results"]}


def load_runs(path):
    return runs_of(load_doc(path))


def scaling_floor_failures(runs, hw_threads):
    """(failures, notes) for the sharded engine's parallel-speedup floor.

    `runs` is the fresh document's key->run map and `hw_threads` its recorded
    hardware concurrency (None for documents that predate the field). For
    every (protocol, seed, duration) cell where the scale family's
    SCALING_FLOOR_VEHICLES row exists at both K=1 and K=SCALING_FLOOR_SHARDS,
    the sharded row must reach SCALING_FLOOR_SPEEDUP x the serial
    events/sec. Skipped — with a note, never silently — when the row pair is
    absent or the recording machine lacked the cores to show a speedup.
    """
    serial, parallel = {}, {}
    for k, run in runs.items():
        family, protocol, vehicles, seed, duration, shards = k
        if family != "scale" or vehicles != SCALING_FLOOR_VEHICLES:
            continue
        cell = (protocol, seed, duration)
        if shards == 1:
            serial[cell] = run
        elif shards == SCALING_FLOOR_SHARDS:
            parallel[cell] = run
    cells = sorted(set(serial) & set(parallel))
    if not cells:
        return [], [
            "scaling floor: no scale/%d row pair at K=1 and K=%d; skipped"
            % (SCALING_FLOOR_VEHICLES, SCALING_FLOOR_SHARDS)
        ]
    if hw_threads is None or hw_threads < SCALING_FLOOR_MIN_HW_THREADS:
        return [], [
            "scaling floor: recorded hw_threads=%s < %d; skipped "
            "(a single-core machine cannot show parallel speedup; digest "
            "checks still apply)"
            % (hw_threads, SCALING_FLOOR_MIN_HW_THREADS)
        ]
    failures, notes = [], []
    for cell in cells:
        protocol, seed, duration = cell
        s, p = serial[cell], parallel[cell]
        speedup = p["events_per_sec"] / s["events_per_sec"]
        name = "scale[%s]/%d seed=%s dur=%ss" % (
            protocol,
            SCALING_FLOOR_VEHICLES,
            seed,
            duration,
        )
        if speedup < SCALING_FLOOR_SPEEDUP:
            failures.append(
                "%s: K=%d speedup %.2fx < %.1fx floor over K=1 "
                "(%.0f -> %.0f ev/s on hw_threads=%d)"
                % (
                    name,
                    SCALING_FLOOR_SHARDS,
                    speedup,
                    SCALING_FLOOR_SPEEDUP,
                    s["events_per_sec"],
                    p["events_per_sec"],
                    hw_threads,
                )
            )
        else:
            notes.append(
                "%s: K=%d speedup %.2fx (floor %.1fx) ok"
                % (name, SCALING_FLOOR_SHARDS, speedup, SCALING_FLOOR_SPEEDUP)
            )
    return failures, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--perf-tolerance",
        type=float,
        default=0.15,
        help="max fractional events/sec regression (default: 0.15)",
    )
    args = parser.parse_args()

    baseline_doc = load_doc(args.baseline)
    fresh_doc = load_doc(args.fresh)
    baseline = runs_of(baseline_doc)
    fresh = runs_of(fresh_doc)

    matched = sorted(set(baseline) & set(fresh))
    if not matched:
        sys.exit(
            "bench_compare: no runs in common between "
            f"{args.baseline} and {args.fresh}"
        )
    for k in sorted(set(fresh) - set(baseline)):
        print(f"note: {k} only in fresh results (no baseline row)")

    failures = []
    for k in matched:
        b, f = baseline[k], fresh[k]
        name = "{}[{}]/{} seed={} dur={}s K={}".format(*k)

        if f["report_digest"] != b["report_digest"]:
            failures.append(
                f"{name}: report digest {f['report_digest']} != "
                f"baseline {b['report_digest']} (PHYSICS CHANGED)"
            )
        if f["events_dispatched"] != b["events_dispatched"]:
            failures.append(
                f"{name}: events_dispatched {f['events_dispatched']} != "
                f"baseline {b['events_dispatched']}"
            )

        ratio = f["events_per_sec"] / b["events_per_sec"]
        if ratio < 1.0 - args.perf_tolerance:
            failures.append(
                f"{name}: events/sec regressed {1.0 - ratio:.1%} "
                f"({b['events_per_sec']:.0f} -> {f['events_per_sec']:.0f})"
            )

        oversize = f.get("sched_oversize_callbacks")
        if oversize is not None and f["events_dispatched"] > 0:
            rate = oversize / f["events_dispatched"]
            if rate > 1e-3:
                failures.append(
                    f"{name}: scheduler heap fallback is warm "
                    f"({oversize} oversize callbacks, {rate:.2%} of events)"
                )

        failures.extend(cache_rate_failures(name, b, f))

        print(
            f"{name}: digest ok, {f['events_per_sec']:.0f} ev/s "
            f"({ratio - 1.0:+.1%} vs baseline)"
            if not any(x.startswith(name) for x in failures)
            else f"{name}: FAILED"
        )

    # Parallel-speedup floor over the fresh document alone (it is a property
    # of the fresh measurement, not a baseline diff).
    floor_failures, floor_notes = scaling_floor_failures(
        fresh, fresh_doc.get("hw_threads")
    )
    for note in floor_notes:
        print(f"note: {note}")
    failures.extend(floor_failures)

    if failures:
        print("\nbench_compare FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: {len(matched)} run(s) ok")


if __name__ == "__main__":
    main()
