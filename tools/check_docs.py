#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Usage:
    check_docs.py [FILE_OR_DIR ...]      # default: README.md docs/

Checks every `[text](target)` and bare `(path/to/file.md)` style markdown
link in the given files (directories are scanned for *.md):
  - relative links must resolve to an existing file or directory,
    relative to the file containing the link;
  - intra-document anchors (#section) must match a heading in the target
    file (github slug rules, simplified);
  - http(s)/mailto links are not fetched (CI must not depend on the
    network) — they are only reported with --list-external.
Exit status 1 when any relative link is broken, listing every failure.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading):
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path):
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(github_slug(line.lstrip("#")))
    return slugs


def links_of(path):
    in_fence = False
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield line_no, m.group(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["README.md", "docs"])
    parser.add_argument("--list-external", action="store_true")
    args = parser.parse_args()

    files = []
    for p in args.paths or ["README.md", "docs"]:
        path = pathlib.Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            sys.exit(f"check_docs: no such file or directory: {p}")

    broken = []
    checked = 0
    for md in files:
        for line_no, target in links_of(md):
            where = f"{md}:{line_no}"
            if target.startswith(("http://", "https://", "mailto:")):
                if args.list_external:
                    print(f"external: {where}: {target}")
                continue
            checked += 1
            ref, _, anchor = target.partition("#")
            base = md.parent / ref if ref else md
            if ref and not base.exists():
                broken.append(f"{where}: missing target '{target}'")
                continue
            if anchor:
                if base.is_dir() or base.suffix.lower() != ".md":
                    continue  # anchors into non-markdown: not checkable
                if github_slug(anchor) not in headings_of(base):
                    broken.append(f"{where}: no heading for anchor '#{anchor}'")

    if broken:
        print("check_docs: broken links:", file=sys.stderr)
        for b in broken:
            print(f"  - {b}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_docs: {checked} relative link(s) across {len(files)} file(s) ok"
    )


if __name__ == "__main__":
    main()
