#!/usr/bin/env python3
"""Markdown link and config-key checker for the repo's documentation.

Usage:
    check_docs.py [FILE_OR_DIR ...]      # default: README.md docs/

Checks every `[text](target)` and bare `(path/to/file.md)` style markdown
link in the given files (directories are scanned for *.md):
  - relative links must resolve to an existing file or directory,
    relative to the file containing the link;
  - intra-document anchors (#section) must match a heading in the target
    file (github slug rules, simplified);
  - http(s)/mailto links are not fetched (CI must not depend on the
    network) — they are only reported with --list-external.

Also round-trips documented config keys against the registry in
src/sim/config_kv.cpp: any inline-code token that looks like a dotted
config key (`lifetime.memo`, `traffic.rate_pps=200`, ...) and lives in a
namespace the registry defines must be a registered key, so renaming or
removing a key cannot leave stale documentation behind. Tokens outside the
registry's namespaces (module paths, file names) are ignored.

Exit status 1 when any relative link is broken or any documented config
key is unknown, listing every failure.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
CODE_SPAN_RE = re.compile(r"`([^`]+)`")

# A dotted lowercase token that could be a config key: `lifetime.memo`,
# `highway.idm.desired_speed`, optionally with an `=value` suffix.
KEY_TOKEN_RE = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+")

# Registration patterns in config_kv.cpp: the field-factory helpers plus
# direct `f.key = "...";` assignments for the hand-rolled fields.
CONFIG_KEY_DEF_RE = re.compile(
    r'(?:num|numeric_field|string_field|geometry_field|simtime_field)'
    r'\(\s*"([a-z0-9_.]+)"'
    r'|f\.key\s*=\s*"([a-z0-9_.]+)"'
)

# Dotted tokens ending in a file suffix are file names, not config keys
# (`traffic.cpp` is a source file even though `traffic` is a key namespace).
FILE_SUFFIXES = {
    "c", "cc", "cpp", "h", "hpp", "py", "md", "txt", "csv", "json", "yml",
    "yaml", "sh", "cmake", "html", "js",
}


def github_slug(heading):
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path):
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(github_slug(line.lstrip("#")))
    return slugs


def links_of(path):
    in_fence = False
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield line_no, m.group(1)


def config_keys_of(path):
    """The set of config keys registered in config_kv.cpp."""
    keys = set()
    for m in CONFIG_KEY_DEF_RE.finditer(path.read_text(encoding="utf-8")):
        keys.add(m.group(1) or m.group(2))
    return keys


def config_key_refs_of(path):
    """Yield (line_no, token) for inline-code tokens shaped like config keys.

    Splits each `code span` on whitespace so `--set lifetime.memo=false`
    yields `lifetime.memo`; `=value` suffixes are stripped, file names are
    dropped via FILE_SUFFIXES.
    """
    in_fence = False
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for span in CODE_SPAN_RE.finditer(line):
            for raw in span.group(1).split():
                token = raw.partition("=")[0]
                if not KEY_TOKEN_RE.fullmatch(token):
                    continue
                if token.rsplit(".", 1)[1] in FILE_SUFFIXES:
                    continue
                yield line_no, token


def check_config_keys(files, config_kv):
    """Return (refs_checked, failures) for documented-key round-tripping.

    Only tokens whose first dotted component is a namespace the registry
    actually defines are held to the round-trip rule; everything else
    (`json.dumps` in an example, a module path) is out of scope.
    """
    keys = config_keys_of(config_kv)
    namespaces = {k.split(".", 1)[0] for k in keys if "." in k}
    failures = []
    refs = 0
    for md in files:
        for line_no, token in config_key_refs_of(md):
            if token.split(".", 1)[0] not in namespaces:
                continue
            refs += 1
            if token not in keys:
                failures.append(
                    f"{md}:{line_no}: config key '{token}' is not "
                    f"registered in {config_kv}"
                )
    return refs, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["README.md", "docs"])
    parser.add_argument("--list-external", action="store_true")
    parser.add_argument(
        "--config-kv",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "src" / "sim" / "config_kv.cpp"
        ),
        help="config registry to round-trip documented keys against "
        "(default: src/sim/config_kv.cpp next to this script)",
    )
    args = parser.parse_args()

    files = []
    for p in args.paths or ["README.md", "docs"]:
        path = pathlib.Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            sys.exit(f"check_docs: no such file or directory: {p}")

    broken = []
    checked = 0
    for md in files:
        for line_no, target in links_of(md):
            where = f"{md}:{line_no}"
            if target.startswith(("http://", "https://", "mailto:")):
                if args.list_external:
                    print(f"external: {where}: {target}")
                continue
            checked += 1
            ref, _, anchor = target.partition("#")
            base = md.parent / ref if ref else md
            if ref and not base.exists():
                broken.append(f"{where}: missing target '{target}'")
                continue
            if anchor:
                if base.is_dir() or base.suffix.lower() != ".md":
                    continue  # anchors into non-markdown: not checkable
                if github_slug(anchor) not in headings_of(base):
                    broken.append(f"{where}: no heading for anchor '#{anchor}'")

    key_refs = 0
    config_kv = pathlib.Path(args.config_kv)
    if config_kv.exists():
        key_refs, key_failures = check_config_keys(files, config_kv)
        broken.extend(key_failures)
    else:
        print(f"check_docs: note: no {config_kv}, config-key check skipped")

    if broken:
        print("check_docs: broken links:", file=sys.stderr)
        for b in broken:
            print(f"  - {b}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_docs: {checked} relative link(s) and {key_refs} config-key "
        f"reference(s) across {len(files)} file(s) ok"
    )


if __name__ == "__main__":
    main()
