#!/usr/bin/env python3
"""Fail when docs/PROTOCOLS.md drifts from the live protocol registry.

Usage:
    vanet_cli list | check_protocols_md.py docs/PROTOCOLS.md
    check_protocols_md.py docs/PROTOCOLS.md --cli ./build/vanet_cli

Both inputs are markdown tables. From `vanet_cli list` the columns
(protocol, category, ref) are authoritative; the doc table must contain
exactly the same protocol set, and per protocol the same family (category)
and reference citation. The doc's free-text mechanism column is not checked.
Exit status 1 on any mismatch, listing every difference.
"""

import argparse
import subprocess
import sys


def parse_md_table(lines, required):
    """Parse the first markdown table containing all `required` headers.

    Returns a list of dicts keyed by lower-cased header names (first word:
    'source (src/routing/)' -> 'source').
    """
    rows = []
    headers = None
    for line in lines:
        line = line.strip()
        if not line.startswith("|"):
            if headers and rows:
                break  # table ended
            headers = None
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if headers is None:
            candidate = [c.lower().split()[0] if c else "" for c in cells]
            if all(r in candidate for r in required):
                headers = candidate
            continue
        if set(line) <= {"|", "-", " ", ":"}:
            continue  # separator row
        if len(cells) != len(headers):
            continue
        rows.append(dict(zip(headers, cells)))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("doc", help="path to docs/PROTOCOLS.md")
    parser.add_argument(
        "--cli",
        help="vanet_cli binary to run `list` on (default: read it from stdin)",
    )
    args = parser.parse_args()

    if args.cli:
        out = subprocess.run(
            [args.cli, "list"], check=True, capture_output=True, text=True
        ).stdout
    else:
        out = sys.stdin.read()

    registry = {
        r["protocol"]: r
        for r in parse_md_table(out.splitlines(), ["protocol", "category", "ref"])
    }
    if not registry:
        sys.exit("check_protocols_md: could not parse `vanet_cli list` output")

    with open(args.doc) as f:
        doc_rows = parse_md_table(
            f.read().splitlines(), ["protocol", "family", "reference"]
        )
    # Registry names appear as `code` in the doc.
    doc = {r["protocol"].strip("`"): r for r in doc_rows}
    if not doc:
        sys.exit(f"check_protocols_md: no protocol table found in {args.doc}")

    problems = []
    for name in sorted(set(registry) - set(doc)):
        problems.append(f"{name}: registered but missing from {args.doc}")
    for name in sorted(set(doc) - set(registry)):
        problems.append(f"{name}: documented but not in the registry")
    for name in sorted(set(doc) & set(registry)):
        want_family = registry[name]["category"]
        got_family = doc[name]["family"]
        if got_family != want_family:
            problems.append(
                f"{name}: family '{got_family}' != registry '{want_family}'"
            )
        want_ref = registry[name]["ref"]
        got_ref = doc[name]["reference"]
        if got_ref != want_ref:
            problems.append(
                f"{name}: reference '{got_ref}' != registry '{want_ref}'"
            )

    if problems:
        print(f"check_protocols_md: {args.doc} disagrees with the registry:",
              file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_protocols_md: {len(doc)} protocols match the live registry"
    )


if __name__ == "__main__":
    main()
