// vanet_cli — declarative experiment front-end for the VANET simulator.
//
// Subcommands:
//   run    one cell per protocol: --protocol NAME or --protocols a,b,c
//   sweep  full run matrix: protocols x --sweep axes x seeds, in parallel
//   list   dump the protocol registry
//
//   vanet_cli run   [--protocol aodv] [--vehicles 40] [--set key=value ...]
//   vanet_cli sweep --protocols aodv,yan --sweep vehicles=40,80
//                   --seeds 3 --jobs 4 --format csv
//   vanet_cli list
//
// Any ScenarioConfig field is reachable via --set key=value and sweepable
// via --sweep key=v1,v2,... (see `--keys` for the full list). Mobility
// traces: --mobility trace --trace FILE replays a SUMO-like CSV. Custom
// maps: --set map.source=file --set map.file=FILE drives graph-constrained
// mobility over an edge-list CSV (see map/builders.h for the schema).
// Output goes through a ReportSink: --format md (default) | csv | jsonl.
// Invoked without a subcommand, flags are interpreted as `run` (the historic
// single-scenario interface).
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "routing/registry.h"
#include "sim/config_kv.h"
#include "sim/experiment.h"
#include "sim/report_sink.h"
#include "sim/table.h"

namespace {

using namespace vanet;

[[noreturn]] void usage(const char* argv0, int code = 2) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: " << argv0 << " [run|sweep|list] [options]\n"
      << "\nsubcommands:\n"
      << "  run    (default) run each protocol once over the seed list\n"
      << "  sweep  run the full protocol x axes x seed matrix\n"
      << "  list   print the protocol registry and exit\n"
      << "\nscenario options:\n"
      << "  --protocol NAME      routing protocol (default aodv; see list)\n"
      << "  --protocols A,B,C    compare several protocols\n"
      << "  --mobility KIND      highway | manhattan | trace | graph\n"
      << "  --trace FILE         SUMO-like CSV for --mobility trace\n"
      << "  --vehicles N         per direction (highway) / total (urban kinds)\n"
      << "  --duration S         simulated seconds (default 60)\n"
      << "  --range M            unit-disk radio range (default 250)\n"
      << "  --shadowing          log-normal shadowing channel instead\n"
      << "  --shards K           region-sharded engine with K event loops\n"
      << "                       (default 1 = serial; 'auto' = hw threads;\n"
      << "                       requires the unit-disk PHY, no RSUs/faults)\n"
      << "  --shard-threads N    worker threads driving the shards\n"
      << "                       (default 0 = one per shard; any N is\n"
      << "                       bit-identical to any other)\n"
      << "  --rsus N             roadside units (default 0)\n"
      << "  --buses N            bus ferries (default 0)\n"
      << "  --flows N            CBR flows (default 8)\n"
      << "  --rate PPS           packets per second per flow (default 1)\n"
      << "  --set KEY=VALUE      override any config field (repeatable);\n"
      << "                       map.source=file + map.file=F load a custom\n"
      << "                       edge-list CSV map (implies graph mobility)\n"
      << "  --keys               print all --set/--sweep keys and exit\n"
      << "\nexperiment options:\n"
      << "  --sweep KEY=V1,V2    add a sweep axis (repeatable; first axis\n"
      << "                       varies slowest)\n"
      << "  --seed X             first seed (default 1)\n"
      << "  --seeds N            number of seeds (default 3)\n"
      << "  --jobs N             worker threads (default 1; 0 = all cores)\n"
      << "  --format F           md | csv | jsonl (default md)\n"
      << "  --jsonl-runs         with jsonl, also emit one record per run\n"
      << "\nrobustness options (see docs/ROBUSTNESS.md):\n"
      << "  --timeout S          wall-clock watchdog per run (0 = off)\n"
      << "  --max-events N       simulator event budget per run (0 = off)\n"
      << "  --retries N          retry failed runs with derived seeds\n"
      << "  --fail-fast          abort the sweep on the first failure\n"
      << "                       (default: capture failures, report them,\n"
      << "                       keep running, and exit nonzero at the end)\n"
      << "  --list               alias for the list subcommand\n"
      << "  --help               this message\n";
  std::exit(code);
}

[[noreturn]] void fail(const std::string& msg) {
  std::cerr << "vanet_cli: " << msg << "\n";
  std::exit(2);
}

long long checked_int(const std::string& flag, const std::string& value) {
  const auto parsed = sim::parse_int_checked(value);
  if (!parsed) fail("invalid value '" + value + "' for " + flag +
                    " (expected an integer)");
  return *parsed;
}

/// checked_int narrowed to int — rejects values that would wrap.
int checked_int32(const std::string& flag, const std::string& value) {
  const long long n = checked_int(flag, value);
  if (n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    fail("value '" + value + "' for " + flag + " is out of range");
  }
  return static_cast<int>(n);
}

double checked_double(const std::string& flag, const std::string& value) {
  const auto parsed = sim::parse_double_checked(value);
  if (!parsed) fail("invalid value '" + value + "' for " + flag +
                    " (expected a number)");
  return *parsed;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run_list() {
  sim::Table t({"protocol", "category", "ref", "metric"});
  for (const auto& info : routing::ProtocolRegistry::all()) {
    t.add_row({std::string(info.name),
               std::string(routing::to_string(info.category)),
               std::string(info.reference), std::string(info.metric)});
  }
  t.print(std::cout);
  return 0;
}

int run_keys(const sim::ScenarioConfig& cfg) {
  sim::Table t({"key", "default"});
  for (const std::string& key : sim::config_keys()) {
    t.add_row({key, sim::config_get(cfg, key)});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentSpec spec;
  spec.base.traffic.flows = 8;
  spec.base.traffic.rate_pps = 1.0;
  spec.base.traffic.start_s = 5.0;

  int argi = 1;
  std::string command = "run";
  if (argi < argc && argv[argi][0] != '-') {
    command = argv[argi++];
    if (command != "run" && command != "sweep" && command != "list") {
      fail("unknown subcommand '" + command + "' (run | sweep | list)");
    }
  }
  int seeds = 3;
  std::uint64_t first_seed = 1;
  bool explicit_stop = false;
  int jobs = 1;
  std::string format = "md";
  bool jsonl_runs = false;
  std::string trace_file;

  for (int i = argi; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) fail("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else if (arg == "--list") {
      return run_list();
    } else if (arg == "--keys") {
      return run_keys(spec.base);
    } else if (arg == "--protocol") {
      spec.base.protocol = next();
    } else if (arg == "--protocols") {
      spec.protocols = split_csv(next());
      if (spec.protocols.empty()) fail("--protocols needs at least one name");
    } else if (arg == "--mobility") {
      const std::string kind = next();
      try {
        sim::config_set(spec.base, "mobility", kind);
      } catch (const std::invalid_argument&) {
        fail("invalid value '" + kind +
             "' for --mobility (highway | manhattan | trace | graph)");
      }
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--vehicles") {
      const int n = checked_int32(arg, next());
      if (n <= 0) fail("--vehicles must be positive");
      sim::config_set(spec.base, "vehicles", std::to_string(n));
    } else if (arg == "--duration") {
      spec.base.duration_s = checked_double(arg, next());
    } else if (arg == "--range") {
      spec.base.comm_range_m = checked_double(arg, next());
    } else if (arg == "--shadowing") {
      spec.base.phy = sim::PhyModel::kShadowing;
    } else if (arg == "--shards") {
      const std::string v = next();
      if (v == "auto") {
        spec.base.shards = 0;
      } else {
        const int n = checked_int32(arg, v);
        if (n <= 0) fail("--shards must be positive (or 'auto')");
        spec.base.shards = n;
      }
    } else if (arg == "--shard-threads") {
      const int n = checked_int32(arg, next());
      if (n < 0) fail("--shard-threads must be >= 0 (0 = one per shard)");
      spec.base.shard_threads = n;
    } else if (arg == "--rsus") {
      spec.base.rsu_count = checked_int32(arg, next());
    } else if (arg == "--buses") {
      spec.base.bus_count = checked_int32(arg, next());
    } else if (arg == "--flows") {
      spec.base.traffic.flows = checked_int32(arg, next());
    } else if (arg == "--rate") {
      spec.base.traffic.rate_pps = checked_double(arg, next());
    } else if (arg == "--set") {
      const std::string kv = next();
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) fail("--set expects KEY=VALUE, got '" + kv + "'");
      if (kv.compare(0, eq, "seed") == 0) {
        fail("--set seed is overwritten per run — use --seed/--seeds");
      }
      try {
        sim::config_set(spec.base, kv.substr(0, eq), kv.substr(eq + 1));
      } catch (const std::invalid_argument& e) {
        fail(std::string("--set ") + kv + ": " + e.what());
      }
      if (kv.compare(0, eq, "traffic.stop_s") == 0) explicit_stop = true;
    } else if (arg == "--sweep") {
      const std::string kv = next();
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        fail("--sweep expects KEY=V1,V2,..., got '" + kv + "'");
      }
      sim::SweepAxis axis;
      axis.key = kv.substr(0, eq);
      axis.values = split_csv(kv.substr(eq + 1));
      if (!sim::config_has_key(axis.key)) {
        fail("--sweep: unknown config key '" + axis.key + "' (see --keys)");
      }
      if (axis.values.empty()) {
        fail("--sweep " + axis.key + ": needs at least one value");
      }
      spec.axes.push_back(std::move(axis));
    } else if (arg == "--seed") {
      const long long s = checked_int(arg, next());
      if (s < 0) fail("--seed must be non-negative");
      first_seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--seeds") {
      seeds = checked_int32(arg, next());
      if (seeds <= 0) fail("--seeds must be positive");
    } else if (arg == "--jobs") {
      jobs = checked_int32(arg, next());
    } else if (arg == "--timeout") {
      spec.guards.timeout_s = checked_double(arg, next());
      if (spec.guards.timeout_s < 0.0) fail("--timeout must be >= 0");
    } else if (arg == "--max-events") {
      const long long n = checked_int(arg, next());
      if (n < 0) fail("--max-events must be >= 0");
      spec.guards.max_events = static_cast<std::uint64_t>(n);
    } else if (arg == "--retries") {
      spec.guards.retries = checked_int32(arg, next());
      if (spec.guards.retries < 0) fail("--retries must be >= 0");
    } else if (arg == "--fail-fast") {
      spec.guards.capture = false;
    } else if (arg == "--format") {
      format = next();
      if (format != "md" && format != "csv" && format != "jsonl") {
        fail("invalid value '" + format + "' for --format (md | csv | jsonl)");
      }
    } else if (arg == "--jsonl-runs") {
      jsonl_runs = true;
    } else {
      std::cerr << "vanet_cli: unknown option '" << arg << "'\n\n";
      usage(argv[0]);
    }
  }
  if (command == "list") return run_list();

  if (spec.base.mobility == sim::MobilityKind::kTrace) {
    if (trace_file.empty()) fail("--mobility trace requires --trace FILE");
    try {
      spec.base.trace = mobility::Trace::load_csv_file(trace_file);
    } catch (const std::exception& e) {
      fail("failed to load trace '" + trace_file + "': " + e.what());
    }
  } else if (!trace_file.empty()) {
    fail("--trace is only meaningful with --mobility trace");
  }

  std::vector<std::string> protocols = spec.protocols;
  if (protocols.empty()) protocols.push_back(spec.base.protocol);
  for (const std::string& p : protocols) {
    if (routing::ProtocolRegistry::find(p) == nullptr) {
      fail("unknown protocol '" + p + "' (try list)");
    }
  }
  if (command == "run" && !spec.axes.empty()) {
    fail("--sweep axes require the sweep subcommand");
  }

  bool sweeps_duration = false, sweeps_stop = false;
  for (const auto& axis : spec.axes) {
    if (axis.key == "duration_s") sweeps_duration = true;
    if (axis.key == "traffic.stop_s") sweeps_stop = true;
  }
  if (sweeps_duration && !explicit_stop && !sweeps_stop) {
    // The default stop time derives from the (single) base duration; with a
    // duration axis that would silently give every cell the same stop time.
    fail("sweeping duration_s needs an explicit traffic.stop_s "
         "(--set traffic.stop_s=S or a traffic.stop_s sweep axis)");
  }
  if (!explicit_stop) spec.base.traffic.stop_s = spec.base.duration_s * 0.8;
  bool sweeps_start = false;
  for (const auto& axis : spec.axes) {
    if (axis.key == "traffic.start_s") sweeps_start = true;
  }
  if (!sweeps_stop && !sweeps_start &&
      spec.base.traffic.stop_s <= spec.base.traffic.start_s) {
    fail("traffic window is empty: stop (" +
         std::to_string(spec.base.traffic.stop_s) + " s) <= start (" +
         std::to_string(spec.base.traffic.start_s) +
         " s); raise --duration or --set traffic.start_s/traffic.stop_s");
  }
  spec.seeds.clear();
  for (int k = 0; k < seeds; ++k) spec.seeds.push_back(first_seed + k);

  std::unique_ptr<sim::ReportSink> sink;
  if (format == "csv") {
    sink = std::make_unique<sim::CsvSink>(std::cout);
  } else if (format == "jsonl") {
    sink = std::make_unique<sim::JsonlSink>(std::cout, jsonl_runs);
  } else {
    sink = std::make_unique<sim::MarkdownSink>(std::cout);
  }

  try {
    sim::ExperimentEngine engine{jobs};
    const sim::ExperimentResult result = engine.run(spec, *sink);
    if (!result.failures.empty()) {
      // Structured per-spec summary on stderr (stdout carries the sink
      // stream untouched), then a nonzero exit so scripts notice.
      std::cerr << "vanet_cli: " << result.failures.size() << " of "
                << result.cells.size() * spec.seeds.size()
                << " runs failed:\n";
      for (const sim::FailureRecord& f : result.failures) {
        std::cerr << "  " << f.protocol;
        for (const auto& [key, value] : f.axes) {
          std::cerr << " " << key << "=" << value;
        }
        std::cerr << " seed=" << f.seed << " attempts=" << f.attempts << " ["
                  << f.kind << "]: " << f.error << "\n";
      }
      return 1;
    }
  } catch (const std::exception& e) {
    fail(e.what());
  }
  return 0;
}
