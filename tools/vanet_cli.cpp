// vanet_cli — run one configurable scenario from the command line.
//
//   vanet_cli [--protocol NAME] [--mobility highway|manhattan]
//             [--vehicles N] [--duration S] [--range M] [--rsus N]
//             [--buses N] [--flows N] [--rate PPS] [--seeds N]
//             [--seed X] [--shadowing] [--list]
//
// Prints the aggregate report as a markdown table. `--list` dumps the
// protocol registry instead.
#include <cstdlib>
#include <iostream>
#include <string>

#include "routing/registry.h"
#include "sim/runner.h"
#include "sim/table.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --protocol NAME      routing protocol (default aodv; see --list)\n"
      << "  --mobility KIND      highway | manhattan (default highway)\n"
      << "  --vehicles N         per direction (highway) / total (manhattan)\n"
      << "  --duration S         simulated seconds (default 60)\n"
      << "  --range M            unit-disk radio range (default 250)\n"
      << "  --shadowing          log-normal shadowing channel instead\n"
      << "  --rsus N             roadside units (default 0)\n"
      << "  --buses N            bus ferries (default 0)\n"
      << "  --flows N            CBR flows (default 8)\n"
      << "  --rate PPS           packets per second per flow (default 1)\n"
      << "  --seed X             first seed (default 1)\n"
      << "  --seeds N            number of seeds (default 3)\n"
      << "  --list               print the protocol registry and exit\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vanet;
  sim::ScenarioConfig cfg;
  cfg.traffic.flows = 8;
  cfg.traffic.rate_pps = 1.0;
  cfg.traffic.start_s = 5.0;
  int seeds = 3;
  std::uint64_t first_seed = 1;
  int vehicles = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--list") {
      sim::Table t({"protocol", "category", "ref", "metric"});
      for (const auto& info : routing::ProtocolRegistry::all()) {
        t.add_row({std::string(info.name),
                   std::string(routing::to_string(info.category)),
                   std::string(info.reference), std::string(info.metric)});
      }
      t.print(std::cout);
      return 0;
    } else if (arg == "--protocol") {
      cfg.protocol = next();
    } else if (arg == "--mobility") {
      const std::string kind = next();
      if (kind == "highway") {
        cfg.mobility = sim::MobilityKind::kHighway;
      } else if (kind == "manhattan") {
        cfg.mobility = sim::MobilityKind::kManhattan;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--vehicles") {
      vehicles = std::stoi(next());
    } else if (arg == "--duration") {
      cfg.duration_s = std::stod(next());
    } else if (arg == "--range") {
      cfg.comm_range_m = std::stod(next());
    } else if (arg == "--shadowing") {
      cfg.shadowing = true;
    } else if (arg == "--rsus") {
      cfg.rsu_count = std::stoi(next());
    } else if (arg == "--buses") {
      cfg.bus_count = std::stoi(next());
    } else if (arg == "--flows") {
      cfg.traffic.flows = std::stoi(next());
    } else if (arg == "--rate") {
      cfg.traffic.rate_pps = std::stod(next());
    } else if (arg == "--seed") {
      first_seed = std::stoull(next());
    } else if (arg == "--seeds") {
      seeds = std::stoi(next());
    } else {
      usage(argv[0]);
    }
  }
  if (routing::ProtocolRegistry::find(cfg.protocol) == nullptr) {
    std::cerr << "unknown protocol '" << cfg.protocol << "' (try --list)\n";
    return 2;
  }
  if (vehicles > 0) {
    cfg.vehicles_per_direction = vehicles;
    cfg.vehicles = vehicles;
  }
  cfg.traffic.stop_s = cfg.duration_s * 0.8;

  std::vector<std::uint64_t> seed_list;
  for (int k = 0; k < seeds; ++k) seed_list.push_back(first_seed + k);
  const sim::AggregateReport agg = sim::run_seeds(cfg, seed_list);

  sim::Table t({"metric", "value"});
  t.add_row({"protocol", cfg.protocol});
  t.add_row({"PDR", sim::fmt_pm(agg.pdr.mean(), agg.pdr.ci95_half_width(), 3)});
  t.add_row({"delay ms", sim::fmt(agg.delay_ms.mean(), 1)});
  t.add_row({"hops", sim::fmt(agg.hops.mean(), 2)});
  t.add_row({"ctrl+hello / delivered",
             sim::fmt(agg.control_per_delivered.mean(), 2)});
  t.add_row({"collision fraction", sim::fmt(agg.collision_fraction.mean(), 4)});
  t.add_row({"route breaks / run", sim::fmt(agg.route_breaks.mean(), 1)});
  t.add_row({"delivered / originated",
             sim::fmt_int(agg.total_delivered) + " / " +
                 sim::fmt_int(agg.total_originated)});
  t.print(std::cout);
  return 0;
}
