// Property test: sim::sharded::halo_members against the O(N^2) definition.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "core/vec2.h"
#include "sim/sharded/halo.h"

namespace vanet::sim::sharded {
namespace {

std::vector<std::vector<net::NodeId>> brute_force(
    const std::vector<core::Vec2>& positions, const std::vector<int>& owner,
    int regions, double range) {
  std::vector<std::vector<net::NodeId>> halos(
      static_cast<std::size_t>(regions));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (j == i || owner[j] == owner[i]) continue;
      if ((positions[i] - positions[j]).norm() < range) {
        halos[static_cast<std::size_t>(owner[i])].push_back(
            static_cast<net::NodeId>(i));
        break;
      }
    }
  }
  return halos;
}

struct HaloCase {
  int nodes;
  int regions;
  double range;
};

class HaloProperty : public ::testing::TestWithParam<HaloCase> {};

TEST_P(HaloProperty, MatchesBruteForce) {
  const HaloCase c = GetParam();
  core::RngManager rngs{42};
  core::Rng& rng = rngs.stream("halo-test");
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<core::Vec2> positions;
    std::vector<int> owner;
    positions.reserve(static_cast<std::size_t>(c.nodes));
    owner.reserve(static_cast<std::size_t>(c.nodes));
    for (int i = 0; i < c.nodes; ++i) {
      positions.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
      owner.push_back(static_cast<int>(rng.uniform_int(0, c.regions - 1)));
    }
    EXPECT_EQ(halo_members(positions, owner, c.regions, c.range),
              brute_force(positions, owner, c.regions, c.range));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HaloProperty,
    ::testing::Values(HaloCase{50, 2, 100.0}, HaloCase{200, 3, 150.0},
                      HaloCase{400, 4, 80.0}, HaloCase{100, 8, 300.0},
                      HaloCase{30, 2, 2000.0}));

TEST(Halo, SingleOwnerHasEmptyHalos) {
  const std::vector<core::Vec2> positions{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<int> owner{0, 0, 0};
  const auto halos = halo_members(positions, owner, 1, 10.0);
  ASSERT_EQ(halos.size(), 1u);
  EXPECT_TRUE(halos[0].empty());
}

TEST(Halo, EveryoneNearTheCutIsInTheirOwnersHalo) {
  // Two owners 1 m apart with a 10 m range: everyone is boundary.
  const std::vector<core::Vec2> positions{{0, 0}, {1, 0}};
  const std::vector<int> owner{0, 1};
  const auto halos = halo_members(positions, owner, 2, 10.0);
  ASSERT_EQ(halos.size(), 2u);
  EXPECT_EQ(halos[0], (std::vector<net::NodeId>{0}));
  EXPECT_EQ(halos[1], (std::vector<net::NodeId>{1}));
}

}  // namespace
}  // namespace vanet::sim::sharded
