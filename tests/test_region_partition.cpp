#include "map/region_partition.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <string>
#include <vector>

#include "map/builders.h"
#include "map/road_graph.h"

namespace vanet::map {
namespace {

// Contiguity check: the segments of each region form one connected component
// of the segment-adjacency graph (segments adjacent iff they share an
// intersection).
int region_components(const RoadGraph& g, const RegionPartition& p,
                      int region) {
  std::vector<int> members;
  for (int s = 0; s < static_cast<int>(g.segment_count()); ++s) {
    if (p.segment_region[s] == region) members.push_back(s);
  }
  std::set<int> unvisited(members.begin(), members.end());
  int components = 0;
  while (!unvisited.empty()) {
    ++components;
    std::deque<int> q{*unvisited.begin()};
    unvisited.erase(unvisited.begin());
    while (!q.empty()) {
      const int s = q.front();
      q.pop_front();
      const auto [a, b] = g.segment_ends(s);
      for (const int node : {a, b}) {
        for (const auto& [nbr, seg] : g.adjacency(node)) {
          (void)nbr;
          if (unvisited.erase(seg) > 0) q.push_back(seg);
        }
      }
    }
  }
  return components;
}

void check_full_coverage(const RoadGraph& g, const RegionPartition& p) {
  ASSERT_EQ(p.segment_region.size(), g.segment_count());
  double total = 0.0;
  for (int s = 0; s < static_cast<int>(g.segment_count()); ++s) {
    ASSERT_GE(p.segment_region[s], 0);
    ASSERT_LT(p.segment_region[s], p.regions);
  }
  for (const double len : p.region_length) total += len;
  EXPECT_NEAR(total, g.total_length(), 1e-6 * (1.0 + g.total_length()));
}

TEST(RegionPartition, SingleRegionOwnsEverything) {
  const RoadGraph g{6, 6, 150.0};
  const RegionPartition p = partition_regions(g, 1);
  EXPECT_EQ(p.regions, 1);
  check_full_coverage(g, p);
  EXPECT_DOUBLE_EQ(p.region_length[0], g.total_length());
}

TEST(RegionPartition, ClampsToSegmentCount) {
  RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({100.0, 0.0});
  g.add_intersection({200.0, 0.0});
  g.add_segment(0, 1);
  g.add_segment(1, 2);
  const RegionPartition p = partition_regions(g, 8);
  EXPECT_EQ(p.regions, 2);
  check_full_coverage(g, p);
  EXPECT_EQ(partition_regions(g, 0).regions, 1);
  EXPECT_EQ(partition_regions(RoadGraph{}, 4).regions, 1);
}

TEST(RegionPartition, DeterministicAcrossRebuilds) {
  for (const int k : {2, 3, 4, 8}) {
    const RoadGraph a{10, 10, 200.0};
    const RoadGraph b{10, 10, 200.0};
    const RegionPartition pa = partition_regions(a, k);
    const RegionPartition pb = partition_regions(b, k);
    EXPECT_EQ(pa.segment_region, pb.segment_region) << "k=" << k;
    EXPECT_EQ(pa.region_length, pb.region_length) << "k=" << k;
  }
}

TEST(RegionPartition, BalancedByLengthOnLattice) {
  const RoadGraph g{12, 12, 100.0};
  for (const int k : {2, 4, 8}) {
    const RegionPartition p = partition_regions(g, k);
    check_full_coverage(g, p);
    const double ideal = g.total_length() / k;
    for (int r = 0; r < k; ++r) {
      // Greedy growth overshoots by at most ~one frontier sweep; on a
      // uniform lattice every region stays within 30% of ideal.
      EXPECT_GT(p.region_length[r], 0.70 * ideal) << "k=" << k << " r=" << r;
      EXPECT_LT(p.region_length[r], 1.30 * ideal) << "k=" << k << " r=" << r;
    }
  }
}

TEST(RegionPartition, RegionsAreContiguousOnConnectedGraphs) {
  const RoadGraph lattice{9, 7, 120.0};
  for (const int k : {2, 3, 4, 6}) {
    const RegionPartition p = partition_regions(lattice, k);
    check_full_coverage(lattice, p);
    for (int r = 0; r < k; ++r) {
      EXPECT_EQ(region_components(lattice, p, r), 1)
          << "k=" << k << " region " << r << " not contiguous";
    }
  }
}

TEST(RegionPartition, RealMapCoverageAndContiguity) {
  const RoadGraph g =
      load_edge_list_csv_file(std::string{VANET_SOURCE_DIR} + "/maps/town.csv");
  ASSERT_GT(g.segment_count(), 0u);
  for (const int k : {2, 4}) {
    const RegionPartition p = partition_regions(g, k);
    check_full_coverage(g, p);
    for (int r = 0; r < k; ++r) {
      EXPECT_GE(p.region_length[r], 0.0);
      EXPECT_EQ(region_components(g, p, r), 1) << "k=" << k << " r=" << r;
    }
  }
}

TEST(RegionPartition, DisconnectedGraphStillCovered) {
  RoadGraph g;
  // Two islands of one segment each plus a 3-segment chain.
  g.add_intersection({0.0, 0.0});
  g.add_intersection({50.0, 0.0});
  g.add_intersection({1000.0, 0.0});
  g.add_intersection({1050.0, 0.0});
  g.add_intersection({0.0, 500.0});
  g.add_intersection({100.0, 500.0});
  g.add_intersection({200.0, 500.0});
  g.add_intersection({300.0, 500.0});
  g.add_segment(0, 1);
  g.add_segment(2, 3);
  g.add_segment(4, 5);
  g.add_segment(5, 6);
  g.add_segment(6, 7);
  const RegionPartition p = partition_regions(g, 2);
  check_full_coverage(g, p);
}

}  // namespace
}  // namespace vanet::map
