#include "core/rng.h"

#include <gtest/gtest.h>

#include "analysis/stats.h"

namespace vanet::core {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdges) {
  Rng r{7};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  analysis::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng r{11};
  EXPECT_DOUBLE_EQ(r.normal(5.0, 0.0), 5.0);
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  analysis::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(RngManager, StreamsAreStableAndIndependent) {
  RngManager m{42};
  Rng& a1 = m.stream("alpha");
  Rng& a2 = m.stream("alpha");
  EXPECT_EQ(&a1, &a2);  // same object on re-lookup

  // Same master seed reproduces the same stream values.
  RngManager m2{42};
  EXPECT_DOUBLE_EQ(m.stream("beta").uniform(0, 1),
                   m2.stream("beta").uniform(0, 1));

  // Different names give different sequences.
  RngManager m3{42}, m4{42};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (m3.stream("x").uniform(0, 1) == m4.stream("y").uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngManager, DrawOrderInOneStreamDoesNotAffectAnother) {
  RngManager a{9}, b{9};
  // Interleave draws differently; stream "keep" must match across managers.
  a.stream("noise").uniform(0, 1);
  a.stream("noise").uniform(0, 1);
  const double a_keep = a.stream("keep").uniform(0, 1);
  const double b_keep = b.stream("keep").uniform(0, 1);
  EXPECT_DOUBLE_EQ(a_keep, b_keep);
}

}  // namespace
}  // namespace vanet::core
