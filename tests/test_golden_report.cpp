// Fixed-seed determinism lock: ScenarioReport digests for a set of pinned
// configurations must match the committed reference in
// tests/golden/report_digests.txt.
//
// This is the guard that lets hot-path refactors proceed safely: any change
// to RNG draw order, channel semantics, candidate sets or float evaluation
// shows up here as a digest mismatch. If a *deliberate* physics change is
// made, regenerate the reference with:
//   VANET_UPDATE_GOLDEN=1 ./vanet_tests --gtest_filter='GoldenReport.*'
// and commit the diff with an explanation of why the physics moved.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "sim/scenario.h"

#ifndef VANET_SOURCE_DIR
#error "VANET_SOURCE_DIR must point at the repository root"
#endif

namespace vanet::sim {
namespace {

std::string golden_path() {
  return std::string{VANET_SOURCE_DIR} + "/tests/golden/report_digests.txt";
}

std::map<std::string, ScenarioConfig> golden_configs() {
  std::map<std::string, ScenarioConfig> configs;
  {
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kHighway;
    cfg.vehicles_per_direction = 12;
    cfg.rsu_count = 2;
    cfg.protocol = "aodv";
    cfg.traffic.stop_s = 15.0;
    configs["highway-aodv-rsu"] = cfg;
  }
  {
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kManhattan;
    cfg.vehicles = 30;
    cfg.phy = PhyModel::kShadowing;
    cfg.protocol = "greedy";
    cfg.traffic.stop_s = 15.0;
    configs["manhattan-greedy-shadowing"] = cfg;
  }
  {
    ScenarioConfig cfg;
    cfg.seed = 1337;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kManhattan;
    cfg.vehicles = 30;
    cfg.protocol = "yan";
    cfg.traffic.stop_s = 15.0;
    configs["manhattan-yan"] = cfg;
  }
  {
    // Graph-constrained mobility with the protocol that routes over the same
    // graph: pins the map subsystem (trip planning, density via the segment
    // index, CAR anchor paths) exactly like the other kinds pin theirs.
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kGraph;
    cfg.vehicles = 30;
    cfg.protocol = "car";
    cfg.traffic.stop_s = 15.0;
    configs["graph-car"] = cfg;
  }
  {
    // Map-aware geometry on an imported non-lattice map: zone with route
    // corridors over the committed town — pins RouteCorridor construction,
    // the corridor cache refresh rule and the kRoute forwarding decisions.
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.map.source = MapSource::kFile;
    cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
    cfg.mobility = MobilityKind::kGraph;
    cfg.vehicles = 30;
    cfg.protocol = "zone";
    cfg.zone_geometry = routing::GeometryMode::kRoute;
    cfg.traffic.stop_s = 15.0;
    configs["town-zone-route"] = cfg;
  }
  {
    // The opt-in interpolated lifetime table (lifetime.interp): the only
    // results-changing switch of the geometry-cache layer gets its own row so
    // its physics are pinned too. Deliberately the same town + kRoute shape
    // as the gvgrid hot path the table accelerates.
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.map.source = MapSource::kFile;
    cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
    cfg.mobility = MobilityKind::kGraph;
    cfg.vehicles = 30;
    cfg.protocol = "gvgrid";
    cfg.gvgrid_geometry = routing::GeometryMode::kRoute;
    cfg.lifetime_interp = true;
    cfg.traffic.stop_s = 15.0;
    configs["town-gvgrid-interp"] = cfg;
  }
  {
    // Nakagami-m fast fading (phy.model=nakagami): pins the Gamma-tail
    // receipt probability and its bracketing of nominal/max range.
    ScenarioConfig cfg;
    cfg.seed = 1337;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kManhattan;
    cfg.vehicles = 30;
    cfg.phy = PhyModel::kNakagami;
    cfg.protocol = "yan";
    cfg.traffic.stop_s = 15.0;
    configs["manhattan-yan-nakagami"] = cfg;
  }
  {
    // Link-quality routing under fast fading: pins the ETX estimator (hello
    // sequence numbers, windowed ratios, piggybacked reports + distance
    // vector), the Dijkstra route computation and the linkquality report
    // fields (etx_link_* / suppressed_rebroadcasts).
    ScenarioConfig cfg;
    cfg.seed = 1337;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kManhattan;
    cfg.vehicles = 30;
    cfg.phy = PhyModel::kNakagami;
    cfg.protocol = "etx";
    cfg.traffic.stop_s = 15.0;
    configs["manhattan-etx-nakagami"] = cfg;
  }
  {
    // The same etx stack over an imported non-lattice map with the unit
    // disk: pins the estimator's no-loss degenerate case (every ratio 1,
    // Dijkstra reduces to hop count) where any accidental RNG draw or
    // piggyback byte change would still move the digest.
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.map.source = MapSource::kFile;
    cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
    cfg.mobility = MobilityKind::kGraph;
    cfg.vehicles = 30;
    cfg.protocol = "etx";
    cfg.traffic.stop_s = 15.0;
    configs["town-etx"] = cfg;
  }
  {
    // Full fault stack on an imported map: planned node outage + road
    // incident + seeded vehicle churn over graph mobility. Pins the "fault"
    // RNG stream, the blocked-segment replanner, the down-node MAC path and
    // the fault-classified metrics (the fault_* report fields).
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.map.source = MapSource::kFile;
    cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
    cfg.mobility = MobilityKind::kGraph;
    cfg.vehicles = 30;
    cfg.protocol = "aodv";
    cfg.fault.enabled = true;
    cfg.fault.plan = "node:2:3:9; seg:1:4:11";
    cfg.fault.vehicle_mtbf_s = 30.0;
    cfg.fault.vehicle_downtime_s = 4.0;
    cfg.traffic.stop_s = 15.0;
    configs["town-churn-incident"] = cfg;
  }
  {
    // Faults on a lossy channel: shadowing + churn (vehicles and the RSUs).
    // Pins the interaction of fading draws with down-node receptions.
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.duration_s = 15.0;
    cfg.mobility = MobilityKind::kManhattan;
    cfg.vehicles = 30;
    cfg.rsu_count = 2;
    cfg.phy = PhyModel::kShadowing;
    cfg.protocol = "greedy";
    cfg.fault.enabled = true;
    cfg.fault.vehicle_mtbf_s = 25.0;
    cfg.fault.vehicle_downtime_s = 5.0;
    cfg.fault.rsu_mtbf_s = 40.0;
    cfg.fault.rsu_downtime_s = 6.0;
    cfg.traffic.stop_s = 15.0;
    configs["manhattan-shadowing-fault"] = cfg;
  }
  return configs;
}

std::map<std::string, std::string> load_reference() {
  std::map<std::string, std::string> ref;
  std::ifstream in{golden_path()};
  std::string name, digest;
  while (in >> name >> digest) ref[name] = digest;
  return ref;
}

TEST(GoldenReport, FixedSeedDigestsMatchCommittedReference) {
  std::map<std::string, std::string> actual;
  for (const auto& [name, cfg] : golden_configs()) {
    Scenario scenario{cfg};
    scenario.run();
    actual[name] = report_digest(scenario.report());
  }

  if (std::getenv("VANET_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path()};
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    for (const auto& [name, digest] : actual) {
      out << name << " " << digest << "\n";
    }
    GTEST_SKIP() << "golden reference regenerated at " << golden_path();
  }

  const std::map<std::string, std::string> reference = load_reference();
  ASSERT_FALSE(reference.empty())
      << "missing or empty golden reference " << golden_path();
  EXPECT_EQ(actual.size(), reference.size());
  for (const auto& [name, digest] : actual) {
    const auto it = reference.find(name);
    ASSERT_NE(it, reference.end()) << "no reference digest for " << name;
    EXPECT_EQ(digest, it->second)
        << "fixed-seed ScenarioReport changed for '" << name
        << "' — a perf refactor must not change physics. If the change is "
           "deliberate, rerun with VANET_UPDATE_GOLDEN=1 and commit.";
  }
}

// The digest itself must be stable (pure function of the report) and
// sensitive to any field.
TEST(GoldenReport, DigestIsPureAndFieldSensitive) {
  ScenarioReport r;
  r.protocol = "aodv";
  r.pdr = 0.5;
  const std::string d1 = report_digest(r);
  EXPECT_EQ(d1, report_digest(r));
  r.receptions_ok = 1;
  EXPECT_NE(report_digest(r), d1);
  r.receptions_ok = 0;
  r.pdr = 0.5000000000000001;  // one ulp-ish nudge must change the digest
  EXPECT_NE(report_digest(r), d1);
}

}  // namespace
}  // namespace vanet::sim
