// ChannelState: the grid-bucketed interference index behind carrier sense
// and collision checks. Property-tested against the brute-force scans it
// replaced in Network.
#include "net/channel_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"

namespace vanet::net {
namespace {

using core::SimTime;
using core::Vec2;

TEST(ChannelState, BusyUntilSeesOnlyAudibleLiveTransmissions) {
  ChannelState cs{100.0};
  // In range, on the air until t=5.
  cs.add(0, SimTime::seconds(1.0), SimTime::seconds(5.0), {0.0, 0.0});
  // In range but already finished at the probe time.
  cs.add(1, SimTime::seconds(0.0), SimTime::seconds(2.0), {10.0, 0.0});
  // Out of range.
  cs.add(2, SimTime::seconds(1.0), SimTime::seconds(9.0), {500.0, 0.0});

  const SimTime busy =
      cs.busy_until({50.0, 0.0}, SimTime::seconds(3.0), 100.0);
  EXPECT_EQ(busy, SimTime::seconds(5.0));
  // Idle once the frame ends.
  EXPECT_EQ(cs.busy_until({50.0, 0.0}, SimTime::seconds(5.0), 100.0),
            SimTime::zero());
}

TEST(ChannelState, BusyUntilRangeIsInclusive) {
  ChannelState cs{100.0};
  cs.add(0, SimTime::zero(), SimTime::seconds(1.0), {100.0, 0.0});
  // Exactly at the sense range: audible (<=), matching the MAC's semantics.
  EXPECT_EQ(cs.busy_until({0.0, 0.0}, SimTime::zero(), 100.0),
            SimTime::seconds(1.0));
}

TEST(ChannelState, InterferenceExcludesSelfAndNonOverlapping) {
  ChannelState cs{100.0};
  const auto self =
      cs.add(0, SimTime::seconds(2.0), SimTime::seconds(3.0), {0.0, 0.0});
  // Only our own frame on the air: no interference.
  EXPECT_FALSE(cs.interference_at({10.0, 0.0}, SimTime::seconds(2.0),
                                  SimTime::seconds(3.0), 100.0, self));
  // A frame that ended before ours began does not interfere...
  cs.add(1, SimTime::seconds(0.0), SimTime::seconds(2.0), {20.0, 0.0});
  EXPECT_FALSE(cs.interference_at({10.0, 0.0}, SimTime::seconds(2.0),
                                  SimTime::seconds(3.0), 100.0, self));
  // ...but an overlapping one audible at the receiver does.
  cs.add(2, SimTime::seconds(2.5), SimTime::seconds(2.6), {30.0, 0.0});
  EXPECT_TRUE(cs.interference_at({10.0, 0.0}, SimTime::seconds(2.0),
                                 SimTime::seconds(3.0), 100.0, self));
  // Out of interference range: inaudible.
  EXPECT_FALSE(cs.interference_at({500.0, 0.0}, SimTime::seconds(2.0),
                                  SimTime::seconds(3.0), 100.0, self));
}

TEST(ChannelState, PruneDropsOnlyEntriesEndedBeforeHorizon) {
  ChannelState cs{100.0};
  cs.add(0, SimTime::zero(), SimTime::seconds(1.0), {0.0, 0.0});
  cs.add(1, SimTime::zero(), SimTime::seconds(2.0), {0.0, 0.0});
  cs.add(2, SimTime::zero(), SimTime::seconds(3.0), {0.0, 0.0});
  EXPECT_EQ(cs.size(), 3u);
  cs.prune(SimTime::seconds(2.0));  // drops end=1 only (end < horizon)
  EXPECT_EQ(cs.size(), 2u);
  // The end=2 entry survived and still answers overlap queries.
  EXPECT_TRUE(cs.interference_at({0.0, 0.0}, SimTime::seconds(1.5),
                                 SimTime::seconds(2.5), 100.0,
                                 ChannelState::kInvalidHandle));
  cs.prune(SimTime::seconds(10.0));
  EXPECT_EQ(cs.size(), 0u);
}

TEST(ChannelState, HandlesStayValidAcrossSlotReuse) {
  ChannelState cs{100.0};
  const auto a = cs.add(7, SimTime::zero(), SimTime::seconds(1.0), {1.0, 2.0});
  cs.prune(SimTime::seconds(5.0));
  // The freed slot is reused; the new handle reads back the new record.
  const auto b =
      cs.add(9, SimTime::seconds(6.0), SimTime::seconds(7.0), {3.0, 4.0});
  EXPECT_EQ(a, b);  // slot reuse is expected...
  EXPECT_EQ(cs.get(b).tx, 9u);
  EXPECT_EQ(cs.get(b).pos, (Vec2{3.0, 4.0}));
}

// Property: busy_until and interference_at match brute-force scans over a
// random transmission soup, across positions near cell boundaries.
TEST(ChannelState, MatchesBruteForce) {
  const double range = 150.0;
  ChannelState cs{range};
  core::Rng rng{42};
  struct Entry {
    ChannelState::Handle h;
    NodeId tx;
    SimTime start, end;
    Vec2 pos;
  };
  std::vector<Entry> entries;
  for (int i = 0; i < 200; ++i) {
    const Vec2 pos{rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)};
    const SimTime start = SimTime::millis(rng.uniform_int(0, 1000));
    const SimTime end = start + SimTime::millis(rng.uniform_int(1, 50));
    const auto h = cs.add(static_cast<NodeId>(i), start, end, pos);
    entries.push_back({h, static_cast<NodeId>(i), start, end, pos});
  }
  for (int probe = 0; probe < 100; ++probe) {
    const Vec2 pos{rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)};
    const SimTime now = SimTime::millis(rng.uniform_int(0, 1050));

    SimTime expect_busy = SimTime::zero();
    for (const Entry& e : entries) {
      if (e.end <= now) continue;
      if ((e.pos - pos).norm() <= range) expect_busy = std::max(expect_busy, e.end);
    }
    EXPECT_EQ(cs.busy_until(pos, now, range), expect_busy);

    const SimTime qstart = now;
    const SimTime qend = now + SimTime::millis(20);
    const auto self = entries[static_cast<std::size_t>(probe % 200)].h;
    bool expect_hit = false;
    for (const Entry& e : entries) {
      if (e.h == self) continue;
      if (e.start < qend && e.end > qstart && (e.pos - pos).norm() <= range) {
        expect_hit = true;
        break;
      }
    }
    EXPECT_EQ(cs.interference_at(pos, qstart, qend, range, self), expect_hit);
  }
}

TEST(ChannelState, OverlapSnapshotMatchesInterferenceAt) {
  // begin_overlap/overlap_near is the batched per-frame form of
  // interference_at used by the collision loop; the two must agree on every
  // probe position, including after prunes recycle slots.
  const double range = 150.0;
  ChannelState cs{range};
  core::Rng rng{7};
  std::vector<ChannelState::Handle> handles;
  for (int i = 0; i < 200; ++i) {
    const Vec2 pos{rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)};
    const SimTime start = SimTime::millis(rng.uniform_int(0, 1000));
    const SimTime end = start + SimTime::millis(rng.uniform_int(1, 50));
    handles.push_back(cs.add(static_cast<NodeId>(i), start, end, pos));
  }
  for (int frame = 0; frame < 60; ++frame) {
    if (frame == 30) {
      // Drop roughly the first half of the timeline, then refill a little.
      cs.prune(SimTime::millis(500));
      for (int i = 0; i < 40; ++i) {
        const Vec2 pos{rng.uniform(-1000.0, 1000.0),
                       rng.uniform(-1000.0, 1000.0)};
        const SimTime start = SimTime::millis(rng.uniform_int(500, 1000));
        handles.push_back(cs.add(static_cast<NodeId>(200 + i), start,
                                 start + SimTime::millis(20), pos));
      }
    }
    const SimTime qstart = SimTime::millis(rng.uniform_int(500, 1000));
    const SimTime qend = qstart + SimTime::millis(rng.uniform_int(1, 30));
    const auto self =
        handles[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(handles.size()) - 1))];
    cs.begin_overlap(qstart, qend, self);
    for (int p = 0; p < 40; ++p) {
      const Vec2 pos{rng.uniform(-1100.0, 1100.0),
                     rng.uniform(-1100.0, 1100.0)};
      EXPECT_EQ(cs.overlap_near(pos, range),
                cs.interference_at(pos, qstart, qend, range, self));
    }
  }
}

}  // namespace
}  // namespace vanet::net
