// Sec. VII-A: log-normal shadowing and the receipt probability used by REAR.
#include "analysis/signal.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace vanet::analysis {
namespace {

TEST(Signal, NormalCdfAnchors) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Signal, PathLossMonotone) {
  const LogNormalParams p;
  double prev = path_loss_db(1.0, p);
  for (double d = 10.0; d <= 1000.0; d += 10.0) {
    const double loss = path_loss_db(d, p);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(Signal, PathLossReferencePoint) {
  LogNormalParams p;
  p.ref_loss_db = 46.7;
  EXPECT_DOUBLE_EQ(path_loss_db(p.ref_distance_m, p), 46.7);
  // Below the reference distance the model clamps.
  EXPECT_DOUBLE_EQ(path_loss_db(0.1, p), 46.7);
}

TEST(Signal, TenXDistanceCostsTenNExponentDb) {
  LogNormalParams p;
  p.path_loss_exponent = 3.0;
  EXPECT_NEAR(path_loss_db(100.0, p) - path_loss_db(10.0, p), 30.0, 1e-9);
}

TEST(Signal, ReceiptProbabilityHalfAtNominalRange) {
  const LogNormalParams p;
  const double r = nominal_range(p);
  EXPECT_NEAR(receipt_probability(r, p), 0.5, 1e-9);
  EXPECT_GT(receipt_probability(r * 0.5, p), 0.9);
  EXPECT_LT(receipt_probability(r * 2.0, p), 0.1);
}

TEST(Signal, ZeroSigmaIsDeterministicDisk) {
  LogNormalParams p;
  p.shadowing_sigma_db = 0.0;
  const double r = nominal_range(p);
  EXPECT_DOUBLE_EQ(receipt_probability(r * 0.999, p), 1.0);
  EXPECT_DOUBLE_EQ(receipt_probability(r * 1.001, p), 0.0);
}

TEST(Signal, MaxRangeBeyondNominal) {
  const LogNormalParams p;
  EXPECT_GT(max_range(p), nominal_range(p));
  EXPECT_LT(receipt_probability(max_range(p), p), 0.002);
}

// Property: analytic receipt probability matches a Monte-Carlo shadowing draw.
class ReceiptProbabilityProperty : public ::testing::TestWithParam<double> {};

TEST_P(ReceiptProbabilityProperty, MatchesMonteCarlo) {
  const LogNormalParams p;
  const double d = GetParam();
  core::Rng rng{99};
  const int n = 40000;
  int received = 0;
  for (int i = 0; i < n; ++i) {
    const double rx = mean_rx_dbm(d, p) + rng.normal(0.0, p.shadowing_sigma_db);
    if (rx >= p.rx_threshold_dbm) ++received;
  }
  const double mc = static_cast<double>(received) / n;
  EXPECT_NEAR(mc, receipt_probability(d, p), 0.01) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Distances, ReceiptProbabilityProperty,
                         ::testing::Values(50.0, 150.0, 250.0, 350.0, 500.0));

}  // namespace
}  // namespace vanet::analysis
