// Test fixture: N nodes on a line (optionally moving), one protocol instance
// per node, manually wired — the minimal harness for protocol unit tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "map/segment_index.h"
#include "mobility/constant_velocity.h"
#include "mobility/mobility_manager.h"
#include "net/hello.h"
#include "net/network.h"
#include "routing/registry.h"

namespace vanet::testing {

struct LineFixtureOptions {
  int nodes = 5;
  double spacing = 80.0;      ///< distance between consecutive nodes, m
  double range = 100.0;       ///< unit-disk communication range
  double speed = 0.0;         ///< common +x speed (0 = static topology)
  double speed_step = 0.0;    ///< node i moves at speed + i * speed_step
  std::uint64_t seed = 42;
  routing::ProtocolDeps deps;
  /// When set, bound into every ProtocolContext (with a fixture-owned
  /// SegmentIndex) so the road-geometry protocols can exercise their
  /// GeometryMode::kRoute paths. Vehicles are NOT constrained to it.
  std::shared_ptr<const map::RoadGraph> road_graph;
  int rsus = 0;               ///< RSUs appended after the line, y = +30
  double rsu_spacing = 160.0;
  /// When non-empty, overrides rsus/rsu_spacing with explicit positions.
  std::vector<core::Vec2> rsu_positions;
};

/// Explicit vehicle placement for non-line topologies.
struct VehicleSpec {
  core::Vec2 pos;
  core::Vec2 vel;
};

class LineFixture {
 public:
  /// Arbitrary topology: one vehicle per spec (ids in order).
  LineFixture(const std::string& protocol, std::vector<VehicleSpec> vehicles,
              LineFixtureOptions opt = {})
      : opt_{opt}, rngs_{opt.seed} {
    opt_.nodes = static_cast<int>(vehicles.size());
    auto model = std::make_unique<mobility::ConstantVelocityModel>();
    for (const auto& v : vehicles) {
      const double speed = v.vel.norm();
      model->add_vehicle(v.pos, speed > 0.0 ? v.vel : core::Vec2{1.0, 0.0},
                         speed);
    }
    init(protocol, std::move(model));
  }

  LineFixture(const std::string& protocol, LineFixtureOptions opt = {})
      : opt_{opt}, rngs_{opt.seed} {
    auto model = std::make_unique<mobility::ConstantVelocityModel>();
    for (int i = 0; i < opt_.nodes; ++i) {
      model->add_vehicle({i * opt_.spacing, 0.0}, {1.0, 0.0},
                         opt_.speed + i * opt_.speed_step);
    }
    init(protocol, std::move(model));
  }

 private:
  void init(const std::string& protocol,
            std::unique_ptr<mobility::ConstantVelocityModel> model) {
    mgr = std::make_unique<mobility::MobilityManager>(sim, std::move(model),
                                                      rngs_.stream("m"));
    net = std::make_unique<net::Network>(
        sim, mgr.get(), std::make_unique<net::UnitDiskModel>(opt_.range),
        rngs_.stream("net"));
    for (int i = 0; i < opt_.nodes; ++i) {
      net->add_vehicle_node(static_cast<mobility::VehicleId>(i));
    }
    if (!opt_.rsu_positions.empty()) {
      for (const auto& pos : opt_.rsu_positions) net->add_rsu(pos);
      net->connect_backbone();
    } else {
      for (int k = 0; k < opt_.rsus; ++k) {
        net->add_rsu({(k + 0.5) * opt_.rsu_spacing, 30.0});
      }
      if (opt_.rsus > 0) net->connect_backbone();
    }

    for ([[maybe_unused]] net::NodeId id : net->node_ids()) {
      protocols.push_back(routing::ProtocolRegistry::make(protocol, opt_.deps));
    }
    if (protocols.front()->wants_hello()) {
      hello = std::make_unique<net::HelloService>(*net, rngs_.stream("hello"));
    }
    if (opt_.road_graph) {
      segment_index_ =
          std::make_unique<map::SegmentIndex>(*opt_.road_graph);
    }
    for (net::NodeId id : net->node_ids()) {
      routing::ProtocolContext ctx;
      ctx.sim = &sim;
      ctx.net = net.get();
      ctx.hello = hello.get();
      ctx.rng = &rngs_.stream("proto");
      ctx.events = &events;
      ctx.self = id;
      ctx.map = opt_.road_graph.get();
      ctx.segments = segment_index_.get();
      protocols[id]->bind(ctx);
      net->set_receive_handler(id, [this, id](const net::Packet& p) {
        if (p.kind == net::PacketKind::kHello) {
          if (hello) hello->on_frame(id, p);
          return;
        }
        protocols[id]->handle_frame(p);
      });
      net->set_unicast_fail_handler(id, [this, id](const net::Packet& p) {
        protocols[id]->handle_unicast_failure(p);
      });
      protocols[id]->set_deliver_callback(
          [this](const net::Packet& p) { delivered.push_back(p); });
    }
  }

 public:
  /// Start services and run to absolute time `seconds`.
  void run_to(double seconds) {
    if (!started_) {
      started_ = true;
      mgr->start();
      if (hello) hello->start();
      for (auto& p : protocols) p->start();
    }
    sim.run_until(core::SimTime::seconds(seconds));
  }

  /// Originate one data packet src -> dst at the current time.
  void send(net::NodeId src, net::NodeId dst, std::uint32_t seq = 0,
            std::uint32_t flow = 0) {
    protocols[src]->originate(dst, flow, seq, 512);
  }

  std::size_t delivered_count(std::uint32_t flow, std::uint32_t seq) const {
    std::size_t n = 0;
    for (const auto& p : delivered) {
      if (p.flow == flow && p.seq == seq) ++n;
    }
    return n;
  }

  core::Simulator sim;
  std::unique_ptr<mobility::MobilityManager> mgr;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::HelloService> hello;
  std::vector<std::unique_ptr<routing::RoutingProtocol>> protocols;
  routing::ProtocolEvents events;
  std::vector<net::Packet> delivered;

 private:
  LineFixtureOptions opt_;
  core::RngManager rngs_;
  std::unique_ptr<map::SegmentIndex> segment_index_;  ///< over opt_.road_graph
  bool started_ = false;
};

}  // namespace vanet::testing
