#include "core/sim_time.h"

#include <gtest/gtest.h>

namespace vanet::core {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.as_micros(), 0);
}

TEST(SimTime, NamedConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_EQ(SimTime::millis(250).as_micros(), 250'000);
  EXPECT_EQ(SimTime::micros(42).as_micros(), 42);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).as_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.0).as_millis(), 2000.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(300);
  const SimTime b = SimTime::millis(200);
  EXPECT_EQ((a + b).as_millis(), 500.0);
  EXPECT_EQ((a - b).as_millis(), 100.0);
  EXPECT_EQ((b - a).as_micros(), -100'000);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * std::int64_t{3}).as_millis(), 900.0);
  EXPECT_EQ((a * 0.5).as_millis(), 150.0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::millis(100);
  t += SimTime::millis(50);
  EXPECT_EQ(t.as_millis(), 150.0);
  t -= SimTime::millis(150);
  EXPECT_TRUE(t.is_zero());
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_LE(SimTime::millis(2), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_LT(SimTime::zero(), SimTime::max());
}

TEST(SimTime, SubMicrosecondTruncates) {
  // Integral microseconds: fractions below 1 us are dropped deterministically.
  EXPECT_EQ(SimTime::seconds(1e-7).as_micros(), 0);
  EXPECT_EQ(SimTime::seconds(2.5e-6).as_micros(), 2);
}

}  // namespace
}  // namespace vanet::core
