// Cross-module integration: full scenarios asserting the survey's
// qualitative claims end to end (small scale to keep tests fast).
#include <gtest/gtest.h>

#include "core/rng.h"
#include "mobility/idm_highway.h"
#include "mobility/trace.h"
#include "sim/runner.h"

namespace vanet::sim {
namespace {

ScenarioConfig highway_base() {
  ScenarioConfig cfg;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 3000.0;
  cfg.vehicles_per_direction = 30;
  cfg.comm_range_m = 250.0;
  cfg.duration_s = 40.0;
  cfg.traffic.flows = 6;
  cfg.traffic.rate_pps = 1.0;
  cfg.traffic.start_s = 4.0;
  cfg.traffic.stop_s = 32.0;
  cfg.traffic.min_pair_distance_m = 500.0;
  return cfg;
}

TEST(Integration, DenseHighwayDeliversForMostProtocols) {
  ScenarioConfig cfg = highway_base();
  for (const char* protocol : {"flooding", "aodv", "greedy", "pbr", "yan"}) {
    cfg.protocol = protocol;
    cfg.seed = 3;
    Scenario s{cfg};
    s.run();
    EXPECT_GT(s.report().pdr, 0.25) << protocol;
  }
}

TEST(Integration, FloodingCostsMoreDataFramesThanUnicastRouting) {
  ScenarioConfig cfg = highway_base();
  cfg.protocol = "flooding";
  cfg.seed = 3;
  Scenario flood{cfg};
  flood.run();
  cfg.protocol = "greedy";
  Scenario greedy{cfg};
  greedy.run();
  const auto rf = flood.report();
  const auto rg = greedy.report();
  ASSERT_GT(rf.delivered, 0u);
  ASSERT_GT(rg.delivered, 0u);
  const double flood_cost =
      static_cast<double>(rf.data_frames) / static_cast<double>(rf.delivered);
  const double greedy_cost =
      static_cast<double>(rg.data_frames) / static_cast<double>(rg.delivered);
  EXPECT_GT(flood_cost, 2.0 * greedy_cost);
}

TEST(Integration, MobilityPredictionReducesRouteBreaks) {
  // Table I: mobility-based routing is "reliable, accurate" in normal
  // traffic. PBR should see fewer route breaks per delivered packet than
  // plain AODV because it rebuilds before the predicted expiry.
  ScenarioConfig cfg = highway_base();
  const AggregateReport aodv = [&] {
    ScenarioConfig c = cfg;
    c.protocol = "aodv";
    return run_seeds(c, 3);
  }();
  const AggregateReport pbr = [&] {
    ScenarioConfig c = cfg;
    c.protocol = "pbr";
    return run_seeds(c, 3);
  }();
  EXPECT_GE(pbr.pdr.mean(), aodv.pdr.mean() * 0.9);
  // PBR must actually exercise its prediction machinery.
  EXPECT_GT(pbr.runs[0].preemptive_rebuilds + pbr.runs[1].preemptive_rebuilds +
                pbr.runs[2].preemptive_rebuilds,
            0u);
}

TEST(Integration, RsusRescueSparseTraffic) {
  // Table I: infrastructure routing works where sparse ad hoc fails.
  ScenarioConfig cfg = highway_base();
  cfg.vehicles_per_direction = 6;  // sparse: big inter-vehicle gaps
  cfg.traffic.min_pair_distance_m = 800.0;
  cfg.protocol = "greedy";
  const AggregateReport adhoc = run_seeds(cfg, 3);
  cfg.protocol = "drr";
  cfg.rsu_count = 8;
  const AggregateReport assisted = run_seeds(cfg, 3);
  EXPECT_GT(assisted.pdr.mean(), adhoc.pdr.mean() + 0.1)
      << "RSU backbone should rescue sparse traffic";
}

TEST(Integration, HelloOverheadIsAccounted) {
  // Table I charges mobility/geographic protocols with "overhead": the
  // beacon cost must be visible in the report.
  ScenarioConfig cfg = highway_base();
  cfg.protocol = "greedy";
  cfg.seed = 2;
  Scenario s{cfg};
  s.run();
  const auto r = s.report();
  // ~1 beacon/s/vehicle for 40 s and 60 vehicles => thousands of frames.
  EXPECT_GT(r.hello_frames, 1000u);
}

TEST(Integration, ZoneConfinesFloodOverhead) {
  ScenarioConfig cfg = highway_base();
  cfg.protocol = "flooding";
  cfg.seed = 4;
  Scenario flood{cfg};
  flood.run();
  cfg.protocol = "zone";
  Scenario zone{cfg};
  zone.run();
  ASSERT_GT(zone.report().delivered, 0u);
  const double flood_frames_per_delivery =
      static_cast<double>(flood.report().data_frames) /
      static_cast<double>(std::max<std::uint64_t>(1, flood.report().delivered));
  const double zone_frames_per_delivery =
      static_cast<double>(zone.report().data_frames) /
      static_cast<double>(std::max<std::uint64_t>(1, zone.report().delivered));
  EXPECT_LT(zone_frames_per_delivery, flood_frames_per_delivery);
}

TEST(Integration, OnDemandRoutesAreLoopFree) {
  // The tree-install rule must keep data and RREPs loop-free under real
  // mobility for every on-demand protocol: TTL expiries (the loop symptom)
  // must be a negligible fraction of forwards, and replies must not be
  // relayed more than a small multiple of the replies sent.
  ScenarioConfig cfg = highway_base();
  for (const char* protocol : {"aodv", "pbr", "taleb", "abedi", "gvgrid",
                               "niude", "yan", "rover"}) {
    cfg.protocol = protocol;
    cfg.seed = 6;
    Scenario s{cfg};
    s.run();
    const auto& ev = s.events();
    EXPECT_LE(ev.data_dropped_ttl, 2 + ev.data_forwarded / 50)
        << protocol << " drops too many packets to TTL (routing loop?)";
    if (ev.rrep_sent > 0) {
      EXPECT_LE(ev.rrep_relayed, 12 * ev.rrep_sent)
          << protocol << " relays replies excessively (reply loop?)";
    }
  }
}

TEST(Integration, TicketProbingProbesFarFewerNodesThanFlooding) {
  // Sec. VII: "selectively probes ... to avoid brute-force flooding probing".
  // The number of RREQ copies arriving at targets is the probe footprint.
  ScenarioConfig cfg = highway_base();
  cfg.protocol = "aodv";
  cfg.seed = 2;
  Scenario aodv{cfg};
  aodv.run();
  cfg.protocol = "yan";
  Scenario yan{cfg};
  yan.run();
  ASSERT_GT(aodv.events().rreq_at_target, 0u);
  ASSERT_GT(yan.events().rreq_at_target, 0u);
  EXPECT_LT(yan.events().rreq_at_target * 2, aodv.events().rreq_at_target);
  EXPECT_GT(yan.report().pdr, 0.3);
}

TEST(Integration, TraceScenarioMatchesSchema) {
  // Record a short highway run, replay it through the kTrace scenario path.
  mobility::HighwayConfig hw;
  hw.length = 2000.0;
  core::Rng rng{5};
  mobility::IdmHighwayModel model{hw};
  model.populate(15, rng);
  mobility::TraceRecorder rec;
  for (int step = 0; step <= 300; ++step) {
    if (step % 5 == 0) rec.capture(step * 0.1, model);
    model.step(0.1, rng);
  }
  ScenarioConfig cfg;
  cfg.mobility = MobilityKind::kTrace;
  cfg.trace = rec.trace();
  cfg.protocol = "greedy";
  cfg.duration_s = 25.0;
  cfg.traffic.flows = 4;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 20.0;
  cfg.traffic.min_pair_distance_m = 300.0;
  Scenario s{cfg};
  EXPECT_EQ(s.vehicle_count(), 30u);
  s.run();
  EXPECT_GT(s.report().originated, 0u);
  EXPECT_GT(s.report().pdr, 0.0);
}

// Accounting identity across the whole registry: every protocol, one small
// dynamic run; delivered <= originated, PDR sane, and the harness never
// crashes regardless of category.
class RegistrySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistrySweep, RunsCleanAndAccountsPackets) {
  ScenarioConfig cfg = highway_base();
  cfg.duration_s = 25.0;
  cfg.traffic.stop_s = 20.0;
  cfg.vehicles_per_direction = 20;
  cfg.protocol = GetParam();
  cfg.rsu_count = 2;  // used by drr, inert for the rest
  cfg.bus_count = 2;  // used by bus
  cfg.seed = 11;
  Scenario s{cfg};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.originated, 0u);
  EXPECT_LE(r.delivered, r.originated);
  EXPECT_GE(r.pdr, 0.0);
  EXPECT_LE(r.pdr, 1.0);
  EXPECT_LE(r.collision_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RegistrySweep,
                         ::testing::Values("flooding", "biswas", "aodv", "dsr",
                                           "dsdv", "pbr", "taleb", "abedi",
                                           "wedde", "drr", "bus", "greedy",
                                           "zone", "grid", "rover", "rear",
                                           "gvgrid", "niude", "car", "yan",
                                           "yan-ss"));

}  // namespace
}  // namespace vanet::sim
