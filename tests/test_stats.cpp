#include "analysis/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vanet::analysis {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Percentile, Basics) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  // Linear interpolation between order statistics.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[4], 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

}  // namespace
}  // namespace vanet::analysis
