#include "sim/traffic.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "mobility/constant_velocity.h"
#include "routing/protocol.h"

namespace vanet::sim {
namespace {

/// Protocol stub that records originate() calls.
class RecordingProtocol final : public routing::RoutingProtocol {
 public:
  struct Sent {
    net::NodeId dst;
    std::uint32_t flow;
    std::uint32_t seq;
  };
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t) override {
    sent.push_back({dst, flow, seq});
    return true;
  }
  void handle_frame(const net::Packet&) override {}
  std::string_view name() const override { return "recording"; }
  routing::Category category() const override {
    return routing::Category::kConnectivity;
  }
  std::vector<Sent> sent;
};

struct TrafficFixture {
  core::Simulator sim;
  core::RngManager rngs{31};
  std::unique_ptr<mobility::MobilityManager> mgr;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<RecordingProtocol>> stubs;
  routing::ProtocolEvents events;
  Metrics metrics;

  explicit TrafficFixture(int vehicles, double spacing = 300.0) {
    auto model = std::make_unique<mobility::ConstantVelocityModel>();
    for (int i = 0; i < vehicles; ++i) {
      model->add_vehicle({i * spacing, 0.0}, {1.0, 0.0}, 0.0);
    }
    mgr = std::make_unique<mobility::MobilityManager>(sim, std::move(model),
                                                      rngs.stream("m"));
    net = std::make_unique<net::Network>(
        sim, mgr.get(), std::make_unique<net::UnitDiskModel>(100.0),
        rngs.stream("net"));
    for (int i = 0; i < vehicles; ++i) {
      net->add_vehicle_node(static_cast<mobility::VehicleId>(i));
      stubs.push_back(std::make_unique<RecordingProtocol>());
    }
  }

  std::vector<routing::RoutingProtocol*> raw() {
    std::vector<routing::RoutingProtocol*> out;
    for (auto& s : stubs) out.push_back(s.get());
    return out;
  }
};

TEST(Traffic, SchedulesExpectedPacketCount) {
  TrafficFixture f{10};
  TrafficConfig cfg;
  cfg.flows = 3;
  cfg.rate_pps = 4.0;
  cfg.start_s = 1.0;
  cfg.stop_s = 6.0;
  CbrTraffic traffic{f.sim, *f.net, f.raw(), 10, f.metrics, f.rngs.stream("t"),
                     cfg};
  traffic.start();
  f.sim.run_until(core::SimTime::seconds(10.0));
  std::size_t total = 0;
  for (auto& s : f.stubs) total += s->sent.size();
  // 3 flows x 5 s x 4 pps = 60 packets (exact: offsets stay inside the window).
  EXPECT_EQ(total, 60u);
  EXPECT_EQ(f.metrics.originated(), 60u);
}

TEST(Traffic, FlowsHaveDistinctEndpointsAndStableSeqs) {
  TrafficFixture f{12};
  TrafficConfig cfg;
  cfg.flows = 5;
  cfg.min_pair_distance_m = 500.0;
  CbrTraffic traffic{f.sim, *f.net, f.raw(), 12, f.metrics, f.rngs.stream("t"),
                     cfg};
  traffic.start();
  ASSERT_EQ(traffic.flows().size(), 5u);
  for (const auto& flow : traffic.flows()) {
    EXPECT_NE(flow.src, flow.dst);
    EXPECT_LT(flow.src, 12u);
    EXPECT_LT(flow.dst, 12u);
    const double d = (f.net->position(flow.src) - f.net->position(flow.dst)).norm();
    EXPECT_GE(d, 500.0);
  }
  f.sim.run_until(core::SimTime::seconds(60.0));
  // Per-flow sequence numbers are consecutive from 0.
  for (auto& stub : f.stubs) {
    std::map<std::uint32_t, std::uint32_t> next_seq;
    for (const auto& sent : stub->sent) {
      EXPECT_EQ(sent.seq, next_seq[sent.flow]++);
    }
  }
}

TEST(Traffic, SameSeedSameFlows) {
  TrafficFixture a{10}, b{10};
  TrafficConfig cfg;
  cfg.flows = 4;
  core::RngManager ra{77}, rb{77};
  CbrTraffic ta{a.sim, *a.net, a.raw(), 10, a.metrics, ra.stream("t"), cfg};
  CbrTraffic tb{b.sim, *b.net, b.raw(), 10, b.metrics, rb.stream("t"), cfg};
  ta.start();
  tb.start();
  ASSERT_EQ(ta.flows().size(), tb.flows().size());
  for (std::size_t i = 0; i < ta.flows().size(); ++i) {
    EXPECT_EQ(ta.flows()[i].src, tb.flows()[i].src);
    EXPECT_EQ(ta.flows()[i].dst, tb.flows()[i].dst);
  }
}

}  // namespace
}  // namespace vanet::sim
