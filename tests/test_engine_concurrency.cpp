// TSan-targeted stress for the ExperimentEngine worker pool.
//
// test_experiment.cpp proves jobs=4 == jobs=1 on a small matrix; these tests
// exist to give the ThreadSanitizer CI leg a concurrency surface worth
// instrumenting: many workers racing a thin job list (maximum contention on
// the job counter and maximum scenario construction/teardown churn), the
// hardware-concurrency path, and exception propagation out of worker
// threads. They run in every leg, but their value is highest under
// -DVANET_TSAN=ON, where any data race in the engine/report-aggregation
// path is a hard failure.
#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace vanet::sim {
namespace {

// Deliberately tiny: the point is worker churn, not simulated physics. With
// 24 runs of ~1 simulated second each, 8 workers constantly hit the atomic
// job counter and recycle Scenario stacks.
ScenarioConfig micro_highway() {
  ScenarioConfig cfg;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 1000.0;
  cfg.vehicles_per_direction = 6;
  cfg.duration_s = 1.0;
  cfg.traffic.flows = 2;
  cfg.traffic.start_s = 0.2;
  cfg.traffic.stop_s = 0.8;
  return cfg;
}

ExperimentSpec thin_job_spec() {
  ExperimentSpec spec;
  spec.base = micro_highway();
  spec.protocols = {"aodv", "flooding", "greedy"};
  spec.axes = {{"vehicles_per_direction", {"4", "8"}}};
  spec.seeds = {1, 2, 3, 4};  // 3 protocols x 2 axis values x 4 seeds = 24
  return spec;
}

TEST(EngineConcurrency, EightWorkersMatchSerialByteForByte) {
  const ExperimentSpec spec = thin_job_spec();

  std::ostringstream serial_out, parallel_out;
  JsonlSink serial_sink{serial_out}, parallel_sink{parallel_out};
  ExperimentEngine{1}.run(spec, serial_sink);
  ExperimentEngine{8}.run(spec, parallel_sink);

  // The JSONL stream embeds every per-run report and config digest, so byte
  // equality here is per-run bit-identity, not just aggregate equality.
  EXPECT_EQ(serial_out.str(), parallel_out.str());
  EXPECT_GT(serial_out.str().size(), 0u);
}

TEST(EngineConcurrency, MoreWorkersThanJobsIsExact) {
  ExperimentSpec spec = thin_job_spec();
  spec.protocols = {"aodv"};
  spec.axes.clear();
  spec.seeds = {5, 6};  // 2 runs, 8 requested workers

  std::ostringstream a, b;
  JsonlSink sink_a{a}, sink_b{b};
  ExperimentEngine{8}.run(spec, sink_a);
  ExperimentEngine{1}.run(spec, sink_b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(EngineConcurrency, HardwareConcurrencyPathMatchesSerial) {
  const ExperimentSpec spec = thin_job_spec();

  ExperimentEngine hw{0};  // <= 0 resolves to hardware concurrency
  EXPECT_GE(hw.jobs(), 1);

  std::ostringstream hw_out, serial_out;
  JsonlSink hw_sink{hw_out}, serial_sink{serial_out};
  hw.run(spec, hw_sink);
  ExperimentEngine{1}.run(spec, serial_sink);
  EXPECT_EQ(hw_out.str(), serial_out.str());
}

TEST(EngineConcurrency, WorkerExceptionPropagatesToCaller) {
  ExperimentSpec spec = thin_job_spec();
  // Scenario construction throws inside the worker thread (not in expand):
  // graph mobility over a map file that does not exist.
  spec.base.mobility = MobilityKind::kGraph;
  spec.base.map.source = MapSource::kFile;
  spec.base.map.file = "/nonexistent/engine_concurrency_map.csv";
  spec.protocols = {"aodv"};
  spec.axes.clear();
  // Fail-fast mode: with capture on (the default) the engine would turn this
  // into a FailureRecord instead of throwing.
  spec.guards.capture = false;

  EXPECT_THROW(ExperimentEngine{4}.run(spec), std::runtime_error);
  EXPECT_THROW(ExperimentEngine{1}.run(spec), std::runtime_error);
}

}  // namespace
}  // namespace vanet::sim
