#include "net/packet.h"

#include <gtest/gtest.h>

#include <memory>

namespace vanet::net {
namespace {

// Stand-in header types borrowing two distinct registry tags: header_as
// dispatches purely on the tag, so any two distinct HeaderTag values exercise
// the match/mismatch paths.
struct HeaderA final : Header {
  static constexpr HeaderTag kTag = HeaderTag::kHello;
  HeaderA() : Header{kTag} {}
  int value = 1;
};
struct HeaderB final : Header {
  static constexpr HeaderTag kTag = HeaderTag::kZone;
  HeaderB() : Header{kTag} {}
  int value = 2;
};

TEST(Packet, HeaderTypedAccess) {
  Packet p;
  p.header = std::make_shared<HeaderA>();
  EXPECT_NE(p.header_as<HeaderA>(), nullptr);
  EXPECT_EQ(p.header_as<HeaderB>(), nullptr);
  EXPECT_EQ(p.header_as<HeaderA>()->value, 1);
  EXPECT_EQ(p.header->tag(), HeaderTag::kHello);
}

TEST(Packet, NullHeaderIsSafe) {
  Packet p;
  EXPECT_EQ(p.header_as<HeaderA>(), nullptr);
}

TEST(Packet, CopySharesHeader) {
  Packet p;
  p.header = std::make_shared<HeaderA>();
  Packet q = p;
  EXPECT_EQ(q.header.get(), p.header.get());
  EXPECT_EQ(p.header.use_count(), 2);
}

TEST(Packet, Defaults) {
  Packet p;
  EXPECT_EQ(p.rx, kBroadcastId);
  EXPECT_EQ(p.destination, kBroadcastId);
  EXPECT_EQ(p.hops, 0);
  EXPECT_GT(p.ttl, 0);
}

TEST(PacketKind, Names) {
  EXPECT_EQ(to_string(PacketKind::kData), "data");
  EXPECT_EQ(to_string(PacketKind::kControl), "control");
  EXPECT_EQ(to_string(PacketKind::kHello), "hello");
}

}  // namespace
}  // namespace vanet::net
