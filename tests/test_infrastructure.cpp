// Infrastructure protocols: RSU hand-off, backbone crossing (DRR's virtual
// equivalent node) and bus-ferry store-carry-forward.
#include <gtest/gtest.h>

#include "util/line_fixture.h"

namespace vanet::testing {
namespace {

TEST(Drr, BackboneBridgesDisconnectedClusters) {
  // Two vehicle clusters 600 m apart (unreachable with 100 m radios), each
  // covered by an RSU; RSUs share the wired backbone.
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 200.0;  // 0:(0) 1:(200) 2:(400) 3:(600) -- all isolated
  opt.range = 120.0;
  opt.rsus = 2;
  opt.rsu_spacing = 600.0;  // RSUs at x=300 -> wait: (k+0.5)*600 = 300, 900
  LineFixture f{"drr", opt};
  // RSU 4 at (300, 30): reaches nodes 1 (200) and 2 (400); RSU 5 at (900, 30)
  // reaches node 3? distance((600,0),(900,30)) = 301 m: no. Redo geometry:
  // instead verify partial bridge 1 -> 2 via RSU4 (neither hears the other
  // directly: distance 200 > 120).
  f.run_to(3.0);
  f.send(1, 2, 1);
  f.run_to(10.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
}

TEST(Drr, CrossBackboneDelivery) {
  // Two parked vehicles 2 km apart, each next to an RSU. The only route is
  // vehicle -> RSU -> wired backbone -> RSU -> vehicle: DRR's VEN in action.
  LineFixtureOptions opt;
  opt.nodes = 2;
  opt.spacing = 2000.0;
  opt.range = 120.0;
  opt.rsu_positions = {{50.0, 30.0}, {1950.0, 30.0}};
  LineFixture f{"drr", opt};
  f.run_to(3.0);
  f.send(0, 1, 1);
  f.run_to(10.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  EXPECT_GE(f.net->counters().backbone_frames, 1u);
}

TEST(Bus, FerryCarriesAcrossGap) {
  // Source cluster and destination cluster 400 m apart; the bus (node 1)
  // drives from the source cluster toward the destination, ferrying data.
  core::Simulator sim;
  core::RngManager rngs{5};
  auto model = std::make_unique<mobility::ConstantVelocityModel>();
  model->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 0.0);    // 0: source (parked)
  model->add_vehicle({50.0, 0.0}, {1.0, 0.0}, 20.0);  // 1: the bus
  model->add_vehicle({500.0, 0.0}, {1.0, 0.0}, 0.0);  // 2: destination
  mobility::MobilityManager mgr{sim, std::move(model), rngs.stream("m")};
  net::Network net{sim, &mgr, std::make_unique<net::UnitDiskModel>(100.0),
                   rngs.stream("net")};
  for (mobility::VehicleId v : {0u, 1u, 2u}) net.add_vehicle_node(v);

  routing::ProtocolDeps deps;
  auto ferries = std::make_shared<routing::FerrySet>();
  ferries->insert(1);
  deps.ferries = ferries;

  std::vector<std::unique_ptr<routing::RoutingProtocol>> protocols;
  routing::ProtocolEvents events;
  net::HelloService hello{net, rngs.stream("hello")};
  std::vector<net::Packet> delivered;
  for (net::NodeId id : net.node_ids()) {
    protocols.push_back(routing::ProtocolRegistry::make("bus", deps));
    routing::ProtocolContext ctx;
    ctx.sim = &sim;
    ctx.net = &net;
    ctx.hello = &hello;
    ctx.rng = &rngs.stream("proto");
    ctx.events = &events;
    ctx.self = id;
    protocols[id]->bind(ctx);
    net.set_receive_handler(id, [&, id](const net::Packet& p) {
      if (p.kind == net::PacketKind::kHello) {
        hello.on_frame(id, p);
        return;
      }
      protocols[id]->handle_frame(p);
    });
    net.set_unicast_fail_handler(id, [&, id](const net::Packet& p) {
      protocols[id]->handle_unicast_failure(p);
    });
    protocols[id]->set_deliver_callback(
        [&](const net::Packet& p) { delivered.push_back(p); });
  }
  mgr.start();
  hello.start();
  for (auto& p : protocols) p->start();

  sim.run_until(core::SimTime::seconds(2.0));
  protocols[0]->originate(2, 0, 1, 512);  // no greedy path: hand to the bus
  // Bus reaches the destination's disk (x=400) at t ~ 17.5 s.
  sim.run_until(core::SimTime::seconds(30.0));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].seq, 1u);
  // The delay reflects the physical carry, not a queue artifact.
  EXPECT_GT((delivered[0].created_at + core::SimTime::seconds(10.0)),
            delivered[0].created_at);
}

TEST(Bus, WithoutFerriesDegradesToGreedyDrop) {
  LineFixtureOptions opt;
  opt.nodes = 3;
  opt.spacing = 250.0;  // disconnected
  opt.range = 100.0;
  opt.deps.ferries = std::make_shared<routing::FerrySet>();  // none
  LineFixture f{"bus", opt};
  f.run_to(2.0);
  f.send(0, 2, 1);
  f.run_to(15.0);
  EXPECT_EQ(f.delivered_count(0, 1), 0u);
  EXPECT_GT(f.events.data_dropped_no_route, 0u);
}

}  // namespace
}  // namespace vanet::testing
