#include "sim/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vanet::sim {
namespace {

TEST(Table, MarkdownLayout) {
  Table t{{"name", "value"}};
  t.add_row({"pdr", "0.95"});
  t.add_row({"delay", "12.5"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| pdr "), std::string::npos);
  EXPECT_NE(s.find("|------"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t{{"x"}};
  t.add_row({"longer-cell"});
  std::ostringstream out;
  t.print(out);
  std::istringstream in{out.str()};
  std::string header, sep, row;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(sep.size(), row.size());
}

TEST(Table, RowWidthMismatchAborts) {
  Table t{{"a", "b"}};
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
  EXPECT_EQ(fmt_int(42), "42");
  EXPECT_EQ(fmt_pm(10.0, 0.5, 1), "10.0 ± 0.5");
}

}  // namespace
}  // namespace vanet::sim
