// Edge-list CSV importer/exporter (map/builders.h): round-trip fidelity and
// loud rejection of every malformed-input class the header documents.
#include "map/builders.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vanet::map {
namespace {

constexpr const char* kTriangleCsv =
    "# demo map\n"
    "node,0,0,0\n"
    "node,1,300,0\n"
    "node,2,150,260.5\n"
    "edge,0,1\n"
    "edge,1,2\n"
    "edge,2,0\n";

TEST(MapIo, LoadsEdgeListCsv) {
  std::istringstream in{kTriangleCsv};
  const RoadGraph g = load_edge_list_csv(in);
  EXPECT_EQ(g.intersection_count(), 3);
  EXPECT_EQ(g.segment_count(), 3u);
  EXPECT_FALSE(g.is_grid());
  EXPECT_EQ(g.intersection_pos(2), (core::Vec2{150.0, 260.5}));
  // Segment ids follow edge-record order.
  EXPECT_EQ(g.segment_ends(0), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(g.segment_ends(1), (std::pair<int, int>{1, 2}));
  EXPECT_DOUBLE_EQ(g.segment_length(0), 300.0);
}

TEST(MapIo, CrlfLineEndingsAccepted) {
  // Windows-saved CSVs must parse identically (trailing \r stripped).
  std::istringstream in{
      "# comment\r\nnode,0,0,0\r\nnode,1,120,50\r\nedge,0,1\r\n"};
  const RoadGraph g = load_edge_list_csv(in);
  EXPECT_EQ(g.intersection_count(), 2);
  EXPECT_EQ(g.intersection_pos(1), (core::Vec2{120.0, 50.0}));
}

TEST(MapIo, RecordsInAnyOrderAndCommentsSkipped) {
  std::istringstream in{
      "edge,1,0\n"
      "# late nodes are fine — the file is validated as a whole\n"
      "\n"
      "node,1,100,0\n"
      "node,0,0,0\n"};
  const RoadGraph g = load_edge_list_csv(in);
  EXPECT_EQ(g.intersection_count(), 2);
  EXPECT_EQ(g.segment_count(), 1u);
}

TEST(MapIo, CsvRoundTrip) {
  std::istringstream in{kTriangleCsv};
  const RoadGraph g = load_edge_list_csv(in);
  std::ostringstream out;
  save_edge_list_csv(g, out);
  std::istringstream in2{out.str()};
  const RoadGraph g2 = load_edge_list_csv(in2);
  ASSERT_EQ(g2.intersection_count(), g.intersection_count());
  ASSERT_EQ(g2.segment_count(), g.segment_count());
  for (int i = 0; i < g.intersection_count(); ++i) {
    EXPECT_EQ(g2.intersection_pos(i), g.intersection_pos(i)) << i;
  }
  for (std::size_t s = 0; s < g.segment_count(); ++s) {
    EXPECT_EQ(g2.segment_ends(static_cast<int>(s)),
              g.segment_ends(static_cast<int>(s)));
    EXPECT_DOUBLE_EQ(g2.segment_length(static_cast<int>(s)),
                     g.segment_length(static_cast<int>(s)));
  }
}

TEST(MapIo, GridSurvivesCsvRoundTrip) {
  // Exporting a generated lattice and re-importing keeps geometry and ids
  // (the reload is a general graph — lattice metadata is not serialized).
  const RoadGraph g = make_grid(4, 3, 120.0);
  std::ostringstream out;
  save_edge_list_csv(g, out);
  std::istringstream in{out.str()};
  const RoadGraph g2 = load_edge_list_csv(in);
  EXPECT_FALSE(g2.is_grid());
  ASSERT_EQ(g2.intersection_count(), g.intersection_count());
  ASSERT_EQ(g2.segment_count(), g.segment_count());
  for (int i = 0; i < g.intersection_count(); ++i) {
    EXPECT_EQ(g2.intersection_pos(i), g.intersection_pos(i)) << i;
  }
  for (std::size_t s = 0; s < g.segment_count(); ++s) {
    EXPECT_EQ(g2.segment_ends(static_cast<int>(s)),
              g.segment_ends(static_cast<int>(s)));
  }
}

TEST(MapIo, FileRoundTrip) {
  const RoadGraph g = make_grid(3, 3, 100.0);
  const std::string path = ::testing::TempDir() + "vanet_map_io_test.csv";
  save_edge_list_csv_file(g, path);
  const RoadGraph g2 = load_edge_list_csv_file(path);
  EXPECT_EQ(g2.intersection_count(), g.intersection_count());
  EXPECT_EQ(g2.segment_count(), g.segment_count());
  std::remove(path.c_str());
  EXPECT_THROW(load_edge_list_csv_file(path), std::runtime_error);
}

void expect_rejected(const std::string& csv, const std::string& why_contains) {
  std::istringstream in{csv};
  try {
    load_edge_list_csv(in);
    FAIL() << "expected rejection (" << why_contains << ") of:\n" << csv;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(why_contains), std::string::npos)
        << e.what();
  }
}

TEST(MapIo, MalformedInputRejected) {
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,1\nbogus,1,2\n",
                  "unknown record");
  expect_rejected("node,0,0\n", "node needs id,x,y");
  expect_rejected("node,x,0,0\n", "bad node id");
  expect_rejected("node,0,zero,0\n", "bad node coordinates");
  expect_rejected("node,0,0,0\nnode,0,1,1\nedge,0,0\n", "duplicate node id");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0\n", "edge needs a,b");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,q\n", "bad edge endpoint");
  // Absurd ids must fail with a line number, not attempt a huge resize or
  // wrap in the narrowing to int.
  expect_rejected("node,8000000000,0,0\n", "bad node id");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,4294967296\n",
                  "bad edge endpoint");
  // Non-finite coordinates would poison lengths/bbox/index cells.
  expect_rejected("node,0,nan,0\nnode,1,1,1\nedge,0,1\n",
                  "bad node coordinates");
  expect_rejected("node,0,0,inf\nnode,1,1,1\nedge,0,1\n",
                  "bad node coordinates");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,1,1\n", "self-loop");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,1\nedge,1,0\n",
                  "duplicate edge");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,2\n", "out of range");
  expect_rejected("node,0,0,0\nnode,2,1,1\nedge,0,2\n", "dense 0..N-1");
  expect_rejected("node,0,0,0\n", "at least two nodes");
  expect_rejected("", "at least two nodes");
  expect_rejected("node,0,0,0\nnode,1,1,1\nnode,2,5,5\nedge,0,1\n",
                  "has no edges");
  expect_rejected("node,0,3,4\nnode,1,3,4\nedge,0,1\n", "zero-length");
}

// Diagnostics must name the offending 1-based source line — blank lines and
// comments count, so the number matches what an editor shows.
TEST(MapIo, MalformedInputNamesTheLine) {
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,1\nbogus,1,2\n", "line 4:");
  expect_rejected("# header comment\n\nnode,0,0\n", "line 3:");
  expect_rejected("node,0,0,0\nnode,1,1,1\nedge,0,q\n", "line 3:");
  expect_rejected("node,0,0,0\nnode,0,1,1\n", "line 2:");
  expect_rejected("node,8000000000,0,0\n", "line 1:");
}

}  // namespace
}  // namespace vanet::map
