#include "core/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "core/simulator.h"

namespace vanet::core {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  q.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  q.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  SimTime now;
  while (q.run_next(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, SimTime::millis(30));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  SimTime now;
  while (q.run_next(now)) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsDispatch) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime::millis(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  SimTime now;
  EXPECT_FALSE(q.run_next(now));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, HandleReportsFiredAsNotPending) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  SimTime now;
  EXPECT_TRUE(q.run_next(now));
  EXPECT_FALSE(h.pending());
  h.cancel();  // safe after firing
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  q.schedule(SimTime::millis(9), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime::millis(9));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  SimTime now;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(now + SimTime::millis(1), chain);
  };
  q.schedule(SimTime::millis(1), chain);
  while (q.run_next(now)) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(now, SimTime::millis(5));
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsInert) {
  EventQueue q;
  bool a_fired = false;
  bool b_fired = false;
  EventHandle a = q.schedule(SimTime::millis(5), [&] { a_fired = true; });
  a.cancel();  // frees the slot; the free list hands it to the next schedule
  EventHandle b = q.schedule(SimTime::millis(6), [&] { b_fired = true; });
  EXPECT_FALSE(a.pending());
  a.cancel();  // stale generation: must not disturb b's event
  EXPECT_TRUE(b.pending());
  SimTime now;
  while (q.run_next(now)) {
  }
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
}

TEST(EventQueue, CancelReclaimsHeapEntryEagerly) {
  EventQueue q;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 100; ++i) {
    hs.push_back(q.schedule(SimTime::millis(i), [] {}));
  }
  // Cancel from the middle of the heap, not just the root.
  for (int i = 10; i < 90; ++i) hs[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(q.size(), 20u);  // dead timers left the heap immediately
  SimTime now;
  int fired = 0;
  while (q.run_next(now)) ++fired;
  EXPECT_EQ(fired, 20);
}

TEST(EventQueue, OversizeCallbackFallsBackToHeapOnce) {
  EventQueue q;
  std::array<char, 2 * EventQueue::kInlineBytes> big{};
  big[0] = 7;
  char out = 0;
  q.schedule(SimTime::millis(1), [big, &out] { out = big[0]; });
  EXPECT_EQ(q.alloc_stats().oversize_callbacks, 1u);
  SimTime now;
  EXPECT_TRUE(q.run_next(now));
  EXPECT_EQ(out, 7);
  // An oversized pending callback must also release its box when cancelled
  // or when the queue is destroyed (ASan would flag a leak here).
  q.schedule(SimTime::millis(2), [big] { (void)big; });
  EventHandle h = q.schedule(SimTime::millis(3), [big] { (void)big; });
  h.cancel();
  EXPECT_EQ(q.alloc_stats().oversize_callbacks, 3u);
}

TEST(EventQueue, SteadyStateSchedulingDoesNotAllocate) {
  EventQueue q;
  SimTime now;
  // Warm-up: grow the pool to its working depth.
  for (int i = 0; i < 1000; ++i) q.schedule(now + SimTime::micros(i), [] {});
  while (q.run_next(now)) {
  }
  const auto warm = q.alloc_stats();
  // Steady state at the same depth: the pool must not grow again and every
  // closure must fit the inline storage.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 1000; ++i) q.schedule(now + SimTime::micros(i), [] {});
    while (q.run_next(now)) {
    }
  }
  EXPECT_EQ(q.alloc_stats().slab_allocations, warm.slab_allocations);
  EXPECT_EQ(q.alloc_stats().oversize_callbacks, 0u);
}

TEST(EventQueueProperty, MatchesMultimapReferenceModel) {
  // Randomized schedule / cancel / fire churn against a reference model: a
  // multimap keyed (time, insertion order) must predict the exact dispatch
  // sequence, and eager cancel keeps q.size() equal to the model's.
  std::mt19937 rng{20260730u};
  for (std::uint32_t round = 0; round < 10; ++round) {
    EventQueue q;
    SimTime now;
    using Key = std::pair<std::int64_t, std::uint64_t>;
    std::multimap<Key, int> ref;
    std::map<int, std::multimap<Key, int>::iterator> live;
    std::vector<std::pair<int, EventHandle>> handles;
    std::vector<int> fired;
    std::uint64_t order = 0;
    int next_id = 0;
    auto run_one = [&] {
      if (!q.run_next(now)) return false;
      if (ref.empty()) {
        ADD_FAILURE() << "queue fired but model was empty";
        return false;
      }
      // fired.back() was appended by the callback just now.
      const auto front = ref.begin();
      EXPECT_EQ(fired.back(), front->second);
      live.erase(front->second);
      ref.erase(front);
      return true;
    };
    for (int step = 0; step < 2000; ++step) {
      const auto op = rng() % 10;
      if (op < 5) {
        // Small time range on purpose: plenty of equal-time collisions.
        const SimTime at = now + SimTime::millis(static_cast<std::int64_t>(
                                     rng() % 16));
        const int id = next_id++;
        EventHandle h =
            q.schedule(at, [id, &fired] { fired.push_back(id); });
        auto it = ref.emplace(Key{at.as_micros(), order++}, id);
        live.emplace(id, it);
        handles.emplace_back(id, h);
      } else if (op < 7 && !handles.empty()) {
        // Cancel a random handle; stale/fired ones must be inert no-ops.
        auto& [id, h] = handles[rng() % handles.size()];
        const auto it = live.find(id);
        EXPECT_EQ(h.pending(), it != live.end());
        h.cancel();
        EXPECT_FALSE(h.pending());
        if (it != live.end()) {
          ref.erase(it->second);
          live.erase(it);
        }
      } else {
        run_one();
      }
      ASSERT_EQ(q.size(), ref.size());
    }
    while (run_one()) {
    }
    EXPECT_TRUE(ref.empty());
  }
}

TEST(Simulator, ScheduleEveryIsDriftFreePeriodic) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_every(SimTime::millis(10), SimTime::micros(3333),
                     [&] { times.push_back(sim.now()); });
  sim.run_until(SimTime::seconds(1.0));
  // Firings at exactly first + k*period: no accumulation drift ever.
  ASSERT_GT(times.size(), 250u);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_EQ(times[k], SimTime::millis(10) +
                            SimTime::micros(3333) *
                                static_cast<std::int64_t>(k));
  }
}

TEST(Simulator, ScheduleEveryReusesOnePoolSlot) {
  Simulator sim;
  int count = 0;
  sim.schedule_every(SimTime::millis(1), SimTime::millis(1), [&] { ++count; });
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(count, 10000);
  // One periodic timer = one slot = a single 256-slot slab, for the run.
  EXPECT_EQ(sim.scheduler_stats().slab_allocations, 1u);
  EXPECT_EQ(sim.scheduler_stats().peak_pending, 1u);
}

TEST(Simulator, ScheduleEveryCancelStops) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.schedule_every(SimTime::millis(1), SimTime::millis(1), [&] {
    if (++count == 3) h.cancel();  // cancel from inside the firing callback
  });
  EXPECT_TRUE(h.pending());
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RecurringHandleStaysPendingAcrossFirings) {
  Simulator sim;
  EventHandle h;
  std::vector<bool> pending_at_fire;
  h = sim.schedule_every(SimTime::millis(5), SimTime::millis(5),
                         [&] { pending_at_fire.push_back(h.pending()); });
  sim.run_until(SimTime::millis(12));
  ASSERT_EQ(pending_at_fire.size(), 2u);
  EXPECT_TRUE(pending_at_fire[0]);
  EXPECT_TRUE(pending_at_fire[1]);
  EXPECT_TRUE(h.pending());  // still armed for t=15ms
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, RecurringVariablePeriodAndStop) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_recurring(SimTime::millis(1), [&](SimTime fired_at) {
    times.push_back(fired_at);
    if (times.size() == 4) return SimTime::micros(-1);  // stop
    // Growing gaps: 1ms, 2ms, 3ms...
    return fired_at + SimTime::millis(static_cast<std::int64_t>(times.size()));
  });
  sim.run_until(SimTime::seconds(1.0));
  const std::vector<SimTime> expect{SimTime::millis(1), SimTime::millis(2),
                                    SimTime::millis(4), SimTime::millis(7)};
  EXPECT_EQ(times, expect);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(EventQueue, ReservedSeqBlockKeepsUpfrontFifoRank) {
  // A recurring event drawing from a reserved block must dispatch ahead of
  // later-scheduled events at equal times, exactly as if every firing had
  // been scheduled upfront when the block was claimed.
  EventQueue q;
  std::vector<int> order;
  const std::uint32_t base = q.reserve_seq_block(2);
  q.schedule(SimTime::millis(5), [&] { order.push_back(10); });
  q.schedule(SimTime::millis(6), [&] { order.push_back(11); });
  q.schedule_recurring(SimTime::millis(5), base, 2, [&](SimTime fired_at) {
    order.push_back(0);
    return order.size() < 3 ? fired_at + SimTime::millis(1)
                            : SimTime::micros(-1);
  });
  SimTime now;
  while (q.run_next(now)) {
  }
  // At t=5ms and t=6ms the recurring firing outranks the one-shot scheduled
  // earlier in real time but after the reservation.
  EXPECT_EQ(order, (std::vector<int>{0, 10, 0, 11}));
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(3.0), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(2.0));
  sim.run_until(SimTime::seconds(4.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::millis(-5), [&] { fired = true; });
  sim.run_until(SimTime::zero());
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(SimTime::millis(2), [&] { ++fired; });
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, DispatchCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

}  // namespace
}  // namespace vanet::core
