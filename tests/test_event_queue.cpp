#include "core/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.h"

namespace vanet::core {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  q.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  q.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  SimTime now;
  while (q.run_next(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, SimTime::millis(30));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  SimTime now;
  while (q.run_next(now)) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsDispatch) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime::millis(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  SimTime now;
  EXPECT_FALSE(q.run_next(now));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, HandleReportsFiredAsNotPending) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  SimTime now;
  EXPECT_TRUE(q.run_next(now));
  EXPECT_FALSE(h.pending());
  h.cancel();  // safe after firing
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  q.schedule(SimTime::millis(9), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime::millis(9));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  SimTime now;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(now + SimTime::millis(1), chain);
  };
  q.schedule(SimTime::millis(1), chain);
  while (q.run_next(now)) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(now, SimTime::millis(5));
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(3.0), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(2.0));
  sim.run_until(SimTime::seconds(4.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::millis(-5), [&] { fired = true; });
  sim.run_until(SimTime::zero());
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(SimTime::millis(2), [&] { ++fired; });
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, DispatchCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

}  // namespace
}  // namespace vanet::core
