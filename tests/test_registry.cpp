#include "routing/registry.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace vanet::routing {
namespace {

TEST(Registry, AllFiveCategoriesRepresented) {
  std::set<Category> categories;
  for (const auto& info : ProtocolRegistry::all()) categories.insert(info.category);
  EXPECT_EQ(categories.size(), 5u);
}

TEST(Registry, ExpectedProtocolsPresent) {
  for (const char* name :
       {"flooding", "biswas", "aodv", "dsr", "dsdv", "pbr", "taleb", "abedi",
        "drr", "bus", "greedy", "zone", "grid", "rear", "gvgrid", "car", "yan",
        "yan-ss", "wedde", "rover", "niude"}) {
    EXPECT_NE(ProtocolRegistry::find(name), nullptr) << name;
  }
  EXPECT_GE(ProtocolRegistry::all().size(), 21u);
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto& info : ProtocolRegistry::all()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
  }
}

TEST(Registry, FindUnknownReturnsNull) {
  EXPECT_EQ(ProtocolRegistry::find("olsr"), nullptr);
}

TEST(Registry, MakeUnknownThrows) {
  EXPECT_THROW(ProtocolRegistry::make("olsr", {}), std::invalid_argument);
}

TEST(Registry, MakeProducesNamedInstance) {
  ProtocolDeps deps;
  auto p = ProtocolRegistry::make("aodv", deps);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "aodv");
  EXPECT_EQ(p->category(), Category::kConnectivity);
}

TEST(Registry, CarRequiresDeps) {
  EXPECT_THROW(ProtocolRegistry::make("car", {}), std::invalid_argument);
  ProtocolDeps deps;
  deps.road_graph = std::make_shared<map::RoadGraph>(3, 3, 100.0);
  deps.density =
      std::make_shared<map::SegmentDensityOracle>(deps.road_graph->segment_count());
  EXPECT_NE(ProtocolRegistry::make("car", deps), nullptr);
}

TEST(Registry, InstanceMetadataConsistent) {
  ProtocolDeps deps;
  deps.road_graph = std::make_shared<map::RoadGraph>(3, 3, 100.0);
  deps.density =
      std::make_shared<map::SegmentDensityOracle>(deps.road_graph->segment_count());
  for (const auto& info : ProtocolRegistry::all()) {
    auto p = info.make(deps);
    EXPECT_EQ(p->name(), info.name);
    EXPECT_EQ(p->category(), info.category);
    EXPECT_FALSE(info.metric.empty());
    EXPECT_FALSE(info.control.empty());
  }
}

TEST(Registry, CategoryNames) {
  EXPECT_EQ(to_string(Category::kConnectivity), "connectivity");
  EXPECT_EQ(to_string(Category::kMobility), "mobility");
  EXPECT_EQ(to_string(Category::kInfrastructure), "infrastructure");
  EXPECT_EQ(to_string(Category::kGeographic), "geographic");
  EXPECT_EQ(to_string(Category::kProbability), "probability");
}

}  // namespace
}  // namespace vanet::routing
