// Map query layer for the road-geometry protocols: RouteCorridor distance
// queries, SegmentCells grouping, the interior-ambiguity analysis, and the
// reported-segment ⇔ nearest-segment equivalence the incremental density
// oracle is built on.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "map/builders.h"
#include "map/route_corridor.h"
#include "map/segment_cells.h"
#include "mobility/graph_mobility.h"

namespace vanet::map {
namespace {

/// U-shaped road: the straight line between the tips crosses a roadless gap.
///   1(0,1000) ── 2(1000,1000)
///   │                       │
///   0(0,0)          3(1000,0)
RoadGraph u_graph() {
  RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({0.0, 1000.0});
  g.add_intersection({1000.0, 1000.0});
  g.add_intersection({1000.0, 0.0});
  g.add_segment(0, 1);  // seg 0: west leg
  g.add_segment(1, 2);  // seg 1: north leg
  g.add_segment(2, 3);  // seg 2: east leg
  return g;
}

TEST(RouteCorridor, FollowsTheRoadRouteNotTheStraightLine) {
  const RoadGraph g = u_graph();
  const SegmentIndex idx{g};
  const RouteCorridor c =
      RouteCorridor::between(g, idx, {0.0, 10.0}, {1000.0, 10.0});
  ASSERT_TRUE(c.route_found());
  // The whole U: the route 0-1-2-3 and the endpoint segments (already on it).
  EXPECT_EQ(c.segments(), (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(c.length(), 3000.0);

  // On the roads: inside. In the roadless gap the straight line crosses:
  // far from the corridor even though it is ON the src→dst line.
  EXPECT_DOUBLE_EQ(c.distance_to({0.0, 500.0}), 0.0);
  EXPECT_DOUBLE_EQ(c.distance_to({500.0, 1000.0}), 0.0);
  EXPECT_DOUBLE_EQ(c.distance_to({500.0, 10.0}), 500.0);
  EXPECT_TRUE(c.contains({400.0, 900.0}, 150.0));
  EXPECT_FALSE(c.contains({500.0, 10.0}, 250.0));
}

TEST(RouteCorridor, MidBlockEndpointsAreAlwaysCovered) {
  // Endpoints whose nearest intersection hangs off a different street than
  // their nearest segment: the endpoint segments are appended to the route.
  RoadGraph g = u_graph();
  const int spur = g.add_intersection({1400.0, 0.0});
  g.add_segment(3, spur);  // seg 3: east spur
  const SegmentIndex idx{g};
  const RouteCorridor c =
      RouteCorridor::between(g, idx, {0.0, 400.0}, {1390.0, 20.0});
  ASSERT_TRUE(c.route_found());
  // Route 0→spur plus nothing new (endpoint segments 0 and 3 are on it).
  EXPECT_EQ(c.segments(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_LE(c.distance_to({1390.0, 20.0}), 20.0 + 1e-9);
}

TEST(RouteCorridor, DisconnectedEndpointsReportNoRoute) {
  RoadGraph g;  // two separate roads
  g.add_intersection({0.0, 0.0});
  g.add_intersection({500.0, 0.0});
  g.add_intersection({0.0, 5000.0});
  g.add_intersection({500.0, 5000.0});
  g.add_segment(0, 1);
  g.add_segment(2, 3);
  const SegmentIndex idx{g};
  const RouteCorridor c =
      RouteCorridor::between(g, idx, {100.0, 0.0}, {100.0, 5000.0});
  EXPECT_FALSE(c.route_found());
  // Still carries the endpoint segments so distance queries stay meaningful.
  EXPECT_EQ(c.segments(), (std::vector<int>{0, 1}));

  const RouteCorridor empty;
  EXPECT_FALSE(empty.route_found());
  EXPECT_EQ(empty.distance_to({0.0, 0.0}),
            std::numeric_limits<double>::infinity());
}

TEST(RouteCorridor, SameIntersectionEndpointsYieldTheLocalStreet) {
  // Both endpoints resolve to intersection 0: the route is the single-node
  // path, and the corridor is exactly the endpoint segments appended to it.
  const RoadGraph g = u_graph();
  const SegmentIndex idx{g};
  const RouteCorridor c =
      RouteCorridor::between(g, idx, {0.0, 480.0}, {10.0, 450.0});
  ASSERT_TRUE(c.route_found());
  EXPECT_EQ(c.segments(), (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(c.length(), 1000.0);
}

TEST(SegmentCells, GroupsSegmentsByMidpointDeterministically) {
  const RoadGraph g = u_graph();
  const SegmentIndex idx{g};
  const SegmentCells cells{g, 600.0};
  // Midpoints (0,500), (500,1000), (1000,500) land in three distinct
  // buckets; ids follow first appearance over ascending segment ids.
  ASSERT_EQ(cells.cell_count(), 3);
  EXPECT_EQ(cells.cell_of_segment(0), 0);
  EXPECT_EQ(cells.cell_of_segment(1), 1);
  EXPECT_EQ(cells.cell_of_segment(2), 2);
  EXPECT_EQ(cells.segments_in(1), (std::vector<int>{1}));
  EXPECT_EQ(cells.anchor(0), (core::Vec2{0.0, 500.0}));
  EXPECT_EQ(cells.anchor(1), (core::Vec2{500.0, 1000.0}));
  // Membership of a position follows its nearest street, not its bucket.
  EXPECT_EQ(cells.cell_at({80.0, 400.0}, idx), 0);
  EXPECT_EQ(cells.cell_at({900.0, 950.0}, idx), 1);
  EXPECT_EQ(cells.cell_at({990.0, 100.0}, idx), 2);
}

TEST(SegmentCells, MergesCoLocatedSegmentsAndAveragesAnchors) {
  RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({100.0, 0.0});
  g.add_intersection({100.0, 100.0});
  g.add_segment(0, 1);  // midpoint (50, 0)
  g.add_segment(1, 2);  // midpoint (100, 50)
  g.add_segment(0, 2);  // midpoint (50, 50)
  const SegmentCells cells{g, 1000.0};  // one giant bucket
  ASSERT_EQ(cells.cell_count(), 1);
  EXPECT_EQ(cells.segments_in(0), (std::vector<int>{0, 1, 2}));
  EXPECT_NEAR(cells.anchor(0).x, (50.0 + 100.0 + 50.0) / 3.0, 1e-12);
  EXPECT_NEAR(cells.anchor(0).y, (0.0 + 50.0 + 50.0) / 3.0, 1e-12);
}

TEST(AmbiguousSegments, LatticesAreEntirelyUnambiguous) {
  const RoadGraph g = make_grid(6, 5, 200.0);
  const std::vector<bool> flags = ambiguous_interior_segments(g);
  ASSERT_EQ(flags.size(), g.segment_count());
  for (std::size_t s = 0; s < flags.size(); ++s) {
    EXPECT_FALSE(flags[s]) << "segment " << s;
  }
}

TEST(AmbiguousSegments, FlagsProperCrossingsAndCollinearOverlap) {
  RoadGraph g;
  g.add_intersection({0.0, 0.0});      // 0
  g.add_intersection({100.0, 100.0});  // 1
  g.add_intersection({0.0, 100.0});    // 2
  g.add_intersection({100.0, 0.0});    // 3
  g.add_intersection({50.0, 200.0});   // 4
  g.add_segment(0, 1);  // seg 0 ─ crosses seg 1 at (50,50)
  g.add_segment(2, 3);  // seg 1
  g.add_segment(2, 4);  // seg 2 ─ clear of both
  const std::vector<bool> flags = ambiguous_interior_segments(g);
  EXPECT_TRUE(flags[0]);
  EXPECT_TRUE(flags[1]);
  EXPECT_FALSE(flags[2]);

  RoadGraph overlap;  // A─B and A─C collinear, C beyond B: AB ⊂ AC
  overlap.add_intersection({0.0, 0.0});
  overlap.add_intersection({500.0, 0.0});
  overlap.add_intersection({1000.0, 0.0});
  overlap.add_segment(0, 1);
  overlap.add_segment(0, 2);
  const std::vector<bool> o = ambiguous_interior_segments(overlap);
  EXPECT_TRUE(o[0]);
  EXPECT_TRUE(o[1]);
}

TEST(AmbiguousSegments, StraightThroughRoadsAreNotFlagged) {
  // A polyline road A─B─C (collinear, opposite directions at B) is the
  // common way imported maps model curves; an interior point of A─B keeps
  // its full distance to B from B─C, so neither is ambiguous.
  RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({500.0, 0.0});
  g.add_intersection({1000.0, 0.0});
  g.add_segment(0, 1);
  g.add_segment(1, 2);
  const std::vector<bool> flags = ambiguous_interior_segments(g);
  EXPECT_FALSE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

TEST(AmbiguousSegments, FlagsTJunctionModelledWithoutANode) {
  RoadGraph g;  // vertical road whose interior touches a horizontal one
  g.add_intersection({0.0, 0.0});
  g.add_intersection({0.0, 1000.0});
  g.add_intersection({-500.0, 500.0});
  g.add_segment(0, 1);  // x = 0 line
  g.add_segment(2, 0);  // shares node 0; far endpoint (-500,500) is clear
  const std::vector<bool> far_ok = ambiguous_interior_segments(g);
  EXPECT_FALSE(far_ok[0]);
  EXPECT_FALSE(far_ok[1]);

  RoadGraph t;  // same, but the side road's far endpoint lies ON the road
  t.add_intersection({0.0, 0.0});
  t.add_intersection({0.0, 1000.0});
  t.add_intersection({0.0, 500.0});  // sits on segment 0's interior
  t.add_intersection({-500.0, 500.0});
  t.add_segment(0, 1);
  t.add_segment(2, 3);
  const std::vector<bool> flags = ambiguous_interior_segments(t);
  EXPECT_TRUE(flags[0]);
  EXPECT_TRUE(flags[1]);
}

// The contract the incremental density oracle stands on: whenever graph
// mobility reports a segment and the ambiguity analysis does not veto it,
// the SegmentIndex must agree exactly. Hammered over random trips on both an
// irregular town and a lattice.
TEST(ReportedSegment, MatchesNearestSegmentWheneverClaimed) {
  RoadGraph town = u_graph();
  const int market = town.add_intersection({500.0, 500.0});
  town.add_segment(0, market);
  town.add_segment(market, 2);
  town.add_segment(market, 3);

  for (const bool lattice : {false, true}) {
    auto graph = std::make_shared<RoadGraph>(lattice ? make_grid(5, 4, 150.0)
                                                     : town);
    const SegmentIndex idx{*graph};
    const std::vector<bool> ambiguous = ambiguous_interior_segments(*graph);
    mobility::GraphMobilityConfig cfg;
    cfg.replan_prob = 0.2;
    cfg.min_trip_m = 100.0;
    mobility::GraphMobilityModel model{graph, cfg};
    core::Rng rng{lattice ? 7u : 13u};
    model.populate(40, rng);

    std::size_t claimed = 0;
    for (int step = 0; step < 400; ++step) {
      model.step(0.1, rng);
      const auto& vs = model.vehicles();
      for (std::size_t i = 0; i < vs.size(); ++i) {
        const int reported = model.reported_segment(i);
        if (reported < 0 || ambiguous[static_cast<std::size_t>(reported)]) {
          continue;
        }
        ++claimed;
        ASSERT_EQ(reported, idx.nearest_segment(vs[i].pos))
            << (lattice ? "lattice" : "town") << " vehicle " << i << " step "
            << step;
      }
    }
    // The claim path must actually carry the refresh, not degenerate to -1.
    EXPECT_GT(claimed, 10000u) << (lattice ? "lattice" : "town");
  }
}

}  // namespace
}  // namespace vanet::map
