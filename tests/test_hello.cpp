#include "net/hello.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/constant_velocity.h"
#include "net/fading.h"

namespace vanet::net {
namespace {

struct HelloFixture {
  core::Simulator sim;
  core::RngManager rngs{17};
  std::unique_ptr<mobility::MobilityManager> mgr;
  std::unique_ptr<Network> net;
  std::unique_ptr<HelloService> hello;

  /// Two vehicles: id 0 stationary at origin, id 1 at `x1` with velocity vx1.
  HelloFixture(double x1, double vx1, double range = 100.0) {
    auto model = std::make_unique<mobility::ConstantVelocityModel>();
    model->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 0.0);
    model->add_vehicle({x1, 0.0}, {vx1 >= 0.0 ? 1.0 : -1.0, 0.0},
                       std::abs(vx1));
    mgr = std::make_unique<mobility::MobilityManager>(sim, std::move(model),
                                                      rngs.stream("m"));
    net = std::make_unique<Network>(sim, mgr.get(),
                                    std::make_unique<UnitDiskModel>(range),
                                    rngs.stream("net"));
    net->add_vehicle_node(0);
    net->add_vehicle_node(1);
    hello = std::make_unique<HelloService>(*net, rngs.stream("hello"));
    for (NodeId id : net->node_ids()) {
      net->set_receive_handler(id, [this, id](const Packet& p) {
        if (p.kind == PacketKind::kHello) hello->on_frame(id, p);
      });
    }
  }
};

TEST(Hello, NeighborsDiscoverEachOther) {
  HelloFixture f{50.0, 0.0};
  f.mgr->start();
  f.hello->start();
  f.sim.run_until(core::SimTime::seconds(2.5));
  EXPECT_EQ(f.hello->table(0).size(), 1u);
  EXPECT_EQ(f.hello->table(1).size(), 1u);
  const NeighborInfo* nbr = f.hello->table(0).find(1);
  ASSERT_NE(nbr, nullptr);
  EXPECT_NEAR(nbr->pos.x, 50.0, 1.0);
  EXPECT_FALSE(nbr->rsu);
}

TEST(Hello, BeaconsCarryKinematics) {
  HelloFixture f{60.0, -20.0};
  f.mgr->start();
  f.hello->start();
  f.sim.run_until(core::SimTime::seconds(1.5));
  const NeighborInfo* nbr = f.hello->table(0).find(1);
  ASSERT_NE(nbr, nullptr);
  EXPECT_NEAR(nbr->vel.x, -20.0, 1e-9);
}

TEST(Hello, PredictedPositionDeadReckons) {
  NeighborInfo info;
  info.pos = {100.0, 0.0};
  info.vel = {-10.0, 5.0};
  info.last_heard = core::SimTime::seconds(1.0);
  const core::Vec2 p = info.predicted_pos(core::SimTime::seconds(3.0));
  EXPECT_DOUBLE_EQ(p.x, 80.0);
  EXPECT_DOUBLE_EQ(p.y, 10.0);
}

TEST(Hello, DepartedNeighborExpiresAndReportsLoss) {
  // Vehicle 1 drives away at 40 m/s; leaves the 100 m disk after ~1.5 s.
  HelloFixture f{40.0, 40.0};
  std::vector<NodeId> lost;
  f.hello->set_loss_callback(0, [&](NodeId id) { lost.push_back(id); });
  f.mgr->start();
  f.hello->start();
  f.sim.run_until(core::SimTime::seconds(2.0));
  ASSERT_EQ(f.hello->table(0).size(), 1u);  // heard while in range
  f.sim.run_until(core::SimTime::seconds(8.0));
  EXPECT_EQ(f.hello->table(0).size(), 0u);  // expired after 3 s silence
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 1u);
}

TEST(Hello, BeaconsCountAsHelloFrames) {
  HelloFixture f{50.0, 0.0};
  f.mgr->start();
  f.hello->start();
  f.sim.run_until(core::SimTime::seconds(5.0));
  // ~5 beacons per node in 5 s at 1 Hz (+- jitter).
  const auto sent = f.net->counters().hello_frames_sent;
  EXPECT_GE(sent, 8u);
  EXPECT_LE(sent, 14u);
}

TEST(Hello, LossyPhyKeepsNeighborTablesConsistent) {
  // Two stationary vehicles under Nakagami-1 (Rayleigh) fading at a distance
  // where a good fraction of beacons drop. Whatever the channel does, the
  // table contract must hold: per-sender sequence numbers arrive strictly
  // increasing (so estimators can count the misses), a decoded beacon always
  // lands in the table, expiry only ever removes the real neighbor, and an
  // expired neighbor is re-admitted by its next decoded beacon.
  core::Simulator sim;
  core::RngManager rngs{29};
  auto model = std::make_unique<mobility::ConstantVelocityModel>();
  model->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 0.0);
  model->add_vehicle({130.0, 0.0}, {1.0, 0.0}, 0.0);
  auto mgr = std::make_unique<mobility::MobilityManager>(sim, std::move(model),
                                                         rngs.stream("m"));
  Network net{sim, mgr.get(),
              std::make_unique<NakagamiFadingModel>(analysis::LogNormalParams{},
                                                    /*m=*/1),
              rngs.stream("net")};
  net.add_vehicle_node(0);
  net.add_vehicle_node(1);
  HelloService hello{net, rngs.stream("hello")};
  for (NodeId id : net.node_ids()) {
    net.set_receive_handler(id, [&hello, id](const Packet& p) {
      if (p.kind == PacketKind::kHello) hello.on_frame(id, p);
    });
  }

  std::vector<std::uint32_t> seqs;        // decoded at 0, in arrival order
  bool neighbor_present_at_decode = true; // observer runs after the update
  hello.set_frame_observer(0, [&](const Packet& p, const HelloHeader& h) {
    ASSERT_EQ(p.origin, 1u);
    seqs.push_back(h.seq);
    neighbor_present_at_decode &= hello.table(0).contains(1);
  });
  std::vector<NodeId> lost;
  hello.set_loss_callback(0, [&](NodeId id) {
    lost.push_back(id);
    EXPECT_FALSE(hello.table(0).contains(id));  // expiry removed it
  });

  mgr->start();
  hello.start();
  sim.run_until(core::SimTime::seconds(60.0));

  // The channel actually dropped beacons: fewer decoded than sent, and at
  // least one sequence gap among those decoded.
  ASSERT_GE(seqs.size(), 5u);
  EXPECT_LT(seqs.size(), 55u);
  bool gap = false;
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_LT(seqs[i - 1], seqs[i]);  // strictly increasing, never replayed
    gap |= seqs[i] > seqs[i - 1] + 1;
  }
  EXPECT_TRUE(gap);
  EXPECT_TRUE(neighbor_present_at_decode);
  // Only the real neighbor ever expired, and losing it was survivable: the
  // table either holds it now or its re-admission is one decoded beacon away
  // (both states are consistent — no phantom entries either way).
  for (NodeId id : lost) EXPECT_EQ(id, 1u);
  EXPECT_LE(hello.table(0).size(), 1u);
}

TEST(Hello, RsuFlagPropagates) {
  core::Simulator sim;
  core::RngManager rngs{23};
  Network net{sim, nullptr, std::make_unique<UnitDiskModel>(100.0),
              rngs.stream("net")};
  const NodeId a = net.add_rsu({0.0, 0.0});
  const NodeId b = net.add_rsu({50.0, 0.0});
  HelloService hello{net, rngs.stream("hello")};
  for (NodeId id : {a, b}) {
    net.set_receive_handler(id, [&hello, id](const Packet& p) {
      if (p.kind == PacketKind::kHello) hello.on_frame(id, p);
    });
  }
  hello.start();
  sim.run_until(core::SimTime::seconds(2.0));
  const NeighborInfo* nbr = hello.table(a).find(b);
  ASSERT_NE(nbr, nullptr);
  EXPECT_TRUE(nbr->rsu);
}

TEST(HelloDeathTest, ExpiryShorterThanIntervalAborts) {
  core::Simulator sim;
  core::RngManager rngs{1};
  Network net{sim, nullptr, std::make_unique<UnitDiskModel>(100.0),
              rngs.stream("net")};
  HelloConfig bad;
  bad.interval = core::SimTime::seconds(2.0);
  bad.expiry = core::SimTime::seconds(1.0);
  EXPECT_DEATH(HelloService(net, rngs.stream("hello"), bad), "expiry");
}

TEST(NeighborTable, SnapshotSortedAndExpireReturnsIds) {
  NeighborTable t;
  for (NodeId id : {5u, 1u, 9u}) {
    NeighborInfo info;
    info.id = id;
    info.last_heard = core::SimTime::seconds(id == 9u ? 10.0 : 0.0);
    t.update(info);
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id, 1u);
  EXPECT_EQ(snap[2].id, 9u);
  const auto gone =
      t.expire(core::SimTime::seconds(5.0), core::SimTime::seconds(3.0));
  EXPECT_EQ(gone, (std::vector<NodeId>{1u, 5u}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains(9u));
}

}  // namespace
}  // namespace vanet::net
