// Link-quality family (routing/linkquality/): estimator unit tests with
// exact window arithmetic, adversarial cases (asymmetric links, neighbor
// churn, re-admission), the EtxAgent route layer, the Nakagami convergence
// property test against net/fading's closed-form receipt probability, and
// the determinism contracts (jobs=1 == jobs=4 byte-identity for an etx
// sweep, suppression accounting in the ScenarioReport).
#include "routing/linkquality/link_quality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "mobility/constant_velocity.h"
#include "net/fading.h"
#include "net/hello.h"
#include "routing/linkquality/etx.h"
#include "routing/linkquality/etx_agent.h"
#include "sim/experiment.h"
#include "sim/report_sink.h"
#include "sim/scenario.h"

namespace vanet::routing {
namespace {

// ------------------------------------------------------ estimator window ---

TEST(LinkQuality, ExactlyKOfNHellosGivesRatioKOverN) {
  // The window-boundary contract: with the sender heard from its seq 0, the
  // denominator is exactly min(window, beacons sent), so k received of n
  // sent is k/n with no off-by-one. 4 of 5:
  LinkQualityTable t{{16, 1.0}};
  for (std::uint32_t seq : {0u, 1u, 3u, 4u}) t.on_hello(7, seq);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(7), 4.0 / 5.0);
  // Hearing the missing beacon late (out of order) completes the window.
  t.on_hello(7, 2);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(7), 1.0);
}

TEST(LinkQuality, DenominatorRampsThenClampsAtWindow) {
  LinkQualityTable t{{4, 1.0}};
  t.on_hello(3, 0);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(3), 1.0);  // 1 of 1
  t.on_hello(3, 2);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(3), 2.0 / 3.0);  // missed seq 1
  // Beyond the window the denominator stays n=4: after seq 7 the window
  // covers 4..7 and only seq 7 was heard.
  t.on_hello(3, 7);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(3), 1.0 / 4.0);
}

TEST(LinkQuality, GapLongerThanTheMaskDropsAllHistory) {
  LinkQualityTable t{{16, 1.0}};
  for (std::uint32_t seq = 0; seq < 16; ++seq) t.on_hello(1, seq);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(1), 1.0);
  t.on_hello(1, 200);  // 184-beacon silence: only the newest bit survives
  EXPECT_DOUBLE_EQ(t.reverse_ratio(1), 1.0 / 16.0);
}

TEST(LinkQuality, ReAdmissionRebasesTheRatioBaseline) {
  // Erase (hello expiry / unicast failure) then re-admission mid-stream:
  // beacons sent while the entry did not exist are not held against the
  // link — the fresh entry starts from a clean baseline at the new seq.
  LinkQualityTable t{{16, 1.0}};
  for (std::uint32_t seq : {0u, 1u, 2u, 3u}) t.on_hello(5, seq);
  t.erase(5);
  EXPECT_FALSE(t.contains(5));
  t.on_hello(5, 50);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(5), 1.0);
  EXPECT_DOUBLE_EQ(t.long_run_ratio(5), 1.0);
  t.on_hello(5, 52);  // one miss since re-admission
  EXPECT_DOUBLE_EQ(t.reverse_ratio(5), 2.0 / 3.0);
}

TEST(LinkQuality, EwmaWeightSmoothsAcrossWindows) {
  LinkQualityTable t{{4, 0.5}};
  t.on_hello(9, 0);  // first sample seeds the EWMA: 1.0
  EXPECT_DOUBLE_EQ(t.reverse_ratio(9), 1.0);
  t.on_hello(9, 3);  // windowed ratio now 2/4; smoothed = .5*.5 + .5*1
  EXPECT_DOUBLE_EQ(t.reverse_ratio(9), 0.75);
}

// -------------------------------------------------- asymmetry and bounds ---

TEST(LinkQuality, AsymmetricLinkMultipliesBothDirections) {
  // Reverse direction clean (every beacon heard), forward direction lossy
  // (the neighbor reports it receives only a quarter of ours):
  // ETX = 1/(0.25 * 1.0) = 4, exactly.
  LinkQualityTable t{{8, 1.0}};
  for (std::uint32_t seq = 0; seq < 8; ++seq) t.on_hello(2, seq);
  EXPECT_DOUBLE_EQ(t.forward_ratio(2), 1.0);  // optimistic until a report
  t.on_report(2, 0.25);
  EXPECT_DOUBLE_EQ(t.forward_ratio(2), 0.25);
  EXPECT_DOUBLE_EQ(t.reverse_ratio(2), 1.0);
  EXPECT_DOUBLE_EQ(t.etx(2), 4.0);
}

TEST(LinkQuality, UnknownAndDeadLinksClampToMaxEtx) {
  LinkQualityTable t;
  EXPECT_DOUBLE_EQ(t.etx(99), LinkQualityTable::kMaxEtx);
  t.on_hello(4, 0);
  t.on_report(4, 0.0);  // reported fully lossy forward direction
  EXPECT_DOUBLE_EQ(t.etx(4), LinkQualityTable::kMaxEtx);
}

TEST(LinkQuality, NeighborsAreSortedById) {
  LinkQualityTable t;
  for (net::NodeId id : {9u, 3u, 7u, 1u}) t.on_hello(id, 0);
  EXPECT_EQ(t.neighbors(), (std::vector<net::NodeId>{1, 3, 7, 9}));
}

// -------------------------------------------------------------- EtxAgent ---

net::Packet hello_from(net::NodeId origin) {
  net::Packet p;
  p.kind = net::PacketKind::kHello;
  p.origin = origin;
  p.tx = origin;
  return p;
}

TEST(EtxAgent, RoutesThroughAdvertsAndDropsThemWithTheNeighbor) {
  EtxAgent agent{0, {}};
  // Neighbor 1, clean link both ways, advertising a route to 2 at cost 1.
  net::HelloHeader h;
  h.seq = 0;
  h.links.push_back({0, 1.0});
  h.routes.push_back({1, 0.0, 2});
  h.routes.push_back({2, 1.0, 4});
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    h.seq = seq;
    agent.on_hello(hello_from(1), h);
  }
  ASSERT_TRUE(agent.next_hop(2).has_value());
  EXPECT_EQ(*agent.next_hop(2), 1u);
  EXPECT_DOUBLE_EQ(agent.distance_to(2), 2.0);  // link ETX 1 + advert 1
  EXPECT_DOUBLE_EQ(agent.distance_to(0), 0.0);
  EXPECT_TRUE(agent.has_adverts_from(1));

  // The neighbor dies: its link AND its adverts go with it — no dangling
  // ETX edges through a crashed node.
  agent.on_neighbor_lost(1);
  EXPECT_FALSE(agent.table().contains(1));
  EXPECT_FALSE(agent.has_adverts_from(1));
  EXPECT_FALSE(agent.next_hop(2).has_value());
  EXPECT_DOUBLE_EQ(agent.distance_to(2), LinkQualityTable::kMaxEtx);
}

TEST(EtxAgent, PrefersReliableTwoHopOverLossyDirect) {
  // Direct link to 2 at ratio 1/4 (ETX 16 after the neighbor's matching
  // report) vs a clean two-hop detour through 1 (ETX 2): Dijkstra must take
  // the detour — the whole point of the metric.
  EtxAgent agent{0, {}};
  net::HelloHeader via;
  via.links.push_back({0, 1.0});
  via.routes.push_back({1, 0.0, 2});
  via.routes.push_back({2, 1.0, 4});
  net::HelloHeader direct;
  direct.links.push_back({0, 0.25});
  direct.routes.push_back({2, 0.0, 4});
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    via.seq = seq;
    agent.on_hello(hello_from(1), via);
    if (seq % 4 == 0) {  // 2's beacons mostly lost: reverse ratio 2/8
      direct.seq = seq;
      agent.on_hello(hello_from(2), direct);
    }
  }
  ASSERT_TRUE(agent.next_hop(2).has_value());
  EXPECT_EQ(*agent.next_hop(2), 1u);
  EXPECT_LT(agent.distance_to(2), agent.table().etx(2));
}

TEST(EtxAgent, BeaconCarriesLinkReportsAndDistanceVector) {
  EtxAgent agent{0, {}};
  net::HelloHeader in;
  in.links.push_back({0, 1.0});
  in.routes.push_back({1, 0.0, 2});
  in.routes.push_back({7, 2.0, 6});
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    in.seq = seq;
    agent.on_hello(hello_from(1), in);
  }
  net::HelloHeader out;
  const std::size_t extra = agent.fill_beacon(out);
  ASSERT_EQ(out.links.size(), 1u);
  EXPECT_EQ(out.links[0].neighbor, 1u);
  EXPECT_DOUBLE_EQ(out.links[0].ratio, 1.0);
  // Distance vector: self at 0, neighbor 1, advertised 7 — all reachable.
  ASSERT_EQ(out.routes.size(), 3u);
  EXPECT_EQ(out.routes[0].dst, 0u);
  EXPECT_DOUBLE_EQ(out.routes[0].dist, 0.0);
  EXPECT_GT(extra, 0u);
}

// ----------------------------------------- Nakagami convergence property ---

/// Two stationary vehicles at `distance` under Nakagami-m fading, hello
/// beacons only, expiry disabled so the estimator is isolated from the
/// aging path (aging has its own tests above and the churn test below).
struct ConvergenceFixture {
  core::Simulator sim;
  core::RngManager rngs;
  std::unique_ptr<mobility::MobilityManager> mgr;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::HelloService> hello;
  EtxAgent agent{0, {}};

  ConvergenceFixture(double distance, int m, std::uint64_t seed)
      : rngs{seed} {
    auto model = std::make_unique<mobility::ConstantVelocityModel>();
    model->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 0.0);
    model->add_vehicle({distance, 0.0}, {1.0, 0.0}, 0.0);
    mgr = std::make_unique<mobility::MobilityManager>(sim, std::move(model),
                                                      rngs.stream("m"));
    net = std::make_unique<net::Network>(
        sim, mgr.get(), std::make_unique<net::NakagamiFadingModel>(
                            analysis::LogNormalParams{}, m),
        rngs.stream("net"));
    net->add_vehicle_node(0);
    net->add_vehicle_node(1);
    net::HelloConfig cfg;
    cfg.expiry = core::SimTime::seconds(1e9);  // no aging in this fixture
    hello = std::make_unique<net::HelloService>(*net, rngs.stream("hello"),
                                                cfg);
    for (net::NodeId id : net->node_ids()) {
      net->set_receive_handler(id, [this, id](const net::Packet& p) {
        if (p.kind == net::PacketKind::kHello) hello->on_frame(id, p);
      });
    }
    agent.attach(*hello);
  }
};

struct ConvergenceCase {
  double distance;
  int m;
};

class EtxConvergence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(EtxConvergence, LongRunRatioMatchesClosedFormReceiptProbability) {
  const auto [distance, m] = GetParam();
  constexpr double kDurationS = 400.0;
  const auto seed = static_cast<std::uint64_t>(1000 + 10 * distance + m);
  ConvergenceFixture f{distance, m, seed};
  f.mgr->start();
  f.hello->start();
  f.sim.run_until(core::SimTime::seconds(kDurationS));

  const double p = f.net->propagation().receipt_probability(distance);
  ASSERT_GT(p, 0.05) << "degenerate case: pick a closer distance";
  const double est = f.agent.table().long_run_ratio(1);
  ASSERT_GT(est, 0.0) << "no beacon from the neighbor ever decoded";
  // Seeded binomial confidence interval: ~kDurationS Bernoulli(p) beacons
  // (1 Hz, minus jitter slack), the first decoded one counted by
  // construction. 4 sigma + the first-contact bias keeps the fixed-seed
  // flake probability negligible without hiding real estimator bugs.
  const double n = 0.9 * kDurationS;
  const double tolerance = 4.0 * std::sqrt(p * (1.0 - p) / n) + 2.0 / n;
  EXPECT_NEAR(est, p, tolerance)
      << "distance=" << distance << " m=" << m << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    DistancesAndShapes, EtxConvergence,
    ::testing::Values(ConvergenceCase{60.0, 1}, ConvergenceCase{100.0, 1},
                      ConvergenceCase{140.0, 1}, ConvergenceCase{60.0, 3},
                      ConvergenceCase{100.0, 3}, ConvergenceCase{140.0, 3}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& tpi) {
      return "d" + std::to_string(static_cast<int>(tpi.param.distance)) +
             "_m" + std::to_string(tpi.param.m);
    });

// --------------------------------------------------- scenario-level churn ---

TEST(EtxScenario, NodeOutageLeavesNoDanglingEstimatorState) {
  // Planned outage without restart: after the hello expiry plus a few beacon
  // rounds, no surviving node may hold a link, an advert set, or a route
  // toward the dead node — the soft-state discipline end-to-end.
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.duration_s = 12.0;
  cfg.mobility = sim::MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 4;
  cfg.manhattan.streets_y = 4;
  cfg.manhattan.block = 120.0;
  cfg.vehicles = 12;
  cfg.protocol = "etx";
  cfg.fault.enabled = true;
  cfg.fault.plan = "node:2:3";  // down at t=3, never restarts
  cfg.traffic.flows = 4;
  cfg.traffic.stop_s = 12.0;
  sim::Scenario s{cfg};
  s.run();

  for (net::NodeId id = 0; id < 12; ++id) {
    if (id == 2) continue;
    auto* etx = dynamic_cast<EtxProtocol*>(&s.protocol_at(id));
    ASSERT_NE(etx, nullptr);
    EXPECT_FALSE(etx->agent().table().contains(2)) << "node " << id;
    EXPECT_FALSE(etx->agent().has_adverts_from(2)) << "node " << id;
    EXPECT_FALSE(etx->agent().next_hop(2).has_value()) << "node " << id;
  }
  const sim::ScenarioReport r = s.report();
  EXPECT_TRUE(r.fault_enabled);
  EXPECT_TRUE(r.linkquality_enabled);
  EXPECT_EQ(r.node_outages, 1u);
}

// ------------------------------------------------------ flood suppression ---

sim::ScenarioConfig flooding_city() {
  sim::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.duration_s = 10.0;
  cfg.mobility = sim::MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 5;
  cfg.manhattan.streets_y = 5;
  cfg.manhattan.block = 120.0;
  cfg.vehicles = 25;
  cfg.protocol = "flooding";
  cfg.traffic.flows = 6;
  cfg.traffic.stop_s = 10.0;
  return cfg;
}

TEST(FloodSuppressionTest, EtxModeCancelsRebroadcastsAndReportsThem) {
  sim::ScenarioConfig base = flooding_city();
  sim::Scenario plain{base};
  plain.run();
  const sim::ScenarioReport rp = plain.report();
  EXPECT_FALSE(rp.linkquality_enabled);

  sim::ScenarioConfig sup = flooding_city();
  sup.flood_suppression = FloodSuppression::kEtx;
  sim::Scenario coordinated{sup};
  coordinated.run();
  const sim::ScenarioReport rs = coordinated.report();
  EXPECT_TRUE(rs.linkquality_enabled);
  EXPECT_GT(rs.suppressed_rebroadcasts, 0u);
  // Every cancelled rebroadcast is a data frame that never hit the air.
  EXPECT_LT(rs.data_frames, rp.data_frames);
  // Coordination must not cost delivery on a clean channel.
  EXPECT_GE(rs.delivered + 2, rp.delivered);
}

TEST(FloodSuppressionTest, BiswasComposesSuppressionWithImplicitAcks) {
  sim::ScenarioConfig cfg = flooding_city();
  cfg.protocol = "biswas";
  cfg.flood_suppression = FloodSuppression::kEtx;
  sim::Scenario s{cfg};
  s.run();
  const sim::ScenarioReport r = s.report();
  EXPECT_TRUE(r.linkquality_enabled);
  EXPECT_GT(r.suppressed_rebroadcasts, 0u);
  EXPECT_GT(r.delivered, 0u);
}

// ------------------------------------------------------------ determinism ---

TEST(EtxScenario, SweepIsByteIdenticalAcrossWorkerCounts) {
  // jobs=1 == jobs=4 for an etx sweep under fast fading: the estimator, the
  // piggyback and the suppression jitter all ride per-run streams, so worker
  // scheduling cannot perturb them.
  sim::ExperimentSpec spec;
  spec.base.duration_s = 8.0;
  spec.base.mobility = sim::MobilityKind::kManhattan;
  spec.base.manhattan.streets_x = 5;
  spec.base.manhattan.streets_y = 5;
  spec.base.manhattan.block = 120.0;
  spec.base.vehicles = 20;
  spec.base.phy = sim::PhyModel::kNakagami;
  spec.base.nakagami_m = 1;
  spec.base.traffic.flows = 6;
  spec.base.traffic.stop_s = 8.0;
  spec.protocols = {"etx"};
  spec.seeds = {1, 2};

  std::ostringstream serial, parallel;
  sim::JsonlSink serial_sink{serial, /*include_runs=*/true};
  sim::JsonlSink parallel_sink{parallel, /*include_runs=*/true};
  sim::ExperimentEngine{1}.run(spec, serial_sink);
  sim::ExperimentEngine{4}.run(spec, parallel_sink);
  EXPECT_EQ(serial.str(), parallel.str());
  EXPECT_NE(serial.str().find("\"protocol\":\"etx\""), std::string::npos);
}

}  // namespace
}  // namespace vanet::routing
