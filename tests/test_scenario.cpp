#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "map/builders.h"

namespace vanet::sim {
namespace {

ScenarioConfig small_highway(const std::string& protocol) {
  ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 2000.0;
  cfg.vehicles_per_direction = 20;
  cfg.duration_s = 20.0;
  cfg.traffic.flows = 4;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 15.0;
  cfg.traffic.min_pair_distance_m = 300.0;
  return cfg;
}

TEST(Scenario, SameSeedIsBitReproducible) {
  ScenarioConfig cfg = small_highway("aodv");
  cfg.seed = 5;
  Scenario a{cfg}, b{cfg};
  a.run();
  b.run();
  const auto ra = a.report();
  const auto rb = b.report();
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.originated, rb.originated);
  EXPECT_DOUBLE_EQ(ra.delay_ms_mean, rb.delay_ms_mean);
  EXPECT_EQ(ra.control_frames, rb.control_frames);
  EXPECT_EQ(a.simulator().events_dispatched(), b.simulator().events_dispatched());
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig cfg = small_highway("aodv");
  cfg.seed = 1;
  Scenario a{cfg};
  cfg.seed = 2;
  Scenario b{cfg};
  a.run();
  b.run();
  EXPECT_NE(a.simulator().events_dispatched(), b.simulator().events_dispatched());
}

TEST(Scenario, ReportInvariants) {
  Scenario s{small_highway("greedy")};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.originated, 0u);
  EXPECT_LE(r.delivered, r.originated);
  EXPECT_GE(r.pdr, 0.0);
  EXPECT_LE(r.pdr, 1.0);
  EXPECT_GE(r.collision_fraction, 0.0);
  EXPECT_LE(r.collision_fraction, 1.0);
  EXPECT_EQ(r.protocol, "greedy");
}

TEST(Scenario, HelloOnlyWhenProtocolWantsIt) {
  Scenario flood{small_highway("flooding")};
  EXPECT_EQ(flood.hello(), nullptr);
  flood.run();
  EXPECT_EQ(flood.report().hello_frames, 0u);

  Scenario greedy{small_highway("greedy")};
  EXPECT_NE(greedy.hello(), nullptr);
  greedy.run();
  EXPECT_GT(greedy.report().hello_frames, 0u);
}

TEST(Scenario, RsusAreAppendedAfterVehicles) {
  ScenarioConfig cfg = small_highway("drr");
  cfg.rsu_count = 3;
  Scenario s{cfg};
  EXPECT_EQ(s.network().node_count(), s.vehicle_count() + 3);
  EXPECT_EQ(s.network().rsu_ids().size(), 3u);
  for (net::NodeId id : s.network().rsu_ids()) {
    EXPECT_GE(id, s.vehicle_count());
  }
  // RSUs are never traffic endpoints.
  s.run();
  for (const auto& flow : s.traffic().flows()) {
    EXPECT_LT(flow.src, s.vehicle_count());
    EXPECT_LT(flow.dst, s.vehicle_count());
  }
}

TEST(Scenario, ReachabilityOracleBoundsPdr) {
  ScenarioConfig cfg = small_highway("flooding");
  cfg.vehicles_per_direction = 40;  // dense: mostly connectable
  Scenario s{cfg};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.reachable_fraction, 0.5);
  // The oracle is an upper bound up to sampling noise: a protocol cannot
  // beat physics by much.
  EXPECT_LE(r.pdr, r.reachable_fraction + 0.25);

  ScenarioConfig off = cfg;
  off.sample_reachability = false;
  Scenario s2{off};
  s2.run();
  EXPECT_DOUBLE_EQ(s2.report().reachable_fraction, 0.0);
}

TEST(Scenario, ManhattanBuilds) {
  ScenarioConfig cfg;
  cfg.protocol = "car";
  cfg.mobility = MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 4;
  cfg.manhattan.streets_y = 4;
  cfg.manhattan.block = 200.0;
  cfg.vehicles = 40;
  cfg.duration_s = 15.0;
  cfg.traffic.flows = 3;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 12.0;
  Scenario s{cfg};
  s.run();
  EXPECT_GT(s.report().originated, 0u);
}

TEST(Scenario, ShadowingChannelRuns) {
  ScenarioConfig cfg = small_highway("rear");
  cfg.phy = PhyModel::kShadowing;
  Scenario s{cfg};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.originated, 0u);
  // With shadowing some receptions fade; the counter must be active.
  EXPECT_GT(s.network().counters().receptions_faded, 0u);
}

TEST(Scenario, BusCountDesignatesFerries) {
  ScenarioConfig cfg = small_highway("bus");
  cfg.bus_count = 4;
  Scenario s{cfg};
  s.run();
  EXPECT_GT(s.report().originated, 0u);
}

ScenarioConfig small_graph_scenario(const std::string& protocol) {
  ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.mobility = MobilityKind::kGraph;
  cfg.manhattan.streets_x = 4;
  cfg.manhattan.streets_y = 4;
  cfg.manhattan.block = 200.0;
  cfg.vehicles = 40;
  cfg.duration_s = 15.0;
  cfg.traffic.flows = 3;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 12.0;
  return cfg;
}

TEST(Scenario, GraphMobilityBuildsAndSharesTopology) {
  Scenario s{small_graph_scenario("car")};
  // The graph CAR routes over is the graph the vehicles drive on.
  const auto* model =
      dynamic_cast<const mobility::GraphMobilityModel*>(&s.mobility().model());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(&model->graph(), &s.road_graph());
  s.run();
  EXPECT_GT(s.report().originated, 0u);
}

TEST(Scenario, GraphMobilityWithRsusPlacesThemInsideTheMap) {
  ScenarioConfig cfg = small_graph_scenario("drr");
  cfg.rsu_count = 4;
  Scenario s{cfg};
  const auto& g = s.road_graph();
  for (net::NodeId id : s.network().node_ids()) {
    const core::Vec2 p = s.network().position(id);
    EXPECT_GE(p.x, g.bbox_min().x - 1e-9);
    EXPECT_LE(p.x, g.bbox_max().x + 1e-9);
    EXPECT_GE(p.y, g.bbox_min().y - 1e-9);
    EXPECT_LE(p.y, g.bbox_max().y + 1e-9);
  }
  s.run();
  EXPECT_GT(s.report().originated, 0u);
}

TEST(Scenario, FileMapRunsEndToEndAcrossFamilies) {
  // The acceptance path: an imported (non-grid) map drives graph mobility and
  // both a probability-family and a geographic-family protocol route over it.
  map::RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({350.0, 80.0});
  g.add_intersection({700.0, 0.0});
  g.add_intersection({350.0, 420.0});
  g.add_intersection({900.0, 400.0});
  g.add_segment(0, 1);
  g.add_segment(1, 2);
  g.add_segment(1, 3);
  g.add_segment(3, 4);
  g.add_segment(2, 4);
  g.add_segment(0, 3);
  const std::string path = ::testing::TempDir() + "vanet_scenario_map.csv";
  map::save_edge_list_csv_file(g, path);

  for (const char* protocol : {"car", "greedy"}) {
    ScenarioConfig cfg = small_graph_scenario(protocol);
    cfg.map.source = MapSource::kFile;
    cfg.map.file = path;
    cfg.vehicles = 30;
    Scenario s{cfg};
    EXPECT_FALSE(s.road_graph().is_grid());
    EXPECT_EQ(s.road_graph().intersection_count(), 5);
    s.run();
    EXPECT_GT(s.report().originated, 0u) << protocol;
    EXPECT_GT(s.report().delivered, 0u) << protocol;
  }
  std::remove(path.c_str());
}

TEST(Scenario, TracePlaybackOverFileMapPlacesRsusInsideTheMap) {
  // A file map whose coordinates sit far from the origin: RSUs must land in
  // the map's extent even under trace mobility (not the default lattice's).
  map::RoadGraph g;
  g.add_intersection({5000.0, 2000.0});
  g.add_intersection({5600.0, 2000.0});
  g.add_intersection({5600.0, 2400.0});
  g.add_segment(0, 1);
  g.add_segment(1, 2);
  const std::string path = ::testing::TempDir() + "vanet_offset_map.csv";
  map::save_edge_list_csv_file(g, path);

  ScenarioConfig cfg;
  cfg.map.source = MapSource::kFile;
  cfg.map.file = path;
  cfg.mobility = MobilityKind::kTrace;
  for (mobility::VehicleId id : {0u, 1u}) {
    cfg.trace.add(id, {0.0, 5000.0 + 100.0 * id, 2000.0, 10.0, 0.0});
    cfg.trace.add(id, {10.0, 5200.0 + 100.0 * id, 2000.0, 10.0, 0.0});
  }
  cfg.rsu_count = 2;
  cfg.duration_s = 5.0;
  cfg.traffic.flows = 1;
  cfg.traffic.start_s = 1.0;
  cfg.traffic.stop_s = 4.0;
  Scenario s{cfg};
  for (net::NodeId id : s.network().rsu_ids()) {
    const core::Vec2 p = s.network().position(id);
    EXPECT_GE(p.x, 5000.0);
    EXPECT_LE(p.x, 5600.0);
    EXPECT_GE(p.y, 2000.0);
    EXPECT_LE(p.y, 2400.0);
  }
  std::remove(path.c_str());
}

TEST(Scenario, GeometryProtocolsRouteOverTheCommittedTownMap) {
  // The map-aware acceptance path: zone/grid/gvgrid with route geometry over
  // the committed irregular town, end to end. Zone (confined flooding) must
  // actually deliver; the gateway/discovery protocols must at least run and
  // originate on the same map.
  const std::string town = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
  std::uint64_t delivered = 0;
  for (const char* protocol : {"zone", "grid", "gvgrid"}) {
    ScenarioConfig cfg = small_graph_scenario(protocol);
    cfg.map.source = MapSource::kFile;
    cfg.map.file = town;
    cfg.vehicles = 50;
    cfg.zone_geometry = routing::GeometryMode::kRoute;
    cfg.grid_geometry = routing::GeometryMode::kRoute;
    cfg.gvgrid_geometry = routing::GeometryMode::kRoute;
    Scenario s{cfg};
    EXPECT_FALSE(s.road_graph().is_grid());
    s.run();
    EXPECT_GT(s.report().originated, 0u) << protocol;
    if (std::string{protocol} == "zone") {
      EXPECT_GT(s.report().delivered, 0u) << protocol;
    }
    delivered += s.report().delivered;
  }
  EXPECT_GT(delivered, 0u);
}

TEST(Scenario, TraceMapCouplingRejectsOffMapSamples) {
  map::RoadGraph g;  // one straight street along y = 0
  g.add_intersection({0.0, 0.0});
  g.add_intersection({1000.0, 0.0});
  g.add_segment(0, 1);
  const std::string path = ::testing::TempDir() + "vanet_coupling_map.csv";
  map::save_edge_list_csv_file(g, path);

  ScenarioConfig cfg;
  cfg.map.source = MapSource::kFile;
  cfg.map.file = path;
  cfg.mobility = MobilityKind::kTrace;
  cfg.duration_s = 5.0;
  cfg.traffic.flows = 1;
  cfg.trace.add(0, {0.0, 100.0, 0.0, 10.0, 0.0});
  cfg.trace.add(0, {5.0, 150.0, 4.0, 10.0, 0.0});  // 4 m off: within tolerance
  cfg.trace.add(1, {0.0, 300.0, 0.0, 10.0, 0.0});
  cfg.trace.add(1, {5.0, 300.0, 90.0, 10.0, 0.0});  // 90 m off the only street

  try {
    Scenario s{cfg};
    FAIL() << "off-map trace sample must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // Names the vehicle, the sample, the offending distance and the knob.
    EXPECT_NE(msg.find("vehicle 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("90.0 m"), std::string::npos) << msg;
    EXPECT_NE(msg.find("map.trace_tolerance_m"), std::string::npos) << msg;
  }

  // Loosening the tolerance (or disabling it) accepts the same trace.
  cfg.map.trace_tolerance_m = 120.0;
  EXPECT_NO_THROW(Scenario{cfg});
  cfg.map.trace_tolerance_m = 0.0;
  EXPECT_NO_THROW(Scenario{cfg});
  std::remove(path.c_str());
}

TEST(Scenario, TraceMapCouplingNamesTheCsvLine) {
  map::RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({1000.0, 0.0});
  g.add_segment(0, 1);
  const std::string map_path = ::testing::TempDir() + "vanet_line_map.csv";
  map::save_edge_list_csv_file(g, map_path);
  const std::string trace_path = ::testing::TempDir() + "vanet_line_trace.csv";
  {
    std::ofstream out{trace_path};
    out << "# time,id,x,y,speed,angle\n";
    out << "0,0,100,0,10,0\n";
    out << "1,0,200,500,10,0\n";  // line 3: 500 m off the street
  }

  ScenarioConfig cfg;
  cfg.map.source = MapSource::kFile;
  cfg.map.file = map_path;
  cfg.mobility = MobilityKind::kTrace;
  cfg.duration_s = 2.0;
  cfg.trace = mobility::Trace::load_csv_file(trace_path);
  try {
    Scenario s{cfg};
    FAIL() << "off-map trace sample must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("trace csv line 3"), std::string::npos)
        << e.what();
  }
  std::remove(map_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Scenario, IncrementalDensityOracleIsDigestIdenticalToFullRescan) {
  // CAR consumes the density oracle every forwarding decision, so a single
  // diverging count would change the report; equal digests prove the
  // incremental refresh (model-reported segments + ambiguity veto) matches
  // the full SegmentIndex rescan bit for bit — on the lattice and on the
  // committed irregular town.
  for (const bool town : {false, true}) {
    ScenarioConfig cfg = small_graph_scenario("car");
    if (town) {
      cfg.map.source = MapSource::kFile;
      cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
    }
    cfg.duration_s = 10.0;
    cfg.density_incremental = true;
    Scenario incremental{cfg};
    incremental.run();
    cfg.density_incremental = false;
    Scenario rescan{cfg};
    rescan.run();
    EXPECT_EQ(report_digest(incremental.report()), report_digest(rescan.report()))
        << (town ? "town" : "lattice");
  }
}

TEST(Scenario, FileMapRequiresGraphOrTraceMobility) {
  ScenarioConfig cfg = small_highway("aodv");
  cfg.map.source = MapSource::kFile;
  cfg.map.file = "does-not-matter.csv";
  EXPECT_THROW((Scenario{cfg}), std::invalid_argument);  // highway mobility
  cfg.mobility = MobilityKind::kGraph;
  cfg.map.file.clear();
  EXPECT_THROW((Scenario{cfg}), std::invalid_argument);  // no map.file
}

}  // namespace
}  // namespace vanet::sim
