#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace vanet::sim {
namespace {

ScenarioConfig small_highway(const std::string& protocol) {
  ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 2000.0;
  cfg.vehicles_per_direction = 20;
  cfg.duration_s = 20.0;
  cfg.traffic.flows = 4;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 15.0;
  cfg.traffic.min_pair_distance_m = 300.0;
  return cfg;
}

TEST(Scenario, SameSeedIsBitReproducible) {
  ScenarioConfig cfg = small_highway("aodv");
  cfg.seed = 5;
  Scenario a{cfg}, b{cfg};
  a.run();
  b.run();
  const auto ra = a.report();
  const auto rb = b.report();
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.originated, rb.originated);
  EXPECT_DOUBLE_EQ(ra.delay_ms_mean, rb.delay_ms_mean);
  EXPECT_EQ(ra.control_frames, rb.control_frames);
  EXPECT_EQ(a.simulator().events_dispatched(), b.simulator().events_dispatched());
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig cfg = small_highway("aodv");
  cfg.seed = 1;
  Scenario a{cfg};
  cfg.seed = 2;
  Scenario b{cfg};
  a.run();
  b.run();
  EXPECT_NE(a.simulator().events_dispatched(), b.simulator().events_dispatched());
}

TEST(Scenario, ReportInvariants) {
  Scenario s{small_highway("greedy")};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.originated, 0u);
  EXPECT_LE(r.delivered, r.originated);
  EXPECT_GE(r.pdr, 0.0);
  EXPECT_LE(r.pdr, 1.0);
  EXPECT_GE(r.collision_fraction, 0.0);
  EXPECT_LE(r.collision_fraction, 1.0);
  EXPECT_EQ(r.protocol, "greedy");
}

TEST(Scenario, HelloOnlyWhenProtocolWantsIt) {
  Scenario flood{small_highway("flooding")};
  EXPECT_EQ(flood.hello(), nullptr);
  flood.run();
  EXPECT_EQ(flood.report().hello_frames, 0u);

  Scenario greedy{small_highway("greedy")};
  EXPECT_NE(greedy.hello(), nullptr);
  greedy.run();
  EXPECT_GT(greedy.report().hello_frames, 0u);
}

TEST(Scenario, RsusAreAppendedAfterVehicles) {
  ScenarioConfig cfg = small_highway("drr");
  cfg.rsu_count = 3;
  Scenario s{cfg};
  EXPECT_EQ(s.network().node_count(), s.vehicle_count() + 3);
  EXPECT_EQ(s.network().rsu_ids().size(), 3u);
  for (net::NodeId id : s.network().rsu_ids()) {
    EXPECT_GE(id, s.vehicle_count());
  }
  // RSUs are never traffic endpoints.
  s.run();
  for (const auto& flow : s.traffic().flows()) {
    EXPECT_LT(flow.src, s.vehicle_count());
    EXPECT_LT(flow.dst, s.vehicle_count());
  }
}

TEST(Scenario, ReachabilityOracleBoundsPdr) {
  ScenarioConfig cfg = small_highway("flooding");
  cfg.vehicles_per_direction = 40;  // dense: mostly connectable
  Scenario s{cfg};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.reachable_fraction, 0.5);
  // The oracle is an upper bound up to sampling noise: a protocol cannot
  // beat physics by much.
  EXPECT_LE(r.pdr, r.reachable_fraction + 0.25);

  ScenarioConfig off = cfg;
  off.sample_reachability = false;
  Scenario s2{off};
  s2.run();
  EXPECT_DOUBLE_EQ(s2.report().reachable_fraction, 0.0);
}

TEST(Scenario, ManhattanBuilds) {
  ScenarioConfig cfg;
  cfg.protocol = "car";
  cfg.mobility = MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 4;
  cfg.manhattan.streets_y = 4;
  cfg.manhattan.block = 200.0;
  cfg.vehicles = 40;
  cfg.duration_s = 15.0;
  cfg.traffic.flows = 3;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 12.0;
  Scenario s{cfg};
  s.run();
  EXPECT_GT(s.report().originated, 0u);
}

TEST(Scenario, ShadowingChannelRuns) {
  ScenarioConfig cfg = small_highway("rear");
  cfg.shadowing = true;
  Scenario s{cfg};
  s.run();
  const auto r = s.report();
  EXPECT_GT(r.originated, 0u);
  // With shadowing some receptions fade; the counter must be active.
  EXPECT_GT(s.network().counters().receptions_faded, 0u);
}

TEST(Scenario, BusCountDesignatesFerries) {
  ScenarioConfig cfg = small_highway("bus");
  cfg.bus_count = 4;
  Scenario s{cfg};
  s.run();
  EXPECT_GT(s.report().originated, 0u);
}

}  // namespace
}  // namespace vanet::sim
