#include "routing/probability/road_graph.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vanet::routing {
namespace {

TEST(RoadGraph, LatticeStructure) {
  RoadGraph g{3, 2, 100.0};  // 3x2 intersections
  EXPECT_EQ(g.intersection_count(), 6);
  // Segments: horizontal 2 per row x 2 rows + vertical 3 = 7.
  EXPECT_EQ(g.segment_count(), 7u);
  EXPECT_EQ(g.intersection_pos(0), (core::Vec2{0.0, 0.0}));
  EXPECT_EQ(g.intersection_pos(5), (core::Vec2{200.0, 100.0}));
}

TEST(RoadGraph, DegenerateHighwayLine) {
  RoadGraph g{5, 1, 500.0};
  EXPECT_EQ(g.intersection_count(), 5);
  EXPECT_EQ(g.segment_count(), 4u);
  EXPECT_EQ(g.neighbors_of(0), (std::vector<int>{1}));
  EXPECT_EQ(g.neighbors_of(2), (std::vector<int>{1, 3}));
}

TEST(RoadGraph, NearestIntersectionClamps) {
  RoadGraph g{3, 3, 100.0};
  EXPECT_EQ(g.nearest_intersection({0.0, 0.0}), 0);
  EXPECT_EQ(g.nearest_intersection({149.0, 51.0}), 4);  // rounds to (1,1)
  EXPECT_EQ(g.nearest_intersection({-500.0, 9000.0}), 6);  // clamped corner
}

TEST(RoadGraph, SegmentBetweenAndEnds) {
  RoadGraph g{3, 3, 100.0};
  const int seg = g.segment_between(0, 1);
  ASSERT_GE(seg, 0);
  EXPECT_EQ(g.segment_ends(seg), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(g.segment_between(0, 4), -1);  // diagonal: not a street
  EXPECT_EQ(g.segment_between(0, 1), g.segment_between(1, 0));
}

TEST(RoadGraph, SegmentOfPosition) {
  RoadGraph g{3, 3, 100.0};
  // Point midway along the street from (0,0) to (100,0).
  const int seg = g.segment_of_position({50.0, 5.0});
  EXPECT_EQ(g.segment_ends(seg), (std::pair<int, int>{0, 1}));
}

TEST(RoadGraph, UniformCostPathIsManhattan) {
  RoadGraph g{4, 4, 100.0};
  const auto path =
      g.shortest_path(0, 15, [](int) { return 1.0; });  // corner to corner
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 15);
  EXPECT_EQ(path.size(), 7u);  // 6 hops = Manhattan distance 3+3
}

TEST(RoadGraph, CostSteersPathAroundExpensiveSegments) {
  RoadGraph g{3, 1, 100.0};  // line 0-1-2: only one path exists
  const auto path = g.shortest_path(0, 2, [](int seg) {
    return seg == 0 ? 1000.0 : 1.0;  // expensive but unavoidable
  });
  EXPECT_EQ(path.size(), 3u);

  RoadGraph grid{3, 3, 100.0};
  // Make the direct middle row expensive; the path should detour but still
  // arrive with minimum total cost.
  const auto detour = grid.shortest_path(3, 5, [&grid](int seg) {
    const auto [a, b] = grid.segment_ends(seg);
    const bool middle_row = (a == 3 && b == 4) || (a == 4 && b == 5);
    return middle_row ? 100.0 : 1.0;
  });
  ASSERT_FALSE(detour.empty());
  EXPECT_EQ(detour.front(), 3);
  EXPECT_EQ(detour.back(), 5);
  EXPECT_EQ(detour.size(), 5u);  // 4 cheap hops beat 2 expensive ones
}

TEST(RoadGraph, SameSourceAndTarget) {
  RoadGraph g{3, 3, 100.0};
  const auto path = g.shortest_path(4, 4, [](int) { return 1.0; });
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
}

TEST(DensityOracle, SetAndGet) {
  SegmentDensityOracle o{5};
  EXPECT_EQ(o.segments(), 5u);
  EXPECT_DOUBLE_EQ(o.count(3), 0.0);
  o.set_count(3, 12.0);
  EXPECT_DOUBLE_EQ(o.count(3), 12.0);
}

}  // namespace
}  // namespace vanet::routing
