#include "map/road_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "map/segment_index.h"

namespace vanet::map {
namespace {

TEST(RoadGraph, LatticeStructure) {
  RoadGraph g{3, 2, 100.0};  // 3x2 intersections
  EXPECT_EQ(g.intersection_count(), 6);
  // Segments: horizontal 2 per row x 2 rows + vertical 3 = 7.
  EXPECT_EQ(g.segment_count(), 7u);
  EXPECT_EQ(g.intersection_pos(0), (core::Vec2{0.0, 0.0}));
  EXPECT_EQ(g.intersection_pos(5), (core::Vec2{200.0, 100.0}));
  EXPECT_TRUE(g.is_grid());
  EXPECT_EQ(g.bbox_min(), (core::Vec2{0.0, 0.0}));
  EXPECT_EQ(g.bbox_max(), (core::Vec2{200.0, 100.0}));
  for (std::size_t s = 0; s < g.segment_count(); ++s) {
    EXPECT_DOUBLE_EQ(g.segment_length(static_cast<int>(s)), 100.0);
  }
}

TEST(RoadGraph, DegenerateHighwayLine) {
  RoadGraph g{5, 1, 500.0};
  EXPECT_EQ(g.intersection_count(), 5);
  EXPECT_EQ(g.segment_count(), 4u);
  EXPECT_EQ(g.neighbors_of(0), (std::vector<int>{1}));
  EXPECT_EQ(g.neighbors_of(2), (std::vector<int>{1, 3}));
}

TEST(RoadGraph, NearestIntersectionClamps) {
  RoadGraph g{3, 3, 100.0};
  EXPECT_EQ(g.nearest_intersection({0.0, 0.0}), 0);
  EXPECT_EQ(g.nearest_intersection({149.0, 51.0}), 4);  // rounds to (1,1)
  EXPECT_EQ(g.nearest_intersection({-500.0, 9000.0}), 6);  // clamped corner
}

TEST(RoadGraph, SegmentBetweenAndEnds) {
  RoadGraph g{3, 3, 100.0};
  const int seg = g.segment_between(0, 1);
  ASSERT_GE(seg, 0);
  EXPECT_EQ(g.segment_ends(seg), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(g.segment_between(0, 4), -1);  // diagonal: not a street
  EXPECT_EQ(g.segment_between(0, 1), g.segment_between(1, 0));
}

TEST(RoadGraph, SegmentOfPosition) {
  RoadGraph g{3, 3, 100.0};
  // Point midway along the street from (0,0) to (100,0).
  const int seg = g.segment_of_position({50.0, 5.0});
  EXPECT_EQ(g.segment_ends(seg), (std::pair<int, int>{0, 1}));
}

TEST(RoadGraph, UniformCostPathIsManhattan) {
  RoadGraph g{4, 4, 100.0};
  const auto path =
      g.shortest_path(0, 15, [](int) { return 1.0; });  // corner to corner
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 15);
  EXPECT_EQ(path.size(), 7u);  // 6 hops = Manhattan distance 3+3
}

TEST(RoadGraph, CostSteersPathAroundExpensiveSegments) {
  RoadGraph g{3, 1, 100.0};  // line 0-1-2: only one path exists
  const auto path = g.shortest_path(0, 2, [](int seg) {
    return seg == 0 ? 1000.0 : 1.0;  // expensive but unavoidable
  });
  EXPECT_EQ(path.size(), 3u);

  RoadGraph grid{3, 3, 100.0};
  // Make the direct middle row expensive; the path should detour but still
  // arrive with minimum total cost.
  const auto detour = grid.shortest_path(3, 5, [&grid](int seg) {
    const auto [a, b] = grid.segment_ends(seg);
    const bool middle_row = (a == 3 && b == 4) || (a == 4 && b == 5);
    return middle_row ? 100.0 : 1.0;
  });
  ASSERT_FALSE(detour.empty());
  EXPECT_EQ(detour.front(), 3);
  EXPECT_EQ(detour.back(), 5);
  EXPECT_EQ(detour.size(), 5u);  // 4 cheap hops beat 2 expensive ones
}

TEST(RoadGraph, SameSourceAndTarget) {
  RoadGraph g{3, 3, 100.0};
  const auto path = g.shortest_path(4, 4, [](int) { return 1.0; });
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
}

TEST(RoadGraph, GeneralGraphBuild) {
  // A triangle with one spur — impossible to express as a lattice.
  RoadGraph g;
  const int a = g.add_intersection({0.0, 0.0});
  const int b = g.add_intersection({300.0, 0.0});
  const int c = g.add_intersection({150.0, 200.0});
  const int d = g.add_intersection({450.0, 50.0});
  const int ab = g.add_segment(a, b);
  g.add_segment(b, c);
  g.add_segment(c, a);
  g.add_segment(b, d);
  EXPECT_FALSE(g.is_grid());
  EXPECT_EQ(g.intersection_count(), 4);
  EXPECT_EQ(g.segment_count(), 4u);
  EXPECT_DOUBLE_EQ(g.segment_length(ab), 300.0);
  EXPECT_DOUBLE_EQ(g.segment_length(g.segment_between(a, c)),
                   std::hypot(150.0, 200.0));
  EXPECT_EQ(g.degree(b), 3);
  EXPECT_EQ(g.neighbors_of(b), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(g.nearest_intersection({440.0, 60.0}), d);
  EXPECT_EQ(g.bbox_max(), (core::Vec2{450.0, 200.0}));

  // Length-shortest path a -> d goes through b directly.
  EXPECT_EQ(g.shortest_path_by_length(a, d), (std::vector<int>{a, b, d}));
}

TEST(RoadGraph, ShortestPathByLengthPrefersShortDetour) {
  // 0 --1000m-- 1, plus a 2-leg detour 0 -300m- 2 -300m- 1.
  RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({1000.0, 0.0});
  g.add_intersection({0.0, 300.0});
  g.add_segment(0, 1);
  g.add_segment(0, 2);
  g.add_segment(2, 1);  // hypot(1000,300) ~ 1044: direct still wins
  EXPECT_EQ(g.shortest_path_by_length(0, 1), (std::vector<int>{0, 1}));
  // Uniform per-segment cost prefers fewer hops too; but when the direct
  // road is penalised, the detour wins by length.
  const auto detour = g.shortest_path(
      0, 1, [&g](int seg) { return seg == 0 ? 1e6 : g.segment_length(seg); });
  EXPECT_EQ(detour, (std::vector<int>{0, 2, 1}));
}

// The exactness contract of map/segment_index.h: nearest_segment must agree
// with the brute-force scan — including the lowest-id tie-break — on both
// lattice and irregular graphs, for on-road, off-road and far-away points.
TEST(RoadGraph, SegmentIndexMatchesLinearScan) {
  core::Rng rng{2024};
  {
    RoadGraph g{6, 4, 150.0};
    SegmentIndex index{g};
    for (int i = 0; i < 2000; ++i) {
      // Include exact lattice multiples: distance ties are the hard case.
      const double x = rng.bernoulli(0.3)
                           ? 150.0 * rng.uniform_int(-1, 6)
                           : rng.uniform(-300.0, 1100.0);
      const double y = rng.bernoulli(0.3)
                           ? 150.0 * rng.uniform_int(-1, 4)
                           : rng.uniform(-300.0, 800.0);
      EXPECT_EQ(index.nearest_segment({x, y}), g.segment_of_position({x, y}))
          << "at (" << x << ", " << y << ")";
    }
  }
  {
    // Random irregular graph.
    RoadGraph g;
    for (int i = 0; i < 40; ++i) {
      g.add_intersection({rng.uniform(0.0, 2000.0), rng.uniform(0.0, 1500.0)});
    }
    for (int i = 1; i < 40; ++i) {
      g.add_segment(i, static_cast<int>(rng.uniform_int(0, i - 1)));
    }
    for (int extra = 0; extra < 30; ++extra) {
      const int a = static_cast<int>(rng.uniform_int(0, 39));
      const int b = static_cast<int>(rng.uniform_int(0, 39));
      if (a != b && g.segment_between(a, b) == -1) g.add_segment(a, b);
    }
    SegmentIndex index{g};
    for (int i = 0; i < 2000; ++i) {
      const core::Vec2 p{rng.uniform(-500.0, 2500.0),
                         rng.uniform(-500.0, 2000.0)};
      EXPECT_EQ(index.nearest_segment(p), g.segment_of_position(p))
          << "at (" << p.x << ", " << p.y << ")";
    }
  }
}

TEST(DensityOracle, SetAndGet) {
  SegmentDensityOracle o{5};
  EXPECT_EQ(o.segments(), 5u);
  EXPECT_DOUBLE_EQ(o.count(3), 0.0);
  o.set_count(3, 12.0);
  EXPECT_DOUBLE_EQ(o.count(3), 12.0);
}

}  // namespace
}  // namespace vanet::map
