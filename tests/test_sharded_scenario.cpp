// Sharded engine contract tests (src/sim/sharded/):
//  - thread-count invariance: the digest-equivalence guarantee that
//    threads=1 and threads=K execute the identical model bit-identically,
//    across protocol families, seeds, shard counts and map sources;
//  - conservation: the sharded run originates exactly the packets the
//    serial run does (the flow schedule is a pure function of the seed);
//  - ownership: the shards partition the node id space;
//  - config restrictions: unsupported combinations throw at construction.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/scenario.h"
#include "sim/sharded/sharded_scenario.h"

namespace vanet::sim {
namespace {

ScenarioConfig lattice_config(const std::string& protocol,
                              std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration_s = 12.0;
  cfg.mobility = MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 6;
  cfg.manhattan.streets_y = 6;
  cfg.vehicles = 48;
  cfg.protocol = protocol;
  cfg.traffic.flows = 8;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 10.0;
  cfg.traffic.min_pair_distance_m = 200.0;
  return cfg;
}

ScenarioConfig town_config(const std::string& protocol, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration_s = 10.0;
  cfg.map.source = MapSource::kFile;
  cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
  cfg.mobility = MobilityKind::kGraph;
  cfg.vehicles = 40;
  cfg.protocol = protocol;
  cfg.traffic.flows = 6;
  cfg.traffic.start_s = 2.0;
  cfg.traffic.stop_s = 8.0;
  cfg.traffic.min_pair_distance_m = 200.0;
  return cfg;
}

struct RunResult {
  std::string digest;
  std::uint64_t events = 0;
  std::uint64_t originated = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult run_once(ScenarioConfig cfg, int shards, int threads) {
  cfg.shards = shards;
  cfg.shard_threads = threads;
  Scenario s{std::move(cfg)};
  s.run();
  const ScenarioReport r = s.report();
  return {report_digest(r), s.events_dispatched(), r.originated};
}

// The tentpole equivalence guarantee: any worker-thread count executes the
// sharded model bit-identically. threads=1 is the serial reference
// execution; threads=K is the fully parallel one.
TEST(ShardedScenario, ThreadCountInvariantAcrossProtocolsAndSeeds) {
  for (const char* protocol : {"flooding", "greedy", "aodv", "dsdv"}) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      for (const int shards : {2, 3}) {
        const ScenarioConfig cfg = lattice_config(protocol, seed);
        const RunResult serial = run_once(cfg, shards, 1);
        const RunResult parallel = run_once(cfg, shards, shards);
        EXPECT_EQ(serial, parallel)
            << protocol << " seed=" << seed << " shards=" << shards;
      }
    }
  }
}

TEST(ShardedScenario, ThreadCountInvariantOnImportedMapGraphMobility) {
  for (const char* protocol : {"flooding", "greedy", "aodv"}) {
    const ScenarioConfig cfg = town_config(protocol, 11);
    const RunResult serial = run_once(cfg, 3, 1);
    const RunResult parallel = run_once(cfg, 3, 3);
    EXPECT_EQ(serial, parallel) << protocol;
  }
}

TEST(ShardedScenario, RepeatedRunsAreDeterministic) {
  const ScenarioConfig cfg = lattice_config("greedy", 5);
  EXPECT_EQ(run_once(cfg, 4, 4), run_once(cfg, 4, 4));
}

// Oversubscribed stress: eight shards driven by eight workers (more workers
// than this repo's CI cores) must still match the one-worker execution of
// the same partition. Doubles as the ThreadSanitizer workout for the
// mailbox hand-off and the barrier protocol — the CI tsan job runs this
// suite (see .github/workflows/ci.yml).
TEST(ShardedScenario, EightWayOversubscribedStressMatchesOneWorker) {
  const ScenarioConfig cfg = lattice_config("flooding", 11);
  EXPECT_EQ(run_once(cfg, 8, 1), run_once(cfg, 8, 8));
}

// Every flow is scheduled by exactly one shard and the flow schedule is a
// pure function of the seed, so the sharded run must originate exactly the
// packets the serial engine does — whatever the physics at the cuts.
TEST(ShardedScenario, OriginatedPacketsMatchSerialEngine) {
  const ScenarioConfig cfg = lattice_config("flooding", 3);
  const RunResult serial = run_once(cfg, 1, 0);
  const RunResult sharded = run_once(cfg, 3, 3);
  EXPECT_GT(serial.originated, 0u);
  EXPECT_EQ(serial.originated, sharded.originated);
}

TEST(ShardedScenario, DensePacketDeliveryStillWorksAcrossCuts) {
  ScenarioConfig cfg = lattice_config("flooding", 2);
  cfg.shards = 4;
  Scenario s{std::move(cfg)};
  ASSERT_TRUE(s.is_sharded());
  EXPECT_EQ(s.shard_count(), 4);
  s.run();
  const ScenarioReport r = s.report();
  EXPECT_GT(r.originated, 0u);
  // Flooding on a dense 6x6 lattice delivers most packets; if the handoff
  // path dropped cross-cut frames wholesale, PDR would collapse toward the
  // single-region fraction.
  EXPECT_GT(r.pdr, 0.5);
  // Cross-shard traffic actually flowed (the run exercised the bridge).
  EXPECT_GT(s.sharded_engine()->handoff_receptions(), 0u);
}

TEST(ShardedScenario, OwnershipPartitionsTheNodeIdSpace) {
  ScenarioConfig cfg = lattice_config("flooding", 1);
  cfg.shards = 3;
  Scenario s{std::move(cfg)};
  auto* engine = s.sharded_engine();
  ASSERT_NE(engine, nullptr);
  std::vector<int> seen(s.vehicle_count(), 0);
  for (int shard = 0; shard < engine->shards(); ++shard) {
    for (const net::NodeId id : engine->owned_ids(shard)) {
      EXPECT_EQ(engine->owner_of(id), shard);
      ++seen[id];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardedScenario, SerialPathIsUntouchedForShardsOne) {
  ScenarioConfig cfg = lattice_config("flooding", 1);
  cfg.shards = 1;
  Scenario s{std::move(cfg)};
  EXPECT_FALSE(s.is_sharded());
  EXPECT_EQ(s.shard_count(), 1);
  EXPECT_EQ(s.shard_thread_count(), 1);
  EXPECT_EQ(s.sharded_engine(), nullptr);
}

TEST(ShardedScenario, RejectsConfigsOutsideTheShardContract) {
  {
    ScenarioConfig cfg = lattice_config("aodv", 1);
    cfg.shards = 2;
    cfg.phy = PhyModel::kShadowing;
    EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  }
  {
    ScenarioConfig cfg = lattice_config("aodv", 1);
    cfg.shards = 2;
    cfg.rsu_count = 2;
    EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  }
  {
    ScenarioConfig cfg = lattice_config("aodv", 1);
    cfg.shards = 2;
    cfg.fault.enabled = true;
    EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  }
  {
    ScenarioConfig cfg = lattice_config("aodv", 1);
    cfg.shards = 2;
    cfg.shard_window_ms = 0.0;
    EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  }
  {
    ScenarioConfig cfg = lattice_config("aodv", 1);
    cfg.shards = 2;
    cfg.shard_window_ms = 25.0;
    EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  }
  {
    ScenarioConfig cfg = lattice_config("aodv", 1);
    cfg.shards = -1;
    EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
  }
}

// Requested shard counts beyond what the map can sustain clamp to the
// partitioner's effective region count instead of creating empty loops.
TEST(ShardedScenario, ShardCountClampsToPartition) {
  ScenarioConfig cfg = lattice_config("flooding", 1);
  cfg.shards = 4;
  Scenario s{std::move(cfg)};
  ASSERT_TRUE(s.is_sharded());
  EXPECT_EQ(s.shard_count(), 4);  // a 6x6 lattice has plenty of segments
  EXPECT_EQ(s.shard_thread_count(), 4);
}

}  // namespace
}  // namespace vanet::sim
