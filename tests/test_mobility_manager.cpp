#include "mobility/mobility_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "mobility/constant_velocity.h"

namespace vanet::mobility {
namespace {

std::unique_ptr<ConstantVelocityModel> two_vehicle_model() {
  auto m = std::make_unique<ConstantVelocityModel>();
  m->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 10.0);
  m->add_vehicle({100.0, 0.0}, {-1.0, 0.0}, 5.0);
  return m;
}

TEST(MobilityManager, StepsOnTicks) {
  core::Simulator sim;
  core::RngManager rngs{1};
  MobilityManager mgr{sim, two_vehicle_model(), rngs.stream("m"),
                      core::SimTime::millis(100)};
  mgr.start();
  sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_NEAR(mgr.state(0).pos.x, 10.0, 1e-9);
  EXPECT_NEAR(mgr.state(1).pos.x, 95.0, 1e-9);
}

TEST(MobilityManager, ListenersFirePerTick) {
  core::Simulator sim;
  core::RngManager rngs{1};
  MobilityManager mgr{sim, two_vehicle_model(), rngs.stream("m"),
                      core::SimTime::millis(200)};
  int ticks = 0;
  core::SimTime last{};
  mgr.add_tick_listener([&](core::SimTime t) {
    ++ticks;
    last = t;
  });
  mgr.start();
  sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(last, core::SimTime::seconds(1.0));
}

TEST(MobilityManager, StopHaltsStepping) {
  core::Simulator sim;
  core::RngManager rngs{1};
  MobilityManager mgr{sim, two_vehicle_model(), rngs.stream("m"),
                      core::SimTime::millis(100)};
  mgr.start();
  sim.run_until(core::SimTime::millis(300));
  mgr.stop();
  const double x = mgr.state(0).pos.x;
  sim.run_until(core::SimTime::seconds(2.0));
  EXPECT_DOUBLE_EQ(mgr.state(0).pos.x, x);
}

TEST(MobilityManager, HasVehicleAndIndex) {
  core::Simulator sim;
  core::RngManager rngs{1};
  MobilityManager mgr{sim, two_vehicle_model(), rngs.stream("m")};
  EXPECT_TRUE(mgr.has_vehicle(0));
  EXPECT_TRUE(mgr.has_vehicle(1));
  EXPECT_FALSE(mgr.has_vehicle(2));
  EXPECT_EQ(mgr.vehicles().size(), 2u);
  EXPECT_EQ(mgr.state(1).id, 1u);
}

}  // namespace
}  // namespace vanet::mobility
