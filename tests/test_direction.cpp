// Fig. 4: velocity decomposition onto the line joining two vehicles and the
// same-direction test v_ah*v_bh > 0 && v_av*v_bv > 0.
#include "analysis/direction.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vanet::analysis {
namespace {

TEST(Direction, DecomposeOntoAxis) {
  // b is due east of a; velocities decompose into along-axis (x) and
  // perpendicular (y) parts directly.
  const auto d = decompose({0.0, 0.0}, {100.0, 0.0}, {10.0, 5.0}, {-2.0, 7.0});
  EXPECT_DOUBLE_EQ(d.a_along, 10.0);
  EXPECT_DOUBLE_EQ(d.a_perp, 5.0);
  EXPECT_DOUBLE_EQ(d.b_along, -2.0);
  EXPECT_DOUBLE_EQ(d.b_perp, 7.0);
}

TEST(Direction, DecomposeDiagonalAxis) {
  // Axis at 45 degrees; a velocity along the axis has no perpendicular part.
  const double s = std::sqrt(2.0) / 2.0;
  const auto d = decompose({0.0, 0.0}, {10.0, 10.0}, {s, s}, {2.0 * s, 2.0 * s});
  EXPECT_NEAR(d.a_along, 1.0, 1e-12);
  EXPECT_NEAR(d.a_perp, 0.0, 1e-12);
  EXPECT_NEAR(d.b_along, 2.0, 1e-12);
}

TEST(Direction, SameDirectionParallel) {
  EXPECT_TRUE(same_direction({0.0, 0.0}, {50.0, 0.0}, {20.0, 1.0}, {25.0, 2.0}));
}

TEST(Direction, OppositeTrafficIsNotSameDirection) {
  EXPECT_FALSE(
      same_direction({0.0, 0.0}, {50.0, 0.0}, {20.0, 1.0}, {-25.0, 1.0}));
}

TEST(Direction, PerpendicularCrossTrafficIsNotSameDirection) {
  EXPECT_FALSE(
      same_direction({0.0, 0.0}, {50.0, 0.0}, {20.0, 5.0}, {20.0, -5.0}));
}

TEST(Direction, StationaryVehicleIsNotSameDirection) {
  // Zero projections make both products zero: the paper's strict > fails.
  EXPECT_FALSE(
      same_direction({0.0, 0.0}, {50.0, 0.0}, {20.0, 1.0}, {0.0, 0.0}));
}

TEST(Direction, SimilarHeading) {
  EXPECT_TRUE(similar_heading({10.0, 0.0}, {10.0, 1.0}, 0.3));
  EXPECT_FALSE(similar_heading({10.0, 0.0}, {-10.0, 0.0}, 0.3));
  EXPECT_FALSE(similar_heading({10.0, 0.0}, {0.0, 10.0}, 0.8));
  EXPECT_TRUE(similar_heading({10.0, 0.0}, {0.0, 10.0}, 1.6));
  // Stationary vehicles impose no constraint.
  EXPECT_TRUE(similar_heading({0.0, 0.0}, {-10.0, 0.0}, 0.1));
}

TEST(Direction, VelocityGroupsQuadrants) {
  EXPECT_EQ(velocity_group({30.0, 1.0}), 0);   // +x dominant
  EXPECT_EQ(velocity_group({-30.0, 1.0}), 2);  // -x dominant
  EXPECT_EQ(velocity_group({1.0, 30.0}), 1);   // +y dominant
  EXPECT_EQ(velocity_group({1.0, -30.0}), 3);  // -y dominant
  EXPECT_EQ(velocity_group({0.0, 0.0}), 0);    // convention: group 0
}

TEST(Direction, GroupsPartitionHighwayTraffic) {
  // All forward-lane vehicles share a group; all backward-lane vehicles
  // share the other, regardless of small lateral components.
  for (double jitter : {-0.5, 0.0, 0.5}) {
    EXPECT_EQ(velocity_group({28.0, jitter}), 0);
    EXPECT_EQ(velocity_group({-33.0, jitter}), 2);
  }
}

}  // namespace
}  // namespace vanet::analysis
