#include "routing/dup_cache.h"

#include <gtest/gtest.h>

namespace vanet::routing {
namespace {

TEST(DupCache, FirstInsertIsFresh) {
  DupCache c;
  EXPECT_FALSE(c.seen_or_insert(42));
  EXPECT_TRUE(c.seen_or_insert(42));
  EXPECT_TRUE(c.contains(42));
  EXPECT_FALSE(c.contains(43));
}

TEST(DupCache, FifoEviction) {
  DupCache c{3};
  c.seen_or_insert(1);
  c.seen_or_insert(2);
  c.seen_or_insert(3);
  c.seen_or_insert(4);  // evicts 1
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.seen_or_insert(1));  // reinsertable after eviction
}

TEST(DupCache, KeyMixesAllInputs) {
  const auto k = DupCache::key(1, 2, 3);
  EXPECT_NE(k, DupCache::key(1, 2, 4));
  EXPECT_NE(k, DupCache::key(1, 3, 2));
  EXPECT_NE(k, DupCache::key(3, 2, 1));
  EXPECT_EQ(k, DupCache::key(1, 2, 3));
}

TEST(DupCache, KeyCollisionsRareOverDenseRange) {
  DupCache c{1u << 20};
  int collisions = 0;
  for (std::uint32_t a = 0; a < 100; ++a) {
    for (std::uint32_t b = 0; b < 100; ++b) {
      if (c.seen_or_insert(DupCache::key(a, b, 7))) ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace vanet::routing
