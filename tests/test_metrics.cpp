#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace vanet::sim {
namespace {

TEST(Metrics, PdrCountsUniqueDeliveries) {
  Metrics m;
  for (int i = 0; i < 4; ++i) m.record_originated();
  EXPECT_TRUE(m.record_delivery(0, 0, core::SimTime::zero(),
                                core::SimTime::millis(10), 2));
  EXPECT_TRUE(m.record_delivery(0, 1, core::SimTime::zero(),
                                core::SimTime::millis(30), 4));
  EXPECT_DOUBLE_EQ(m.pdr(), 0.5);
  EXPECT_EQ(m.delivered(), 2u);
  EXPECT_EQ(m.originated(), 4u);
}

TEST(Metrics, DuplicateDeliveriesIgnored) {
  Metrics m;
  m.record_originated();
  EXPECT_TRUE(m.record_delivery(1, 7, core::SimTime::zero(),
                                core::SimTime::millis(5), 1));
  EXPECT_FALSE(m.record_delivery(1, 7, core::SimTime::zero(),
                                 core::SimTime::millis(9), 3));
  EXPECT_EQ(m.delivered(), 1u);
  EXPECT_EQ(m.duplicate_deliveries(), 1u);
  EXPECT_DOUBLE_EQ(m.delay_ms().mean(), 5.0);
}

TEST(Metrics, SameSeqDifferentFlowsAreDistinct) {
  Metrics m;
  m.record_originated();
  m.record_originated();
  EXPECT_TRUE(m.record_delivery(1, 7, core::SimTime::zero(),
                                core::SimTime::millis(5), 1));
  EXPECT_TRUE(m.record_delivery(2, 7, core::SimTime::zero(),
                                core::SimTime::millis(5), 1));
  EXPECT_EQ(m.delivered(), 2u);
}

TEST(Metrics, DelayAndHopStats) {
  Metrics m;
  m.record_originated();
  m.record_originated();
  m.record_delivery(0, 0, core::SimTime::zero(), core::SimTime::millis(10), 2);
  m.record_delivery(0, 1, core::SimTime::zero(), core::SimTime::millis(20), 6);
  EXPECT_DOUBLE_EQ(m.delay_ms().mean(), 15.0);
  EXPECT_DOUBLE_EQ(m.hops().mean(), 4.0);
}

TEST(Metrics, PerFlowBreakdown) {
  Metrics m;
  m.record_originated(1);
  m.record_originated(1);
  m.record_originated(2);
  m.record_delivery(1, 0, core::SimTime::zero(), core::SimTime::millis(10), 2);
  EXPECT_DOUBLE_EQ(m.flow_stats(1).pdr(), 0.5);
  EXPECT_DOUBLE_EQ(m.flow_stats(1).delay_ms.mean(), 10.0);
  EXPECT_DOUBLE_EQ(m.flow_stats(2).pdr(), 0.0);
  EXPECT_EQ(m.flow_stats(99).originated, 0u);  // unseen flow: zeros
}

TEST(Metrics, EmptyPdrIsZero) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.pdr(), 0.0);
}

}  // namespace
}  // namespace vanet::sim
