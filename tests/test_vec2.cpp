#include "core/vec2.h"

#include <gtest/gtest.h>

namespace vanet::core {
namespace {

TEST(Vec2, BasicOps) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, -2.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 2.0}));
  EXPECT_EQ((a - b), (Vec2{2.0, 6.0}));
  EXPECT_EQ((a * 2.0), (Vec2{6.0, 8.0}));
  EXPECT_EQ((2.0 * a), (Vec2{6.0, 8.0}));
  EXPECT_EQ((a / 2.0), (Vec2{1.5, 2.0}));
  EXPECT_EQ(-a, (Vec2{-3.0, -4.0}));
}

TEST(Vec2, NormAndDot) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.cross({1.0, 0.0}), -4.0);
  EXPECT_DOUBLE_EQ(a.distance_to({3.0, 0.0}), 4.0);
}

TEST(Vec2, Normalized) {
  const Vec2 a{3.0, 4.0};
  const Vec2 u = a.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, DistanceToSegmentInterior) {
  // Point above the middle of a horizontal segment.
  EXPECT_DOUBLE_EQ(distance_to_segment({5.0, 3.0}, {0.0, 0.0}, {10.0, 0.0}), 3.0);
}

TEST(Vec2, DistanceToSegmentEndpoints) {
  // Beyond either end, distance is to the nearest endpoint.
  EXPECT_DOUBLE_EQ(distance_to_segment({-3.0, 4.0}, {0.0, 0.0}, {10.0, 0.0}),
                   5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({14.0, 3.0}, {0.0, 0.0}, {10.0, 0.0}),
                   5.0);
}

TEST(Vec2, DistanceToDegenerateSegment) {
  EXPECT_DOUBLE_EQ(distance_to_segment({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0}), 5.0);
}

TEST(Vec2, PointOnSegmentIsZero) {
  EXPECT_DOUBLE_EQ(distance_to_segment({5.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace vanet::core
