// MAC edge cases around the contended-channel hot path: half-duplex
// rejection, same-instant frame ends, queue-capacity accounting, and
// unicast retry exhaustion.
//
// Timing in these tests leans on two documented invariants: events at equal
// timestamps dispatch in insertion order, and contention_window = 1 makes
// every backoff draw zero slots (deterministic attempt times).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/network.h"

namespace vanet::net {
namespace {

struct MacNet {
  core::Simulator sim;
  core::RngManager rngs{7};
  std::unique_ptr<Network> net;
  std::vector<std::vector<Packet>> received;

  explicit MacNet(const std::vector<core::Vec2>& positions, double range,
                  NetworkConfig cfg) {
    net = std::make_unique<Network>(sim, nullptr,
                                    std::make_unique<UnitDiskModel>(range),
                                    rngs.stream("net"), cfg);
    received.resize(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const NodeId id = net->add_rsu(positions[i]);
      net->set_receive_handler(id, [this, id](const Packet& p) {
        received[id].push_back(p);
      });
    }
  }

  Packet data_packet(std::size_t bytes, NodeId rx = kBroadcastId) {
    Packet p;
    p.kind = PacketKind::kData;
    p.size_bytes = bytes;
    p.rx = rx;
    p.created_at = sim.now();
    return p;
  }
};

// Deterministic MAC: 1 Mbit/s so frame durations are round, zero backoff
// slots, 10 ms slot time.
NetworkConfig deterministic_cfg() {
  NetworkConfig cfg;
  cfg.bitrate_bps = 1e6;
  cfg.contention_window = 1;
  cfg.slot_time = core::SimTime::millis(10);
  return cfg;
}

TEST(MacEdge, HalfDuplexReceiverRejectsFrameEndingAsItTransmits) {
  // X--B in sense range, X--A out of range, A--B in range. X's frame makes B
  // defer to t=20 ms; A (which cannot hear X) is scheduled so its frame ends
  // at exactly t=20 ms. B's deferred attempt was enqueued earlier than A's
  // finish event, so at t=20 ms B starts transmitting first and A's unicast
  // must be rejected half-duplex — observable as a retry with zero
  // collisions and a perfectly in-range receiver.
  MacNet t{{{40.0, 0.0}, {150.0, 0.0}, {250.0, 0.0}}, 120.0,
           deterministic_cfg()};
  const NodeId x = 0, b = 1, a = 2;
  // 1210-byte frame at 1 Mbit/s with 40 bytes overhead: exactly 10 ms.
  t.net->send(x, t.data_packet(1210));
  t.net->send(b, t.data_packet(1210));
  // A's 210-byte frame lasts 2 ms; started at 18 ms it ends at 20 ms.
  t.sim.schedule(core::SimTime::millis(18),
                 [&] { t.net->send(a, t.data_packet(210, b)); });
  t.sim.run_until(core::SimTime::millis(20));
  // B heard X's frame but not A's (rejected half-duplex, pending retry).
  ASSERT_EQ(t.received[b].size(), 1u);
  EXPECT_EQ(t.received[b][0].tx, x);
  EXPECT_EQ(t.net->counters().unicast_retries, 1u);
  EXPECT_EQ(t.net->counters().receptions_collided, 0u);

  // The retry goes through once B's own frame is done.
  t.sim.run_until(core::SimTime::seconds(1.0));
  ASSERT_EQ(t.received[b].size(), 2u);
  EXPECT_EQ(t.received[b][1].tx, a);
  EXPECT_EQ(t.net->counters().unicast_failures, 0u);
}

TEST(MacEdge, SameInstantFrameEndsResolveToTheRightTransmissions) {
  // Two independent pairs far apart; both transmitters start at t=0 with
  // equal-length frames, so both finish events fire at the same instant.
  // Each node must resolve its own channel record (a lookup by end time
  // could alias) and deliver to its own receiver.
  MacNet t{{{0.0, 0.0}, {50.0, 0.0}, {10000.0, 0.0}, {10050.0, 0.0}}, 100.0,
           deterministic_cfg()};
  t.net->send(0, t.data_packet(1210, 1));
  t.net->send(2, t.data_packet(1210, 3));
  t.sim.run_until(core::SimTime::seconds(1.0));
  ASSERT_EQ(t.received[1].size(), 1u);
  ASSERT_EQ(t.received[3].size(), 1u);
  EXPECT_EQ(t.received[1][0].tx, 0u);
  EXPECT_EQ(t.received[3][0].tx, 2u);
  EXPECT_EQ(t.net->counters().receptions_ok, 2u);
  EXPECT_EQ(t.net->counters().receptions_collided, 0u);
  EXPECT_EQ(t.net->counters().unicast_retries, 0u);
}

TEST(MacEdge, QueueCapacityDropsAreCountedAgainstEnqueues) {
  NetworkConfig cfg = deterministic_cfg();
  cfg.queue_capacity = 3;
  MacNet t{{{0.0, 0.0}, {50.0, 0.0}}, 100.0, cfg};
  for (int i = 0; i < 8; ++i) t.net->send(0, t.data_packet(64));
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.net->counters().frames_enqueued, 8u);
  EXPECT_EQ(t.net->counters().frames_dropped_queue, 5u);
  EXPECT_EQ(t.received[1].size(), 3u);
  // Drops happen at enqueue time: nothing else was transmitted or retried.
  EXPECT_EQ(t.net->counters().frames_sent, 3u);
}

TEST(MacEdge, RetryExhaustionInvokesFailureHandlerExactlyOncePerPacket) {
  MacNet t{{{0.0, 0.0}, {500.0, 0.0}}, 100.0, deterministic_cfg()};
  std::map<std::uint64_t, int> failures_by_uid;
  t.net->set_unicast_fail_handler(
      0, [&](const Packet& p) { ++failures_by_uid[p.uid]; });
  // Two unicasts to an unreachable destination, back to back.
  t.net->send(0, t.data_packet(64, 1));
  t.net->send(0, t.data_packet(64, 1));
  t.sim.run_until(core::SimTime::seconds(5.0));
  // Each packet: 1 attempt + 3 retries, then exactly one failure callback.
  EXPECT_EQ(t.net->counters().unicast_retries, 6u);
  EXPECT_EQ(t.net->counters().unicast_failures, 2u);
  EXPECT_EQ(t.net->counters().frames_sent, 8u);
  ASSERT_EQ(failures_by_uid.size(), 2u);
  for (const auto& [uid, count] : failures_by_uid) {
    EXPECT_EQ(count, 1) << "uid " << uid;
  }
  EXPECT_EQ(t.received[1].size(), 0u);
}

}  // namespace
}  // namespace vanet::net
