// OnDemandBase machinery through its AODV instantiation, plus the
// metric-policy hooks of the mobility/probability subclasses.
#include "routing/on_demand.h"

#include <gtest/gtest.h>

#include "util/line_fixture.h"

namespace vanet::testing {
namespace {

TEST(OnDemand, DiscoveryEstablishesRouteAndFlushesBuffer) {
  LineFixtureOptions opt;
  opt.nodes = 4;
  LineFixture f{"aodv", opt};
  f.run_to(0.5);
  f.send(0, 3, 1);
  f.send(0, 3, 2);  // buffered behind the same discovery
  f.run_to(5.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  EXPECT_EQ(f.delivered_count(0, 2), 1u);
  EXPECT_EQ(f.events.discoveries_started, 1u);
  EXPECT_EQ(f.events.routes_established, 1u);
}

TEST(OnDemand, SecondPacketUsesCachedRoute) {
  LineFixtureOptions opt;
  opt.nodes = 4;
  LineFixture f{"aodv", opt};
  f.run_to(0.5);
  f.send(0, 3, 1);
  f.run_to(4.0);
  const auto control_after_first = f.net->counters().control_frames_sent;
  f.send(0, 3, 2);
  f.run_to(8.0);
  EXPECT_EQ(f.delivered_count(0, 2), 1u);
  // No new RREQ flood for the second packet.
  EXPECT_EQ(f.net->counters().control_frames_sent, control_after_first);
}

TEST(OnDemand, UnreachableDestinationDropsAfterRetries) {
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 300.0;  // everyone isolated (range 100)
  LineFixture f{"aodv", opt};
  f.run_to(0.5);
  f.send(0, 3, 1);
  f.run_to(15.0);  // exhaust discovery retries
  EXPECT_EQ(f.delivered_count(0, 1), 0u);
  EXPECT_GT(f.events.data_dropped_no_route, 0u);
  EXPECT_EQ(f.events.routes_established, 0u);
  // Initial discovery counted once, retries within it.
  EXPECT_EQ(f.events.discoveries_started, 1u);
}

TEST(OnDemand, BrokenLinkTriggersRedsicoveryAndSalvage) {
  // Node 2 drives away mid-session, breaking the 0-1-2-3 chain... use a
  // moving fixture: all nodes static except the chain relies on node 1; we
  // simulate the break by the destination moving out instead. Simplest
  // deterministic variant: nodes move apart slowly so the route built at
  // t=0.5 breaks by t~12; AODV must detect the failure and re-discover.
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 80.0;
  opt.range = 100.0;
  opt.speed = 0.0;
  LineFixture f{"aodv", opt};
  // Manually give node 1 a velocity: rebuild with a custom model is overkill;
  // instead run a long session and break the link by TTL-expiry of the route
  // (cap 10 s), verifying re-discovery transparently heals.
  f.run_to(0.5);
  f.send(0, 3, 1);
  f.run_to(11.5);  // beyond the 10 s route lifetime cap
  const auto discoveries_before = f.events.discoveries_started;
  f.send(0, 3, 2);
  f.run_to(16.0);
  EXPECT_EQ(f.delivered_count(0, 2), 1u);
  EXPECT_GT(f.events.discoveries_started, discoveries_before);
}

TEST(OnDemand, RreqHeaderCarriesKinematics) {
  // White-box: headers stamped by the origin must carry its position.
  LineFixtureOptions opt;
  opt.nodes = 2;
  opt.spacing = 50.0;
  LineFixture f{"pbr", opt};
  f.run_to(2.0);
  std::vector<net::Packet> seen;
  f.net->set_receive_handler(1, [&](const net::Packet& p) {
    if (p.kind == net::PacketKind::kHello) {
      f.hello->on_frame(1, p);
      return;
    }
    seen.push_back(p);
    f.protocols[1]->handle_frame(p);
  });
  f.send(0, 1, 1);
  f.run_to(4.0);
  bool found_rreq = false;
  for (const auto& p : seen) {
    if (const auto* h = p.header_as<routing::RreqHeader>()) {
      found_rreq = true;
      EXPECT_NEAR(h->prev_pos.x, 0.0, 1.0);
      EXPECT_NEAR(h->origin_pos.x, 0.0, 1.0);
      EXPECT_EQ(h->rreq_origin, 0u);
      EXPECT_EQ(h->target, 1u);
    }
  }
  EXPECT_TRUE(found_rreq);
}

TEST(OnDemand, PbrRecordsFinitePredictedLifetimeUnderRelativeMotion) {
  // Nodes drift apart: node i at speed 2*i m/s, so every link has a finite
  // predicted lifetime and PBR must record it when the route is built.
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 70.0;
  opt.speed_step = 2.0;
  LineFixture f{"pbr", opt};
  f.run_to(2.0);
  f.send(0, 3, 1);
  f.run_to(6.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  ASSERT_GE(f.events.routes_established, 1u);
  ASSERT_GT(f.events.predicted_route_lifetime.count(), 0u);
  // Neighbors separate at 2 m/s from a 70 m gap with 100 m range:
  // the true link lifetime is (100-70)/2 = 15 s; prediction must be close.
  EXPECT_NEAR(f.events.predicted_route_lifetime.mean(), 15.0, 3.0);
}

TEST(OnDemand, PreemptiveRebuildFiresBeforePredictedExpiry) {
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 70.0;
  opt.speed_step = 1.0;  // links live (100-70)/1 = 30 s
  LineFixture f{"pbr", opt};
  f.run_to(2.0);
  f.send(0, 3, 1);
  // PBR rebuilds at 75% of the predicted lifetime (~22.5 s after building).
  f.run_to(30.0);
  EXPECT_GE(f.events.preemptive_rebuilds, 1u);
}

}  // namespace
}  // namespace vanet::testing
