// MAC + channel behaviour: reach, contention, hidden-terminal collisions,
// unicast retries, queue overflow, backbone transfers.
#include "net/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/constant_velocity.h"

namespace vanet::net {
namespace {

struct StaticNet {
  core::Simulator sim;
  core::RngManager rngs{7};
  std::unique_ptr<Network> net;
  std::vector<std::vector<Packet>> received;

  explicit StaticNet(const std::vector<core::Vec2>& positions,
                     double range = 100.0, NetworkConfig cfg = {}) {
    net = std::make_unique<Network>(sim, nullptr,
                                    std::make_unique<UnitDiskModel>(range),
                                    rngs.stream("net"), cfg);
    received.resize(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const NodeId id = net->add_rsu(positions[i]);
      net->set_receive_handler(id, [this, id](const Packet& p) {
        received[id].push_back(p);
      });
    }
  }

  Packet make_packet(std::size_t bytes = 64) {
    Packet p;
    p.kind = PacketKind::kData;
    p.size_bytes = bytes;
    p.created_at = sim.now();
    return p;
  }
};

TEST(Network, BroadcastReachesOnlyNodesInRange) {
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}, {150.0, 0.0}, {90.0, 30.0}}};
  t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[1].size(), 1u);
  EXPECT_EQ(t.received[2].size(), 0u);  // 150 m > 100 m range
  EXPECT_EQ(t.received[3].size(), 1u);  // ~95 m
  EXPECT_EQ(t.received[0].size(), 0u);  // no self-reception
  EXPECT_EQ(t.net->counters().frames_sent, 1u);
  EXPECT_EQ(t.net->counters().receptions_ok, 2u);
}

TEST(Network, UnicastOnlyDeliveredToIntendedReceiver) {
  StaticNet t{{{0.0, 0.0}, {50.0, 0.0}, {60.0, 20.0}}};
  Packet p = t.make_packet();
  p.rx = 1;
  t.net->send(0, std::move(p));
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[1].size(), 1u);
  EXPECT_EQ(t.received[2].size(), 0u);  // in range but not addressed
  EXPECT_EQ(t.net->counters().unicast_retries, 0u);
}

TEST(Network, UnicastToUnreachableRetriesThenFails) {
  StaticNet t{{{0.0, 0.0}, {500.0, 0.0}}};
  std::vector<Packet> failures;
  t.net->set_unicast_fail_handler(
      0, [&](const Packet& p) { failures.push_back(p); });
  Packet p = t.make_packet();
  p.rx = 1;
  t.net->send(0, std::move(p));
  t.sim.run_until(core::SimTime::seconds(2.0));
  EXPECT_EQ(t.received[1].size(), 0u);
  EXPECT_EQ(failures.size(), 1u);
  EXPECT_EQ(t.net->counters().unicast_retries, 3u);  // retry limit
  EXPECT_EQ(t.net->counters().unicast_failures, 1u);
  EXPECT_EQ(t.net->counters().frames_sent, 4u);  // 1 + 3 retries
}

TEST(Network, HiddenTerminalCollides) {
  // A and C cannot hear each other (190 m apart, 100 m range) but both reach
  // B. Long frames guarantee temporal overlap despite random backoff.
  StaticNet t{{{0.0, 0.0}, {95.0, 0.0}, {190.0, 0.0}}};
  t.net->send(0, t.make_packet(4096));
  t.net->send(2, t.make_packet(4096));
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[1].size(), 0u);
  EXPECT_GE(t.net->counters().receptions_collided, 1u);
}

TEST(Network, CarrierSenseSerialisesNeighbors) {
  // A and B hear each other; both have traffic for C. Carrier sense should
  // defer one and deliver both frames.
  StaticNet t{{{0.0, 0.0}, {50.0, 0.0}, {25.0, 40.0}}};
  t.net->send(0, t.make_packet(2048));
  t.net->send(1, t.make_packet(2048));
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[2].size(), 2u);
  EXPECT_EQ(t.net->counters().receptions_collided, 0u);
}

TEST(Network, QueueOverflowDropsFrames) {
  NetworkConfig cfg;
  cfg.queue_capacity = 4;
  StaticNet t{{{0.0, 0.0}, {50.0, 0.0}}, 100.0, cfg};
  for (int i = 0; i < 10; ++i) t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.net->counters().frames_dropped_queue, 6u);
  EXPECT_EQ(t.received[1].size(), 4u);
}

TEST(Network, FrameKindCountersSplit) {
  StaticNet t{{{0.0, 0.0}, {50.0, 0.0}}};
  Packet data = t.make_packet();
  Packet ctrl = t.make_packet();
  ctrl.kind = PacketKind::kControl;
  Packet hello = t.make_packet();
  hello.kind = PacketKind::kHello;
  t.net->send(0, std::move(data));
  t.net->send(0, std::move(ctrl));
  t.net->send(0, std::move(hello));
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.net->counters().data_frames_sent, 1u);
  EXPECT_EQ(t.net->counters().control_frames_sent, 1u);
  EXPECT_EQ(t.net->counters().hello_frames_sent, 1u);
}

TEST(Network, BackboneTransfersWithFixedDelay) {
  StaticNet t{{{0.0, 0.0}, {5000.0, 0.0}}};
  t.net->connect_backbone();
  ASSERT_TRUE(t.net->backbone_connected(0, 1));
  Packet p = t.make_packet();
  t.net->backbone_send(0, 1, std::move(p));
  t.sim.run_until(core::SimTime::millis(1));
  EXPECT_EQ(t.received[1].size(), 0u);  // 2 ms delay not yet elapsed
  t.sim.run_until(core::SimTime::millis(5));
  EXPECT_EQ(t.received[1].size(), 1u);
  EXPECT_EQ(t.net->counters().backbone_frames, 1u);
}

TEST(Network, UidsAreUnique) {
  StaticNet t{{{0.0, 0.0}, {50.0, 0.0}}};
  t.net->send(0, t.make_packet());
  t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(1.0));
  ASSERT_EQ(t.received[1].size(), 2u);
  EXPECT_NE(t.received[1][0].uid, t.received[1][1].uid);
}

TEST(Network, VehicleNodesTrackMobility) {
  core::Simulator sim;
  core::RngManager rngs{9};
  auto model = std::make_unique<mobility::ConstantVelocityModel>();
  model->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 0.0);     // stationary sender
  model->add_vehicle({80.0, 0.0}, {1.0, 0.0}, 40.0);   // drives away
  mobility::MobilityManager mgr{sim, std::move(model), rngs.stream("m")};
  Network net{sim, &mgr, std::make_unique<UnitDiskModel>(100.0),
              rngs.stream("net")};
  net.add_vehicle_node(0);
  net.add_vehicle_node(1);
  int received = 0;
  net.set_receive_handler(1, [&](const Packet&) { ++received; });
  mgr.start();

  Packet p;
  p.kind = PacketKind::kData;
  net.send(0, p);
  sim.run_until(core::SimTime::seconds(2.0));
  EXPECT_EQ(received, 1);  // in range at t=0

  // After 2 s the receiver is at x=160: out of range.
  net.send(0, p);
  sim.run_until(core::SimTime::seconds(4.0));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.nodes_within(0, 100.0).size(), 0u);
}

TEST(Network, ReachabilityOracle) {
  // Chain 0-1-2 with 80 m spacing (connected at 100 m) plus an isolated
  // node 3 at 500 m.
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}, {160.0, 0.0}, {500.0, 0.0}}};
  EXPECT_TRUE(t.net->reachable(0, 2, 100.0));
  EXPECT_TRUE(t.net->reachable(2, 0, 100.0));
  EXPECT_TRUE(t.net->reachable(1, 1, 100.0));
  EXPECT_FALSE(t.net->reachable(0, 3, 100.0));
  // A longer radio closes the gap.
  EXPECT_TRUE(t.net->reachable(0, 3, 400.0));
}

TEST(Network, ReachabilityCrossesBackbone) {
  // Two islands, each with an RSU; wired backbone joins them.
  core::Simulator sim;
  core::RngManager rngs{7};
  Network net{sim, nullptr, std::make_unique<UnitDiskModel>(100.0),
              rngs.stream("net")};
  const NodeId a = net.add_rsu({0.0, 0.0});
  const NodeId b = net.add_rsu({5000.0, 0.0});
  const NodeId near_a = net.add_rsu({60.0, 0.0});
  const NodeId near_b = net.add_rsu({5060.0, 0.0});
  EXPECT_FALSE(net.reachable(near_a, near_b, 100.0));
  net.connect_backbone();
  EXPECT_TRUE(net.reachable(near_a, near_b, 100.0));
  (void)a;
  (void)b;
}

TEST(NetworkDeathTest, BackboneSendBetweenUnconnectedAborts) {
  StaticNet t{{{0.0, 0.0}, {50.0, 0.0}}};
  // connect_backbone never called.
  Packet p = t.make_packet();
  EXPECT_DEATH(t.net->backbone_send(0, 1, std::move(p)), "unconnected");
}

TEST(NetworkDeathTest, VehicleNodesMustFollowVehicleIdOrder) {
  core::Simulator sim;
  core::RngManager rngs{9};
  auto model = std::make_unique<mobility::ConstantVelocityModel>();
  model->add_vehicle({0.0, 0.0}, {1.0, 0.0}, 0.0);
  model->add_vehicle({10.0, 0.0}, {1.0, 0.0}, 0.0);
  mobility::MobilityManager mgr{sim, std::move(model), rngs.stream("m")};
  Network net{sim, &mgr, std::make_unique<UnitDiskModel>(100.0),
              rngs.stream("net")};
  EXPECT_DEATH(net.add_vehicle_node(1), "vehicle-id order");
}

TEST(Network, PositionVelocityAccessors) {
  core::Simulator sim;
  core::RngManager rngs{9};
  auto model = std::make_unique<mobility::ConstantVelocityModel>();
  model->add_vehicle({10.0, 5.0}, {0.0, 1.0}, 7.0, 1.5);
  mobility::MobilityManager mgr{sim, std::move(model), rngs.stream("m")};
  Network net{sim, &mgr, std::make_unique<UnitDiskModel>(100.0),
              rngs.stream("net")};
  net.add_vehicle_node(0);
  const NodeId rsu = net.add_rsu({99.0, 1.0});

  EXPECT_EQ(net.position(0), (core::Vec2{10.0, 5.0}));
  EXPECT_EQ(net.velocity(0), (core::Vec2{0.0, 7.0}));
  EXPECT_EQ(net.acceleration(0), (core::Vec2{0.0, 1.5}));
  EXPECT_TRUE(net.is_rsu(rsu));
  EXPECT_FALSE(net.is_rsu(0));
  EXPECT_EQ(net.velocity(rsu), (core::Vec2{0.0, 0.0}));
  EXPECT_EQ(net.rsu_ids(), (std::vector<NodeId>{1}));
}

// --- fault support: down nodes (driven by sim::FaultPlan) ------------------

TEST(Network, DownReceiverDecodesNothing) {
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}, {90.0, 30.0}}};
  t.net->set_node_up(1, false);
  EXPECT_FALSE(t.net->node_up(1));
  t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[1].size(), 0u);  // down: radio off
  EXPECT_EQ(t.received[2].size(), 1u);  // unaffected neighbour
  t.net->set_node_up(1, true);
  t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(2.0));
  EXPECT_EQ(t.received[1].size(), 1u);  // back up: decodes again
}

TEST(Network, DownSenderDropsFramesAndCountsThem) {
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}}};
  t.net->set_node_up(0, false);
  t.net->send(0, t.make_packet());
  t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[1].size(), 0u);
  EXPECT_EQ(t.net->counters().frames_sent, 0u);
  EXPECT_EQ(t.net->counters().frames_dropped_down, 2u);
}

TEST(Network, CrashMidTransmissionAbortsTheFrame) {
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}}};
  t.net->send(0, t.make_packet());
  // The frame is in flight (tx takes ~ size/bitrate); crash the sender
  // before it completes — the receiver must never decode it.
  t.net->set_node_up(0, false);
  t.sim.run_until(core::SimTime::seconds(1.0));
  EXPECT_EQ(t.received[1].size(), 0u);
  EXPECT_EQ(t.net->counters().receptions_ok, 0u);
}

TEST(Network, RestartRecordsRecoveryLatency) {
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}}};
  t.net->set_node_up(1, false);
  t.sim.run_until(core::SimTime::seconds(1.0));
  t.net->set_node_up(1, true);  // restart at t = 1 s
  t.net->send(0, t.make_packet());
  t.sim.run_until(core::SimTime::seconds(2.0));
  ASSERT_EQ(t.received[1].size(), 1u);
  // Recovery latency = restart -> first decoded frame (the tx duration,
  // a few ms at 64 bytes); exactly one sample, short but nonzero.
  EXPECT_EQ(t.net->recovery_latency().count(), 1u);
  EXPECT_GT(t.net->recovery_latency().mean(), 0.0);
  EXPECT_LT(t.net->recovery_latency().mean(), 1.0);
}

TEST(Network, ReachabilityIgnoresDownNodes) {
  // Chain 0-1-2 with 80 m spacing; node 1 is the only relay.
  StaticNet t{{{0.0, 0.0}, {80.0, 0.0}, {160.0, 0.0}}};
  EXPECT_TRUE(t.net->reachable(0, 2, 100.0));
  t.net->set_node_up(1, false);
  EXPECT_FALSE(t.net->reachable(0, 2, 100.0));
  EXPECT_FALSE(t.net->reachable(0, 1, 100.0));  // down endpoint
  t.net->set_node_up(1, true);
  EXPECT_TRUE(t.net->reachable(0, 2, 100.0));
}

}  // namespace
}  // namespace vanet::net
