#include "sim/config_kv.h"

#include <gtest/gtest.h>

#include <set>

namespace vanet::sim {
namespace {

TEST(ConfigKv, KeysAreNonEmptyAndUnique) {
  const auto& keys = config_keys();
  ASSERT_FALSE(keys.empty());
  std::set<std::string> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
  for (const auto& key : keys) EXPECT_TRUE(config_has_key(key)) << key;
  EXPECT_FALSE(config_has_key("no.such.key"));
}

TEST(ConfigKv, CoversNestedBlocks) {
  // The kv layer must reach every nested config block, not just top-level
  // scalars.
  for (const char* key :
       {"traffic.flows", "hello.interval_s", "highway.idm.desired_speed",
        "manhattan.block", "net.bitrate_bps", "signal.rx_threshold_dbm"}) {
    EXPECT_TRUE(config_has_key(key)) << key;
  }
}

TEST(ConfigKv, GetReflectsSet) {
  ScenarioConfig cfg;
  config_set(cfg, "duration_s", "123.5");
  EXPECT_DOUBLE_EQ(cfg.duration_s, 123.5);
  EXPECT_EQ(config_get(cfg, "duration_s"), "123.5");

  config_set(cfg, "traffic.flows", "17");
  EXPECT_EQ(cfg.traffic.flows, 17);

  config_set(cfg, "shadowing", "true");
  EXPECT_EQ(cfg.phy, PhyModel::kShadowing);
  config_set(cfg, "shadowing", "0");
  EXPECT_EQ(cfg.phy, PhyModel::kUnitDisk);

  config_set(cfg, "mobility", "manhattan");
  EXPECT_EQ(cfg.mobility, MobilityKind::kManhattan);
  EXPECT_EQ(config_get(cfg, "mobility"), "manhattan");
  config_set(cfg, "mobility", "trace");
  EXPECT_EQ(cfg.mobility, MobilityKind::kTrace);

  config_set(cfg, "protocol", "yan");
  EXPECT_EQ(cfg.protocol, "yan");

  config_set(cfg, "hello.interval_s", "0.5");
  EXPECT_EQ(cfg.hello.interval, core::SimTime::seconds(0.5));
  EXPECT_EQ(config_get(cfg, "hello.interval_s"), "0.5");

  config_set(cfg, "highway.idm.desired_speed", "22.5");
  EXPECT_DOUBLE_EQ(cfg.highway.idm.desired_speed, 22.5);
}

TEST(ConfigKv, VehiclesAliasSetsBothPopulations) {
  ScenarioConfig cfg;
  config_set(cfg, "vehicles", "55");
  EXPECT_EQ(cfg.vehicles, 55);
  EXPECT_EQ(cfg.vehicles_per_direction, 55);
  // The narrow key still addresses the highway population alone.
  config_set(cfg, "vehicles_per_direction", "7");
  EXPECT_EQ(cfg.vehicles, 55);
  EXPECT_EQ(cfg.vehicles_per_direction, 7);
}

TEST(ConfigKv, MapSourceAliasSelectsGraphMobility) {
  ScenarioConfig cfg;
  config_set(cfg, "map.source", "file");
  config_set(cfg, "map.file", "maps/city.csv");
  EXPECT_EQ(cfg.map.source, MapSource::kFile);
  EXPECT_EQ(cfg.map.file, "maps/city.csv");
  // An imported map implies driving on it...
  EXPECT_EQ(cfg.mobility, MobilityKind::kGraph);
  // ...unless mobility is set afterwards (trace recorded on the map).
  config_set(cfg, "mobility", "trace");
  EXPECT_EQ(cfg.mobility, MobilityKind::kTrace);
  EXPECT_EQ(cfg.map.source, MapSource::kFile);
  // map.source=grid touches nothing else.
  ScenarioConfig untouched;
  config_set(untouched, "map.source", "grid");
  EXPECT_EQ(untouched.mobility, MobilityKind::kHighway);
  EXPECT_THROW(config_set(cfg, "map.source", "osm"), std::invalid_argument);
}

TEST(ConfigKv, MapAliasSurvivesSerializeParseRoundTrip) {
  // `map.source` serializes before `mobility`, so an explicit non-graph
  // mobility over a file map is restored exactly.
  ScenarioConfig cfg;
  config_set(cfg, "map.source", "file");
  config_set(cfg, "map.file", "m.csv");
  config_set(cfg, "mobility", "trace");
  const ScenarioConfig parsed = parse_config(serialize_config(cfg));
  EXPECT_EQ(parsed.map.source, MapSource::kFile);
  EXPECT_EQ(parsed.map.file, "m.csv");
  EXPECT_EQ(parsed.mobility, MobilityKind::kTrace);
}

TEST(ConfigKv, GraphMobilityKeys) {
  ScenarioConfig cfg;
  config_set(cfg, "mobility", "graph");
  EXPECT_EQ(cfg.mobility, MobilityKind::kGraph);
  EXPECT_EQ(config_get(cfg, "mobility"), "graph");
  config_set(cfg, "graph.replan_prob", "0.125");
  EXPECT_DOUBLE_EQ(cfg.graph.replan_prob, 0.125);
  config_set(cfg, "graph.min_trip_m", "750");
  EXPECT_DOUBLE_EQ(cfg.graph.min_trip_m, 750.0);
  for (const char* key : {"graph.speed_mean", "graph.speed_stddev",
                          "graph.replan_prob", "graph.min_trip_m",
                          "map.source", "map.file"}) {
    EXPECT_TRUE(config_has_key(key)) << key;
  }
}

TEST(ConfigKv, UnknownKeyRejected) {
  ScenarioConfig cfg;
  EXPECT_THROW(config_get(cfg, "nope"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "nope", "1"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "traffic.nope", "1"), std::invalid_argument);
  try {
    config_set(cfg, "bogus.key", "1");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus.key"), std::string::npos);
  }
}

TEST(ConfigKv, BadValueRejectedWithKeyAndValueInMessage) {
  ScenarioConfig cfg;
  EXPECT_THROW(config_set(cfg, "vehicles", "abc"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "vehicles", "12x"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "duration_s", ""), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "shadowing", "maybe"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "mobility", "teleport"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "traffic.payload_bytes", "-4"),
               std::invalid_argument);
  // Zero or negative populations would build a nodeless network.
  EXPECT_THROW(config_set(cfg, "vehicles", "0"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "vehicles_per_direction", "-3"),
               std::invalid_argument);
  // Values outside the destination type's range must not silently wrap.
  EXPECT_THROW(config_set(cfg, "traffic.flows", "4294967297"),
               std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "rsu_count", "-9999999999999"),
               std::invalid_argument);
  try {
    config_set(cfg, "traffic.rate_pps", "fast");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("traffic.rate_pps"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fast"), std::string::npos) << msg;
  }
}

TEST(ConfigKv, CheckedParsersRejectTrailingGarbage) {
  EXPECT_EQ(parse_int_checked("42").value(), 42);
  EXPECT_EQ(parse_int_checked("-3").value(), -3);
  EXPECT_FALSE(parse_int_checked("42 ").has_value());
  EXPECT_FALSE(parse_int_checked("4.2").has_value());
  EXPECT_FALSE(parse_int_checked("").has_value());
  EXPECT_DOUBLE_EQ(parse_double_checked("2.5e3").value(), 2500.0);
  EXPECT_FALSE(parse_double_checked("2.5x").has_value());
  EXPECT_TRUE(parse_bool_checked("on").value());
  EXPECT_FALSE(parse_bool_checked("off").value());
  EXPECT_FALSE(parse_bool_checked("2").has_value());
}

TEST(ConfigKv, SerializeParseRoundTrip) {
  ScenarioConfig cfg;
  cfg.seed = 99;
  cfg.duration_s = 33.25;
  cfg.mobility = MobilityKind::kManhattan;
  cfg.vehicles = 64;
  cfg.vehicles_per_direction = 13;  // differs from `vehicles` on purpose
  cfg.comm_range_m = 175.5;
  cfg.phy = PhyModel::kShadowing;
  cfg.protocol = "greedy";
  cfg.traffic.rate_pps = 0.1;
  cfg.traffic.payload_bytes = 256;
  cfg.hello.interval = core::SimTime::seconds(0.25);
  cfg.highway.idm.desired_speed = 21.125;
  cfg.manhattan.turn_prob_left = 0.3;
  cfg.net.contention_window = 64;
  cfg.signal.path_loss_exponent = 3.0;

  const std::string text = serialize_config(cfg);
  const ScenarioConfig parsed = parse_config(text);
  EXPECT_EQ(serialize_config(parsed), text);

  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_DOUBLE_EQ(parsed.duration_s, 33.25);
  EXPECT_EQ(parsed.mobility, MobilityKind::kManhattan);
  EXPECT_EQ(parsed.vehicles, 64);
  EXPECT_EQ(parsed.vehicles_per_direction, 13);
  EXPECT_EQ(parsed.phy, PhyModel::kShadowing);
  EXPECT_EQ(parsed.protocol, "greedy");
  EXPECT_DOUBLE_EQ(parsed.traffic.rate_pps, 0.1);
  EXPECT_EQ(parsed.traffic.payload_bytes, 256u);
  EXPECT_EQ(parsed.hello.interval, core::SimTime::seconds(0.25));
  EXPECT_DOUBLE_EQ(parsed.highway.idm.desired_speed, 21.125);
  EXPECT_EQ(parsed.net.contention_window, 64);
}

TEST(ConfigKv, RoundTripEveryKeyIndividually) {
  // set(get()) must be the identity for every key of the default config —
  // except the documented `vehicles` alias, which also writes
  // vehicles_per_direction (their defaults differ).
  const ScenarioConfig defaults;
  const std::string before = serialize_config(defaults);
  for (const auto& key : config_keys()) {
    ScenarioConfig cfg;
    config_set(cfg, key, config_get(defaults, key));
    if (key == "vehicles") {
      EXPECT_EQ(cfg.vehicles_per_direction, defaults.vehicles);
      cfg.vehicles_per_direction = defaults.vehicles_per_direction;
    }
    EXPECT_EQ(serialize_config(cfg), before) << key;
  }
}

TEST(ConfigKv, GeometryModeKeysParseLineAndRouteOnly) {
  ScenarioConfig cfg;
  EXPECT_EQ(config_get(cfg, "zone.geometry"), "line");
  config_set(cfg, "zone.geometry", "route");
  EXPECT_EQ(cfg.zone_geometry, routing::GeometryMode::kRoute);
  config_set(cfg, "grid.geometry", "route");
  config_set(cfg, "gvgrid.geometry", "route");
  EXPECT_EQ(cfg.grid_geometry, routing::GeometryMode::kRoute);
  EXPECT_EQ(cfg.gvgrid_geometry, routing::GeometryMode::kRoute);
  EXPECT_EQ(config_get(cfg, "gvgrid.geometry"), "route");
  EXPECT_THROW(config_set(cfg, "zone.geometry", "plane"),
               std::invalid_argument);

  config_set(cfg, "map.trace_tolerance_m", "12.5");
  EXPECT_DOUBLE_EQ(cfg.map.trace_tolerance_m, 12.5);
  config_set(cfg, "density.incremental", "false");
  EXPECT_FALSE(cfg.density_incremental);
}

TEST(ConfigKv, PhyModelKeyAndShadowingAlias) {
  ScenarioConfig cfg;
  EXPECT_EQ(config_get(cfg, "phy.model"), "unitdisk");
  EXPECT_EQ(config_get(cfg, "shadowing"), "false");
  config_set(cfg, "phy.model", "nakagami");
  EXPECT_EQ(cfg.phy, PhyModel::kNakagami);
  // The legacy bool reads "is the PHY the shadowing model".
  EXPECT_EQ(config_get(cfg, "shadowing"), "false");
  config_set(cfg, "phy.model", "shadowing");
  EXPECT_EQ(config_get(cfg, "shadowing"), "true");
  EXPECT_THROW(config_set(cfg, "phy.model", "rician"), std::invalid_argument);
  config_set(cfg, "phy.nakagami_m", "5");
  EXPECT_EQ(cfg.nakagami_m, 5);
  EXPECT_THROW(config_set(cfg, "phy.nakagami_m", "0"), std::invalid_argument);
  EXPECT_THROW(config_set(cfg, "phy.nakagami_m", "-1"), std::invalid_argument);

  // A nakagami selection survives the round trip even though the legacy
  // `shadowing` alias serializes first (phy.model re-settles it on parse).
  ScenarioConfig naka;
  naka.phy = PhyModel::kNakagami;
  naka.nakagami_m = 2;
  const ScenarioConfig parsed = parse_config(serialize_config(naka));
  EXPECT_EQ(parsed.phy, PhyModel::kNakagami);
  EXPECT_EQ(parsed.nakagami_m, 2);
}

TEST(ConfigKv, FaultKeysRoundTrip) {
  ScenarioConfig cfg;
  EXPECT_EQ(config_get(cfg, "fault.enabled"), "false");
  config_set(cfg, "fault.enabled", "true");
  config_set(cfg, "fault.plan", "node:3:10:60;seg:2:15");
  config_set(cfg, "fault.vehicle_mtbf_s", "120");
  config_set(cfg, "fault.rsu_downtime_s", "33.5");
  EXPECT_TRUE(cfg.fault.enabled);
  EXPECT_EQ(cfg.fault.plan, "node:3:10:60;seg:2:15");
  EXPECT_DOUBLE_EQ(cfg.fault.vehicle_mtbf_s, 120.0);
  EXPECT_DOUBLE_EQ(cfg.fault.rsu_downtime_s, 33.5);
  const ScenarioConfig parsed = parse_config(serialize_config(cfg));
  EXPECT_TRUE(parsed.fault.enabled);
  EXPECT_EQ(parsed.fault.plan, "node:3:10:60;seg:2:15");
  EXPECT_DOUBLE_EQ(parsed.fault.vehicle_mtbf_s, 120.0);
  EXPECT_DOUBLE_EQ(parsed.fault.rsu_downtime_s, 33.5);
  // Named default (not a temporary): gcc 12 -O2 false-positives a
  // maybe-uninitialized on the temporary's string members after inlining.
  const ScenarioConfig defaults;
  EXPECT_NE(config_digest(parsed), config_digest(defaults));
}

TEST(ConfigKv, ParseSkipsCommentsAndRejectsGarbage) {
  ScenarioConfig cfg =
      parse_config("# provenance header\n\nvehicles=9\nprotocol=dsr\n");
  EXPECT_EQ(cfg.vehicles, 9);
  EXPECT_EQ(cfg.protocol, "dsr");
  EXPECT_THROW(parse_config("vehicles"), std::invalid_argument);
  EXPECT_THROW(parse_config("unknown=1"), std::invalid_argument);
}

TEST(ConfigKv, DigestTracksConfigIdentity) {
  ScenarioConfig a, b;
  EXPECT_EQ(config_digest(a), config_digest(b));
  EXPECT_EQ(config_digest(a).size(), 16u);
  config_set(b, "traffic.flows", "99");
  EXPECT_NE(config_digest(a), config_digest(b));
  config_set(a, "traffic.flows", "99");
  EXPECT_EQ(config_digest(a), config_digest(b));
}

}  // namespace
}  // namespace vanet::sim
