#include "net/propagation.h"

#include <gtest/gtest.h>

#include "net/fading.h"

namespace vanet::net {
namespace {

TEST(UnitDisk, BoundaryInclusive) {
  UnitDiskModel m{250.0};
  core::Rng rng{1};
  EXPECT_TRUE(m.try_receive(249.9, rng));
  EXPECT_TRUE(m.try_receive(250.0, rng));
  EXPECT_FALSE(m.try_receive(250.1, rng));
  EXPECT_DOUBLE_EQ(m.max_range(), 250.0);
  EXPECT_DOUBLE_EQ(m.nominal_range(), 250.0);
  EXPECT_DOUBLE_EQ(m.receipt_probability(100.0), 1.0);
  EXPECT_DOUBLE_EQ(m.receipt_probability(300.0), 0.0);
}

TEST(Shadowing, RangesOrdered) {
  LogNormalShadowingModel m{};
  EXPECT_GT(m.max_range(), m.nominal_range());
  EXPECT_GT(m.nominal_range(), 50.0);
}

TEST(Shadowing, NeverReceivesBeyondMaxRange) {
  LogNormalShadowingModel m{};
  core::Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(m.try_receive(m.max_range() + 1.0, rng));
  }
}

TEST(Shadowing, EmpiricalRateTracksAnalytic) {
  LogNormalShadowingModel m{};
  core::Rng rng{5};
  for (double frac : {0.5, 1.0, 1.3}) {
    const double d = m.nominal_range() * frac;
    int ok = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      if (m.try_receive(d, rng)) ++ok;
    }
    EXPECT_NEAR(static_cast<double>(ok) / n, m.receipt_probability(d), 0.015)
        << "frac=" << frac;
  }
}

TEST(Shadowing, HalfProbabilityAtNominalRange) {
  LogNormalShadowingModel m{};
  EXPECT_NEAR(m.receipt_probability(m.nominal_range()), 0.5, 1e-9);
}

TEST(Nakagami, RangesOrderedAndHalfProbabilityAtNominal) {
  NakagamiFadingModel m{};
  EXPECT_GT(m.max_range(), m.nominal_range());
  EXPECT_GT(m.nominal_range(), 50.0);
  // nominal_range is defined as the 50% receipt distance for every lossy
  // model, whatever the fading family.
  EXPECT_NEAR(m.receipt_probability(m.nominal_range()), 0.5, 1e-6);
}

TEST(Nakagami, NeverReceivesBeyondMaxRange) {
  NakagamiFadingModel m{};
  core::Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(m.try_receive(m.max_range() + 1.0, rng));
  }
}

TEST(Nakagami, EmpiricalRateTracksAnalytic) {
  NakagamiFadingModel m{};
  core::Rng rng{5};
  for (double frac : {0.5, 1.0, 1.3}) {
    const double d = m.nominal_range() * frac;
    int ok = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      if (m.try_receive(d, rng)) ++ok;
    }
    EXPECT_NEAR(static_cast<double>(ok) / n, m.receipt_probability(d), 0.015)
        << "frac=" << frac;
  }
}

TEST(Nakagami, ProbabilityMonotoneInDistance) {
  NakagamiFadingModel m{};
  double prev = 1.0;
  for (double d = 10.0; d < m.max_range(); d += 10.0) {
    const double p = m.receipt_probability(d);
    EXPECT_LE(p, prev + 1e-12) << "d=" << d;
    prev = p;
  }
}

TEST(Nakagami, LargerShapeIsSteeper) {
  // Higher m concentrates the fading distribution: better than Rayleigh
  // (m=1) inside the nominal range, worse beyond it.
  NakagamiFadingModel rayleigh{{}, 1};
  NakagamiFadingModel steep{{}, 8};
  const double nominal = steep.nominal_range();
  EXPECT_GT(steep.receipt_probability(nominal * 0.6),
            rayleigh.receipt_probability(nominal * 0.6));
  EXPECT_LT(steep.receipt_probability(nominal * 1.5),
            rayleigh.receipt_probability(nominal * 1.5));
}

}  // namespace
}  // namespace vanet::net
