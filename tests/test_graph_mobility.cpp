// Graph-constrained mobility: vehicles must never leave the road graph, trips
// must make progress, and stepping must stay seed-deterministic.
#include "mobility/graph_mobility.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/rng.h"
#include "map/builders.h"

namespace vanet::mobility {
namespace {

std::shared_ptr<const map::RoadGraph> triangle_graph() {
  auto g = std::make_shared<map::RoadGraph>();
  g->add_intersection({0.0, 0.0});
  g->add_intersection({400.0, 0.0});
  g->add_intersection({200.0, 350.0});
  g->add_intersection({600.0, 300.0});
  g->add_segment(0, 1);
  g->add_segment(1, 2);
  g->add_segment(2, 0);
  g->add_segment(1, 3);
  g->add_segment(2, 3);
  return g;
}

double distance_to_current_segment(const GraphMobilityModel& m,
                                   const VehicleState& v) {
  const int seg = m.current_segment(v.id);
  const auto [a, b] = m.graph().segment_ends(seg);
  return core::distance_to_segment(v.pos, m.graph().intersection_pos(a),
                                   m.graph().intersection_pos(b));
}

// The central property: at every tick, every vehicle's position lies on the
// segment the model claims it drives on — for a lattice and for an irregular
// imported-style graph.
TEST(GraphMobility, VehiclesStayOnEdges) {
  for (const bool lattice : {true, false}) {
    const auto graph =
        lattice ? std::make_shared<const map::RoadGraph>(5, 4, 150.0)
                : triangle_graph();
    GraphMobilityConfig cfg;
    cfg.replan_prob = 0.2;  // high churn stresses the path bookkeeping
    cfg.min_trip_m = 200.0;
    GraphMobilityModel m{graph, cfg};
    core::Rng rng{7};
    m.populate(30, rng);
    ASSERT_EQ(m.vehicles().size(), 30u);
    for (int tick = 0; tick < 400; ++tick) {
      m.step(0.1, rng);
      for (const auto& v : m.vehicles()) {
        ASSERT_LT(distance_to_current_segment(m, v), 1e-6)
            << "vehicle " << v.id << " left its road at tick " << tick;
        ASSERT_GT(v.speed, 0.0);
        ASSERT_NEAR(v.heading.norm(), 1.0, 1e-9);
      }
    }
  }
}

TEST(GraphMobility, StepIsDeterministicForEqualSeeds) {
  const auto graph = triangle_graph();
  auto run = [&](std::uint64_t seed) {
    GraphMobilityModel m{graph, {}};
    core::Rng rng{seed};
    m.populate(12, rng);
    for (int tick = 0; tick < 200; ++tick) m.step(0.1, rng);
    return std::vector<VehicleState>{m.vehicles().begin(), m.vehicles().end()};
  };
  const auto a = run(42), b = run(42), c = run(43);
  ASSERT_EQ(a.size(), b.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos, b[i].pos) << i;
    EXPECT_EQ(a[i].heading, b[i].heading) << i;
    any_differs |= !(a[i].pos == c[i].pos);
  }
  EXPECT_TRUE(any_differs) << "different seeds should move differently";
}

TEST(GraphMobility, VehiclesMakeProgressAtTheirSpeed) {
  // On a long two-node line there is only one road; a vehicle must cover
  // speed * t metres of it (trips bounce between the endpoints).
  auto g = std::make_shared<map::RoadGraph>();
  g->add_intersection({0.0, 0.0});
  g->add_intersection({10000.0, 0.0});
  g->add_segment(0, 1);
  GraphMobilityModel m{g, {}};
  core::Rng rng{5};
  const VehicleId id = m.add_vehicle(0, 20.0, rng);
  for (int tick = 0; tick < 100; ++tick) m.step(0.1, rng);
  const auto& v = m.vehicles()[id];
  EXPECT_NEAR(v.pos.x, 20.0 * 10.0, 1e-6);  // 10 s at 20 m/s
  EXPECT_DOUBLE_EQ(v.pos.y, 0.0);
}

TEST(GraphMobility, CrossesSeveralIntersectionsInOneBigStep) {
  // dt large enough to traverse multiple short blocks in a single step.
  auto g = std::make_shared<const map::RoadGraph>(20, 1, 10.0);
  GraphMobilityConfig cfg;
  cfg.replan_prob = 0.0;
  GraphMobilityModel m{g, cfg};
  core::Rng rng{9};
  const VehicleId id = m.add_vehicle(0, 15.0, rng);
  m.step(2.0, rng);  // 30 m = three 10 m blocks
  const auto& v = m.vehicles()[id];
  EXPECT_LT(distance_to_current_segment(m, v), 1e-6);
  EXPECT_GT(v.pos.x, 0.0);
}

TEST(GraphMobility, RejectsDegenerateGraphs) {
  auto lonely = std::make_shared<map::RoadGraph>();
  lonely->add_intersection({0.0, 0.0});
  EXPECT_DEATH((GraphMobilityModel{std::move(lonely), {}}),
               "at least two intersections");
  auto isolated = std::make_shared<map::RoadGraph>();
  isolated->add_intersection({0.0, 0.0});
  isolated->add_intersection({10.0, 0.0});
  isolated->add_intersection({20.0, 0.0});
  isolated->add_segment(0, 1);  // node 2 unreachable
  EXPECT_DEATH((GraphMobilityModel{std::move(isolated), {}}),
               "isolated intersection");
}

// --- fault support: blocked segments (driven by sim::FaultPlan) ------------

TEST(GraphMobility, BlockedSegmentDrainsAndStaysAvoided) {
  // A single blocked segment never isolates a lattice intersection (degree
  // >= 2 everywhere), so after vehicles finish the edge they were already
  // driving, nobody may re-enter it — while the on-edge invariant holds
  // throughout.
  const auto graph = std::make_shared<const map::RoadGraph>(5, 4, 150.0);
  GraphMobilityConfig cfg;
  cfg.replan_prob = 0.2;
  cfg.min_trip_m = 200.0;
  GraphMobilityModel m{graph, cfg};
  core::Rng rng{7};
  m.populate(30, rng);

  const int blocked = 0;
  EXPECT_FALSE(m.segment_blocked(blocked));
  m.set_segment_blocked(blocked, true);
  EXPECT_TRUE(m.segment_blocked(blocked));
  m.set_segment_blocked(blocked, true);  // idempotent
  EXPECT_TRUE(m.segment_blocked(blocked));

  for (int tick = 0; tick < 600; ++tick) {
    m.step(0.1, rng);
    for (const auto& v : m.vehicles()) {
      ASSERT_LT(distance_to_current_segment(m, v), 1e-6)
          << "vehicle " << v.id << " left its road at tick " << tick;
    }
    if (tick >= 300) {
      // 30 s in: every pre-block traversal (150 m at >= 5 m/s) is long done.
      for (const auto& v : m.vehicles()) {
        ASSERT_NE(m.current_segment(v.id), blocked)
            << "vehicle " << v.id << " entered the blocked road at tick "
            << tick;
      }
    }
  }

  // Clearing restores the segment to the route planner.
  m.set_segment_blocked(blocked, false);
  EXPECT_FALSE(m.segment_blocked(blocked));
  for (int tick = 0; tick < 100; ++tick) {
    m.step(0.1, rng);
    for (const auto& v : m.vehicles()) {
      ASSERT_LT(distance_to_current_segment(m, v), 1e-6);
    }
  }
}

TEST(GraphMobility, BlockingDoesNotMoveOrTeleportVehicles) {
  const auto graph = triangle_graph();
  GraphMobilityModel m{graph, {}};
  core::Rng rng{11};
  m.populate(10, rng);
  std::vector<core::Vec2> before;
  for (const auto& v : m.vehicles()) before.push_back(v.pos);
  m.set_segment_blocked(1, true);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(m.vehicles()[i].pos.x, before[i].x);
    EXPECT_EQ(m.vehicles()[i].pos.y, before[i].y);
  }
  // One small step: everyone still on a road, nobody jumped.
  m.step(0.1, rng);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto& v = m.vehicles()[i];
    ASSERT_LT(distance_to_current_segment(m, v), 1e-6);
    EXPECT_LT((v.pos - before[i]).norm(), 5.0);  // <= top speed * 0.1 s slack
  }
}

}  // namespace
}  // namespace vanet::mobility
