// Every protocol must deliver multi-hop data over a static line topology —
// the minimal functional check for the whole registry, plus protocol-specific
// behaviours (zone confinement, gateway suppression, ticket bounds).
#include <gtest/gtest.h>

#include "routing/geographic/grid_gateway.h"
#include "routing/registry.h"
#include "util/line_fixture.h"

namespace vanet::testing {
namespace {

routing::ProtocolDeps line_deps(int nodes, double spacing) {
  routing::ProtocolDeps deps;
  // Road graph along the line for CAR; one segment per ~2 hops.
  const double length = (nodes - 1) * spacing;
  const int nx = std::max(2, static_cast<int>(length / 200.0) + 1);
  deps.road_graph =
      std::make_shared<map::RoadGraph>(nx, 1, length / (nx - 1));
  auto density = std::make_shared<map::SegmentDensityOracle>(
      deps.road_graph->segment_count());
  for (std::size_t s = 0; s < density->segments(); ++s) {
    density->set_count(static_cast<int>(s), 4.0);
  }
  deps.density = density;
  auto ferries = std::make_shared<routing::FerrySet>();
  ferries->insert(2);  // middle node doubles as the bus
  deps.ferries = ferries;
  return deps;
}

class LineDelivery : public ::testing::TestWithParam<const char*> {};

TEST_P(LineDelivery, FiveHopChainDelivers) {
  LineFixtureOptions opt;
  opt.nodes = 6;
  opt.spacing = 80.0;
  opt.range = 100.0;
  opt.deps = line_deps(opt.nodes, opt.spacing);
  LineFixture f{GetParam(), opt};
  // Warm-up long enough for proactive protocols: DSDV needs one
  // advertisement round (2 s) per hop for its distance vector to converge.
  f.run_to(12.0);
  f.send(0, 5, /*seq=*/1);
  f.run_to(25.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u)
      << GetParam() << " failed to deliver across 5 hops";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LineDelivery,
                         ::testing::Values("flooding", "biswas", "aodv", "dsr",
                                           "dsdv", "pbr", "taleb", "abedi",
                                           "greedy", "zone", "grid", "rear",
                                           "gvgrid", "car", "yan", "yan-ss",
                                           "bus", "drr", "rover",
                                           "niude"));
// "wedde" is deliberately absent: its road-condition rating rejects parked,
// deserted roads by design — see Behavior.WeddeDeliversInFlowingTraffic.

TEST(Flooding, DuplicatesSuppressedPerNode) {
  LineFixtureOptions opt;
  opt.nodes = 4;
  LineFixture f{"flooding", opt};
  f.run_to(1.0);
  f.send(0, 3, 1);
  f.run_to(5.0);
  // Each of the two intermediate nodes forwards exactly once; the origin
  // transmit plus two relays = 3 data frames.
  EXPECT_EQ(f.net->counters().data_frames_sent, 3u);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
}

TEST(Flooding, TtlBoundsPropagation) {
  // 20 hops exceeds the flood TTL of 16: the far end must NOT receive.
  LineFixtureOptions opt;
  opt.nodes = 21;
  LineFixture f{"flooding", opt};
  f.run_to(1.0);
  f.send(0, 20, 1);
  f.run_to(10.0);
  EXPECT_EQ(f.delivered_count(0, 1), 0u);
  EXPECT_GT(f.events.data_dropped_ttl, 0u);
}

TEST(Zone, NodesOutsideCorridorStaySilent) {
  // A line plus one node far off-axis: the off-axis node hears the source
  // but must not rebroadcast (outside the corridor).
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 80.0;
  LineFixture f{"zone", opt};
  f.run_to(1.0);
  f.send(0, 3, 1);
  f.run_to(5.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  // On-axis relays only: source + 2 intermediates.
  EXPECT_LE(f.net->counters().data_frames_sent, 3u);
}

TEST(Grid, GatewaySuppressionReducesForwards) {
  // Nodes bunched two-per-cell: only one per cell (the gateway) relays.
  LineFixtureOptions opt;
  opt.nodes = 8;
  opt.spacing = 40.0;  // two nodes per 100 m... with 500 m cells: all one cell
  opt.range = 100.0;
  LineFixture f{"grid", opt};
  f.run_to(3.0);  // hello warm-up for the election
  f.send(0, 7, 1);
  f.run_to(8.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  // Flooding would transmit 7 data frames (everyone but the destination);
  // gateway suppression must do strictly better.
  EXPECT_LT(f.net->counters().data_frames_sent, 7u);
}

TEST(Yan, ProbeOverheadBoundedByTickets) {
  LineFixtureOptions opt;
  opt.nodes = 6;
  opt.deps = line_deps(opt.nodes, opt.spacing);
  opt.deps.yan_tickets = 1;  // single probe
  LineFixture yan1{"yan", opt};
  yan1.run_to(5.0);
  yan1.send(0, 5, 1);
  yan1.run_to(15.0);
  const auto frames1 = yan1.net->counters().control_frames_sent;
  EXPECT_EQ(yan1.delivered_count(0, 1), 1u);

  LineFixture aodv{"aodv", [] {
                     LineFixtureOptions o;
                     o.nodes = 6;
                     return o;
                   }()};
  aodv.run_to(5.0);
  aodv.send(0, 5, 1);
  aodv.run_to(15.0);
  // Ticket probing unicasts along the chain; AODV floods. On a line both
  // are linear, but probing must not exceed the flood's control count.
  EXPECT_LE(frames1, aodv.net->counters().control_frames_sent + 2);
}

TEST(Dsdv, ProactiveTablesForwardWithoutDiscovery) {
  LineFixtureOptions opt;
  opt.nodes = 4;
  LineFixture f{"dsdv", opt};
  f.run_to(10.0);  // several advertisement rounds
  f.send(0, 3, 1);
  f.run_to(12.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  EXPECT_EQ(f.events.discoveries_started, 0u);  // no on-demand phase
  EXPECT_GT(f.net->counters().control_frames_sent, 10u);  // periodic dumps
}

TEST(Greedy, DropsAtVoid) {
  // Gap in the chain: greedy cannot cross a 250 m hole with 100 m radios.
  LineFixtureOptions opt;
  opt.nodes = 3;
  opt.spacing = 250.0;
  LineFixture f{"greedy", opt};
  f.run_to(3.0);
  f.send(0, 2, 1);
  f.run_to(8.0);
  EXPECT_EQ(f.delivered_count(0, 1), 0u);
  EXPECT_GT(f.events.data_dropped_no_route, 0u);
}

TEST(GridGateway, ElectionIsDeterministic) {
  LineFixtureOptions opt;
  opt.nodes = 3;
  opt.spacing = 10.0;  // all in one cell
  LineFixture f{"grid", opt};
  f.run_to(3.0);
  int gateways = 0;
  for (auto& p : f.protocols) {
    auto* g = dynamic_cast<routing::GridGatewayProtocol*>(p.get());
    ASSERT_NE(g, nullptr);
    if (g->is_gateway()) ++gateways;
  }
  EXPECT_EQ(gateways, 1);  // exactly one gateway per cell
}

}  // namespace
}  // namespace vanet::testing
