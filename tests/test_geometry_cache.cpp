// The geometry-cache layer (docs/ARCHITECTURE.md "Scenario-owned caches"):
// the lifetime memo, the per-tick segment snapshot and the corridor
// pre-reject are pure caches in default configuration — every test here pins
// either the bit-identity contract (cached answer == uncached answer, down
// to the digest) or the counter semantics bench_compare.py watches.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "analysis/lifetime_distribution.h"
#include "analysis/lifetime_memo.h"
#include "map/road_graph.h"
#include "map/route_corridor.h"
#include "map/segment_index.h"
#include "map/segment_snapshot.h"
#include "sim/runner.h"
#include "sim/scenario.h"

#ifndef VANET_SOURCE_DIR
#error "VANET_SOURCE_DIR must point at the repository root"
#endif

namespace vanet {
namespace {

// ---- LifetimeMemo -----------------------------------------------------------

TEST(LifetimeMemo, ExactModeIsBitIdenticalToDirectEvaluation) {
  analysis::LifetimeMemo memo;  // default: exact mode
  std::mt19937 gen{7};
  std::uniform_real_distribution<double> d0_frac{-0.95, 0.95};
  std::uniform_real_distribution<double> mu_dist{-30.0, 30.0};
  for (int i = 0; i < 50; ++i) {
    const double r = 250.0;
    const double d0 = d0_frac(gen) * r;
    const double mu = mu_dist(gen);
    const double sigma = (i % 5 == 0) ? 0.0 : 4.0;
    const double direct =
        analysis::LinkLifetimeDistribution{r, d0, mu, sigma}.expected_lifetime(
            600.0);
    const double first = memo.expected_lifetime(r, d0, mu, sigma, 600.0);
    const double second = memo.expected_lifetime(r, d0, mu, sigma, 600.0);
    // Bit-identity, not tolerance: the memo stores the direct result.
    EXPECT_EQ(first, direct);
    EXPECT_EQ(second, direct);
  }
  EXPECT_EQ(memo.stats().misses, 50u);
  EXPECT_EQ(memo.stats().hits, 50u);
}

TEST(LifetimeMemo, SignOfZeroAndDistinctKeysDoNotAlias) {
  analysis::LifetimeMemo memo;
  // -0.0 and +0.0 have different bit patterns, so they occupy different
  // entries — but each caches the correct value for its own input.
  const double a = memo.expected_lifetime(250.0, 0.0, 5.0, 4.0, 600.0);
  const double b = memo.expected_lifetime(250.0, -0.0, 5.0, 4.0, 600.0);
  EXPECT_EQ(memo.stats().misses, 2u);
  const double direct_pos =
      analysis::LinkLifetimeDistribution{250.0, 0.0, 5.0, 4.0}
          .expected_lifetime(600.0);
  const double direct_neg =
      analysis::LinkLifetimeDistribution{250.0, -0.0, 5.0, 4.0}
          .expected_lifetime(600.0);
  EXPECT_EQ(a, direct_pos);
  EXPECT_EQ(b, direct_neg);
}

TEST(LifetimeMemo, ViaHelperFallsBackToDirectWithoutMemo) {
  const double direct =
      analysis::LinkLifetimeDistribution{250.0, 100.0, 8.0, 4.0}
          .expected_lifetime(600.0);
  EXPECT_EQ(analysis::expected_lifetime_via(nullptr, 250.0, 100.0, 8.0, 4.0,
                                            600.0),
            direct);
  analysis::LifetimeMemo memo;
  EXPECT_EQ(
      analysis::expected_lifetime_via(&memo, 250.0, 100.0, 8.0, 4.0, 600.0),
      direct);
}

TEST(LifetimeMemo, InterpModeIsDeterministicAndCountsPerCall) {
  analysis::LifetimeMemo memo{analysis::LifetimeMemo::Mode::kInterp};
  const double v1 = memo.expected_lifetime(250.0, 100.0, 8.0, 4.0, 600.0);
  // Counter semantics: exactly one hit or miss per logical call, not one per
  // corner integration.
  EXPECT_EQ(memo.stats().hits + memo.stats().misses, 1u);
  const double v2 = memo.expected_lifetime(250.0, 100.0, 8.0, 4.0, 600.0);
  EXPECT_EQ(v1, v2);  // repeat query: same corners, same bits
  EXPECT_EQ(memo.stats().hits + memo.stats().misses, 2u);
  EXPECT_GE(memo.stats().hits, 1u);
  // Coarse sanity: the table approximates the direct integral.
  const double direct =
      analysis::LinkLifetimeDistribution{250.0, 100.0, 8.0, 4.0}
          .expected_lifetime(600.0);
  EXPECT_NEAR(v1, direct, 0.25 * direct + 1.0);
}

// ---- SegmentSnapshot --------------------------------------------------------

map::RoadGraph l_graph() {
  map::RoadGraph g;
  g.add_intersection({0.0, 0.0});
  g.add_intersection({0.0, 1000.0});
  g.add_intersection({1000.0, 1000.0});
  g.add_segment(0, 1);
  g.add_segment(1, 2);
  return g;
}

TEST(SegmentSnapshot, MatchesIndexAndCachesByPositionBits) {
  const map::RoadGraph g = l_graph();
  const map::SegmentIndex idx{g};
  map::SegmentSnapshot snap{idx};
  std::mt19937 gen{11};
  std::uniform_real_distribution<double> coord{-50.0, 1050.0};
  for (std::uint32_t id = 0; id < 20; ++id) {
    const core::Vec2 pos{coord(gen), coord(gen)};
    const int direct = idx.nearest_segment(pos);
    EXPECT_EQ(snap.segment_of(id, pos), direct);
    EXPECT_EQ(snap.segment_of(id, pos), direct);  // second call: cache hit
  }
  EXPECT_EQ(snap.stats().queries, 40u);
  EXPECT_EQ(snap.stats().hits, 20u);
  EXPECT_EQ(snap.stats().index_queries, 20u);
  EXPECT_EQ(snap.stats().proven, 0u);
}

TEST(SegmentSnapshot, PositionChangeInvalidatesAndProverIsTrusted) {
  const map::RoadGraph g = l_graph();
  const map::SegmentIndex idx{g};
  map::SegmentSnapshot snap{idx};
  const core::Vec2 a{10.0, 500.0};   // on the west leg (segment 0)
  const core::Vec2 b{500.0, 990.0};  // on the north leg (segment 1)
  EXPECT_EQ(snap.segment_of(3, a), idx.nearest_segment(a));
  EXPECT_EQ(snap.segment_of(3, b), idx.nearest_segment(b));  // moved: re-query
  EXPECT_EQ(snap.stats().index_queries, 2u);
  EXPECT_EQ(snap.stats().hits, 0u);

  // A prover that answers is trusted verbatim; one that declines (negative)
  // falls through to the index.
  map::SegmentSnapshot proved{idx};
  proved.set_prover([&](std::uint32_t node, core::Vec2 pos) {
    return node == 1 ? idx.nearest_segment(pos) : -1;
  });
  EXPECT_EQ(proved.segment_of(1, a), idx.nearest_segment(a));
  EXPECT_EQ(proved.segment_of(2, a), idx.nearest_segment(a));
  EXPECT_EQ(proved.stats().proven, 1u);
  EXPECT_EQ(proved.stats().index_queries, 1u);
}

// ---- RouteCorridor pre-reject ----------------------------------------------

TEST(RouteCorridor, ContainsMatchesExactDistanceEverywhere) {
  // contains() short-circuits through bounding boxes; the contract is that
  // the boolean answer is exactly distance_to(pos) <= half_width. Sweep
  // random query points with half-widths scaled so both outcomes are common
  // and boundary-grazing points occur.
  map::RoadGraph g = l_graph();
  g.add_intersection({1000.0, 0.0});
  g.add_segment(2, 3);
  const map::SegmentIndex idx{g};
  const map::RouteCorridor c =
      map::RouteCorridor::between(g, idx, {10.0, 20.0}, {990.0, 30.0});
  ASSERT_TRUE(c.route_found());
  std::mt19937 gen{23};
  std::uniform_real_distribution<double> coord{-300.0, 1300.0};
  std::uniform_real_distribution<double> scale{0.5, 1.5};
  for (int i = 0; i < 500; ++i) {
    const core::Vec2 p{coord(gen), coord(gen)};
    const double exact = c.distance_to(p);
    // Half-widths straddling the exact distance, plus the exact distance
    // itself (the inclusive boundary).
    for (const double hw : {exact * scale(gen), exact, 100.0, 600.0}) {
      EXPECT_EQ(c.contains(p, hw), exact <= hw)
          << "pos=(" << p.x << "," << p.y << ") hw=" << hw
          << " exact=" << exact;
    }
  }
}

// ---- Scenario-level equivalence and counters --------------------------------

sim::ScenarioConfig town_gvgrid_config() {
  sim::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.duration_s = 10.0;
  cfg.map.source = sim::MapSource::kFile;
  cfg.map.file = std::string{VANET_SOURCE_DIR} + "/maps/town.csv";
  cfg.mobility = sim::MobilityKind::kGraph;
  cfg.vehicles = 30;
  cfg.protocol = "gvgrid";
  cfg.gvgrid_geometry = routing::GeometryMode::kRoute;
  cfg.traffic.stop_s = 10.0;
  return cfg;
}

TEST(GeometryCache, LifetimeMemoOnOffIsDigestIdentical) {
  // The whole point of the exact memo: turning it off must not move a single
  // bit of the report. This is the scenario-level proof over the gvgrid
  // kRoute hot path the memo accelerates.
  sim::ScenarioConfig cfg = town_gvgrid_config();
  cfg.lifetime_memo = true;
  sim::Scenario with{cfg};
  with.run();
  cfg.lifetime_memo = false;
  sim::Scenario without{cfg};
  without.run();
  EXPECT_EQ(sim::canonical_report_string(with.report()),
            sim::canonical_report_string(without.report()));
  // The memo actually ran on the 'with' leg.
  ASSERT_NE(with.lifetime_memo(), nullptr);
  EXPECT_GT(with.lifetime_memo()->stats().hits +
                with.lifetime_memo()->stats().misses,
            0u);
  EXPECT_EQ(without.lifetime_memo(), nullptr);
}

TEST(GeometryCache, TimedRunExportsCacheCounters) {
  sim::TimedRun run = sim::run_timed(town_gvgrid_config());
  // Memo: gvgrid scores links through it; something must have happened.
  EXPECT_GT(run.lifetime_memo_hits + run.lifetime_memo_misses, 0u);
  EXPECT_GE(run.lifetime_memo_hit_rate(), 0.0);
  EXPECT_LE(run.lifetime_memo_hit_rate(), 1.0);
  // Snapshot: every query is a hit, a prover answer or an index query.
  EXPECT_GT(run.seg_snapshot_queries, 0u);
  EXPECT_EQ(run.seg_snapshot_hits + run.seg_snapshot_proven +
                run.seg_snapshot_index_queries,
            run.seg_snapshot_queries);
  // Graph mobility reports segments, so the prover should carry real weight;
  // the warm hit rate is what bench_compare.py regresses on.
  EXPECT_GT(run.seg_snapshot_hit_rate(), 0.5);
}

TEST(GeometryCache, InterpModeIsOptInAndChangesResults) {
  // lifetime.interp is the one results-changing switch in the layer. Its
  // physics are pinned by the town-gvgrid-interp golden row; here we only
  // pin the plumbing: the flag reaches the scenario and takes precedence.
  sim::ScenarioConfig cfg = town_gvgrid_config();
  cfg.lifetime_interp = true;
  sim::Scenario s{cfg};
  ASSERT_NE(s.lifetime_memo(), nullptr);
  EXPECT_EQ(s.lifetime_memo()->mode(), analysis::LifetimeMemo::Mode::kInterp);
}

}  // namespace
}  // namespace vanet
