// Protocol-specific routing *policy* tests: each protocol must prefer the
// path its survey description says it prefers, on purpose-built topologies
// where the alternatives are observable through the delivered hop count.
#include <gtest/gtest.h>

#include "analysis/signal.h"
#include "routing/probability/car.h"
#include "routing/registry.h"
#include "util/line_fixture.h"

namespace vanet::testing {
namespace {

// Topology A: src and dst move +x; a 2-hop shortcut exists through a
// cross-moving relay C, and a 3-hop path through same-direction relays R1,R2.
//   src(0,0,+x)  C(80,0,-y)  dst(160,0,+x)       range 100
//                R1(55,60,+x) R2(110,60,+x)
std::vector<VehicleSpec> two_path_topology(core::Vec2 cross_vel) {
  return {
      {{0.0, 0.0}, {5.0, 0.0}},     // 0: src, group +x
      {{160.0, 0.0}, {5.0, 0.0}},   // 1: dst, group +x
      {{80.0, 0.0}, cross_vel},     // 2: C, the cross/odd relay
      {{55.0, 60.0}, {5.0, 0.0}},   // 3: R1, same direction
      {{110.0, 60.0}, {5.0, 0.0}},  // 4: R2, same direction
  };
}

int delivered_hops(LineFixture& f) {
  f.run_to(3.0);
  f.send(0, 1, /*seq=*/1);
  f.run_to(8.0);
  if (f.delivered_count(0, 1) != 1) return -1;
  for (const auto& p : f.delivered) {
    if (p.seq == 1) return p.hops;
  }
  return -1;
}

TEST(Behavior, AodvUsuallyTakesTheShortcut) {
  // AODV replies to the first RREQ; per-hop rebroadcast jitter makes the
  // 2-hop shortcut win most, but not every, race — check the majority.
  int shortcut = 0, delivered = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    LineFixtureOptions opt;
    opt.seed = seed;
    LineFixture f{"aodv", two_path_topology({0.0, -5.0}), opt};
    const int hops = delivered_hops(f);
    if (hops > 0) ++delivered;
    if (hops == 2) ++shortcut;
  }
  EXPECT_EQ(delivered, 5);
  EXPECT_GE(shortcut, 3);
}

TEST(Behavior, TalebAvoidsCrossGroupRelay) {
  // C moves -y (group 3); src/dst/R* are group 0. Taleb's cross-group
  // penalty (4 per link) makes the 3-hop same-group path cheaper: 3 < 8.
  LineFixture f{"taleb", two_path_topology({0.0, -5.0})};
  EXPECT_EQ(delivered_hops(f), 3);
}

TEST(Behavior, AbediAvoidsOppositeDirectionRelay) {
  // C drives opposite to the source: direction is Abedi's primary criterion.
  LineFixture f{"abedi", two_path_topology({-5.0, 0.0})};
  EXPECT_EQ(delivered_hops(f), 3);
}

TEST(Behavior, PbrAvoidsShortLivedLink) {
  // C speeds away at 28 m/s: the links through it die within ~4 s, while the
  // same-direction path is stable. PBR maximises the minimum link lifetime.
  LineFixture f{"pbr", two_path_topology({28.0, 0.0})};
  EXPECT_EQ(delivered_hops(f), 3);
}

TEST(Behavior, GvGridPrefersReliablePath) {
  // Same story through the survival probability: fast relative motion makes
  // P(T > 5 s) collapse on the shortcut links.
  LineFixture f{"gvgrid", two_path_topology({28.0, 0.0})};
  EXPECT_EQ(delivered_hops(f), 3);
}

TEST(Behavior, YanProbesStableLinksFirst)
{
  // Expected link duration ranks the same-direction relays above the
  // escaping one; with one ticket the single probe should still find dst.
  LineFixtureOptions opt;
  opt.deps.yan_tickets = 4;
  LineFixture f{"yan", two_path_topology({28.0, 0.0}), opt};
  EXPECT_EQ(delivered_hops(f), 3);
}

TEST(Behavior, RearPrefersHighReceiptProbability) {
  // Far candidate A (210 m, receipt prob ~ 0) vs near candidate B (120 m,
  // receipt prob ~ 0.6 under the default signal model). Unit-disk physics
  // would allow both; REAR's score p^2 * progress must route via B.
  //   src(0,0)  B(120,0)  A(210,0)  dst(330,0)    range 250
  std::vector<VehicleSpec> v = {
      {{0.0, 0.0}, {0.0, 0.0}},    // 0: src
      {{330.0, 0.0}, {0.0, 0.0}},  // 1: dst
      {{210.0, 0.0}, {0.0, 0.0}},  // 2: A (far, marginal signal)
      {{120.0, 0.0}, {0.0, 0.0}},  // 3: B (near, reliable)
  };
  LineFixtureOptions opt;
  opt.range = 250.0;
  LineFixture rear{"rear", v, opt};
  const int rear_hops = delivered_hops(rear);
  LineFixture greedy{"greedy", v, opt};
  const int greedy_hops = delivered_hops(greedy);
  EXPECT_EQ(greedy_hops, 2);      // max progress: src -> A -> dst
  EXPECT_GE(rear_hops, 3);        // reliability first: src -> B -> A -> dst
}

TEST(Behavior, WeddeRejectsDesertedAreas) {
  // A single isolated relay chain below the rating threshold: Wedde refuses
  // to route over it (rating ~ density term with 1-2 neighbors is small).
  LineFixtureOptions opt;
  opt.nodes = 4;
  opt.spacing = 80.0;
  LineFixture f{"wedde", opt};
  f.run_to(3.0);
  f.send(0, 3, 1);
  f.run_to(8.0);
  // With threshold 0.15 and ~2 neighbors per node the rating (~0.25 * flow
  // terms with parked cars -> low) admits nothing: expect no delivery, and
  // crucially no crash. (Parked, deserted roads are exactly what Wedde's
  // congestion-aware rating is designed to avoid.)
  EXPECT_EQ(f.events.routes_established, 0u);
}

TEST(Behavior, RoverConfinesDiscoveryToZone) {
  // Off-corridor node far above the line must not relay RREQs.
  std::vector<VehicleSpec> v = {
      {{0.0, 0.0}, {0.0, 0.0}},      // 0: src
      {{160.0, 0.0}, {0.0, 0.0}},    // 1: dst
      {{80.0, 0.0}, {0.0, 0.0}},     // 2: on-corridor relay
      {{80.0, 450.0}, {0.0, 0.0}},   // 3: far off-corridor (inside nobody's
                                     //    zone; also out of radio range)
  };
  LineFixture f{"rover", v};
  f.run_to(1.0);
  f.send(0, 1, 1);
  f.run_to(6.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
}

TEST(Behavior, CarRoutesAroundEmptyStreet) {
  // 3x2 road graph; the bottom street (direct) has zero density, the top
  // detour is dense. CAR's anchor path must choose the detour, and the
  // vehicles are placed so only the detour has radio connectivity.
  auto graph = std::make_shared<map::RoadGraph>(3, 2, 200.0);
  auto density = std::make_shared<map::SegmentDensityOracle>(
      graph->segment_count());
  // Dense counts on top-row and vertical segments; zero on bottom row.
  for (std::size_t s = 0; s < graph->segment_count(); ++s) {
    const auto [a, b] = graph->segment_ends(static_cast<int>(s));
    const bool bottom_row = a < 3 && b < 3 && graph->intersection_pos(a).y == 0.0 &&
                            graph->intersection_pos(b).y == 0.0;
    density->set_count(static_cast<int>(s), bottom_row ? 0.0 : 6.0);
  }
  routing::ProtocolDeps deps;
  deps.road_graph = graph;
  deps.density = density;

  // Vehicles: src at (0,0), dst at (400,0); relays along the detour
  // (0,200)->(200,200)->(400,200) plus the verticals.
  std::vector<VehicleSpec> v = {
      {{0.0, 0.0}, {0.0, 0.0}},      // 0: src
      {{400.0, 0.0}, {0.0, 0.0}},    // 1: dst
      {{0.0, 130.0}, {0.0, 0.0}},    // 2
      {{70.0, 200.0}, {0.0, 0.0}},   // 3
      {{200.0, 200.0}, {0.0, 0.0}},  // 4
      {{330.0, 200.0}, {0.0, 0.0}},  // 5
      {{400.0, 120.0}, {0.0, 0.0}},  // 6
  };
  LineFixtureOptions opt;
  opt.range = 150.0;
  opt.deps = deps;
  LineFixture f{"car", v, opt};
  f.run_to(3.0);
  f.send(0, 1, 1);
  f.run_to(8.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);  // only the detour can carry it
}

TEST(Behavior, WeddeDeliversInFlowingTraffic) {
  // The same 5-hop chain as LineDelivery, but as a flowing convoy: healthy
  // speed lifts the rating above the admission threshold.
  LineFixtureOptions opt;
  opt.nodes = 6;
  opt.spacing = 80.0;
  opt.speed = 15.0;
  LineFixture f{"wedde", opt};
  f.run_to(3.0);
  f.send(0, 5, 1);
  f.run_to(10.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  EXPECT_GE(f.events.routes_established, 1u);
}

TEST(Behavior, NiuDeDelivers) {
  LineFixtureOptions opt;
  opt.nodes = 5;
  opt.spacing = 80.0;
  opt.speed = 10.0;  // convoy: stable links, healthy density at ends only
  LineFixture f{"niude", opt};
  f.run_to(3.0);
  f.send(0, 4, 1);
  f.run_to(8.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
}

}  // namespace
}  // namespace vanet::testing
