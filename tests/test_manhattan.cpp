#include "mobility/manhattan_grid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace vanet::mobility {
namespace {

ManhattanConfig grid_config() {
  ManhattanConfig cfg;
  cfg.streets_x = 4;
  cfg.streets_y = 3;
  cfg.block = 100.0;
  return cfg;
}

bool on_grid_line(const core::Vec2& p, double block, double tol = 1e-6) {
  const double rx = std::abs(p.x - std::round(p.x / block) * block);
  const double ry = std::abs(p.y - std::round(p.y / block) * block);
  return rx < tol || ry < tol;
}

TEST(Manhattan, VehiclesStayOnStreets) {
  ManhattanGridModel m{grid_config()};
  core::Rng rng{21};
  m.populate(30, rng);
  for (int i = 0; i < 500; ++i) {
    m.step(0.1, rng);
    for (const auto& v : m.vehicles()) {
      EXPECT_TRUE(on_grid_line(v.pos, 100.0)) << "off-street at " << v.pos.x
                                              << "," << v.pos.y;
    }
  }
}

TEST(Manhattan, VehiclesStayInBounds) {
  ManhattanGridModel m{grid_config()};
  core::Rng rng{22};
  m.populate(30, rng);
  for (int i = 0; i < 1000; ++i) m.step(0.1, rng);
  for (const auto& v : m.vehicles()) {
    EXPECT_GE(v.pos.x, -1e-6);
    EXPECT_LE(v.pos.x, m.width() + 1e-6);
    EXPECT_GE(v.pos.y, -1e-6);
    EXPECT_LE(v.pos.y, m.height() + 1e-6);
  }
}

TEST(Manhattan, ConstantSpeedAlongStreets) {
  ManhattanGridModel m{grid_config()};
  const VehicleId id = m.add_vehicle(0, 0, 0, 10.0);
  core::Rng rng{23};
  const core::Vec2 start = m.state(id).pos;
  m.step(1.0, rng);
  // Travelled exactly 10 m of street (possibly around a corner).
  const double manhattan_dist = std::abs(m.state(id).pos.x - start.x) +
                                std::abs(m.state(id).pos.y - start.y);
  EXPECT_NEAR(manhattan_dist, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.state(id).speed, 10.0);
}

TEST(Manhattan, HeadingIsAxisAligned) {
  ManhattanGridModel m{grid_config()};
  core::Rng rng{24};
  m.populate(20, rng);
  for (int i = 0; i < 200; ++i) {
    m.step(0.1, rng);
    for (const auto& v : m.vehicles()) {
      EXPECT_NEAR(std::abs(v.heading.x) + std::abs(v.heading.y), 1.0, 1e-12);
    }
  }
}

TEST(Manhattan, TurnsChangeDirection) {
  // Straight probability zero: the vehicle must turn at every intersection.
  ManhattanConfig cfg = grid_config();
  cfg.turn_prob_left = 0.5;
  cfg.turn_prob_right = 0.5;
  ManhattanGridModel m{cfg};
  const VehicleId id = m.add_vehicle(1, 1, 0, 10.0);
  core::Rng rng{25};
  const core::Vec2 h0 = m.state(id).heading;
  // Drive past the next intersection (100 m away at 10 m/s).
  for (int i = 0; i < 120; ++i) m.step(0.1, rng);
  const core::Vec2 h1 = m.state(id).heading;
  EXPECT_NE(h0, h1);  // turned left or right
}

TEST(Manhattan, CornerVehicleStaysInGrid) {
  ManhattanGridModel m{grid_config()};
  // Start at a corner heading along the boundary.
  const VehicleId id = m.add_vehicle(0, 0, 0, 15.0);
  core::Rng rng{26};
  for (int i = 0; i < 2000; ++i) m.step(0.1, rng);
  EXPECT_GE(m.state(id).pos.x, -1e-6);
  EXPECT_GE(m.state(id).pos.y, -1e-6);
}

TEST(Manhattan, RejectsOffGridSpawn) {
  ManhattanGridModel m{grid_config()};
  // Heading -x from the west edge would leave the grid immediately.
  EXPECT_DEATH(m.add_vehicle(0, 0, 1, 10.0), "initial direction");
}

}  // namespace
}  // namespace vanet::mobility
