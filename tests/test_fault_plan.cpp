// Deterministic fault injection (sim/fault_plan.h): plan parsing, planned
// outages and road incidents end-to-end through a Scenario, seeded churn,
// the fault_active_at() oracle, and the two determinism contracts —
// fault.enabled=false perturbs nothing, and faulted runs are bit-identical
// for equal seeds regardless of worker count.
#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/experiment.h"
#include "sim/report_sink.h"
#include "sim/scenario.h"

namespace vanet::sim {
namespace {

// ----------------------------------------------------------- plan syntax ---

TEST(FaultPlanParse, AcceptsValidEntries) {
  const auto plan =
      parse_fault_plan(" node:3:10:25 ; seg:2:5 ;; node:0:1.5 ");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].kind, PlannedFault::Kind::kNode);
  EXPECT_EQ(plan[0].id, 3);
  EXPECT_DOUBLE_EQ(plan[0].at_s, 10.0);
  EXPECT_DOUBLE_EQ(plan[0].until_s, 25.0);
  EXPECT_EQ(plan[1].kind, PlannedFault::Kind::kSegment);
  EXPECT_EQ(plan[1].id, 2);
  EXPECT_DOUBLE_EQ(plan[1].at_s, 5.0);
  EXPECT_LT(plan[1].until_s, 0.0);  // never cleared
  EXPECT_EQ(plan[2].kind, PlannedFault::Kind::kNode);
  EXPECT_DOUBLE_EQ(plan[2].at_s, 1.5);
}

TEST(FaultPlanParse, EmptyPlanIsEmpty) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan(" ; ; ").empty());
}

void expect_rejected(const std::string& plan, const std::string& why) {
  try {
    parse_fault_plan(plan);
    FAIL() << "expected rejection of '" << plan << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(why), std::string::npos)
        << "plan '" << plan << "' raised: " << e.what();
  }
}

TEST(FaultPlanParse, RejectsBadEntriesNamingThem) {
  expect_rejected("gremlin:1:5", "gremlin");
  expect_rejected("node:1", "node:1");           // too few fields
  expect_rejected("node:1:2:3:4", "node:1:2:3:4");
  expect_rejected("node:x:5", "node:x:5");       // bad id
  expect_rejected("node:-1:5", "node:-1:5");
  expect_rejected("seg:0:abc", "seg:0:abc");     // bad time
  expect_rejected("node:0:-2", "node:0:-2");     // negative time
  expect_rejected("node:0:10:5", "node:0:10:5"); // until <= at
}

// ------------------------------------------------- scenario integration ---

ScenarioConfig faulted_highway() {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 1500.0;
  cfg.vehicles_per_direction = 8;
  cfg.rsu_count = 1;
  cfg.duration_s = 12.0;
  cfg.traffic.flows = 4;
  cfg.traffic.start_s = 1.0;
  cfg.traffic.stop_s = 11.0;
  return cfg;
}

TEST(FaultPlan, PlannedNodeOutageIsAppliedAndCounted) {
  ScenarioConfig cfg = faulted_highway();
  cfg.fault.enabled = true;
  cfg.fault.plan = "node:0:2:8; node:1:3";
  Scenario s{cfg};
  s.run();
  const ScenarioReport r = s.report();
  EXPECT_TRUE(r.fault_enabled);
  EXPECT_EQ(r.node_outages, 2u);
  EXPECT_EQ(r.node_restarts, 1u);  // node 1 never comes back
  EXPECT_FALSE(s.network().node_up(1));
  EXPECT_TRUE(s.network().node_up(0));
}

TEST(FaultPlan, TimelineOracleTracksAppliedTransitions) {
  ScenarioConfig cfg = faulted_highway();
  cfg.fault.enabled = true;
  cfg.fault.plan = "node:2:4:9";
  Scenario s{cfg};
  s.run();
  ASSERT_NE(s.fault_plan(), nullptr);
  const FaultPlan& plan = *s.fault_plan();
  EXPECT_FALSE(plan.fault_active_at(core::SimTime::seconds(3.9)));
  EXPECT_TRUE(plan.fault_active_at(core::SimTime::seconds(4.0)));
  EXPECT_TRUE(plan.fault_active_at(core::SimTime::seconds(8.9)));
  EXPECT_FALSE(plan.fault_active_at(core::SimTime::seconds(9.1)));
}

TEST(FaultPlan, OverlappingFaultsLastWriterWins) {
  // Two outages of the same node overlap: the second crash is a no-op (the
  // node is already down) and the *first* restart wins — one outage window
  // from 2 s to 6 s, not two.
  ScenarioConfig cfg = faulted_highway();
  cfg.fault.enabled = true;
  cfg.fault.plan = "node:0:2:6; node:0:3:10";
  Scenario s{cfg};
  s.run();
  const ScenarioReport r = s.report();
  EXPECT_EQ(r.node_outages, 1u);   // second crash found the node down
  EXPECT_EQ(r.node_restarts, 1u);  // second restart found the node up
  const FaultPlan& plan = *s.fault_plan();
  EXPECT_TRUE(plan.fault_active_at(core::SimTime::seconds(4.0)));
  EXPECT_FALSE(plan.fault_active_at(core::SimTime::seconds(7.0)));
  EXPECT_TRUE(s.network().node_up(0));
}

TEST(FaultPlan, SeededChurnCrashesAndRestartsNodes) {
  ScenarioConfig cfg = faulted_highway();
  cfg.duration_s = 30.0;
  cfg.traffic.stop_s = 29.0;
  cfg.fault.enabled = true;
  cfg.fault.vehicle_mtbf_s = 10.0;  // aggressive: ~3 crashes per vehicle
  cfg.fault.vehicle_downtime_s = 2.0;
  Scenario s{cfg};
  s.run();
  const ScenarioReport r = s.report();
  EXPECT_GT(r.node_outages, 0u);
  EXPECT_GT(r.node_restarts, 0u);
  EXPECT_GE(r.node_outages, r.node_restarts);
  // Classified traffic never exceeds the totals.
  EXPECT_LE(r.faulted_originated, r.originated);
  EXPECT_LE(r.faulted_delivered, r.delivered);
}

TEST(FaultPlan, RoadIncidentBlocksAndClearsSegments) {
  ScenarioConfig cfg = faulted_highway();
  cfg.mobility = MobilityKind::kGraph;
  cfg.vehicles = 20;
  cfg.fault.enabled = true;
  cfg.fault.plan = "seg:0:2:8; seg:3:4";
  Scenario s{cfg};
  s.run();
  const ScenarioReport r = s.report();
  EXPECT_EQ(r.segment_blocks, 2u);
  ASSERT_NE(s.graph_model(), nullptr);
  EXPECT_FALSE(s.graph_model()->segment_blocked(0));  // cleared at 8 s
  EXPECT_TRUE(s.graph_model()->segment_blocked(3));   // never cleared
}

TEST(FaultPlan, BadPlansAreRejectedBeforeRunning) {
  {
    ScenarioConfig cfg = faulted_highway();
    cfg.fault.enabled = true;
    cfg.fault.plan = "node:9999:2";  // node id out of range
    Scenario s{cfg};
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = faulted_highway();  // highway: no graph mobility
    cfg.fault.enabled = true;
    cfg.fault.plan = "seg:0:2";
    Scenario s{cfg};
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = faulted_highway();
    cfg.fault.enabled = true;
    cfg.fault.vehicle_mtbf_s = -1.0;
    Scenario s{cfg};
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
}

// ----------------------------------------------------------- determinism ---

TEST(FaultPlan, DisabledFaultLayerPerturbsNoOtherStream) {
  // Enabling the subsystem with *zero* configured faults must leave every
  // non-fault line of the canonical report byte-identical to a run without
  // it: the "fault" RNG stream is derived (or not) without perturbing the
  // draws of any other stream.
  ScenarioConfig cfg = faulted_highway();
  Scenario off{cfg};
  off.run();
  cfg.fault.enabled = true;  // no plan, no churn
  Scenario on{cfg};
  on.run();

  const std::string off_str = canonical_report_string(off.report());
  const std::string on_str = canonical_report_string(on.report());
  // The enabled run appends fault_* lines; everything before them must match
  // the disabled run exactly.
  ASSERT_NE(off_str, on_str);
  EXPECT_EQ(on_str.compare(0, off_str.size() - 0, off_str), 0)
      << "fault layer perturbed a non-fault stream";
}

TEST(FaultPlan, FaultedRunsAreSeedDeterministic) {
  ScenarioConfig cfg = faulted_highway();
  cfg.fault.enabled = true;
  cfg.fault.plan = "node:0:2:8";
  cfg.fault.vehicle_mtbf_s = 15.0;
  Scenario a{cfg};
  a.run();
  Scenario b{cfg};
  b.run();
  EXPECT_EQ(report_digest(a.report()), report_digest(b.report()));
}

TEST(FaultPlan, FaultedSweepIsIdenticalAcrossWorkerCounts) {
  // S3: same seeds + same plan => byte-identical sink output for jobs=1 and
  // jobs=4, faults and all.
  ExperimentSpec spec;
  spec.base = faulted_highway();
  spec.base.fault.enabled = true;
  spec.base.fault.plan = "node:0:2:8";
  spec.base.fault.vehicle_mtbf_s = 20.0;
  spec.base.fault.vehicle_downtime_s = 3.0;
  spec.protocols = {"aodv", "flooding"};
  spec.seeds = {1, 2};

  std::ostringstream serial, parallel;
  JsonlSink serial_sink{serial, /*include_runs=*/true};
  JsonlSink parallel_sink{parallel, /*include_runs=*/true};
  ExperimentEngine{1}.run(spec, serial_sink);
  ExperimentEngine{4}.run(spec, parallel_sink);
  EXPECT_EQ(serial.str(), parallel.str());
  EXPECT_NE(serial.str().find("\"type\":\"aggregate\""), std::string::npos);
}

}  // namespace
}  // namespace vanet::sim
