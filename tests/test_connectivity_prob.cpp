// Sec. VII-B: CAR's per-segment connectivity probability model.
#include "analysis/connectivity_prob.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace vanet::analysis {
namespace {

TEST(ConnectivityProb, GapFormula) {
  EXPECT_DOUBLE_EQ(gap_bridgeable_probability(0.0, 250.0), 0.0);
  EXPECT_NEAR(gap_bridgeable_probability(0.01, 250.0), 1.0 - std::exp(-2.5),
              1e-12);
  EXPECT_NEAR(gap_bridgeable_probability(1.0, 250.0), 1.0, 1e-12);
}

TEST(ConnectivityProb, DenserIsMoreConnected) {
  double prev = 0.0;
  for (double lambda : {0.002, 0.005, 0.01, 0.02, 0.05}) {
    const double p = segment_connectivity_probability(lambda, 500.0, 250.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(ConnectivityProb, EmptyRoadCannotRelay) {
  EXPECT_DOUBLE_EQ(segment_connectivity_probability(0.0, 500.0, 250.0), 0.0);
}

TEST(ConnectivityProb, LongerSegmentsAreHarder) {
  const double short_seg = segment_connectivity_probability(0.01, 300.0, 250.0);
  const double long_seg = segment_connectivity_probability(0.01, 3000.0, 250.0);
  EXPECT_GT(short_seg, long_seg);
}

TEST(ConnectivityProb, MaxGapBasics) {
  EXPECT_DOUBLE_EQ(max_gap({}, 1000.0), 1000.0);
  EXPECT_DOUBLE_EQ(max_gap({500.0}, 1000.0), 500.0);
  EXPECT_DOUBLE_EQ(max_gap({100.0, 900.0}, 1000.0), 800.0);
  // Unsorted input is handled.
  EXPECT_DOUBLE_EQ(max_gap({900.0, 100.0, 500.0}, 1000.0), 400.0);
}

TEST(ConnectivityProb, EmpiricalConnected) {
  EXPECT_TRUE(empirical_segment_connected({100.0, 300.0, 500.0, 700.0, 900.0},
                                          1000.0, 250.0));
  EXPECT_FALSE(
      empirical_segment_connected({100.0, 900.0}, 1000.0, 250.0));
}

// Property: the analytic formula approximates Monte-Carlo Poisson placement.
class SegmentConnectivityProperty : public ::testing::TestWithParam<double> {};

TEST_P(SegmentConnectivityProperty, AnalyticTracksMonteCarlo) {
  const double lambda = GetParam();
  const double length = 1000.0, range = 250.0;
  core::Rng rng{77};
  const int trials = 4000;
  int connected = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> pos;
    double x = rng.exponential(lambda);
    while (x < length) {
      pos.push_back(x);
      x += rng.exponential(lambda);
    }
    if (empirical_segment_connected(pos, length, range)) ++connected;
  }
  const double mc = static_cast<double>(connected) / trials;
  const double analytic = segment_connectivity_probability(lambda, length, range);
  // The gap-product formula is an approximation (it ignores edge effects and
  // uses the expected gap count), weakest at low density; require agreement
  // within 0.15 — ranking monotonicity is what CAR actually relies on.
  EXPECT_NEAR(analytic, mc, 0.15) << "lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(Densities, SegmentConnectivityProperty,
                         ::testing::Values(0.004, 0.008, 0.012, 0.02, 0.04));

}  // namespace
}  // namespace vanet::analysis
