#include "mobility/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.h"
#include "mobility/constant_velocity.h"

namespace vanet::mobility {
namespace {

TEST(Trace, CsvRoundTrip) {
  Trace t;
  t.add(3, {0.0, 10.0, 20.0, 5.0, 0.0});
  t.add(3, {1.0, 15.0, 20.0, 5.0, 0.0});
  t.add(7, {0.5, -4.0, 2.0, 1.0, 1.57});
  std::stringstream ss;
  t.save_csv(ss);
  const Trace back = Trace::load_csv(ss);
  ASSERT_EQ(back.vehicle_count(), 2u);
  const auto& v3 = back.samples().at(3);
  ASSERT_EQ(v3.size(), 2u);
  EXPECT_DOUBLE_EQ(v3[1].x, 15.0);
  EXPECT_DOUBLE_EQ(back.samples().at(7)[0].angle, 1.57);
  EXPECT_DOUBLE_EQ(back.end_time(), 1.0);
}

TEST(Trace, LoadSkipsCommentsAndRejectsGarbage) {
  std::stringstream good{"# header\n0.0,1,5.0,6.0,2.0,0.0\n"};
  EXPECT_EQ(Trace::load_csv(good).vehicle_count(), 1u);

  std::stringstream bad{"0.0,1,notanumber,6.0,2.0,0.0\n"};
  EXPECT_THROW(Trace::load_csv(bad), std::runtime_error);

  std::stringstream short_line{"0.0,1,5.0\n"};
  EXPECT_THROW(Trace::load_csv(short_line), std::runtime_error);
}

TEST(Trace, RecorderCapturesModel) {
  ConstantVelocityModel m;
  m.add_vehicle({0.0, 0.0}, {1.0, 0.0}, 10.0);
  m.add_vehicle({5.0, 5.0}, {0.0, 1.0}, 2.0);
  core::Rng rng{1};
  TraceRecorder rec;
  rec.capture(0.0, m);
  m.step(1.0, rng);
  rec.capture(1.0, m);
  const Trace& t = rec.trace();
  EXPECT_EQ(t.vehicle_count(), 2u);
  EXPECT_EQ(t.samples().at(0).size(), 2u);
  EXPECT_DOUBLE_EQ(t.samples().at(0)[1].x, 10.0);
}

TEST(TracePlayback, InterpolatesBetweenSamples) {
  Trace t;
  t.add(0, {0.0, 0.0, 0.0, 10.0, 0.0});
  t.add(0, {2.0, 20.0, 0.0, 10.0, 0.0});
  TracePlaybackModel m{std::move(t)};
  core::Rng rng{1};
  m.step(1.0, rng);  // halfway
  EXPECT_NEAR(m.state(0).pos.x, 10.0, 1e-9);
  EXPECT_NEAR(m.state(0).speed, 10.0, 1e-9);
  EXPECT_NEAR(m.state(0).heading.x, 1.0, 1e-9);
}

TEST(TracePlayback, ClampsAtEnds) {
  Trace t;
  t.add(0, {1.0, 5.0, 5.0, 3.0, 0.0});
  t.add(0, {2.0, 10.0, 5.0, 3.0, 0.0});
  TracePlaybackModel m{std::move(t)};
  core::Rng rng{1};
  // Before the first sample: pinned at it, not yet moving.
  EXPECT_DOUBLE_EQ(m.state(0).pos.x, 5.0);
  EXPECT_DOUBLE_EQ(m.state(0).speed, 0.0);
  // After the last sample: parked at it.
  m.step(5.0, rng);
  EXPECT_DOUBLE_EQ(m.state(0).pos.x, 10.0);
  EXPECT_DOUBLE_EQ(m.state(0).speed, 0.0);
}

TEST(TracePlayback, RoundTripOfRecordedMotion) {
  // Record a constant-velocity run, play it back, compare trajectories.
  ConstantVelocityModel source;
  source.add_vehicle({0.0, 0.0}, {1.0, 0.0}, 12.0);
  core::Rng rng{1};
  TraceRecorder rec;
  for (int i = 0; i <= 20; ++i) {
    rec.capture(i * 0.5, source);
    source.step(0.5, rng);
  }
  TracePlaybackModel playback{rec.take()};
  for (int i = 0; i < 10; ++i) playback.step(0.25, rng);
  // After 2.5 s the vehicle should be at x = 30.
  EXPECT_NEAR(playback.state(0).pos.x, 30.0, 1e-6);
}

}  // namespace
}  // namespace vanet::mobility
