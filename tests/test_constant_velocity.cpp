#include "mobility/constant_velocity.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace vanet::mobility {
namespace {

TEST(ConstantVelocity, StraightLineMotion) {
  ConstantVelocityModel m;
  const VehicleId id = m.add_vehicle({0.0, 0.0}, {1.0, 0.0}, 20.0);
  core::Rng rng{1};
  m.step(0.5, rng);
  EXPECT_NEAR(m.state(id).pos.x, 10.0, 1e-12);
  EXPECT_NEAR(m.state(id).pos.y, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.state(id).speed, 20.0);
}

TEST(ConstantVelocity, HeadingIsNormalized) {
  ConstantVelocityModel m;
  const VehicleId id = m.add_vehicle({0.0, 0.0}, {3.0, 4.0}, 10.0);
  EXPECT_NEAR(m.state(id).heading.norm(), 1.0, 1e-12);
  core::Rng rng{1};
  m.step(1.0, rng);
  EXPECT_NEAR(m.state(id).pos.x, 6.0, 1e-12);
  EXPECT_NEAR(m.state(id).pos.y, 8.0, 1e-12);
}

TEST(ConstantVelocity, ConstantAccelerationKinematics) {
  ConstantVelocityModel m;
  const VehicleId id = m.add_vehicle({0.0, 0.0}, {1.0, 0.0}, 10.0, 2.0);
  core::Rng rng{1};
  m.step(3.0, rng);
  // s = v t + a t^2 / 2 = 30 + 9 = 39; v = 16.
  EXPECT_NEAR(m.state(id).pos.x, 39.0, 1e-12);
  EXPECT_NEAR(m.state(id).speed, 16.0, 1e-12);
}

TEST(ConstantVelocity, DecelerationStopsAtZero) {
  ConstantVelocityModel m;
  const VehicleId id = m.add_vehicle({0.0, 0.0}, {1.0, 0.0}, 10.0, -5.0);
  core::Rng rng{1};
  m.step(4.0, rng);  // would reverse without the clamp (stops at t=2, s=10)
  EXPECT_NEAR(m.state(id).pos.x, 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.state(id).speed, 0.0);
  m.step(1.0, rng);
  EXPECT_NEAR(m.state(id).pos.x, 10.0, 1e-12);  // stays stopped
}

TEST(ConstantVelocity, RingWrapsPosition) {
  ConstantVelocityModel m{1000.0};
  const VehicleId id = m.add_vehicle({900.0, 5.0}, {1.0, 0.0}, 50.0);
  core::Rng rng{1};
  m.step(4.0, rng);  // 900 + 200 = 1100 -> 100
  EXPECT_NEAR(m.state(id).pos.x, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.state(id).pos.y, 5.0);
}

TEST(ConstantVelocity, RingWrapsNegative) {
  ConstantVelocityModel m{1000.0};
  const VehicleId id = m.add_vehicle({50.0, 0.0}, {-1.0, 0.0}, 30.0);
  core::Rng rng{1};
  m.step(5.0, rng);  // 50 - 150 = -100 -> 900
  EXPECT_NEAR(m.state(id).pos.x, 900.0, 1e-9);
}

TEST(ConstantVelocity, IdsAreSequential) {
  ConstantVelocityModel m;
  EXPECT_EQ(m.add_vehicle({0, 0}, {1, 0}, 1.0), 0u);
  EXPECT_EQ(m.add_vehicle({0, 0}, {1, 0}, 1.0), 1u);
  EXPECT_EQ(m.vehicles().size(), 2u);
}

}  // namespace
}  // namespace vanet::mobility
