#include "mobility/idm_highway.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace vanet::mobility {
namespace {

HighwayConfig small_config() {
  HighwayConfig cfg;
  cfg.length = 2000.0;
  cfg.lanes_per_direction = 2;
  return cfg;
}

TEST(IdmHighway, PopulateCounts) {
  IdmHighwayModel m{small_config()};
  core::Rng rng{3};
  m.populate(30, rng);
  EXPECT_EQ(m.vehicles().size(), 60u);  // bidirectional
}

TEST(IdmHighway, UnidirectionalPopulate) {
  HighwayConfig cfg = small_config();
  cfg.bidirectional = false;
  IdmHighwayModel m{cfg};
  core::Rng rng{3};
  m.populate(25, rng);
  EXPECT_EQ(m.vehicles().size(), 25u);
}

TEST(IdmHighway, WorldMappingDirections) {
  IdmHighwayModel m{small_config()};
  const VehicleId fwd = m.add_vehicle(0, 1, 500.0, 30.0);
  const VehicleId bwd = m.add_vehicle(1, 0, 500.0, 30.0);
  const auto& f = m.state(fwd);
  const auto& b = m.state(bwd);
  EXPECT_DOUBLE_EQ(f.pos.x, 500.0);
  EXPECT_DOUBLE_EQ(f.pos.y, 4.0);  // lane 1 * lane_width
  EXPECT_DOUBLE_EQ(f.heading.x, 1.0);
  EXPECT_DOUBLE_EQ(b.pos.x, 1500.0);  // length - s
  EXPECT_LT(b.pos.y, 0.0);            // other carriageway
  EXPECT_DOUBLE_EQ(b.heading.x, -1.0);
}

TEST(IdmHighway, FreeRoadAcceleratesTowardDesiredSpeed) {
  HighwayConfig cfg = small_config();
  cfg.bidirectional = false;
  cfg.lanes_per_direction = 1;
  IdmHighwayModel m{cfg};
  const VehicleId id = m.add_vehicle(0, 0, 0.0, 30.0);
  core::Rng rng{3};
  for (int i = 0; i < 600; ++i) m.step(0.1, rng);
  EXPECT_NEAR(m.state(id).speed, 30.0, 1.0);
}

TEST(IdmHighway, FollowerKeepsSafeGap) {
  HighwayConfig cfg = small_config();
  cfg.bidirectional = false;
  cfg.lanes_per_direction = 1;
  cfg.lane_change_prob = 0.0;
  IdmHighwayModel m{cfg};
  const VehicleId lead = m.add_vehicle(0, 0, 100.0, 15.0);  // slow leader
  const VehicleId tail = m.add_vehicle(0, 0, 60.0, 35.0);   // fast follower
  core::Rng rng{3};
  for (int i = 0; i < 1200; ++i) {
    m.step(0.1, rng);
    double gap = m.arc_position(lead) - m.arc_position(tail);
    if (gap < 0.0) gap += cfg.length;
    EXPECT_GT(gap, cfg.idm.vehicle_length * 0.5)
        << "collision at step " << i;
  }
  // The follower must have slowed to roughly the leader's speed.
  EXPECT_NEAR(m.state(tail).speed, m.state(lead).speed, 3.0);
}

TEST(IdmHighway, SpeedsStayNonNegativeAndBounded) {
  IdmHighwayModel m{small_config()};
  core::Rng rng{5};
  m.populate(40, rng);
  for (int i = 0; i < 600; ++i) {
    m.step(0.1, rng);
    for (const auto& v : m.vehicles()) {
      EXPECT_GE(v.speed, 0.0);
      EXPECT_LT(v.speed, 60.0);
      EXPECT_TRUE(std::isfinite(v.pos.x));
    }
  }
}

TEST(IdmHighway, PositionsStayOnRing) {
  IdmHighwayModel m{small_config()};
  core::Rng rng{7};
  m.populate(30, rng);
  for (int i = 0; i < 1000; ++i) m.step(0.1, rng);
  for (const auto& v : m.vehicles()) {
    EXPECT_GE(v.pos.x, 0.0);
    EXPECT_LE(v.pos.x, 2000.0);
  }
}

TEST(IdmHighway, LaneChangesStayInBounds) {
  IdmHighwayModel m{small_config()};
  core::Rng rng{11};
  m.populate(50, rng);
  for (int i = 0; i < 600; ++i) {
    m.step(0.1, rng);
    for (const auto& v : m.vehicles()) {
      EXPECT_GE(v.lane, 0);
      EXPECT_LT(v.lane, 4);  // 2 lanes x 2 directions
    }
  }
}

TEST(IdmHighway, DirectionsNeverMix) {
  IdmHighwayModel m{small_config()};
  core::Rng rng{13};
  m.populate(20, rng);
  std::vector<int> initial;
  for (const auto& v : m.vehicles()) initial.push_back(m.direction(v.id));
  for (int i = 0; i < 300; ++i) m.step(0.1, rng);
  for (const auto& v : m.vehicles()) {
    EXPECT_EQ(m.direction(v.id), initial[v.id]);
    // Heading matches direction.
    EXPECT_DOUBLE_EQ(v.heading.x, m.direction(v.id) == 0 ? 1.0 : -1.0);
  }
}

}  // namespace
}  // namespace vanet::mobility
