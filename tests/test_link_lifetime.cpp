// Tests for the paper's analytical core (Eqns. 1-4, Fig. 3): exact link
// lifetimes under piecewise-quadratic kinematics, validated case by case and
// property-style against brute-force simulation of the separation.
#include "analysis/link_lifetime.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.h"

namespace vanet::analysis {
namespace {

TEST(LinkLifetime1D, ConstantSpeedsReceding) {
  // i ahead by 100 m, moving 5 m/s faster: breaks at +r when d hits 250.
  const auto r = link_lifetime_1d({30.0, 0.0}, {25.0, 0.0}, 100.0, 250.0);
  EXPECT_NEAR(r.lifetime, (250.0 - 100.0) / 5.0, 1e-9);
  EXPECT_EQ(r.indicator, 1);
}

TEST(LinkLifetime1D, ConstantSpeedsCatchingUpAndPassing) {
  // j ahead (d0 < 0), i faster: i closes in, passes, link breaks at +r.
  const auto r = link_lifetime_1d({30.0, 0.0}, {20.0, 0.0}, -100.0, 250.0);
  // d(t) = -100 + 10 t = 250 -> t = 35.
  EXPECT_NEAR(r.lifetime, 35.0, 1e-9);
  EXPECT_EQ(r.indicator, 1);  // i is ahead at the break
}

TEST(LinkLifetime1D, EqualSpeedsNeverBreak) {
  const auto r = link_lifetime_1d({25.0, 0.0}, {25.0, 0.0}, 50.0, 250.0);
  EXPECT_TRUE(std::isinf(r.lifetime));
  EXPECT_EQ(r.indicator, 0);
}

TEST(LinkLifetime1D, AlreadyOutOfRange) {
  const auto r = link_lifetime_1d({30.0, 0.0}, {30.0, 0.0}, 300.0, 250.0);
  EXPECT_DOUBLE_EQ(r.lifetime, 0.0);
  EXPECT_EQ(r.indicator, 1);
  const auto r2 = link_lifetime_1d({30.0, 0.0}, {30.0, 0.0}, -300.0, 250.0);
  EXPECT_EQ(r2.indicator, -1);
}

TEST(LinkLifetime1D, Fig3aLeaderAccelerates) {
  // Fig. 3(a): i ahead and accelerating away; j steady. Quadratic crossing.
  // d(t) = 50 + 0.5 * 1.0 * t^2 = 250 -> t = sqrt(400) = 20.
  const auto r =
      link_lifetime_1d({30.0, 1.0}, {30.0, 0.0}, 50.0, 250.0,
                       /*v_max=*/1000.0);
  EXPECT_NEAR(r.lifetime, 20.0, 1e-9);
  EXPECT_EQ(r.indicator, 1);
}

TEST(LinkLifetime1D, Fig3bFollowerBrakes) {
  // Fig. 3(b): follower j decelerates; separation grows quadratically until
  // j stops, then linearly at speed v_i.
  // Phase 1 (0..5 s, while j brakes from 10 at -2): relative accel +2,
  // relative speed 0 -> d = 100 + t^2; at t=5: d = 125, j stopped.
  // Phase 2: d grows at 10 m/s: 250 reached at t = 5 + 12.5 = 17.5.
  const auto r = link_lifetime_1d({10.0, 0.0}, {10.0, -2.0}, 100.0, 250.0);
  EXPECT_NEAR(r.lifetime, 17.5, 1e-9);
  EXPECT_EQ(r.indicator, 1);
}

TEST(LinkLifetime1D, SpeedLimitSaturation) {
  // i accelerates but saturates at the speed limit v_m = 35: afterwards the
  // relative speed is constant (5 m/s).
  // Phase 1 (0..5 s): d = 0 + 0.5*1*t^2 -> d(5) = 12.5.
  // Phase 2: relative speed 5 -> reach 250 after (250-12.5)/5 = 47.5 s.
  const auto r =
      link_lifetime_1d({30.0, 1.0}, {30.0, 0.0}, 0.0, 250.0, /*v_max=*/35.0);
  EXPECT_NEAR(r.lifetime, 52.5, 1e-9);
}

TEST(LinkLifetime1D, OppositeDirectionsBreakFast) {
  // Opposite traffic at +-30 m/s passing each other: relative speed 60.
  const auto same = link_lifetime_1d({30.0, 0.0}, {28.0, 0.0}, 0.0, 250.0);
  const auto opposite = link_lifetime_1d({30.0, 0.0}, {-30.0, 0.0}, 0.0, 250.0);
  EXPECT_NEAR(opposite.lifetime, 250.0 / 60.0, 1e-9);
  EXPECT_GT(same.lifetime, 10.0 * opposite.lifetime);
}

TEST(LinkLifetime1D, SeparationAtMatchesCrossing) {
  const Kinematics1D i{25.0, 0.8}, j{32.0, -0.5};
  const double d0 = -80.0, r = 200.0, vmax = 40.0;
  const auto res = link_lifetime_1d(i, j, d0, r, vmax);
  ASSERT_TRUE(std::isfinite(res.lifetime));
  const double d_at_break = separation_at(i, j, d0, res.lifetime, vmax);
  EXPECT_NEAR(std::abs(d_at_break), r, 1e-6);
  EXPECT_EQ(res.indicator, d_at_break >= 0.0 ? 1 : -1);
  // Strictly inside the disk just before the break.
  EXPECT_LT(std::abs(separation_at(i, j, d0, res.lifetime * 0.99, vmax)), r);
}

TEST(LinkLifetime2D, MatchesClosedFormInOneDimension) {
  // Same scenario as ConstantSpeedsReceding, expressed as 2-D vectors.
  const auto t = link_lifetime_2d({100.0, 0.0}, {30.0, 0.0}, {0.0, 0.0},
                                  {0.0, 0.0}, {25.0, 0.0}, {0.0, 0.0}, 250.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 30.0, 1e-3);
}

TEST(LinkLifetime2D, PerpendicularMotion) {
  // j drives away perpendicular at 20 m/s from the same point:
  // distance = 20 t = 250 -> t = 12.5.
  const auto t = link_lifetime_2d({0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
                                  {0.0, 0.0}, {0.0, 20.0}, {0.0, 0.0}, 250.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 12.5, 1e-3);
}

TEST(LinkLifetime2D, SurvivesHorizonReturnsNullopt) {
  const auto t = link_lifetime_2d({0.0, 0.0}, {20.0, 0.0}, {0.0, 0.0},
                                  {10.0, 0.0}, {20.0, 0.0}, {0.0, 0.0}, 250.0,
                                  /*horizon=*/30.0);
  EXPECT_FALSE(t.has_value());
}

TEST(LinkLifetime2D, AlreadyOutOfRangeIsZero) {
  const auto t = link_lifetime_2d({0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
                                  {400.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, 250.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.0);
}

TEST(PathLifetime, MinRule) {
  EXPECT_DOUBLE_EQ(path_lifetime({12.0, 3.5, 99.0}), 3.5);
  EXPECT_TRUE(std::isinf(path_lifetime({})));
  EXPECT_DOUBLE_EQ(path_lifetime({kInfiniteLifetime, 7.0}), 7.0);
}

// Property sweep: the closed form must agree with brute-force integration of
// the separation for random kinematics (Fig. 3's "different combinations of
// vi, vj, ai and aj").
class LifetimeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LifetimeProperty, ClosedFormMatchesBruteForce) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const double r = 250.0;
  const double vmax = 40.0;
  for (int trial = 0; trial < 50; ++trial) {
    const Kinematics1D i{rng.uniform(0.0, 40.0), rng.uniform(-3.0, 3.0)};
    const Kinematics1D j{rng.uniform(0.0, 40.0), rng.uniform(-3.0, 3.0)};
    const double d0 = rng.uniform(-240.0, 240.0);
    const auto res = link_lifetime_1d(i, j, d0, r, vmax);
    if (!std::isfinite(res.lifetime)) {
      // Verify the link indeed survives a long horizon.
      for (double t = 0.0; t < 600.0; t += 1.0) {
        EXPECT_LT(std::abs(separation_at(i, j, d0, t, vmax)), r + 1e-6);
      }
      continue;
    }
    // Brute force: step finely and find the first |d| >= r.
    double brute = -1.0;
    const double dt = 1e-3;
    for (double t = 0.0; t < res.lifetime + 5.0; t += dt) {
      if (std::abs(separation_at(i, j, d0, t, vmax)) >= r) {
        brute = t;
        break;
      }
    }
    ASSERT_GE(brute, 0.0) << "brute force found no crossing";
    EXPECT_NEAR(res.lifetime, brute, 2e-3)
        << "vi=" << i.v << " ai=" << i.a << " vj=" << j.v << " aj=" << j.a
        << " d0=" << d0;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifetimeProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace vanet::analysis
