// Sec. VII-A: the stochastic link-lifetime model under normally distributed
// relative speed (GVGrid / Yan premise).
#include "analysis/lifetime_distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.h"

namespace vanet::analysis {
namespace {

TEST(LifetimeDistribution, SurvivalStartsAtOneAndDecreases) {
  const LinkLifetimeDistribution d{250.0, 50.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(d.survival(0.0), 1.0);
  double prev = 1.0;
  for (double t = 1.0; t <= 200.0; t += 1.0) {
    const double s = d.survival(t);
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
  EXPECT_LT(prev, 0.05);
}

TEST(LifetimeDistribution, DeterministicLimitMatchesClosedForm) {
  // sigma = 0, mu > 0: lifetime is exactly (r - d0)/mu.
  const LinkLifetimeDistribution d{250.0, 50.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(d.expected_lifetime(), 20.0);
  EXPECT_DOUBLE_EQ(d.survival(19.9), 1.0);
  EXPECT_DOUBLE_EQ(d.survival(20.1), 0.0);
  // mu < 0: the pair closes, passes, and exits the other side.
  const LinkLifetimeDistribution d2{250.0, 50.0, -10.0, 0.0};
  EXPECT_DOUBLE_EQ(d2.expected_lifetime(), 30.0);
  // Stationary pair: truncated mean equals the horizon.
  const LinkLifetimeDistribution d3{250.0, 50.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(d3.expected_lifetime(100.0), 100.0);
}

TEST(LifetimeDistribution, FasterDriftShortensLife) {
  const LinkLifetimeDistribution slow{250.0, 0.0, 2.0, 1.0};
  const LinkLifetimeDistribution fast{250.0, 0.0, 20.0, 1.0};
  EXPECT_GT(slow.expected_lifetime(), fast.expected_lifetime());
  EXPECT_GT(slow.survival(10.0), fast.survival(10.0));
}

TEST(LifetimeDistribution, CloserPairsLiveLonger) {
  const LinkLifetimeDistribution near{250.0, 0.0, 5.0, 2.0};
  const LinkLifetimeDistribution far{250.0, 200.0, 5.0, 2.0};
  EXPECT_GT(near.expected_lifetime(), far.expected_lifetime());
}

TEST(LifetimeDistribution, QuantileInvertsSurvival) {
  const LinkLifetimeDistribution d{250.0, 30.0, 6.0, 3.0};
  for (double q : {0.1, 0.5, 0.9}) {
    const double t = d.quantile(q);
    EXPECT_NEAR(d.survival(t), 1.0 - q, 1e-6) << "q=" << q;
  }
  // Median below mean for the right-skewed lifetime.
  EXPECT_LT(d.quantile(0.5), d.expected_lifetime() * 1.5);
}

// Property: survival and expectation match Monte Carlo over (d0, mu, sigma).
class LifetimeDistProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(LifetimeDistProperty, MatchesMonteCarlo) {
  const auto [d0, mu, sigma] = GetParam();
  const double r = 250.0;
  const double horizon = 300.0;
  const LinkLifetimeDistribution dist{r, d0, mu, sigma};
  core::Rng rng{1234};
  const int n = 20000;
  int alive_at_10 = 0;
  double total_life = 0.0;
  for (int i = 0; i < n; ++i) {
    const double dv = rng.normal(mu, sigma);
    // Linear separation: exit time of (-r, r) from d0 at rate dv.
    double life;
    if (std::abs(dv) < 1e-12) {
      life = horizon;
    } else if (dv > 0.0) {
      life = (r - d0) / dv;
    } else {
      life = (r + d0) / -dv;
    }
    if (life > 10.0) ++alive_at_10;
    total_life += std::min(life, horizon);
  }
  EXPECT_NEAR(static_cast<double>(alive_at_10) / n, dist.survival(10.0), 0.015);
  // Compare the same truncated expectation on both sides.
  const double e = dist.expected_lifetime(horizon);
  EXPECT_NEAR(total_life / n, e, std::max(0.6, 0.05 * e));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LifetimeDistProperty,
    ::testing::Values(std::make_tuple(0.0, 5.0, 2.0),
                      std::make_tuple(100.0, 5.0, 2.0),
                      std::make_tuple(-100.0, 10.0, 4.0),
                      std::make_tuple(50.0, -8.0, 3.0),
                      std::make_tuple(200.0, 15.0, 1.0)));

}  // namespace
}  // namespace vanet::analysis
