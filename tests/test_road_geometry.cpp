// GeometryMode behavior of the road-geometry protocols: kRoute must follow
// roads on irregular maps, and must reduce to the legacy kLine decisions on
// lattice maps (the property the golden digests rely on).
#include <gtest/gtest.h>

#include <memory>

#include "map/builders.h"
#include "routing/geographic/grid_gateway.h"
#include "routing/geographic/zone.h"
#include "sim/scenario.h"
#include "util/line_fixture.h"

namespace vanet::testing {
namespace {

/// U-shaped road whose tips face each other across a roadless gap; the
/// straight tip→tip line crosses the gap, the road route goes around.
std::shared_ptr<const map::RoadGraph> u_road() {
  auto g = std::make_shared<map::RoadGraph>();
  g->add_intersection({0.0, 0.0});
  g->add_intersection({0.0, 1000.0});
  g->add_intersection({1000.0, 1000.0});
  g->add_intersection({1000.0, 0.0});
  g->add_segment(0, 1);
  g->add_segment(1, 2);
  g->add_segment(2, 3);
  return g;
}

/// src and dst at the U's tips; M sits in the roadless gap, ON the straight
/// line but 500 m from every road. Range 600: M is the only possible relay.
std::vector<VehicleSpec> gap_relay_topology() {
  return {
      {{0.0, 0.0}, {0.0, 0.0}},     // 0: src (west tip)
      {{1000.0, 0.0}, {0.0, 0.0}},  // 1: dst (east tip)
      {{500.0, 0.0}, {0.0, 0.0}},   // 2: M, mid-gap relay
  };
}

TEST(RoadGeometry, ZoneRouteCorridorDropsOffRoadRelays) {
  for (const auto mode :
       {routing::GeometryMode::kLine, routing::GeometryMode::kRoute}) {
    LineFixtureOptions opt;
    opt.range = 600.0;
    opt.road_graph = u_road();
    opt.deps.zone_geometry = mode;
    LineFixture f{"zone", gap_relay_topology(), opt};
    f.run_to(0.5);
    f.send(0, 1, /*seq=*/1);
    f.run_to(3.0);
    if (mode == routing::GeometryMode::kLine) {
      // Legacy corridor is the straight line; M is on it and relays.
      EXPECT_EQ(f.delivered_count(0, 1), 1u);
    } else {
      // Road corridor follows the U (500 m from M > 250 m half width): the
      // packet must not cut across the roadless gap.
      EXPECT_EQ(f.delivered_count(0, 1), 0u);
    }
  }
}

TEST(RoadGeometry, ZoneRouteForwardsAlongTheRoadRoute) {
  // Relays placed ON the U route: route mode must deliver around the bend
  // even though the relays are far from the straight src→dst line.
  LineFixtureOptions opt;
  opt.range = 600.0;
  opt.road_graph = u_road();
  opt.deps.zone_geometry = routing::GeometryMode::kRoute;
  LineFixture f{"zone",
                {{{0.0, 0.0}, {0.0, 0.0}},      // 0: src
                 {{1000.0, 0.0}, {0.0, 0.0}},   // 1: dst
                 {{0.0, 550.0}, {0.0, 0.0}},    // 2: west leg relay
                 {{200.0, 1000.0}, {0.0, 0.0}},  // 3: north-west relay
                 {{750.0, 1000.0}, {0.0, 0.0}},  // 4: north-east relay
                 {{1000.0, 500.0}, {0.0, 0.0}}},  // 5: east leg relay
                opt};
  f.run_to(0.5);
  f.send(0, 1, /*seq=*/1);
  f.run_to(4.0);
  EXPECT_EQ(f.delivered_count(0, 1), 1u);
  // A line-mode zone would have dropped these relays (550 m off the line),
  // and indeed must: same topology, legacy geometry.
  LineFixtureOptions line_opt = opt;
  line_opt.deps.zone_geometry = routing::GeometryMode::kLine;
  LineFixture line{"zone",
                   {{{0.0, 0.0}, {0.0, 0.0}},
                    {{1000.0, 0.0}, {0.0, 0.0}},
                    {{0.0, 550.0}, {0.0, 0.0}},
                    {{200.0, 1000.0}, {0.0, 0.0}},
                    {{750.0, 1000.0}, {0.0, 0.0}},
                    {{1000.0, 500.0}, {0.0, 0.0}}},
                   line_opt};
  line.run_to(0.5);
  line.send(0, 1, /*seq=*/1);
  line.run_to(4.0);
  EXPECT_EQ(line.delivered_count(0, 1), 0u);
}

TEST(RoadGeometry, GridRoadCellsElectOneGatewayPerStreet) {
  LineFixtureOptions opt;
  opt.range = 500.0;  // auto cell = 400 m: one road cell per U leg
  opt.road_graph = u_road();
  opt.deps.grid_geometry = routing::GeometryMode::kRoute;
  LineFixture f{"grid",
                {{{0.0, 450.0}, {0.0, 0.0}},   // 0: west leg, 50 m from anchor
                 {{0.0, 150.0}, {0.0, 0.0}},   // 1: west leg, 350 m from anchor
                 {{980.0, 480.0}, {0.0, 0.0}}},  // 2: east leg, own cell
                opt};
  f.run_to(3.0);  // let hello beacons populate the neighbor tables
  const auto gateway = [&](net::NodeId id) {
    return static_cast<routing::GridGatewayProtocol&>(*f.protocols[id])
        .is_gateway();
  };
  // Node 0 and 1 share the west-leg road cell (anchor (0,500)); 0 is closer
  // and wins. Node 2 is alone in the east-leg cell: gateway by default.
  EXPECT_TRUE(gateway(0));
  EXPECT_FALSE(gateway(1));
  EXPECT_TRUE(gateway(2));
}

TEST(RoadGeometry, GvGridRouteConfinesDiscoveryToRoads) {
  for (const auto mode :
       {routing::GeometryMode::kLine, routing::GeometryMode::kRoute}) {
    LineFixtureOptions opt;
    opt.range = 600.0;
    opt.road_graph = u_road();
    opt.deps.gvgrid_geometry = mode;
    LineFixture f{"gvgrid", gap_relay_topology(), opt};
    f.run_to(2.0);
    f.send(0, 1, /*seq=*/1);
    f.run_to(8.0);
    if (mode == routing::GeometryMode::kLine) {
      // Unconfined discovery finds the 2-hop path through mid-gap M.
      EXPECT_EQ(f.delivered_count(0, 1), 1u);
    } else {
      // M is 500 m from the road route (> 400 m corridor): it refuses the
      // RREQ, and no on-road path exists — discovery must fail.
      EXPECT_EQ(f.delivered_count(0, 1), 0u);
    }
  }
}

// The reduction property behind the golden digests: on lattice maps every
// kRoute predicate defers to the legacy kLine code path, so the two modes
// make identical forward/drop/election decisions — verified here end-to-end
// via bit-identical scenario reports across protocols and seeds.
TEST(RoadGeometry, RouteModeReducesToLineModeOnLatticeMaps) {
  for (const char* protocol : {"zone", "grid", "gvgrid"}) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      sim::ScenarioReport reports[2];
      int i = 0;
      for (const auto mode :
           {routing::GeometryMode::kLine, routing::GeometryMode::kRoute}) {
        sim::ScenarioConfig cfg;
        cfg.seed = seed;
        cfg.duration_s = 8.0;
        cfg.mobility = sim::MobilityKind::kGraph;  // drives on the lattice map
        cfg.vehicles = 25;
        cfg.protocol = protocol;
        cfg.traffic.flows = 4;
        cfg.traffic.stop_s = 8.0;
        cfg.zone_geometry = mode;
        cfg.grid_geometry = mode;
        cfg.gvgrid_geometry = mode;
        sim::Scenario s{cfg};
        s.run();
        reports[i++] = s.report();
      }
      EXPECT_EQ(sim::report_digest(reports[0]), sim::report_digest(reports[1]))
          << protocol << " seed " << seed;
    }
  }
}

// Random placements on a lattice map: gateway election must agree between
// the modes for every node (the cell-membership half of the reduction).
TEST(RoadGeometry, LatticeGatewayElectionAgreesAcrossModes) {
  auto lattice = std::make_shared<map::RoadGraph>(map::make_grid(5, 5, 200.0));
  core::Rng rng{99};
  for (int round = 0; round < 20; ++round) {
    std::vector<VehicleSpec> specs;
    for (int v = 0; v < 12; ++v) {
      specs.push_back({{rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0)},
                       {0.0, 0.0}});
    }
    LineFixtureOptions opt;
    opt.range = 250.0;
    opt.road_graph = lattice;
    opt.seed = 1000 + static_cast<std::uint64_t>(round);
    opt.deps.grid_geometry = routing::GeometryMode::kLine;
    LineFixture line{"grid", specs, opt};
    opt.deps.grid_geometry = routing::GeometryMode::kRoute;
    LineFixture route{"grid", specs, opt};
    line.run_to(2.5);
    route.run_to(2.5);
    for (std::size_t id = 0; id < specs.size(); ++id) {
      EXPECT_EQ(static_cast<routing::GridGatewayProtocol&>(*line.protocols[id])
                    .is_gateway(),
                static_cast<routing::GridGatewayProtocol&>(*route.protocols[id])
                    .is_gateway())
          << "round " << round << " node " << id;
    }
  }
}

}  // namespace
}  // namespace vanet::testing
