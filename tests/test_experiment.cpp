#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vanet::sim {
namespace {

ScenarioConfig tiny_highway() {
  ScenarioConfig cfg;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 1500.0;
  cfg.vehicles_per_direction = 12;
  cfg.duration_s = 10.0;
  cfg.traffic.flows = 3;
  cfg.traffic.start_s = 1.0;
  cfg.traffic.stop_s = 8.0;
  cfg.traffic.min_pair_distance_m = 200.0;
  return cfg;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.base = tiny_highway();
  spec.protocols = {"aodv", "greedy"};
  spec.axes = {{"vehicles_per_direction", {"8", "16"}}};
  spec.seeds = {1, 2};
  return spec;
}

TEST(Experiment, ExpandProducesMatrixInOrder) {
  ExperimentSpec spec = small_spec();
  spec.axes.push_back({"traffic.rate_pps", {"1", "2", "4"}});
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 3u);
  // Protocols outermost, first axis next, last axis fastest.
  EXPECT_EQ(cells[0].protocol, "aodv");
  EXPECT_EQ(cells[0].axes[0].second, "8");
  EXPECT_EQ(cells[0].axes[1].second, "1");
  EXPECT_EQ(cells[1].axes[1].second, "2");
  EXPECT_EQ(cells[3].axes[0].second, "16");
  EXPECT_EQ(cells[6].protocol, "greedy");
  // The axis value is applied to the cell config.
  EXPECT_EQ(cells[3].config.vehicles_per_direction, 16);
  EXPECT_DOUBLE_EQ(cells[4].config.traffic.rate_pps, 2.0);
  // Digests identify distinct cells.
  EXPECT_NE(cells[0].digest, cells[1].digest);
}

TEST(Experiment, ExpandValidatesInputs) {
  ExperimentSpec spec = small_spec();
  spec.protocols = {"aodv", "not-a-protocol"};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  spec = small_spec();
  spec.axes = {{"no.such.key", {"1"}}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  spec = small_spec();
  spec.axes = {{"vehicles", {}}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  // A protocol axis is validated up front, not mid-matrix in a worker.
  spec = small_spec();
  spec.axes = {{"protocol", {"aodv", "aovd"}}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  // Duplicate axis keys would mislabel rows (later axis overwrites earlier).
  spec = small_spec();
  spec.axes = {{"traffic.flows", {"1", "2"}}, {"traffic.flows", {"3"}}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  // A protocols list and a protocol axis are mutually exclusive.
  spec = small_spec();
  spec.axes.push_back({"protocol", {"flooding"}});
  EXPECT_THROW(expand(spec), std::invalid_argument);

  // Protocol overrides must not clobber swept keys (row labels would lie).
  spec = small_spec();
  spec.protocol_overrides["aodv"] = {{"vehicles_per_direction", "9"}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  // Seed is controlled by the seeds list, never an axis or override.
  spec = small_spec();
  spec.axes.push_back({"seed", {"10", "20"}});
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = small_spec();
  spec.protocol_overrides["aodv"] = {{"seed", "10"}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  // Overrides for protocols outside the matrix are typos, not no-ops.
  spec = small_spec();
  spec.protocol_overrides["ddr"] = {{"rsu_count", "6"}};
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = small_spec();
  spec.protocol_overrides["aodv"] = {{"rsu.count", "6"}};
  EXPECT_THROW(expand(spec), std::invalid_argument);

  spec = small_spec();
  spec.seeds.clear();
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(Experiment, ProtocolOverridesApplyOnlyToMatchingCells) {
  ExperimentSpec spec = small_spec();
  spec.protocols = {"aodv", "drr"};
  spec.protocol_overrides["drr"] = {{"rsu_count", "5"}};
  const auto cells = expand(spec);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.config.rsu_count, cell.protocol == "drr" ? 5 : 0)
        << cell.protocol;
  }
}

TEST(Experiment, ProtocolAxisSweepsTheProtocolItself) {
  ExperimentSpec spec;
  spec.base = tiny_highway();
  spec.axes = {{"protocol", {"flooding", "aodv"}}};
  spec.seeds = {1};
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].protocol, "flooding");
  EXPECT_EQ(cells[1].protocol, "aodv");
  EXPECT_EQ(cells[1].config.protocol, "aodv");
}

// The acceptance-criterion determinism test: a parallel engine run must be
// bit-identical to the serial one — same AggregateReport numbers, same sink
// bytes.
TEST(Experiment, ParallelMatchesSerialBitForBit) {
  const ExperimentSpec spec = small_spec();

  std::ostringstream serial_csv, parallel_csv;
  CsvSink serial_sink{serial_csv}, parallel_sink{parallel_csv};
  ExperimentResult serial = ExperimentEngine{1}.run(spec, serial_sink);
  ExperimentResult parallel = ExperimentEngine{4}.run(spec, parallel_sink);

  EXPECT_EQ(serial_csv.str(), parallel_csv.str());

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const AggregateReport& a = serial.cells[i].agg;
    const AggregateReport& b = parallel.cells[i].agg;
    EXPECT_EQ(serial.cells[i].config_digest, parallel.cells[i].config_digest);
    EXPECT_EQ(a.pdr.count(), b.pdr.count());
    EXPECT_EQ(a.pdr.mean(), b.pdr.mean());
    EXPECT_EQ(a.pdr.variance(), b.pdr.variance());
    EXPECT_EQ(a.delay_ms.mean(), b.delay_ms.mean());
    EXPECT_EQ(a.hops.mean(), b.hops.mean());
    EXPECT_EQ(a.control_per_delivered.mean(), b.control_per_delivered.mean());
    EXPECT_EQ(a.collision_fraction.mean(), b.collision_fraction.mean());
    EXPECT_EQ(a.route_breaks.mean(), b.route_breaks.mean());
    EXPECT_EQ(a.total_originated, b.total_originated);
    EXPECT_EQ(a.total_delivered, b.total_delivered);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t r = 0; r < a.runs.size(); ++r) {
      EXPECT_EQ(a.runs[r].delivered, b.runs[r].delivered);
      EXPECT_EQ(a.runs[r].control_frames, b.runs[r].control_frames);
      EXPECT_EQ(a.runs[r].delay_ms_mean, b.runs[r].delay_ms_mean);
    }
  }
}

// run_seeds is now a thin wrapper over the engine; it must still reproduce
// the historic hand-rolled serial loop exactly.
TEST(Experiment, RunSeedsMatchesHandRolledLoop) {
  ScenarioConfig cfg = tiny_highway();
  cfg.protocol = "aodv";
  const std::vector<std::uint64_t> seeds = {3, 7};

  std::vector<ScenarioReport> reports;
  for (std::uint64_t seed : seeds) {
    ScenarioConfig c = cfg;
    c.seed = seed;
    Scenario scenario{c};
    scenario.run();
    reports.push_back(scenario.report());
  }
  const AggregateReport expected = aggregate_runs(cfg.protocol, reports);
  const AggregateReport actual = run_seeds(cfg, seeds);

  EXPECT_EQ(actual.protocol, expected.protocol);
  EXPECT_EQ(actual.pdr.mean(), expected.pdr.mean());
  EXPECT_EQ(actual.pdr.variance(), expected.pdr.variance());
  EXPECT_EQ(actual.delay_ms.mean(), expected.delay_ms.mean());
  EXPECT_EQ(actual.total_originated, expected.total_originated);
  EXPECT_EQ(actual.total_delivered, expected.total_delivered);
  ASSERT_EQ(actual.runs.size(), expected.runs.size());
  for (std::size_t i = 0; i < actual.runs.size(); ++i) {
    EXPECT_EQ(actual.runs[i].delivered, expected.runs[i].delivered);
    EXPECT_EQ(actual.runs[i].originated, expected.runs[i].originated);
  }
}

class CountingSink final : public ReportSink {
 public:
  int begins = 0, runs = 0, aggregates = 0, ends = 0;
  std::vector<std::string> axis_keys;
  std::vector<std::uint64_t> run_seeds_seen;

  void begin(const std::vector<std::string>& keys) override {
    ++begins;
    axis_keys = keys;
  }
  void on_run(const RunRecord& rec) override {
    ++runs;
    run_seeds_seen.push_back(rec.seed);
  }
  void on_aggregate(const AggregateRecord&) override { ++aggregates; }
  void end() override { ++ends; }
};

TEST(Experiment, SinksSeeEveryRecordInDeterministicOrder) {
  const ExperimentSpec spec = small_spec();  // 4 cells x 2 seeds
  CountingSink sink;
  ExperimentEngine engine{3};
  const ExperimentResult result = engine.run(spec, sink);

  EXPECT_EQ(sink.begins, 1);
  EXPECT_EQ(sink.ends, 1);
  EXPECT_EQ(sink.aggregates, 4);
  EXPECT_EQ(sink.runs, 8);
  EXPECT_EQ(sink.axis_keys,
            std::vector<std::string>{"vehicles_per_direction"});
  // Per-cell run records arrive in seed order.
  EXPECT_EQ(sink.run_seeds_seen,
            (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2, 1, 2}));
  EXPECT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].agg.runs.size(), 2u);
}

TEST(Experiment, MarkdownAndJsonlSinksEmitOneRecordPerCell) {
  const ExperimentSpec spec = small_spec();
  std::ostringstream md, jsonl;
  MarkdownSink md_sink{md};
  JsonlSink jsonl_sink{jsonl, /*include_runs=*/true};
  ExperimentEngine engine{2};
  engine.run(spec, std::vector<ReportSink*>{&md_sink, &jsonl_sink});

  // Markdown: header + separator + one row per cell.
  std::istringstream md_lines(md.str());
  std::string line;
  int md_rows = 0;
  while (std::getline(md_lines, line)) ++md_rows;
  EXPECT_EQ(md_rows, 2 + 4);

  std::istringstream jsonl_lines(jsonl.str());
  int run_lines = 0, agg_lines = 0;
  while (std::getline(jsonl_lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"run\"") != std::string::npos) ++run_lines;
    if (line.find("\"type\":\"aggregate\"") != std::string::npos) ++agg_lines;
  }
  EXPECT_EQ(run_lines, 8);
  EXPECT_EQ(agg_lines, 4);
}

// ExperimentSpec::profile gates the throughput fields: off (the default)
// emits not a byte of them — historical JSONL stays byte-identical — and on
// adds wall/events/shards/threads to run records and the means to
// aggregates. Wall-clock values are nondeterministic, so the test checks
// presence and the deterministic fields only.
TEST(Experiment, ProfileCaptureGatesSinkFields) {
  ExperimentSpec spec = small_spec();
  spec.protocols = {"aodv"};
  spec.axes.clear();
  spec.seeds = {1};

  std::ostringstream plain, profiled;
  JsonlSink plain_sink{plain, /*include_runs=*/true};
  JsonlSink profiled_sink{profiled, /*include_runs=*/true};
  ExperimentEngine engine{1};
  engine.run(spec, plain_sink);
  spec.profile = true;
  engine.run(spec, profiled_sink);

  EXPECT_EQ(plain.str().find("wall_s"), std::string::npos);
  EXPECT_EQ(plain.str().find("shards"), std::string::npos);

  std::istringstream lines(profiled.str());
  std::string line;
  int runs = 0, aggs = 0;
  while (std::getline(lines, line)) {
    if (line.find("\"type\":\"run\"") != std::string::npos) {
      ++runs;
      EXPECT_NE(line.find("\"wall_s\":"), std::string::npos);
      EXPECT_NE(line.find("\"events_dispatched\":"), std::string::npos);
      EXPECT_NE(line.find("\"events_per_sec\":"), std::string::npos);
      EXPECT_NE(line.find("\"shards\":1"), std::string::npos);
      EXPECT_NE(line.find("\"threads\":1"), std::string::npos);
    }
    if (line.find("\"type\":\"aggregate\"") != std::string::npos) {
      ++aggs;
      EXPECT_NE(line.find("\"wall_s_mean\":"), std::string::npos);
      EXPECT_NE(line.find("\"events_per_sec_mean\":"), std::string::npos);
    }
  }
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(aggs, 1);
}

// A profiled sweep over the sharded engine records the effective shard and
// worker-thread counts of each run — the fields bench_compare keys scale
// rows by.
TEST(Experiment, ProfileCaptureRecordsEffectiveShardCounts) {
  ExperimentSpec spec;
  spec.base.mobility = MobilityKind::kManhattan;
  spec.base.manhattan.streets_x = 4;
  spec.base.manhattan.streets_y = 4;
  spec.base.manhattan.block = 200.0;
  spec.base.vehicles = 24;
  spec.base.duration_s = 4.0;
  spec.base.traffic.flows = 2;
  spec.base.traffic.start_s = 1.0;
  spec.base.traffic.stop_s = 3.0;
  spec.base.shards = 2;
  spec.protocols = {"greedy"};
  spec.seeds = {1};
  spec.profile = true;

  std::ostringstream out;
  JsonlSink sink{out, /*include_runs=*/true};
  ExperimentEngine{1}.run(spec, sink);
  EXPECT_NE(out.str().find("\"shards\":2,\"threads\":2"), std::string::npos);
}

}  // namespace
}  // namespace vanet::sim
