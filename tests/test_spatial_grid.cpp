#include "core/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/rng.h"

namespace vanet::core {
namespace {

TEST(SpatialGrid, InsertQueryRemove) {
  SpatialGrid g{100.0};
  g.insert(1, {0.0, 0.0});
  g.insert(2, {50.0, 0.0});
  g.insert(3, {500.0, 0.0});
  EXPECT_EQ(g.size(), 3u);
  EXPECT_TRUE(g.contains(2));
  EXPECT_EQ(g.query_radius({0.0, 0.0}, 100.0), (std::vector<SpatialGrid::Id>{1, 2}));
  g.remove(2);
  EXPECT_EQ(g.query_radius({0.0, 0.0}, 100.0), (std::vector<SpatialGrid::Id>{1}));
  EXPECT_FALSE(g.contains(2));
}

TEST(SpatialGrid, QueryExcludesSelf) {
  SpatialGrid g{100.0};
  g.insert(7, {0.0, 0.0});
  g.insert(8, {10.0, 0.0});
  EXPECT_EQ(g.query_radius({0.0, 0.0}, 50.0, 7),
            (std::vector<SpatialGrid::Id>{8}));
}

TEST(SpatialGrid, RadiusIsStrict) {
  SpatialGrid g{100.0};
  g.insert(1, {0.0, 0.0});
  g.insert(2, {100.0, 0.0});
  // Exactly at the radius: excluded (strict <).
  EXPECT_TRUE(g.query_radius({0.0, 0.0}, 100.0, 1).empty());
  EXPECT_EQ(g.query_radius({0.0, 0.0}, 100.01, 1).size(), 1u);
}

TEST(SpatialGrid, UpdateMovesAcrossCells) {
  SpatialGrid g{100.0};
  g.insert(1, {0.0, 0.0});
  g.update(1, {1000.0, 1000.0});
  EXPECT_TRUE(g.query_radius({0.0, 0.0}, 200.0).empty());
  EXPECT_EQ(g.query_radius({1000.0, 1000.0}, 10.0).size(), 1u);
  EXPECT_EQ(g.position(1), (Vec2{1000.0, 1000.0}));
}

TEST(SpatialGridDeathTest, DuplicateInsertAborts) {
  SpatialGrid g{100.0};
  g.insert(1, {0.0, 0.0});
  EXPECT_DEATH(g.insert(1, {5.0, 5.0}), "duplicate insert");
}

TEST(SpatialGridDeathTest, RemoveUnknownAborts) {
  SpatialGrid g{100.0};
  EXPECT_DEATH(g.remove(9), "unknown id");
}

TEST(SpatialGrid, NegativeCoordinates) {
  SpatialGrid g{50.0};
  g.insert(1, {-120.0, -80.0});
  g.insert(2, {-110.0, -85.0});
  EXPECT_EQ(g.query_radius({-115.0, -82.0}, 20.0).size(), 2u);
}

// Property: grid query matches brute force for random point clouds, across
// cell sizes and query radii.
class SpatialGridProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(SpatialGridProperty, MatchesBruteForce) {
  const auto [cell, radius, n] = GetParam();
  SpatialGrid g{cell};
  Rng rng{static_cast<std::uint64_t>(n) * 7919 + 13};
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0)};
    pts.push_back(p);
    g.insert(static_cast<SpatialGrid::Id>(i), p);
  }
  for (int probe = 0; probe < 20; ++probe) {
    const Vec2 c{rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0)};
    std::vector<SpatialGrid::Id> expected;
    for (int i = 0; i < n; ++i) {
      if ((pts[static_cast<std::size_t>(i)] - c).norm_sq() < radius * radius) {
        expected.push_back(static_cast<SpatialGrid::Id>(i));
      }
    }
    EXPECT_EQ(g.query_radius(c, radius), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialGridProperty,
    ::testing::Combine(::testing::Values(25.0, 100.0, 400.0),
                       ::testing::Values(30.0, 150.0, 600.0),
                       ::testing::Values(10, 100, 400)));

}  // namespace
}  // namespace vanet::core
