// Crash-proof experiment engine (RunGuards): failure capture into structured
// records, deterministic retry seeds, the event-budget watchdog, and
// byte-identical sink output across worker counts even when runs fail.
#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace vanet::sim {
namespace {

ScenarioConfig micro_highway() {
  ScenarioConfig cfg;
  cfg.mobility = MobilityKind::kHighway;
  cfg.highway.length = 1000.0;
  cfg.vehicles_per_direction = 6;
  cfg.duration_s = 2.0;
  cfg.traffic.flows = 2;
  cfg.traffic.start_s = 0.2;
  cfg.traffic.stop_s = 1.8;
  return cfg;
}

ExperimentSpec broken_spec() {
  // Scenario construction throws inside the worker (not in expand): graph
  // mobility over a nonexistent map file.
  ExperimentSpec spec;
  spec.base = micro_highway();
  spec.base.mobility = MobilityKind::kGraph;
  spec.base.map.source = MapSource::kFile;
  spec.base.map.file = "/nonexistent/engine_guards_map.csv";
  spec.protocols = {"aodv"};
  spec.seeds = {1, 2};
  return spec;
}

TEST(EngineGuards, CaptureTurnsExceptionsIntoFailureRecords) {
  const ExperimentSpec spec = broken_spec();  // guards.capture defaults true
  const ExperimentResult result = ExperimentEngine{1}.run(spec);
  ASSERT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.failures[0].protocol, "aodv");
  EXPECT_EQ(result.failures[0].seed, 1u);
  EXPECT_EQ(result.failures[0].last_seed, 1u);
  EXPECT_EQ(result.failures[0].attempts, 1);
  EXPECT_EQ(result.failures[0].kind, "exception");
  EXPECT_NE(result.failures[0].error.find("cannot open"), std::string::npos);
  EXPECT_EQ(result.failures[1].seed, 2u);
  // The cell row survives with zero healthy runs.
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].failed_runs, 2u);
  EXPECT_TRUE(result.cells[0].agg.runs.empty());
}

TEST(EngineGuards, MixedCellAggregatesOnlyHealthySeeds) {
  // One protocol works, one breaks in expand-safe ways? No — break per-run
  // via the event budget instead, which only some seeds can escape. Here we
  // simply check a healthy spec has no failures and failed_runs == 0.
  ExperimentSpec spec;
  spec.base = micro_highway();
  spec.protocols = {"aodv"};
  spec.seeds = {1, 2};
  const ExperimentResult result = ExperimentEngine{2}.run(spec);
  EXPECT_TRUE(result.failures.empty());
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].failed_runs, 0u);
  EXPECT_EQ(result.cells[0].agg.runs.size(), 2u);
}

TEST(EngineGuards, EventBudgetAbortsDeterministically) {
  ExperimentSpec spec;
  spec.base = micro_highway();
  spec.protocols = {"aodv"};
  spec.seeds = {1};
  spec.guards.max_events = 50;
  const ExperimentResult a = ExperimentEngine{1}.run(spec);
  const ExperimentResult b = ExperimentEngine{1}.run(spec);
  ASSERT_EQ(a.failures.size(), 1u);
  EXPECT_EQ(a.failures[0].kind, "event-budget");
  // Parameter-only message: identical bytes run to run.
  EXPECT_EQ(a.failures[0].error, "event budget exceeded: max_events=50");
  ASSERT_EQ(b.failures.size(), 1u);
  EXPECT_EQ(a.failures[0].error, b.failures[0].error);
}

TEST(EngineGuards, RetriesDeriveFreshSeedsAndAreCounted) {
  ExperimentSpec spec = broken_spec();
  spec.seeds = {9};
  spec.guards.retries = 3;
  const ExperimentResult result = ExperimentEngine{1}.run(spec);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].attempts, 4);
  EXPECT_EQ(result.failures[0].seed, 9u);
  EXPECT_EQ(result.failures[0].last_seed, derive_retry_seed(9, 3));
}

TEST(EngineGuards, DeriveRetrySeedIsStableAndWellSpread) {
  EXPECT_EQ(derive_retry_seed(42, 0), 42u);
  const std::uint64_t a1 = derive_retry_seed(42, 1);
  const std::uint64_t a2 = derive_retry_seed(42, 2);
  EXPECT_NE(a1, 42u);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(a1, derive_retry_seed(42, 1));  // pure function
  EXPECT_NE(derive_retry_seed(43, 1), a1);  // seed-sensitive
}

TEST(EngineGuards, FailFastKeepsTheLegacyThrowingContract) {
  ExperimentSpec spec = broken_spec();
  spec.guards.capture = false;
  EXPECT_THROW(ExperimentEngine{1}.run(spec), std::runtime_error);
  EXPECT_THROW(ExperimentEngine{4}.run(spec), std::runtime_error);
}

TEST(EngineGuards, GuardValidationHappensInExpand) {
  ExperimentSpec spec;
  spec.base = micro_highway();
  spec.guards.timeout_s = -1.0;
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec.guards.timeout_s = 0.0;
  spec.guards.retries = -1;
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(EngineGuards, FailureBytesIdenticalAcrossWorkerCounts) {
  // Two protocols x two seeds, all four runs killed by the event budget:
  // every sink byte — failure records included — must match jobs=1.
  ExperimentSpec spec;
  spec.base = micro_highway();
  spec.protocols = {"aodv", "flooding"};
  spec.seeds = {1, 2};
  spec.guards.max_events = 50;

  std::ostringstream serial, parallel;
  JsonlSink serial_sink{serial, /*include_runs=*/true};
  JsonlSink parallel_sink{parallel, /*include_runs=*/true};
  ExperimentEngine{1}.run(spec, serial_sink);
  ExperimentEngine{4}.run(spec, parallel_sink);
  EXPECT_EQ(serial.str(), parallel.str());
  EXPECT_NE(serial.str().find("\"type\":\"failure\""), std::string::npos);
  EXPECT_NE(serial.str().find("\"failed_runs\":2"), std::string::npos);
}

TEST(EngineGuards, SinksRenderFailures) {
  ExperimentSpec spec = broken_spec();
  spec.seeds = {1};

  std::ostringstream md_out, csv_out, jsonl_out;
  MarkdownSink md{md_out};
  CsvSink csv{csv_out};
  JsonlSink jsonl{jsonl_out};
  std::vector<ReportSink*> sinks{&md, &csv, &jsonl};
  const ExperimentResult result = ExperimentEngine{1}.run(spec, sinks);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(md_out.str().find("FAILED aodv"), std::string::npos);
  EXPECT_NE(csv_out.str().find("# failed,aodv"), std::string::npos);
  EXPECT_NE(jsonl_out.str().find("\"kind\":\"exception\""), std::string::npos);
}

TEST(EngineGuards, WatchdogDoesNotDisturbHealthyRuns) {
  // Generous guards on a healthy spec: same digests as no guards at all
  // (the wall-clock watchdog must never feed sim state).
  ExperimentSpec plain;
  plain.base = micro_highway();
  plain.protocols = {"aodv"};
  plain.seeds = {1};
  ExperimentSpec guarded = plain;
  guarded.guards.timeout_s = 3600.0;
  guarded.guards.max_events = 50'000'000;

  std::ostringstream plain_out, guarded_out;
  JsonlSink plain_sink{plain_out, true};
  JsonlSink guarded_sink{guarded_out, true};
  ExperimentEngine{1}.run(plain, plain_sink);
  ExperimentEngine{1}.run(guarded, guarded_sink);
  EXPECT_EQ(plain_out.str(), guarded_out.str());
}

}  // namespace
}  // namespace vanet::sim
