// Custom-map workflow: build an irregular road network with the map
// subsystem, round-trip it through the edge-list CSV schema, and route three
// protocol families over it with graph-constrained mobility — the vehicles
// drive on exactly the graph the routing layer reasons about, including a
// geometry protocol (zone) whose corridors follow the road route
// (`zone.geometry=route`) instead of the straight source→destination line.
//
// The same CSV path accepts converted real road networks:
//   ./build/vanet_cli run --set map.source=file --set map.file=town.csv
//       --protocols car,greedy,zone --set zone.geometry=route
//
//   ./build/example_custom_map
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "map/builders.h"
#include "sim/scenario.h"
#include "sim/table.h"

int main() {
  using namespace vanet;

  // 1. A small town that no lattice can express: a kite-shaped ring road,
  //    a diagonal high street and a spur to an outlying neighbourhood.
  map::RoadGraph town;
  town.add_intersection({0.0, 0.0});       // 0: west gate
  town.add_intersection({600.0, -150.0});  // 1: south ring
  town.add_intersection({1200.0, 0.0});    // 2: east gate
  town.add_intersection({600.0, 450.0});   // 3: north ring
  town.add_intersection({600.0, 150.0});   // 4: market square
  town.add_intersection({1500.0, 350.0});  // 5: outlying neighbourhood
  town.add_segment(0, 1);  // ring road
  town.add_segment(1, 2);
  town.add_segment(2, 3);
  town.add_segment(3, 0);
  town.add_segment(0, 4);  // high street through the market
  town.add_segment(4, 2);
  town.add_segment(3, 4);
  town.add_segment(2, 5);  // spur
  std::cout << "# Custom map: " << town.intersection_count()
            << " intersections, " << town.segment_count() << " segments, "
            << sim::fmt(town.total_length() / 1000.0, 2) << " km of road\n";

  // 2. CSV round-trip — the same schema an imported real map would use.
  const auto path = std::filesystem::temp_directory_path() / "vanet_town.csv";
  map::save_edge_list_csv_file(town, path.string());
  std::cout << "wrote + reloading " << path << "\n\n";

  // 3. Drive 50 vehicles over the reloaded map and compare a probability-
  //    family protocol (CAR: anchor paths over the road graph), a geographic
  //    protocol (greedy forwarding), and a geometry protocol whose corridor
  //    follows the road route (zone with `zone.geometry=route`) — all on
  //    identical topology, with per-protocol delivery counts.
  sim::Table table(
      {"protocol", "family", "geometry", "PDR", "delay ms", "hops",
       "delivered/originated"});
  for (const char* protocol : {"car", "greedy", "zone"}) {
    sim::ScenarioConfig cfg;
    cfg.map.source = sim::MapSource::kFile;
    cfg.map.file = path.string();
    cfg.mobility = sim::MobilityKind::kGraph;
    cfg.vehicles = 50;
    cfg.graph.replan_prob = 0.1;
    cfg.protocol = protocol;
    // Zone flooding stays on streets that lead to the destination: corridors
    // are road routes (map::RouteCorridor), not straight lines across blocks.
    cfg.zone_geometry = routing::GeometryMode::kRoute;
    cfg.duration_s = 60.0;
    cfg.traffic.flows = 8;
    cfg.traffic.rate_pps = 1.0;
    cfg.traffic.start_s = 5.0;
    cfg.traffic.stop_s = 50.0;
    cfg.seed = 11;
    sim::Scenario s{cfg};
    s.run();
    const auto r = s.report();
    const bool road_geometry = std::string(protocol) == "zone";
    table.add_row({std::string(protocol),
                   std::string(routing::to_string(
                       routing::ProtocolRegistry::find(protocol)->category)),
                   road_geometry ? "route" : "-", sim::fmt(r.pdr, 3),
                   sim::fmt(r.delay_ms_mean, 1), sim::fmt(r.hops_mean, 2),
                   std::to_string(r.delivered) + " / " +
                       std::to_string(r.originated)});
  }
  table.print(std::cout);
  std::cout << "\nAll rows ran on the reloaded CSV map; CAR's anchor paths, "
               "the density oracle and zone's route corridors used the same "
               "RoadGraph instance the vehicles drove on.\n";
  std::filesystem::remove(path);
  return 0;
}
