// City scenario: every implemented protocol (one per registry entry) on a
// 5x5-block Manhattan grid with identical traffic — the full taxonomy of
// Fig. 1 exercised side by side.
//
//   ./build/examples/city_multiprotocol
#include <iostream>

#include "routing/registry.h"
#include "sim/runner.h"
#include "sim/table.h"

int main() {
  using namespace vanet;

  sim::ScenarioConfig cfg;
  cfg.mobility = sim::MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 5;
  cfg.manhattan.streets_y = 5;
  cfg.manhattan.block = 300.0;
  cfg.vehicles = 120;
  cfg.comm_range_m = 250.0;
  cfg.duration_s = 60.0;
  cfg.rsu_count = 4;  // used by drr; others ignore the RSUs
  cfg.bus_count = 6;  // used by bus
  cfg.traffic.flows = 10;
  cfg.traffic.rate_pps = 2.0;
  cfg.traffic.stop_s = 50.0;
  cfg.traffic.min_pair_distance_m = 500.0;

  std::cout << "# City (Manhattan 5x5, 120 vehicles): all protocols, "
               "identical traffic\n\n";
  sim::Table table({"category", "protocol", "PDR", "delay ms", "hops",
                    "ctrl+hello/delivered", "collisions"});
  for (const auto& info : routing::ProtocolRegistry::all()) {
    cfg.protocol = std::string(info.name);
    const sim::AggregateReport agg = sim::run_seeds(cfg, 2);
    table.add_row({std::string(routing::to_string(info.category)),
                   std::string(info.name), sim::fmt(agg.pdr.mean(), 3),
                   sim::fmt(agg.delay_ms.mean(), 1),
                   sim::fmt(agg.hops.mean(), 2),
                   sim::fmt(agg.control_per_delivered.mean(), 1),
                   sim::fmt(agg.collision_fraction.mean(), 3)});
  }
  table.print(std::cout);
  return 0;
}
