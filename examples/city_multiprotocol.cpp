// City scenario: every implemented protocol (one per registry entry) on a
// 5x5-block Manhattan grid with identical traffic — the full taxonomy of
// Fig. 1 exercised side by side.
//
// All (protocol, seed) runs execute in parallel on the ExperimentEngine;
// the table is identical to the historic serial loop's output.
//
//   ./build/example_city_multiprotocol
#include <iostream>

#include "routing/registry.h"
#include "sim/experiment.h"
#include "sim/table.h"

namespace {

class CitySink final : public vanet::sim::ReportSink {
 public:
  void on_aggregate(const vanet::sim::AggregateRecord& rec) override {
    using namespace vanet;
    const auto* info = routing::ProtocolRegistry::find(rec.protocol);
    const sim::AggregateReport& agg = rec.agg;
    table_.add_row({std::string(routing::to_string(info->category)),
                    rec.protocol, sim::fmt(agg.pdr.mean(), 3),
                    sim::fmt(agg.delay_ms.mean(), 1),
                    sim::fmt(agg.hops.mean(), 2),
                    sim::fmt(agg.control_per_delivered.mean(), 1),
                    sim::fmt(agg.collision_fraction.mean(), 3)});
  }
  void end() override { table_.print(std::cout); }

 private:
  vanet::sim::Table table_{{"category", "protocol", "PDR", "delay ms", "hops",
                            "ctrl+hello/delivered", "collisions"}};
};

}  // namespace

int main() {
  using namespace vanet;

  sim::ExperimentSpec spec;
  spec.base.mobility = sim::MobilityKind::kManhattan;
  spec.base.manhattan.streets_x = 5;
  spec.base.manhattan.streets_y = 5;
  spec.base.manhattan.block = 300.0;
  spec.base.vehicles = 120;
  spec.base.comm_range_m = 250.0;
  spec.base.duration_s = 60.0;
  spec.base.rsu_count = 4;  // used by drr; others ignore the RSUs
  spec.base.bus_count = 6;  // used by bus
  spec.base.traffic.flows = 10;
  spec.base.traffic.rate_pps = 2.0;
  spec.base.traffic.stop_s = 50.0;
  spec.base.traffic.min_pair_distance_m = 500.0;
  for (const auto& info : routing::ProtocolRegistry::all()) {
    spec.protocols.emplace_back(info.name);
  }
  spec.seeds = {1, 2};

  std::cout << "# City (Manhattan 5x5, 120 vehicles): all protocols, "
               "identical traffic\n\n";
  CitySink sink;
  sim::ExperimentEngine engine{0};  // all cores
  engine.run(spec, sink);
  return 0;
}
