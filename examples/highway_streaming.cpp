// The survey's motivating scenario (Sec. I): "a car that travels down an
// interstate and whose passengers are interested in viewing a particular
// movie. The various blocks of this movie happen to be available at various
// other cars on the interstate, possibly miles away."
//
// Four source vehicles each hold a range of movie blocks; the receiving car
// fetches them concurrently over multi-hop routes built by PBR (predicted
// link lifetimes). We report per-source fetch completion and delay.
//
//   ./build/examples/highway_streaming
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "sim/scenario.h"
#include "sim/table.h"

int main() {
  using namespace vanet;

  sim::ScenarioConfig cfg;
  cfg.mobility = sim::MobilityKind::kHighway;
  cfg.highway.length = 8000.0;  // "possibly miles away"
  cfg.highway.lanes_per_direction = 3;
  cfg.vehicles_per_direction = 80;
  cfg.comm_range_m = 250.0;
  cfg.duration_s = 90.0;
  cfg.protocol = "pbr";
  // The built-in CBR generator is parked outside the run window; this
  // example drives its own application traffic.
  cfg.traffic.flows = 1;
  cfg.traffic.start_s = 1000.0;
  cfg.traffic.stop_s = 1001.0;

  sim::Scenario scenario{cfg};
  auto& simulator = scenario.simulator();

  const net::NodeId receiver = 0;
  // Sources at increasing distances ahead of the receiver. Discovery floods
  // carry a 16-hop TTL (~3 km at 250 m radios), so "miles away" here means
  // up to ~1.6 miles — picked from the actual population at scenario start.
  const std::vector<double> target_distances = {800.0, 1400.0, 2000.0, 2600.0};
  std::vector<net::NodeId> sources;
  std::vector<double> initial_distance;
  // Same carriageway as the receiver (ids below vehicles_per_direction):
  // the movie blocks travel between cars cruising down the same interstate.
  const std::size_t same_direction_limit = scenario.vehicle_count() / 2;
  for (double want : target_distances) {
    net::NodeId best = receiver;
    double best_err = 1e18;
    for (std::size_t v = 1; v < same_direction_limit; ++v) {
      const auto id = static_cast<net::NodeId>(v);
      if (std::find(sources.begin(), sources.end(), id) != sources.end()) {
        continue;
      }
      const double d = (scenario.network().position(id) -
                        scenario.network().position(receiver))
                           .norm();
      const double err = std::abs(d - want);
      if (err < best_err) {
        best_err = err;
        best = id;
      }
    }
    sources.push_back(best);
    initial_distance.push_back((scenario.network().position(best) -
                                scenario.network().position(receiver))
                                   .norm());
  }
  constexpr int kBlocksPerSource = 40;
  constexpr std::size_t kBlockBytes = 1024;

  std::map<std::uint32_t, int> blocks_received;
  std::map<std::uint32_t, double> last_arrival_s;
  scenario.protocol_at(receiver).set_deliver_callback(
      [&](const net::Packet& p) {
        if (scenario.metrics().record_delivery(p.flow, p.seq, p.created_at,
                                               simulator.now(), p.hops)) {
          ++blocks_received[p.flow];
          last_arrival_s[p.flow] = simulator.now().as_seconds();
        }
      });

  // Each source streams its block range at 4 blocks/s starting at t = 5 s.
  for (std::uint32_t s = 0; s < sources.size(); ++s) {
    for (int b = 0; b < kBlocksPerSource; ++b) {
      const double when = 5.0 + 0.25 * b;
      simulator.schedule_at(core::SimTime::seconds(when), [&, s, b] {
        scenario.metrics().record_originated();
        scenario.protocol_at(sources[s]).originate(receiver, s,
                                                   static_cast<std::uint32_t>(b),
                                                   kBlockBytes);
      });
    }
  }

  scenario.run();

  std::cout << "# Movie-block fetch over an 8 km interstate (PBR, 160 "
               "vehicles, 4 sources x " << kBlocksPerSource << " blocks)\n\n";
  sim::Table table({"source car", "initial distance m", "blocks delivered",
                    "fetch ratio", "last block at s"});
  for (std::uint32_t s = 0; s < sources.size(); ++s) {
    table.add_row({std::to_string(sources[s]),
                   sim::fmt(initial_distance[s], 0),
                   sim::fmt_int(blocks_received[s]),
                   sim::fmt(blocks_received[s] / double(kBlocksPerSource), 2),
                   sim::fmt(last_arrival_s[s], 1)});
  }
  table.print(std::cout);

  const auto r = scenario.report();
  std::cout << "\noverall: " << scenario.metrics().delivered() << "/"
            << scenario.metrics().originated() << " blocks ("
            << sim::fmt(100.0 * r.pdr, 1) << "%), mean delay "
            << sim::fmt(r.delay_ms_mean, 1) << " ms, mean path "
            << sim::fmt(r.hops_mean, 1) << " hops, " << r.route_breaks
            << " route breaks healed by prediction ("
            << r.preemptive_rebuilds << " preemptive rebuilds)\n";
  return 0;
}
