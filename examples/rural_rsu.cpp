// Sec. V's story, measured: on a sparse rural highway the ad hoc network
// disconnects; roadside units with a wired backbone (DRR) and bus ferries
// (Kitani) restore delivery — and Table I's caveat "not working in rural
// area" appears when the infrastructure is absent.
//
//   ./build/examples/rural_rsu
#include <iostream>

#include "sim/runner.h"
#include "sim/table.h"

int main() {
  using namespace vanet;

  auto base = [] {
    sim::ScenarioConfig cfg;
    cfg.mobility = sim::MobilityKind::kHighway;
    cfg.highway.length = 8000.0;
    cfg.vehicles_per_direction = 6;  // one vehicle per ~1.3 km: disconnected
    cfg.comm_range_m = 250.0;
    cfg.duration_s = 120.0;
    cfg.traffic.flows = 6;
    cfg.traffic.rate_pps = 0.5;
    cfg.traffic.start_s = 10.0;
    cfg.traffic.stop_s = 90.0;
    cfg.traffic.min_pair_distance_m = 1500.0;
    return cfg;
  };

  struct Variant {
    const char* label;
    const char* protocol;
    int rsus;
    int buses;
  };
  const Variant variants[] = {
      {"greedy, no infrastructure", "greedy", 0, 0},
      {"DRR, no RSUs (rural)", "drr", 0, 0},
      {"DRR + 4 RSUs", "drr", 4, 0},
      {"DRR + 8 RSUs", "drr", 8, 0},
      {"bus ferries x 3", "bus", 0, 3},
  };

  std::cout << "# Sparse rural highway (12 vehicles on 8 km): who delivers?\n\n";
  sim::Table table({"variant", "PDR", "mean delay ms", "backbone frames"});
  for (const auto& v : variants) {
    sim::ScenarioConfig cfg = base();
    cfg.protocol = v.protocol;
    cfg.rsu_count = v.rsus;
    cfg.bus_count = v.buses;
    const sim::AggregateReport agg = sim::run_seeds(cfg, 3);
    table.add_row({v.label,
                   sim::fmt_pm(agg.pdr.mean(), agg.pdr.ci95_half_width(), 3),
                   sim::fmt(agg.delay_ms.mean(), 1),
                   sim::fmt_int(agg.total_backbone_frames)});
  }
  table.print(std::cout);

  std::cout << "\nReading: with 1.3 km between cars and 250 m radios, pure "
               "ad hoc forwarding has nothing to relay through. RSUs bridge "
               "the voids over the wired backbone (cheap delay); ferries "
               "physically carry packets (seconds of delay, but delivery). "
               "Remove the RSUs and DRR is as stranded as greedy — Table I's "
               "rural caveat.\n";
  return 0;
}
