// The SUMO-trace workflow (DESIGN.md substitution S4): record a mobility
// trace to the SUMO-like CSV schema, reload it from disk, and run a protocol
// over the played-back mobility. Drop a converted real `fcd-output` trace
// into the same schema (time,id,x,y,speed,angle; dense ids) and this code
// path runs it unchanged.
//
//   ./build/examples/trace_workflow
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/rng.h"
#include "mobility/idm_highway.h"
#include "mobility/trace.h"
#include "sim/scenario.h"
#include "sim/table.h"

int main() {
  using namespace vanet;

  // 1. Generate 60 s of IDM highway mobility and record it at 2 Hz.
  mobility::HighwayConfig hw;
  hw.length = 3000.0;
  core::Rng rng{99};
  mobility::IdmHighwayModel model{hw};
  model.populate(30, rng);
  mobility::TraceRecorder recorder;
  for (int step = 0; step <= 1200; ++step) {
    if (step % 5 == 0) recorder.capture(step * 0.1, model);
    model.step(0.1, rng);
  }

  // 2. Save to CSV and reload — the exact path a real SUMO trace would take.
  const auto path =
      std::filesystem::temp_directory_path() / "vanet_highway_trace.csv";
  recorder.trace().save_csv_file(path.string());
  const mobility::Trace loaded = mobility::Trace::load_csv_file(path.string());
  std::cout << "# Trace workflow: wrote + reloaded " << path << "\n"
            << "vehicles: " << loaded.vehicle_count()
            << ", span: " << sim::fmt(loaded.end_time(), 1) << " s\n\n";

  // 3. Run the same protocol over live IDM and over the played-back trace.
  sim::Table table({"mobility source", "PDR", "delay ms", "hops"});
  for (const bool use_trace : {false, true}) {
    sim::ScenarioConfig cfg;
    if (use_trace) {
      cfg.mobility = sim::MobilityKind::kTrace;
      cfg.trace = loaded;
    } else {
      cfg.mobility = sim::MobilityKind::kHighway;
      cfg.highway = hw;
      cfg.vehicles_per_direction = 30;
    }
    cfg.protocol = "greedy";
    cfg.duration_s = 55.0;
    cfg.traffic.flows = 6;
    cfg.traffic.rate_pps = 1.0;
    cfg.traffic.start_s = 5.0;
    cfg.traffic.stop_s = 45.0;
    cfg.traffic.min_pair_distance_m = 500.0;
    cfg.seed = 7;
    sim::Scenario s{cfg};
    s.run();
    const auto r = s.report();
    table.add_row({use_trace ? "trace playback (CSV)" : "live IDM model",
                   sim::fmt(r.pdr, 3), sim::fmt(r.delay_ms_mean, 1),
                   sim::fmt(r.hops_mean, 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe two rows differ only through trace sampling (2 Hz "
               "waypoints, linear interpolation) and independent traffic "
               "endpoints drawn over different populations.\n";
  std::filesystem::remove(path);
  return 0;
}
