// protocol_probe — run one protocol in a fixed city scenario and dump the
// full diagnostic counter set (discoveries, RREP relays, drops, MAC
// failures). Useful when developing a new protocol policy.
//
//   ./build/examples/protocol_probe [protocol-name]
#include <cstdio>
#include <cstdlib>

#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace vanet;
  sim::ScenarioConfig cfg;
  cfg.mobility = sim::MobilityKind::kManhattan;
  cfg.manhattan.streets_x = 5;
  cfg.manhattan.streets_y = 5;
  cfg.manhattan.block = 300.0;
  cfg.vehicles = 120;
  cfg.comm_range_m = 250.0;
  cfg.duration_s = 60.0;
  cfg.rsu_count = 4;
  cfg.bus_count = 6;
  cfg.traffic.flows = 10;
  cfg.traffic.rate_pps = 2.0;
  cfg.traffic.stop_s = 50.0;
  cfg.traffic.min_pair_distance_m = 500.0;
  cfg.protocol = argc > 1 ? argv[1] : "aodv";
  cfg.seed = 1;
  sim::Scenario s{cfg};
  s.run();
  const auto r = s.report();
  std::printf("%s pdr=%.3f delivered=%llu events=%llu disc=%llu est=%llu breaks=%llu "
              "noroute=%llu ttl=%llu fwd=%llu ucfail=%llu at_tgt=%llu rrep=%llu relay=%llu strand=%llu\n",
              cfg.protocol.c_str(), r.pdr,
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(s.simulator().events_dispatched()),
              static_cast<unsigned long long>(s.events().discoveries_started),
              static_cast<unsigned long long>(s.events().routes_established),
              static_cast<unsigned long long>(s.events().route_breaks),
              static_cast<unsigned long long>(s.events().data_dropped_no_route),
              static_cast<unsigned long long>(s.events().data_dropped_ttl),
              static_cast<unsigned long long>(s.events().data_forwarded),
              static_cast<unsigned long long>(s.network().counters().unicast_failures),
              static_cast<unsigned long long>(s.events().rreq_at_target),
              static_cast<unsigned long long>(s.events().rrep_sent),
              static_cast<unsigned long long>(s.events().rrep_relayed),
              static_cast<unsigned long long>(s.events().rrep_stranded));
  return 0;
}
