// Quickstart: build a 4 km two-lane bidirectional highway with 60 vehicles
// per direction, run AODV and greedy over identical traffic, and print the
// headline metrics. ~5 seconds of wall clock.
//
//   ./build/examples/quickstart
#include <iostream>

#include "sim/runner.h"
#include "sim/table.h"

int main() {
  using namespace vanet;

  sim::ScenarioConfig cfg;
  cfg.mobility = sim::MobilityKind::kHighway;
  cfg.highway.length = 4000.0;
  cfg.highway.lanes_per_direction = 2;
  cfg.vehicles_per_direction = 60;
  cfg.comm_range_m = 250.0;
  cfg.duration_s = 60.0;
  cfg.traffic.flows = 8;
  cfg.traffic.rate_pps = 2.0;
  cfg.traffic.start_s = 5.0;
  cfg.traffic.stop_s = 50.0;

  std::cout << "# Quickstart: AODV vs greedy on a 4 km highway\n\n";
  sim::Table table({"protocol", "PDR", "delay ms", "hops",
                    "ctrl+hello frames/delivered", "route breaks"});
  for (const char* protocol : {"aodv", "greedy"}) {
    cfg.protocol = protocol;
    const sim::AggregateReport agg = sim::run_seeds(cfg, 3);
    table.add_row({std::string(protocol), sim::fmt(agg.pdr.mean(), 3),
                   sim::fmt(agg.delay_ms.mean(), 1),
                   sim::fmt(agg.hops.mean(), 2),
                   sim::fmt(agg.control_per_delivered.mean(), 2),
                   sim::fmt(agg.route_breaks.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nSame seed => same flows: protocols are compared on identical "
               "traffic.\n";
  return 0;
}
