#include "sim/sharded/halo.h"

#include "core/assert.h"
#include "core/spatial_grid.h"

namespace vanet::sim::sharded {

std::vector<std::vector<net::NodeId>> halo_members(
    const std::vector<core::Vec2>& positions, const std::vector<int>& owner,
    int regions, double range) {
  VANET_ASSERT(positions.size() == owner.size());
  VANET_ASSERT(regions >= 1 && range > 0.0);
  std::vector<std::vector<net::NodeId>> halos(
      static_cast<std::size_t>(regions));
  core::SpatialGrid grid{range};
  for (std::size_t i = 0; i < positions.size(); ++i) {
    grid.insert(static_cast<core::SpatialGrid::Id>(i), positions[i]);
  }
  std::vector<core::SpatialGrid::Id> near;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const int own = owner[i];
    VANET_ASSERT(own >= 0 && own < regions);
    grid.query_radius_into(positions[i], range,
                           static_cast<core::SpatialGrid::Id>(i), near);
    for (const core::SpatialGrid::Id j : near) {
      if (owner[static_cast<std::size_t>(j)] != own) {
        halos[static_cast<std::size_t>(own)].push_back(
            static_cast<net::NodeId>(i));
        break;
      }
    }
  }
  return halos;
}

}  // namespace vanet::sim::sharded
