#include "sim/sharded/sharded_scenario.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/assert.h"

namespace vanet::sim::sharded {

namespace {

void merge_events(routing::ProtocolEvents& into,
                  const routing::ProtocolEvents& from) {
  into.discoveries_started += from.discoveries_started;
  into.routes_established += from.routes_established;
  into.route_breaks += from.route_breaks;
  into.preemptive_rebuilds += from.preemptive_rebuilds;
  into.data_forwarded += from.data_forwarded;
  into.data_dropped_no_route += from.data_dropped_no_route;
  into.data_dropped_ttl += from.data_dropped_ttl;
  into.rreq_at_target += from.rreq_at_target;
  into.rrep_sent += from.rrep_sent;
  into.rrep_relayed += from.rrep_relayed;
  into.rrep_stranded += from.rrep_stranded;
  into.predicted_route_lifetime.merge(from.predicted_route_lifetime);
  into.observed_route_lifetime.merge(from.observed_route_lifetime);
  into.suppressed_rebroadcasts += from.suppressed_rebroadcasts;
  into.etx_link_abs_error.merge(from.etx_link_abs_error);
}

void add_counters(net::NetCounters& into, const net::NetCounters& from) {
  into.frames_enqueued += from.frames_enqueued;
  into.frames_sent += from.frames_sent;
  into.frames_dropped_queue += from.frames_dropped_queue;
  into.frames_dropped_down += from.frames_dropped_down;
  into.receptions_ok += from.receptions_ok;
  into.receptions_collided += from.receptions_collided;
  into.receptions_faded += from.receptions_faded;
  into.unicast_retries += from.unicast_retries;
  into.unicast_failures += from.unicast_failures;
  into.backbone_frames += from.backbone_frames;
  into.bytes_sent += from.bytes_sent;
  into.data_frames_sent += from.data_frames_sent;
  into.control_frames_sent += from.control_frames_sent;
  into.hello_frames_sent += from.hello_frames_sent;
}

}  // namespace

/// All per-shard state. Each shard is a complete single-threaded simulation
/// of the whole network restricted to the nodes it owns: its Network mirrors
/// every vehicle's position (the shared MobilityManager refreshes all K
/// mirrors during the serial coordinator phase), but MAC activity, protocol
/// instances, hello beacons and traffic sources exist only for owned nodes.
/// The RngManager is seeded with the scenario seed on every shard, so
/// streams with unsuffixed names ("traffic") draw identically everywhere
/// while ".shardN"-suffixed streams are decorrelated per shard.
struct ShardedScenario::Shard {
  explicit Shard(std::uint64_t seed) : rngs{seed} {}

  core::Simulator sim;
  core::RngManager rngs;
  std::unique_ptr<Bridge> bridge;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::HelloService> hello;  ///< null for hello-less protocols
  /// Indexed by node id; only owned slots are constructed.
  std::vector<std::unique_ptr<routing::RoutingProtocol>> protocols;
  routing::ProtocolEvents events;
  Metrics metrics;
  std::unique_ptr<CbrTraffic> traffic;
  std::unique_ptr<analysis::LifetimeMemo> memo;
  std::unique_ptr<map::SegmentSnapshot> snapshot;
  std::vector<net::NodeId> owned;
  /// Handoffs addressed to this shard, filled by the coordinator between
  /// windows and drained at the start of run_shard_window.
  std::vector<Handoff> inbox;
  std::uint64_t handoff_receptions = 0;
  std::uint64_t handoff_verdicts = 0;
};

/// The per-shard net::ShardBridge: routes cross-cut receptions and unicast
/// verdicts into the owning shard's outbox row. Called only from the shard's
/// own window execution, so the row needs no lock.
class ShardedScenario::Bridge final : public net::ShardBridge {
 public:
  Bridge(ShardedScenario& eng, int shard) : eng_{eng}, shard_{shard} {}

  bool owned(net::NodeId id) const override {
    return eng_.owner_of(id) == shard_;
  }

  void post_reception(const net::ChannelState::Tx& tx,
                      const net::Packet& packet, net::NodeId rx,
                      bool want_verdict) override {
    Handoff h;
    h.tx = tx;
    h.packet = packet;
    h.node = rx;
    h.want_verdict = want_verdict;
    eng_.outbox_[static_cast<std::size_t>(shard_)]
                [static_cast<std::size_t>(eng_.owner_of(rx))]
                    .push_back(std::move(h));
    ++eng_.shards_[static_cast<std::size_t>(shard_)]->handoff_receptions;
  }

  void post_verdict(net::NodeId tx_node, bool delivered) override {
    Handoff h;
    h.is_verdict = true;
    h.node = tx_node;
    h.delivered = delivered;
    eng_.outbox_[static_cast<std::size_t>(shard_)]
                [static_cast<std::size_t>(eng_.owner_of(tx_node))]
                    .push_back(std::move(h));
    ++eng_.shards_[static_cast<std::size_t>(shard_)]->handoff_verdicts;
  }

 private:
  ShardedScenario& eng_;
  int shard_;
};

ShardedScenario::ShardedScenario(const ScenarioConfig& cfg)
    : cfg_{cfg}, coord_rngs_{cfg_.seed} {
  validate_config();
  road_graph_ = build_road_graph(cfg_);
  segment_index_ = std::make_unique<map::SegmentIndex>(*road_graph_);
  if (cfg_.mobility == MobilityKind::kTrace &&
      cfg_.map.source == MapSource::kFile) {
    validate_trace_against_map(cfg_, *road_graph_, *segment_index_);
  }
  partition_ = map::partition_regions(*road_graph_, resolve_shard_count(cfg_));
  std::unique_ptr<mobility::MobilityModel> model =
      make_mobility_model(cfg_, road_graph_, coord_rngs_, &graph_model_);
  vehicle_count_ = model->vehicles().size();
  VANET_ASSERT_MSG(vehicle_count_ >= 2, "scenario needs at least two vehicles");
  // Static ownership: the region of the segment nearest each vehicle's
  // *initial* position owns its node for the whole run. Vehicles that drive
  // into another region keep their home shard — correctness never depends on
  // ownership matching current geometry, only locality does.
  node_shard_.resize(vehicle_count_);
  const auto& initial = model->vehicles();
  for (std::size_t v = 0; v < vehicle_count_; ++v) {
    const int seg = segment_index_->nearest_segment(initial[v].pos);
    node_shard_[v] = partition_.segment_region[static_cast<std::size_t>(seg)];
  }
  mobility_ = std::make_unique<mobility::MobilityManager>(
      coord_sim_, std::move(model), coord_rngs_.stream("mobility"),
      core::SimTime::seconds(cfg_.mobility_tick_s));
  const int k = partition_.regions;
  threads_ = cfg_.shard_threads == 0 ? k : std::min(cfg_.shard_threads, k);
  // Ferry designation and the density oracle are global, exactly as in the
  // serial engine; shards read them, only the coordinator writes.
  ferries_ = std::make_shared<routing::FerrySet>();
  if (cfg_.bus_count > 0) {
    const std::size_t stride =
        std::max<std::size_t>(1, vehicle_count_ / cfg_.bus_count);
    for (std::size_t b = 0; b < static_cast<std::size_t>(cfg_.bus_count) &&
                            b * stride < vehicle_count_;
         ++b) {
      ferries_->insert(static_cast<net::NodeId>(b * stride));
    }
  }
  density_ =
      std::make_shared<map::SegmentDensityOracle>(road_graph_->segment_count());
  outbox_.assign(static_cast<std::size_t>(k),
                 std::vector<std::vector<Handoff>>(static_cast<std::size_t>(k)));
  shards_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_.seed));
    build_shard(s);
  }
  schedule_density_updates();
}

ShardedScenario::~ShardedScenario() = default;

void ShardedScenario::validate_config() const {
  if (cfg_.phy != PhyModel::kUnitDisk) {
    throw std::invalid_argument(
        "scenario.shards > 1 requires phy.model=unitdisk: lossy models draw "
        "per-reception fades from the sender's RNG, and a cross-shard "
        "reception would consume them out of stream order");
  }
  if (cfg_.rsu_count > 0) {
    throw std::invalid_argument(
        "scenario.shards > 1 does not support RSUs (the wired backbone "
        "bypasses the region handoff contract)");
  }
  if (cfg_.fault.enabled) {
    throw std::invalid_argument(
        "scenario.shards > 1 does not support fault injection");
  }
  if (!(cfg_.shard_window_ms > 0.0) || cfg_.shard_window_ms > 20.0) {
    throw std::invalid_argument(
        "scenario.shard_window_ms must be in (0, 20] — the conservative "
        "window has to stay far below the MAC's 50 ms channel-memory "
        "horizon");
  }
  if (core::SimTime::seconds(cfg_.shard_window_ms / 1000.0) <=
      core::SimTime{}) {
    throw std::invalid_argument(
        "scenario.shard_window_ms rounds to zero simulated time");
  }
  if (cfg_.shard_threads < 0) {
    throw std::invalid_argument("scenario.shard_threads must be >= 0");
  }
}

void ShardedScenario::build_shard(int index) {
  Shard& sh = *shards_[static_cast<std::size_t>(index)];
  const std::string suffix = ".shard" + std::to_string(index);
  sh.net = std::make_unique<net::Network>(sh.sim, mobility_.get(),
                                          make_propagation(cfg_),
                                          sh.rngs.stream("net" + suffix),
                                          cfg_.net);
  for (std::size_t v = 0; v < vehicle_count_; ++v) {
    sh.net->add_vehicle_node(static_cast<mobility::VehicleId>(v));
  }
  sh.bridge = std::make_unique<Bridge>(*this, index);
  sh.net->set_shard_bridge(sh.bridge.get());
  for (std::size_t v = 0; v < vehicle_count_; ++v) {
    if (node_shard_[v] == index) {
      sh.owned.push_back(static_cast<net::NodeId>(v));
    }
  }
  // Same cache selection as the serial build_support, but per shard: caches
  // are mutable and shards run concurrently, so nothing cached is shared.
  // No snapshot prover either — its index fallback answers bit-identically.
  if (cfg_.lifetime_interp) {
    sh.memo = std::make_unique<analysis::LifetimeMemo>(
        analysis::LifetimeMemo::Mode::kInterp);
  } else if (cfg_.lifetime_memo) {
    sh.memo = std::make_unique<analysis::LifetimeMemo>();
  }
  sh.snapshot = std::make_unique<map::SegmentSnapshot>(*segment_index_);

  routing::ProtocolDeps deps;
  deps.signal = cfg_.signal;
  deps.road_graph = road_graph_;
  deps.density = density_;
  deps.ferries = ferries_;
  deps.yan_tickets = cfg_.yan_tickets;
  deps.zone_geometry = cfg_.zone_geometry;
  deps.grid_geometry = cfg_.grid_geometry;
  deps.gvgrid_geometry = cfg_.gvgrid_geometry;
  deps.etx = cfg_.etx;
  deps.flood_suppression = cfg_.flood_suppression;
  sh.protocols.resize(vehicle_count_);
  for (net::NodeId id : sh.owned) {
    sh.protocols[id] = routing::ProtocolRegistry::make(cfg_.protocol, deps);
  }
  const bool wants_hello =
      !sh.owned.empty() && sh.protocols[sh.owned.front()]->wants_hello();
  if (wants_hello) {
    sh.hello = std::make_unique<net::HelloService>(
        *sh.net, sh.rngs.stream("hello" + suffix), cfg_.hello);
  }
  for (net::NodeId id : sh.owned) {
    routing::ProtocolContext ctx;
    ctx.sim = &sh.sim;
    ctx.net = sh.net.get();
    ctx.hello = sh.hello.get();
    ctx.rng = &sh.rngs.stream("proto" + suffix);
    ctx.events = &sh.events;
    ctx.self = id;
    ctx.map = road_graph_.get();
    ctx.segments = segment_index_.get();
    ctx.lifetime_memo = sh.memo.get();
    ctx.seg_snapshot = sh.snapshot.get();
    sh.protocols[id]->bind(ctx);

    sh.net->set_receive_handler(id, [&sh, id](const net::Packet& p) {
      if (p.kind == net::PacketKind::kHello) {
        if (sh.hello) sh.hello->on_frame(id, p);
        return;
      }
      sh.protocols[id]->handle_frame(p);
    });
    sh.net->set_unicast_fail_handler(id, [&sh, id](const net::Packet& p) {
      sh.protocols[id]->handle_unicast_failure(p);
    });
    sh.protocols[id]->set_deliver_callback([&sh](const net::Packet& p) {
      sh.metrics.record_delivery(p.flow, p.seq, p.created_at, sh.sim.now(),
                                 p.hops);
    });
  }
  std::vector<routing::RoutingProtocol*> raw;
  raw.reserve(sh.protocols.size());
  for (auto& p : sh.protocols) raw.push_back(p.get());
  // The "traffic" stream is deliberately NOT suffixed: every shard draws the
  // identical flow list (endpoints + staggers) and reserves the identical
  // sequence blocks; the source filter then schedules only owned flows.
  sh.traffic = std::make_unique<CbrTraffic>(sh.sim, *sh.net, std::move(raw),
                                            vehicle_count_, sh.metrics,
                                            sh.rngs.stream("traffic"),
                                            cfg_.traffic);
  sh.traffic->set_source_filter(
      [this, index](net::NodeId id) { return owner_of(id) == index; });
}

const std::vector<net::NodeId>& ShardedScenario::owned_ids(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard))->owned;
}

void ShardedScenario::update_density() {
  // Always the full index rescan (serial `density.incremental=false` path):
  // the incremental prover leans on per-model tick bookkeeping that is not
  // worth sharing across K mirrors, and the rescan runs in the serial
  // coordinator phase where it cannot race anything.
  std::vector<double> counts(road_graph_->segment_count(), 0.0);
  for (const auto& v : mobility_->vehicles()) {
    const int seg = segment_index_->nearest_segment(v.pos);
    counts[static_cast<std::size_t>(seg)] += 1.0;
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    density_->set_count(static_cast<int>(s), counts[s]);
  }
}

void ShardedScenario::schedule_density_updates() {
  update_density();
  coord_sim_.schedule(core::SimTime::seconds(1.0),
                      [this] { schedule_density_updates(); });
}

void ShardedScenario::sample_reachability() {
  // Geometry is identical on every shard's Network mirror; shard 0's flow
  // list is identical to every other shard's (same "traffic" stream), so
  // sampling through shard 0 reproduces the serial oracle.
  const auto& flows = shards_.front()->traffic->flows();
  if (!flows.empty()) {
    net::Network& net = *shards_.front()->net;
    const std::vector<std::uint32_t> labels =
        net.reachability_components(net.nominal_range());
    for (const auto& flow : flows) {
      ++total_samples_;
      if (labels[flow.src] == labels[flow.dst]) ++reachable_samples_;
    }
  }
  coord_sim_.schedule(core::SimTime::seconds(1.0),
                      [this] { sample_reachability(); });
}

void ShardedScenario::distribute_mailboxes() {
  const int k = shards();
  for (int dst = 0; dst < k; ++dst) {
    auto& inbox = shards_[static_cast<std::size_t>(dst)]->inbox;
    // Drain order is part of the determinism contract: source shard
    // 0..K-1, generation order within a source.
    for (int src = 0; src < k; ++src) {
      auto& box = outbox_[static_cast<std::size_t>(src)]
                         [static_cast<std::size_t>(dst)];
      for (Handoff& h : box) inbox.push_back(std::move(h));
      box.clear();
    }
  }
}

void ShardedScenario::run_shard_window(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  // Resolve buffered handoffs first: the shard clock sits exactly at the
  // window-start barrier (run_before advanced it even through empty
  // windows), so resolution timestamps are a pure function of the window
  // grid — not of which worker thread got here first.
  for (Handoff& h : sh.inbox) {
    if (h.is_verdict) {
      sh.net->complete_unicast(h.node, h.delivered);
    } else {
      sh.net->deliver_foreign(h.tx, h.packet, h.node, h.want_verdict);
    }
  }
  sh.inbox.clear();
  if (final_window_) {
    // Inclusive: events scheduled exactly at the end instant run, matching
    // the serial engine's single run_until(duration).
    sh.sim.run_until(window_end_);
  } else {
    sh.sim.run_before(window_end_);
  }
}

void ShardedScenario::run() {
  if (ran_) return;
  ran_ = true;
  mobility_->start();
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    if (sh.hello) sh.hello->start(sh.owned);
    for (net::NodeId id : sh.owned) sh.protocols[id]->start();
    sh.traffic->start();
  }
  if (cfg_.sample_reachability) {
    coord_sim_.schedule(core::SimTime::seconds(cfg_.traffic.start_s),
                        [this] { sample_reachability(); });
  }
  const core::SimTime end = core::SimTime::seconds(cfg_.duration_s);
  const core::SimTime window =
      core::SimTime::seconds(cfg_.shard_window_ms / 1000.0);

  // Persistent worker pool. Thread t drives shards t, t+T, t+2T, ... in
  // increasing order, so any thread count executes the same shard sequences
  // — threads=1 is the serial reference execution of the identical model.
  std::barrier<> start_gate(threads_ + 1);
  std::barrier<> finish_gate(threads_ + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t) {
    workers.emplace_back([this, t, &start_gate, &finish_gate] {
      while (true) {
        start_gate.arrive_and_wait();
        if (stop_workers_) return;
        for (int s = t; s < shards(); s += threads_) run_shard_window(s);
        finish_gate.arrive_and_wait();
      }
    });
  }

  core::SimTime now{};
  while (true) {
    // Serial coordinator phase: mobility ticks (which refresh every shard's
    // position mirror through the Network tick listeners), density refresh
    // and reachability samples all run while the workers are parked.
    coord_sim_.run_until(now);
    // Conservative window edge: never past the next coordinator event, so
    // global state is frozen from every shard's point of view inside a
    // window — the core lookahead argument.
    core::SimTime next = std::min(now + window, coord_sim_.next_event_time());
    next = std::min(next, end);
    window_end_ = next;
    final_window_ = next >= end;
    distribute_mailboxes();
    start_gate.arrive_and_wait();   // publish window, release workers
    finish_gate.arrive_and_wait();  // all shards reached the window edge
    now = next;
    if (final_window_) break;
  }
  stop_workers_ = true;
  start_gate.arrive_and_wait();
  for (std::thread& w : workers) w.join();
  // Coordinator events at exactly the end instant (final mobility tick on
  // round durations) still run, as they would under the serial engine.
  coord_sim_.run_until(end);
}

ScenarioReport ShardedScenario::report() const {
  Metrics merged;
  net::NetCounters counters{};
  routing::ProtocolEvents events;
  // Shard order 0..K-1 is fixed, so merged RunningStats (order-sensitive in
  // floating point) are as deterministic as everything else.
  for (const auto& shp : shards_) {
    merged.merge_from(shp->metrics);
    add_counters(counters, shp->net->counters());
    merge_events(events, shp->events);
  }
  return assemble_report(cfg_, merged, counters, events, reachable_samples_,
                         total_samples_);
}

std::uint64_t ShardedScenario::events_dispatched() const {
  std::uint64_t total = coord_sim_.events_dispatched();
  for (const auto& shp : shards_) total += shp->sim.events_dispatched();
  return total;
}

core::EventQueue::AllocStats ShardedScenario::scheduler_stats() const {
  core::EventQueue::AllocStats total = coord_sim_.scheduler_stats();
  for (const auto& shp : shards_) {
    const core::EventQueue::AllocStats& s = shp->sim.scheduler_stats();
    total.slab_allocations += s.slab_allocations;
    total.oversize_callbacks += s.oversize_callbacks;
    total.peak_pending = std::max(total.peak_pending, s.peak_pending);
  }
  return total;
}

std::uint64_t ShardedScenario::handoff_receptions() const {
  std::uint64_t total = 0;
  for (const auto& shp : shards_) total += shp->handoff_receptions;
  return total;
}

std::uint64_t ShardedScenario::handoff_verdicts() const {
  std::uint64_t total = 0;
  for (const auto& shp : shards_) total += shp->handoff_verdicts;
  return total;
}

}  // namespace vanet::sim::sharded
