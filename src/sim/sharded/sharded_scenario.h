// Region-sharded scenario engine: one event loop per map region.
//
// The serial Scenario runs every event of a run through one Simulator. This
// engine partitions the road graph into K contiguous regions
// (map::partition_regions), gives each region its own Simulator + Network +
// protocol instances + traffic source, and advances the shards in lockstep
// windows of `scenario.shard_window_ms` under a conservative-lookahead
// contract:
//
//  - Ownership: every node belongs to exactly one shard — the region owning
//    the road segment nearest its *initial* position. The owner drives the
//    node's MAC, protocol instance and hello beacons ("owner wins"); every
//    other shard holds a read-only position mirror (its Network replica
//    tracks all N vehicles off the shared MobilityManager), so carrier
//    sense and reception fan-out see the same geometry everywhere.
//  - Windows: all shards execute events in [T, T+W) independently, then
//    barrier. Cross-shard receptions discovered inside a window are posted
//    through net::ShardBridge into per-(src,dst) mailboxes and resolved by
//    the receiver's shard at the next barrier — at most W late. W must stay
//    far below the MAC's 50 ms channel-memory horizon (enforced: W <= 20 ms).
//  - The coordinator loop owns global services (mobility ticks, the density
//    oracle refresh, reachability sampling) and only runs between windows;
//    window edges always land exactly on coordinator event times, so
//    position updates happen at the same simulated instants as serially.
//  - Determinism: partition, ownership, per-shard RNG streams and mailbox
//    drain order (source shard 0..K-1, generation order within a source)
//    are all pure functions of the config — results are bit-identical for
//    any worker-thread count, which the digest-equivalence tests pin
//    (threads=1 vs threads=K).
//
// Restrictions (validated at construction): phy=unitdisk (cross-cut
// receptions must not consume fade draws), no RSUs and no fault plan. See
// docs/ARCHITECTURE.md "Sharded engine" for the full fidelity contract and
// the documented deviations from the serial MAC at region cuts.
#pragma once

#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/lifetime_memo.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "map/region_partition.h"
#include "map/segment_index.h"
#include "map/segment_snapshot.h"
#include "mobility/mobility_manager.h"
#include "net/hello.h"
#include "net/network.h"
#include "net/shard_bridge.h"
#include "routing/registry.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/traffic.h"

namespace vanet::sim::sharded {

/// One buffered cross-shard message: a reception handoff or, flowing the
/// other way, the decode verdict a parked unicast sender waits on.
struct Handoff {
  bool is_verdict = false;
  net::ChannelState::Tx tx;  ///< the foreign frame (reception only)
  net::Packet packet;        ///< frame payload (reception only)
  /// Receiver id (reception) or transmitter id (verdict).
  net::NodeId node = 0;
  bool want_verdict = false;  ///< reception: answer with a verdict
  bool delivered = false;     ///< verdict payload
};

class ShardedScenario {
 public:
  /// Builds the K-shard model for `cfg` (effective K from
  /// resolve_shard_count, clamped by the partitioner to the segment count).
  /// Throws std::invalid_argument on configs outside the shard contract.
  explicit ShardedScenario(const ScenarioConfig& cfg);
  ~ShardedScenario();

  ShardedScenario(const ShardedScenario&) = delete;
  ShardedScenario& operator=(const ShardedScenario&) = delete;

  /// Run the full configured duration (idempotent; runs once).
  void run();
  ScenarioReport report() const;

  core::Simulator& coordinator() { return coord_sim_; }
  mobility::MobilityManager& mobility() { return *mobility_; }
  std::size_t vehicle_count() const { return vehicle_count_; }
  const map::RoadGraph& road_graph() const { return *road_graph_; }

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return threads_; }
  const map::RegionPartition& partition() const { return partition_; }
  /// Owning shard of node `id`.
  int owner_of(net::NodeId id) const {
    return node_shard_[static_cast<std::size_t>(id)];
  }
  const std::vector<net::NodeId>& owned_ids(int shard) const;

  /// Whole-run totals across coordinator + all shard loops.
  std::uint64_t events_dispatched() const;
  core::EventQueue::AllocStats scheduler_stats() const;
  /// Cross-shard traffic telemetry (receptions handed off / verdicts sent).
  std::uint64_t handoff_receptions() const;
  std::uint64_t handoff_verdicts() const;

 private:
  class Bridge;
  struct Shard;

  void validate_config() const;
  void build_shard(int index);
  void update_density();
  void schedule_density_updates();
  void sample_reachability();
  void distribute_mailboxes();
  void run_shard_window(int shard);
  void worker_main(int thread_index);

  ScenarioConfig cfg_;
  core::Simulator coord_sim_;
  core::RngManager coord_rngs_;
  std::shared_ptr<map::RoadGraph> road_graph_;
  std::unique_ptr<map::SegmentIndex> segment_index_;
  map::RegionPartition partition_;
  std::unique_ptr<mobility::MobilityManager> mobility_;
  mobility::GraphMobilityModel* graph_model_ = nullptr;
  std::size_t vehicle_count_ = 0;
  std::vector<int> node_shard_;  ///< node id -> owning shard
  int threads_ = 1;

  std::shared_ptr<map::SegmentDensityOracle> density_;
  std::shared_ptr<routing::FerrySet> ferries_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// outbox_[src][dst]: written only by shard src's thread inside a window,
  /// moved into dst's inbox by the coordinator between windows (the barrier
  /// orders the two phases, so no lock is ever needed).
  std::vector<std::vector<std::vector<Handoff>>> outbox_;

  // Window state published by the coordinator before releasing the workers.
  core::SimTime window_end_{};
  bool final_window_ = false;
  bool stop_workers_ = false;

  std::uint64_t reachable_samples_ = 0;
  std::uint64_t total_samples_ = 0;
  bool ran_ = false;
};

}  // namespace vanet::sim::sharded
