// Halo membership: which nodes sit close enough to a region cut to matter.
//
// A node is in shard s's halo when it is owned by s and some node owned by a
// *different* shard lies strictly within `range` of it — exactly the nodes
// whose transmissions or receptions can cross a region boundary this
// instant, and therefore the upper bound on cross-shard handoff traffic the
// window barriers must carry. The engine's correctness never depends on the
// halo (the ShardBridge resolves crossings per frame); the set is the
// introspection/diagnostic view: tests pin it against a brute-force O(N^2)
// oracle, and the partition quality of a map can be judged by how small its
// halos stay.
#pragma once

#include <vector>

#include "core/vec2.h"
#include "net/packet.h"

namespace vanet::sim::sharded {

/// Per-shard halo membership for one position snapshot.
///
/// `positions[i]` and `owner[i]` describe node i; `owner` values must lie in
/// [0, regions). Returns `regions` vectors, each sorted ascending (grid
/// queries are id-sorted and ids are visited in order), with node i present
/// in exactly `owner[i]`'s vector iff some j with `owner[j] != owner[i]` has
/// |positions[i] - positions[j]| < range. Cost is the usual hash-grid
/// O(N * neighborhood) rather than O(N^2).
std::vector<std::vector<net::NodeId>> halo_members(
    const std::vector<core::Vec2>& positions, const std::vector<int>& owner,
    int regions, double range);

}  // namespace vanet::sim::sharded
