#include "sim/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/assert.h"

namespace vanet::sim {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

void Table::add_row(std::vector<std::string> cells) {
  VANET_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_int(std::uint64_t value) { return std::to_string(value); }

std::string fmt_pm(double mean, double half_width, int precision) {
  return fmt(mean, precision) + " ± " + fmt(half_width, precision);
}

}  // namespace vanet::sim
