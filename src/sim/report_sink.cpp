#include "sim/report_sink.h"

#include <cstdio>
#include <ostream>

#include "sim/config_kv.h"
#include "sim/table.h"

namespace vanet::sim {

namespace {

/// Shortest round-trip decimal representation (machine-readable sinks).
std::string num(double v) { return format_double(v); }

}  // namespace

ReportSink::~ReportSink() = default;
void ReportSink::begin(const std::vector<std::string>&) {}
void ReportSink::on_run(const RunRecord&) {}
void ReportSink::on_failure(const FailureRecord&) {}
void ReportSink::on_aggregate(const AggregateRecord&) {}
void ReportSink::end() {}

// ------------------------------------------------------------- markdown ---

void MarkdownSink::begin(const std::vector<std::string>& axis_keys) {
  axis_keys_ = axis_keys;
  rows_.clear();
  failure_lines_.clear();
}

void MarkdownSink::on_aggregate(const AggregateRecord& rec) {
  std::vector<std::string> row;
  row.push_back(rec.protocol);
  for (const auto& [key, value] : rec.axes) {
    (void)key;
    row.push_back(value);
  }
  const AggregateReport& a = rec.agg;
  row.push_back(fmt_int(a.runs.size()));
  row.push_back(fmt_pm(a.pdr.mean(), a.pdr.ci95_half_width(), 3));
  row.push_back(fmt(a.delay_ms.mean(), 1));
  row.push_back(fmt(a.hops.mean(), 2));
  row.push_back(fmt(a.control_per_delivered.mean(), 2));
  row.push_back(fmt(a.collision_fraction.mean(), 4));
  row.push_back(fmt(a.route_breaks.mean(), 1));
  row.push_back(fmt_int(a.total_delivered) + " / " +
                fmt_int(a.total_originated));
  rows_.push_back(std::move(row));
}

void MarkdownSink::on_failure(const FailureRecord& rec) {
  std::string line = "FAILED " + rec.protocol;
  for (const auto& [key, value] : rec.axes) {
    line += " " + key + "=" + value;
  }
  line += " seed=" + std::to_string(rec.seed) +
          " attempts=" + std::to_string(rec.attempts) + " [" + rec.kind +
          "]: " + rec.error;
  failure_lines_.push_back(std::move(line));
}

void MarkdownSink::end() {
  std::vector<std::string> headers;
  headers.push_back("protocol");
  for (const std::string& key : axis_keys_) headers.push_back(key);
  headers.insert(headers.end(),
                 {"seeds", "PDR", "delay ms", "hops", "ctrl+hello/deliv",
                  "collision frac", "route breaks", "delivered/originated"});
  Table table(std::move(headers));
  for (auto& row : rows_) table.add_row(std::move(row));
  table.print(out_);
  // Failures go after the table so a clean sweep prints exactly the classic
  // output; a dirty one still shows every healthy row.
  for (const std::string& line : failure_lines_) out_ << line << '\n';
}

// ------------------------------------------------------------------ csv ---

void CsvSink::begin(const std::vector<std::string>& axis_keys) {
  axis_keys_ = axis_keys;
  out_ << "protocol";
  for (const std::string& key : axis_keys_) out_ << ',' << key;
  out_ << ",seeds,pdr_mean,pdr_ci95,delay_ms_mean,hops_mean,"
          "control_per_delivered,collision_fraction,reachable_fraction,"
          "route_breaks_mean,discoveries_mean,originated,delivered,"
          "config_digest\n";
}

void CsvSink::on_failure(const FailureRecord& rec) {
  // Comment line, not a data row: parsers that split on ',' and skip '#'
  // keep working, and a clean sweep emits no extra bytes at all.
  out_ << "# failed," << rec.protocol;
  for (const auto& [key, value] : rec.axes) {
    (void)key;
    out_ << ',' << value;
  }
  out_ << ',' << rec.seed << ',' << rec.kind << ',' << rec.error << '\n';
}

void CsvSink::on_aggregate(const AggregateRecord& rec) {
  const AggregateReport& a = rec.agg;
  out_ << rec.protocol;
  for (const auto& [key, value] : rec.axes) {
    (void)key;
    out_ << ',' << value;
  }
  out_ << ',' << a.runs.size() << ',' << num(a.pdr.mean()) << ','
       << num(a.pdr.ci95_half_width()) << ',' << num(a.delay_ms.mean()) << ','
       << num(a.hops.mean()) << ',' << num(a.control_per_delivered.mean())
       << ',' << num(a.collision_fraction.mean()) << ','
       << num(a.reachable_fraction.mean()) << ',' << num(a.route_breaks.mean())
       << ',' << num(a.discoveries.mean()) << ',' << a.total_originated << ','
       << a.total_delivered << ',' << rec.config_digest << '\n';
}

// ---------------------------------------------------------------- jsonl ---

namespace {

void write_axes(std::ostream& out,
                const std::vector<std::pair<std::string, std::string>>& axes) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : axes) {
    if (!first) out << ",";
    first = false;
    out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  out << "}";
}

}  // namespace

void JsonlSink::on_run(const RunRecord& rec) {
  if (!include_runs_) return;
  const ScenarioReport& r = rec.report;
  out_ << "{\"type\":\"run\",\"protocol\":\"" << json_escape(rec.protocol)
       << "\",\"axes\":";
  write_axes(out_, rec.axes);
  out_ << ",\"seed\":" << rec.seed << ",\"config_digest\":\""
       << rec.config_digest << "\",\"pdr\":" << num(r.pdr)
       << ",\"delay_ms_mean\":" << num(r.delay_ms_mean)
       << ",\"hops_mean\":" << num(r.hops_mean)
       << ",\"originated\":" << r.originated
       << ",\"delivered\":" << r.delivered
       << ",\"control_frames\":" << r.control_frames
       << ",\"hello_frames\":" << r.hello_frames
       << ",\"data_frames\":" << r.data_frames
       << ",\"receptions_ok\":" << r.receptions_ok
       << ",\"collision_fraction\":" << num(r.collision_fraction)
       << ",\"reachable_fraction\":" << num(r.reachable_fraction)
       << ",\"route_breaks\":" << r.route_breaks
       << ",\"discoveries\":" << r.discoveries;
  // Throughput fields only exist on profiled runs (ExperimentSpec::profile):
  // an unprofiled sweep's JSONL stays byte-identical to historical output.
  if (rec.profiled) {
    out_ << ",\"wall_s\":" << num(rec.wall_s)
         << ",\"events_dispatched\":" << rec.events_dispatched
         << ",\"events_per_sec\":" << num(rec.events_per_sec())
         << ",\"shards\":" << rec.shards << ",\"threads\":" << rec.threads;
  }
  out_ << "}\n";
}

void JsonlSink::on_failure(const FailureRecord& rec) {
  out_ << "{\"type\":\"failure\",\"protocol\":\"" << json_escape(rec.protocol)
       << "\",\"axes\":";
  write_axes(out_, rec.axes);
  out_ << ",\"seed\":" << rec.seed << ",\"last_seed\":" << rec.last_seed
       << ",\"attempts\":" << rec.attempts << ",\"kind\":\""
       << json_escape(rec.kind) << "\",\"error\":\"" << json_escape(rec.error)
       << "\"}\n";
}

void JsonlSink::on_aggregate(const AggregateRecord& rec) {
  const AggregateReport& a = rec.agg;
  out_ << "{\"type\":\"aggregate\",\"protocol\":\"" << json_escape(rec.protocol)
       << "\",\"axes\":";
  write_axes(out_, rec.axes);
  out_ << ",\"seeds\":" << a.runs.size() << ",\"config_digest\":\""
       << rec.config_digest << "\",\"pdr_mean\":" << num(a.pdr.mean())
       << ",\"pdr_ci95\":" << num(a.pdr.ci95_half_width())
       << ",\"delay_ms_mean\":" << num(a.delay_ms.mean())
       << ",\"hops_mean\":" << num(a.hops.mean())
       << ",\"control_per_delivered\":" << num(a.control_per_delivered.mean())
       << ",\"collision_fraction\":" << num(a.collision_fraction.mean())
       << ",\"reachable_fraction\":" << num(a.reachable_fraction.mean())
       << ",\"route_breaks_mean\":" << num(a.route_breaks.mean())
       << ",\"discoveries_mean\":" << num(a.discoveries.mean())
       << ",\"originated\":" << a.total_originated
       << ",\"delivered\":" << a.total_delivered;
  // Only mention failures when there are any — a healthy sweep's JSONL is
  // byte-identical to pre-fault-capture output.
  if (rec.failed_runs > 0) out_ << ",\"failed_runs\":" << rec.failed_runs;
  if (rec.profiled) {
    out_ << ",\"wall_s_mean\":" << num(rec.wall_s.mean())
         << ",\"events_per_sec_mean\":" << num(rec.events_per_sec.mean());
  }
  out_ << "}\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vanet::sim
