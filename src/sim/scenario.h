// Scenario assembly: mobility + radio + protocol + traffic in one object.
//
// A Scenario owns the whole simulation stack for one run. Configurations are
// plain data so benches can sweep them; the same seed always reproduces the
// same run bit-for-bit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/lifetime_memo.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "map/segment_index.h"
#include "map/segment_snapshot.h"
#include "mobility/graph_mobility.h"
#include "mobility/idm_highway.h"
#include "mobility/manhattan_grid.h"
#include "mobility/mobility_manager.h"
#include "mobility/trace.h"
#include "net/hello.h"
#include "net/network.h"
#include "routing/registry.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "sim/traffic.h"

namespace vanet::sim {

enum class MobilityKind { kHighway, kManhattan, kTrace, kGraph };

/// Radio model (`phy.model` key): deterministic unit disk, log-normal
/// shadowing (slow fading), or Nakagami-m (fast fading) — see net/fading.h.
enum class PhyModel { kUnitDisk, kShadowing, kNakagami };

/// Where the scenario's road topology (map::RoadGraph) comes from.
enum class MapSource {
  kGrid,  ///< generated: Manhattan lattice (or highway line) from the config
  kFile,  ///< imported: edge-list CSV via map/builders.h
};

struct MapSpec {
  MapSource source = MapSource::kGrid;
  /// Edge-list CSV path, loaded at scenario construction (source=kFile only).
  /// A file map requires kGraph or kTrace mobility — the synthetic highway /
  /// Manhattan models generate their own geometry and would diverge from it.
  std::string file;
  /// Trace↔map coupling guard: with trace mobility over a file map, every
  /// trace sample must lie within this distance of some road segment, or the
  /// scenario throws naming the offending vehicle/sample (and CSV line when
  /// the trace was loaded from one). <= 0 disables the check. Ignores
  /// generated maps — those are built to the mobility config, not vice versa.
  double trace_tolerance_m = 25.0;
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  double duration_s = 60.0;
  double mobility_tick_s = 0.1;

  /// Sharded engine (`scenario.shards`, src/sim/sharded/): partition the
  /// road graph into this many regions, each with its own event loop and
  /// worker thread. 1 (default) is the serial path — bit-identical to every
  /// historical digest. 0 = auto (hardware threads, capped at 8). Values
  /// > 1 require phy=unitdisk, no RSUs and no fault plan (the cross-shard
  /// handoff contract; see docs/ARCHITECTURE.md "Sharded engine").
  int shards = 1;
  /// Worker threads driving the shards (`scenario.shard_threads`): 0 = one
  /// per shard; 1 = the serial reference execution of the same sharded
  /// model. Any thread count produces bit-identical results by construction
  /// (the digest-equivalence tests pin threads=1 against threads=K).
  int shard_threads = 0;
  /// Conservative lookahead window in milliseconds
  /// (`scenario.shard_window_ms`): shards run [T, T+W) independently and
  /// exchange cross-cut receptions at window barriers, so a cross-shard
  /// frame resolves at most W late. Must stay well under the MAC's 50 ms
  /// channel-memory horizon; values outside (0, 20] are rejected.
  double shard_window_ms = 1.0;

  MapSpec map;                      ///< road topology source (see src/map/)
  MobilityKind mobility = MobilityKind::kHighway;
  mobility::HighwayConfig highway;
  int vehicles_per_direction = 40;  ///< highway population (per direction)
  mobility::ManhattanConfig manhattan;
  int vehicles = 80;                ///< Manhattan / graph-mobility population
  /// kGraph: trip-based driving on the shared road graph (graph_mobility.h).
  mobility::GraphMobilityConfig graph;
  /// kTrace: played-back mobility (SUMO-like CSV; see mobility/trace.h).
  /// Vehicle ids must be dense 0..N-1 — renumber on conversion if needed.
  mobility::Trace trace;

  double comm_range_m = 250.0;      ///< unit-disk range
  /// Lossy-PHY selector. The legacy `shadowing` bool key reads/writes the
  /// kUnitDisk/kShadowing subset of this for config compatibility.
  PhyModel phy = PhyModel::kUnitDisk;
  int nakagami_m = 3;               ///< Nakagami shape (phy.model=nakagami)
  analysis::LogNormalParams signal; ///< shadowing/fading params (and REAR model)
  net::NetworkConfig net;

  /// Deterministic fault injection (`fault.*` keys; sim/fault_plan.h). With
  /// enabled=false nothing is constructed: no "fault" RNG stream, no events,
  /// runs bit-identical to a fault-free build.
  FaultConfig fault;

  int rsu_count = 0;                ///< evenly placed roadside units
  int bus_count = 0;                ///< vehicles designated as message ferries

  std::string protocol = "aodv";
  net::HelloConfig hello;
  int yan_tickets = 4;
  double car_cell_m = 500.0;        ///< road-graph granularity for CAR
  bool sample_reachability = true;  ///< 1 Hz src-dst connectivity oracle
  /// Density-oracle refresh strategy: vehicles whose mobility model proves
  /// the segment they drive on (MobilityModel::reported_segment) skip the
  /// per-vehicle SegmentIndex query at the 1 Hz refresh. Bit-identical to
  /// the full rescan by construction (see ambiguous_interior_segments);
  /// `density.incremental=false` forces the rescan, mainly for the
  /// equivalence test.
  bool density_incremental = true;
  /// Exact memo in front of the link-lifetime integration
  /// (analysis::LifetimeMemo): repeated (distance, relative-speed) inputs
  /// return the cached integral. Bit-identical to direct integration by
  /// construction; `lifetime.memo=false` disables it, mainly for the
  /// equivalence test.
  bool lifetime_memo = true;
  /// Opt-in interpolation table for the link-lifetime integral
  /// (`lifetime.interp=true`): bilinear between pre-integrated grid corners.
  /// RESULTS-CHANGING — reports differ from the exact integration, so this
  /// is off by default and pinned by its own golden digest row. Takes
  /// precedence over `lifetime.memo` when enabled.
  bool lifetime_interp = false;
  // Geometry backend of the road-geometry protocols (`zone.geometry` etc.,
  // values line|route — see routing::GeometryMode).
  routing::GeometryMode zone_geometry = routing::GeometryMode::kLine;
  routing::GeometryMode grid_geometry = routing::GeometryMode::kLine;
  routing::GeometryMode gvgrid_geometry = routing::GeometryMode::kLine;

  /// Link-quality estimator knobs (`etx.*` keys), shared by the `etx`
  /// protocol and ETX-ordered flood suppression (`flood.suppression=etx`,
  /// applied to the flooding + biswas protocols).
  routing::EtxConfig etx;
  routing::FloodSuppression flood_suppression = routing::FloodSuppression::kNone;

  TrafficConfig traffic;
};

/// Aggregated result of one run.
struct ScenarioReport {
  std::string protocol;
  double pdr = 0.0;
  double delay_ms_mean = 0.0;
  double delay_ms_p95_hint = 0.0;  ///< mean + 2 sd (normal approx)
  double hops_mean = 0.0;
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t control_frames = 0;
  std::uint64_t hello_frames = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t backbone_frames = 0;
  std::uint64_t receptions_ok = 0;     ///< successfully decoded frames (dup load)
  double control_per_delivered = 0.0;  ///< (control + hello) / delivered
  double collision_fraction = 0.0;     ///< collided / attempted receptions
  /// Fraction of (flow, second) samples whose endpoints were physically
  /// connectable through the range-disk graph (+ backbone) — the oracle
  /// upper bound on PDR. 0 when sampling is disabled.
  double reachable_fraction = 0.0;
  std::uint64_t route_breaks = 0;
  std::uint64_t discoveries = 0;
  std::uint64_t preemptive_rebuilds = 0;
  double predicted_lifetime_mean_s = 0.0;
  double observed_lifetime_mean_s = 0.0;

  /// Fault-injection results. Appended to the canonical string — and hence
  /// the digest — only when fault_enabled, so every pre-fault digest stays
  /// byte-identical with the fault layer compiled in and disabled.
  bool fault_enabled = false;
  std::uint64_t faulted_originated = 0;  ///< sent while a fault was active
  std::uint64_t faulted_delivered = 0;   ///< of those, delivered
  double pdr_under_fault = 0.0;
  std::uint64_t node_outages = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t segment_blocks = 0;
  std::uint64_t frames_dropped_down = 0;
  double recovery_latency_mean_s = 0.0;  ///< restart -> first decoded frame

  /// Link-quality family results. Appended to the canonical string — and
  /// hence the digest — only when linkquality_enabled (protocol=etx or a
  /// flood.suppression mode active), so pre-existing digests stay
  /// byte-identical.
  bool linkquality_enabled = false;
  double etx_link_error_mean = 0.0;     ///< mean |estimated - analytic| ETX
  std::uint64_t etx_link_samples = 0;   ///< links sampled for the error stat
  std::uint64_t suppressed_rebroadcasts = 0;
};

/// Canonical, lossless textual form of a report: every field on one
/// `name=value` line, doubles rendered as hexfloats so two reports compare
/// byte-identically iff they are bit-identical.
std::string canonical_report_string(const ScenarioReport& r);

/// 64-bit FNV-1a digest of canonical_report_string(), as 16 lowercase hex
/// chars. The determinism golden test and the throughput bench use this to
/// prove perf refactors leave the physics untouched.
std::string report_digest(const ScenarioReport& r);

namespace sharded {
class ShardedScenario;
}  // namespace sharded

/// Effective shard count for `cfg` on this machine: cfg.shards, with 0
/// (auto) resolving to the hardware thread count capped at 8. Always >= 1.
int resolve_shard_count(const ScenarioConfig& cfg);

/// Build helpers shared by the serial Scenario and the sharded engine, so
/// both paths assemble identical components from the same config + seed.
std::shared_ptr<map::RoadGraph> build_road_graph(const ScenarioConfig& cfg);
std::unique_ptr<mobility::MobilityModel> make_mobility_model(
    const ScenarioConfig& cfg, const std::shared_ptr<map::RoadGraph>& graph,
    core::RngManager& rngs, mobility::GraphMobilityModel** graph_model_out);
std::unique_ptr<net::PropagationModel> make_propagation(
    const ScenarioConfig& cfg);
void validate_trace_against_map(const ScenarioConfig& cfg,
                                const map::RoadGraph& graph,
                                const map::SegmentIndex& index);
/// Assemble the protocol-independent report core from (possibly merged)
/// collectors. The serial report() adds the fault block on top; sharded runs
/// never have one (faults are excluded by the shard restrictions).
ScenarioReport assemble_report(const ScenarioConfig& cfg,
                               const Metrics& metrics,
                               const net::NetCounters& counters,
                               const routing::ProtocolEvents& events,
                               std::uint64_t reachable_samples,
                               std::uint64_t total_samples);

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  /// Run the full configured duration (idempotent; runs once).
  void run();

  ScenarioReport report() const;

  /// True when this run executes on the sharded engine (effective shards
  /// > 1). The component accessors below that expose serial-only internals
  /// assert against it.
  bool is_sharded() const { return sharded_engine_ != nullptr; }
  /// Effective shard / worker-thread counts (1/1 on the serial path).
  int shard_count() const;
  int shard_thread_count() const;
  /// Events dispatched across every event loop of the run (the one serial
  /// loop, or coordinator + all shard loops), and the summed scheduler
  /// allocation telemetry. The timed runner reads these instead of poking
  /// simulator() so both paths report whole-run totals.
  std::uint64_t events_dispatched() const;
  core::EventQueue::AllocStats scheduler_stats() const;
  /// The sharded engine (null on the serial path); tests reach through this
  /// for partition/ownership introspection.
  sharded::ShardedScenario* sharded_engine() { return sharded_engine_.get(); }

  // Component access for tests and benches. simulator() is the coordinator
  // loop on sharded runs; the others are serial-path only.
  core::Simulator& simulator();
  net::Network& network();
  mobility::MobilityManager& mobility();
  net::HelloService* hello() { return hello_.get(); }
  Metrics& metrics();
  routing::ProtocolEvents& events();
  routing::RoutingProtocol& protocol_at(net::NodeId id) {
    return *protocols_.at(id);
  }
  const CbrTraffic& traffic() const { return *traffic_; }
  const ScenarioConfig& config() const { return cfg_; }
  /// Null unless `fault.enabled=true`.
  FaultPlan* fault_plan() { return fault_plan_.get(); }
  /// Null unless the scenario uses graph mobility.
  mobility::GraphMobilityModel* graph_model() { return graph_model_; }
  std::size_t vehicle_count() const;
  /// The shared road topology (mobility + routing both reference it).
  const map::RoadGraph& road_graph() const;
  /// Scenario-owned caches (see docs/ARCHITECTURE.md, "Scenario-owned
  /// caches"); the memo is null when `lifetime.memo=false` and
  /// `lifetime.interp=false`.
  const analysis::LifetimeMemo* lifetime_memo() const {
    return lifetime_memo_.get();
  }
  const map::SegmentSnapshot* segment_snapshot() const {
    return seg_snapshot_.get();
  }

 private:
  void build_map();
  void build_mobility();
  void build_network();
  void build_support();
  void build_protocols();
  void build_traffic();
  void build_faults();
  void update_density();
  void schedule_density_updates();
  void sample_reachability();

  ScenarioConfig cfg_;
  core::Simulator sim_;
  core::RngManager rngs_;
  std::unique_ptr<mobility::MobilityManager> mobility_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::HelloService> hello_;
  std::vector<std::unique_ptr<routing::RoutingProtocol>> protocols_;
  routing::ProtocolEvents events_;
  Metrics metrics_;
  std::unique_ptr<CbrTraffic> traffic_;
  std::unique_ptr<FaultPlan> fault_plan_;
  /// Borrowed view of the mobility model when it is graph-based (the manager
  /// owns it); the fault plan drives segment blocks through it.
  mobility::GraphMobilityModel* graph_model_ = nullptr;
  std::size_t vehicle_count_ = 0;

  std::shared_ptr<map::RoadGraph> road_graph_;
  std::unique_ptr<map::SegmentIndex> segment_index_;
  // Scenario-owned caches, shared (non-owning) with every protocol instance
  // via ProtocolContext. Both serve bit-identical values to the uncached
  // queries they stand in for (the interp memo mode excepted, by opt-in).
  std::unique_ptr<analysis::LifetimeMemo> lifetime_memo_;
  std::unique_ptr<map::SegmentSnapshot> seg_snapshot_;
  std::shared_ptr<map::SegmentDensityOracle> density_;
  /// Segments whose interiors cannot prove nearest-segment identity; only
  /// populated when the incremental density path is active (graph mobility).
  std::vector<bool> segment_ambiguous_;
  bool incremental_density_ = false;
  std::shared_ptr<routing::FerrySet> ferries_;
  std::uint64_t reachable_samples_ = 0;
  std::uint64_t total_samples_ = 0;
  bool ran_ = false;
  /// Non-null iff the effective shard count is > 1: the whole run lives in
  /// the sharded engine and every serial member above it stays unbuilt.
  std::unique_ptr<sharded::ShardedScenario> sharded_engine_;
};

}  // namespace vanet::sim
