#include "sim/config_kv.h"

#include <charconv>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace vanet::sim {

std::string format_double(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, end);
}

namespace {

std::string fmt_value(double v) { return format_double(v); }
std::string fmt_value(bool v) { return v ? "true" : "false"; }
template <typename T>
std::string fmt_value(T v)
  requires std::is_integral_v<T>
{
  return std::to_string(v);
}

std::string fmt_value(MobilityKind k) {
  switch (k) {
    case MobilityKind::kHighway: return "highway";
    case MobilityKind::kManhattan: return "manhattan";
    case MobilityKind::kTrace: return "trace";
    case MobilityKind::kGraph: return "graph";
  }
  return "highway";
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("config key '" + key + "': invalid value '" +
                              value + "' (expected " + expected + ")");
}

struct Field {
  std::string key;
  std::function<std::string(const ScenarioConfig&)> get;
  std::function<void(ScenarioConfig&, const std::string&, const std::string&)>
      set;  ///< (cfg, key-for-errors, value)
};

template <typename T>
Field numeric_field(std::string key, T& (*ref)(ScenarioConfig&)) {
  Field f;
  f.key = std::move(key);
  f.get = [ref](const ScenarioConfig& cfg) {
    return fmt_value(ref(const_cast<ScenarioConfig&>(cfg)));
  };
  f.set = [ref](ScenarioConfig& cfg, const std::string& k,
                const std::string& v) {
    if constexpr (std::is_same_v<T, double>) {
      const auto parsed = parse_double_checked(v);
      if (!parsed) bad_value(k, v, "a real number");
      ref(cfg) = *parsed;
    } else if constexpr (std::is_same_v<T, bool>) {
      const auto parsed = parse_bool_checked(v);
      if (!parsed) bad_value(k, v, "true|false");
      ref(cfg) = *parsed;
    } else {
      const auto parsed = parse_int_checked(v);
      if (!parsed) bad_value(k, v, "an integer");
      if constexpr (std::is_unsigned_v<T>) {
        if (*parsed < 0 ||
            static_cast<unsigned long long>(*parsed) >
                std::numeric_limits<T>::max()) {
          bad_value(k, v, "a non-negative integer in range");
        }
      } else {
        if (*parsed < std::numeric_limits<T>::min() ||
            *parsed > std::numeric_limits<T>::max()) {
          bad_value(k, v, "an integer in range");
        }
      }
      ref(cfg) = static_cast<T>(*parsed);
    }
  };
  return f;
}

Field string_field(std::string key, std::string& (*ref)(ScenarioConfig&)) {
  Field f;
  f.key = std::move(key);
  f.get = [ref](const ScenarioConfig& cfg) {
    return ref(const_cast<ScenarioConfig&>(cfg));
  };
  f.set = [ref](ScenarioConfig& cfg, const std::string&, const std::string& v) {
    ref(cfg) = v;
  };
  return f;
}

/// A routing::GeometryMode field: line (legacy plane) | route (map-aware).
Field geometry_field(std::string key,
                     routing::GeometryMode& (*ref)(ScenarioConfig&)) {
  Field f;
  f.key = std::move(key);
  f.get = [ref](const ScenarioConfig& cfg) {
    return ref(const_cast<ScenarioConfig&>(cfg)) == routing::GeometryMode::kRoute
               ? std::string("route")
               : std::string("line");
  };
  f.set = [ref](ScenarioConfig& cfg, const std::string& k,
                const std::string& v) {
    if (v == "line") {
      ref(cfg) = routing::GeometryMode::kLine;
    } else if (v == "route") {
      ref(cfg) = routing::GeometryMode::kRoute;
    } else {
      bad_value(k, v, "line|route");
    }
  };
  return f;
}

/// A SimTime field exposed in seconds.
Field simtime_field(std::string key, core::SimTime& (*ref)(ScenarioConfig&)) {
  Field f;
  f.key = std::move(key);
  f.get = [ref](const ScenarioConfig& cfg) {
    return fmt_value(ref(const_cast<ScenarioConfig&>(cfg)).as_seconds());
  };
  f.set = [ref](ScenarioConfig& cfg, const std::string& k,
                const std::string& v) {
    const auto parsed = parse_double_checked(v);
    if (!parsed) bad_value(k, v, "seconds as a real number");
    ref(cfg) = core::SimTime::seconds(*parsed);
  };
  return f;
}

// Accessor shorthands. Each returns a reference into the config so one
// function serves both get and set.
#define REF(expr) +[](ScenarioConfig& c) -> decltype(c.expr)& { return c.expr; }

std::vector<Field> build_fields() {
  std::vector<Field> fields;
  auto num = [&fields](std::string key, auto ref) {
    fields.push_back(numeric_field(std::move(key), ref));
  };

  // --- top level -----------------------------------------------------------
  num("seed", REF(seed));
  num("duration_s", REF(duration_s));
  num("mobility_tick_s", REF(mobility_tick_s));
  {
    // Sharded engine selector: a count, or "auto" for the hardware thread
    // count (stored as 0; see resolve_shard_count). Serializes back as
    // "auto" so a round-tripped config resolves on the machine that runs
    // it, not the one that wrote it.
    Field f;
    f.key = "scenario.shards";
    f.get = [](const ScenarioConfig& cfg) {
      return cfg.shards == 0 ? std::string("auto") : fmt_value(cfg.shards);
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      if (v == "auto") {
        cfg.shards = 0;
        return;
      }
      const auto parsed = parse_int_checked(v);
      if (!parsed || *parsed <= 0 ||
          *parsed > std::numeric_limits<int>::max()) {
        bad_value(k, v, "a positive integer or 'auto'");
      }
      cfg.shards = static_cast<int>(*parsed);
    };
    fields.push_back(std::move(f));
  }
  {
    Field f;
    f.key = "scenario.shard_threads";
    f.get = [](const ScenarioConfig& cfg) {
      return fmt_value(cfg.shard_threads);
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      const auto parsed = parse_int_checked(v);
      if (!parsed || *parsed < 0 ||
          *parsed > std::numeric_limits<int>::max()) {
        bad_value(k, v, "a non-negative integer (0 = one thread per shard)");
      }
      cfg.shard_threads = static_cast<int>(*parsed);
    };
    fields.push_back(std::move(f));
  }
  num("scenario.shard_window_ms", REF(shard_window_ms));
  {
    // `map.source` precedes `mobility` so the parse order lets an explicit
    // mobility line re-settle the alias (see the header comment).
    Field f;
    f.key = "map.source";
    f.get = [](const ScenarioConfig& cfg) {
      return cfg.map.source == MapSource::kFile ? std::string("file")
                                                : std::string("grid");
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      if (v == "grid") {
        cfg.map.source = MapSource::kGrid;
      } else if (v == "file") {
        cfg.map.source = MapSource::kFile;
        // Alias: an imported map implies driving on it. Set mobility
        // afterwards to override (e.g. trace playback recorded on the map).
        cfg.mobility = MobilityKind::kGraph;
      } else {
        bad_value(k, v, "grid|file");
      }
    };
    fields.push_back(std::move(f));
  }
  fields.push_back(string_field("map.file", REF(map.file)));
  num("map.trace_tolerance_m", REF(map.trace_tolerance_m));
  {
    Field f;
    f.key = "mobility";
    f.get = [](const ScenarioConfig& cfg) { return fmt_value(cfg.mobility); };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      if (v == "highway") {
        cfg.mobility = MobilityKind::kHighway;
      } else if (v == "manhattan") {
        cfg.mobility = MobilityKind::kManhattan;
      } else if (v == "trace") {
        cfg.mobility = MobilityKind::kTrace;
      } else if (v == "graph") {
        cfg.mobility = MobilityKind::kGraph;
      } else {
        bad_value(k, v, "highway|manhattan|trace|graph");
      }
    };
    fields.push_back(std::move(f));
  }
  {
    // `vehicles` first so `vehicles_per_direction` re-settles it on parse
    // (see header comment about the alias).
    Field f;
    f.key = "vehicles";
    f.get = [](const ScenarioConfig& cfg) { return fmt_value(cfg.vehicles); };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      const auto parsed = parse_int_checked(v);
      if (!parsed || *parsed <= 0 ||
          *parsed > std::numeric_limits<int>::max()) {
        bad_value(k, v, "a positive integer");
      }
      cfg.vehicles = static_cast<int>(*parsed);
      cfg.vehicles_per_direction = static_cast<int>(*parsed);
    };
    fields.push_back(std::move(f));
  }
  {
    // A zero population builds a nodeless network; reject it here so sweeps
    // and --set fail loudly instead of tripping the Scenario invariant.
    Field f;
    f.key = "vehicles_per_direction";
    f.get = [](const ScenarioConfig& cfg) {
      return fmt_value(cfg.vehicles_per_direction);
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      const auto parsed = parse_int_checked(v);
      if (!parsed || *parsed <= 0 ||
          *parsed > std::numeric_limits<int>::max()) {
        bad_value(k, v, "a positive integer");
      }
      cfg.vehicles_per_direction = static_cast<int>(*parsed);
    };
    fields.push_back(std::move(f));
  }
  num("comm_range_m", REF(comm_range_m));
  {
    // Legacy alias predating `phy.model`: reads as "is the PHY the shadowing
    // model", writes the unitdisk/shadowing subset. Registered before
    // `phy.model` so a later explicit phy.model line re-settles it on parse.
    Field f;
    f.key = "shadowing";
    f.get = [](const ScenarioConfig& cfg) {
      return fmt_value(cfg.phy == PhyModel::kShadowing);
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      const auto parsed = parse_bool_checked(v);
      if (!parsed) bad_value(k, v, "true|false");
      cfg.phy = *parsed ? PhyModel::kShadowing : PhyModel::kUnitDisk;
    };
    fields.push_back(std::move(f));
  }
  {
    Field f;
    f.key = "phy.model";
    f.get = [](const ScenarioConfig& cfg) {
      switch (cfg.phy) {
        case PhyModel::kShadowing: return std::string("shadowing");
        case PhyModel::kNakagami: return std::string("nakagami");
        case PhyModel::kUnitDisk: break;
      }
      return std::string("unitdisk");
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      if (v == "unitdisk") {
        cfg.phy = PhyModel::kUnitDisk;
      } else if (v == "shadowing") {
        cfg.phy = PhyModel::kShadowing;
      } else if (v == "nakagami") {
        cfg.phy = PhyModel::kNakagami;
      } else {
        bad_value(k, v, "unitdisk|shadowing|nakagami");
      }
    };
    fields.push_back(std::move(f));
  }
  {
    // Validated here (not asserted in the scenario) so a bad sweep value
    // fails as a catchable config error.
    Field f;
    f.key = "phy.nakagami_m";
    f.get = [](const ScenarioConfig& cfg) { return fmt_value(cfg.nakagami_m); };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      // Accept integral-valued reals too ("1.0"): m is mathematically a real
      // shape parameter, the closed-form Erlang tail just needs it integer.
      auto parsed = parse_int_checked(v);
      if (!parsed) {
        const auto real = parse_double_checked(v);
        if (real && *real == static_cast<long long>(*real)) {
          parsed = static_cast<long long>(*real);
        }
      }
      if (!parsed || *parsed < 1 || *parsed > 64) {
        bad_value(k, v, "an integer in [1, 64]");
      }
      cfg.nakagami_m = static_cast<int>(*parsed);
    };
    fields.push_back(std::move(f));
  }
  num("rsu_count", REF(rsu_count));
  num("bus_count", REF(bus_count));
  fields.push_back(string_field("protocol", REF(protocol)));
  num("yan_tickets", REF(yan_tickets));
  num("car_cell_m", REF(car_cell_m));
  num("sample_reachability", REF(sample_reachability));
  num("density.incremental", REF(density_incremental));
  num("lifetime.memo", REF(lifetime_memo));
  num("lifetime.interp", REF(lifetime_interp));
  fields.push_back(geometry_field("zone.geometry", REF(zone_geometry)));
  fields.push_back(geometry_field("grid.geometry", REF(grid_geometry)));
  fields.push_back(geometry_field("gvgrid.geometry", REF(gvgrid_geometry)));

  // --- etx.* / flood.* (link-quality family; routing/linkquality/) ---------
  {
    // Bounds mirror the LinkQualityTable assertions so a bad sweep value
    // fails as a catchable config error, not a crash inside the estimator.
    Field f;
    f.key = "etx.window";
    f.get = [](const ScenarioConfig& cfg) { return fmt_value(cfg.etx.window); };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      const auto parsed = parse_int_checked(v);
      if (!parsed || *parsed < 1 || *parsed > 64) {
        bad_value(k, v, "an integer in [1, 64]");
      }
      cfg.etx.window = static_cast<int>(*parsed);
    };
    fields.push_back(std::move(f));
  }
  {
    Field f;
    f.key = "etx.hello_weight";
    f.get = [](const ScenarioConfig& cfg) {
      return fmt_value(cfg.etx.hello_weight);
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      const auto parsed = parse_double_checked(v);
      if (!parsed || !(*parsed > 0.0) || *parsed > 1.0) {
        bad_value(k, v, "a real number in (0, 1]");
      }
      cfg.etx.hello_weight = *parsed;
    };
    fields.push_back(std::move(f));
  }
  {
    Field f;
    f.key = "flood.suppression";
    f.get = [](const ScenarioConfig& cfg) {
      return cfg.flood_suppression == routing::FloodSuppression::kEtx
                 ? std::string("etx")
                 : std::string("none");
    };
    f.set = [](ScenarioConfig& cfg, const std::string& k,
               const std::string& v) {
      if (v == "none") {
        cfg.flood_suppression = routing::FloodSuppression::kNone;
      } else if (v == "etx") {
        cfg.flood_suppression = routing::FloodSuppression::kEtx;
      } else {
        bad_value(k, v, "none|etx");
      }
    };
    fields.push_back(std::move(f));
  }

  // --- highway.* -----------------------------------------------------------
  num("highway.length", REF(highway.length));
  num("highway.lanes_per_direction", REF(highway.lanes_per_direction));
  num("highway.bidirectional", REF(highway.bidirectional));
  num("highway.lane_width", REF(highway.lane_width));
  num("highway.median_gap", REF(highway.median_gap));
  num("highway.lane_change_prob", REF(highway.lane_change_prob));
  num("highway.idm.desired_speed", REF(highway.idm.desired_speed));
  num("highway.idm.desired_speed_stddev", REF(highway.idm.desired_speed_stddev));
  num("highway.idm.time_headway", REF(highway.idm.time_headway));
  num("highway.idm.min_gap", REF(highway.idm.min_gap));
  num("highway.idm.max_accel", REF(highway.idm.max_accel));
  num("highway.idm.comfortable_decel", REF(highway.idm.comfortable_decel));
  num("highway.idm.vehicle_length", REF(highway.idm.vehicle_length));

  // --- manhattan.* ---------------------------------------------------------
  num("manhattan.streets_x", REF(manhattan.streets_x));
  num("manhattan.streets_y", REF(manhattan.streets_y));
  num("manhattan.block", REF(manhattan.block));
  num("manhattan.speed_mean", REF(manhattan.speed_mean));
  num("manhattan.speed_stddev", REF(manhattan.speed_stddev));
  num("manhattan.turn_prob_left", REF(manhattan.turn_prob_left));
  num("manhattan.turn_prob_right", REF(manhattan.turn_prob_right));

  // --- graph.* (graph-constrained mobility) --------------------------------
  num("graph.speed_mean", REF(graph.speed_mean));
  num("graph.speed_stddev", REF(graph.speed_stddev));
  num("graph.replan_prob", REF(graph.replan_prob));
  num("graph.min_trip_m", REF(graph.min_trip_m));

  // --- traffic.* -----------------------------------------------------------
  num("traffic.flows", REF(traffic.flows));
  num("traffic.rate_pps", REF(traffic.rate_pps));
  num("traffic.payload_bytes", REF(traffic.payload_bytes));
  num("traffic.start_s", REF(traffic.start_s));
  num("traffic.stop_s", REF(traffic.stop_s));
  num("traffic.min_pair_distance_m", REF(traffic.min_pair_distance_m));

  // --- hello.* (times in seconds) ------------------------------------------
  fields.push_back(simtime_field("hello.interval_s", REF(hello.interval)));
  num("hello.jitter_fraction", REF(hello.jitter_fraction));
  fields.push_back(simtime_field("hello.expiry_s", REF(hello.expiry)));
  num("hello.beacon_bytes", REF(hello.beacon_bytes));

  // --- net.* ---------------------------------------------------------------
  num("net.bitrate_bps", REF(net.bitrate_bps));
  fields.push_back(simtime_field("net.slot_time_s", REF(net.slot_time)));
  num("net.contention_window", REF(net.contention_window));
  num("net.unicast_retry_limit", REF(net.unicast_retry_limit));
  num("net.queue_capacity", REF(net.queue_capacity));
  num("net.phy_overhead_bytes", REF(net.phy_overhead_bytes));
  fields.push_back(simtime_field("net.backbone_delay_s", REF(net.backbone_delay)));
  num("net.interference_range_factor", REF(net.interference_range_factor));

  // --- signal.* ------------------------------------------------------------
  num("signal.tx_power_dbm", REF(signal.tx_power_dbm));
  num("signal.ref_distance_m", REF(signal.ref_distance_m));
  num("signal.ref_loss_db", REF(signal.ref_loss_db));
  num("signal.path_loss_exponent", REF(signal.path_loss_exponent));
  num("signal.shadowing_sigma_db", REF(signal.shadowing_sigma_db));
  num("signal.rx_threshold_dbm", REF(signal.rx_threshold_dbm));

  // --- fault.* (deterministic fault injection; sim/fault_plan.h) -----------
  num("fault.enabled", REF(fault.enabled));
  fields.push_back(string_field("fault.plan", REF(fault.plan)));
  num("fault.vehicle_mtbf_s", REF(fault.vehicle_mtbf_s));
  num("fault.vehicle_downtime_s", REF(fault.vehicle_downtime_s));
  num("fault.rsu_mtbf_s", REF(fault.rsu_mtbf_s));
  num("fault.rsu_downtime_s", REF(fault.rsu_downtime_s));

  return fields;
}

#undef REF

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = build_fields();
  return kFields;
}

const Field* find_field(const std::string& key) {
  for (const Field& f : fields()) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

const Field& field_or_throw(const std::string& key) {
  const Field* f = find_field(key);
  if (f == nullptr) {
    throw std::invalid_argument("unknown config key '" + key + "'");
  }
  return *f;
}

}  // namespace

std::optional<long long> parse_int_checked(const std::string& s) {
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double_checked(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool_checked(const std::string& s) {
  if (s == "true" || s == "1" || s == "on" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "off" || s == "no") return false;
  return std::nullopt;
}

const std::vector<std::string>& config_keys() {
  static const std::vector<std::string> kKeys = [] {
    std::vector<std::string> keys;
    for (const Field& f : fields()) keys.push_back(f.key);
    return keys;
  }();
  return kKeys;
}

bool config_has_key(const std::string& key) {
  return find_field(key) != nullptr;
}

std::string config_get(const ScenarioConfig& cfg, const std::string& key) {
  return field_or_throw(key).get(cfg);
}

void config_set(ScenarioConfig& cfg, const std::string& key,
                const std::string& value) {
  field_or_throw(key).set(cfg, key, value);
}

std::string serialize_config(const ScenarioConfig& cfg) {
  std::string out;
  for (const Field& f : fields()) {
    out += f.key;
    out += '=';
    out += f.get(cfg);
    out += '\n';
  }
  return out;
}

ScenarioConfig parse_config(const std::string& text) {
  ScenarioConfig cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config line without '=': '" + line + "'");
    }
    config_set(cfg, line.substr(0, eq), line.substr(eq + 1));
  }
  return cfg;
}

std::string config_digest(const ScenarioConfig& cfg) {
  const std::string text = serialize_config(cfg);
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  static const char* kHex = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return hex;
}

}  // namespace vanet::sim
