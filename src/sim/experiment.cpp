#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "routing/registry.h"

namespace vanet::sim {

std::vector<ExperimentCell> expand(const ExperimentSpec& spec) {
  if (spec.seeds.empty()) {
    throw std::invalid_argument("ExperimentSpec: seed list is empty");
  }
  std::vector<std::string> protocols = spec.protocols;
  if (protocols.empty()) protocols.push_back(spec.base.protocol);
  for (const std::string& p : protocols) {
    if (routing::ProtocolRegistry::find(p) == nullptr) {
      throw std::invalid_argument("ExperimentSpec: unknown protocol '" + p +
                                  "'");
    }
  }
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.axes.size(); ++j) {
      if (spec.axes[i].key == spec.axes[j].key) {
        // Later axes overwrite earlier ones via config_set, so duplicate
        // keys would label rows with values that never actually ran.
        throw std::invalid_argument("ExperimentSpec: axis key '" +
                                    spec.axes[i].key + "' appears twice");
      }
    }
  }
  for (const SweepAxis& axis : spec.axes) {
    if (!config_has_key(axis.key)) {
      throw std::invalid_argument("ExperimentSpec: unknown axis key '" +
                                  axis.key + "'");
    }
    if (axis.values.empty()) {
      throw std::invalid_argument("ExperimentSpec: axis '" + axis.key +
                                  "' has no values");
    }
    if (axis.key == "seed") {
      // The engine assigns cfg.seed per run from spec.seeds; a seed axis
      // would be silently overwritten and mislabel every row.
      throw std::invalid_argument(
          "ExperimentSpec: 'seed' cannot be a sweep axis — use the seeds "
          "list");
    }
    if (axis.key == "protocol") {
      if (!spec.protocols.empty()) {
        // The axis would overwrite every cell's protocol, silently discarding
        // the protocols list and duplicating cells.
        throw std::invalid_argument(
            "ExperimentSpec: use either the protocols list or a 'protocol' "
            "sweep axis, not both");
      }
      // Catch typos up front rather than mid-matrix inside a worker thread.
      for (const std::string& p : axis.values) {
        if (routing::ProtocolRegistry::find(p) == nullptr) {
          throw std::invalid_argument("ExperimentSpec: unknown protocol '" + p +
                                      "' on the protocol axis");
        }
      }
    }
  }
  // Which protocols actually appear in the matrix (list or protocol axis)?
  std::vector<std::string> matrix_protocols = protocols;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.key == "protocol") matrix_protocols = axis.values;
  }
  for (const auto& [protocol, overrides] : spec.protocol_overrides) {
    if (std::find(matrix_protocols.begin(), matrix_protocols.end(),
                  protocol) == matrix_protocols.end()) {
      // A typo here would silently run the protocol without its overrides.
      throw std::invalid_argument("ExperimentSpec: protocol override for '" +
                                  protocol + "', which is not in the matrix");
    }
    for (const auto& [key, value] : overrides) {
      (void)value;
      if (!config_has_key(key)) {
        throw std::invalid_argument("ExperimentSpec: protocol override '" +
                                    protocol + "' uses unknown key '" + key +
                                    "'");
      }
      if (key == "seed") {
        throw std::invalid_argument(
            "ExperimentSpec: 'seed' cannot be overridden — use the seeds "
            "list");
      }
      for (const SweepAxis& axis : spec.axes) {
        if (axis.key == key) {
          // The override would clobber the swept value, mislabeling rows.
          throw std::invalid_argument("ExperimentSpec: protocol override '" +
                                      protocol + "." + key +
                                      "' collides with a sweep axis");
        }
      }
    }
  }

  std::vector<ExperimentCell> cells;
  // Odometer over the axes: index[i] counts through axes[i].values, with the
  // last axis spinning fastest.
  std::vector<std::size_t> index(spec.axes.size(), 0);
  for (const std::string& protocol : protocols) {
    while (true) {
      ExperimentCell cell;
      cell.protocol = protocol;
      cell.config = spec.base;
      cell.config.seed = 0;
      config_set(cell.config, "protocol", protocol);
      for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const std::string& value = spec.axes[i].values[index[i]];
        config_set(cell.config, spec.axes[i].key, value);
        cell.axes.emplace_back(spec.axes[i].key, value);
      }
      // Axes may themselves sweep `protocol`; overrides key off the final one.
      const auto overrides = spec.protocol_overrides.find(cell.config.protocol);
      if (overrides != spec.protocol_overrides.end()) {
        for (const auto& [key, value] : overrides->second) {
          config_set(cell.config, key, value);
        }
      }
      cell.protocol = cell.config.protocol;
      cell.digest = config_digest(cell.config);
      cells.push_back(std::move(cell));

      std::size_t i = spec.axes.size();
      while (i > 0 && ++index[i - 1] == spec.axes[i - 1].values.size()) {
        index[--i] = 0;
      }
      if (spec.axes.empty() || i == 0) break;
    }
  }
  return cells;
}

ExperimentEngine::ExperimentEngine(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec) {
  return run(spec, std::vector<ReportSink*>{});
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec,
                                       ReportSink& sink) {
  return run(spec, std::vector<ReportSink*>{&sink});
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec,
                                       const std::vector<ReportSink*>& sinks) {
  const std::vector<ExperimentCell> cells = expand(spec);
  const std::size_t n_seeds = spec.seeds.size();
  const std::size_t n_runs = cells.size() * n_seeds;

  // Results live at their matrix index; completion order is irrelevant.
  std::vector<ScenarioReport> reports(n_runs);

  auto execute = [&](std::size_t job) {
    const std::size_t cell_idx = job / n_seeds;
    const std::size_t seed_idx = job % n_seeds;
    ScenarioConfig cfg = cells[cell_idx].config;
    cfg.seed = spec.seeds[seed_idx];
    Scenario scenario{cfg};
    scenario.run();
    reports[job] = scenario.report();
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(jobs_), n_runs));
  if (workers <= 1) {
    for (std::size_t job = 0; job < n_runs; ++job) execute(job);
  } else {
    // The whole multi-threaded surface of the repo (see the threading
    // contract in experiment.h; TSan-covered by test_engine_concurrency.cpp
    // and the CI tsan job): each job index is claimed exactly once via
    // `next`, each worker writes only its claimed reports[job] slots, and
    // nothing below runs until every worker has joined.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          for (std::size_t job = next.fetch_add(1);
               job < n_runs && !failed.load(std::memory_order_relaxed);
               job = next.fetch_add(1)) {
            execute(job);
          }
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Aggregate and report in matrix order — deterministic by construction.
  std::vector<std::string> axis_keys;
  for (const SweepAxis& axis : spec.axes) axis_keys.push_back(axis.key);
  for (ReportSink* sink : sinks) sink->begin(axis_keys);

  ExperimentResult result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<ScenarioReport> cell_runs(
        reports.begin() + static_cast<std::ptrdiff_t>(c * n_seeds),
        reports.begin() + static_cast<std::ptrdiff_t>((c + 1) * n_seeds));
    if (!sinks.empty()) {
      // Per-run records (and their config copies/digests) are only worth
      // building when someone is listening.
      ScenarioConfig run_cfg = cells[c].config;
      for (std::size_t s = 0; s < n_seeds; ++s) {
        RunRecord rec;
        rec.protocol = cells[c].protocol;
        rec.axes = cells[c].axes;
        rec.seed = spec.seeds[s];
        run_cfg.seed = spec.seeds[s];
        rec.config_digest = config_digest(run_cfg);
        rec.report = cell_runs[s];
        for (ReportSink* sink : sinks) sink->on_run(rec);
      }
    }
    AggregateRecord agg_rec;
    agg_rec.protocol = cells[c].protocol;
    agg_rec.axes = cells[c].axes;
    agg_rec.config_digest = cells[c].digest;
    agg_rec.agg = aggregate_runs(cells[c].protocol, cell_runs);
    for (ReportSink* sink : sinks) sink->on_aggregate(agg_rec);
    result.cells.push_back(std::move(agg_rec));
  }
  for (ReportSink* sink : sinks) sink->end();
  return result;
}

}  // namespace vanet::sim
