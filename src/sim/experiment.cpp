#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "routing/registry.h"

namespace vanet::sim {

namespace {

/// Thrown by the watchdog installed via Simulator::set_abort_check. Derives
/// runtime_error so fail-fast mode (guards.capture == false) propagates it
/// like any other run failure.
struct GuardAbort : std::runtime_error {
  GuardAbort(std::string k, const std::string& msg)
      : std::runtime_error(msg), kind(std::move(k)) {}
  std::string kind;
};

/// Install the per-run watchdog. The event budget is checked first so that
/// when both guards are armed the deterministic one wins the race; the
/// wall-clock deadline exists purely to kill runaway runs and never feeds
/// sim state. Failure messages mention only configured parameters (never
/// elapsed time or event counts), so captured failures are byte-identical
/// across jobs=1 and jobs=N.
void arm_watchdog(Scenario& scenario, const RunGuards& guards) {
  if (guards.max_events == 0 && guards.timeout_s <= 0.0) return;
  core::Simulator& sim = scenario.simulator();
  // NOLINT-vanet(wall-clock): watchdog deadline; aborts runaway runs, never feeds sim state
  using WallClock = std::chrono::steady_clock;
  const auto deadline =
      WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                             std::chrono::duration<double>(guards.timeout_s));
  const std::uint64_t max_events = guards.max_events;
  const double timeout_s = guards.timeout_s;
  sim.set_abort_check([&sim, deadline, max_events, timeout_s] {
    if (max_events > 0 && sim.events_dispatched() >= max_events) {
      throw GuardAbort{
          "event-budget",
          "event budget exceeded: max_events=" + std::to_string(max_events)};
    }
    // NOLINT-vanet(wall-clock): watchdog poll; aborts runaway runs, never feeds sim state
    if (timeout_s > 0.0 && WallClock::now() >= deadline) {
      throw GuardAbort{"timeout", "watchdog timeout: timeout_s=" +
                                      format_double(timeout_s)};
    }
  }, max_events > 0 && max_events < 1024 ? max_events : 1024);
}

}  // namespace

std::uint64_t derive_retry_seed(std::uint64_t seed, int attempt) {
  if (attempt <= 0) return seed;
  // SplitMix64 of the attempt'th step from `seed`: the standard finalizer,
  // chosen because every distinct (seed, attempt) maps to an effectively
  // independent master seed without any shared-state generator.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<ExperimentCell> expand(const ExperimentSpec& spec) {
  if (spec.seeds.empty()) {
    throw std::invalid_argument("ExperimentSpec: seed list is empty");
  }
  if (spec.guards.timeout_s < 0.0) {
    throw std::invalid_argument("ExperimentSpec: guards.timeout_s < 0");
  }
  if (spec.guards.retries < 0) {
    throw std::invalid_argument("ExperimentSpec: guards.retries < 0");
  }
  std::vector<std::string> protocols = spec.protocols;
  if (protocols.empty()) protocols.push_back(spec.base.protocol);
  for (const std::string& p : protocols) {
    if (routing::ProtocolRegistry::find(p) == nullptr) {
      throw std::invalid_argument("ExperimentSpec: unknown protocol '" + p +
                                  "'");
    }
  }
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.axes.size(); ++j) {
      if (spec.axes[i].key == spec.axes[j].key) {
        // Later axes overwrite earlier ones via config_set, so duplicate
        // keys would label rows with values that never actually ran.
        throw std::invalid_argument("ExperimentSpec: axis key '" +
                                    spec.axes[i].key + "' appears twice");
      }
    }
  }
  for (const SweepAxis& axis : spec.axes) {
    if (!config_has_key(axis.key)) {
      throw std::invalid_argument("ExperimentSpec: unknown axis key '" +
                                  axis.key + "'");
    }
    if (axis.values.empty()) {
      throw std::invalid_argument("ExperimentSpec: axis '" + axis.key +
                                  "' has no values");
    }
    if (axis.key == "seed") {
      // The engine assigns cfg.seed per run from spec.seeds; a seed axis
      // would be silently overwritten and mislabel every row.
      throw std::invalid_argument(
          "ExperimentSpec: 'seed' cannot be a sweep axis — use the seeds "
          "list");
    }
    if (axis.key == "protocol") {
      if (!spec.protocols.empty()) {
        // The axis would overwrite every cell's protocol, silently discarding
        // the protocols list and duplicating cells.
        throw std::invalid_argument(
            "ExperimentSpec: use either the protocols list or a 'protocol' "
            "sweep axis, not both");
      }
      // Catch typos up front rather than mid-matrix inside a worker thread.
      for (const std::string& p : axis.values) {
        if (routing::ProtocolRegistry::find(p) == nullptr) {
          throw std::invalid_argument("ExperimentSpec: unknown protocol '" + p +
                                      "' on the protocol axis");
        }
      }
    }
  }
  // Which protocols actually appear in the matrix (list or protocol axis)?
  std::vector<std::string> matrix_protocols = protocols;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.key == "protocol") matrix_protocols = axis.values;
  }
  for (const auto& [protocol, overrides] : spec.protocol_overrides) {
    if (std::find(matrix_protocols.begin(), matrix_protocols.end(),
                  protocol) == matrix_protocols.end()) {
      // A typo here would silently run the protocol without its overrides.
      throw std::invalid_argument("ExperimentSpec: protocol override for '" +
                                  protocol + "', which is not in the matrix");
    }
    for (const auto& [key, value] : overrides) {
      (void)value;
      if (!config_has_key(key)) {
        throw std::invalid_argument("ExperimentSpec: protocol override '" +
                                    protocol + "' uses unknown key '" + key +
                                    "'");
      }
      if (key == "seed") {
        throw std::invalid_argument(
            "ExperimentSpec: 'seed' cannot be overridden — use the seeds "
            "list");
      }
      for (const SweepAxis& axis : spec.axes) {
        if (axis.key == key) {
          // The override would clobber the swept value, mislabeling rows.
          throw std::invalid_argument("ExperimentSpec: protocol override '" +
                                      protocol + "." + key +
                                      "' collides with a sweep axis");
        }
      }
    }
  }

  std::vector<ExperimentCell> cells;
  // Odometer over the axes: index[i] counts through axes[i].values, with the
  // last axis spinning fastest.
  std::vector<std::size_t> index(spec.axes.size(), 0);
  for (const std::string& protocol : protocols) {
    while (true) {
      ExperimentCell cell;
      cell.protocol = protocol;
      cell.config = spec.base;
      cell.config.seed = 0;
      config_set(cell.config, "protocol", protocol);
      for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const std::string& value = spec.axes[i].values[index[i]];
        config_set(cell.config, spec.axes[i].key, value);
        cell.axes.emplace_back(spec.axes[i].key, value);
      }
      // Axes may themselves sweep `protocol`; overrides key off the final one.
      const auto overrides = spec.protocol_overrides.find(cell.config.protocol);
      if (overrides != spec.protocol_overrides.end()) {
        for (const auto& [key, value] : overrides->second) {
          config_set(cell.config, key, value);
        }
      }
      cell.protocol = cell.config.protocol;
      cell.digest = config_digest(cell.config);
      cells.push_back(std::move(cell));

      std::size_t i = spec.axes.size();
      while (i > 0 && ++index[i - 1] == spec.axes[i - 1].values.size()) {
        index[--i] = 0;
      }
      if (spec.axes.empty() || i == 0) break;
    }
  }
  return cells;
}

ExperimentEngine::ExperimentEngine(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec) {
  return run(spec, std::vector<ReportSink*>{});
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec,
                                       ReportSink& sink) {
  return run(spec, std::vector<ReportSink*>{&sink});
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec,
                                       const std::vector<ReportSink*>& sinks) {
  const std::vector<ExperimentCell> cells = expand(spec);
  const std::size_t n_seeds = spec.seeds.size();
  const std::size_t n_runs = cells.size() * n_seeds;

  // Results live at their matrix index; completion order is irrelevant.
  std::vector<ScenarioReport> reports(n_runs);
  // Failure slots mirror the report slots: disjoint per-job writes, read
  // only after the join (same threading contract as `reports`).
  std::vector<std::optional<FailureRecord>> failures(n_runs);
  // Profile slots (spec.profile): same disjoint-write contract. Kept as
  // parallel arrays rather than widening ScenarioReport, which is digest
  // material and must not grow nondeterministic fields.
  struct RunProfile {
    double wall_s = 0.0;
    std::uint64_t events = 0;
    int shards = 1;
    int threads = 1;
  };
  std::vector<RunProfile> profiles(spec.profile ? n_runs : 0);

  auto execute = [&](std::size_t job) {
    const std::size_t cell_idx = job / n_seeds;
    const std::size_t seed_idx = job % n_seeds;
    const std::uint64_t base_seed = spec.seeds[seed_idx];
    const int attempts = spec.guards.retries + 1;
    std::string kind;
    std::string error;
    std::uint64_t last_seed = base_seed;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      last_seed = derive_retry_seed(base_seed, attempt);
      try {
        ScenarioConfig cfg = cells[cell_idx].config;
        cfg.seed = last_seed;
        Scenario scenario{cfg};
        arm_watchdog(scenario, spec.guards);
        if (spec.profile) {
          // NOLINT-vanet(wall-clock): throughput capture (events/sec); never feeds sim state or digests
          const auto t0 = std::chrono::steady_clock::now();
          scenario.run();
          // NOLINT-vanet(wall-clock): throughput capture (events/sec); never feeds sim state or digests
          const auto t1 = std::chrono::steady_clock::now();
          RunProfile& prof = profiles[job];
          prof.wall_s = std::chrono::duration<double>(t1 - t0).count();
          prof.events = scenario.events_dispatched();
          prof.shards = scenario.shard_count();
          prof.threads = scenario.shard_thread_count();
        } else {
          scenario.run();
        }
        reports[job] = scenario.report();
        return;  // success — no failure record for this job
      } catch (const GuardAbort& e) {
        if (!spec.guards.capture && attempt + 1 == attempts) throw;
        kind = e.kind;
        error = e.what();
      } catch (const std::exception& e) {
        if (!spec.guards.capture && attempt + 1 == attempts) throw;
        kind = "exception";
        error = e.what();
      } catch (...) {
        if (!spec.guards.capture && attempt + 1 == attempts) throw;
        kind = "exception";
        error = "unknown non-exception throw";
      }
    }
    FailureRecord fail;
    fail.protocol = cells[cell_idx].protocol;
    fail.axes = cells[cell_idx].axes;
    fail.seed = base_seed;
    fail.last_seed = last_seed;
    fail.attempts = attempts;
    fail.kind = std::move(kind);
    fail.error = std::move(error);
    failures[job] = std::move(fail);
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(jobs_), n_runs));
  if (workers <= 1) {
    for (std::size_t job = 0; job < n_runs; ++job) execute(job);
  } else {
    // The whole multi-threaded surface of the repo (see the threading
    // contract in experiment.h; TSan-covered by test_engine_concurrency.cpp
    // and the CI tsan job): each job index is claimed exactly once via
    // `next`, each worker writes only its claimed reports[job] slots, and
    // nothing below runs until every worker has joined.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          for (std::size_t job = next.fetch_add(1);
               job < n_runs && !failed.load(std::memory_order_relaxed);
               job = next.fetch_add(1)) {
            execute(job);
          }
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Aggregate and report in matrix order — deterministic by construction.
  std::vector<std::string> axis_keys;
  for (const SweepAxis& axis : spec.axes) axis_keys.push_back(axis.key);
  for (ReportSink* sink : sinks) sink->begin(axis_keys);

  ExperimentResult result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    // Successful seeds aggregate; failed seeds become on_failure records.
    // Both are visited in seed order, so the sink stream (and therefore
    // every byte of output) is independent of worker scheduling.
    std::vector<ScenarioReport> cell_runs;
    cell_runs.reserve(n_seeds);
    std::uint64_t cell_failed = 0;
    ScenarioConfig run_cfg = cells[c].config;
    analysis::RunningStats cell_wall;
    analysis::RunningStats cell_eps;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      const std::size_t job = c * n_seeds + s;
      if (failures[job].has_value()) {
        ++cell_failed;
        for (ReportSink* sink : sinks) sink->on_failure(*failures[job]);
        result.failures.push_back(std::move(*failures[job]));
        continue;
      }
      cell_runs.push_back(reports[job]);
      if (spec.profile) {
        const RunProfile& prof = profiles[job];
        cell_wall.add(prof.wall_s);
        if (prof.wall_s > 0.0) {
          cell_eps.add(static_cast<double>(prof.events) / prof.wall_s);
        }
      }
      if (!sinks.empty()) {
        // Per-run records (and their config copies/digests) are only worth
        // building when someone is listening.
        RunRecord rec;
        rec.protocol = cells[c].protocol;
        rec.axes = cells[c].axes;
        rec.seed = spec.seeds[s];
        run_cfg.seed = spec.seeds[s];
        rec.config_digest = config_digest(run_cfg);
        rec.report = reports[job];
        if (spec.profile) {
          const RunProfile& prof = profiles[job];
          rec.profiled = true;
          rec.wall_s = prof.wall_s;
          rec.events_dispatched = prof.events;
          rec.shards = prof.shards;
          rec.threads = prof.threads;
        }
        for (ReportSink* sink : sinks) sink->on_run(rec);
      }
    }
    AggregateRecord agg_rec;
    agg_rec.protocol = cells[c].protocol;
    agg_rec.axes = cells[c].axes;
    agg_rec.config_digest = cells[c].digest;
    agg_rec.agg = aggregate_runs(cells[c].protocol, cell_runs);
    agg_rec.failed_runs = cell_failed;
    if (spec.profile) {
      agg_rec.profiled = true;
      agg_rec.wall_s = cell_wall;
      agg_rec.events_per_sec = cell_eps;
    }
    for (ReportSink* sink : sinks) sink->on_aggregate(agg_rec);
    result.cells.push_back(std::move(agg_rec));
  }
  for (ReportSink* sink : sinks) sink->end();
  return result;
}

}  // namespace vanet::sim
