// Aligned markdown table printing for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vanet::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision number formatting for table cells.
std::string fmt(double value, int precision = 2);
std::string fmt_int(std::uint64_t value);
/// "12.3 ± 0.4" style cell.
std::string fmt_pm(double mean, double half_width, int precision = 2);

}  // namespace vanet::sim
