// Pluggable output for experiment results.
//
// The ExperimentEngine feeds every sink a unified record stream: one
// RunRecord per (cell, seed) and one AggregateRecord per cell, always in
// deterministic matrix order regardless of how many worker threads executed
// the runs. Sinks therefore produce byte-identical output for `jobs=1` and
// `jobs=N`.
//
// Ship three implementations (markdown table, CSV, JSON lines); benches are
// free to subclass ReportSink to preserve their bespoke layouts while still
// running on the engine (see bench/bench_table1_summary.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/runner.h"

namespace vanet::sim {

/// One (protocol, axis assignment, seed) simulation run.
struct RunRecord {
  std::string protocol;
  /// Sweep-axis assignment for this cell, in axis order: {key, value}.
  std::vector<std::pair<std::string, std::string>> axes;
  std::uint64_t seed = 0;
  std::string config_digest;  ///< digest of the exact run config (with seed)
  ScenarioReport report;
  /// Throughput capture (ExperimentSpec::profile). `profiled` gates the
  /// extra sink fields so unprofiled sweeps emit byte-identical output.
  bool profiled = false;
  double wall_s = 0.0;                  ///< wall-clock inside Scenario::run()
  std::uint64_t events_dispatched = 0;  ///< events across every loop
  int shards = 1;                       ///< effective sharding of the run
  int threads = 1;
  double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(events_dispatched) / wall_s : 0.0;
  }
};

/// One cell of the run matrix, aggregated over all seeds.
struct AggregateRecord {
  std::string protocol;
  std::vector<std::pair<std::string, std::string>> axes;
  std::string config_digest;  ///< digest of the cell config with seed=0
  AggregateReport agg;
  /// Seeds of this cell that failed every attempt (RunGuards capture mode).
  /// Zero on the classic all-healthy path, so sinks that only mention
  /// failures when failed_runs > 0 stay byte-identical to older output.
  std::uint64_t failed_runs = 0;
  /// Per-cell throughput aggregation over the successful seeds
  /// (ExperimentSpec::profile); `profiled` gates the extra sink fields.
  bool profiled = false;
  analysis::RunningStats wall_s;
  analysis::RunningStats events_per_sec;
};

/// One (cell, seed) run that failed every attempt. `seed` is the requested
/// matrix seed; `last_seed` is the derived seed of the final retry (equal to
/// `seed` when no retries were configured). `kind` is one of "exception",
/// "timeout" or "event-budget"; `error` is the human-readable detail.
struct FailureRecord {
  std::string protocol;
  std::vector<std::pair<std::string, std::string>> axes;
  std::uint64_t seed = 0;
  std::uint64_t last_seed = 0;
  int attempts = 1;
  std::string kind;
  std::string error;
};

class ReportSink {
 public:
  virtual ~ReportSink();

  /// Called once before any records, with the sweep-axis keys in order.
  virtual void begin(const std::vector<std::string>& axis_keys);
  virtual void on_run(const RunRecord& rec);
  /// Called for each failed (cell, seed) run, in matrix order, interleaved
  /// with the cell's on_run calls (successes and failures keep seed order).
  /// Default: no-op, so sinks that predate fault capture are unaffected.
  virtual void on_failure(const FailureRecord& rec);
  virtual void on_aggregate(const AggregateRecord& rec);
  /// Called once after all records.
  virtual void end();
};

/// Human-readable aligned markdown table, one row per aggregate.
class MarkdownSink final : public ReportSink {
 public:
  explicit MarkdownSink(std::ostream& out) : out_(out) {}
  void begin(const std::vector<std::string>& axis_keys) override;
  void on_aggregate(const AggregateRecord& rec) override;
  void end() override;

  void on_failure(const FailureRecord& rec) override;

 private:
  std::ostream& out_;
  std::vector<std::string> axis_keys_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> failure_lines_;
};

/// RFC-4180-ish CSV, one row per aggregate; header emitted in begin().
class CsvSink final : public ReportSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void begin(const std::vector<std::string>& axis_keys) override;
  void on_failure(const FailureRecord& rec) override;
  void on_aggregate(const AggregateRecord& rec) override;

 private:
  std::ostream& out_;
  std::vector<std::string> axis_keys_;
};

/// JSON lines: one object per aggregate, plus (optionally) one per run.
class JsonlSink final : public ReportSink {
 public:
  explicit JsonlSink(std::ostream& out, bool include_runs = false)
      : out_(out), include_runs_(include_runs) {}
  void on_run(const RunRecord& rec) override;
  void on_failure(const FailureRecord& rec) override;
  void on_aggregate(const AggregateRecord& rec) override;

 private:
  std::ostream& out_;
  bool include_runs_;
};

/// Escape a string for inclusion in a JSON document (without quotes).
std::string json_escape(const std::string& s);

}  // namespace vanet::sim
