#include "sim/metrics.h"

namespace vanet::sim {

void Metrics::record_originated(std::uint32_t flow, core::SimTime now) {
  ++originated_;
  ++flows_[flow].originated;
  if (fault_tracking_) origination_times_.push_back(now);
}

bool Metrics::record_delivery(std::uint32_t flow, std::uint32_t seq,
                              core::SimTime sent_at, core::SimTime now,
                              int hops) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(flow) << 32) | static_cast<std::uint64_t>(seq);
  if (!seen_.insert(key).second) {
    ++duplicates_;
    return false;
  }
  ++delivered_;
  if (fault_tracking_) first_delivery_sent_times_.push_back(sent_at);
  const double delay = (now - sent_at).as_millis();
  delay_ms_.add(delay);
  hops_.add(static_cast<double>(hops));
  FlowStats& fs = flows_[flow];
  ++fs.delivered;
  fs.delay_ms.add(delay);
  return true;
}

const Metrics::FlowStats& Metrics::flow_stats(std::uint32_t flow) const {
  static const FlowStats kEmpty;
  auto it = flows_.find(flow);
  return it != flows_.end() ? it->second : kEmpty;
}

double Metrics::pdr() const {
  if (originated_ == 0) return 0.0;
  return static_cast<double>(delivered_) / static_cast<double>(originated_);
}

}  // namespace vanet::sim
