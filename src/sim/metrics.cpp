#include "sim/metrics.h"

#include <algorithm>
#include <vector>

namespace vanet::sim {

void Metrics::record_originated(std::uint32_t flow, core::SimTime now) {
  ++originated_;
  ++flows_[flow].originated;
  if (fault_tracking_) origination_times_.push_back(now);
}

bool Metrics::record_delivery(std::uint32_t flow, std::uint32_t seq,
                              core::SimTime sent_at, core::SimTime now,
                              int hops) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(flow) << 32) | static_cast<std::uint64_t>(seq);
  if (!seen_.insert(key).second) {
    ++duplicates_;
    return false;
  }
  ++delivered_;
  if (fault_tracking_) first_delivery_sent_times_.push_back(sent_at);
  const double delay = (now - sent_at).as_millis();
  delay_ms_.add(delay);
  hops_.add(static_cast<double>(hops));
  FlowStats& fs = flows_[flow];
  ++fs.delivered;
  fs.delay_ms.add(delay);
  return true;
}

void Metrics::merge_from(const Metrics& other) {
  originated_ += other.originated_;
  delivered_ += other.delivered_;
  duplicates_ += other.duplicates_;
  delay_ms_.merge(other.delay_ms_);
  hops_.merge(other.hops_);
  // NOLINT-vanet(unordered-iter): keys are sorted before any merge happens
  std::vector<std::uint64_t> keys(other.seen_.begin(), other.seen_.end());
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) seen_.insert(key);
  std::vector<std::uint32_t> flow_ids;
  // NOLINT-vanet(unordered-iter): ids are sorted before any merge happens
  for (const auto& [id, fs] : other.flows_) flow_ids.push_back(id);
  std::sort(flow_ids.begin(), flow_ids.end());
  for (const std::uint32_t id : flow_ids) {
    const FlowStats& src = other.flows_.at(id);
    FlowStats& dst = flows_[id];
    dst.originated += src.originated;
    dst.delivered += src.delivered;
    dst.delay_ms.merge(src.delay_ms);
  }
  origination_times_.insert(origination_times_.end(),
                            other.origination_times_.begin(),
                            other.origination_times_.end());
  first_delivery_sent_times_.insert(first_delivery_sent_times_.end(),
                                    other.first_delivery_sent_times_.begin(),
                                    other.first_delivery_sent_times_.end());
}

const Metrics::FlowStats& Metrics::flow_stats(std::uint32_t flow) const {
  static const FlowStats kEmpty;
  auto it = flows_.find(flow);
  return it != flows_.end() ? it->second : kEmpty;
}

double Metrics::pdr() const {
  if (originated_ == 0) return 0.0;
  return static_cast<double>(delivered_) / static_cast<double>(originated_);
}

}  // namespace vanet::sim
