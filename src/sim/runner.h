// Multi-seed experiment runner: same configuration, several seeds,
// mean ± stddev aggregation of the headline metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stats.h"
#include "sim/scenario.h"

namespace vanet::sim {

struct AggregateReport {
  std::string protocol;
  analysis::RunningStats pdr;
  analysis::RunningStats delay_ms;
  analysis::RunningStats hops;
  analysis::RunningStats control_per_delivered;
  analysis::RunningStats collision_fraction;
  analysis::RunningStats reachable_fraction;
  analysis::RunningStats route_breaks;
  analysis::RunningStats discoveries;
  analysis::RunningStats predicted_lifetime_s;
  analysis::RunningStats observed_lifetime_s;
  std::uint64_t total_originated = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_backbone_frames = 0;
  std::vector<ScenarioReport> runs;
};

/// Fold per-seed reports into an AggregateReport. The canonical aggregation
/// used everywhere (run_seeds and ExperimentEngine): order-dependent only on
/// the order of `runs`, which callers keep in seed order, so serial and
/// parallel execution aggregate bit-identically.
AggregateReport aggregate_runs(const std::string& protocol,
                               const std::vector<ScenarioReport>& runs);

/// Run `base` once per seed (overwriting base.seed) and aggregate.
/// Thin wrapper over ExperimentEngine (single cell, jobs=1).
AggregateReport run_seeds(const ScenarioConfig& base,
                          const std::vector<std::uint64_t>& seeds);

/// Convenience: seeds 1..n.
AggregateReport run_seeds(const ScenarioConfig& base, int n_seeds);

/// One instrumented scenario run: the report plus the raw throughput
/// numbers the perf harness tracks (bench_scenario_throughput, CI smoke).
struct TimedRun {
  ScenarioReport report;
  double wall_s = 0.0;                  ///< wall-clock time inside run()
  std::uint64_t events_dispatched = 0;  ///< events across every loop of the run
  std::size_t vehicles = 0;
  // Effective sharding of the run (1/1 on the serial path). Bench rows carry
  // these so bench_compare.py can key scale-family rows by shard count and
  // judge scaling efficiency only where real parallelism ran.
  int shards = 1;
  int threads = 1;
  // Scheduler allocation telemetry (EventQueue::AllocStats): slab growths
  // happen only during warm-up and oversize_callbacks must stay ~0, so
  // steady-state scheduling allocates nothing per event.
  std::uint64_t sched_slab_allocs = 0;
  std::uint64_t sched_oversize_callbacks = 0;
  std::size_t sched_peak_pending = 0;
  // Scenario cache telemetry: the lifetime memo (analysis::LifetimeMemo) and
  // the per-tick segment snapshot (map::SegmentSnapshot). bench_compare.py
  // watches the warm hit rates — a drop means a cache key regressed.
  std::uint64_t lifetime_memo_hits = 0;
  std::uint64_t lifetime_memo_misses = 0;
  std::uint64_t seg_snapshot_queries = 0;
  std::uint64_t seg_snapshot_hits = 0;    ///< served from the per-node entry
  std::uint64_t seg_snapshot_proven = 0;  ///< answered by the mobility prover
  std::uint64_t seg_snapshot_index_queries = 0;  ///< fell through to the index
  double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(events_dispatched) / wall_s : 0.0;
  }
  /// Fraction of lifetime-scoring calls served without a new integration.
  double lifetime_memo_hit_rate() const {
    const std::uint64_t total = lifetime_memo_hits + lifetime_memo_misses;
    return total > 0 ? static_cast<double>(lifetime_memo_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
  /// Fraction of segment queries served without touching the SegmentIndex
  /// (per-node entry hits plus prover answers).
  double seg_snapshot_hit_rate() const {
    return seg_snapshot_queries > 0
               ? static_cast<double>(seg_snapshot_hits + seg_snapshot_proven) /
                     static_cast<double>(seg_snapshot_queries)
               : 0.0;
  }
  /// Scheduler allocations amortised over the run — ~0 in steady state.
  double sched_allocs_per_event() const {
    return events_dispatched > 0
               ? static_cast<double>(sched_slab_allocs +
                                     sched_oversize_callbacks) /
                     static_cast<double>(events_dispatched)
               : 0.0;
  }
};

TimedRun run_timed(const ScenarioConfig& cfg);

}  // namespace vanet::sim
