#include "sim/runner.h"

#include <numeric>

namespace vanet::sim {

AggregateReport run_seeds(const ScenarioConfig& base,
                          const std::vector<std::uint64_t>& seeds) {
  AggregateReport agg;
  agg.protocol = base.protocol;
  for (std::uint64_t seed : seeds) {
    ScenarioConfig cfg = base;
    cfg.seed = seed;
    Scenario scenario{cfg};
    scenario.run();
    const ScenarioReport r = scenario.report();
    agg.pdr.add(r.pdr);
    if (r.delivered > 0) {
      agg.delay_ms.add(r.delay_ms_mean);
      agg.hops.add(r.hops_mean);
    }
    agg.control_per_delivered.add(r.control_per_delivered);
    agg.collision_fraction.add(r.collision_fraction);
    agg.reachable_fraction.add(r.reachable_fraction);
    agg.route_breaks.add(static_cast<double>(r.route_breaks));
    agg.discoveries.add(static_cast<double>(r.discoveries));
    if (r.predicted_lifetime_mean_s > 0.0) {
      agg.predicted_lifetime_s.add(r.predicted_lifetime_mean_s);
    }
    if (r.observed_lifetime_mean_s > 0.0) {
      agg.observed_lifetime_s.add(r.observed_lifetime_mean_s);
    }
    agg.total_originated += r.originated;
    agg.total_delivered += r.delivered;
    agg.total_backbone_frames += r.backbone_frames;
    agg.runs.push_back(r);
  }
  return agg;
}

AggregateReport run_seeds(const ScenarioConfig& base, int n_seeds) {
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(n_seeds));
  std::iota(seeds.begin(), seeds.end(), 1);
  return run_seeds(base, seeds);
}

}  // namespace vanet::sim
