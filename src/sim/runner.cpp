#include "sim/runner.h"

#include <chrono>
#include <numeric>

#include "sim/experiment.h"

namespace vanet::sim {

AggregateReport aggregate_runs(const std::string& protocol,
                               const std::vector<ScenarioReport>& runs) {
  AggregateReport agg;
  agg.protocol = protocol;
  for (const ScenarioReport& r : runs) {
    agg.pdr.add(r.pdr);
    if (r.delivered > 0) {
      agg.delay_ms.add(r.delay_ms_mean);
      agg.hops.add(r.hops_mean);
    }
    agg.control_per_delivered.add(r.control_per_delivered);
    agg.collision_fraction.add(r.collision_fraction);
    agg.reachable_fraction.add(r.reachable_fraction);
    agg.route_breaks.add(static_cast<double>(r.route_breaks));
    agg.discoveries.add(static_cast<double>(r.discoveries));
    if (r.predicted_lifetime_mean_s > 0.0) {
      agg.predicted_lifetime_s.add(r.predicted_lifetime_mean_s);
    }
    if (r.observed_lifetime_mean_s > 0.0) {
      agg.observed_lifetime_s.add(r.observed_lifetime_mean_s);
    }
    agg.total_originated += r.originated;
    agg.total_delivered += r.delivered;
    agg.total_backbone_frames += r.backbone_frames;
    agg.runs.push_back(r);
  }
  return agg;
}

AggregateReport run_seeds(const ScenarioConfig& base,
                          const std::vector<std::uint64_t>& seeds) {
  ExperimentSpec spec;
  spec.base = base;
  spec.seeds = seeds;
  // Legacy contract: run_seeds throws on a bad run (callers predate failure
  // capture and have no way to inspect ExperimentResult.failures).
  spec.guards.capture = false;
  ExperimentEngine engine{1};
  ExperimentResult result = engine.run(spec);
  return std::move(result.cells.at(0).agg);
}

TimedRun run_timed(const ScenarioConfig& cfg) {
  TimedRun out;
  Scenario scenario{cfg};
  out.vehicles = scenario.vehicle_count();
  // NOLINT-vanet(wall-clock): measures bench throughput (events/sec); never feeds sim state or digests
  const auto t0 = std::chrono::steady_clock::now();
  scenario.run();
  // NOLINT-vanet(wall-clock): measures bench throughput (events/sec); never feeds sim state or digests
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events_dispatched = scenario.events_dispatched();
  out.shards = scenario.shard_count();
  out.threads = scenario.shard_thread_count();
  const core::EventQueue::AllocStats sched = scenario.scheduler_stats();
  out.sched_slab_allocs = sched.slab_allocations;
  out.sched_oversize_callbacks = sched.oversize_callbacks;
  out.sched_peak_pending = sched.peak_pending;
  if (const analysis::LifetimeMemo* memo = scenario.lifetime_memo()) {
    out.lifetime_memo_hits = memo->stats().hits;
    out.lifetime_memo_misses = memo->stats().misses;
  }
  if (const map::SegmentSnapshot* snap = scenario.segment_snapshot()) {
    out.seg_snapshot_queries = snap->stats().queries;
    out.seg_snapshot_hits = snap->stats().hits;
    out.seg_snapshot_proven = snap->stats().proven;
    out.seg_snapshot_index_queries = snap->stats().index_queries;
  }
  out.report = scenario.report();
  return out;
}

AggregateReport run_seeds(const ScenarioConfig& base, int n_seeds) {
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(n_seeds));
  std::iota(seeds.begin(), seeds.end(), 1);
  return run_seeds(base, seeds);
}

}  // namespace vanet::sim
