#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/assert.h"
#include "map/builders.h"
#include "net/fading.h"
#include "sim/sharded/sharded_scenario.h"

namespace vanet::sim {

namespace {

void append_field(std::string& out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += name;
  out += '=';
  out += buf;
  out += '\n';
}

void append_field(std::string& out, const char* name, std::uint64_t v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += '\n';
}

}  // namespace

std::string canonical_report_string(const ScenarioReport& r) {
  std::string out;
  out += "protocol=" + r.protocol + "\n";
  append_field(out, "pdr", r.pdr);
  append_field(out, "delay_ms_mean", r.delay_ms_mean);
  append_field(out, "delay_ms_p95_hint", r.delay_ms_p95_hint);
  append_field(out, "hops_mean", r.hops_mean);
  append_field(out, "originated", r.originated);
  append_field(out, "delivered", r.delivered);
  append_field(out, "control_frames", r.control_frames);
  append_field(out, "hello_frames", r.hello_frames);
  append_field(out, "data_frames", r.data_frames);
  append_field(out, "backbone_frames", r.backbone_frames);
  append_field(out, "receptions_ok", r.receptions_ok);
  append_field(out, "control_per_delivered", r.control_per_delivered);
  append_field(out, "collision_fraction", r.collision_fraction);
  append_field(out, "reachable_fraction", r.reachable_fraction);
  append_field(out, "route_breaks", r.route_breaks);
  append_field(out, "discoveries", r.discoveries);
  append_field(out, "preemptive_rebuilds", r.preemptive_rebuilds);
  append_field(out, "predicted_lifetime_mean_s", r.predicted_lifetime_mean_s);
  append_field(out, "observed_lifetime_mean_s", r.observed_lifetime_mean_s);
  // Fault fields only exist in the canonical form of faulted runs: a report
  // with fault_enabled=false serializes byte-identically to a pre-fault
  // build, which is what keeps the historical golden digests valid.
  if (r.fault_enabled) {
    append_field(out, "faulted_originated", r.faulted_originated);
    append_field(out, "faulted_delivered", r.faulted_delivered);
    append_field(out, "pdr_under_fault", r.pdr_under_fault);
    append_field(out, "node_outages", r.node_outages);
    append_field(out, "node_restarts", r.node_restarts);
    append_field(out, "segment_blocks", r.segment_blocks);
    append_field(out, "frames_dropped_down", r.frames_dropped_down);
    append_field(out, "recovery_latency_mean_s", r.recovery_latency_mean_s);
  }
  // Link-quality fields follow the same rule: only serialized when the etx
  // protocol or a flood.suppression mode ran, so every pre-existing digest
  // stays byte-identical.
  if (r.linkquality_enabled) {
    append_field(out, "etx_link_error_mean", r.etx_link_error_mean);
    append_field(out, "etx_link_samples", r.etx_link_samples);
    append_field(out, "suppressed_rebroadcasts", r.suppressed_rebroadcasts);
  }
  return out;
}

std::string report_digest(const ScenarioReport& r) {
  const std::string canonical = canonical_report_string(r);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string{buf};
}

int resolve_shard_count(const ScenarioConfig& cfg) {
  if (cfg.shards < 0) {
    throw std::invalid_argument("scenario.shards must be >= 0 (0 = auto)");
  }
  if (cfg.shards != 0) return cfg.shards;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

std::shared_ptr<map::RoadGraph> build_road_graph(const ScenarioConfig& cfg) {
  if (cfg.map.source == MapSource::kFile) {
    if (cfg.mobility != MobilityKind::kGraph &&
        cfg.mobility != MobilityKind::kTrace) {
      throw std::invalid_argument(
          "map.source=file requires graph or trace mobility — the highway / "
          "manhattan models synthesize their own geometry and would not "
          "drive on the imported map");
    }
    if (cfg.map.file.empty()) {
      throw std::invalid_argument("map.source=file requires map.file=PATH");
    }
    return std::make_shared<map::RoadGraph>(
        map::load_edge_list_csv_file(cfg.map.file));
  }
  if (cfg.mobility == MobilityKind::kManhattan ||
      cfg.mobility == MobilityKind::kGraph) {
    // Urban lattice; kGraph shares the Manhattan dimensions so the two urban
    // models are directly comparable on the same topology.
    return std::make_shared<map::RoadGraph>(
        cfg.manhattan.streets_x, cfg.manhattan.streets_y, cfg.manhattan.block);
  }
  // Highway (and highway-like trace) scenarios: a 1-D line of car_cell_m
  // cells, the granularity CAR scores connectivity over.
  const int nx = std::max(
      2,
      static_cast<int>(std::lround(cfg.highway.length / cfg.car_cell_m)) + 1);
  return std::make_shared<map::RoadGraph>(nx, 1,
                                          cfg.highway.length / (nx - 1));
}

void validate_trace_against_map(const ScenarioConfig& cfg,
                                const map::RoadGraph& graph,
                                const map::SegmentIndex& index) {
  const double tol = cfg.map.trace_tolerance_m;
  if (tol <= 0.0) return;
  for (const auto& [id, samples] : cfg.trace.samples()) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const mobility::TraceSample& s = samples[i];
      const core::Vec2 pos{s.x, s.y};
      const int seg = index.nearest_segment(pos);
      const auto [a, b] = graph.segment_ends(seg);
      const double d = core::distance_to_segment(pos, graph.intersection_pos(a),
                                                 graph.intersection_pos(b));
      if (d <= tol) continue;
      // Same line-numbered style as the CSV importers, so a replayed real
      // trace and an imported map cannot silently disagree.
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "trace<->map: vehicle %u sample %zu%s%s (t=%gs) at "
                    "(%.1f, %.1f) is %.1f m from the nearest road segment "
                    "(map.trace_tolerance_m=%g; nearest segment %d)",
                    static_cast<unsigned>(id), i,
                    s.line > 0 ? ", trace csv line " : "",
                    s.line > 0 ? std::to_string(s.line).c_str() : "", s.t,
                    s.x, s.y, d, tol, seg);
      throw std::invalid_argument(buf);
    }
  }
}

std::unique_ptr<mobility::MobilityModel> make_mobility_model(
    const ScenarioConfig& cfg, const std::shared_ptr<map::RoadGraph>& graph,
    core::RngManager& rngs, mobility::GraphMobilityModel** graph_model_out) {
  if (graph_model_out != nullptr) *graph_model_out = nullptr;
  std::unique_ptr<mobility::MobilityModel> model;
  if (cfg.mobility == MobilityKind::kHighway) {
    auto highway = std::make_unique<mobility::IdmHighwayModel>(cfg.highway);
    highway->populate(cfg.vehicles_per_direction,
                      rngs.stream("mobility-init"));
    model = std::move(highway);
  } else if (cfg.mobility == MobilityKind::kManhattan) {
    auto grid = std::make_unique<mobility::ManhattanGridModel>(cfg.manhattan);
    grid->populate(cfg.vehicles, rngs.stream("mobility-init"));
    model = std::move(grid);
  } else if (cfg.mobility == MobilityKind::kGraph) {
    auto graph_model =
        std::make_unique<mobility::GraphMobilityModel>(graph, cfg.graph);
    graph_model->populate(cfg.vehicles, rngs.stream("mobility-init"));
    if (graph_model_out != nullptr) *graph_model_out = graph_model.get();
    model = std::move(graph_model);
  } else {
    auto playback = std::make_unique<mobility::TracePlaybackModel>(cfg.trace);
    // Node ids mirror vehicle ids, so the trace must use dense ids.
    const auto& vs = playback->vehicles();
    for (std::size_t i = 0; i < vs.size(); ++i) {
      VANET_ASSERT_MSG(vs[i].id == i, "trace vehicle ids must be dense 0..N-1");
    }
    model = std::move(playback);
  }
  return model;
}

std::unique_ptr<net::PropagationModel> make_propagation(
    const ScenarioConfig& cfg) {
  switch (cfg.phy) {
    case PhyModel::kShadowing:
      return std::make_unique<net::LogNormalShadowingModel>(cfg.signal);
    case PhyModel::kNakagami:
      // Thrown (not asserted): a bad sweep axis must become a structured
      // failure row in the experiment engine, not a process abort.
      if (cfg.nakagami_m < 1) {
        throw std::invalid_argument("phy.nakagami_m must be >= 1");
      }
      return std::make_unique<net::NakagamiFadingModel>(cfg.signal,
                                                        cfg.nakagami_m);
    case PhyModel::kUnitDisk:
      break;
  }
  return std::make_unique<net::UnitDiskModel>(cfg.comm_range_m);
}

Scenario::Scenario(ScenarioConfig cfg) : cfg_{std::move(cfg)}, rngs_{cfg_.seed} {
  if (resolve_shard_count(cfg_) > 1) {
    sharded_engine_ = std::make_unique<sharded::ShardedScenario>(cfg_);
    return;
  }
  build_map();
  build_mobility();
  build_network();
  build_support();
  build_protocols();
  build_traffic();
  build_faults();
}

Scenario::~Scenario() = default;

void Scenario::build_map() {
  road_graph_ = build_road_graph(cfg_);
  segment_index_ = std::make_unique<map::SegmentIndex>(*road_graph_);
}

void Scenario::build_mobility() {
  if (cfg_.mobility == MobilityKind::kTrace &&
      cfg_.map.source == MapSource::kFile) {
    validate_trace_against_map(cfg_, *road_graph_, *segment_index_);
  }
  std::unique_ptr<mobility::MobilityModel> model =
      make_mobility_model(cfg_, road_graph_, rngs_, &graph_model_);
  vehicle_count_ = model->vehicles().size();
  VANET_ASSERT_MSG(vehicle_count_ >= 2, "scenario needs at least two vehicles");
  mobility_ = std::make_unique<mobility::MobilityManager>(
      sim_, std::move(model), rngs_.stream("mobility"),
      core::SimTime::seconds(cfg_.mobility_tick_s));
}

void Scenario::build_network() {
  net_ = std::make_unique<net::Network>(sim_, mobility_.get(),
                                        make_propagation(cfg_),
                                        rngs_.stream("net"), cfg_.net);
  for (std::size_t v = 0; v < vehicle_count_; ++v) {
    net_->add_vehicle_node(static_cast<mobility::VehicleId>(v));
  }
  // Place RSUs evenly along the deployment area.
  if (cfg_.rsu_count > 0) {
    if (cfg_.mobility == MobilityKind::kHighway) {
      const double spacing = cfg_.highway.length / cfg_.rsu_count;
      for (int k = 0; k < cfg_.rsu_count; ++k) {
        // On the median between the carriageways.
        net_->add_rsu({(k + 0.5) * spacing, -cfg_.highway.median_gap / 2.0});
      }
    } else {
      // Scenarios with a real map (graph mobility, or any imported file map
      // — including trace playback over one) cover the actual map extent,
      // which need not start at the origin; the synthetic urban kinds keep
      // the configured lattice dimensions.
      double x0 = 0.0, y0 = 0.0;
      double w = (cfg_.manhattan.streets_x - 1) * cfg_.manhattan.block;
      double h = (cfg_.manhattan.streets_y - 1) * cfg_.manhattan.block;
      if (cfg_.mobility == MobilityKind::kGraph ||
          cfg_.map.source == MapSource::kFile) {
        x0 = road_graph_->bbox_min().x;
        y0 = road_graph_->bbox_min().y;
        w = road_graph_->bbox_max().x - x0;
        h = road_graph_->bbox_max().y - y0;
      }
      const int per_side = std::max(1, static_cast<int>(std::lround(
                                           std::sqrt(cfg_.rsu_count))));
      int placed = 0;
      for (int i = 0; i < per_side && placed < cfg_.rsu_count; ++i) {
        for (int j = 0; j < per_side && placed < cfg_.rsu_count; ++j) {
          const double x = per_side == 1 ? w / 2.0 : i * w / (per_side - 1);
          const double y = per_side == 1 ? h / 2.0 : j * h / (per_side - 1);
          net_->add_rsu({x0 + x, y0 + y});
          ++placed;
        }
      }
    }
    net_->connect_backbone();
  }
}

void Scenario::build_support() {
  // Ferry designation: spread bus ids evenly over the vehicle id space.
  ferries_ = std::make_shared<routing::FerrySet>();
  if (cfg_.bus_count > 0) {
    const std::size_t stride =
        std::max<std::size_t>(1, vehicle_count_ / cfg_.bus_count);
    for (std::size_t k = 0; k < static_cast<std::size_t>(cfg_.bus_count) &&
                            k * stride < vehicle_count_;
         ++k) {
      ferries_->insert(static_cast<net::NodeId>(k * stride));
    }
  }
  // Density oracle over the shared road graph (built in build_map).
  density_ =
      std::make_shared<map::SegmentDensityOracle>(road_graph_->segment_count());
  // Incremental refresh: graph mobility proves per-vehicle segments at tick
  // time, so the 1 Hz refresh only queries the SegmentIndex for vehicles the
  // model cannot vouch for (near intersections, or on segments whose
  // interiors are geometrically ambiguous — none on lattices).
  incremental_density_ =
      cfg_.density_incremental && cfg_.mobility == MobilityKind::kGraph;
  if (incremental_density_) {
    segment_ambiguous_ = map::ambiguous_interior_segments(*road_graph_);
  }
  // Scenario-owned caches: the lifetime memo (exact by default, interp by
  // opt-in, absent when both keys are off) and the per-tick segment
  // snapshot. Both are shared with the protocols in build_protocols.
  if (cfg_.lifetime_interp) {
    lifetime_memo_ =
        std::make_unique<analysis::LifetimeMemo>(analysis::LifetimeMemo::Mode::kInterp);
  } else if (cfg_.lifetime_memo) {
    lifetime_memo_ = std::make_unique<analysis::LifetimeMemo>();
  }
  seg_snapshot_ = std::make_unique<map::SegmentSnapshot>(*segment_index_);
  if (incremental_density_) {
    // Graph mobility proves driven segments (MobilityModel::reported_segment)
    // for positions it produced this tick; declining on any position mismatch
    // keeps the prover safe against non-current (stamped or extrapolated)
    // positions a protocol might feed the snapshot.
    seg_snapshot_->set_prover([this](std::uint32_t id, core::Vec2 pos) -> int {
      const std::size_t i = mobility_->model_index(id);
      if (i == mobility::MobilityManager::npos) return -1;
      if (mobility_->vehicles()[i].pos != pos) return -1;
      int seg = mobility_->model().reported_segment(i);
      if (seg >= 0 && segment_ambiguous_[static_cast<std::size_t>(seg)]) {
        seg = -1;
      }
      return seg;
    });
  }
  schedule_density_updates();
}

void Scenario::update_density() {
  std::vector<double> counts(road_graph_->segment_count(), 0.0);
  const auto& vehicles = mobility_->vehicles();
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    int seg;
    if (incremental_density_) {
      // Through the snapshot: its prover is exactly the proven
      // reported_segment + ambiguity-mask logic this loop used to inline,
      // its fallback the same index query — digest-identical — and routing
      // the refresh through it warms the per-node entries the route-geometry
      // protocols read.
      seg = seg_snapshot_->segment_of(vehicles[i].id, vehicles[i].pos);
    } else {
      // Full rescan (`density.incremental=false`): direct index queries,
      // deliberately bypassing every cache so the equivalence test compares
      // against an independent path. The index returns exactly
      // RoadGraph::segment_of_position(pos) — see map/segment_index.h —
      // without the O(segments) scan per vehicle.
      seg = segment_index_->nearest_segment(vehicles[i].pos);
    }
    counts[static_cast<std::size_t>(seg)] += 1.0;
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    density_->set_count(static_cast<int>(s), counts[s]);
  }
}

void Scenario::schedule_density_updates() {
  // Refresh per-segment vehicle counts once per second (ground-truth
  // stand-in for CAR's statistics dissemination; see map/road_graph.h).
  update_density();
  sim_.schedule(core::SimTime::seconds(1.0),
                [this] { schedule_density_updates(); });
}

void Scenario::build_protocols() {
  routing::ProtocolDeps deps;
  deps.signal = cfg_.signal;
  deps.road_graph = road_graph_;
  deps.density = density_;
  deps.ferries = ferries_;
  deps.yan_tickets = cfg_.yan_tickets;
  deps.zone_geometry = cfg_.zone_geometry;
  deps.grid_geometry = cfg_.grid_geometry;
  deps.gvgrid_geometry = cfg_.gvgrid_geometry;
  deps.etx = cfg_.etx;
  deps.flood_suppression = cfg_.flood_suppression;

  const auto ids = net_->node_ids();
  VANET_ASSERT_MSG(!ids.empty(), "scenario requires at least one node");
  protocols_.reserve(ids.size());
  for (net::NodeId id : ids) {
    (void)id;
    protocols_.push_back(routing::ProtocolRegistry::make(cfg_.protocol, deps));
  }
  const bool wants_hello = protocols_.front()->wants_hello();
  if (wants_hello) {
    hello_ = std::make_unique<net::HelloService>(*net_, rngs_.stream("hello"),
                                                 cfg_.hello);
  }
  for (net::NodeId id : ids) {
    routing::ProtocolContext ctx;
    ctx.sim = &sim_;
    ctx.net = net_.get();
    ctx.hello = hello_.get();
    ctx.rng = &rngs_.stream("proto");
    ctx.events = &events_;
    ctx.self = id;
    // Every protocol sees the same shared road topology the vehicles drive
    // on (non-owning; the scenario outlives the protocols), and the same
    // scenario-owned caches.
    ctx.map = road_graph_.get();
    ctx.segments = segment_index_.get();
    ctx.lifetime_memo = lifetime_memo_.get();
    ctx.seg_snapshot = seg_snapshot_.get();
    protocols_[id]->bind(ctx);

    net_->set_receive_handler(id, [this, id](const net::Packet& p) {
      if (p.kind == net::PacketKind::kHello) {
        if (hello_) hello_->on_frame(id, p);
        return;
      }
      protocols_[id]->handle_frame(p);
    });
    net_->set_unicast_fail_handler(id, [this, id](const net::Packet& p) {
      protocols_[id]->handle_unicast_failure(p);
    });
    protocols_[id]->set_deliver_callback([this](const net::Packet& p) {
      metrics_.record_delivery(p.flow, p.seq, p.created_at, sim_.now(), p.hops);
    });
  }
}

void Scenario::build_traffic() {
  std::vector<routing::RoutingProtocol*> raw;
  raw.reserve(protocols_.size());
  for (auto& p : protocols_) raw.push_back(p.get());
  traffic_ = std::make_unique<CbrTraffic>(sim_, *net_, std::move(raw),
                                          vehicle_count_, metrics_,
                                          rngs_.stream("traffic"), cfg_.traffic);
}

void Scenario::build_faults() {
  // Disabled means *nothing* happens: the "fault" stream is never derived,
  // no event is scheduled and metrics keep their lean path — provably
  // bit-identical to a build without the fault subsystem.
  if (!cfg_.fault.enabled) return;
  fault_plan_ = std::make_unique<FaultPlan>(sim_, *net_, graph_model_,
                                            rngs_.stream("fault"), cfg_.fault,
                                            cfg_.duration_s);
  metrics_.set_fault_tracking(true);
}

void Scenario::sample_reachability() {
  const auto& flows = traffic_->flows();
  if (!flows.empty()) {
    // One component labeling answers every flow at this instant; running a
    // BFS per flow re-derived the same adjacency per pair.
    const std::vector<std::uint32_t> labels =
        net_->reachability_components(net_->nominal_range());
    for (const auto& flow : flows) {
      ++total_samples_;
      if (labels[flow.src] == labels[flow.dst]) ++reachable_samples_;
    }
  }
  sim_.schedule(core::SimTime::seconds(1.0), [this] { sample_reachability(); });
}

void Scenario::run() {
  if (ran_) return;
  ran_ = true;
  if (sharded_engine_) {
    sharded_engine_->run();
    return;
  }
  mobility_->start();
  if (hello_) hello_->start();
  for (auto& p : protocols_) p->start();
  traffic_->start();
  if (fault_plan_) fault_plan_->start();
  if (cfg_.sample_reachability) {
    // Sample over the traffic window only (flows exist after start()).
    sim_.schedule(core::SimTime::seconds(cfg_.traffic.start_s),
                  [this] { sample_reachability(); });
  }
  sim_.run_until(core::SimTime::seconds(cfg_.duration_s));
}

ScenarioReport assemble_report(const ScenarioConfig& cfg,
                               const Metrics& metrics,
                               const net::NetCounters& c,
                               const routing::ProtocolEvents& events,
                               std::uint64_t reachable_samples,
                               std::uint64_t total_samples) {
  ScenarioReport r;
  r.protocol = cfg.protocol;
  r.pdr = metrics.pdr();
  r.delay_ms_mean = metrics.delay_ms().mean();
  r.delay_ms_p95_hint =
      metrics.delay_ms().mean() + 2.0 * metrics.delay_ms().stddev();
  r.hops_mean = metrics.hops().mean();
  r.originated = metrics.originated();
  r.delivered = metrics.delivered();
  r.control_frames = c.control_frames_sent;
  r.hello_frames = c.hello_frames_sent;
  r.data_frames = c.data_frames_sent;
  r.backbone_frames = c.backbone_frames;
  r.receptions_ok = c.receptions_ok;
  r.control_per_delivered =
      r.delivered > 0 ? static_cast<double>(r.control_frames + r.hello_frames) /
                            static_cast<double>(r.delivered)
                      : static_cast<double>(r.control_frames + r.hello_frames);
  const std::uint64_t attempted =
      c.receptions_ok + c.receptions_collided + c.receptions_faded;
  r.collision_fraction =
      attempted > 0
          ? static_cast<double>(c.receptions_collided) /
                static_cast<double>(attempted)
          : 0.0;
  r.reachable_fraction =
      total_samples > 0 ? static_cast<double>(reachable_samples) /
                              static_cast<double>(total_samples)
                        : 0.0;
  r.route_breaks = events.route_breaks;
  r.discoveries = events.discoveries_started;
  r.preemptive_rebuilds = events.preemptive_rebuilds;
  r.predicted_lifetime_mean_s = events.predicted_route_lifetime.mean();
  r.observed_lifetime_mean_s = events.observed_route_lifetime.mean();
  if (cfg.protocol == "etx" ||
      cfg.flood_suppression != routing::FloodSuppression::kNone) {
    r.linkquality_enabled = true;
    r.etx_link_error_mean = events.etx_link_abs_error.mean();
    r.etx_link_samples = events.etx_link_abs_error.count();
    r.suppressed_rebroadcasts = events.suppressed_rebroadcasts;
  }
  return r;
}

ScenarioReport Scenario::report() const {
  if (sharded_engine_) return sharded_engine_->report();
  ScenarioReport r = assemble_report(cfg_, metrics_, net_->counters(), events_,
                                     reachable_samples_, total_samples_);
  const auto& c = net_->counters();
  if (fault_plan_) {
    r.fault_enabled = true;
    // Classify both sides of the delivery ledger by *send* time against the
    // completed fault timeline (see Metrics::set_fault_tracking).
    for (const core::SimTime t : metrics_.origination_times()) {
      if (fault_plan_->fault_active_at(t)) ++r.faulted_originated;
    }
    for (const core::SimTime t : metrics_.first_delivery_sent_times()) {
      if (fault_plan_->fault_active_at(t)) ++r.faulted_delivered;
    }
    r.pdr_under_fault =
        r.faulted_originated > 0
            ? static_cast<double>(r.faulted_delivered) /
                  static_cast<double>(r.faulted_originated)
            : 0.0;
    const FaultCounters& fc = fault_plan_->counters();
    r.node_outages = fc.node_outages;
    r.node_restarts = fc.node_restarts;
    r.segment_blocks = fc.segment_blocks;
    r.frames_dropped_down = c.frames_dropped_down;
    r.recovery_latency_mean_s = net_->recovery_latency().mean();
  }
  return r;
}

core::Simulator& Scenario::simulator() {
  return sharded_engine_ ? sharded_engine_->coordinator() : sim_;
}

net::Network& Scenario::network() {
  VANET_ASSERT_MSG(!sharded_engine_, "network(): serial path only");
  return *net_;
}

mobility::MobilityManager& Scenario::mobility() {
  return sharded_engine_ ? sharded_engine_->mobility() : *mobility_;
}

Metrics& Scenario::metrics() {
  VANET_ASSERT_MSG(!sharded_engine_, "metrics(): serial path only");
  return metrics_;
}

routing::ProtocolEvents& Scenario::events() {
  VANET_ASSERT_MSG(!sharded_engine_, "events(): serial path only");
  return events_;
}

std::size_t Scenario::vehicle_count() const {
  return sharded_engine_ ? sharded_engine_->vehicle_count() : vehicle_count_;
}

const map::RoadGraph& Scenario::road_graph() const {
  return sharded_engine_ ? sharded_engine_->road_graph() : *road_graph_;
}

int Scenario::shard_count() const {
  return sharded_engine_ ? sharded_engine_->shards() : 1;
}

int Scenario::shard_thread_count() const {
  return sharded_engine_ ? sharded_engine_->threads() : 1;
}

std::uint64_t Scenario::events_dispatched() const {
  return sharded_engine_ ? sharded_engine_->events_dispatched()
                         : sim_.events_dispatched();
}

core::EventQueue::AllocStats Scenario::scheduler_stats() const {
  return sharded_engine_ ? sharded_engine_->scheduler_stats()
                         : sim_.scheduler_stats();
}

}  // namespace vanet::sim
