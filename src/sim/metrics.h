// End-to-end metrics collection for scenario runs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/stats.h"
#include "core/sim_time.h"

namespace vanet::sim {

/// Counts originated/delivered application packets and accumulates delay and
/// hop statistics. Duplicate deliveries of the same (flow, seq) are ignored.
class Metrics {
 public:
  /// Per-flow accumulators (delays in milliseconds).
  struct FlowStats {
    std::uint64_t originated = 0;
    std::uint64_t delivered = 0;
    analysis::RunningStats delay_ms;
    double pdr() const {
      return originated > 0
                 ? static_cast<double>(delivered) / static_cast<double>(originated)
                 : 0.0;
    }
  };

  void record_originated(std::uint32_t flow = 0,
                         core::SimTime now = core::SimTime::zero());

  /// Returns true when this was the first delivery of (flow, seq).
  bool record_delivery(std::uint32_t flow, std::uint32_t seq,
                       core::SimTime sent_at, core::SimTime now, int hops);

  /// When enabled (scenario does so iff fault injection is on), every
  /// origination time and every first delivery's *send* time are retained so
  /// the scenario can classify traffic against the completed fault timeline
  /// after the run (sim::FaultPlan::fault_active_at). Classifying both sides
  /// by the same timestamp with the same finished timeline keeps the split
  /// consistent even for packets sent at the instant of a transition.
  void set_fault_tracking(bool on) { fault_tracking_ = on; }
  const std::vector<core::SimTime>& origination_times() const {
    return origination_times_;
  }
  const std::vector<core::SimTime>& first_delivery_sent_times() const {
    return first_delivery_sent_times_;
  }

  /// Stats for one flow (zero-initialised if never seen).
  const FlowStats& flow_stats(std::uint32_t flow) const;

  /// Fold another collector into this one (sharded runs merge the per-shard
  /// collectors in shard order). Deterministic: per-flow state merges in
  /// ascending flow id and the running stats combine with the same
  /// fixed-order merge the parallel experiment engine relies on. Callers
  /// guarantee disjoint (flow, seq) delivery sets — each delivery lands on
  /// exactly one shard (the destination's owner) — so dedup stays exact.
  void merge_from(const Metrics& other);

  std::uint64_t originated() const { return originated_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t duplicate_deliveries() const { return duplicates_; }

  /// Packet delivery ratio in [0, 1]; 0 when nothing was originated.
  double pdr() const;

  const analysis::RunningStats& delay_ms() const { return delay_ms_; }
  const analysis::RunningStats& hops() const { return hops_; }

 private:
  std::uint64_t originated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
  analysis::RunningStats delay_ms_;
  analysis::RunningStats hops_;
  std::unordered_set<std::uint64_t> seen_;
  std::unordered_map<std::uint32_t, FlowStats> flows_;
  bool fault_tracking_ = false;
  std::vector<core::SimTime> origination_times_;
  std::vector<core::SimTime> first_delivery_sent_times_;
};

}  // namespace vanet::sim
