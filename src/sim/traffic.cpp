#include "sim/traffic.h"

#include "core/assert.h"

namespace vanet::sim {

CbrTraffic::CbrTraffic(core::Simulator& sim, net::Network& net,
                       std::vector<routing::RoutingProtocol*> protocols,
                       std::size_t vehicle_count, Metrics& metrics,
                       core::Rng& rng, TrafficConfig cfg)
    : sim_{sim},
      net_{net},
      protocols_{std::move(protocols)},
      vehicle_count_{vehicle_count},
      metrics_{metrics},
      rng_{rng},
      cfg_{cfg} {
  VANET_ASSERT(vehicle_count_ >= 2);
  VANET_ASSERT(cfg_.flows >= 1 && cfg_.rate_pps > 0.0);
  VANET_ASSERT(cfg_.stop_s > cfg_.start_s);
}

void CbrTraffic::pick_flows() {
  const auto max_id = static_cast<std::int64_t>(vehicle_count_ - 1);
  for (int f = 0; f < cfg_.flows; ++f) {
    Flow flow;
    bool ok = false;
    for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
      flow.src = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
      flow.dst = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
      if (flow.src == flow.dst) continue;
      const double d =
          (net_.position(flow.src) - net_.position(flow.dst)).norm();
      ok = d >= cfg_.min_pair_distance_m;
    }
    if (!ok) {
      // Fall back to any distinct pair (dense maps may lack far pairs).
      do {
        flow.src = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
        flow.dst = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
      } while (flow.src == flow.dst);
    }
    flows_.push_back(flow);
  }
}

void CbrTraffic::start() {
  pick_flows();
  const double interval = 1.0 / cfg_.rate_pps;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    // Stagger flows across one interval to avoid synchronized bursts.
    const double offset = rng_.uniform(0.0, interval);
    std::uint32_t seq = 0;
    for (double t = cfg_.start_s + offset; t < cfg_.stop_s; t += interval) {
      const std::uint32_t this_seq = seq++;
      sim_.schedule_at(core::SimTime::seconds(t), [this, f, this_seq] {
        send_packet(f, this_seq);
      });
    }
  }
}

void CbrTraffic::send_packet(std::size_t flow_idx, std::uint32_t seq) {
  const Flow& flow = flows_[flow_idx];
  metrics_.record_originated(static_cast<std::uint32_t>(flow_idx));
  protocols_[flow.src]->originate(flow.dst, static_cast<std::uint32_t>(flow_idx),
                                  seq, cfg_.payload_bytes);
}

}  // namespace vanet::sim
