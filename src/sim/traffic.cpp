#include "sim/traffic.h"

#include "core/assert.h"

namespace vanet::sim {

CbrTraffic::CbrTraffic(core::Simulator& sim, net::Network& net,
                       std::vector<routing::RoutingProtocol*> protocols,
                       std::size_t vehicle_count, Metrics& metrics,
                       core::Rng& rng, TrafficConfig cfg)
    : sim_{sim},
      net_{net},
      protocols_{std::move(protocols)},
      vehicle_count_{vehicle_count},
      metrics_{metrics},
      rng_{rng},
      cfg_{cfg} {
  VANET_ASSERT(vehicle_count_ >= 2);
  VANET_ASSERT(cfg_.flows >= 1 && cfg_.rate_pps > 0.0);
  VANET_ASSERT(cfg_.stop_s > cfg_.start_s);
}

void CbrTraffic::pick_flows() {
  const auto max_id = static_cast<std::int64_t>(vehicle_count_ - 1);
  for (int f = 0; f < cfg_.flows; ++f) {
    Flow flow;
    bool ok = false;
    for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
      flow.src = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
      flow.dst = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
      if (flow.src == flow.dst) continue;
      const double d =
          (net_.position(flow.src) - net_.position(flow.dst)).norm();
      ok = d >= cfg_.min_pair_distance_m;
    }
    if (!ok) {
      // Fall back to any distinct pair (dense maps may lack far pairs).
      do {
        flow.src = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
        flow.dst = static_cast<net::NodeId>(rng_.uniform_int(0, max_id));
      } while (flow.src == flow.dst);
    }
    flows_.push_back(flow);
  }
}

void CbrTraffic::start() {
  pick_flows();
  const double interval = 1.0 / cfg_.rate_pps;
  // One recurring pooled event per flow instead of pre-scheduling every
  // packet. Determinism: the historical implementation scheduled all packets
  // upfront (flow-major), so each packet's equal-time FIFO rank came from
  // that bulk pass. Reserving the same contiguous sequence block here and
  // letting each flow consume its sub-block per firing reproduces those
  // ranks — and the per-packet times replay the same float accumulation
  // (`t += interval`) the bulk loop used — so dispatch order is unchanged
  // bit-for-bit while the heap holds one entry per flow.
  std::uint32_t total = 0;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    // Stagger flows across one interval to avoid synchronized bursts.
    const double offset = rng_.uniform(0.0, interval);
    Flow& flow = flows_[f];
    flow.next_t = cfg_.start_s + offset;
    flow.packets_left = 0;
    for (double t = flow.next_t; t < cfg_.stop_s; t += interval) {
      ++flow.packets_left;
    }
    total += flow.packets_left;
  }
  std::uint32_t seq_base = sim_.reserve_seq_block(total);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    Flow& flow = flows_[f];
    if (flow.packets_left == 0) continue;
    if (source_filter_ && !source_filter_(flow.src)) {
      // Another shard owns this source; it schedules the identical flow
      // from its own copy of this loop. The seq-block slice is still
      // consumed below so every shard's reservation layout matches.
      seq_base += flow.packets_left;
      continue;
    }
    sim_.schedule_recurring_at(
        core::SimTime::seconds(flow.next_t), seq_base, flow.packets_left,
        [this, f](core::SimTime) { return fire_flow(f); });
    seq_base += flow.packets_left;
  }
}

core::SimTime CbrTraffic::fire_flow(std::size_t flow_idx) {
  Flow& flow = flows_[flow_idx];
  send_packet(flow_idx, flow.app_seq++);
  flow.next_t += 1.0 / cfg_.rate_pps;
  if (--flow.packets_left == 0) return core::SimTime::micros(-1);
  return core::SimTime::seconds(flow.next_t);
}

void CbrTraffic::send_packet(std::size_t flow_idx, std::uint32_t seq) {
  const Flow& flow = flows_[flow_idx];
  metrics_.record_originated(static_cast<std::uint32_t>(flow_idx), sim_.now());
  protocols_[flow.src]->originate(flow.dst, static_cast<std::uint32_t>(flow_idx),
                                  seq, cfg_.payload_bytes);
}

}  // namespace vanet::sim
