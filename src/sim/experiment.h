// Declarative experiment API: a spec describes a whole run matrix —
// base config x protocols x named sweep axes x seeds — and the engine
// executes it, optionally across a worker thread pool.
//
// Each Scenario is self-contained and seed-deterministic, so runs are
// embarrassingly parallel. The engine exploits that: workers race through a
// flattened job list, but results are stored by matrix index and aggregated
// afterwards in fixed (cell, seed) order, so every aggregate — and every
// byte a ReportSink emits — is identical for jobs=1 and jobs=N.
//
// Axes address ScenarioConfig fields through the config_kv string layer, so
// any knob is sweepable (`vehicles`, `traffic.rate_pps`, `hello.interval_s`,
// even `protocol` itself when row ordering should interleave protocols).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/config_kv.h"
#include "sim/report_sink.h"
#include "sim/runner.h"

namespace vanet::sim {

/// One sweep dimension: a config_kv key and the values it takes.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Crash-proofing knobs for each (cell, seed) run of a sweep.
///
/// With `capture` on (the default), a run that throws — bad config, protocol
/// bug, watchdog abort — becomes a structured FailureRecord fed to every
/// ReportSink instead of killing the whole sweep; the remaining runs still
/// execute and aggregate. With `capture` off the engine keeps the legacy
/// fail-fast contract: the first exception is rethrown on the calling thread
/// after all workers join.
///
/// `timeout_s` arms a wall-clock watchdog per run attempt and `max_events` a
/// simulator event budget; either tripping aborts the run with kind
/// "timeout" / "event-budget". Both are polled every ~1024 dispatched
/// events. The event budget trips deterministically (same event stream, same
/// trip point) and its failure message mentions only the configured budget,
/// so captured output is byte-identical across jobs=1 and jobs=N. The
/// wall-clock watchdog never feeds sim state, so runs that survive it are
/// unaffected. Zero disables each.
///
/// `retries` re-runs a failed attempt up to that many extra times, each with
/// a fresh seed from derive_retry_seed(seed, attempt) — deterministic, so a
/// retried sweep is still reproducible run-for-run.
struct RunGuards {
  bool capture = true;
  double timeout_s = 0.0;
  std::uint64_t max_events = 0;
  int retries = 0;
};

struct ExperimentSpec {
  ScenarioConfig base;
  /// Protocols to compare (outermost dimension). Empty: just base.protocol.
  std::vector<std::string> protocols;
  /// Cartesian product of axes; the first axis varies slowest.
  std::vector<SweepAxis> axes;
  /// Seeds aggregated per cell. Empty specs are invalid.
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  /// Extra key=value overrides applied only when the cell's protocol matches
  /// — e.g. grant an infrastructure protocol its RSUs without sweeping every
  /// protocol through rsu_count.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      protocol_overrides;
  /// Failure capture / watchdog / retry policy (see RunGuards).
  RunGuards guards;
  /// Per-run throughput capture: time each run's Scenario::run() and record
  /// events dispatched + effective shards/threads into the run and aggregate
  /// records (RunRecord::profiled gates the extra sink fields, so an
  /// unprofiled sweep's output stays byte-identical to historical output).
  /// Wall-clock readings are inherently nondeterministic, so a profiled
  /// sweep's JSONL is NOT byte-comparable across jobs=1 / jobs=N — use it
  /// for perf harnesses (bench_scenario_throughput, CI smoke), never for
  /// digest comparisons.
  bool profile = false;
};

/// Seed for retry attempt `attempt` (attempt 0 is the original seed).
/// SplitMix64 of (seed, attempt): deterministic, well-mixed, and never
/// collides with the original seed stream for attempt > 0 in practice.
std::uint64_t derive_retry_seed(std::uint64_t seed, int attempt);

/// One cell of the expanded matrix (a fully resolved config minus the seed).
struct ExperimentCell {
  std::string protocol;
  std::vector<std::pair<std::string, std::string>> axes;  ///< {key, value}
  ScenarioConfig config;  ///< seed forced to 0; set per run
  std::string digest;     ///< config_digest of `config`
};

/// Deterministic matrix expansion. Throws std::invalid_argument for unknown
/// protocols, unknown axis keys, bad axis values, or an empty seed list.
std::vector<ExperimentCell> expand(const ExperimentSpec& spec);

struct ExperimentResult {
  std::vector<AggregateRecord> cells;  ///< matrix order
  /// Runs that failed every attempt, matrix order. Empty unless the spec's
  /// guards captured failures (guards.capture and something actually broke).
  std::vector<FailureRecord> failures;
};

/// Threading contract (ThreadSanitizer-enforced — the CI tsan job runs the
/// suite, a --jobs 4 sweep and the bench smoke row under -DVANET_TSAN=ON):
/// workers claim jobs from one atomic counter and write results into
/// disjoint per-job slots; no Scenario state is shared across threads; a
/// worker's exception is captured and rethrown on the calling thread after
/// all workers join; sinks are only ever written by the calling thread,
/// after the join, in matrix order. Keep any new shared state inside this
/// design (or extend the tsan job's workloads to cover it).
class ExperimentEngine {
 public:
  /// `jobs` worker threads; <= 0 means hardware concurrency.
  explicit ExperimentEngine(int jobs = 1);

  ExperimentResult run(const ExperimentSpec& spec);
  ExperimentResult run(const ExperimentSpec& spec, ReportSink& sink);
  /// All sinks observe the same deterministic record stream.
  ExperimentResult run(const ExperimentSpec& spec,
                       const std::vector<ReportSink*>& sinks);

  int jobs() const { return jobs_; }

 private:
  int jobs_;
};

}  // namespace vanet::sim
