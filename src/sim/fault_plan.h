// Deterministic fault injection: node churn, road incidents, planned outages.
//
// A FaultPlan is owned by the scenario and drives the generic fault
// capabilities of the lower layers — net::Network::set_node_up() and
// mobility::GraphMobilityModel::set_segment_blocked() — from two sources:
//
//  - a *planned* schedule (`fault.plan`, parse_fault_plan syntax below):
//    explicit node outages and segment blocks at fixed times, for
//    reproducible what-if experiments and golden pins;
//  - *seeded churn* (`fault.vehicle_mtbf_s` / `fault.rsu_mtbf_s`): per-node
//    crash times drawn from an exponential inter-failure distribution with a
//    fixed downtime per class, for statistical availability studies.
//
// Every random draw comes from the dedicated "fault" RNG stream, so enabling
// or tuning faults never perturbs mobility, MAC, protocol or traffic
// randomness — and with `fault.enabled=false` the plan is never constructed,
// no stream is derived and no event is scheduled: runs are bit-identical to
// a build without this subsystem (pinned by the golden digests).
//
// Overlap semantics are last-writer-wins: transitions are applied
// idempotently (a crash of an already-down node is a no-op) and a restart
// brings the node up regardless of which fault took it down. The timeline of
// *applied* transitions backs fault_active_at(), the oracle the metrics
// layer uses to classify traffic into fault-active vs fault-free windows.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/sim_time.h"
#include "core/simulator.h"
#include "mobility/graph_mobility.h"
#include "net/network.h"

namespace vanet::sim {

/// `fault.*` scenario keys (see config_kv.cpp / docs/ROBUSTNESS.md).
struct FaultConfig {
  bool enabled = false;          ///< master switch; false = zero side effects
  std::string plan;              ///< planned faults, parse_fault_plan syntax
  double vehicle_mtbf_s = 0.0;   ///< mean time between vehicle radio crashes;
                                 ///< 0 disables vehicle churn
  double vehicle_downtime_s = 10.0;
  double rsu_mtbf_s = 0.0;       ///< mean time between RSU outages; 0 = off
  double rsu_downtime_s = 20.0;
};

/// One entry of the planned schedule.
struct PlannedFault {
  enum class Kind { kNode, kSegment };
  Kind kind = Kind::kNode;
  int id = 0;            ///< node id or road-segment id
  double at_s = 0.0;     ///< outage / block start (simulation seconds)
  double until_s = -1.0; ///< restart / clear; negative = never
};

/// Parses the `fault.plan` string: ';'-separated entries of the form
///   node:<id>:<down_s>[:<up_s>]   — node outage (restart optional)
///   seg:<id>:<block_s>[:<clear_s>] — segment block (clear optional)
/// Whitespace around entries is ignored; empty entries are skipped. Throws
/// std::invalid_argument naming the offending entry on any syntax error.
std::vector<PlannedFault> parse_fault_plan(const std::string& plan);

/// Applied-transition accounting (reported per run).
struct FaultCounters {
  std::uint64_t node_outages = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t segment_blocks = 0;
  std::uint64_t segment_clears = 0;
};

class FaultPlan {
 public:
  /// `roads` may be null when the scenario has no graph mobility; the plan
  /// then rejects segment faults at start(). `rng` must be the dedicated
  /// "fault" stream. `duration_s` bounds scheduling: transitions beyond the
  /// horizon are never enqueued.
  FaultPlan(core::Simulator& sim, net::Network& net,
            mobility::GraphMobilityModel* roads, core::Rng& rng,
            FaultConfig cfg, double duration_s);

  /// Validates the configuration (plan syntax, ids in range, churn
  /// parameters) and schedules every planned transition plus the first
  /// seeded crash per node. Throws std::invalid_argument on a bad plan —
  /// before any event is enqueued, so the experiment engine can turn the
  /// error into a structured failure row. Call at most once, before run.
  void start();

  /// True when at least one injected fault (node down or segment blocked)
  /// was active at time `t`. Backed by the applied-transition timeline, so
  /// it answers consistently for any t up to the current simulation time.
  bool fault_active_at(core::SimTime t) const;

  const FaultCounters& counters() const { return counters_; }

 private:
  void apply_node(net::NodeId id, bool up);
  void apply_segment(int seg, bool blocked);
  /// Schedules the next seeded crash of `id` at absolute time `at` (no-op
  /// beyond the horizon); the crash event re-arms restart and next crash.
  void schedule_churn_crash(net::NodeId id, core::SimTime at);
  void mark(core::SimTime t, int delta);

  core::Simulator& sim_;
  net::Network& net_;
  mobility::GraphMobilityModel* roads_;
  core::Rng& rng_;
  FaultConfig cfg_;
  core::SimTime end_;
  bool started_ = false;
  /// (time, active fault count after the transition), appended in event
  /// order — sorted by construction.
  std::vector<std::pair<core::SimTime, int>> timeline_;
  int active_ = 0;
  FaultCounters counters_;
};

}  // namespace vanet::sim
