#include "sim/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "core/assert.h"

namespace vanet::sim {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void bad_entry(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("fault.plan entry '" + entry + "': " + why);
}

int parse_id(const std::string& entry, const std::string& tok) {
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(tok, &used);
  } catch (const std::exception&) {
    bad_entry(entry, "bad id '" + tok + "'");
  }
  if (used != tok.size() || v < 0) bad_entry(entry, "bad id '" + tok + "'");
  return v;
}

double parse_time(const std::string& entry, const std::string& tok) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    bad_entry(entry, "bad time '" + tok + "'");
  }
  if (used != tok.size() || !(v >= 0.0)) {
    bad_entry(entry, "bad time '" + tok + "'");
  }
  return v;
}

}  // namespace

std::vector<PlannedFault> parse_fault_plan(const std::string& plan) {
  std::vector<PlannedFault> out;
  std::size_t pos = 0;
  while (pos <= plan.size()) {
    const std::size_t semi = std::min(plan.find(';', pos), plan.size());
    const std::string entry = trim(plan.substr(pos, semi - pos));
    pos = semi + 1;
    if (entry.empty()) continue;

    std::vector<std::string> tok;
    std::size_t t = 0;
    while (t <= entry.size()) {
      const std::size_t colon = std::min(entry.find(':', t), entry.size());
      tok.push_back(trim(entry.substr(t, colon - t)));
      t = colon + 1;
    }
    if (tok.size() < 3 || tok.size() > 4) {
      bad_entry(entry, "expected kind:id:at[:until]");
    }

    PlannedFault f;
    if (tok[0] == "node") {
      f.kind = PlannedFault::Kind::kNode;
    } else if (tok[0] == "seg") {
      f.kind = PlannedFault::Kind::kSegment;
    } else {
      bad_entry(entry, "unknown kind '" + tok[0] + "' (want node|seg)");
    }
    f.id = parse_id(entry, tok[1]);
    f.at_s = parse_time(entry, tok[2]);
    if (tok.size() == 4) {
      f.until_s = parse_time(entry, tok[3]);
      if (f.until_s <= f.at_s) bad_entry(entry, "until must be after at");
    }
    out.push_back(f);
  }
  return out;
}

FaultPlan::FaultPlan(core::Simulator& sim, net::Network& net,
                     mobility::GraphMobilityModel* roads, core::Rng& rng,
                     FaultConfig cfg, double duration_s)
    : sim_{sim},
      net_{net},
      roads_{roads},
      rng_{rng},
      cfg_{std::move(cfg)},
      end_{core::SimTime::seconds(duration_s)} {}

void FaultPlan::mark(core::SimTime t, int delta) {
  active_ += delta;
  VANET_ASSERT(active_ >= 0);
  timeline_.emplace_back(t, active_);
}

void FaultPlan::apply_node(net::NodeId id, bool up) {
  if (net_.node_up(id) == up) return;  // overlap: last writer wins, no-op
  net_.set_node_up(id, up);
  if (up) {
    ++counters_.node_restarts;
    mark(sim_.now(), -1);
  } else {
    ++counters_.node_outages;
    mark(sim_.now(), +1);
  }
}

void FaultPlan::apply_segment(int seg, bool blocked) {
  VANET_ASSERT(roads_ != nullptr);
  if (roads_->segment_blocked(seg) == blocked) return;
  roads_->set_segment_blocked(seg, blocked);
  if (blocked) {
    ++counters_.segment_blocks;
    mark(sim_.now(), +1);
  } else {
    ++counters_.segment_clears;
    mark(sim_.now(), -1);
  }
}

void FaultPlan::schedule_churn_crash(net::NodeId id, core::SimTime at) {
  if (at > end_) return;
  sim_.schedule_at(at, [this, id] {
    const bool rsu = net_.is_rsu(id);
    const double down_s = rsu ? cfg_.rsu_downtime_s : cfg_.vehicle_downtime_s;
    const double mtbf_s = rsu ? cfg_.rsu_mtbf_s : cfg_.vehicle_mtbf_s;
    apply_node(id, false);
    const core::SimTime up_at = sim_.now() + core::SimTime::seconds(down_s);
    if (up_at <= end_) {
      sim_.schedule_at(up_at, [this, id] { apply_node(id, true); });
    }
    // Re-arm even when past the horizon: the draw keeps each node's failure
    // process independent of the run length.
    schedule_churn_crash(
        id, up_at + core::SimTime::seconds(rng_.exponential(1.0 / mtbf_s)));
  });
}

void FaultPlan::start() {
  VANET_ASSERT_MSG(!started_, "FaultPlan::start called twice");
  started_ = true;
  if (!cfg_.enabled) return;

  if (cfg_.vehicle_mtbf_s < 0.0 || cfg_.rsu_mtbf_s < 0.0) {
    throw std::invalid_argument("fault: mtbf must be >= 0");
  }
  if ((cfg_.vehicle_mtbf_s > 0.0 && cfg_.vehicle_downtime_s <= 0.0) ||
      (cfg_.rsu_mtbf_s > 0.0 && cfg_.rsu_downtime_s <= 0.0)) {
    throw std::invalid_argument("fault: downtime must be > 0 when churn is on");
  }

  // Validate the whole plan before scheduling anything, so a bad spec fails
  // cleanly with no events enqueued.
  const std::vector<PlannedFault> plan = parse_fault_plan(cfg_.plan);
  const auto nodes = static_cast<int>(net_.node_count());
  for (const PlannedFault& f : plan) {
    if (f.kind == PlannedFault::Kind::kNode) {
      if (f.id >= nodes) {
        throw std::invalid_argument("fault.plan: node id " +
                                    std::to_string(f.id) + " out of range (" +
                                    std::to_string(nodes) + " nodes)");
      }
    } else {
      if (roads_ == nullptr) {
        throw std::invalid_argument(
            "fault.plan: segment faults need graph mobility (mobility=graph)");
      }
      if (static_cast<std::size_t>(f.id) >= roads_->graph().segment_count()) {
        throw std::invalid_argument(
            "fault.plan: segment id " + std::to_string(f.id) +
            " out of range (" +
            std::to_string(roads_->graph().segment_count()) + " segments)");
      }
    }
  }

  for (const PlannedFault& f : plan) {
    const int id = f.id;
    if (f.kind == PlannedFault::Kind::kNode) {
      sim_.schedule_at(core::SimTime::seconds(f.at_s), [this, id] {
        apply_node(static_cast<net::NodeId>(id), false);
      });
      if (f.until_s >= 0.0) {
        sim_.schedule_at(core::SimTime::seconds(f.until_s), [this, id] {
          apply_node(static_cast<net::NodeId>(id), true);
        });
      }
    } else {
      sim_.schedule_at(core::SimTime::seconds(f.at_s),
                       [this, id] { apply_segment(id, true); });
      if (f.until_s >= 0.0) {
        sim_.schedule_at(core::SimTime::seconds(f.until_s),
                         [this, id] { apply_segment(id, false); });
      }
    }
  }

  // Seeded churn: one exponential first-crash draw per node, in node-id
  // order (vehicles precede RSUs by the Network id contract), so the draw
  // sequence is a pure function of the seed and the node roster.
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(net_.node_count());
       ++id) {
    const double mtbf_s =
        net_.is_rsu(id) ? cfg_.rsu_mtbf_s : cfg_.vehicle_mtbf_s;
    if (mtbf_s <= 0.0) continue;
    schedule_churn_crash(
        id, core::SimTime::seconds(rng_.exponential(1.0 / mtbf_s)));
  }
}

bool FaultPlan::fault_active_at(core::SimTime t) const {
  // Last transition at or before t; none means no fault had been injected.
  auto it = std::upper_bound(
      timeline_.begin(), timeline_.end(), t,
      [](core::SimTime q, const std::pair<core::SimTime, int>& e) {
        return q < e.first;
      });
  if (it == timeline_.begin()) return false;
  return std::prev(it)->second > 0;
}

}  // namespace vanet::sim
