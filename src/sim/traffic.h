// Constant-bit-rate application traffic over randomly chosen vehicle pairs.
//
// Endpoint selection draws from its own RNG stream, so two runs with the same
// seed but different protocols exercise identical flows — the prerequisite
// for a fair protocol comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/rng.h"
#include "core/simulator.h"
#include "net/network.h"
#include "routing/protocol.h"
#include "sim/metrics.h"

namespace vanet::sim {

struct TrafficConfig {
  int flows = 10;
  double rate_pps = 2.0;            ///< packets per second per flow
  std::size_t payload_bytes = 512;
  double start_s = 5.0;             ///< warm-up before first packet
  double stop_s = 55.0;
  double min_pair_distance_m = 400; ///< endpoints at least this far apart
};

class CbrTraffic {
 public:
  /// `protocols[i]` is node i's protocol instance; only vehicle nodes
  /// (id < vehicle_count) are eligible flow endpoints.
  CbrTraffic(core::Simulator& sim, net::Network& net,
             std::vector<routing::RoutingProtocol*> protocols,
             std::size_t vehicle_count, Metrics& metrics, core::Rng& rng,
             TrafficConfig cfg);

  /// Choose endpoints and schedule all packet transmissions.
  void start();

  /// Sharded runs: install before start(). Every RNG draw (endpoint
  /// selection, per-flow stagger) and the sequence-block reservation still
  /// happen for ALL flows — the flow list is a pure function of the seed on
  /// every shard — but only flows whose source the filter accepts are
  /// scheduled, so each shard originates exactly its owned traffic.
  void set_source_filter(std::function<bool(net::NodeId)> fn) {
    source_filter_ = std::move(fn);
  }

  struct Flow {
    net::NodeId src = 0;
    net::NodeId dst = 0;
    // Recurring-timer state: next send time (replaying the historical float
    // accumulation), next application sequence, and sends remaining.
    double next_t = 0.0;
    std::uint32_t app_seq = 0;
    std::uint32_t packets_left = 0;
  };
  const std::vector<Flow>& flows() const { return flows_; }

 private:
  void pick_flows();
  void send_packet(std::size_t flow_idx, std::uint32_t seq);
  /// One CBR send; returns the next send time (negative when done).
  core::SimTime fire_flow(std::size_t flow_idx);

  core::Simulator& sim_;
  net::Network& net_;
  std::vector<routing::RoutingProtocol*> protocols_;
  std::size_t vehicle_count_;
  Metrics& metrics_;
  core::Rng& rng_;
  TrafficConfig cfg_;
  std::vector<Flow> flows_;
  std::function<bool(net::NodeId)> source_filter_;  ///< null: schedule all
};

}  // namespace vanet::sim
