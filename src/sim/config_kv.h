// String key/value view over ScenarioConfig.
//
// Every scalar field of ScenarioConfig (including the nested highway.*,
// manhattan.*, traffic.*, hello.*, net.* and signal.* blocks) is addressable
// by a dotted string key. This is the substrate for `--set key=value` CLI
// overrides, declarative sweep axes over arbitrary knobs, and round-trip
// serialization of a run's full provenance (see experiment.h).
//
// The in-memory mobility trace (`cfg.trace`) is data, not a knob, and is not
// part of the key/value view; serialize_config() documents its presence via
// the derived `trace.vehicles` pseudo-key being absent.
//
// Two deliberate aliases, both ordered so parse_config(serialize_config(cfg))
// restores every field exactly:
//  - `vehicles` reads the Manhattan/graph population but its setter also
//    writes `vehicles_per_direction`, matching the CLI's historic
//    `--vehicles N` behaviour (one knob controls the population of whichever
//    mobility model is active); `vehicles_per_direction` is serialized after
//    `vehicles` and re-settles it.
//  - `map.source=file` also selects graph mobility (an imported map implies
//    driving on it — `vanet_cli run --set map.source=file --set map.file=F`
//    works without a --mobility flag); `mobility` is serialized after
//    `map.source` and re-settles it, e.g. for trace playback over a file map.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace vanet::sim {

/// Checked scalar parsing: the entire string must be consumed, otherwise
/// nullopt. Used by config_set and by CLI flag parsing.
std::optional<long long> parse_int_checked(const std::string& s);
std::optional<double> parse_double_checked(const std::string& s);
/// Accepts true/false, 1/0, on/off, yes/no (case-sensitive).
std::optional<bool> parse_bool_checked(const std::string& s);

/// Shortest round-trip decimal formatting; the one formatter shared by
/// config serialization and the machine-readable report sinks.
std::string format_double(double v);

/// All addressable keys, in serialization order.
const std::vector<std::string>& config_keys();
bool config_has_key(const std::string& key);

/// Read one field as a string. Throws std::invalid_argument for unknown keys.
std::string config_get(const ScenarioConfig& cfg, const std::string& key);

/// Write one field from a string. Throws std::invalid_argument for unknown
/// keys or unparseable values (the message names both key and value).
void config_set(ScenarioConfig& cfg, const std::string& key,
                const std::string& value);

/// "key=value\n" lines for every key, in config_keys() order. Numeric values
/// use shortest round-trip formatting, so parse_config inverts this exactly.
std::string serialize_config(const ScenarioConfig& cfg);

/// Parse serialize_config output (or any subset of "key=value" lines; blank
/// lines and '#' comments are skipped). Unknown keys or bad values throw
/// std::invalid_argument.
ScenarioConfig parse_config(const std::string& text);

/// 64-bit FNV-1a of serialize_config(cfg), as 16 hex digits. Two configs with
/// equal digests are behaviourally identical (up to the mobility trace).
std::string config_digest(const ScenarioConfig& cfg);

}  // namespace vanet::sim
