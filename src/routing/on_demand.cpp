#include "routing/on_demand.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "analysis/direction.h"
#include "core/assert.h"

namespace vanet::routing {

namespace {
core::SimTime discovery_timeout_for(int attempt) {
  // 1 s base, doubled per retry — comfortably above a few hops of MAC delay.
  return core::SimTime::seconds(1.0 * static_cast<double>(1 << attempt));
}
}  // namespace

// ---- policy hook defaults (plain AODV) -------------------------------------

LinkEval OnDemandBase::evaluate_link(const RreqHeader& h) const {
  (void)h;
  return LinkEval{};
}

bool OnDemandBase::path_better(const PathMetric& a, const PathMetric& b) const {
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.hops < b.hops;
}

void OnDemandBase::forward_rreq(const net::Packet& p, const RreqHeader& h) {
  (void)h;
  net::Packet copy = p;
  schedule(jitter(10.0), [this, copy]() mutable { broadcast(std::move(copy)); });
}

// ---- public entry points ----------------------------------------------------

bool OnDemandBase::originate(net::NodeId dst, std::uint32_t flow,
                             std::uint32_t seq, std::size_t bytes) {
  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = static_cast<int>(kDataPacketTtl);
  if (const RouteEntry* route = route_to(dst)) {
    forward_data(std::move(p), *route);
    return true;
  }
  auto& q = buffer_[dst];
  if (q.size() >= kBufferCap) {
    ++events().data_dropped_no_route;
    return false;
  }
  q.push_back(std::move(p));
  start_discovery(dst);
  return true;
}

void OnDemandBase::handle_frame(const net::Packet& p) {
  switch (p.kind) {
    case net::PacketKind::kData:
      handle_data(p);
      return;
    case net::PacketKind::kControl:
      if (p.header_as<RreqHeader>() != nullptr) {
        handle_rreq(p);
      } else if (p.header_as<RrepHeader>() != nullptr) {
        handle_rrep(p);
      } else if (p.header_as<RerrHeader>() != nullptr) {
        handle_rerr(p);
      }
      return;
    case net::PacketKind::kHello:
      return;  // dispatcher routes hellos to the HelloService
  }
}

// ---- discovery --------------------------------------------------------------

void OnDemandBase::issue_rreq(net::NodeId dst) {
  const std::uint32_t rreq_id = next_rreq_id_++;
  auto h = std::make_shared<RreqHeader>();
  h->rreq_id = rreq_id;
  h->rreq_origin = self();
  h->target = dst;
  h->tickets = initial_tickets();
  stamp_self_kinematics(*h);
  h->origin_pos = network().position(self());
  h->origin_vel = network().velocity(self());
  if (uses_road_corridor() && has_map()) {
    h->origin_seg = snapped_segment(self(), h->origin_pos);
  }

  net::Packet p;
  p.kind = net::PacketKind::kControl;
  p.origin = self();
  p.destination = dst;
  p.seq = rreq_id;
  p.ttl = 16;
  p.size_bytes = kRreqBytes;
  p.created_at = now();
  p.header = h;

  rreq_seen_.seen_or_insert(DupCache::key(self(), rreq_id, 0));
  forward_rreq(p, *h);
}

void OnDemandBase::start_discovery(net::NodeId dst) {
  if (pending_.contains(dst)) return;
  ++events().discoveries_started;
  PendingDiscovery pd;
  pd.attempts = 0;
  pd.started = now();
  issue_rreq(dst);
  pd.timeout = ctx_.sim->schedule(discovery_timeout_for(0),
                                  [this, dst] { discovery_timeout(dst); });
  pending_[dst] = std::move(pd);
}

void OnDemandBase::discovery_timeout(net::NodeId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  if (route_to(dst) != nullptr) {
    pending_.erase(it);
    return;
  }
  PendingDiscovery& pd = it->second;
  if (pd.attempts >= kMaxDiscoveryRetries) {
    pending_.erase(it);
    drop_buffer(dst);
    return;
  }
  ++pd.attempts;
  issue_rreq(dst);
  pd.timeout = ctx_.sim->schedule(discovery_timeout_for(pd.attempts),
                                  [this, dst] { discovery_timeout(dst); });
}

PathMetric OnDemandBase::metric_of(const RreqHeader& h) const {
  return PathMetric{h.hops, h.cost, h.min_lifetime, h.reliability};
}

void OnDemandBase::stamp_self_kinematics(RreqHeader& h) const {
  h.prev_pos = network().position(self());
  h.prev_vel = network().velocity(self());
  h.prev_acc = network().acceleration(self());
  h.prev_group = analysis::velocity_group(h.prev_vel);
}

void OnDemandBase::handle_rreq(const net::Packet& p) {
  const auto* h = p.header_as<RreqHeader>();
  VANET_ASSERT(h != nullptr);
  if (h->rreq_origin == self()) return;

  const std::uint64_t key = DupCache::key(h->rreq_origin, h->rreq_id, 0);
  // Duplicate copies at intermediate nodes fall through to the seen-check
  // below and drop without ever using the link evaluation; evaluate_link is
  // pure (metric computation only), so skipping it for copies the check is
  // guaranteed to drop is behavior-identical — and duplicate copies are the
  // bulk of a flood, so this skips most of the per-RREQ metric cost. Target
  // copies are exempt: every copy is a candidate path there.
  if (h->target != self() && rreq_seen_.contains(key)) return;

  const LinkEval ev = evaluate_link(*h);
  if (!ev.usable) return;

  RreqHeader updated = *h;
  updated.hops += 1;
  updated.cost += ev.cost;
  updated.min_lifetime = std::min(updated.min_lifetime, ev.lifetime);
  updated.reliability *= ev.reliability;

  if (h->target == self()) {
    ++events().rreq_at_target;
    if (reply_immediately()) {
      if (rreq_seen_.seen_or_insert(key)) return;
      install_route(h->rreq_origin, p.tx, updated.hops, updated.cost,
                    updated.min_lifetime, h->rreq_id, /*force=*/true);
      send_rrep(h->rreq_id, h->rreq_origin, metric_of(updated));
      return;
    }
    // Collect candidate paths for a short window, then answer the best.
    ReplyCollector& c = collectors_[key];
    if (!c.scheduled) {
      c.scheduled = true;
      c.first_seen = now();
      c.best = updated;
      c.best_prev = p.tx;
      const std::uint32_t rreq_id = h->rreq_id;
      const net::NodeId origin = h->rreq_origin;
      schedule(reply_window(), [this, key, rreq_id, origin] {
        auto it = collectors_.find(key);
        if (it == collectors_.end()) return;
        const PathMetric best = metric_of(it->second.best);
        // Pin the reverse route to the best path's previous hop; beyond that
        // hop the RREP follows the first-arrival tree (acyclic).
        install_route(origin, it->second.best_prev, best.hops, best.cost,
                      best.min_lifetime, rreq_id, /*force=*/true);
        collectors_.erase(it);
        send_rrep(rreq_id, origin, best);
      });
    } else if (path_better(metric_of(updated), metric_of(c.best))) {
      c.best = updated;
      c.best_prev = p.tx;
    }
    return;
  }

  if (rreq_seen_.seen_or_insert(key)) return;
  // Reverse route to the RREQ origin via the frame's transmitter — only from
  // this first-seen copy, so reverse paths follow the flood's spanning tree.
  install_route(h->rreq_origin, p.tx, updated.hops, updated.cost,
                updated.min_lifetime, h->rreq_id, /*force=*/false);
  if (p.ttl <= 1) return;

  stamp_self_kinematics(updated);
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  fwd.header = std::make_shared<RreqHeader>(updated);
  forward_rreq(fwd, updated);
}

void OnDemandBase::send_rrep(std::uint32_t rreq_id, net::NodeId origin,
                             const PathMetric& m) {
  const RouteEntry* reverse = route_to(origin);
  if (reverse == nullptr) {
    ++events().rrep_stranded;
    return;  // reverse path already gone
  }
  ++events().rrep_sent;

  auto h = std::make_shared<RrepHeader>();
  h->rreq_id = rreq_id;
  h->rreq_origin = origin;
  h->target = self();
  h->hops = 0;
  h->path_hops = m.hops;
  h->cost = m.cost;
  h->min_lifetime = m.min_lifetime;
  h->reliability = m.reliability;

  net::Packet p;
  p.kind = net::PacketKind::kControl;
  p.origin = self();
  p.destination = origin;
  p.seq = rreq_id;
  p.ttl = 32;
  p.size_bytes = kRrepBytes;
  p.created_at = now();
  p.header = std::move(h);
  unicast(reverse->next_hop, std::move(p));
}

void OnDemandBase::handle_rrep(const net::Packet& p) {
  const auto* h = p.header_as<RrepHeader>();
  VANET_ASSERT(h != nullptr);

  // Forward route to the replying destination via the frame's transmitter.
  install_route(h->target, p.tx, h->hops + 1, h->cost, h->min_lifetime,
                h->rreq_id, /*force=*/true);

  if (h->rreq_origin == self()) {
    ++events().routes_established;
    if (std::isfinite(h->min_lifetime)) {
      events().predicted_route_lifetime.add(h->min_lifetime);
    }
    pending_.erase(h->target);
    flush_buffer(h->target);
    schedule_preemptive_rebuild(h->target, h->min_lifetime);
    return;
  }
  const RouteEntry* reverse = route_to(h->rreq_origin);
  if (reverse == nullptr) {
    ++events().rrep_stranded;
    return;
  }
  ++events().rrep_relayed;
  RrepHeader updated = *h;
  updated.hops += 1;
  net::Packet fwd = p;
  fwd.ttl -= 1;
  if (fwd.ttl <= 0) return;
  fwd.hops += 1;
  fwd.header = std::make_shared<RrepHeader>(updated);
  unicast(reverse->next_hop, std::move(fwd));
}

void OnDemandBase::handle_rerr(const net::Packet& p) {
  const auto* h = p.header_as<RerrHeader>();
  VANET_ASSERT(h != nullptr);
  routes_.erase(h->broken_destination);
  if (p.destination == self()) {
    if (auto it = buffer_.find(h->broken_destination);
        it != buffer_.end() && !it->second.empty()) {
      start_discovery(h->broken_destination);
    }
    return;
  }
  if (const RouteEntry* r = route_to(p.destination)) {
    net::Packet fwd = p;
    fwd.ttl -= 1;
    if (fwd.ttl <= 0) return;
    unicast(r->next_hop, std::move(fwd));
  }
}

// ---- data path --------------------------------------------------------------

void OnDemandBase::handle_data(const net::Packet& p) {
  if (p.destination == self()) {
    if (data_seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq))) return;
    deliver(p);
    return;
  }
  if (const RouteEntry* route = route_to(p.destination)) {
    forward_data(p, *route);
    return;
  }
  ++events().data_dropped_no_route;
  // Report the break back to the source (best effort).
  if (const RouteEntry* reverse = route_to(p.origin)) {
    auto h = std::make_shared<RerrHeader>();
    h->broken_destination = p.destination;
    net::Packet err;
    err.kind = net::PacketKind::kControl;
    err.origin = self();
    err.destination = p.origin;
    err.ttl = 16;
    err.size_bytes = kRerrBytes;
    err.created_at = now();
    err.header = std::move(h);
    unicast(reverse->next_hop, std::move(err));
  }
}

void OnDemandBase::forward_data(net::Packet p, const RouteEntry& route) {
  p.ttl -= 1;
  if (p.ttl <= 0) {
    ++events().data_dropped_ttl;
    return;
  }
  p.hops += 1;
  ++events().data_forwarded;
  unicast(route.next_hop, std::move(p));
}

void OnDemandBase::handle_unicast_failure(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  route_broken(p.destination, &p);
}

void OnDemandBase::route_broken(net::NodeId dst, const net::Packet* failed) {
  auto it = routes_.find(dst);
  if (it != routes_.end()) {
    ++events().route_breaks;
    events().observed_route_lifetime.add(
        (now() - it->second.established).as_seconds());
    routes_.erase(it);
  }
  if (failed == nullptr) return;
  if (failed->origin == self()) {
    // Salvage at the source: requeue and re-discover.
    auto& q = buffer_[dst];
    if (q.size() < kBufferCap) q.push_back(*failed);
    start_discovery(dst);
    return;
  }
  ++events().data_dropped_no_route;
  if (const RouteEntry* reverse = route_to(failed->origin)) {
    auto h = std::make_shared<RerrHeader>();
    h->broken_destination = dst;
    net::Packet err;
    err.kind = net::PacketKind::kControl;
    err.origin = self();
    err.destination = failed->origin;
    err.ttl = 16;
    err.size_bytes = kRerrBytes;
    err.created_at = now();
    err.header = std::move(h);
    unicast(reverse->next_hop, std::move(err));
  }
}

// ---- routing table ----------------------------------------------------------

const OnDemandBase::RouteEntry* OnDemandBase::route_to(net::NodeId dst) const {
  auto it = routes_.find(dst);
  if (it == routes_.end()) return nullptr;
  if (it->second.expires <= now()) return nullptr;
  return &it->second;
}

void OnDemandBase::install_route(net::NodeId dst, net::NodeId next_hop, int hops,
                                 double cost, double predicted_lifetime,
                                 std::uint32_t epoch, bool force) {
  if (dst == self()) return;
  auto it = routes_.find(dst);
  const bool stale = it == routes_.end() || it->second.expires <= now();
  if (!stale && !force) {
    const RouteEntry& cur = it->second;
    // Within an epoch only the owning tree edge may refresh; a newer epoch
    // (fresh discovery flood) replaces the entry.
    const bool same_edge = cur.next_hop == next_hop;
    if (epoch < cur.epoch) return;
    if (epoch == cur.epoch && !same_edge) return;
  }

  RouteEntry e;
  e.next_hop = next_hop;
  e.hops = hops;
  e.cost = cost;
  e.predicted_lifetime = predicted_lifetime;
  e.epoch = epoch;
  e.established = now();
  core::SimTime ttl = route_lifetime_cap();
  if (std::isfinite(predicted_lifetime)) {
    ttl = std::min(ttl, core::SimTime::seconds(std::max(0.2, predicted_lifetime)));
  }
  e.expires = now() + ttl;
  routes_[dst] = e;
}

void OnDemandBase::schedule_preemptive_rebuild(net::NodeId dst,
                                               double predicted_lifetime) {
  const double frac = preemptive_rebuild_fraction();
  if (frac <= 0.0 || !std::isfinite(predicted_lifetime)) return;
  const double delay_s = std::max(0.5, predicted_lifetime * frac);
  schedule(core::SimTime::seconds(delay_s), [this, dst] {
    // Only rebuild when the route is still alive (i.e. still in use soon).
    if (route_to(dst) != nullptr) {
      ++events().preemptive_rebuilds;
      pending_.erase(dst);  // allow a fresh discovery even if one timed out
      start_discovery(dst);
    }
  });
}

// ---- buffering --------------------------------------------------------------

void OnDemandBase::flush_buffer(net::NodeId dst) {
  auto it = buffer_.find(dst);
  if (it == buffer_.end()) return;
  std::vector<net::Packet> pending = std::move(it->second);
  buffer_.erase(it);
  for (auto& p : pending) {
    if (const RouteEntry* route = route_to(dst)) {
      forward_data(std::move(p), *route);
    } else {
      ++events().data_dropped_no_route;
    }
  }
}

void OnDemandBase::drop_buffer(net::NodeId dst) {
  auto it = buffer_.find(dst);
  if (it == buffer_.end()) return;
  events().data_dropped_no_route += it->second.size();
  buffer_.erase(it);
}

}  // namespace vanet::routing
