#include "routing/connectivity/biswas.h"

namespace vanet::routing {

void BiswasProtocol::after_rebroadcast(const net::Packet& p) {
  const std::uint64_t key = flood_key(p);
  auto [it, inserted] = pending_.try_emplace(key);
  if (inserted) {
    it->second.packet = p;
  }
  it->second.acked = false;
  schedule(core::SimTime::seconds(kAckTimeoutMs * 1e-3) + jitter(50.0),
           [this, key] { check_ack(key); });
}

void BiswasProtocol::on_duplicate_overheard(const net::Packet& p) {
  auto it = pending_.find(flood_key(p));
  if (it != pending_.end()) it->second.acked = true;
}

void BiswasProtocol::check_ack(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingAck& pa = it->second;
  if (pa.acked || pa.retries >= kMaxRetries) {
    pending_.erase(it);
    return;
  }
  ++pa.retries;
  net::Packet again = pa.packet;
  ++events().data_forwarded;
  broadcast(again);
  schedule(core::SimTime::seconds(kAckTimeoutMs * 1e-3) + jitter(50.0),
           [this, key] { check_ack(key); });
}

}  // namespace vanet::routing
