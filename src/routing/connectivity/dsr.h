// DSR [7] (Sec. III-B): on-demand source routing.
//
// RREQs accumulate the traversed node list; the destination returns the full
// path in the RREP; data packets carry the source route and are forwarded
// hop-by-hop along it. Sources cache routes and purge them on link-failure
// reports (RERR naming the broken link).
#pragma once

#include <unordered_map>
#include <vector>

#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

struct DsrRreqHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kDsrRreq;
  DsrRreqHeader() : net::Header{kTag} {}
  std::uint32_t rreq_id = 0;
  net::NodeId target = 0;
  std::vector<net::NodeId> path;  ///< origin .. current node
};

struct DsrRrepHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kDsrRrep;
  DsrRrepHeader() : net::Header{kTag} {}
  std::uint32_t rreq_id = 0;
  std::vector<net::NodeId> path;  ///< origin .. target, complete
};

struct DsrDataHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kDsrData;
  DsrDataHeader() : net::Header{kTag} {}
  std::vector<net::NodeId> path;  ///< origin .. destination
};

struct DsrRerrHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kDsrRerr;
  DsrRerrHeader() : net::Header{kTag} {}
  net::NodeId link_from = 0;
  net::NodeId link_to = 0;
  std::vector<net::NodeId> path;  ///< data path, for relaying toward the origin
};

class DsrProtocol final : public RoutingProtocol {
 public:
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;
  void handle_unicast_failure(const net::Packet& p) override;

  std::string_view name() const override { return "dsr"; }
  Category category() const override { return Category::kConnectivity; }

 private:
  struct CachedRoute {
    std::vector<net::NodeId> path;
    core::SimTime expires{};
    core::SimTime established{};
  };

  void handle_rreq(const net::Packet& p);
  void handle_rrep(const net::Packet& p);
  void handle_rerr(const net::Packet& p);
  void handle_data(const net::Packet& p);
  void start_discovery(net::NodeId dst);
  void discovery_timeout(net::NodeId dst);
  void send_with_route(net::Packet p, const std::vector<net::NodeId>& path);
  const CachedRoute* cached_route(net::NodeId dst) const;
  void purge_routes_using(net::NodeId a, net::NodeId b);
  /// Next hop after `self` in `path`, or kBroadcastId when absent/at end.
  net::NodeId next_in_path(const std::vector<net::NodeId>& path) const;

  std::unordered_map<net::NodeId, CachedRoute> cache_;
  std::unordered_map<net::NodeId, std::vector<net::Packet>> buffer_;
  std::unordered_map<net::NodeId, int> discovery_attempts_;
  DupCache rreq_seen_;
  DupCache delivered_;
  std::uint32_t next_rreq_id_ = 1;

  static constexpr std::size_t kBufferCap = 32;
  static constexpr int kMaxDiscoveryRetries = 2;
  static constexpr double kRouteTtlSeconds = 10.0;
};

}  // namespace vanet::routing
