#include "routing/connectivity/dsr.h"

#include <algorithm>
#include <memory>

#include "core/assert.h"

namespace vanet::routing {

namespace {
/// Wire size of a path-carrying control packet: fixed part + 4 B per hop.
std::size_t control_bytes(std::size_t path_len) { return 24 + 4 * path_len; }
}  // namespace

bool DsrProtocol::originate(net::NodeId dst, std::uint32_t flow,
                            std::uint32_t seq, std::size_t bytes) {
  net::Packet p = make_data(dst, flow, seq, bytes);
  if (const CachedRoute* route = cached_route(dst)) {
    send_with_route(std::move(p), route->path);
    return true;
  }
  auto& q = buffer_[dst];
  if (q.size() >= kBufferCap) {
    ++events().data_dropped_no_route;
    return false;
  }
  q.push_back(std::move(p));
  if (!discovery_attempts_.contains(dst)) {
    discovery_attempts_[dst] = 0;
    start_discovery(dst);
  }
  return true;
}

void DsrProtocol::start_discovery(net::NodeId dst) {
  ++events().discoveries_started;
  auto h = std::make_shared<DsrRreqHeader>();
  h->rreq_id = next_rreq_id_++;
  h->target = dst;
  h->path = {self()};

  net::Packet p;
  p.kind = net::PacketKind::kControl;
  p.origin = self();
  p.destination = dst;
  p.seq = h->rreq_id;
  p.ttl = 16;
  p.size_bytes = control_bytes(1);
  p.created_at = now();
  p.header = std::move(h);

  rreq_seen_.seen_or_insert(DupCache::key(self(), p.seq, 0));
  broadcast(std::move(p));
  const double timeout_s = 1.0 * (1 << discovery_attempts_[dst]);
  schedule(core::SimTime::seconds(timeout_s),
           [this, dst] { discovery_timeout(dst); });
}

void DsrProtocol::discovery_timeout(net::NodeId dst) {
  auto it = discovery_attempts_.find(dst);
  if (it == discovery_attempts_.end()) return;
  if (cached_route(dst) != nullptr) {
    discovery_attempts_.erase(it);
    return;
  }
  if (it->second >= kMaxDiscoveryRetries) {
    discovery_attempts_.erase(it);
    auto bit = buffer_.find(dst);
    if (bit != buffer_.end()) {
      events().data_dropped_no_route += bit->second.size();
      buffer_.erase(bit);
    }
    return;
  }
  ++it->second;
  start_discovery(dst);
}

void DsrProtocol::handle_frame(const net::Packet& p) {
  switch (p.kind) {
    case net::PacketKind::kData:
      handle_data(p);
      return;
    case net::PacketKind::kControl:
      if (p.header_as<DsrRreqHeader>() != nullptr) {
        handle_rreq(p);
      } else if (p.header_as<DsrRrepHeader>() != nullptr) {
        handle_rrep(p);
      } else if (p.header_as<DsrRerrHeader>() != nullptr) {
        handle_rerr(p);
      }
      return;
    case net::PacketKind::kHello:
      return;
  }
}

void DsrProtocol::handle_rreq(const net::Packet& p) {
  const auto* h = p.header_as<DsrRreqHeader>();
  VANET_ASSERT(h != nullptr);
  if (p.origin == self()) return;
  if (std::find(h->path.begin(), h->path.end(), self()) != h->path.end()) return;
  if (rreq_seen_.seen_or_insert(DupCache::key(p.origin, h->rreq_id, 0))) return;

  std::vector<net::NodeId> path = h->path;
  path.push_back(self());

  if (h->target == self()) {
    auto reply = std::make_shared<DsrRrepHeader>();
    reply->rreq_id = h->rreq_id;
    reply->path = path;

    net::Packet rrep;
    rrep.kind = net::PacketKind::kControl;
    rrep.origin = self();
    rrep.destination = p.origin;
    rrep.seq = h->rreq_id;
    rrep.ttl = 32;
    rrep.size_bytes = control_bytes(path.size());
    rrep.created_at = now();
    rrep.header = std::move(reply);
    // Send back along the accumulated path (we are the last element).
    unicast(path[path.size() - 2], std::move(rrep));
    return;
  }

  if (p.ttl <= 1) return;
  auto fwd_header = std::make_shared<DsrRreqHeader>(*h);
  fwd_header->path = std::move(path);
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  fwd.size_bytes = control_bytes(fwd_header->path.size());
  fwd.header = std::move(fwd_header);
  schedule(jitter(10.0), [this, fwd]() mutable { broadcast(std::move(fwd)); });
}

void DsrProtocol::handle_rrep(const net::Packet& p) {
  const auto* h = p.header_as<DsrRrepHeader>();
  VANET_ASSERT(h != nullptr);
  if (p.destination == self()) {
    VANET_ASSERT(!h->path.empty());
    const net::NodeId dst = h->path.back();
    CachedRoute route;
    route.path = h->path;
    route.established = now();
    route.expires = now() + core::SimTime::seconds(kRouteTtlSeconds);
    cache_[dst] = std::move(route);
    ++events().routes_established;
    discovery_attempts_.erase(dst);

    auto bit = buffer_.find(dst);
    if (bit != buffer_.end()) {
      std::vector<net::Packet> pending = std::move(bit->second);
      buffer_.erase(bit);
      for (auto& dp : pending) send_with_route(std::move(dp), h->path);
    }
    return;
  }
  // Relay the RREP toward the origin along the reversed path.
  auto it = std::find(h->path.begin(), h->path.end(), self());
  if (it == h->path.end() || it == h->path.begin()) return;
  net::Packet fwd = p;
  fwd.ttl -= 1;
  if (fwd.ttl <= 0) return;
  fwd.hops += 1;
  unicast(*(it - 1), std::move(fwd));
}

void DsrProtocol::handle_rerr(const net::Packet& p) {
  const auto* h = p.header_as<DsrRerrHeader>();
  VANET_ASSERT(h != nullptr);
  purge_routes_using(h->link_from, h->link_to);
  if (p.destination == self()) {
    // Rediscover in ascending-dst order: each start_discovery enqueues an
    // RREQ on this node's MAC FIFO, so hash-table iteration order would
    // leak straight into the event stream.
    std::vector<net::NodeId> stale;
    for (const auto& [dst, packets] : buffer_) {  // NOLINT-vanet(unordered-iter): sorted below
      if (!packets.empty() && !discovery_attempts_.contains(dst)) {
        stale.push_back(dst);
      }
    }
    std::sort(stale.begin(), stale.end());
    for (net::NodeId dst : stale) {
      discovery_attempts_[dst] = 0;
      start_discovery(dst);
    }
    return;
  }
  // Relay the RERR toward the origin along the reversed data path.
  auto it = std::find(h->path.begin(), h->path.end(), self());
  if (it == h->path.end() || it == h->path.begin()) return;
  net::Packet fwd = p;
  fwd.ttl -= 1;
  if (fwd.ttl <= 0) return;
  unicast(*(it - 1), std::move(fwd));
}

net::NodeId DsrProtocol::next_in_path(const std::vector<net::NodeId>& path) const {
  auto it = std::find(path.begin(), path.end(), self());
  if (it == path.end() || it + 1 == path.end()) return net::kBroadcastId;
  return *(it + 1);
}

void DsrProtocol::send_with_route(net::Packet p,
                                  const std::vector<net::NodeId>& path) {
  auto h = std::make_shared<DsrDataHeader>();
  h->path = path;
  p.header = std::move(h);
  const net::NodeId next = next_in_path(path);
  if (next == net::kBroadcastId) {
    ++events().data_dropped_no_route;
    return;
  }
  p.ttl = static_cast<int>(path.size()) + 2;
  p.hops += 1;
  ++events().data_forwarded;
  unicast(next, std::move(p));
}

void DsrProtocol::handle_data(const net::Packet& p) {
  if (p.destination == self()) {
    if (delivered_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq))) return;
    deliver(p);
    return;
  }
  const auto* h = p.header_as<DsrDataHeader>();
  if (h == nullptr) return;
  const net::NodeId next = next_in_path(h->path);
  if (next == net::kBroadcastId) {
    ++events().data_dropped_no_route;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  if (fwd.ttl <= 0) {
    ++events().data_dropped_ttl;
    return;
  }
  fwd.hops += 1;
  ++events().data_forwarded;
  unicast(next, std::move(fwd));
}

void DsrProtocol::handle_unicast_failure(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  const auto* h = p.header_as<DsrDataHeader>();
  if (h == nullptr) return;
  ++events().route_breaks;
  purge_routes_using(self(), p.rx);

  if (p.origin == self()) {
    // Salvage: requeue and rediscover.
    auto& q = buffer_[p.destination];
    if (q.size() < kBufferCap) {
      net::Packet retry = p;
      retry.header.reset();
      q.push_back(std::move(retry));
    }
    if (!discovery_attempts_.contains(p.destination)) {
      discovery_attempts_[p.destination] = 0;
      start_discovery(p.destination);
    }
    return;
  }
  ++events().data_dropped_no_route;
  // Report the broken link to the source along the reverse path.
  auto it = std::find(h->path.begin(), h->path.end(), self());
  if (it == h->path.end() || it == h->path.begin()) return;
  auto err = std::make_shared<DsrRerrHeader>();
  err->link_from = self();
  err->link_to = p.rx;
  err->path = h->path;
  net::Packet rerr;
  rerr.kind = net::PacketKind::kControl;
  rerr.origin = self();
  rerr.destination = p.origin;
  rerr.ttl = 32;
  rerr.size_bytes = 24;
  rerr.created_at = now();
  rerr.header = std::move(err);
  unicast(*(it - 1), std::move(rerr));
}

const DsrProtocol::CachedRoute* DsrProtocol::cached_route(net::NodeId dst) const {
  auto it = cache_.find(dst);
  if (it == cache_.end()) return nullptr;
  if (it->second.expires <= now()) return nullptr;
  return &it->second;
}

void DsrProtocol::purge_routes_using(net::NodeId a, net::NodeId b) {
  // NOLINT-vanet(unordered-iter): pure erase sweep; each entry is tested independently and visit order cannot escape
  for (auto it = cache_.begin(); it != cache_.end();) {
    const auto& path = it->second.path;
    bool uses = false;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      if ((path[k] == a && path[k + 1] == b) ||
          (path[k] == b && path[k + 1] == a)) {
        uses = true;
        break;
      }
    }
    it = uses ? cache_.erase(it) : ++it;
  }
}

}  // namespace vanet::routing
