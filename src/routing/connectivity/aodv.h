// AODV [6] (Sec. III-B): on-demand unicast routing with RREQ flooding,
// first-wins RREP, hop-count metric, and RERR-based maintenance.
//
// This is exactly the default policy of OnDemandBase; the class exists to
// give the baseline its own name and registry entry.
#pragma once

#include "routing/on_demand.h"

namespace vanet::routing {

class AodvProtocol final : public OnDemandBase {
 public:
  std::string_view name() const override { return "aodv"; }
  Category category() const override { return Category::kConnectivity; }
};

}  // namespace vanet::routing
