// Pure flooding (Sec. III-A).
//
// The source broadcasts the data packet; every node rebroadcasts each packet
// the first time it hears it, until TTL expires or the whole network has a
// copy. Simple and robust at low density, but it generates the duplicate
// load that causes the broadcast storm of [5] — bench_fig2 measures exactly
// that.
#pragma once

#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

class FloodingProtocol : public RoutingProtocol {
 public:
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;

  std::string_view name() const override { return "flooding"; }
  Category category() const override { return Category::kConnectivity; }

 protected:
  /// Hook for Biswas: called after this node rebroadcasts `p`, and when a
  /// duplicate of an already-seen packet is overheard.
  virtual void after_rebroadcast(const net::Packet& p) { (void)p; }
  virtual void on_duplicate_overheard(const net::Packet& p) { (void)p; }

  static std::uint64_t flood_key(const net::Packet& p) {
    return DupCache::key(p.origin, p.flow, p.seq);
  }

  static constexpr int kFloodTtl = 16;
  static constexpr double kRebroadcastJitterMs = 15.0;

 private:
  DupCache seen_;
};

}  // namespace vanet::routing
