// Pure flooding (Sec. III-A).
//
// The source broadcasts the data packet; every node rebroadcasts each packet
// the first time it hears it, until TTL expires or the whole network has a
// copy. Simple and robust at low density, but it generates the duplicate
// load that causes the broadcast storm of [5] — bench_fig2 measures exactly
// that.
//
// `flood.suppression=etx` arms coordinated rebroadcast suppression: instead
// of a flat jitter, a node defers its re-flood by a delay proportional to
// its multi-hop ETX distance to the packet's origin (well-connected nodes
// fire first) and cancels the deferred copy when it overhears the same
// packet from someone else during the wait — the earlier transmitter was
// better placed, by the same delay rule, so this copy is redundant.
#pragma once

#include <map>
#include <memory>

#include "routing/dup_cache.h"
#include "routing/linkquality/etx_agent.h"
#include "routing/protocol.h"

namespace vanet::routing {

class FloodingProtocol : public RoutingProtocol {
 public:
  FloodingProtocol() = default;
  FloodingProtocol(FloodSuppression suppression, EtxConfig etx)
      : suppression_{suppression}, etx_cfg_{etx} {}

  void start() override;
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;

  std::string_view name() const override { return "flooding"; }
  Category category() const override { return Category::kConnectivity; }
  /// ETX suppression needs the link-quality machinery, which rides hellos.
  bool wants_hello() const override {
    return suppression_ == FloodSuppression::kEtx;
  }

 protected:
  /// Hook for Biswas: called after this node rebroadcasts `p`, and when a
  /// duplicate of an already-seen packet is overheard.
  virtual void after_rebroadcast(const net::Packet& p) { (void)p; }
  virtual void on_duplicate_overheard(const net::Packet& p) { (void)p; }

  static std::uint64_t flood_key(const net::Packet& p) {
    return DupCache::key(p.origin, p.flow, p.seq);
  }

  static constexpr int kFloodTtl = 16;
  static constexpr double kRebroadcastJitterMs = 15.0;
  /// ETX suppression: defer = kSuppressSlotMs per ETX unit to the origin
  /// (capped at kSuppressCapEtx units) + the usual jitter as a tie-breaker.
  static constexpr double kSuppressSlotMs = 4.0;
  static constexpr double kSuppressCapEtx = 16.0;

 private:
  DupCache seen_;
  FloodSuppression suppression_ = FloodSuppression::kNone;
  EtxConfig etx_cfg_;
  std::unique_ptr<EtxAgent> agent_;
  /// Deferred rebroadcasts, cancellable by flood key while they wait.
  std::map<std::uint64_t, core::EventHandle> deferred_;
};

}  // namespace vanet::routing
