// Biswas et al. [9]: flooding with implicit acknowledgements (Sec. III-B).
//
// After rebroadcasting a packet, a vehicle listens for the same packet from
// other vehicles; hearing a copy implies someone received and re-relayed it.
// If no copy is overheard within a timeout, the vehicle rebroadcasts again
// (bounded retries). This trades extra transmissions for reliability in
// sparse traffic where a single broadcast may reach nobody.
#pragma once

#include <unordered_map>

#include "routing/connectivity/flooding.h"

namespace vanet::routing {

class BiswasProtocol final : public FloodingProtocol {
 public:
  BiswasProtocol() = default;
  /// Forwarded suppression mode: `flood.suppression=etx` defers + cancels
  /// exactly as in FloodingProtocol; an overheard copy both suppresses the
  /// deferred rebroadcast and counts as the implicit acknowledgement.
  BiswasProtocol(FloodSuppression suppression, EtxConfig etx)
      : FloodingProtocol{suppression, etx} {}

  std::string_view name() const override { return "biswas"; }

 protected:
  void after_rebroadcast(const net::Packet& p) override;
  void on_duplicate_overheard(const net::Packet& p) override;

 private:
  struct PendingAck {
    net::Packet packet;
    int retries = 0;
    bool acked = false;
  };

  void check_ack(std::uint64_t key);

  std::unordered_map<std::uint64_t, PendingAck> pending_;

  static constexpr int kMaxRetries = 2;
  static constexpr double kAckTimeoutMs = 250.0;
};

}  // namespace vanet::routing
