#include "routing/connectivity/dsdv.h"

#include <algorithm>
#include <memory>

#include "core/assert.h"

namespace vanet::routing {

void DsdvProtocol::start() {
  table_[self()] = TableEntry{self(), 0, own_seq_};
  // Desynchronise first advertisements across nodes.
  schedule(jitter(kUpdateIntervalSeconds * 1e3), [this] { periodic_update(); });
}

void DsdvProtocol::periodic_update() {
  own_seq_ += 2;  // even = valid
  table_[self()] = TableEntry{self(), 0, own_seq_};
  advertise();
  schedule(core::SimTime::seconds(kUpdateIntervalSeconds) + jitter(200.0),
           [this] { periodic_update(); });
}

void DsdvProtocol::advertise() {
  auto h = std::make_shared<DsdvHeader>();
  h->entries.reserve(table_.size());
  for (const auto& [dst, e] : table_) {  // NOLINT-vanet(unordered-iter): sorted below
    h->entries.push_back(DsdvHeader::Entry{dst, e.metric, e.seq});
  }
  // Advertisement content must not depend on hash-table iteration order:
  // receivers process entries independently per dst, so sorting is
  // behavior-neutral, but it keeps the packet bytes stdlib-independent.
  std::sort(h->entries.begin(), h->entries.end(),
            [](const DsdvHeader::Entry& a, const DsdvHeader::Entry& b) {
              return a.dst < b.dst;
            });
  net::Packet p;
  p.kind = net::PacketKind::kControl;
  p.origin = self();
  p.destination = net::kBroadcastId;
  p.ttl = 1;  // table dumps are single-hop
  p.size_bytes = 8 + 10 * h->entries.size();
  p.created_at = now();
  p.header = std::move(h);
  broadcast(std::move(p));
}

void DsdvProtocol::handle_frame(const net::Packet& p) {
  if (p.kind == net::PacketKind::kData) {
    if (p.destination == self()) {
      if (delivered_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq)))
        return;
      deliver(p);
      return;
    }
    if (const TableEntry* e = valid_route(p.destination)) {
      net::Packet fwd = p;
      fwd.ttl -= 1;
      if (fwd.ttl <= 0) {
        ++events().data_dropped_ttl;
        return;
      }
      fwd.hops += 1;
      ++events().data_forwarded;
      unicast(e->next_hop, std::move(fwd));
    } else {
      ++events().data_dropped_no_route;
    }
    return;
  }
  const auto* h = p.header_as<DsdvHeader>();
  if (h == nullptr) return;

  const net::NodeId from = p.origin;
  for (const auto& adv : h->entries) {
    if (adv.dst == self()) continue;
    const std::uint16_t metric =
        adv.metric == kInfMetric ? kInfMetric
                                 : static_cast<std::uint16_t>(adv.metric + 1);
    auto it = table_.find(adv.dst);
    const bool newer = it == table_.end() || adv.seq > it->second.seq;
    const bool same_but_better =
        it != table_.end() && adv.seq == it->second.seq &&
        metric < it->second.metric;
    if (newer || same_but_better) {
      table_[adv.dst] = TableEntry{from, metric, adv.seq};
    }
  }
}

bool DsdvProtocol::originate(net::NodeId dst, std::uint32_t flow,
                             std::uint32_t seq, std::size_t bytes) {
  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = 32;
  if (const TableEntry* e = valid_route(dst)) {
    p.hops += 1;
    ++events().data_forwarded;
    unicast(e->next_hop, std::move(p));
    return true;
  }
  ++events().data_dropped_no_route;
  return false;
}

void DsdvProtocol::handle_unicast_failure(const net::Packet& p) {
  // Invalidate every route through the unreachable next hop: odd sequence
  // numbers mark broken routes until the destination re-advertises.
  const net::NodeId broken = p.rx;
  bool changed = false;
  // NOLINT-vanet(unordered-iter): each entry is invalidated independently; visit order cannot escape
  for (auto& [dst, e] : table_) {
    if (dst != self() && (e.next_hop == broken || dst == broken) &&
        e.metric != kInfMetric) {
      e.metric = kInfMetric;
      e.seq += 1;
      changed = true;
    }
  }
  if (p.kind == net::PacketKind::kData) {
    ++events().route_breaks;
    ++events().data_dropped_no_route;
  }
  if (changed) advertise();
}

const DsdvProtocol::TableEntry* DsdvProtocol::valid_route(
    net::NodeId dst) const {
  auto it = table_.find(dst);
  if (it == table_.end() || it->second.metric == kInfMetric) return nullptr;
  return &it->second;
}

}  // namespace vanet::routing
