#include "routing/connectivity/flooding.h"

#include <algorithm>

#include "core/assert.h"

namespace vanet::routing {

void FloodingProtocol::start() {
  if (suppression_ != FloodSuppression::kEtx) return;
  VANET_ASSERT_MSG(ctx_.hello != nullptr,
                   "flood.suppression=etx requires the hello service");
  agent_ = std::make_unique<EtxAgent>(self(), etx_cfg_);
  agent_->attach(*ctx_.hello);
}

bool FloodingProtocol::originate(net::NodeId dst, std::uint32_t flow,
                                 std::uint32_t seq, std::size_t bytes) {
  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kFloodTtl;
  seen_.seen_or_insert(flood_key(p));
  broadcast(p);
  after_rebroadcast(p);
  return true;
}

void FloodingProtocol::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  const std::uint64_t key = flood_key(p);
  if (seen_.seen_or_insert(key)) {
    // A copy from someone else: if our own rebroadcast of this packet is
    // still deferred, that earlier transmitter was better placed — cancel.
    if (auto it = deferred_.find(key); it != deferred_.end()) {
      if (it->second.pending()) {
        it->second.cancel();
        ++events().suppressed_rebroadcasts;
      }
      deferred_.erase(it);
    }
    on_duplicate_overheard(p);
    return;
  }
  if (p.destination == self()) {
    deliver(p);
    return;  // the destination absorbs the packet
  }
  if (p.ttl <= 1) {
    ++events().data_dropped_ttl;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  ++events().data_forwarded;
  core::SimTime delay = jitter(kRebroadcastJitterMs);
  if (suppression_ == FloodSuppression::kEtx) {
    const double slots =
        std::min(agent_->distance_to(p.origin), kSuppressCapEtx);
    delay = delay + core::SimTime::seconds(slots * kSuppressSlotMs * 1e-3);
    deferred_[key] = ctx_.sim->schedule(delay, [this, key, fwd]() mutable {
      deferred_.erase(key);
      broadcast(std::move(fwd));
    });
  } else {
    schedule(delay, [this, fwd]() mutable { broadcast(std::move(fwd)); });
  }
  after_rebroadcast(p);
}

}  // namespace vanet::routing
