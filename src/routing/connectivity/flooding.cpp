#include "routing/connectivity/flooding.h"

namespace vanet::routing {

bool FloodingProtocol::originate(net::NodeId dst, std::uint32_t flow,
                                 std::uint32_t seq, std::size_t bytes) {
  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kFloodTtl;
  seen_.seen_or_insert(flood_key(p));
  broadcast(p);
  after_rebroadcast(p);
  return true;
}

void FloodingProtocol::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  if (seen_.seen_or_insert(flood_key(p))) {
    on_duplicate_overheard(p);
    return;
  }
  if (p.destination == self()) {
    deliver(p);
    return;  // the destination absorbs the packet
  }
  if (p.ttl <= 1) {
    ++events().data_dropped_ttl;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  ++events().data_forwarded;
  schedule(jitter(kRebroadcastJitterMs), [this, fwd]() mutable {
    broadcast(std::move(fwd));
  });
  after_rebroadcast(p);
}

}  // namespace vanet::routing
