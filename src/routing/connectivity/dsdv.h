// DSDV [8] (Sec. III-B): proactive destination-sequenced distance vector.
//
// Every node periodically broadcasts its full routing table, tagged with
// per-destination sequence numbers; receivers apply the classic DSDV update
// rule (newer sequence wins; same sequence keeps the lower metric). Broken
// next hops advance the sequence by one (odd = invalid) and trigger an
// immediate advertisement. The periodic full dumps are the scalability cost
// the survey attributes to proactive protocols.
#pragma once

#include <unordered_map>
#include <vector>

#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

struct DsdvHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kDsdv;
  DsdvHeader() : net::Header{kTag} {}
  struct Entry {
    net::NodeId dst = 0;
    std::uint16_t metric = 0;  ///< hop count; kInfMetric = unreachable
    std::uint32_t seq = 0;
  };
  std::vector<Entry> entries;
};

class DsdvProtocol final : public RoutingProtocol {
 public:
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void start() override;
  void handle_frame(const net::Packet& p) override;
  void handle_unicast_failure(const net::Packet& p) override;

  std::string_view name() const override { return "dsdv"; }
  Category category() const override { return Category::kConnectivity; }

  static constexpr std::uint16_t kInfMetric = 0xffff;

 private:
  struct TableEntry {
    net::NodeId next_hop = 0;
    std::uint16_t metric = kInfMetric;
    std::uint32_t seq = 0;
  };

  void periodic_update();
  void advertise();
  const TableEntry* valid_route(net::NodeId dst) const;

  std::unordered_map<net::NodeId, TableEntry> table_;
  DupCache delivered_;
  std::uint32_t own_seq_ = 0;

  static constexpr double kUpdateIntervalSeconds = 2.0;
};

}  // namespace vanet::routing
