// Per-node cache of road-route corridors, shared by the GeometryMode::kRoute
// paths of zone, grid and gvgrid.
//
// Building a map::RouteCorridor runs Dijkstra; a protocol instance evaluating
// every data frame (or RREQ) of a flow cannot afford that per packet. Flows
// are long-lived and roads do not move, so the corridor between a flow's
// endpoints is cached under a caller-chosen 64-bit key (canonically
// origin<<32|destination). Endpoints DO move: each lookup re-resolves the
// positions to (nearest segment, entry intersection) ids — one grid-indexed
// SegmentIndex query plus two distance computations per endpoint, never an
// O(intersections) scan — and rebuilds only when that tuple changed: the
// cheap queries every packet, Dijkstra only when an endpoint actually
// migrated along its street. The refresh rule depends on ids, not time, so
// replaying the same packet sequence rebuilds at the same points:
// determinism is preserved.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/vec2.h"
#include "map/route_corridor.h"

namespace vanet::routing {

class CorridorCache {
 public:
  /// Corridor between `src` and `dst` on `graph`, cached under `key`.
  /// The returned reference is valid until the next between() call.
  const map::RouteCorridor& between(const map::RoadGraph& graph,
                                    const map::SegmentIndex& index,
                                    std::uint64_t key, core::Vec2 src,
                                    core::Vec2 dst);

  /// Same lookup with the endpoint segments already resolved (a
  /// SegmentSnapshot hit or a segment id stamped into the packet header at
  /// origination). A negative id falls back to the per-call index query; a
  /// non-negative id MUST equal index.nearest_segment of the matching
  /// position, so both overloads refresh at the same packets and return
  /// bit-identical corridors.
  const map::RouteCorridor& between(const map::RoadGraph& graph,
                                    const map::SegmentIndex& index,
                                    std::uint64_t key, core::Vec2 src,
                                    core::Vec2 dst, int src_seg, int dst_seg);

  /// Pair key helper: (a, b) -> a<<32 | b.
  static std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

 private:
  struct Entry {
    map::RouteCorridor corridor;
    int src_segment = -1;
    int dst_segment = -1;
    int src_entry = -1;  ///< entry_intersection of src on src_segment
    int dst_entry = -1;
    // Positions the entry ids were resolved from, bit-exact. A lookup with
    // the same (segment, position) bits skips the entry_intersection
    // recomputation; any change falls through to the exact query.
    core::Vec2 src_pos{};
    core::Vec2 dst_pos{};
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace vanet::routing
