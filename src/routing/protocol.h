// Routing protocol framework.
//
// One RoutingProtocol instance runs per node. The framework owns mechanics
// shared by all protocols (packet construction, send/deliver plumbing,
// event accounting); concrete protocols implement policy only. The five
// categories match the paper's taxonomy (Fig. 1).
#pragma once

#include <functional>
#include <string_view>

#include "analysis/stats.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "net/hello.h"
#include "net/network.h"
#include "net/packet.h"

namespace vanet::analysis {
class LifetimeMemo;
}  // namespace vanet::analysis

namespace vanet::map {
class RoadGraph;
class SegmentIndex;
class SegmentSnapshot;
}  // namespace vanet::map

namespace vanet::routing {

/// Geometry backend of the road-geometry protocols (zone / grid / gvgrid).
/// kLine is the historical axis-aligned plane: straight src→dst corridors and
/// square coordinate cells. kRoute reasons over the shared map instead —
/// corridors follow the shortest road route (map::RouteCorridor) and cells
/// group road segments (map::SegmentCells). On lattice maps (RoadGraph::
/// is_grid()) kRoute intentionally reduces to the kLine predicates: every
/// point near the straight line is near a road there, so the plane geometry
/// IS the road geometry — which keeps the two modes decision-identical on
/// grids (property-tested) and the golden digests stable.
enum class GeometryMode { kLine, kRoute };

/// The paper's taxonomy (Fig. 1).
enum class Category {
  kConnectivity,
  kMobility,
  kInfrastructure,
  kGeographic,
  kProbability,
};

std::string_view to_string(Category c);

/// Run-wide protocol event accounting, shared by all nodes of a scenario.
struct ProtocolEvents {
  std::uint64_t discoveries_started = 0;
  std::uint64_t routes_established = 0;
  std::uint64_t route_breaks = 0;
  std::uint64_t preemptive_rebuilds = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_dropped_no_route = 0;
  std::uint64_t data_dropped_ttl = 0;
  // Discovery-path diagnostics (on-demand family).
  std::uint64_t rreq_at_target = 0;   ///< RREQ copies arriving at their target
  std::uint64_t rrep_sent = 0;        ///< replies originated by destinations
  std::uint64_t rrep_relayed = 0;     ///< replies forwarded by intermediates
  std::uint64_t rrep_stranded = 0;    ///< replies dropped: reverse route gone
  analysis::RunningStats predicted_route_lifetime;  ///< seconds, at establish
  analysis::RunningStats observed_route_lifetime;   ///< establish -> break
  // Link-quality family diagnostics (routing/linkquality/).
  std::uint64_t suppressed_rebroadcasts = 0;  ///< flood.suppression cancels
  /// |estimated link ETX - analytic ETX at the true distance|, sampled per
  /// live link at each beacon (etx protocol only).
  analysis::RunningStats etx_link_abs_error;
};

struct ProtocolContext {
  core::Simulator* sim = nullptr;
  net::Network* net = nullptr;
  net::HelloService* hello = nullptr;  ///< null when the protocol opted out
  core::Rng* rng = nullptr;
  ProtocolEvents* events = nullptr;
  net::NodeId self = 0;
  // Shared road topology (src/map/), non-owning: the scenario that binds the
  // protocol owns both and keeps them alive for the protocol's lifetime (see
  // docs/ARCHITECTURE.md, "ProtocolContext ownership"). Null in harnesses
  // that route over bare coordinates — protocols must treat the map as
  // optional and fall back to their GeometryMode::kLine path.
  const map::RoadGraph* map = nullptr;
  const map::SegmentIndex* segments = nullptr;
  // Scenario-owned caches (null in bare harnesses — protocols fall back to
  // direct computation; cached and uncached paths are bit-identical, see
  // docs/ARCHITECTURE.md "Scenario-owned caches"). Mutable shared state, but
  // scenarios are single-threaded so no synchronisation is needed.
  analysis::LifetimeMemo* lifetime_memo = nullptr;
  map::SegmentSnapshot* seg_snapshot = nullptr;
};

class RoutingProtocol {
 public:
  using DeliverCallback = std::function<void(const net::Packet&)>;

  virtual ~RoutingProtocol() = default;

  /// Wire the instance to its node. Must be called exactly once, before start().
  void bind(const ProtocolContext& ctx);

  /// Called once at scenario start (timers, proactive state).
  virtual void start() {}

  /// Every decoded frame addressed to this node (unicast to it or broadcast),
  /// except hello beacons which the dispatcher feeds to the HelloService.
  virtual void handle_frame(const net::Packet& p) = 0;

  /// MAC retries exhausted for a unicast frame this node sent.
  virtual void handle_unicast_failure(const net::Packet& p) { (void)p; }

  /// Application asks to send `bytes` of payload to `dst`.
  /// Returns false when the protocol rejects the packet outright.
  virtual bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                         std::size_t bytes) = 0;

  virtual std::string_view name() const = 0;
  virtual Category category() const = 0;
  /// Protocols that need neighbor awareness pay for hello beacons.
  virtual bool wants_hello() const { return false; }

  void set_deliver_callback(DeliverCallback cb) { deliver_cb_ = std::move(cb); }

 protected:
  net::NodeId self() const { return ctx_.self; }
  core::SimTime now() const { return ctx_.sim->now(); }
  core::Rng& rng() const { return *ctx_.rng; }
  net::Network& network() const { return *ctx_.net; }
  ProtocolEvents& events() const { return *ctx_.events; }
  /// Neighbor table of this node; precondition: wants_hello().
  const net::NeighborTable& neighbors() const;

  /// True when the binder supplied the shared road topology.
  bool has_map() const { return ctx_.map != nullptr && ctx_.segments != nullptr; }
  /// Shared road graph / segment index; precondition: has_map().
  const map::RoadGraph& road_map() const;
  const map::SegmentIndex& segment_index() const;

  /// Scenario-owned caches; null when the binder did not supply them.
  analysis::LifetimeMemo* lifetime_memo() const { return ctx_.lifetime_memo; }
  map::SegmentSnapshot* seg_snapshot() const { return ctx_.seg_snapshot; }
  /// Nearest segment to node `id` at its current position `pos`: the
  /// scenario snapshot when bound, a direct index query otherwise.
  /// Bit-identical either way. Precondition: has_map(); `pos` must be the
  /// node's current tick-aligned position (never an extrapolation).
  int snapped_segment(net::NodeId id, core::Vec2 pos) const;

  /// Fresh data packet originated here.
  net::Packet make_data(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                        std::size_t bytes) const;

  /// L2 sends. `broadcast` clears rx; `unicast` sets it.
  void broadcast(net::Packet p) const;
  void unicast(net::NodeId next_hop, net::Packet p) const;

  /// Hand a data packet that reached its destination to the application.
  void deliver(const net::Packet& p) const;

  /// Uniform jitter in [0, max_ms] milliseconds — de-synchronises rebroadcasts.
  core::SimTime jitter(double max_ms) const;
  /// Forward the callable straight into the scheduler's inline storage (no
  /// std::function round-trip, so Packet-sized captures stay allocation-free).
  template <typename F>
  void schedule(core::SimTime delay, F&& fn) const {
    ctx_.sim->schedule(delay, std::forward<F>(fn));
  }

  ProtocolContext ctx_;

 private:
  DeliverCallback deliver_cb_;
};

}  // namespace vanet::routing
