// PBR — prediction-based routing (Namboodiri & Gao [13], Sec. IV-B).
//
// Route discovery carries each forwarder's kinematics; every link is scored
// with its predicted lifetime (Eqns. 1-4, solved in 2-D), the path metric is
// the minimum link lifetime, and the destination answers the most durable
// path seen in a short collection window. The source schedules a preemptive
// re-discovery before the predicted expiry — PBR's signature move: replace
// routes *before* they break.
#pragma once

#include "analysis/link_lifetime.h"
#include "routing/on_demand.h"

namespace vanet::routing {

class PbrProtocol : public OnDemandBase {
 public:
  std::string_view name() const override { return "pbr"; }
  Category category() const override { return Category::kMobility; }
  bool wants_hello() const override { return true; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  bool reply_immediately() const override { return false; }
  double preemptive_rebuild_fraction() const override { return 0.75; }
  core::SimTime route_lifetime_cap() const override {
    return core::SimTime::seconds(30.0);
  }

  /// Predicted lifetime of the link from the RREQ's previous hop to us,
  /// assuming both keep their current velocity/acceleration.
  double predict_link_lifetime(const RreqHeader& h) const;
};

}  // namespace vanet::routing
