#include "routing/mobility/abedi.h"

#include "analysis/direction.h"

namespace vanet::routing {

LinkEval AbediProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  ev.lifetime = predict_link_lifetime(h);
  ev.usable = ev.lifetime > 0.3;
  // Primary: same direction as the flow's source.
  const bool same_as_source = analysis::similar_heading(
      network().velocity(self()), h.origin_vel, kMaxHeadingDeltaRad);
  ev.cost = same_as_source ? 1.0 : kDirectionPenalty;
  return ev;
}

bool AbediProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.hops != b.hops) return a.hops < b.hops;
  return a.min_lifetime > b.min_lifetime;
}

}  // namespace vanet::routing
