// Wedde et al. [15] (Sec. IV-B): rating-based routing.
//
// "The rating value is computed to evaluate the road conditions (actual
// traffic situation), based on the interdependencies of average vehicle
// speed, traffic density and the traffic quality (in terms of congestion).
// A routing link is incorporated into a routing path if the rating value
// satisfies a certain requirement, i.e. a threshold value."
//
// Each node rates its local road condition from the hello neighbor table:
// flowing traffic at healthy density rates high; congested (slow, dense) or
// deserted roads rate low. Links into poorly rated areas cost more and are
// rejected below the admission threshold.
#pragma once

#include "routing/on_demand.h"

namespace vanet::routing {

class WeddeProtocol final : public OnDemandBase {
 public:
  explicit WeddeProtocol(double admission_threshold = 0.15)
      : threshold_{admission_threshold} {}

  std::string_view name() const override { return "wedde"; }
  Category category() const override { return Category::kMobility; }
  bool wants_hello() const override { return true; }

  /// Local road-condition rating in [0, 1] (exposed for tests).
  double local_rating() const;

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  bool reply_immediately() const override { return false; }

 private:
  double threshold_;

  static constexpr double kHealthySpeed = 20.0;    ///< m/s of flowing traffic
  static constexpr double kHealthyNeighbors = 4.0; ///< enough relays around
};

}  // namespace vanet::routing
