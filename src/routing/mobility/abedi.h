// Abedi et al. [11] (Sec. IV-B): AODV enhanced with mobility parameters.
//
// Direction is the primary next-hop criterion — links between vehicles that
// move like the *source* are preferred (same-direction nodes stay together);
// position is secondary: links that make forward progress toward the
// destination cost less. Speed enters through the predicted link lifetime
// used for route expiry.
#pragma once

#include "routing/mobility/pbr.h"

namespace vanet::routing {

class AbediProtocol final : public PbrProtocol {
 public:
  std::string_view name() const override { return "abedi"; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  double preemptive_rebuild_fraction() const override { return 0.0; }

 private:
  static constexpr double kDirectionPenalty = 3.0;
  static constexpr double kMaxHeadingDeltaRad = 0.7854;  ///< 45 degrees
};

}  // namespace vanet::routing
