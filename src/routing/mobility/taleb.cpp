#include "routing/mobility/taleb.h"

#include "analysis/direction.h"

namespace vanet::routing {

LinkEval TalebProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  ev.lifetime = predict_link_lifetime(h);
  ev.usable = ev.lifetime > 0.5;
  const int own_group = analysis::velocity_group(network().velocity(self()));
  ev.cost = own_group == h.prev_group ? 1.0 : kCrossGroupPenalty;
  return ev;
}

bool TalebProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.min_lifetime > b.min_lifetime;
}

}  // namespace vanet::routing
