#include "routing/mobility/pbr.h"

namespace vanet::routing {

double PbrProtocol::predict_link_lifetime(const RreqHeader& h) const {
  // 120 s horizon at 0.25 s sampling: link evaluation runs once per RREQ per
  // node, so the solver is kept cheap; bisection still refines the crossing.
  const auto lifetime = analysis::link_lifetime_2d(
      h.prev_pos, h.prev_vel, h.prev_acc, network().position(self()),
      network().velocity(self()), network().acceleration(self()),
      network().nominal_range(), /*horizon=*/120.0, /*dt=*/0.25, /*tol=*/1e-3);
  if (!lifetime.has_value()) return analysis::kInfiniteLifetime;
  return *lifetime;
}

LinkEval PbrProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  ev.lifetime = predict_link_lifetime(h);
  // Links already predicted to break within the discovery round trip are
  // not worth building on.
  ev.usable = ev.lifetime > 0.5;
  return ev;
}

bool PbrProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  if (a.min_lifetime != b.min_lifetime) return a.min_lifetime > b.min_lifetime;
  return a.hops < b.hops;
}

}  // namespace vanet::routing
