// Taleb et al. [14] (Sec. IV-B): velocity-vector grouping.
//
// Vehicles are binned into four groups by velocity direction; links between
// same-group vehicles are expected to outlive cross-group links, so path
// selection penalises every group change along the path. Like the paper's
// description, a new discovery is initiated before the route's predicted
// duration (the shortest link duration) elapses.
#pragma once

#include "routing/mobility/pbr.h"

namespace vanet::routing {

class TalebProtocol final : public PbrProtocol {
 public:
  std::string_view name() const override { return "taleb"; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  double preemptive_rebuild_fraction() const override { return 0.8; }

 private:
  static constexpr double kCrossGroupPenalty = 4.0;
};

}  // namespace vanet::routing
