#include "routing/mobility/wedde.h"

#include <algorithm>

namespace vanet::routing {

double WeddeProtocol::local_rating() const {
  const auto nbrs = neighbors().snapshot();
  // Density term: saturating in the number of usable relays.
  const double density =
      std::min(1.0, static_cast<double>(nbrs.size()) / kHealthyNeighbors);
  if (nbrs.empty()) return 0.0;
  // Speed / congestion terms: flowing traffic keeps mean speed near free
  // flow; congestion is the fraction of near-stationary vehicles.
  double speed_sum = 0.0;
  int slow = 0;
  for (const auto& n : nbrs) {
    const double v = n.vel.norm();
    speed_sum += v;
    if (v < 0.25 * kHealthySpeed) ++slow;
  }
  const double mean_speed = speed_sum / static_cast<double>(nbrs.size());
  const double flow = std::min(1.0, mean_speed / kHealthySpeed);
  const double quality =
      1.0 - static_cast<double>(slow) / static_cast<double>(nbrs.size());
  // Interdependency: density provides relays, flow*quality keeps them usable.
  return density * (0.5 * flow + 0.5 * quality);
}

LinkEval WeddeProtocol::evaluate_link(const RreqHeader& h) const {
  (void)h;
  LinkEval ev;
  const double rating = local_rating();
  ev.usable = rating >= threshold_;
  // Better-rated areas are cheaper to route through.
  ev.cost = 1.0 / std::max(rating, 0.05);
  return ev;
}

bool WeddeProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.hops < b.hops;
}

}  // namespace vanet::routing
