#include "routing/geographic/zone.h"

#include <memory>

namespace vanet::routing {

bool ZoneProtocol::originate(net::NodeId dst, std::uint32_t flow,
                             std::uint32_t seq, std::size_t bytes) {
  auto h = std::make_shared<ZoneHeader>();
  h->src_pos = network().position(self());
  h->dst_pos = network().position(dst);  // location service
  h->half_width = half_width_;
  if (route_mode()) {
    h->src_seg = snapped_segment(self(), h->src_pos);
    h->dst_seg = snapped_segment(dst, h->dst_pos);
  }

  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kZoneTtl;
  p.header = std::move(h);
  seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq));
  broadcast(std::move(p));
  return true;
}

bool ZoneProtocol::inside_zone(const net::Packet& p, const ZoneHeader& h) const {
  const core::Vec2 here = network().position(self());
  if (route_mode()) {
    const map::RouteCorridor& corridor = corridors_.between(
        road_map(), segment_index(),
        CorridorCache::pair_key(p.origin, p.destination), h.src_pos, h.dst_pos,
        h.src_seg, h.dst_seg);
    // Disconnected endpoints have no road route: the straight-line zone is
    // then the only corridor that exists.
    if (corridor.route_found()) return corridor.contains(here, h.half_width);
  }
  return core::distance_to_segment(here, h.src_pos, h.dst_pos) <= h.half_width;
}

void ZoneProtocol::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  const auto* h = p.header_as<ZoneHeader>();
  if (h == nullptr) return;
  if (seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq))) return;
  if (p.destination == self()) {
    deliver(p);
    return;
  }
  // Outside the corridor: drop silently — that is the whole point of zones.
  if (!inside_zone(p, *h)) return;
  if (p.ttl <= 1) {
    ++events().data_dropped_ttl;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  ++events().data_forwarded;
  schedule(jitter(kJitterMs), [this, fwd]() mutable { broadcast(std::move(fwd)); });
}

}  // namespace vanet::routing
