// Zone routing (Bronsted & Kristensen [22], Sec. VI-B).
//
// A zone is a geographic corridor between the source and the destination;
// vehicles inside the zone rebroadcast, vehicles outside drop. The effect
// (Fig. 6) is flooding confined to the section of road that actually leads
// to the destination.
//
// Two corridor geometries (GeometryMode, selected via `zone.geometry`):
//  - kLine (default): the legacy straight src→dst segment — faithful on
//    lattice maps, where every point near the line is near a road.
//  - kRoute: the corridor follows the shortest road route between the
//    endpoints (map::RouteCorridor), so on an imported map the flood stays on
//    streets that lead to the destination instead of cutting across roadless
//    blocks. Reduces to kLine on lattice maps, when no map is bound, or when
//    the endpoints are in disconnected road components.
#pragma once

#include "core/vec2.h"
#include "routing/corridor_cache.h"
#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

struct ZoneHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kZone;
  ZoneHeader() : net::Header{kTag} {}
  core::Vec2 src_pos;
  core::Vec2 dst_pos;
  double half_width = 250.0;  ///< corridor half width, m
  /// Road segments nearest src_pos/dst_pos, stamped at origination in route
  /// mode (-1 otherwise). Pure functions of the stamped positions, so
  /// receivers reusing them get bit-identically what a fresh index query
  /// over src_pos/dst_pos would return.
  int src_seg = -1;
  int dst_seg = -1;
};

class ZoneProtocol final : public RoutingProtocol {
 public:
  explicit ZoneProtocol(GeometryMode geometry = GeometryMode::kLine,
                        double half_width = 250.0)
      : half_width_{half_width}, geometry_{geometry} {}

  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;

  std::string_view name() const override { return "zone"; }
  Category category() const override { return Category::kGeographic; }

  GeometryMode geometry() const { return geometry_; }

 private:
  bool inside_zone(const net::Packet& p, const ZoneHeader& h) const;
  /// Route-corridor confinement active (kRoute + non-lattice map bound)?
  bool route_mode() const {
    return geometry_ == GeometryMode::kRoute && has_map() &&
           !road_map().is_grid();
  }

  double half_width_;
  GeometryMode geometry_;
  DupCache seen_;
  mutable CorridorCache corridors_;  ///< kRoute only, keyed by (origin, dst)

  static constexpr int kZoneTtl = 16;
  static constexpr double kJitterMs = 15.0;
};

}  // namespace vanet::routing
