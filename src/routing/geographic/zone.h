// Zone routing (Bronsted & Kristensen [22], Sec. VI-B).
//
// A zone is a geographic corridor between the source and the destination;
// vehicles inside the zone rebroadcast, vehicles outside drop. The effect
// (Fig. 6) is flooding confined to the section of road that actually leads
// to the destination.
#pragma once

#include "core/vec2.h"
#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

struct ZoneHeader final : net::Header {
  core::Vec2 src_pos;
  core::Vec2 dst_pos;
  double half_width = 250.0;  ///< corridor half width, m
};

class ZoneProtocol final : public RoutingProtocol {
 public:
  explicit ZoneProtocol(double half_width = 250.0) : half_width_{half_width} {}

  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;

  std::string_view name() const override { return "zone"; }
  Category category() const override { return Category::kGeographic; }

 private:
  bool inside_zone(const ZoneHeader& h) const;

  double half_width_;
  DupCache seen_;

  static constexpr int kZoneTtl = 16;
  static constexpr double kJitterMs = 15.0;
};

}  // namespace vanet::routing
