// Shared engine for position-based unicast forwarding (Sec. VI-A).
//
// Geographic protocols pick the next hop from the hello-built neighbor table
// using the positions of the neighbors and of the destination; no discovery
// phase exists. Subclasses provide the candidate scoring; the base supplies
// candidate filtering (positive progress), per-neighbor blacklisting after
// MAC failures, and the fallback hook used by the infrastructure protocols
// (hand-off to RSU / ferry / local buffering).
//
// Destination positions come from an ideal location service (the standard
// assumption of this protocol family; see DESIGN.md substitutions).
#pragma once

#include <unordered_map>

#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

class GeoUnicastBase : public RoutingProtocol {
 public:
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;
  void handle_unicast_failure(const net::Packet& p) override;
  bool wants_hello() const override { return true; }

 protected:
  /// Score a forwarding candidate; larger is better. `progress` is the
  /// reduction in distance-to-destination (always > min_progress()),
  /// `distance` the current distance from this node to the candidate.
  virtual double score_candidate(const net::NeighborInfo& cand, double progress,
                                 double distance) const = 0;

  /// Called when no usable candidate exists. Default: count + drop.
  virtual void no_candidate(net::Packet p);

  virtual double min_progress() const { return 1.0; }

  /// Where greedy progress is measured toward. Defaults to the destination's
  /// position; CAR points it at the next anchor of its connectivity path.
  virtual core::Vec2 forward_target(const net::Packet& p) const {
    return destination_position(p.destination);
  }

  /// Ideal location service.
  core::Vec2 destination_position(net::NodeId dst) const {
    return network().position(dst);
  }

  /// Greedy-forward `p`; falls back to no_candidate() when stuck.
  /// Virtual so infrastructure protocols can divert the forwarding path
  /// (e.g. RSU backbone relaying).
  virtual void forward_geo(net::Packet p);
  /// True when a candidate was found and the packet was sent.
  bool try_forward(net::Packet& p);

  void blacklist(net::NodeId id);
  bool blacklisted(net::NodeId id) const;

  static constexpr double kBlacklistSeconds = 2.0;
  static constexpr int kGeoTtl = 64;

 private:
  std::unordered_map<net::NodeId, core::SimTime> blacklist_;
  DupCache delivered_;
};

}  // namespace vanet::routing
