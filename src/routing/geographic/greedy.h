// Predictive directional greedy routing (Gong [23] / Lochert [24], Sec. VI-B).
//
// Forward aggressively toward the destination: among neighbors that make
// progress, prefer the one combining large progress with a long predicted
// link lifetime — "the directions of vehicles' movement are taken into
// consideration ... it helps to select long-lived links".
#pragma once

#include "routing/geographic/geo_base.h"

namespace vanet::routing {

class GreedyProtocol final : public GeoUnicastBase {
 public:
  std::string_view name() const override { return "greedy"; }
  Category category() const override { return Category::kGeographic; }

 protected:
  double score_candidate(const net::NeighborInfo& cand, double progress,
                         double distance) const override;
};

}  // namespace vanet::routing
