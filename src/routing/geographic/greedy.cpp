#include "routing/geographic/greedy.h"

#include <algorithm>

#include "analysis/link_lifetime.h"

namespace vanet::routing {

double GreedyProtocol::score_candidate(const net::NeighborInfo& cand,
                                       double progress,
                                       double distance) const {
  (void)distance;
  const auto lifetime = analysis::link_lifetime_2d(
      network().position(self()), network().velocity(self()),
      network().acceleration(self()), cand.predicted_pos(now()), cand.vel,
      cand.acc, network().nominal_range(),
      /*horizon=*/30.0, /*dt=*/0.25);
  const double life = lifetime.value_or(30.0);
  // Progress dominates; the lifetime factor (capped at 10 s) breaks the
  // classic greedy tie toward links that will survive the transfer.
  return progress * std::clamp(life, 0.5, 10.0);
}

}  // namespace vanet::routing
