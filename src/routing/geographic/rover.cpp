#include "routing/geographic/rover.h"

namespace vanet::routing {

void RoverProtocol::forward_rreq(const net::Packet& p, const RreqHeader& h) {
  // Zone membership: this node lies within the corridor from the request
  // origin to the destination's position (ideal location service, as in the
  // zone data protocols). Outside the zone the RREQ dies silently.
  const core::Vec2 here = network().position(self());
  const core::Vec2 target_pos = network().position(h.target);
  if (self() != h.rreq_origin &&
      core::distance_to_segment(here, h.origin_pos, target_pos) > half_width_) {
    return;
  }
  OnDemandBase::forward_rreq(p, h);
}

}  // namespace vanet::routing
