// Grid/gateway routing (CarNet [20], LORA-DCBF [26], Sec. VI).
//
// Space is partitioned into cells; within each cell a single *gateway*
// vehicle relays packets while ordinary members stay silent — "all the
// members in the zone can read and process the packet; they do not
// retransmit". The gateway is elected locally: the vehicle closest to the
// cell's reference point among the cell's members known from the neighbor
// table (deterministic tie-break by id). Forwarding is additionally confined
// to a corridor toward the destination (LORA-DCBF's directional flooding).
//
// Two cell/corridor geometries (GeometryMode, `grid.geometry`):
//  - kLine (default): fixed square coordinate cells (reference point = the
//    square's centre) and a straight src→dst corridor.
//  - kRoute: cells are groups of road segments (map::SegmentCells) — a
//    vehicle belongs to the cell of the street it is on, the reference point
//    is the cell's road anchor, and the corridor follows the shortest road
//    route between the endpoints. Reduces to kLine on lattice maps or when
//    no map is bound.
#pragma once

#include <memory>

#include "core/vec2.h"
#include "map/segment_cells.h"
#include "routing/corridor_cache.h"
#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

struct GridHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kGrid;
  GridHeader() : net::Header{kTag} {}
  core::Vec2 src_pos;
  core::Vec2 dst_pos;
  /// Road segments nearest src_pos/dst_pos, stamped at origination in route
  /// mode (-1 otherwise); pure functions of the stamped positions, so
  /// receivers reusing them match a fresh index query bit-for-bit.
  int src_seg = -1;
  int dst_seg = -1;
};

class GridGatewayProtocol final : public RoutingProtocol {
 public:
  /// `cell_size` <= 0 selects automatic sizing: 0.8 x the radio's nominal
  /// range, so that neighboring gateways can always hear each other (a cell
  /// larger than the radio range breaks the gateway relay chain).
  explicit GridGatewayProtocol(GeometryMode geometry = GeometryMode::kLine,
                               double cell_size = 0.0,
                               double corridor_half_width = 600.0)
      : cell_size_{cell_size},
        corridor_half_width_{corridor_half_width},
        geometry_{geometry} {}

  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;

  std::string_view name() const override { return "grid"; }
  Category category() const override { return Category::kGeographic; }
  bool wants_hello() const override { return true; }

  /// Exposed for tests: gateway election result for this node right now.
  bool is_gateway() const;
  GeometryMode geometry() const { return geometry_; }

 private:
  double cell() const;
  core::Vec2 cell_center(core::Vec2 pos) const;
  bool inside_corridor(const net::Packet& p, const GridHeader& h) const;
  /// kRoute requested AND a non-lattice map is bound (see GeometryMode).
  bool road_mode() const;
  const map::SegmentCells& road_cells() const;

  double cell_size_;
  double corridor_half_width_;
  GeometryMode geometry_;
  DupCache seen_;
  /// Lazily built on first use (cell sizing needs the bound network's radio
  /// range); per-instance, immutable afterwards.
  mutable std::unique_ptr<map::SegmentCells> road_cells_;
  mutable CorridorCache corridors_;  ///< kRoute only, keyed by (origin, dst)

  static constexpr int kGridTtl = 20;
  static constexpr double kJitterMs = 15.0;
};

}  // namespace vanet::routing
