#include "routing/geographic/geo_base.h"

#include "core/assert.h"

namespace vanet::routing {

bool GeoUnicastBase::originate(net::NodeId dst, std::uint32_t flow,
                               std::uint32_t seq, std::size_t bytes) {
  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kGeoTtl;
  forward_geo(std::move(p));
  return true;
}

void GeoUnicastBase::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  if (p.destination == self()) {
    if (delivered_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq))) return;
    deliver(p);
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  if (fwd.ttl <= 0) {
    ++events().data_dropped_ttl;
    return;
  }
  forward_geo(std::move(fwd));
}

bool GeoUnicastBase::try_forward(net::Packet& p) {
  const core::Vec2 here = network().position(self());
  const core::Vec2 target = forward_target(p);
  const core::Vec2 true_dest = destination_position(p.destination);
  const double target_dist = (target - here).norm();
  const double dest_dist = (true_dest - here).norm();

  // The destination itself competes like any candidate (its progress is the
  // full remaining distance); the subclass score decides — REAR, for
  // example, may prefer a short reliable hop over a marginal direct shot.
  const net::NeighborInfo* best = nullptr;
  double best_score = 0.0;
  const auto snapshot = neighbors().snapshot();
  for (const auto& cand : snapshot) {
    if (cand.id == p.origin || blacklisted(cand.id)) continue;
    const core::Vec2 cand_pos = cand.predicted_pos(now());
    const double progress =
        cand.id == p.destination
            ? dest_dist - (true_dest - cand_pos).norm()
            : target_dist - (target - cand_pos).norm();
    if (progress < min_progress()) continue;
    const double distance = (cand_pos - here).norm();
    const double score = score_candidate(cand, progress, distance);
    if (score > best_score) {
      best_score = score;
      best = neighbors().find(cand.id);
    }
  }
  if (best == nullptr) {
    // Fallback: nobody scored, but the destination is in range — deliver.
    if (neighbors().find(p.destination) != nullptr &&
        !blacklisted(p.destination)) {
      p.hops += 1;
      ++events().data_forwarded;
      unicast(p.destination, p);
      return true;
    }
    return false;
  }
  p.hops += 1;
  ++events().data_forwarded;
  unicast(best->id, p);
  return true;
}

void GeoUnicastBase::forward_geo(net::Packet p) {
  if (!try_forward(p)) no_candidate(std::move(p));
}

void GeoUnicastBase::no_candidate(net::Packet p) {
  (void)p;
  ++events().data_dropped_no_route;
}

void GeoUnicastBase::handle_unicast_failure(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  ++events().route_breaks;
  blacklist(p.rx);
  net::Packet retry = p;
  forward_geo(std::move(retry));
}

void GeoUnicastBase::blacklist(net::NodeId id) {
  blacklist_[id] = now() + core::SimTime::seconds(kBlacklistSeconds);
}

bool GeoUnicastBase::blacklisted(net::NodeId id) const {
  auto it = blacklist_.find(id);
  return it != blacklist_.end() && it->second > now();
}

}  // namespace vanet::routing
