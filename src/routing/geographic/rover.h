// ROVER — robust vehicular routing (Kihl et al. [25], Sec. VI-B).
//
// "The protocol broadcasts control packets, similar to AODV, among zones to
// find a routing path. Once the routing path is found, data packets are
// unicasted along the single path." We implement it as AODV whose RREQ flood
// is confined to the geographic zone (corridor) between the source and the
// destination — the control-plane analogue of zone data flooding.
#pragma once

#include "routing/on_demand.h"

namespace vanet::routing {

class RoverProtocol final : public OnDemandBase {
 public:
  explicit RoverProtocol(double corridor_half_width = 400.0)
      : half_width_{corridor_half_width} {}

  std::string_view name() const override { return "rover"; }
  Category category() const override { return Category::kGeographic; }

 protected:
  void forward_rreq(const net::Packet& p, const RreqHeader& h) override;

 private:
  double half_width_;
};

}  // namespace vanet::routing
