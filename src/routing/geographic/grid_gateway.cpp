#include "routing/geographic/grid_gateway.h"

#include <cmath>
#include <memory>

namespace vanet::routing {

double GridGatewayProtocol::cell() const {
  return cell_size_ > 0.0 ? cell_size_ : 0.8 * network().nominal_range();
}

core::Vec2 GridGatewayProtocol::cell_center(core::Vec2 pos) const {
  const double size = cell();
  const double cx = std::floor(pos.x / size) * size + size / 2.0;
  const double cy = std::floor(pos.y / size) * size + size / 2.0;
  return {cx, cy};
}

bool GridGatewayProtocol::is_gateway() const {
  const core::Vec2 here = network().position(self());
  const core::Vec2 center = cell_center(here);
  const double my_dist = (here - center).norm();
  for (const auto& nbr : neighbors().snapshot()) {
    const core::Vec2 pos = nbr.predicted_pos(now());
    if (cell_center(pos) != center) continue;  // different cell
    const double d = (pos - center).norm();
    if (d < my_dist || (d == my_dist && nbr.id < self())) return false;
  }
  return true;
}

bool GridGatewayProtocol::inside_corridor(const GridHeader& h) const {
  const core::Vec2 center = cell_center(network().position(self()));
  return core::distance_to_segment(center, h.src_pos, h.dst_pos) <=
         corridor_half_width_;
}

bool GridGatewayProtocol::originate(net::NodeId dst, std::uint32_t flow,
                                    std::uint32_t seq, std::size_t bytes) {
  auto h = std::make_shared<GridHeader>();
  h->src_pos = network().position(self());
  h->dst_pos = network().position(dst);  // location service

  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kGridTtl;
  p.header = std::move(h);
  seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq));
  broadcast(std::move(p));
  return true;
}

void GridGatewayProtocol::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  const auto* h = p.header_as<GridHeader>();
  if (h == nullptr) return;
  if (seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq))) return;
  if (p.destination == self()) {
    deliver(p);
    return;
  }
  // Members read and process but do not retransmit; only gateways relay,
  // and only inside the corridor toward the destination.
  if (!is_gateway() || !inside_corridor(*h)) return;
  if (p.ttl <= 1) {
    ++events().data_dropped_ttl;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  ++events().data_forwarded;
  schedule(jitter(kJitterMs), [this, fwd]() mutable { broadcast(std::move(fwd)); });
}

}  // namespace vanet::routing
