#include "routing/geographic/grid_gateway.h"

#include <cmath>
#include <memory>

namespace vanet::routing {

double GridGatewayProtocol::cell() const {
  return cell_size_ > 0.0 ? cell_size_ : 0.8 * network().nominal_range();
}

core::Vec2 GridGatewayProtocol::cell_center(core::Vec2 pos) const {
  const double size = cell();
  const double cx = std::floor(pos.x / size) * size + size / 2.0;
  const double cy = std::floor(pos.y / size) * size + size / 2.0;
  return {cx, cy};
}

bool GridGatewayProtocol::road_mode() const {
  return geometry_ == GeometryMode::kRoute && has_map() && !road_map().is_grid();
}

const map::SegmentCells& GridGatewayProtocol::road_cells() const {
  if (!road_cells_) {
    road_cells_ = std::make_unique<map::SegmentCells>(road_map(), cell());
  }
  return *road_cells_;
}

bool GridGatewayProtocol::is_gateway() const {
  const core::Vec2 here = network().position(self());
  if (road_mode()) {
    // Road cell: membership follows the nearest street, the election
    // reference point is the cell's road anchor. Own position is
    // tick-aligned, so the snapshot serves it; neighbor positions are
    // extrapolated (predicted_pos) and must stay exact index queries.
    const map::SegmentCells& cells = road_cells();
    const int my_cell = cells.cell_of_segment(snapped_segment(self(), here));
    const core::Vec2 anchor = cells.anchor(my_cell);
    const double my_dist = (here - anchor).norm();
    for (const auto& nbr : neighbors().snapshot()) {
      const core::Vec2 pos = nbr.predicted_pos(now());
      if (cells.cell_at(pos, segment_index()) != my_cell) continue;
      const double d = (pos - anchor).norm();
      if (d < my_dist || (d == my_dist && nbr.id < self())) return false;
    }
    return true;
  }
  const core::Vec2 center = cell_center(here);
  const double my_dist = (here - center).norm();
  for (const auto& nbr : neighbors().snapshot()) {
    const core::Vec2 pos = nbr.predicted_pos(now());
    if (cell_center(pos) != center) continue;  // different cell
    const double d = (pos - center).norm();
    if (d < my_dist || (d == my_dist && nbr.id < self())) return false;
  }
  return true;
}

bool GridGatewayProtocol::inside_corridor(const net::Packet& p,
                                          const GridHeader& h) const {
  if (road_mode()) {
    const map::RouteCorridor& corridor = corridors_.between(
        road_map(), segment_index(),
        CorridorCache::pair_key(p.origin, p.destination), h.src_pos, h.dst_pos,
        h.src_seg, h.dst_seg);
    if (corridor.route_found()) {
      const map::SegmentCells& cells = road_cells();
      const core::Vec2 here = network().position(self());
      const core::Vec2 anchor =
          cells.anchor(cells.cell_of_segment(snapped_segment(self(), here)));
      return corridor.contains(anchor, corridor_half_width_);
    }
    // No road route between the endpoints: straight-line confinement below.
  }
  const core::Vec2 center = cell_center(network().position(self()));
  return core::distance_to_segment(center, h.src_pos, h.dst_pos) <=
         corridor_half_width_;
}

bool GridGatewayProtocol::originate(net::NodeId dst, std::uint32_t flow,
                                    std::uint32_t seq, std::size_t bytes) {
  auto h = std::make_shared<GridHeader>();
  h->src_pos = network().position(self());
  h->dst_pos = network().position(dst);  // location service
  if (road_mode()) {
    h->src_seg = snapped_segment(self(), h->src_pos);
    h->dst_seg = snapped_segment(dst, h->dst_pos);
  }

  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kGridTtl;
  p.header = std::move(h);
  seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq));
  broadcast(std::move(p));
  return true;
}

void GridGatewayProtocol::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  const auto* h = p.header_as<GridHeader>();
  if (h == nullptr) return;
  if (seen_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq))) return;
  if (p.destination == self()) {
    deliver(p);
    return;
  }
  // Members read and process but do not retransmit; only gateways relay,
  // and only inside the corridor toward the destination.
  if (!is_gateway() || !inside_corridor(p, *h)) return;
  if (p.ttl <= 1) {
    ++events().data_dropped_ttl;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  fwd.hops += 1;
  ++events().data_forwarded;
  schedule(jitter(kJitterMs), [this, fwd]() mutable { broadcast(std::move(fwd)); });
}

}  // namespace vanet::routing
