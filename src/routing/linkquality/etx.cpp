#include "routing/linkquality/etx.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::routing {

void EtxProtocol::start() {
  VANET_ASSERT_MSG(ctx_.hello != nullptr, "etx requires the hello service");
  agent_ = std::make_unique<EtxAgent>(self(), cfg_);
  // The agent's hooks, with the estimator-error sample wrapped around the
  // beacon fill: once per beacon, per live link, compare the estimated link
  // ETX against the analytic value at the true current distance.
  ctx_.hello->set_beacon_extension(self(), [this](net::HelloHeader& h) {
    sample_estimator_error();
    return agent_->fill_beacon(h);
  });
  ctx_.hello->set_frame_observer(
      self(), [this](const net::Packet& p, const net::HelloHeader& h) {
        agent_->on_hello(p, h);
      });
  ctx_.hello->set_loss_callback(
      self(), [this](net::NodeId lost) { agent_->on_neighbor_lost(lost); });
}

void EtxProtocol::sample_estimator_error() {
  const net::Network& net = network();
  const core::Vec2 own_pos = net.position(self());
  for (const net::NodeId n : agent_->table().neighbors()) {
    const double est = agent_->table().etx(n);
    if (est >= LinkQualityTable::kMaxEtx) continue;
    const double d = (net.position(n) - own_pos).norm();
    const double p = net.propagation().receipt_probability(d);
    const double analytic =
        p * p > 1.0 / LinkQualityTable::kMaxEtx ? 1.0 / (p * p)
                                                : LinkQualityTable::kMaxEtx;
    events().etx_link_abs_error.add(std::fabs(est - analytic));
  }
}

bool EtxProtocol::originate(net::NodeId dst, std::uint32_t flow,
                            std::uint32_t seq, std::size_t bytes) {
  const auto hop = agent_->next_hop(dst);
  if (!hop) {
    ++events().data_dropped_no_route;
    return false;
  }
  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = 32;
  p.hops += 1;
  ++events().data_forwarded;
  unicast(*hop, std::move(p));
  return true;
}

void EtxProtocol::handle_frame(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData) return;
  if (p.destination == self()) {
    if (delivered_.seen_or_insert(DupCache::key(p.origin, p.flow, p.seq)))
      return;
    deliver(p);
    return;
  }
  const auto hop = agent_->next_hop(p.destination);
  if (!hop || *hop == p.tx) {
    // No route — or the best route points straight back at the node that
    // just handed us the packet, i.e. our view and its view disagree while
    // adverts converge. Returning it would ping-pong until the TTL dies;
    // drop it here and let the next advert exchange settle the route.
    ++events().data_dropped_no_route;
    return;
  }
  net::Packet fwd = p;
  fwd.ttl -= 1;
  if (fwd.ttl <= 0) {
    ++events().data_dropped_ttl;
    return;
  }
  fwd.hops += 1;
  ++events().data_forwarded;
  unicast(*hop, std::move(fwd));
}

void EtxProtocol::handle_unicast_failure(const net::Packet& p) {
  // Retries exhausted toward p.rx: treat the link as dead now rather than
  // waiting out the hello expiry — drop the link and the neighbor's adverts
  // so the next Dijkstra routes around it. Soft state re-admits the neighbor
  // on its next decoded beacon (at a fresh ratio baseline, so a lossy but
  // live link recovers instead of black-holing for the expiry window).
  agent_->on_neighbor_lost(p.rx);
  if (p.kind == net::PacketKind::kData) {
    ++events().route_breaks;
    ++events().data_dropped_no_route;
  }
}

}  // namespace vanet::routing
