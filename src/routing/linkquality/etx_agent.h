// The per-node ETX machinery shared by the `etx` protocol and the flooding
// suppression mode: a LinkQualityTable fed by sequence-numbered hellos, a
// destination-sequenced distance vector piggybacked on the same hellos
// (net::HelloRouteEntry — no extra control frames), and Dijkstra over the
// resulting ETX-weighted neighbor topology.
//
// The graph Dijkstra runs over has two layers: measured edges self -> n for
// every live link (cost: the table's ETX estimate), and advertised edges
// n -> dst for every entry of n's last distance vector (cost: n's multi-hop
// ETX distance). Advert state is stored per advertising neighbor and dies
// with it (hello expiry), so a crashed neighbor can never leave dangling
// ETX edges behind — the same soft-state discipline as the tables.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/hello.h"
#include "routing/linkquality/link_quality.h"

namespace vanet::routing {

class EtxAgent {
 public:
  EtxAgent(net::NodeId self, EtxConfig cfg);

  /// Convenience wiring: registers the beacon extension, frame observer and
  /// loss callback for `self` on the service. Protocols that need to wrap a
  /// hook (e.g. to sample metrics) register the callbacks themselves and
  /// forward to the fill_beacon / on_hello / on_neighbor_lost methods.
  void attach(net::HelloService& hello);

  /// Fill the piggyback fields of an outgoing beacon; returns the extra
  /// bytes they occupy on the air.
  std::size_t fill_beacon(net::HelloHeader& h);
  /// Process a received hello (estimator update + advert intake).
  void on_hello(const net::Packet& p, const net::HelloHeader& h);
  /// The hello layer expired `lost`: drop its link and its adverts.
  void on_neighbor_lost(net::NodeId lost);

  /// First hop of the cheapest ETX path to `dst`; nullopt when unreachable.
  std::optional<net::NodeId> next_hop(net::NodeId dst) const;
  /// Multi-hop ETX distance to `dst`; LinkQualityTable::kMaxEtx when
  /// unknown or unreachable (0 for self).
  double distance_to(net::NodeId dst) const;

  const LinkQualityTable& table() const { return table_; }
  /// True when any distance-vector advert from `from` is still held.
  bool has_adverts_from(net::NodeId from) const {
    return adverts_.contains(from);
  }
  /// True while a route invalidation for `dst` is active (see kills_).
  bool has_kill_for(net::NodeId dst) const { return kills_.contains(dst); }

 private:
  struct Route {
    double dist = LinkQualityTable::kMaxEtx;
    net::NodeId first_hop = 0;
    std::uint32_t seq = 0;  ///< destination sequence from the winning advert
  };

  void compute_routes() const;

  net::NodeId self_;
  LinkQualityTable table_;
  /// Last distance vector heard from each live neighbor, keyed by the
  /// advertising neighbor (ordered map: route computation iterates it).
  std::map<net::NodeId, std::vector<net::HelloRouteEntry>> adverts_;
  /// Freshest destination sequence seen per destination (from accepted
  /// adverts — every node stamps its own entry with its even own_seq_, so
  /// this is the destination's clock as it propagates outward).
  std::map<net::NodeId, std::uint32_t> dst_seqs_;
  /// Active route invalidations, DSDV-style: losing a neighbor originates a
  /// poisoned advert for it (dist = kMaxEtx) sequenced one past the
  /// destination's freshest known — odd, so only the destination itself can
  /// override it with a newer even beacon. Receivers adopt newer kills,
  /// drop the route and re-propagate; without this, two survivors'
  /// distance vectors would resurrect a dead destination's route off each
  /// other forever. Each kill rides `beacons_left` outgoing beacons (enough
  /// to disseminate) and then stays local as a filter, so beacons of nodes
  /// that outlive many neighbors don't grow without bound.
  struct Kill {
    std::uint32_t seq = 0;
    int beacons_left = 0;
  };
  std::map<net::NodeId, Kill> kills_;
  std::uint32_t own_seq_ = 0;
  mutable std::map<net::NodeId, Route> routes_;
  mutable bool routes_dirty_ = true;
};

}  // namespace vanet::routing
