#include "routing/linkquality/link_quality.h"

#include <algorithm>
#include <bit>

#include "core/assert.h"

namespace vanet::routing {

LinkQualityTable::LinkQualityTable(EtxConfig cfg) : cfg_{cfg} {
  VANET_ASSERT_MSG(cfg_.window >= 1 && cfg_.window <= 64,
                   "etx.window must be in [1, 64]");
  VANET_ASSERT_MSG(cfg_.hello_weight > 0.0 && cfg_.hello_weight <= 1.0,
                   "etx.hello_weight must be in (0, 1]");
}

void LinkQualityTable::on_hello(net::NodeId from, std::uint32_t seq) {
  Link& link = links_[from];
  if (link.heard == 0) {
    link.window_bits = 1;
    // First contact anchors the ratio baseline: beacons the neighbor sent
    // before we could possibly hear it (out of range, or this entry was
    // erased and re-admitted) are not held against the link.
    link.first_seq = seq;
    link.last_seq = seq;
  } else if (seq > link.last_seq) {
    const std::uint32_t gap = seq - link.last_seq;
    link.window_bits = gap >= 64 ? 0 : link.window_bits << gap;
    link.window_bits |= 1;
    link.last_seq = seq;
  } else {
    // Out-of-order or duplicate (possible after a sender restart): mark the
    // slot if it is still inside the window, never move the window back.
    const std::uint32_t age = link.last_seq - seq;
    if (age < 64) link.window_bits |= std::uint64_t{1} << age;
  }
  link.heard += 1;
  const double fresh = windowed_ratio(link);
  link.smoothed = link.heard == 1
                      ? fresh
                      : cfg_.hello_weight * fresh +
                            (1.0 - cfg_.hello_weight) * link.smoothed;
}

void LinkQualityTable::on_report(net::NodeId from, double ratio) {
  Link& link = links_[from];
  link.reported = std::clamp(ratio, 0.0, 1.0);
  link.has_report = true;
}

void LinkQualityTable::erase(net::NodeId neighbor) { links_.erase(neighbor); }

double LinkQualityTable::windowed_ratio(const Link& link) const {
  // The denominator ramps 1, 2, ... from first contact until the window
  // fills, so exactly k received of the last n=denominator beacons gives
  // k/n, exactly. (For a neighbor heard from its seq 0 this is the full
  // send count, since sender sequences start at 0.)
  const std::uint64_t denom = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cfg_.window),
      static_cast<std::uint64_t>(link.last_seq - link.first_seq) + 1);
  const std::uint64_t mask =
      cfg_.window >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << cfg_.window) - 1;
  const auto got = static_cast<std::uint64_t>(
      std::popcount(link.window_bits & mask));
  return static_cast<double>(std::min(got, denom)) /
         static_cast<double>(denom);
}

double LinkQualityTable::reverse_ratio(net::NodeId neighbor) const {
  const auto it = links_.find(neighbor);
  if (it == links_.end() || it->second.heard == 0) return 0.0;
  return cfg_.hello_weight >= 1.0 ? windowed_ratio(it->second)
                                  : it->second.smoothed;
}

double LinkQualityTable::forward_ratio(net::NodeId neighbor) const {
  const auto it = links_.find(neighbor);
  if (it == links_.end()) return 0.0;
  return it->second.has_report ? it->second.reported : 1.0;
}

double LinkQualityTable::etx(net::NodeId neighbor) const {
  const double df = forward_ratio(neighbor);
  const double dr = reverse_ratio(neighbor);
  const double product = df * dr;
  if (product <= 1.0 / kMaxEtx) return kMaxEtx;
  return 1.0 / product;
}

double LinkQualityTable::long_run_ratio(net::NodeId neighbor) const {
  const auto it = links_.find(neighbor);
  if (it == links_.end() || it->second.heard == 0) return 0.0;
  const auto sent =
      static_cast<double>(it->second.last_seq - it->second.first_seq) + 1.0;
  return std::min(1.0, static_cast<double>(it->second.heard) / sent);
}

std::vector<net::NodeId> LinkQualityTable::neighbors() const {
  std::vector<net::NodeId> out;
  out.reserve(links_.size());
  // NOLINT-vanet(unordered-iter): order cannot escape — sorted by id below
  for (const auto& [id, link] : links_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vanet::routing
