#include "routing/linkquality/etx_agent.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace vanet::routing {

namespace {

/// Wire-size accounting for the piggyback payload, mirroring the DSDV table
/// dump costing: id + quantized ratio per link entry, id + quantized
/// distance + sequence per route entry.
constexpr std::size_t kLinkEntryBytes = 6;
constexpr std::size_t kRouteEntryBytes = 10;

/// Outgoing beacons that carry a fresh route invalidation before it goes
/// quiet (it keeps filtering locally): enough repetitions to survive a lossy
/// channel, without letting long-lived nodes accrete unbounded kill payload.
constexpr int kKillBeacons = 3;

}  // namespace

EtxAgent::EtxAgent(net::NodeId self, EtxConfig cfg)
    : self_{self}, table_{cfg} {}

void EtxAgent::attach(net::HelloService& hello) {
  hello.set_beacon_extension(
      self_, [this](net::HelloHeader& h) { return fill_beacon(h); });
  hello.set_frame_observer(
      self_, [this](const net::Packet& p, const net::HelloHeader& h) {
        on_hello(p, h);
      });
  hello.set_loss_callback(self_,
                          [this](net::NodeId lost) { on_neighbor_lost(lost); });
}

std::size_t EtxAgent::fill_beacon(net::HelloHeader& h) {
  // Link reports: "I receive you with ratio r" for every live link, sorted
  // by id — each named neighbor reads its own entry back as its df.
  const std::vector<net::NodeId> nbrs = table_.neighbors();
  h.links.reserve(nbrs.size());
  for (const net::NodeId n : nbrs) {
    h.links.push_back({n, table_.reverse_ratio(n)});
  }
  // Distance vector: self at distance 0 (destination-sequenced, even like
  // DSDV's valid routes), then the current Dijkstra distances. Entries are
  // naturally sorted: routes_ is an ordered map.
  own_seq_ += 2;
  compute_routes();
  h.routes.reserve(routes_.size() + kills_.size() + 1);
  h.routes.push_back({self_, 0.0, own_seq_});
  for (const auto& [dst, route] : routes_) {
    if (route.dist >= LinkQualityTable::kMaxEtx) continue;
    // Re-advertise each destination with the freshest sequence seen for it,
    // so the destination's clock propagates monotonically hop by hop.
    const auto seq = dst_seqs_.find(dst);
    h.routes.push_back(
        {dst, route.dist, seq != dst_seqs_.end() ? seq->second : route.seq});
  }
  // Fresh invalidations ride along until their dissemination budget is
  // spent; the entries stay behind as local filters either way.
  for (auto& [dst, kill] : kills_) {
    if (kill.beacons_left <= 0) continue;
    --kill.beacons_left;
    h.routes.push_back({dst, LinkQualityTable::kMaxEtx, kill.seq});
  }
  return kLinkEntryBytes * h.links.size() + kRouteEntryBytes * h.routes.size();
}

void EtxAgent::on_hello(const net::Packet& p, const net::HelloHeader& h) {
  table_.on_hello(p.origin, h.seq);
  for (const auto& link : h.links) {
    if (link.neighbor == self_) {
      table_.on_report(p.origin, link.ratio);
      break;
    }
  }
  // Advert intake: the sender's latest distance vector replaces the previous
  // one wholesale (it IS the sender's current view; merging would resurrect
  // entries the sender dropped). Entries routing back through us are kept —
  // Dijkstra's measured self->n edges dominate any n->self->... echo.
  auto& slot = adverts_[p.origin];
  slot.clear();
  slot.reserve(h.routes.size());
  for (const auto& advert : h.routes) {
    if (advert.dst == self_) continue;
    if (advert.dist >= LinkQualityTable::kMaxEtx) {
      // Poisoned advert (route invalidation): adopt it when it outruns both
      // our freshest sequence for the destination and any kill we hold.
      const auto seq = dst_seqs_.find(advert.dst);
      const std::uint32_t known = seq != dst_seqs_.end() ? seq->second : 0;
      auto [kill, fresh] =
          kills_.try_emplace(advert.dst, Kill{advert.seq, kKillBeacons});
      if (!fresh && advert.seq > kill->second.seq) {
        kill->second = Kill{advert.seq, kKillBeacons};
      }
      if (kill->second.seq <= known) kills_.erase(kill);
      continue;
    }
    const auto kill = kills_.find(advert.dst);
    if (kill != kills_.end()) {
      if (advert.seq <= kill->second.seq) continue;  // stale vs invalidation
      kills_.erase(kill);  // the destination moved past the kill: it lives
    }
    auto [seq, fresh] = dst_seqs_.try_emplace(advert.dst, advert.seq);
    if (!fresh && advert.seq > seq->second) seq->second = advert.seq;
    slot.push_back(advert);
  }
  routes_dirty_ = true;
}

void EtxAgent::on_neighbor_lost(net::NodeId lost) {
  table_.erase(lost);
  adverts_.erase(lost);
  // Originate a route invalidation one past the destination's freshest known
  // sequence: odd, so every stale advert for `lost` loses to it everywhere,
  // and only `lost` itself (whose own sequence is even and still advancing)
  // can override it by beaconing again.
  const auto seq = dst_seqs_.find(lost);
  const std::uint32_t poison =
      (seq != dst_seqs_.end() ? seq->second : 0) + 1;
  auto [kill, fresh] = kills_.try_emplace(lost, Kill{poison, kKillBeacons});
  if (!fresh && poison > kill->second.seq) {
    kill->second = Kill{poison, kKillBeacons};
  }
  routes_dirty_ = true;
}

void EtxAgent::compute_routes() const {
  if (!routes_dirty_) return;
  routes_dirty_ = false;
  routes_.clear();

  // Dijkstra over the two-layer topology. Ties broken by node id so the
  // settle order — and hence every first_hop choice — is deterministic.
  using QueueEntry = std::pair<double, net::NodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  for (const net::NodeId n : table_.neighbors()) {
    const double cost = table_.etx(n);
    if (cost >= LinkQualityTable::kMaxEtx) continue;
    auto [it, fresh] = routes_.try_emplace(n);
    if (fresh || cost < it->second.dist) {
      it->second = Route{cost, n, 0};
      frontier.push({cost, n});
    }
  }
  while (!frontier.empty()) {
    const auto [cost, node] = frontier.top();
    frontier.pop();
    const auto settled = routes_.find(node);
    if (settled == routes_.end() || cost > settled->second.dist) continue;
    const auto adverts = adverts_.find(node);
    if (adverts == adverts_.end()) continue;
    const net::NodeId first_hop = settled->second.first_hop;
    for (const auto& advert : adverts->second) {
      // A kill learned after this slot was stored still applies: stale
      // entries for an invalidated destination must not open routes.
      const auto kill = kills_.find(advert.dst);
      if (kill != kills_.end() && advert.seq <= kill->second.seq) continue;
      const double total = cost + advert.dist;
      if (total >= LinkQualityTable::kMaxEtx) continue;
      auto [it, fresh] = routes_.try_emplace(advert.dst);
      if (fresh || total < it->second.dist) {
        it->second = Route{total, first_hop, advert.seq};
        frontier.push({total, advert.dst});
      }
    }
  }
}

std::optional<net::NodeId> EtxAgent::next_hop(net::NodeId dst) const {
  compute_routes();
  const auto it = routes_.find(dst);
  if (it == routes_.end() || it->second.dist >= LinkQualityTable::kMaxEtx) {
    return std::nullopt;
  }
  return it->second.first_hop;
}

double EtxAgent::distance_to(net::NodeId dst) const {
  if (dst == self_) return 0.0;
  compute_routes();
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return LinkQualityTable::kMaxEtx;
  return std::min(it->second.dist, LinkQualityTable::kMaxEtx);
}

}  // namespace vanet::routing
