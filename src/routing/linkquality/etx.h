// Link-quality-aware unicast routing on the ETX metric (De Couto et al.).
//
// Proactive, hello-driven: the EtxAgent measures per-link delivery ratios
// from the sequence-numbered beacons, piggybacks its distance vector on the
// same beacons, and runs Dijkstra over the ETX-weighted neighbor topology.
// Data packets follow the cheapest expected-transmission-count path instead
// of the fewest hops — under a lossy channel (phy.model=shadowing|nakagami)
// that trades long marginal links for short reliable ones, which is the
// whole point: hop count picks links that exist but barely deliver.
#pragma once

#include <memory>

#include "routing/dup_cache.h"
#include "routing/linkquality/etx_agent.h"
#include "routing/protocol.h"

namespace vanet::routing {

class EtxProtocol final : public RoutingProtocol {
 public:
  explicit EtxProtocol(EtxConfig cfg) : cfg_{cfg} {}

  void start() override;
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;
  void handle_frame(const net::Packet& p) override;
  void handle_unicast_failure(const net::Packet& p) override;

  std::string_view name() const override { return "etx"; }
  Category category() const override { return Category::kConnectivity; }
  bool wants_hello() const override { return true; }

  /// Estimator introspection for tests (churn / dangling-edge assertions).
  const EtxAgent& agent() const { return *agent_; }

 private:
  void sample_estimator_error();

  EtxConfig cfg_;
  std::unique_ptr<EtxAgent> agent_;
  DupCache delivered_;
};

}  // namespace vanet::routing
