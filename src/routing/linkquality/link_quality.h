// Per-link delivery-ratio estimation from sequence-numbered hellos (ETX).
//
// De Couto's expected transmission count: a link's cost is ETX = 1/(df*dr),
// where dr is the fraction of the neighbor's beacons this node received over
// a sliding window (directly observable from the beacon sequence numbers)
// and df is the fraction of this node's beacons the neighbor received —
// unobservable locally, so neighbors piggyback their measured ratios on
// their own beacons (net::HelloLinkEntry) and each node reads its entry
// back. Entries age out with the hello neighbor state: the estimator is
// soft state, fed and pruned by the same beacons that feed the tables.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.h"

namespace vanet::routing {

/// `etx.*` config keys.
struct EtxConfig {
  /// Delivery-ratio window, in beacon sequence numbers (1..64: the window
  /// is a 64-bit receipt mask).
  int window = 16;
  /// EWMA weight applied to each fresh windowed ratio sample: 1.0 (default)
  /// keeps the pure windowed estimate (so exactly k of the last n beacons
  /// received means ratio k/n, exactly); smaller values smooth across
  /// windows at the cost of slower reaction to link changes.
  double hello_weight = 1.0;
};

/// Rebroadcast-coordination mode of the flooding protocols
/// (`flood.suppression`): kEtx defers each re-flood proportionally to the
/// node's ETX distance to the packet's origin and cancels it when a copy is
/// overheard first (a node that fired earlier was better placed, by the
/// same delay rule).
enum class FloodSuppression { kNone, kEtx };

/// The per-node estimator: one entry per live neighbor link.
class LinkQualityTable {
 public:
  explicit LinkQualityTable(EtxConfig cfg = {});

  /// A beacon from `from` carrying sequence number `seq` was received.
  void on_hello(net::NodeId from, std::uint32_t seq);
  /// `from` piggybacked the ratio at which it receives this node's beacons.
  void on_report(net::NodeId from, double ratio);
  /// The hello layer expired `neighbor`; drop the link with it.
  void erase(net::NodeId neighbor);

  /// Windowed reverse delivery ratio dr: received beacons among the last
  /// min(window, seq+1) the neighbor sent (sender sequences start at 0, so
  /// the denominator ramps with the true send count until the window
  /// fills). 0 for unknown neighbors.
  double reverse_ratio(net::NodeId neighbor) const;
  /// Forward delivery ratio df from the neighbor's last report; 1.0 until
  /// the first report arrives (optimistic bootstrap — a fresh link has at
  /// most one beacon of history in either direction).
  double forward_ratio(net::NodeId neighbor) const;
  /// ETX = 1/(df*dr), clamped to kMaxEtx; kMaxEtx for unknown neighbors.
  double etx(net::NodeId neighbor) const;

  /// Long-run ratio: every beacon received over every beacon the neighbor
  /// sent since first contact (last_seq - first_seq + 1). The unwindowed
  /// estimate the convergence property test checks against the analytic
  /// receipt probability.
  double long_run_ratio(net::NodeId neighbor) const;

  bool contains(net::NodeId neighbor) const { return links_.contains(neighbor); }
  std::size_t size() const { return links_.size(); }
  /// Live link neighbors, sorted by id (deterministic iteration).
  std::vector<net::NodeId> neighbors() const;

  const EtxConfig& config() const { return cfg_; }

  /// Cost ceiling: links (and routes) at or beyond this are unusable.
  static constexpr double kMaxEtx = 128.0;

 private:
  struct Link {
    std::uint64_t window_bits = 0;  ///< bit i: beacon (last_seq - i) received
    std::uint32_t first_seq = 0;    ///< first beacon heard (ratio baseline)
    std::uint32_t last_seq = 0;
    std::uint64_t heard = 0;        ///< received count since first contact
    double smoothed = 1.0;          ///< EWMA of the windowed ratio
    double reported = 1.0;          ///< neighbor's last forward-ratio report
    bool has_report = false;
  };

  double windowed_ratio(const Link& link) const;

  std::unordered_map<net::NodeId, Link> links_;
  EtxConfig cfg_;
};

}  // namespace vanet::routing
