#include "routing/protocol.h"

#include "core/assert.h"
#include "map/road_graph.h"
#include "map/segment_index.h"
#include "map/segment_snapshot.h"

namespace vanet::routing {

std::string_view to_string(Category c) {
  switch (c) {
    case Category::kConnectivity: return "connectivity";
    case Category::kMobility: return "mobility";
    case Category::kInfrastructure: return "infrastructure";
    case Category::kGeographic: return "geographic";
    case Category::kProbability: return "probability";
  }
  return "?";
}

void RoutingProtocol::bind(const ProtocolContext& ctx) {
  VANET_ASSERT(ctx.sim && ctx.net && ctx.rng && ctx.events);
  VANET_ASSERT_MSG(ctx_.sim == nullptr, "bind called twice");
  VANET_ASSERT_MSG(!wants_hello() || ctx.hello != nullptr,
                   "protocol requires a HelloService");
  VANET_ASSERT_MSG((ctx.map == nullptr) == (ctx.segments == nullptr),
                   "road graph and segment index must be bound together");
  VANET_ASSERT_MSG(ctx.segments == nullptr || &ctx.segments->graph() == ctx.map,
                   "segment index built over a different graph");
  ctx_ = ctx;
}

const net::NeighborTable& RoutingProtocol::neighbors() const {
  VANET_ASSERT_MSG(ctx_.hello != nullptr, "no hello service bound");
  return ctx_.hello->table(ctx_.self);
}

const map::RoadGraph& RoutingProtocol::road_map() const {
  VANET_ASSERT_MSG(ctx_.map != nullptr, "no road map bound");
  return *ctx_.map;
}

const map::SegmentIndex& RoutingProtocol::segment_index() const {
  VANET_ASSERT_MSG(ctx_.segments != nullptr, "no segment index bound");
  return *ctx_.segments;
}

int RoutingProtocol::snapped_segment(net::NodeId id, core::Vec2 pos) const {
  if (ctx_.seg_snapshot != nullptr) {
    return ctx_.seg_snapshot->segment_of(id, pos);
  }
  return segment_index().nearest_segment(pos);
}

net::Packet RoutingProtocol::make_data(net::NodeId dst, std::uint32_t flow,
                                       std::uint32_t seq,
                                       std::size_t bytes) const {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  p.origin = ctx_.self;
  p.destination = dst;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  p.created_at = now();
  return p;
}

void RoutingProtocol::broadcast(net::Packet p) const {
  p.rx = net::kBroadcastId;
  ctx_.net->send(ctx_.self, std::move(p));
}

void RoutingProtocol::unicast(net::NodeId next_hop, net::Packet p) const {
  p.rx = next_hop;
  ctx_.net->send(ctx_.self, std::move(p));
}

void RoutingProtocol::deliver(const net::Packet& p) const {
  if (deliver_cb_) deliver_cb_(p);
}

core::SimTime RoutingProtocol::jitter(double max_ms) const {
  return core::SimTime::seconds(ctx_.rng->uniform(0.0, max_ms * 1e-3));
}

}  // namespace vanet::routing
