// Shared engine for on-demand (AODV-family) routing protocols.
//
// The engine implements the RREQ / RREP / RERR machinery of Sec. III-B —
// route discovery, reverse/forward route installation, data buffering during
// discovery, retries, expiry and break handling — while subclasses supply the
// *routing metric* policy, which is exactly where the paper's five categories
// differ:
//   - link admission / cost        (Abedi's direction filter, Taleb's groups)
//   - per-link lifetime prediction (PBR, Eqns. 1-4)
//   - per-link reliability         (GVGrid's probability model)
//   - RREQ fan-out                 (Yan's ticket-based probing)
//   - destination reply policy     (first-wins AODV vs. best-in-window)
// Subclasses override the protected hooks; the defaults reproduce plain AODV.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "core/vec2.h"
#include "routing/dup_cache.h"
#include "routing/protocol.h"

namespace vanet::routing {

struct RreqHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kRreq;
  RreqHeader() : net::Header{kTag} {}
  std::uint32_t rreq_id = 0;
  net::NodeId rreq_origin = 0;
  net::NodeId target = 0;
  int hops = 0;                ///< hops travelled so far
  double cost = 0.0;           ///< additive path cost (subclass semantics)
  double min_lifetime = std::numeric_limits<double>::infinity();
  double reliability = 1.0;    ///< multiplicative path reliability
  int tickets = 0;             ///< remaining probe tickets (Yan)
  // Kinematics of the previous hop at forwarding time (for link evaluation).
  core::Vec2 prev_pos;
  core::Vec2 prev_vel;
  core::Vec2 prev_acc;
  int prev_group = 0;          ///< Taleb velocity group of previous hop
  core::Vec2 origin_pos;
  core::Vec2 origin_vel;
  /// Road segment nearest origin_pos, stamped at origination by protocols
  /// whose corridor admission needs it (uses_road_corridor()); -1 otherwise.
  /// nearest_segment is a pure function of origin_pos, so receivers reusing
  /// the stamp get bit-identically what re-querying the index would return.
  int origin_seg = -1;
};

struct RrepHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kRrep;
  RrepHeader() : net::Header{kTag} {}
  std::uint32_t rreq_id = 0;
  net::NodeId rreq_origin = 0;
  net::NodeId target = 0;
  int hops = 0;                ///< hops from the destination so far
  int path_hops = 0;           ///< total hops of the selected path
  double cost = 0.0;
  double min_lifetime = std::numeric_limits<double>::infinity();
  double reliability = 1.0;
};

struct RerrHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kRerr;
  RerrHeader() : net::Header{kTag} {}
  net::NodeId broken_destination = 0;
};

/// Verdict of a subclass on one candidate link (prev hop -> this node).
struct LinkEval {
  bool usable = true;
  double cost = 1.0;        ///< added to path cost
  double lifetime = std::numeric_limits<double>::infinity();
  double reliability = 1.0;
};

/// Summary of one candidate path as seen in an RREQ at the destination (or a
/// forwarding decision point).
struct PathMetric {
  int hops = 0;
  double cost = 0.0;
  double min_lifetime = std::numeric_limits<double>::infinity();
  double reliability = 1.0;
};

class OnDemandBase : public RoutingProtocol {
 public:
  void handle_frame(const net::Packet& p) override;
  void handle_unicast_failure(const net::Packet& p) override;
  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;

 protected:
  struct RouteEntry {
    net::NodeId next_hop = 0;
    int hops = 0;
    double cost = 0.0;
    double predicted_lifetime = std::numeric_limits<double>::infinity();
    std::uint32_t epoch = 0;  ///< rreq id of the discovery that created it
    core::SimTime established{};
    core::SimTime expires{};
  };

  // ---- policy hooks -------------------------------------------------------
  /// Evaluate the link from the RREQ's previous hop to this node.
  virtual LinkEval evaluate_link(const RreqHeader& h) const;
  /// True when path `a` is preferable to `b` (destination selection).
  virtual bool path_better(const PathMetric& a, const PathMetric& b) const;
  /// Destination replies to the first RREQ instead of collecting a window.
  virtual bool reply_immediately() const { return true; }
  /// Window length when collecting candidate paths at the destination.
  virtual core::SimTime reply_window() const { return core::SimTime::millis(150); }
  /// Forward a (already updated) RREQ onward. Default: broadcast with jitter.
  virtual void forward_rreq(const net::Packet& p, const RreqHeader& h);
  /// Initial ticket count for fresh RREQs (0 = unlimited flooding).
  virtual int initial_tickets() const { return 0; }
  /// True when this protocol admits RREQs against a road-route corridor, so
  /// issue_rreq should resolve and stamp origin_seg. Default off: protocols
  /// that never read the stamp skip the segment query entirely.
  virtual bool uses_road_corridor() const { return false; }
  /// Fraction of the predicted route lifetime after which the source
  /// proactively re-discovers (0 disables; PBR/Taleb/Yan use ~0.7-0.8).
  virtual double preemptive_rebuild_fraction() const { return 0.0; }
  /// Upper bound on route age regardless of prediction.
  virtual core::SimTime route_lifetime_cap() const {
    return core::SimTime::seconds(10.0);
  }

  // ---- shared machinery (available to subclasses) -------------------------
  const RouteEntry* route_to(net::NodeId dst) const;
  void start_discovery(net::NodeId dst);
  PathMetric metric_of(const RreqHeader& h) const;
  /// Current kinematics of this node (position/velocity/acceleration).
  void stamp_self_kinematics(RreqHeader& h) const;

  static constexpr int kMaxDiscoveryRetries = 2;
  static constexpr double kDataPacketTtl = 32;

 private:
  struct PendingDiscovery {
    int attempts = 0;
    core::SimTime started{};
    core::EventHandle timeout;
  };
  struct ReplyCollector {
    core::SimTime first_seen{};
    RreqHeader best;
    net::NodeId best_prev = 0;
    bool scheduled = false;
  };

  void issue_rreq(net::NodeId dst);
  void handle_rreq(const net::Packet& p);
  void handle_rrep(const net::Packet& p);
  void handle_rerr(const net::Packet& p);
  void handle_data(const net::Packet& p);
  void send_rrep(std::uint32_t rreq_id, net::NodeId origin, const PathMetric& m);
  /// Install/refresh a route. Loop safety: within one discovery epoch only
  /// the first-arrival copy may create the entry (the flood's spanning tree
  /// is acyclic); a newer epoch or `force` (RREP path installs) overwrites.
  void install_route(net::NodeId dst, net::NodeId next_hop, int hops, double cost,
                     double predicted_lifetime, std::uint32_t epoch, bool force);
  void discovery_timeout(net::NodeId dst);
  void flush_buffer(net::NodeId dst);
  void drop_buffer(net::NodeId dst);
  void forward_data(net::Packet p, const RouteEntry& route);
  void route_broken(net::NodeId dst, const net::Packet* failed_packet);
  void schedule_preemptive_rebuild(net::NodeId dst, double predicted_lifetime);

  std::map<net::NodeId, RouteEntry> routes_;
  std::map<net::NodeId, PendingDiscovery> pending_;
  std::map<net::NodeId, std::vector<net::Packet>> buffer_;
  std::map<std::uint64_t, ReplyCollector> collectors_;  ///< keyed (origin,rreq)
  DupCache rreq_seen_;
  DupCache data_seen_;
  std::uint32_t next_rreq_id_ = 1;

  static constexpr std::size_t kBufferCap = 32;
  static constexpr std::size_t kRreqBytes = 48;
  static constexpr std::size_t kRrepBytes = 44;
  static constexpr std::size_t kRerrBytes = 24;
};

}  // namespace vanet::routing
