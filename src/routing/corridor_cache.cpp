#include "routing/corridor_cache.h"

namespace vanet::routing {

const map::RouteCorridor& CorridorCache::between(const map::RoadGraph& graph,
                                                 const map::SegmentIndex& index,
                                                 std::uint64_t key,
                                                 core::Vec2 src,
                                                 core::Vec2 dst) {
  const int ss = index.nearest_segment(src);
  const int ds = index.nearest_segment(dst);
  const int se = map::RouteCorridor::entry_intersection(graph, ss, src);
  const int de = map::RouteCorridor::entry_intersection(graph, ds, dst);
  Entry& e = entries_[key];
  if (e.src_segment != ss || e.dst_segment != ds || e.src_entry != se ||
      e.dst_entry != de) {
    e.corridor = map::RouteCorridor::between(graph, index, src, dst);
    e.src_segment = ss;
    e.dst_segment = ds;
    e.src_entry = se;
    e.dst_entry = de;
  }
  return e.corridor;
}

}  // namespace vanet::routing
