#include "routing/corridor_cache.h"

namespace vanet::routing {

const map::RouteCorridor& CorridorCache::between(const map::RoadGraph& graph,
                                                 const map::SegmentIndex& index,
                                                 std::uint64_t key,
                                                 core::Vec2 src,
                                                 core::Vec2 dst) {
  return between(graph, index, key, src, dst, -1, -1);
}

const map::RouteCorridor& CorridorCache::between(const map::RoadGraph& graph,
                                                 const map::SegmentIndex& index,
                                                 std::uint64_t key,
                                                 core::Vec2 src,
                                                 core::Vec2 dst, int src_seg,
                                                 int dst_seg) {
  Entry& e = entries_[key];
  const int ss = src_seg >= 0 ? src_seg : index.nearest_segment(src);
  const int ds = dst_seg >= 0 ? dst_seg : index.nearest_segment(dst);
  // entry_intersection is a pure function of (graph, segment, position); the
  // entry invariantly maps (src_segment, src_pos) -> src_entry on exit, so a
  // repeat query with the same bits (an RREQ origin is fixed for the whole
  // flood; a target moves once per tick) reuses the stored answer.
  const int se = (ss == e.src_segment && src == e.src_pos)
                     ? e.src_entry
                     : map::RouteCorridor::entry_intersection(graph, ss, src);
  const int de = (ds == e.dst_segment && dst == e.dst_pos)
                     ? e.dst_entry
                     : map::RouteCorridor::entry_intersection(graph, ds, dst);
  if (e.src_segment != ss || e.dst_segment != ds || e.src_entry != se ||
      e.dst_entry != de) {
    e.corridor = map::RouteCorridor::between(graph, index, src, dst, ss, ds);
    e.src_segment = ss;
    e.dst_segment = ds;
    e.src_entry = se;
    e.dst_entry = de;
  }
  e.src_pos = src;
  e.dst_pos = dst;
  return e.corridor;
}

}  // namespace vanet::routing
