// Bounded duplicate-suppression cache (FIFO eviction).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace vanet::routing {

class DupCache {
 public:
  explicit DupCache(std::size_t capacity = 4096) : capacity_{capacity} {}

  /// Returns true when `key` was already present; inserts it otherwise.
  bool seen_or_insert(std::uint64_t key) {
    if (set_.contains(key)) return true;
    // One-shot bucket reservation for caches that prove hot: size passes
    // capacity_/8 exactly once on the way up (FIFO eviction only kicks in at
    // capacity_), so hot caches rehash once instead of doubling repeatedly,
    // and cold caches never pay the full-capacity bucket allocation.
    if (set_.size() == capacity_ / 8) set_.reserve(capacity_);
    set_.insert(key);
    order_.push_back(key);
    if (order_.size() > capacity_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
    return false;
  }

  bool contains(std::uint64_t key) const { return set_.contains(key); }
  std::size_t size() const { return set_.size(); }

  /// Mix three 32-bit identifiers into one cache key.
  static std::uint64_t key(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    return mix(mix(mix(a) ^ b) ^ c);
  }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> set_;
  std::deque<std::uint64_t> order_;
};

}  // namespace vanet::routing
