#include "routing/registry.h"

#include <stdexcept>
#include <string>

#include "routing/connectivity/aodv.h"
#include "routing/connectivity/biswas.h"
#include "routing/connectivity/dsdv.h"
#include "routing/connectivity/dsr.h"
#include "routing/connectivity/flooding.h"
#include "routing/geographic/greedy.h"
#include "routing/geographic/grid_gateway.h"
#include "routing/geographic/rover.h"
#include "routing/geographic/zone.h"
#include "routing/infrastructure/drr.h"
#include "routing/linkquality/etx.h"
#include "routing/mobility/abedi.h"
#include "routing/mobility/pbr.h"
#include "routing/mobility/taleb.h"
#include "routing/mobility/wedde.h"
#include "routing/probability/car.h"
#include "routing/probability/gvgrid.h"
#include "routing/probability/niude.h"
#include "routing/probability/rear.h"
#include "routing/probability/yan.h"

namespace vanet::routing {

namespace {

std::shared_ptr<const FerrySet> ferries_or_empty(const ProtocolDeps& deps) {
  if (deps.ferries) return deps.ferries;
  static const auto kEmpty = std::make_shared<const FerrySet>();
  return kEmpty;
}

std::vector<ProtocolInfo> build_registry() {
  std::vector<ProtocolInfo> r;
  // --- connectivity-based (Sec. III) ---------------------------------------
  r.push_back({"flooding", Category::kConnectivity, "Sec. III-A",
               "none (blind rebroadcast)", "data only",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<FloodingProtocol>(d.flood_suppression,
                                                           d.etx);
               }});
  r.push_back({"biswas", Category::kConnectivity, "[9] Biswas",
               "implicit acknowledgement", "data + implicit ack",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<BiswasProtocol>(d.flood_suppression,
                                                         d.etx);
               }});
  r.push_back({"aodv", Category::kConnectivity, "[6] AODV",
               "hop count", "RREQ/RREP/RERR",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<AodvProtocol>();
               }});
  r.push_back({"dsr", Category::kConnectivity, "[7] DSR",
               "hop count (source routes)", "RREQ/RREP/RERR",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<DsrProtocol>();
               }});
  r.push_back({"dsdv", Category::kConnectivity, "[8] DSDV",
               "sequenced distance vector", "periodic table dumps",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<DsdvProtocol>();
               }});
  r.push_back({"etx", Category::kConnectivity, "[31] De Couto (ETX)",
               "expected transmission count (Dijkstra)", "hello piggyback",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<EtxProtocol>(d.etx);
               }});
  // --- mobility-based (Sec. IV) --------------------------------------------
  r.push_back({"pbr", Category::kMobility, "[13] PBR",
               "predicted link lifetime (Eqns. 1-4)", "RREQ/RREP/RERR + hello",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<PbrProtocol>();
               }});
  r.push_back({"taleb", Category::kMobility, "[14] Taleb",
               "velocity-vector groups", "RREQ/RREP/RERR + hello",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<TalebProtocol>();
               }});
  r.push_back({"abedi", Category::kMobility, "[11] Abedi",
               "direction first, then position", "RREQ/RREP/RERR + hello",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<AbediProtocol>();
               }});
  r.push_back({"wedde", Category::kMobility, "[15] Wedde",
               "road-condition rating threshold", "RREQ/RREP/RERR + hello",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<WeddeProtocol>();
               }});
  // --- infrastructure-based (Sec. V) ----------------------------------------
  r.push_back({"drr", Category::kInfrastructure, "[17] DRR",
               "greedy + RSU virtual equivalent node", "data + hello + backbone",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<DrrProtocol>();
               }});
  r.push_back({"bus", Category::kInfrastructure, "[19] Bus",
               "greedy + bus message ferries", "data + hello",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<BusProtocol>(ferries_or_empty(d));
               }});
  // --- geographic-location-based (Sec. VI) ----------------------------------
  r.push_back({"greedy", Category::kGeographic, "[23,24] Greedy",
               "geographic progress x link lifetime", "data + hello",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<GreedyProtocol>();
               }});
  r.push_back({"zone", Category::kGeographic, "[22] Zone",
               "corridor-restricted flooding", "data only",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<ZoneProtocol>(d.zone_geometry);
               }});
  r.push_back({"grid", Category::kGeographic, "[20] CarNet / [26] LORA-DCBF",
               "grid cells with gateway election", "data + hello",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<GridGatewayProtocol>(d.grid_geometry);
               }});
  r.push_back({"rover", Category::kGeographic, "[25] ROVER",
               "zone-confined AODV discovery", "RREQ/RREP/RERR (in-zone)",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<RoverProtocol>();
               }});
  // --- probability-model-based (Sec. VII) ------------------------------------
  r.push_back({"rear", Category::kProbability, "[30] REAR",
               "receipt probability (signal model)", "data + hello",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<RearProtocol>(d.signal);
               }});
  r.push_back({"gvgrid", Category::kProbability, "[28] GVGrid",
               "P(link survives horizon), normal speeds", "RREQ/RREP + hello",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<GvGridProtocol>(d.gvgrid_geometry);
               }});
  r.push_back({"niude", Category::kProbability, "[16] NiuDe (DeReQ)",
               "availability x density, delay bound", "RREQ/RREP + hello",
               [](const ProtocolDeps&) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<NiuDeProtocol>();
               }});
  r.push_back({"car", Category::kProbability, "[29] CAR",
               "segment connectivity probability", "data + hello + statistics",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 if (!d.road_graph || !d.density) {
                   throw std::invalid_argument(
                       "car protocol requires road_graph and density deps");
                 }
                 return std::make_unique<CarProtocol>(d.road_graph, d.density);
               }});
  r.push_back({"yan", Category::kProbability, "[27] Yan (TBP)",
               "expected link duration, ticket probing", "ticket probes + hello",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<YanProtocol>(d.yan_tickets);
               }});
  r.push_back({"yan-ss", Category::kProbability, "[27] Yan (TBP-SS)",
               "mean link duration with stability floor", "ticket probes + hello",
               [](const ProtocolDeps& d) -> std::unique_ptr<RoutingProtocol> {
                 return std::make_unique<YanStabilityProtocol>(d.yan_tickets);
               }});
  return r;
}

}  // namespace

const std::vector<ProtocolInfo>& ProtocolRegistry::all() {
  static const std::vector<ProtocolInfo> kRegistry = build_registry();
  return kRegistry;
}

const ProtocolInfo* ProtocolRegistry::find(std::string_view name) {
  for (const auto& info : all()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<RoutingProtocol> ProtocolRegistry::make(
    std::string_view name, const ProtocolDeps& deps) {
  const ProtocolInfo* info = find(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown protocol: " + std::string(name));
  }
  return info->make(deps);
}

std::vector<std::string_view> ProtocolRegistry::names() {
  std::vector<std::string_view> out;
  for (const auto& info : all()) out.push_back(info.name);
  return out;
}

}  // namespace vanet::routing
