// GVGrid (Sun et al. [28], Sec. VII-B).
//
// Assumes vehicle speeds are normally distributed and scores every link with
// the probability that it survives a reliability horizon delta:
// P(T > delta) from the stochastic lifetime model (LinkLifetimeDistribution).
// The route with the highest product of link reliabilities that also meets a
// hop (delay) bound is selected.
//
// GVGrid's defining trait in the source paper is that candidate routes follow
// the road grid between source and destination. GeometryMode::kRoute
// (`gvgrid.geometry=route`) restores that on imported maps: RREQ links are
// admitted only when the evaluating node lies within a corridor around the
// shortest road route from the request origin to the target
// (map::RouteCorridor), so discovery floods along streets that lead there
// instead of the whole connected component. On lattice maps — where the
// legacy unconfined flood already explores road-shaped paths — kRoute
// reduces to the kLine behavior, as does an unbound map or disconnected
// endpoints.
#pragma once

#include "analysis/lifetime_distribution.h"
#include "routing/corridor_cache.h"
#include "routing/on_demand.h"

namespace vanet::routing {

class GvGridProtocol final : public OnDemandBase {
 public:
  explicit GvGridProtocol(GeometryMode geometry = GeometryMode::kLine,
                          double reliability_horizon_s = 5.0,
                          double speed_sigma = 2.0, int max_hops = 12,
                          double corridor_half_width = 400.0)
      : horizon_{reliability_horizon_s},
        sigma_{speed_sigma},
        max_hops_{max_hops},
        geometry_{geometry},
        corridor_half_width_{corridor_half_width} {}

  std::string_view name() const override { return "gvgrid"; }
  Category category() const override { return Category::kProbability; }
  bool wants_hello() const override { return true; }

  GeometryMode geometry() const { return geometry_; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  bool reply_immediately() const override { return false; }
  bool uses_road_corridor() const override {
    return geometry_ == GeometryMode::kRoute && has_map() &&
           !road_map().is_grid();
  }

 private:
  /// kRoute: is this node inside the road corridor origin→target?
  bool inside_route_corridor(const RreqHeader& h) const;

  double horizon_;
  double sigma_;
  int max_hops_;
  GeometryMode geometry_;
  double corridor_half_width_;
  mutable CorridorCache corridors_;  ///< keyed by (rreq_origin, target)
};

}  // namespace vanet::routing
