// GVGrid (Sun et al. [28], Sec. VII-B).
//
// Assumes vehicle speeds are normally distributed and scores every link with
// the probability that it survives a reliability horizon delta:
// P(T > delta) from the stochastic lifetime model (LinkLifetimeDistribution).
// The route with the highest product of link reliabilities that also meets a
// hop (delay) bound is selected.
#pragma once

#include "analysis/lifetime_distribution.h"
#include "routing/on_demand.h"

namespace vanet::routing {

class GvGridProtocol final : public OnDemandBase {
 public:
  explicit GvGridProtocol(double reliability_horizon_s = 5.0,
                          double speed_sigma = 2.0, int max_hops = 12)
      : horizon_{reliability_horizon_s},
        sigma_{speed_sigma},
        max_hops_{max_hops} {}

  std::string_view name() const override { return "gvgrid"; }
  Category category() const override { return Category::kProbability; }
  bool wants_hello() const override { return true; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  bool reply_immediately() const override { return false; }

 private:
  double horizon_;
  double sigma_;
  int max_hops_;
};

}  // namespace vanet::routing
