#include "routing/probability/yan.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "analysis/lifetime_memo.h"

namespace vanet::routing {

namespace {
/// Ranking horizon: "practically infinite" for route selection purposes.
constexpr double kDurationHorizon = 600.0;

/// Expected 1-D stochastic lifetime between two kinematic states, truncated
/// at the ranking horizon. `memo` may be null (direct integration then).
double expected_duration(analysis::LifetimeMemo* memo, core::Vec2 pos_a,
                         core::Vec2 vel_a, core::Vec2 pos_b, core::Vec2 vel_b,
                         double r, double sigma) {
  const core::Vec2 axis = pos_b - pos_a;
  const double d0 = axis.norm();
  if (d0 >= r * 0.999 || d0 <= 0.0) return 0.0;
  const core::Vec2 unit = axis / d0;
  const double mu = (vel_b - vel_a).dot(unit);
  return analysis::expected_lifetime_via(memo, r, d0, mu, sigma,
                                         kDurationHorizon);
}
}  // namespace

double YanProtocol::expected_link_duration(const net::NeighborInfo& nbr) const {
  return expected_duration(lifetime_memo(), network().position(self()),
                           network().velocity(self()), nbr.predicted_pos(now()),
                           nbr.vel, network().nominal_range(), kSpeedSigma);
}

LinkEval YanProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  ev.lifetime = expected_duration(
      lifetime_memo(), h.prev_pos, h.prev_vel, network().position(self()),
      network().velocity(self()), network().nominal_range(), kSpeedSigma);
  ev.usable = ev.lifetime > 0.5;
  return ev;
}

bool YanProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  if (a.min_lifetime != b.min_lifetime) return a.min_lifetime > b.min_lifetime;
  return a.hops < b.hops;
}

void YanProtocol::forward_rreq(const net::Packet& p, const RreqHeader& h) {
  // Selective probing: rank neighbors by expected link duration and spend
  // tickets on the best few. Probes are steered toward the target — among
  // neighbors that make geographic progress the most stable ones win; only
  // when nobody progresses may a probe step sideways (local recovery).
  struct Candidate {
    net::NodeId id;
    double duration;
  };
  const core::Vec2 target_pos = network().position(h.target);
  const double my_dist = (target_pos - network().position(self())).norm();
  std::vector<Candidate> candidates;
  std::vector<Candidate> fallback;
  for (const auto& nbr : neighbors().snapshot()) {
    if (nbr.id == h.rreq_origin || nbr.id == p.tx) continue;
    const double d = expected_link_duration(nbr);
    if (d <= 0.5) continue;
    const double progress =
        my_dist - (target_pos - nbr.predicted_pos(now())).norm();
    (progress > 1.0 ? candidates : fallback).push_back({nbr.id, d});
  }
  if (candidates.empty()) candidates = std::move(fallback);
  if (candidates.empty()) {
    // Sparse corner: fall back to a broadcast so discovery can still work.
    net::Packet copy = p;
    schedule(jitter(10.0), [this, copy]() mutable { broadcast(std::move(copy)); });
    return;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.duration != b.duration) return a.duration > b.duration;
              return a.id < b.id;
            });
  const int tickets = std::max(1, h.tickets);
  const int fanout =
      std::min({tickets, kMaxFanout, static_cast<int>(candidates.size())});
  const int share = std::max(1, tickets / fanout);
  for (int k = 0; k < fanout; ++k) {
    auto child = std::make_shared<RreqHeader>(h);
    child->tickets = share;
    net::Packet probe = p;
    probe.header = std::move(child);
    const net::NodeId to = candidates[static_cast<std::size_t>(k)].id;
    schedule(jitter(5.0), [this, to, probe]() mutable {
      unicast(to, std::move(probe));
    });
  }
}

LinkEval YanStabilityProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev = YanProtocol::evaluate_link(h);
  // Stability-constrained admission: reject links below the floor.
  if (ev.lifetime < min_stability_) ev.usable = false;
  return ev;
}

}  // namespace vanet::routing
