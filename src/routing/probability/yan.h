// Yan et al. [27] (Sec. VII-B): ticket-based probing on expected link
// duration.
//
// Instead of brute-force flooding, route discovery issues L tickets; every
// probe carries some tickets and each node forwards at most as many probe
// copies as it holds tickets, unicasting them to the neighbors with the
// longest *expected link duration* (computed from the probability model of
// LinkLifetimeDistribution). The destination answers the most stable probe.
// TBP-SS (stability-constrained) uses the mean link duration as the metric
// with a minimum-stability admission threshold.
#pragma once

#include "analysis/lifetime_distribution.h"
#include "routing/on_demand.h"

namespace vanet::routing {

class YanProtocol : public OnDemandBase {
 public:
  explicit YanProtocol(int tickets = 4) : tickets_{tickets} {}

  std::string_view name() const override { return "yan"; }
  Category category() const override { return Category::kProbability; }
  bool wants_hello() const override { return true; }

  int tickets() const { return tickets_; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  bool reply_immediately() const override { return false; }
  int initial_tickets() const override { return tickets_; }
  double preemptive_rebuild_fraction() const override { return 0.7; }
  void forward_rreq(const net::Packet& p, const RreqHeader& h) override;

  /// Expected lifetime of the link from this node to a neighbor, per the
  /// stochastic 1-D model (normal relative speed).
  double expected_link_duration(const net::NeighborInfo& nbr) const;

  static constexpr double kSpeedSigma = 2.0;
  static constexpr int kMaxFanout = 3;

 private:
  int tickets_;
};

/// TBP-SS: same probing machinery, but the routing metric is the mean link
/// duration ("stability") and links below a stability floor are rejected.
class YanStabilityProtocol final : public YanProtocol {
 public:
  explicit YanStabilityProtocol(int tickets = 4, double min_stability_s = 3.0)
      : YanProtocol(tickets), min_stability_{min_stability_s} {}

  std::string_view name() const override { return "yan-ss"; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;

 private:
  double min_stability_;
};

}  // namespace vanet::routing
