// REAR — reliable and efficient alarm-message routing (Jiang et al. [30],
// Sec. VII-B).
//
// The next hop is chosen by *receipt probability*, computed from the wireless
// signal model (path loss + shadowing): "the receipt probabilities at all
// neighboring nodes are estimated from the received signal strengths; the
// path with highest receipt probability is selected". We evaluate the
// analytic probability of analysis/signal.h at the candidate's distance and
// combine it with forward progress.
#pragma once

#include "analysis/signal.h"
#include "routing/geographic/geo_base.h"

namespace vanet::routing {

class RearProtocol final : public GeoUnicastBase {
 public:
  explicit RearProtocol(analysis::LogNormalParams params = {})
      : params_{params} {}

  std::string_view name() const override { return "rear"; }
  Category category() const override { return Category::kProbability; }

 protected:
  double score_candidate(const net::NeighborInfo& cand, double progress,
                         double distance) const override;

 private:
  analysis::LogNormalParams params_;
};

}  // namespace vanet::routing
