// CAR — connectivity-aware routing (Yang et al. [29], Sec. VII-B).
//
// Every road segment is scored with the probability that the vehicles on it
// form a connected chain (gap model of analysis/connectivity_prob.h, grid
// cells of one car length). The source computes an *anchor path* over the
// road graph that maximises the product of segment connectivity
// probabilities, embeds the anchor list in the packet, and packets are then
// greedily forwarded anchor-to-anchor.
#pragma once

#include <memory>
#include <vector>

#include "map/road_graph.h"
#include "routing/geographic/geo_base.h"

namespace vanet::routing {

struct CarHeader final : net::Header {
  static constexpr net::HeaderTag kTag = net::HeaderTag::kCar;
  CarHeader() : net::Header{kTag} {}
  std::vector<int> anchors;      ///< intersection indices, source -> dest
  std::size_t next_anchor = 0;   ///< first anchor not yet reached
};

class CarProtocol final : public GeoUnicastBase {
 public:
  CarProtocol(std::shared_ptr<const map::RoadGraph> graph,
              std::shared_ptr<const map::SegmentDensityOracle> density)
      : graph_{std::move(graph)}, density_{std::move(density)} {}

  bool originate(net::NodeId dst, std::uint32_t flow, std::uint32_t seq,
                 std::size_t bytes) override;

  std::string_view name() const override { return "car"; }
  Category category() const override { return Category::kProbability; }

  /// Analytic connectivity probability of one segment given the oracle's
  /// current density estimate (exposed for tests/benches).
  double segment_connectivity(int seg) const;

 protected:
  double score_candidate(const net::NeighborInfo& cand, double progress,
                         double distance) const override;
  core::Vec2 forward_target(const net::Packet& p) const override;
  void forward_geo(net::Packet p) override;

 private:
  /// Advance `next_anchor` past anchors this node already reached.
  net::Packet advance_anchor(net::Packet p) const;

  std::shared_ptr<const map::RoadGraph> graph_;
  std::shared_ptr<const map::SegmentDensityOracle> density_;

  static constexpr double kAnchorReachedRadiusFraction = 0.6;
};

}  // namespace vanet::routing
