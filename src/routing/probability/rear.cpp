#include "routing/probability/rear.h"

namespace vanet::routing {

double RearProtocol::score_candidate(const net::NeighborInfo& cand,
                                     double progress, double distance) const {
  (void)cand;
  const double p = analysis::receipt_probability(distance, params_);
  // Squaring the receipt probability weights reliability over raw progress:
  // a far candidate with a marginal link loses to a nearer dependable one.
  return p * p * progress;
}

}  // namespace vanet::routing
