#include "routing/probability/car.h"

#include <algorithm>
#include <cmath>

#include "analysis/connectivity_prob.h"
#include "core/assert.h"

namespace vanet::routing {

double CarProtocol::segment_connectivity(int seg) const {
  const double length = graph_->segment_length(seg);
  const double lambda = density_->count(seg) / length;
  return analysis::segment_connectivity_probability(lambda, length,
                                                    network().nominal_range());
}

bool CarProtocol::originate(net::NodeId dst, std::uint32_t flow,
                            std::uint32_t seq, std::size_t bytes) {
  const int from = graph_->nearest_intersection(network().position(self()));
  const int to = graph_->nearest_intersection(destination_position(dst));
  // Edge cost: -log of connectivity probability, so the shortest path
  // maximises the product of segment probabilities.
  const auto anchors = graph_->shortest_path(from, to, [this](int seg) {
    const double p = std::clamp(segment_connectivity(seg), 1e-6, 1.0);
    return -std::log(p);
  });

  auto h = std::make_shared<CarHeader>();
  h->anchors = anchors;
  h->next_anchor = 0;

  net::Packet p = make_data(dst, flow, seq, bytes);
  p.ttl = kGeoTtl;
  p.header = std::move(h);
  forward_geo(std::move(p));
  return true;
}

net::Packet CarProtocol::advance_anchor(net::Packet p) const {
  const auto* h = p.header_as<CarHeader>();
  if (h == nullptr || h->anchors.empty()) return p;
  const core::Vec2 here = network().position(self());
  const double reach =
      network().nominal_range() * kAnchorReachedRadiusFraction;
  std::size_t next = h->next_anchor;
  while (next < h->anchors.size() &&
         (graph_->intersection_pos(h->anchors[next]) - here).norm() <= reach) {
    ++next;
  }
  if (next != h->next_anchor) {
    auto updated = std::make_shared<CarHeader>(*h);
    updated->next_anchor = next;
    p.header = std::move(updated);
  }
  return p;
}

core::Vec2 CarProtocol::forward_target(const net::Packet& p) const {
  const auto* h = p.header_as<CarHeader>();
  if (h != nullptr && h->next_anchor < h->anchors.size()) {
    return graph_->intersection_pos(h->anchors[h->next_anchor]);
  }
  return destination_position(p.destination);
}

void CarProtocol::forward_geo(net::Packet p) {
  GeoUnicastBase::forward_geo(advance_anchor(std::move(p)));
}

double CarProtocol::score_candidate(const net::NeighborInfo& cand,
                                    double progress, double distance) const {
  (void)cand;
  (void)distance;
  return progress;  // progress toward the current anchor
}

}  // namespace vanet::routing
