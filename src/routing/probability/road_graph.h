// Road graph and per-segment density estimates for connectivity-aware
// routing (CAR [29]).
//
// The graph models a Manhattan lattice of streets (a 1 x N lattice degenerates
// to a single highway). CAR computes, per road segment, the probability that
// the vehicles currently on it form a connected relay chain, and routes over
// the segment path that maximises the product of those probabilities.
//
// The SegmentDensityOracle carries the per-segment vehicle counts. In the
// real protocol these statistics are disseminated by the vehicles themselves;
// the scenario updates the oracle from ground truth once per second instead
// (substitution documented in DESIGN.md — it isolates the routing policy
// from the estimation error of the statistics channel).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/vec2.h"

namespace vanet::routing {

class RoadGraph {
 public:
  /// `nx` x `ny` intersections spaced `block` metres apart.
  RoadGraph(int nx, int ny, double block);

  int intersection_count() const { return nx_ * ny_; }
  core::Vec2 intersection_pos(int idx) const;
  int nearest_intersection(core::Vec2 pos) const;

  std::size_t segment_count() const { return segments_.size(); }
  double segment_length() const { return block_; }
  /// Endpoints (intersection indices) of segment `seg`.
  std::pair<int, int> segment_ends(int seg) const;
  /// Index of the segment joining adjacent intersections a and b; -1 if none.
  int segment_between(int a, int b) const;
  /// Segment whose geometry is closest to `pos`.
  int segment_of_position(core::Vec2 pos) const;

  /// Adjacent intersections of `idx`.
  std::vector<int> neighbors_of(int idx) const;

  /// Dijkstra with per-segment cost; returns the intersection sequence
  /// from `from` to `to` (inclusive). Empty when unreachable.
  std::vector<int> shortest_path(int from, int to,
                                 const std::function<double(int)>& cost) const;

 private:
  int index_of(int ix, int iy) const { return iy * nx_ + ix; }

  int nx_;
  int ny_;
  double block_;
  std::vector<std::pair<int, int>> segments_;       ///< (a, b) with a < b
  std::vector<std::vector<std::pair<int, int>>> adj_;  ///< idx -> (nbr, seg)
};

/// Shared per-segment vehicle-count estimates (see header comment).
class SegmentDensityOracle {
 public:
  explicit SegmentDensityOracle(std::size_t segments) : counts_(segments, 0.0) {}

  void set_count(int seg, double vehicles);
  double count(int seg) const;
  std::size_t segments() const { return counts_.size(); }

 private:
  std::vector<double> counts_;
};

}  // namespace vanet::routing
