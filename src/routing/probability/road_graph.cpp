#include "routing/probability/road_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/assert.h"

namespace vanet::routing {

RoadGraph::RoadGraph(int nx, int ny, double block)
    : nx_{nx}, ny_{ny}, block_{block} {
  VANET_ASSERT(nx >= 1 && ny >= 1 && (nx >= 2 || ny >= 2));
  VANET_ASSERT(block > 0.0);
  adj_.resize(static_cast<std::size_t>(nx_ * ny_));
  auto add_segment = [&](int a, int b) {
    const int seg = static_cast<int>(segments_.size());
    segments_.emplace_back(std::min(a, b), std::max(a, b));
    adj_[static_cast<std::size_t>(a)].emplace_back(b, seg);
    adj_[static_cast<std::size_t>(b)].emplace_back(a, seg);
  };
  for (int iy = 0; iy < ny_; ++iy) {
    for (int ix = 0; ix < nx_; ++ix) {
      if (ix + 1 < nx_) add_segment(index_of(ix, iy), index_of(ix + 1, iy));
      if (iy + 1 < ny_) add_segment(index_of(ix, iy), index_of(ix, iy + 1));
    }
  }
}

core::Vec2 RoadGraph::intersection_pos(int idx) const {
  VANET_ASSERT(idx >= 0 && idx < intersection_count());
  return {static_cast<double>(idx % nx_) * block_,
          static_cast<double>(idx / nx_) * block_};
}

int RoadGraph::nearest_intersection(core::Vec2 pos) const {
  const int ix = std::clamp(static_cast<int>(std::lround(pos.x / block_)), 0,
                            nx_ - 1);
  const int iy = std::clamp(static_cast<int>(std::lround(pos.y / block_)), 0,
                            ny_ - 1);
  return index_of(ix, iy);
}

std::pair<int, int> RoadGraph::segment_ends(int seg) const {
  return segments_.at(static_cast<std::size_t>(seg));
}

int RoadGraph::segment_between(int a, int b) const {
  for (const auto& [nbr, seg] : adj_.at(static_cast<std::size_t>(a))) {
    if (nbr == b) return seg;
  }
  return -1;
}

int RoadGraph::segment_of_position(core::Vec2 pos) const {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto [a, b] = segments_[s];
    const double d = core::distance_to_segment(pos, intersection_pos(a),
                                               intersection_pos(b));
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(s);
    }
  }
  return best;
}

std::vector<int> RoadGraph::neighbors_of(int idx) const {
  std::vector<int> out;
  for (const auto& [nbr, seg] : adj_.at(static_cast<std::size_t>(idx))) {
    out.push_back(nbr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> RoadGraph::shortest_path(
    int from, int to, const std::function<double(int)>& cost) const {
  const int n = intersection_count();
  VANET_ASSERT(from >= 0 && from < n && to >= 0 && to < n);
  std::vector<double> dist(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::infinity());
  std::vector<int> prev(static_cast<std::size_t>(n), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(from)] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == to) break;
    for (const auto& [v, seg] : adj_[static_cast<std::size_t>(u)]) {
      const double w = std::max(0.0, cost(seg));
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        prev[static_cast<std::size_t>(v)] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (!std::isfinite(dist[static_cast<std::size_t>(to)])) return {};
  std::vector<int> path;
  for (int v = to; v != -1; v = prev[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != from) return {};
  return path;
}

void SegmentDensityOracle::set_count(int seg, double vehicles) {
  counts_.at(static_cast<std::size_t>(seg)) = vehicles;
}

double SegmentDensityOracle::count(int seg) const {
  return counts_.at(static_cast<std::size_t>(seg));
}

}  // namespace vanet::routing
