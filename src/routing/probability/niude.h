// NiuDe / DeReQ (Niu et al. [16], Sec. IV-B & VII-B): QoS routing on link
// reliability and delay for multimedia traffic.
//
// "A new link reliability mathematical model which considers not only the
// impact of the link duration but also the traffic density. A selected route
// is not only reliable but also compliant with delay requirements." and
// "the route is maintained by proactive communication among intermediate
// nodes; if a link is going to break, the route will be rebuilt before the
// link breaks."
//
// Metric: per-link availability over a QoS horizon (Rubin/Jiang-style
// probability function) scaled by a local-density confidence factor; path
// selection maximises reliability among paths within the hop (delay) bound;
// maintenance is proactive (rebuild before predicted expiry).
#pragma once

#include "analysis/lifetime_distribution.h"
#include "routing/on_demand.h"

namespace vanet::routing {

class NiuDeProtocol final : public OnDemandBase {
 public:
  explicit NiuDeProtocol(double qos_horizon_s = 4.0, int delay_hop_bound = 8,
                         double speed_sigma = 2.0)
      : horizon_{qos_horizon_s}, max_hops_{delay_hop_bound}, sigma_{speed_sigma} {}

  std::string_view name() const override { return "niude"; }
  Category category() const override { return Category::kProbability; }
  bool wants_hello() const override { return true; }

 protected:
  LinkEval evaluate_link(const RreqHeader& h) const override;
  bool path_better(const PathMetric& a, const PathMetric& b) const override;
  bool reply_immediately() const override { return false; }
  /// Proactive maintenance: rebuild well before the predicted break.
  double preemptive_rebuild_fraction() const override { return 0.6; }

 private:
  double horizon_;
  int max_hops_;
  double sigma_;

  static constexpr double kHealthyNeighbors = 6.0;
};

}  // namespace vanet::routing
