#include "routing/probability/niude.h"

#include <algorithm>
#include <cmath>

#include "analysis/lifetime_memo.h"

namespace vanet::routing {

LinkEval NiuDeProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  const core::Vec2 here = network().position(self());
  const core::Vec2 axis = here - h.prev_pos;
  const double d0 = axis.norm();
  const double r = network().nominal_range();
  if (d0 >= r * 0.999 || d0 <= 0.0) {
    ev.reliability = 1e-6;
    ev.cost = -std::log(1e-6);
    return ev;
  }
  const core::Vec2 unit = axis / d0;
  const double mu = (network().velocity(self()) - h.prev_vel).dot(unit);
  const analysis::LinkLifetimeDistribution dist{r, d0, mu, sigma_};
  // Availability over the QoS horizon...
  double reliability = dist.survival(horizon_);
  // ...discounted where traffic density is too thin for a repair to exist
  // ("considers not only the link duration but also the traffic density").
  const double density_factor = std::min(
      1.0, static_cast<double>(neighbors().size()) / kHealthyNeighbors);
  reliability *= 0.5 + 0.5 * density_factor;
  reliability = std::clamp(reliability, 1e-6, 1.0);
  ev.reliability = reliability;
  ev.cost = -std::log(reliability);
  ev.lifetime = analysis::expected_lifetime_via(lifetime_memo(), r, d0, mu,
                                                sigma_, /*horizon=*/600.0);
  return ev;
}

bool NiuDeProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  // Delay compliance first (hop bound as the delay proxy), then reliability.
  const bool a_ok = a.hops <= max_hops_;
  const bool b_ok = b.hops <= max_hops_;
  if (a_ok != b_ok) return a_ok;
  if (a.reliability != b.reliability) return a.reliability > b.reliability;
  return a.hops < b.hops;
}

}  // namespace vanet::routing
