#include "routing/probability/gvgrid.h"

#include <algorithm>
#include <cmath>

#include "analysis/lifetime_memo.h"

namespace vanet::routing {

bool GvGridProtocol::inside_route_corridor(const RreqHeader& h) const {
  if (!uses_road_corridor()) {
    return true;  // legacy: discovery is unconfined
  }
  // The origin stamped its position (and its road segment — pure function of
  // the position, so the stamp equals a fresh query) into the RREQ; the
  // target's position comes from the same idealized location service the
  // geographic family uses, and its segment from the scenario's per-tick
  // snapshot when one is bound.
  const core::Vec2 target_pos = network().position(h.target);
  const map::RouteCorridor& corridor = corridors_.between(
      road_map(), segment_index(),
      CorridorCache::pair_key(h.rreq_origin, h.target), h.origin_pos,
      target_pos, h.origin_seg, snapped_segment(h.target, target_pos));
  if (!corridor.route_found()) return true;  // disconnected: no confinement
  return corridor.contains(network().position(self()), corridor_half_width_);
}

LinkEval GvGridProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  if (!inside_route_corridor(h)) {
    // Off the road route toward the target: do not take part in discovery.
    ev.usable = false;
    return ev;
  }
  const core::Vec2 here = network().position(self());
  const core::Vec2 axis = here - h.prev_pos;
  const double d0 = axis.norm();
  const double r = network().nominal_range();
  if (d0 >= r * 0.999 || d0 <= 0.0) {
    // Marginal link: admit it, but at the floor reliability so any
    // alternative path wins — pruning it outright would partition sparse
    // topologies where the marginal hop is the only hop.
    ev.reliability = 1e-6;
    ev.cost = -std::log(1e-6);
    return ev;
  }
  // Relative separation speed along the link axis; positive = drifting apart.
  const core::Vec2 unit = axis / d0;
  const double mu = (network().velocity(self()) - h.prev_vel).dot(unit);
  const analysis::LinkLifetimeDistribution dist{r, d0, mu, sigma_};
  const double reliability = std::clamp(dist.survival(horizon_), 1e-6, 1.0);
  ev.reliability = reliability;
  ev.cost = -std::log(reliability);
  ev.lifetime = analysis::expected_lifetime_via(lifetime_memo(), r, d0, mu,
                                                sigma_, /*horizon=*/600.0);
  return ev;
}

bool GvGridProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  const bool a_ok = a.hops <= max_hops_;
  const bool b_ok = b.hops <= max_hops_;
  if (a_ok != b_ok) return a_ok;  // meet the delay (hop) bound first
  if (a.reliability != b.reliability) return a.reliability > b.reliability;
  return a.hops < b.hops;
}

}  // namespace vanet::routing
