#include "routing/probability/gvgrid.h"

#include <algorithm>
#include <cmath>

namespace vanet::routing {

LinkEval GvGridProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  const core::Vec2 here = network().position(self());
  const core::Vec2 axis = here - h.prev_pos;
  const double d0 = axis.norm();
  const double r = network().nominal_range();
  if (d0 >= r * 0.999 || d0 <= 0.0) {
    // Marginal link: admit it, but at the floor reliability so any
    // alternative path wins — pruning it outright would partition sparse
    // topologies where the marginal hop is the only hop.
    ev.reliability = 1e-6;
    ev.cost = -std::log(1e-6);
    return ev;
  }
  // Relative separation speed along the link axis; positive = drifting apart.
  const core::Vec2 unit = axis / d0;
  const double mu = (network().velocity(self()) - h.prev_vel).dot(unit);
  const analysis::LinkLifetimeDistribution dist{r, d0, mu, sigma_};
  const double reliability = std::clamp(dist.survival(horizon_), 1e-6, 1.0);
  ev.reliability = reliability;
  ev.cost = -std::log(reliability);
  ev.lifetime = dist.expected_lifetime(/*horizon=*/600.0);
  return ev;
}

bool GvGridProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  const bool a_ok = a.hops <= max_hops_;
  const bool b_ok = b.hops <= max_hops_;
  if (a_ok != b_ok) return a_ok;  // meet the delay (hop) bound first
  if (a.reliability != b.reliability) return a.reliability > b.reliability;
  return a.hops < b.hops;
}

}  // namespace vanet::routing
