#include "routing/probability/gvgrid.h"

#include <algorithm>
#include <cmath>

namespace vanet::routing {

bool GvGridProtocol::inside_route_corridor(const RreqHeader& h) const {
  if (geometry_ != GeometryMode::kRoute || !has_map() || road_map().is_grid()) {
    return true;  // legacy: discovery is unconfined
  }
  // The origin stamped its position into the RREQ; the target's position
  // comes from the same idealized location service the geographic family
  // uses (zone/grid stamp it at origination the same way).
  const map::RouteCorridor& corridor = corridors_.between(
      road_map(), segment_index(),
      CorridorCache::pair_key(h.rreq_origin, h.target), h.origin_pos,
      network().position(h.target));
  if (!corridor.route_found()) return true;  // disconnected: no confinement
  return corridor.contains(network().position(self()), corridor_half_width_);
}

LinkEval GvGridProtocol::evaluate_link(const RreqHeader& h) const {
  LinkEval ev;
  if (!inside_route_corridor(h)) {
    // Off the road route toward the target: do not take part in discovery.
    ev.usable = false;
    return ev;
  }
  const core::Vec2 here = network().position(self());
  const core::Vec2 axis = here - h.prev_pos;
  const double d0 = axis.norm();
  const double r = network().nominal_range();
  if (d0 >= r * 0.999 || d0 <= 0.0) {
    // Marginal link: admit it, but at the floor reliability so any
    // alternative path wins — pruning it outright would partition sparse
    // topologies where the marginal hop is the only hop.
    ev.reliability = 1e-6;
    ev.cost = -std::log(1e-6);
    return ev;
  }
  // Relative separation speed along the link axis; positive = drifting apart.
  const core::Vec2 unit = axis / d0;
  const double mu = (network().velocity(self()) - h.prev_vel).dot(unit);
  const analysis::LinkLifetimeDistribution dist{r, d0, mu, sigma_};
  const double reliability = std::clamp(dist.survival(horizon_), 1e-6, 1.0);
  ev.reliability = reliability;
  ev.cost = -std::log(reliability);
  ev.lifetime = dist.expected_lifetime(/*horizon=*/600.0);
  return ev;
}

bool GvGridProtocol::path_better(const PathMetric& a, const PathMetric& b) const {
  const bool a_ok = a.hops <= max_hops_;
  const bool b_ok = b.hops <= max_hops_;
  if (a_ok != b_ok) return a_ok;  // meet the delay (hop) bound first
  if (a.reliability != b.reliability) return a.reliability > b.reliability;
  return a.hops < b.hops;
}

}  // namespace vanet::routing
