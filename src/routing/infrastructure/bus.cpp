#include "routing/infrastructure/bus.h"

#include <algorithm>

namespace vanet::routing {

void BusProtocol::start() {
  if (is_bus(self())) {
    tick_scheduled_ = true;
    schedule(core::SimTime::seconds(kFerryTickSeconds) + jitter(200.0),
             [this] { ferry_tick(); });
  }
}

double BusProtocol::score_candidate(const net::NeighborInfo& cand,
                                    double progress, double distance) const {
  (void)distance;
  // Plain greedy progress; buses get a mild preference since they have the
  // storage to ride out gaps.
  return progress * (is_bus(cand.id) ? 1.5 : 1.0);
}

const net::NeighborInfo* BusProtocol::bus_neighbor() const {
  const net::NeighborInfo* best = nullptr;
  double best_dist = 0.0;
  const core::Vec2 here = network().position(self());
  for (const auto& nbr : neighbors().snapshot()) {
    if (!is_bus(nbr.id) || blacklisted(nbr.id)) continue;
    const double d = (nbr.predicted_pos(now()) - here).norm();
    if (best == nullptr || d < best_dist) {
      best = neighbors().find(nbr.id);
      best_dist = d;
    }
  }
  return best;
}

void BusProtocol::no_candidate(net::Packet p) {
  if (is_bus(self())) {
    carry(std::move(p), kBusBufferSeconds);
    return;
  }
  if (const net::NeighborInfo* bus = bus_neighbor()) {
    net::Packet out = std::move(p);
    out.hops += 1;
    ++events().data_forwarded;
    unicast(bus->id, std::move(out));
    return;
  }
  // No bus around: hold briefly — the next hello may reveal one.
  carry(std::move(p), kCarBufferSeconds);
}

void BusProtocol::carry(net::Packet p, double seconds) {
  const std::size_t cap = is_bus(self()) ? kBusCargoCap : kCarCargoCap;
  if (cargo_.size() >= cap) {
    ++events().data_dropped_no_route;
    return;
  }
  cargo_.push_back(Carried{std::move(p), now() + core::SimTime::seconds(seconds)});
  if (!tick_scheduled_) {
    tick_scheduled_ = true;
    schedule(core::SimTime::seconds(kFerryTickSeconds), [this] { ferry_tick(); });
  }
}

void BusProtocol::ferry_tick() {
  std::vector<Carried> keep;
  for (auto& c : cargo_) {
    if (c.deadline <= now()) {
      ++events().data_dropped_no_route;
      continue;
    }
    // Destination in range: deliver directly.
    if (neighbors().find(c.packet.destination) != nullptr) {
      net::Packet out = std::move(c.packet);
      out.hops += 1;
      ++events().data_forwarded;
      unicast(out.destination, std::move(out));
      continue;
    }
    // Hand off only on clear progress (hysteresis avoids ping-pong).
    const core::Vec2 here = network().position(self());
    const core::Vec2 dest = destination_position(c.packet.destination);
    const double my_dist = (dest - here).norm();
    const net::NeighborInfo* best = nullptr;
    double best_progress = kHandoffProgress;
    for (const auto& nbr : neighbors().snapshot()) {
      if (blacklisted(nbr.id)) continue;
      const double progress =
          my_dist - (dest - nbr.predicted_pos(now())).norm();
      if (progress > best_progress) {
        best = neighbors().find(nbr.id);
        best_progress = progress;
      }
    }
    if (best != nullptr) {
      net::Packet out = std::move(c.packet);
      out.hops += 1;
      ++events().data_forwarded;
      unicast(best->id, std::move(out));
      continue;
    }
    keep.push_back(std::move(c));
  }
  cargo_ = std::move(keep);
  tick_scheduled_ = is_bus(self()) || !cargo_.empty();
  if (tick_scheduled_) {
    schedule(core::SimTime::seconds(kFerryTickSeconds), [this] { ferry_tick(); });
  }
}

}  // namespace vanet::routing
