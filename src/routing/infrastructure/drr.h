// DRR — differentiated reliable routing in hybrid VANETs (He et al. [17],
// Sec. V-B).
//
// Vehicles forward greedily; when a path breaks or no progress is possible,
// a roadside unit takes over as a *virtual equivalent node* (VEN): the
// packet is handed to the nearest RSU, crosses the wired backbone to the RSU
// closest to the destination, and is delivered (or buffered until the
// destination drives into range). Per the paper, vehicle positions are
// "synchronized to all related RSU instantly", which our ideal location
// service models.
#pragma once

#include <vector>

#include "routing/geographic/geo_base.h"

namespace vanet::routing {

class DrrProtocol final : public GeoUnicastBase {
 public:
  std::string_view name() const override { return "drr"; }
  Category category() const override { return Category::kInfrastructure; }

 protected:
  double score_candidate(const net::NeighborInfo& cand, double progress,
                         double distance) const override;
  void no_candidate(net::Packet p) override;
  void forward_geo(net::Packet p) override;

 private:
  struct Buffered {
    net::Packet packet;
    core::SimTime deadline{};
  };

  void rsu_forward(net::Packet p);
  /// RSU whose position is closest to `pos`; kBroadcastId when none exist.
  net::NodeId rsu_nearest(core::Vec2 pos) const;
  /// RSU in this node's neighbor table, or nullptr.
  const net::NeighborInfo* rsu_neighbor() const;
  void buffer_packet(net::Packet p);
  void retry_buffered();

  std::vector<Buffered> buffer_;
  bool retry_scheduled_ = false;

  static constexpr double kBufferSeconds = 10.0;
  static constexpr double kRetryIntervalSeconds = 1.0;
  static constexpr std::size_t kBufferCap = 64;
};

}  // namespace vanet::routing
