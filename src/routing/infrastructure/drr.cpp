#include "routing/infrastructure/drr.h"

#include <algorithm>

namespace vanet::routing {

double DrrProtocol::score_candidate(const net::NeighborInfo& cand,
                                    double progress, double distance) const {
  (void)distance;
  // RSUs are preferred relays at equal progress: they are fixed and wired.
  return progress * (cand.rsu ? 2.0 : 1.0);
}

void DrrProtocol::forward_geo(net::Packet p) {
  if (network().is_rsu(self())) {
    rsu_forward(std::move(p));
    return;
  }
  GeoUnicastBase::forward_geo(std::move(p));
}

void DrrProtocol::rsu_forward(net::Packet p) {
  // Deliver directly when the destination is in radio range — judged on its
  // dead-reckoned position, not the (possibly seconds-old) beacon position,
  // so we do not burn MAC retries on vehicles that already drove off.
  const net::NeighborInfo* nbr = neighbors().find(p.destination);
  if (nbr != nullptr &&
      (nbr->predicted_pos(now()) - network().position(self())).norm() <=
          0.9 * network().nominal_range()) {
    p.hops += 1;
    ++events().data_forwarded;
    unicast(p.destination, std::move(p));
    return;
  }
  // Cross the backbone to the RSU nearest the destination's current position.
  const net::NodeId target_rsu =
      rsu_nearest(destination_position(p.destination));
  if (target_rsu != net::kBroadcastId && target_rsu != self() &&
      network().backbone_connected(self(), target_rsu)) {
    p.hops += 1;
    ++events().data_forwarded;
    network().backbone_send(self(), target_rsu, std::move(p));
    return;
  }
  // We are the best-placed RSU but the destination is out of range: try a
  // greedy hand-off to a vehicle heading its way, else buffer (VEN role).
  if (try_forward(p)) return;
  buffer_packet(std::move(p));
}

void DrrProtocol::no_candidate(net::Packet p) {
  // Vehicle with no greedy progress: hand the packet to an RSU if one is in
  // range — the RSU acts as the virtual equivalent node.
  if (const net::NeighborInfo* rsu = rsu_neighbor()) {
    p.hops += 1;
    ++events().data_forwarded;
    unicast(rsu->id, std::move(p));
    return;
  }
  buffer_packet(std::move(p));
}

net::NodeId DrrProtocol::rsu_nearest(core::Vec2 pos) const {
  net::NodeId best = net::kBroadcastId;
  double best_dist = 0.0;
  for (net::NodeId id : network().rsu_ids()) {
    const double d = (network().position(id) - pos).norm();
    if (best == net::kBroadcastId || d < best_dist) {
      best = id;
      best_dist = d;
    }
  }
  return best;
}

const net::NeighborInfo* DrrProtocol::rsu_neighbor() const {
  const net::NeighborInfo* best = nullptr;
  double best_dist = 0.0;
  const core::Vec2 here = network().position(self());
  for (const auto& nbr : neighbors().snapshot()) {
    if (!nbr.rsu || blacklisted(nbr.id)) continue;
    const double d = (nbr.pos - here).norm();
    if (best == nullptr || d < best_dist) {
      // Snapshot entries are values on the stack; look up the stable entry.
      best = neighbors().find(nbr.id);
      best_dist = d;
    }
  }
  return best;
}

void DrrProtocol::buffer_packet(net::Packet p) {
  if (buffer_.size() >= kBufferCap) {
    ++events().data_dropped_no_route;
    return;
  }
  buffer_.push_back(
      Buffered{std::move(p), now() + core::SimTime::seconds(kBufferSeconds)});
  if (!retry_scheduled_) {
    retry_scheduled_ = true;
    schedule(core::SimTime::seconds(kRetryIntervalSeconds),
             [this] { retry_buffered(); });
  }
}

void DrrProtocol::retry_buffered() {
  retry_scheduled_ = false;
  std::vector<Buffered> keep;
  for (auto& b : buffer_) {
    if (b.deadline <= now()) {
      ++events().data_dropped_no_route;
      continue;
    }
    if (network().is_rsu(self())) {
      // Deliver directly when the destination drove into range, else try a
      // greedy hand-off; backbone ping-pong is deliberately not retried.
      const net::NeighborInfo* nbr = neighbors().find(b.packet.destination);
      if (nbr != nullptr &&
          (nbr->predicted_pos(now()) - network().position(self())).norm() <=
              0.9 * network().nominal_range()) {
        net::Packet out = std::move(b.packet);
        out.hops += 1;
        ++events().data_forwarded;
        unicast(out.destination, std::move(out));
        continue;
      }
      if (try_forward(b.packet)) continue;
    } else {
      if (try_forward(b.packet)) continue;
      if (const net::NeighborInfo* rsu = rsu_neighbor()) {
        net::Packet out = std::move(b.packet);
        out.hops += 1;
        ++events().data_forwarded;
        unicast(rsu->id, std::move(out));
        continue;
      }
    }
    keep.push_back(std::move(b));
  }
  buffer_ = std::move(keep);
  if (!buffer_.empty() && !retry_scheduled_) {
    retry_scheduled_ = true;
    schedule(core::SimTime::seconds(kRetryIntervalSeconds),
             [this] { retry_buffered(); });
  }
}

}  // namespace vanet::routing
