// Bus-ferry routing (Kitani et al. [19], Sec. V-B).
//
// Buses on regular routes act as message ferries with large buffers: when a
// vehicle cannot make greedy progress it hands the packet to a bus in range;
// the bus carries it and periodically re-evaluates — delivering directly
// when the destination appears, or handing off to a vehicle that makes
// clear progress. This is store-carry-forward with mobile infrastructure.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "routing/geographic/geo_base.h"

namespace vanet::routing {

/// The set of node ids that are buses; shared by all protocol instances of a
/// scenario (vehicles recognise buses from their beacons in reality; the
/// shared set models that announcement bit).
using FerrySet = std::unordered_set<net::NodeId>;

class BusProtocol final : public GeoUnicastBase {
 public:
  explicit BusProtocol(std::shared_ptr<const FerrySet> ferries)
      : ferries_{std::move(ferries)} {}

  void start() override;

  std::string_view name() const override { return "bus"; }
  Category category() const override { return Category::kInfrastructure; }

 protected:
  double score_candidate(const net::NeighborInfo& cand, double progress,
                         double distance) const override;
  void no_candidate(net::Packet p) override;

 private:
  struct Carried {
    net::Packet packet;
    core::SimTime deadline{};
  };

  bool is_bus(net::NodeId id) const { return ferries_->contains(id); }
  const net::NeighborInfo* bus_neighbor() const;
  void carry(net::Packet p, double seconds);
  void ferry_tick();

  std::shared_ptr<const FerrySet> ferries_;
  std::vector<Carried> cargo_;
  bool tick_scheduled_ = false;

  static constexpr double kBusBufferSeconds = 60.0;
  static constexpr double kCarBufferSeconds = 3.0;
  static constexpr double kFerryTickSeconds = 1.0;
  static constexpr double kHandoffProgress = 50.0;  ///< m, hysteresis
  static constexpr std::size_t kBusCargoCap = 256;
  static constexpr std::size_t kCarCargoCap = 16;
};

}  // namespace vanet::routing
