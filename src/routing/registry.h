// Registry of all implemented protocols, tagged with the paper's taxonomy.
//
// bench_fig1_taxonomy dumps this table; the scenario runner instantiates
// per-node protocol instances through it.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "analysis/signal.h"
#include "map/road_graph.h"
#include "routing/infrastructure/bus.h"
#include "routing/linkquality/link_quality.h"
#include "routing/protocol.h"

namespace vanet::routing {

/// Shared dependencies some protocols need; scenario builders fill these in.
/// The road graph and density oracle come from the map subsystem (src/map/),
/// so protocols reason over the same topology the vehicles drive on.
struct ProtocolDeps {
  analysis::LogNormalParams signal;                          ///< REAR's model
  std::shared_ptr<const map::RoadGraph> road_graph;          ///< CAR
  std::shared_ptr<const map::SegmentDensityOracle> density;  ///< CAR
  std::shared_ptr<const FerrySet> ferries;                   ///< Bus
  int yan_tickets = 4;                                       ///< Yan TBP budget
  // Geometry backend of the road-geometry protocols (kLine = legacy plane;
  // kRoute additionally needs the map bound via ProtocolContext).
  GeometryMode zone_geometry = GeometryMode::kLine;
  GeometryMode grid_geometry = GeometryMode::kLine;
  GeometryMode gvgrid_geometry = GeometryMode::kLine;
  // Link-quality family (routing/linkquality/): the estimator knobs shared
  // by `etx` and the flooding suppression mode, and the suppression mode
  // itself (`flood.suppression`, applied to flooding + biswas).
  EtxConfig etx;
  FloodSuppression flood_suppression = FloodSuppression::kNone;
};

struct ProtocolInfo {
  std::string_view name;
  Category category;
  std::string_view reference;    ///< paper citation tag, e.g. "[13] PBR"
  std::string_view metric;       ///< the routing metric employed
  std::string_view control;      ///< control packets used
  std::function<std::unique_ptr<RoutingProtocol>(const ProtocolDeps&)> make;
};

class ProtocolRegistry {
 public:
  static const std::vector<ProtocolInfo>& all();
  /// nullptr when unknown.
  static const ProtocolInfo* find(std::string_view name);
  /// Throws std::invalid_argument for unknown names or missing dependencies.
  static std::unique_ptr<RoutingProtocol> make(std::string_view name,
                                               const ProtocolDeps& deps);
  static std::vector<std::string_view> names();
};

}  // namespace vanet::routing
