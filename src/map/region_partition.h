// Deterministic region partitioning of a RoadGraph for the sharded engine.
//
// partition_regions() splits the segment set into `regions` contiguous
// regions by greedy BFS growth over segment adjacency (two segments are
// adjacent iff they share an intersection), balanced by cumulative segment
// length. The result is a pure function of the graph and the region count —
// no RNG, no floating-point ordering hazards beyond the graph's own
// coordinates — so every shard of a sharded run (and every rerun of the same
// scenario) computes the identical partition. The sharded engine derives
// node ownership from it: a vehicle belongs to the region that owns the
// segment nearest its initial position (src/sim/sharded/).
#pragma once

#include <vector>

#include "map/road_graph.h"

namespace vanet::map {

struct RegionPartition {
  int regions = 1;
  /// segment id -> owning region in [0, regions). Never -1 after a
  /// successful partition: every segment is owned by exactly one region.
  std::vector<int> segment_region;
  /// Total segment length (metres) per region.
  std::vector<double> region_length;
};

/// Partition `graph` into at most `regions` contiguous regions. The region
/// count is clamped to [1, segment_count]; an empty graph yields one empty
/// region. Growth order: region r seeds at the unassigned segment with the
/// lexicographically smallest (midpoint y, midpoint x, id) and BFS-grows
/// (frontier neighbours visited in increasing segment id) until its length
/// reaches remaining_length / remaining_regions. Segments unreachable from
/// any seed within budget are attached to an adjacent region by a
/// deterministic fixpoint sweep; fully disconnected leftovers go to the
/// currently shortest region, keeping total coverage exact.
RegionPartition partition_regions(const RoadGraph& graph, int regions);

}  // namespace vanet::map
