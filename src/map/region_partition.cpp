#include "map/region_partition.h"

#include <algorithm>
#include <deque>

#include "core/assert.h"

namespace vanet::map {

namespace {

/// Lexicographic (midpoint y, midpoint x, id) seed order. Midpoints are
/// exact halves of intersection coordinates, so the comparison is as
/// deterministic as the graph itself.
struct SeedKey {
  double y = 0.0;
  double x = 0.0;
  int id = 0;

  bool operator<(const SeedKey& o) const {
    if (y != o.y) return y < o.y;
    if (x != o.x) return x < o.x;
    return id < o.id;
  }
};

SeedKey seed_key(const RoadGraph& graph, int seg) {
  const auto [a, b] = graph.segment_ends(seg);
  const core::Vec2 mid =
      (graph.intersection_pos(a) + graph.intersection_pos(b)) * 0.5;
  return SeedKey{mid.y, mid.x, seg};
}

/// Segment adjacency: all segments meeting at a shared intersection are
/// pairwise adjacent. Lists come out sorted ascending and deduplicated, so
/// BFS visits neighbours in increasing segment id.
std::vector<std::vector<int>> segment_adjacency(const RoadGraph& graph) {
  std::vector<std::vector<int>> adj(graph.segment_count());
  for (int i = 0; i < graph.intersection_count(); ++i) {
    const auto& incident = graph.adjacency(i);
    for (const auto& s : incident) {
      for (const auto& t : incident) {
        if (s.second != t.second) adj[s.second].push_back(t.second);
      }
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace

RegionPartition partition_regions(const RoadGraph& graph, int regions) {
  const int n = static_cast<int>(graph.segment_count());
  RegionPartition out;
  out.regions = std::clamp(regions, 1, std::max(1, n));
  out.segment_region.assign(static_cast<std::size_t>(n), -1);
  out.region_length.assign(static_cast<std::size_t>(out.regions), 0.0);
  if (n == 0) return out;

  const std::vector<std::vector<int>> adj = segment_adjacency(graph);

  double remaining = graph.total_length();
  int assigned = 0;
  const auto assign = [&](int seg, int region) {
    out.segment_region[seg] = region;
    out.region_length[region] += graph.segment_length(seg);
    remaining -= graph.segment_length(seg);
    ++assigned;
  };

  for (int r = 0; r < out.regions && assigned < n; ++r) {
    int seed = -1;
    for (int s = 0; s < n; ++s) {
      if (out.segment_region[s] != -1) continue;
      if (seed == -1 || seed_key(graph, s) < seed_key(graph, seed)) seed = s;
    }
    VANET_ASSERT(seed != -1);
    // The last region's target is everything left, so a connected graph is
    // fully covered by BFS alone and the fixpoint sweep below is a no-op.
    const double target = remaining / static_cast<double>(out.regions - r);
    std::deque<int> frontier;
    assign(seed, r);
    frontier.push_back(seed);
    while (!frontier.empty() && out.region_length[r] < target) {
      const int s = frontier.front();
      frontier.pop_front();
      for (const int t : adj[s]) {
        if (out.segment_region[t] != -1) continue;
        assign(t, r);
        frontier.push_back(t);
        if (out.region_length[r] >= target) break;
      }
    }
  }

  // Attach stranded segments (cut off from their component's seed by a
  // budget-exhausted region) to the shortest adjacent region; repeat until
  // nothing moves. Ties break toward the lowest region id.
  bool progress = true;
  while (assigned < n && progress) {
    progress = false;
    for (int s = 0; s < n; ++s) {
      if (out.segment_region[s] != -1) continue;
      int best = -1;
      for (const int t : adj[s]) {
        const int r = out.segment_region[t];
        if (r == -1) continue;
        if (best == -1 || out.region_length[r] < out.region_length[best]) {
          best = r;
        }
      }
      if (best != -1) {
        assign(s, best);
        progress = true;
      }
    }
  }

  // Components with no assigned neighbour at all (disconnected graphs where
  // regions < component count): dump each remaining segment into the
  // currently shortest region. Coverage stays exact; contiguity is already
  // broken by the graph itself here.
  for (int s = 0; s < n; ++s) {
    if (out.segment_region[s] != -1) continue;
    int best = 0;
    for (int r = 1; r < out.regions; ++r) {
      if (out.region_length[r] < out.region_length[best]) best = r;
    }
    assign(s, best);
  }
  VANET_ASSERT(assigned == n);
  return out;
}

}  // namespace vanet::map
