#include "map/builders.h"

#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vanet::map {

namespace {

[[noreturn]] void malformed(std::size_t line_no, const std::string& line,
                            const std::string& why) {
  throw std::runtime_error("map csv: line " + std::to_string(line_no) + ": " +
                           why + ": " + line);
}

/// Ids above this are rejected rather than resized-to: a typo'd id must fail
/// with a line number, not an out-of-memory, and must survive the narrowing
/// to int unchanged. Generous for road networks (planet-scale OSM extracts
/// are pre-tiled long before this) while keeping the worst-case transient
/// node table small.
constexpr long long kMaxNodeId = 1'000'000;

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss{line};
  std::string field;
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

std::optional<long long> parse_ll(const std::string& s) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_d(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    // 'nan'/'inf' parse but poison every downstream geometry computation
    // (segment lengths, bbox, index cells) — reject them here with the same
    // line-numbered error as any other malformed field.
    if (!std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

RoadGraph make_grid(int nx, int ny, double block) {
  return RoadGraph{nx, ny, block};
}

RoadGraph load_edge_list_csv(std::istream& in) {
  struct NodeRec {
    core::Vec2 pos;
    bool declared = false;
  };
  std::vector<NodeRec> nodes;
  std::vector<std::pair<int, int>> edges;
  std::vector<std::size_t> edge_lines;  // for isolated/duplicate diagnostics

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF files
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_fields(line);
    if (fields.empty()) continue;
    if (fields[0] == "node") {
      if (fields.size() != 4) malformed(line_no, line, "node needs id,x,y");
      const auto id = parse_ll(fields[1]);
      const auto x = parse_d(fields[2]);
      const auto y = parse_d(fields[3]);
      if (!id || *id < 0 || *id > kMaxNodeId) {
        malformed(line_no, line, "bad node id");
      }
      if (!x || !y) malformed(line_no, line, "bad node coordinates");
      if (static_cast<std::size_t>(*id) >= nodes.size()) {
        nodes.resize(static_cast<std::size_t>(*id) + 1);
      }
      NodeRec& rec = nodes[static_cast<std::size_t>(*id)];
      if (rec.declared) malformed(line_no, line, "duplicate node id");
      rec.pos = {*x, *y};
      rec.declared = true;
    } else if (fields[0] == "edge") {
      if (fields.size() != 3) malformed(line_no, line, "edge needs a,b");
      const auto a = parse_ll(fields[1]);
      const auto b = parse_ll(fields[2]);
      if (!a || !b || *a < 0 || *b < 0 || *a > kMaxNodeId ||
          *b > kMaxNodeId) {
        malformed(line_no, line, "bad edge endpoint");
      }
      if (*a == *b) malformed(line_no, line, "self-loop edge");
      edges.emplace_back(static_cast<int>(*a), static_cast<int>(*b));
      edge_lines.push_back(line_no);
    } else {
      malformed(line_no, line, "unknown record type '" + fields[0] + "'");
    }
  }

  if (nodes.size() < 2) {
    throw std::runtime_error("map csv: needs at least two nodes");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].declared) {
      throw std::runtime_error("map csv: node ids must be dense 0..N-1 (id " +
                               std::to_string(i) + " missing)");
    }
  }

  RoadGraph graph;
  for (const NodeRec& rec : nodes) graph.add_intersection(rec.pos);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    if (a >= graph.intersection_count() || b >= graph.intersection_count()) {
      throw std::runtime_error("map csv: line " +
                               std::to_string(edge_lines[e]) +
                               ": edge endpoint out of range");
    }
    if (graph.segment_between(a, b) != -1) {
      throw std::runtime_error("map csv: line " +
                               std::to_string(edge_lines[e]) +
                               ": duplicate edge " + std::to_string(a) + "-" +
                               std::to_string(b));
    }
    if (graph.intersection_pos(a) == graph.intersection_pos(b)) {
      throw std::runtime_error("map csv: line " +
                               std::to_string(edge_lines[e]) +
                               ": zero-length edge " + std::to_string(a) +
                               "-" + std::to_string(b));
    }
    graph.add_segment(a, b);
  }
  for (int i = 0; i < graph.intersection_count(); ++i) {
    if (graph.degree(i) == 0) {
      throw std::runtime_error("map csv: node " + std::to_string(i) +
                               " has no edges (vehicles could never leave it)");
    }
  }
  return graph;
}

RoadGraph load_edge_list_csv_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("map csv: cannot open " + path);
  return load_edge_list_csv(in);
}

void save_edge_list_csv(const RoadGraph& graph, std::ostream& out) {
  out << "# node,<id>,<x_m>,<y_m> / edge,<node_a>,<node_b>\n";
  // 17 significant digits reload doubles bit-exactly; restore the caller's
  // precision afterwards.
  const std::streamsize old_precision = out.precision(17);
  for (int i = 0; i < graph.intersection_count(); ++i) {
    const core::Vec2 p = graph.intersection_pos(i);
    out << "node," << i << ',' << p.x << ',' << p.y << '\n';
  }
  for (std::size_t s = 0; s < graph.segment_count(); ++s) {
    const auto [a, b] = graph.segment_ends(static_cast<int>(s));
    out << "edge," << a << ',' << b << '\n';
  }
  out.precision(old_precision);
}

void save_edge_list_csv_file(const RoadGraph& graph, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("map csv: cannot write " + path);
  save_edge_list_csv(graph, out);
}

}  // namespace vanet::map
