#include "map/segment_index.h"

#include <algorithm>
#include <limits>

#include "core/assert.h"
#include "core/grid_key.h"

namespace vanet::map {

SegmentIndex::SegmentIndex(const RoadGraph& graph, double cell_size_m)
    : graph_{graph} {
  VANET_ASSERT_MSG(graph.segment_count() > 0,
                   "segment index over an empty graph");
  cell_ = cell_size_m > 0.0
              ? cell_size_m
              : std::max(1.0, graph.total_length() /
                                  static_cast<double>(graph.segment_count()));
  bool first = true;
  for (std::size_t s = 0; s < graph.segment_count(); ++s) {
    const auto [a, b] = graph.segment_ends(static_cast<int>(s));
    const core::Vec2 pa = graph.intersection_pos(a);
    const core::Vec2 pb = graph.intersection_pos(b);
    const std::int64_t x0 = core::grid_cell_coord(std::min(pa.x, pb.x), cell_);
    const std::int64_t x1 = core::grid_cell_coord(std::max(pa.x, pb.x), cell_);
    const std::int64_t y0 = core::grid_cell_coord(std::min(pa.y, pb.y), cell_);
    const std::int64_t y1 = core::grid_cell_coord(std::max(pa.y, pb.y), cell_);
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      for (std::int64_t cx = x0; cx <= x1; ++cx) {
        cells_[core::grid_cell_key(cx, cy)].push_back(
            static_cast<std::int32_t>(s));
      }
    }
    if (first) {
      cx_min_ = x0, cx_max_ = x1, cy_min_ = y0, cy_max_ = y1;
      first = false;
    } else {
      cx_min_ = std::min(cx_min_, x0);
      cx_max_ = std::max(cx_max_, x1);
      cy_min_ = std::min(cy_min_, y0);
      cy_max_ = std::max(cy_max_, y1);
    }
  }
}

int SegmentIndex::linear_scan(core::Vec2 pos) const {
  return graph_.segment_of_position(pos);
}

int SegmentIndex::nearest_segment(core::Vec2 pos) const {
  const std::int64_t cx = core::grid_cell_coord(pos.x, cell_);
  const std::int64_t cy = core::grid_cell_coord(pos.y, cell_);
  // Positions far outside the indexed region would walk many empty rings
  // before touching an occupied cell; the plain scan is cheaper there.
  if (cx < cx_min_ - 2 || cx > cx_max_ + 2 || cy < cy_min_ - 2 ||
      cy > cy_max_ + 2) {
    return linear_scan(pos);
  }

  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  const auto consider_cell = [&](std::int64_t x, std::int64_t y) {
    const auto it = cells_.find(core::grid_cell_key(x, y));
    if (it == cells_.end()) return;
    for (const std::int32_t s : it->second) {
      const auto [a, b] = graph_.segment_ends(s);
      const double d = core::distance_to_segment(
          pos, graph_.intersection_pos(a), graph_.intersection_pos(b));
      // Same selection rule as the linear scan: lowest id among the minima.
      // (Segments span several cells, so the same id may be evaluated twice;
      // the strict comparisons make re-evaluation harmless.)
      if (d < best_dist || (d == best_dist && s < best)) {
        best_dist = d;
        best = s;
      }
    }
  };

  // `pos` lies inside cell (cx, cy), so anything in a cell at Chebyshev ring
  // r is at least (r-1)*cell_ metres away. Stop only when the best so far is
  // *strictly* below that bound: an unvisited segment may still tie exactly
  // at the bound, and the tie must be resolved by id, not by visit order.
  const std::int64_t max_ring =
      std::max({cx - cx_min_, cx_max_ - cx, cy - cy_min_, cy_max_ - cy,
                std::int64_t{0}}) +
      1;
  for (std::int64_t r = 0; r <= max_ring; ++r) {
    if (best >= 0 && best_dist < static_cast<double>(r - 1) * cell_) break;
    if (r == 0) {
      consider_cell(cx, cy);
      continue;
    }
    for (std::int64_t x = cx - r; x <= cx + r; ++x) {
      consider_cell(x, cy - r);
      consider_cell(x, cy + r);
    }
    for (std::int64_t y = cy - r + 1; y <= cy + r - 1; ++y) {
      consider_cell(cx - r, y);
      consider_cell(cx + r, y);
    }
  }
  VANET_ASSERT_MSG(best >= 0, "segment index found no candidate");
  return best;
}

}  // namespace vanet::map
