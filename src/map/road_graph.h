// Road-network topology shared by mobility and routing.
//
// A RoadGraph is an undirected graph of intersections (2-D positions, metres)
// joined by straight road segments. It is the single source of road topology
// in a scenario: GraphMobility drives vehicles along its edges, CAR routes
// anchor paths over it, and the per-segment density oracle is indexed by its
// segment ids. Build one through the generators in map/builders.h — a
// Manhattan lattice (`make_grid`, also reachable through the legacy
// `RoadGraph(nx, ny, block)` constructor) or an edge-list CSV import
// (`load_edge_list_csv`) — or incrementally via add_intersection/add_segment.
//
// Determinism contract: intersection and segment ids are assigned in
// insertion order, adjacency lists preserve insertion order, and every query
// breaks distance ties toward the lowest id. Two builds from the same input
// are therefore bit-identical, which the golden-report digests rely on.
//
// The SegmentDensityOracle carries per-segment vehicle-count estimates. In
// the real CAR protocol these statistics are disseminated by the vehicles
// themselves; the scenario updates the oracle from ground truth once per
// second instead — a deliberate substitution that isolates the routing
// policy from the estimation error of the statistics channel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/vec2.h"

namespace vanet::map {

class RoadGraph {
 public:
  /// Empty graph; populate with add_intersection/add_segment.
  RoadGraph() = default;

  /// Manhattan lattice: `nx` x `ny` intersections spaced `block` metres
  /// apart, intersection (ix, iy) at position (ix*block, iy*block) with id
  /// iy*nx + ix. A 1 x N lattice degenerates to a single highway. Lattice
  /// graphs keep closed-form nearest-intersection lookup (see is_grid()).
  RoadGraph(int nx, int ny, double block);

  /// Append an intersection at `pos`; returns its id (insertion order).
  int add_intersection(core::Vec2 pos);

  /// Append the segment joining intersections `a` and `b`; returns its id.
  /// Asserts on self-loops, duplicate edges and out-of-range endpoints.
  /// Segment length is the Euclidean endpoint distance.
  int add_segment(int a, int b);

  int intersection_count() const { return static_cast<int>(nodes_.size()); }
  core::Vec2 intersection_pos(int idx) const;
  /// Intersection closest to `pos`; lowest id wins distance ties. O(1) on
  /// lattice graphs, O(intersections) otherwise.
  int nearest_intersection(core::Vec2 pos) const;

  std::size_t segment_count() const { return segments_.size(); }
  /// Length of segment `seg` in metres. Exactly `block` on lattice graphs.
  double segment_length(int seg) const;
  /// Endpoints (intersection indices, lower first) of segment `seg`.
  std::pair<int, int> segment_ends(int seg) const;
  /// Index of the segment joining adjacent intersections a and b; -1 if none.
  int segment_between(int a, int b) const;
  /// Segment whose geometry is closest to `pos` (exact linear scan; lowest id
  /// wins ties). For repeated queries build a map::SegmentIndex instead.
  int segment_of_position(core::Vec2 pos) const;

  /// Adjacent intersections of `idx`, sorted ascending.
  std::vector<int> neighbors_of(int idx) const;
  /// Degree of intersection `idx`.
  int degree(int idx) const;
  /// Adjacency of `idx` in insertion order: (neighbor, segment id) pairs.
  const std::vector<std::pair<int, int>>& adjacency(int idx) const;

  /// Dijkstra with per-segment cost; returns the intersection sequence from
  /// `from` to `to` (inclusive). Empty when unreachable. Negative costs are
  /// clamped to zero.
  std::vector<int> shortest_path(int from, int to,
                                 const std::function<double(int)>& cost) const;
  /// shortest_path with physical segment length as the cost.
  std::vector<int> shortest_path_by_length(int from, int to) const;

  /// True for graphs built as a lattice (ctor / make_grid): nearest
  /// intersections resolve in closed form and all segments have equal length.
  bool is_grid() const { return grid_nx_ > 0; }
  /// Lattice dimensions; only meaningful when is_grid().
  int grid_nx() const { return grid_nx_; }
  int grid_ny() const { return grid_ny_; }
  double grid_block() const { return grid_block_; }

  /// Axis-aligned bounds over all intersection positions (zero vectors for an
  /// empty graph). Used for RSU placement and the segment index extent.
  core::Vec2 bbox_min() const { return bbox_min_; }
  core::Vec2 bbox_max() const { return bbox_max_; }
  /// Sum of all segment lengths, metres.
  double total_length() const { return total_length_; }

 private:
  int add_segment_with_length(int a, int b, double length);

  std::vector<core::Vec2> nodes_;
  std::vector<std::pair<int, int>> segments_;  ///< (a, b) with a < b
  std::vector<double> lengths_;                ///< metres, parallel to segments_
  std::vector<std::vector<std::pair<int, int>>> adj_;  ///< idx -> (nbr, seg)
  core::Vec2 bbox_min_;
  core::Vec2 bbox_max_;
  double total_length_ = 0.0;
  // Lattice metadata (zero when the graph was built generally).
  int grid_nx_ = 0;
  int grid_ny_ = 0;
  double grid_block_ = 0.0;
};

/// Flags segments whose interior points cannot be trusted to identify the
/// segment uniquely: another segment crosses (or passes within `clearance_m`
/// of) the interior, or an incident segment leaves the shared intersection at
/// a near-collinear angle (|sin| < `min_sin`). On such segments a position
/// can be (near-)equidistant from two roads, so "the segment this vehicle
/// drives on" and "the segment nearest this position" may legitimately
/// disagree. The incremental density oracle (sim/scenario.cpp) only trusts a
/// mobility model's self-reported segment when it is NOT flagged here —
/// anything flagged falls back to the SegmentIndex query, which keeps the
/// incremental refresh bit-identical to the full rescan. Conservative by
/// construction: over-flagging only costs an index query, never correctness.
/// Lattice graphs flag nothing (segments meet only at right angles).
std::vector<bool> ambiguous_interior_segments(const RoadGraph& graph,
                                              double clearance_m = 0.01,
                                              double min_sin = 0.01);

/// Shared per-segment vehicle-count estimates (see header comment).
class SegmentDensityOracle {
 public:
  explicit SegmentDensityOracle(std::size_t segments) : counts_(segments, 0.0) {}

  void set_count(int seg, double vehicles);
  double count(int seg) const;
  std::size_t segments() const { return counts_.size(); }

 private:
  std::vector<double> counts_;
};

}  // namespace vanet::map
