// Road cells: a partition of a RoadGraph's segments into spatial groups.
//
// The grid-gateway protocol family partitions space into cells and elects one
// relay per cell. On the legacy axis-aligned plane a cell is a square of bare
// coordinates; on an imported map that square may contain no road at all.
// SegmentCells instead groups *segments*: each segment joins the uniform grid
// bucket its midpoint falls in, and every non-empty bucket becomes one road
// cell. A vehicle's cell is the cell of its nearest segment (via
// SegmentIndex), so cell membership follows the street a vehicle is actually
// on, not the block it happens to overfly.
//
// Each cell has a deterministic `anchor` — the centroid of its member
// segments' midpoints — playing the role the geometric cell centre plays in
// the legacy election (gateway = member closest to the anchor).
//
// Determinism: cell ids are dense and assigned in first-appearance order over
// ascending segment ids; member lists are ascending; anchors are accumulated
// in that same order. Holds a reference to the graph; must not outlive it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/vec2.h"
#include "map/road_graph.h"
#include "map/segment_index.h"

namespace vanet::map {

class SegmentCells {
 public:
  /// Partition all segments of `graph` into buckets of size `cell_m` metres
  /// (must be > 0). The graph must stay alive and unmodified.
  SegmentCells(const RoadGraph& graph, double cell_m);

  int cell_count() const { return static_cast<int>(members_.size()); }
  double cell_size() const { return cell_; }

  /// Dense cell id of segment `seg`.
  int cell_of_segment(int seg) const;

  /// Cell of the segment nearest `pos` (index must be over the same graph).
  int cell_at(core::Vec2 pos, const SegmentIndex& index) const;

  /// Centroid of the member segments' midpoints: the election reference
  /// point, and deterministic for equal inputs.
  core::Vec2 anchor(int cell) const;

  /// Member segment ids of `cell`, ascending.
  const std::vector<int>& segments_in(int cell) const;

 private:
  const RoadGraph& graph_;
  double cell_ = 1.0;
  std::vector<int> seg_cell_;               ///< segment id -> cell id
  std::vector<std::vector<int>> members_;   ///< cell id -> segment ids
  std::vector<core::Vec2> anchors_;         ///< cell id -> anchor point
};

}  // namespace vanet::map
