// Uniform-grid spatial index over the segments of a RoadGraph.
//
// Answers "which road segment is closest to this position?" without the
// O(segments) scan of RoadGraph::segment_of_position. Each segment is
// registered in every cell its bounding box overlaps; a query expands square
// rings of cells around the query position until the best candidate provably
// beats everything in the unvisited rings.
//
// Exactness contract: nearest_segment(pos) returns *bit-identically* the same
// segment id as RoadGraph::segment_of_position(pos) — same distance function
// (core::distance_to_segment on the same endpoint values) and the same
// tie-break (lowest segment id among the global minima). The scenario's
// density updates run through this index, so the contract is what keeps the
// golden-report digests of grid scenarios unchanged; a property test
// (RoadGraph.SegmentIndexMatchesLinearScan) enforces it against the brute
// force. The index holds a reference to the graph and must not outlive it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/vec2.h"
#include "map/road_graph.h"

namespace vanet::map {

class SegmentIndex {
 public:
  /// Build over all segments of `graph` (which must stay alive and
  /// unmodified). `cell_size_m` <= 0 picks the mean segment length.
  explicit SegmentIndex(const RoadGraph& graph, double cell_size_m = 0.0);

  /// Segment closest to `pos`; ties resolve to the lowest segment id.
  /// Exactly equal to graph().segment_of_position(pos).
  int nearest_segment(core::Vec2 pos) const;

  const RoadGraph& graph() const { return graph_; }
  double cell_size() const { return cell_; }

 private:
  int linear_scan(core::Vec2 pos) const;

  const RoadGraph& graph_;
  double cell_ = 1.0;
  /// Packed cell coordinate -> segment ids whose bbox overlaps the cell.
  std::unordered_map<std::int64_t, std::vector<std::int32_t>> cells_;
  // Cell-coordinate bounds of the occupied region, for ring-count capping.
  std::int64_t cx_min_ = 0, cx_max_ = 0, cy_min_ = 0, cy_max_ = 0;
};

}  // namespace vanet::map
