// RoadGraph builders: lattice generator and edge-list CSV import/export.
//
// The CSV schema is a plain edge list with explicit node positions:
//
//   # comment and blank lines are skipped
//   node,<id>,<x_m>,<y_m>
//   edge,<node_a>,<node_b>
//
// Node ids must be the dense range 0..N-1, each declared exactly once;
// records may appear in any order (the file is validated as a whole).
// Edges join two distinct declared nodes and may not repeat. Every
// node must have at least one edge — GraphMobility has no way to leave an
// isolated intersection. Segment ids are assigned in edge-record order and
// segment lengths are the Euclidean node distances, so a file loads to a
// bit-identical graph on every platform. load/save round-trip exactly
// (MapIo.CsvRoundTrip).
#pragma once

#include <iosfwd>
#include <string>

#include "map/road_graph.h"

namespace vanet::map {

/// Manhattan lattice: `nx` x `ny` intersections spaced `block` metres apart.
/// The generator behind MobilityKind::kManhattan scenarios and the grid map
/// source; equivalent to RoadGraph(nx, ny, block).
RoadGraph make_grid(int nx, int ny, double block);

/// Parse the edge-list CSV schema above. Throws std::runtime_error naming the
/// offending line for malformed records, non-dense/duplicate node ids,
/// unknown or repeated edges, self-loops, isolated nodes, or a graph with
/// fewer than two intersections.
RoadGraph load_edge_list_csv(std::istream& in);
RoadGraph load_edge_list_csv_file(const std::string& path);

/// Write `graph` in the same schema (nodes ascending, then edges in segment
/// order). load(save(g)) reproduces g exactly.
void save_edge_list_csv(const RoadGraph& graph, std::ostream& out);
void save_edge_list_csv_file(const RoadGraph& graph, const std::string& path);

}  // namespace vanet::map
