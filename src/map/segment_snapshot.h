// Per-node nearest-segment snapshot: one SegmentIndex query per position
// change instead of one per packet.
//
// The route-geometry protocols resolve node positions to road segments
// constantly — corridor admission, corridor-cache refresh, grid-cell
// residency — but a node's position only changes on mobility ticks, so
// within a tick every query for the same node returns the same segment. The
// snapshot caches (position, segment) per node id and serves repeat queries
// by bit-equality of the position: the caller passes the node's CURRENT
// position (the tick-aligned value the Network position cache holds), and a
// cached entry whose stored position is bit-equal answers without touching
// the index. Because SegmentIndex::nearest_segment is a pure function of the
// position bits, a hit is bit-identical to a fresh query by construction —
// this cache can never move a digest. (±0.0 compare equal but also map to
// the same segment, so the == comparison is safe.)
//
// A `Prover` hook lets graph mobility skip even the first query per tick:
// GraphMobility::reported_segment knows which segment it is driving a
// vehicle along and returns it when that knowledge is unambiguous (interior
// of a segment no other segment overlaps), or -1 otherwise. The contract is
// the same as everywhere else in the repo: a non-negative prover answer MUST
// equal nearest_segment(pos).
//
// Ownership: one instance per Scenario (like the lifetime memo),
// single-threaded by the scenario's threading contract, shared across that
// scenario's protocol instances via ProtocolContext. Do NOT feed it
// extrapolated positions (e.g. HelloNeighbor::predicted_pos between ticks):
// those are not "the node's current position" and would poison the entry —
// callers with extrapolated geometry keep querying the index directly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/vec2.h"
#include "map/segment_index.h"

namespace vanet::map {

class SegmentSnapshot {
 public:
  /// Answers "which segment is node `id` on, given it is at `pos`?" without
  /// consulting the index: return the segment id when provably known, -1 to
  /// decline. Non-negative answers MUST equal index.nearest_segment(pos).
  using Prover = std::function<int(std::uint32_t id, core::Vec2 pos)>;

  struct Stats {
    std::uint64_t queries = 0;        ///< total segment_of() calls
    std::uint64_t hits = 0;           ///< served from the per-node entry
    std::uint64_t proven = 0;         ///< misses answered by the prover
    std::uint64_t index_queries = 0;  ///< misses that hit the SegmentIndex
  };

  /// `index` must outlive the snapshot.
  explicit SegmentSnapshot(const SegmentIndex& index) : index_{index} {}

  /// Install the mobility-side prover (optional; see class comment).
  void set_prover(Prover prover) { prover_ = std::move(prover); }

  /// Nearest segment to `pos`, which must be node `id`'s current
  /// (tick-aligned) position. Bit-identical to
  /// index().nearest_segment(pos), served from cache when `id` has not
  /// moved since the last call.
  int segment_of(std::uint32_t id, core::Vec2 pos);

  const SegmentIndex& index() const { return index_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    core::Vec2 pos;
    int seg = -1;
  };

  const SegmentIndex& index_;
  Prover prover_;
  std::vector<Entry> entries_;  ///< indexed by node id, grown on demand
  Stats stats_;
};

}  // namespace vanet::map
