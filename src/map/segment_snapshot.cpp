#include "map/segment_snapshot.h"

namespace vanet::map {

int SegmentSnapshot::segment_of(std::uint32_t id, core::Vec2 pos) {
  ++stats_.queries;
  if (id >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(id) + 1);
  }
  Entry& e = entries_[id];
  if (e.seg >= 0 && e.pos == pos) {
    ++stats_.hits;
    return e.seg;
  }
  int seg = prover_ ? prover_(id, pos) : -1;
  if (seg >= 0) {
    ++stats_.proven;
  } else {
    ++stats_.index_queries;
    seg = index_.nearest_segment(pos);
  }
  e.pos = pos;
  e.seg = seg;
  return seg;
}

}  // namespace vanet::map
