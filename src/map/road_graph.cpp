#include "map/road_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/assert.h"

namespace vanet::map {

RoadGraph::RoadGraph(int nx, int ny, double block) {
  VANET_ASSERT(nx >= 1 && ny >= 1 && (nx >= 2 || ny >= 2));
  VANET_ASSERT(block > 0.0);
  grid_nx_ = nx;
  grid_ny_ = ny;
  grid_block_ = block;
  const auto index_of = [nx](int ix, int iy) { return iy * nx + ix; };
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      add_intersection({static_cast<double>(ix) * block,
                        static_cast<double>(iy) * block});
    }
  }
  // Segment enumeration order is load-bearing (density-oracle ids, digest
  // stability): per intersection, the +x segment precedes the +y segment.
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      if (ix + 1 < nx) {
        // Lattice segments have exactly `block` length by construction;
        // storing it verbatim avoids FP drift from (ix+1)*b - ix*b.
        add_segment_with_length(index_of(ix, iy), index_of(ix + 1, iy), block);
      }
      if (iy + 1 < ny) {
        add_segment_with_length(index_of(ix, iy), index_of(ix, iy + 1), block);
      }
    }
  }
}

int RoadGraph::add_intersection(core::Vec2 pos) {
  if (nodes_.empty()) {
    bbox_min_ = bbox_max_ = pos;
  } else {
    bbox_min_ = {std::min(bbox_min_.x, pos.x), std::min(bbox_min_.y, pos.y)};
    bbox_max_ = {std::max(bbox_max_.x, pos.x), std::max(bbox_max_.y, pos.y)};
  }
  nodes_.push_back(pos);
  adj_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

int RoadGraph::add_segment(int a, int b) {
  VANET_ASSERT(a >= 0 && a < intersection_count());
  VANET_ASSERT(b >= 0 && b < intersection_count());
  return add_segment_with_length(a, b, (nodes_[static_cast<std::size_t>(a)] -
                                        nodes_[static_cast<std::size_t>(b)])
                                           .norm());
}

int RoadGraph::add_segment_with_length(int a, int b, double length) {
  VANET_ASSERT_MSG(a != b, "road segment must join distinct intersections");
  VANET_ASSERT_MSG(segment_between(a, b) == -1, "duplicate road segment");
  VANET_ASSERT(length > 0.0);
  const int seg = static_cast<int>(segments_.size());
  segments_.emplace_back(std::min(a, b), std::max(a, b));
  lengths_.push_back(length);
  total_length_ += length;
  adj_[static_cast<std::size_t>(a)].emplace_back(b, seg);
  adj_[static_cast<std::size_t>(b)].emplace_back(a, seg);
  return seg;
}

core::Vec2 RoadGraph::intersection_pos(int idx) const {
  VANET_ASSERT(idx >= 0 && idx < intersection_count());
  return nodes_[static_cast<std::size_t>(idx)];
}

int RoadGraph::nearest_intersection(core::Vec2 pos) const {
  VANET_ASSERT_MSG(!nodes_.empty(), "nearest_intersection on empty graph");
  if (is_grid()) {
    // Closed form on lattices: clamp the rounded lattice coordinates.
    const int ix = std::clamp(
        static_cast<int>(std::lround(pos.x / grid_block_)), 0, grid_nx_ - 1);
    const int iy = std::clamp(
        static_cast<int>(std::lround(pos.y / grid_block_)), 0, grid_ny_ - 1);
    return iy * grid_nx_ + ix;
  }
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double d = (nodes_[i] - pos).norm_sq();
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

double RoadGraph::segment_length(int seg) const {
  return lengths_.at(static_cast<std::size_t>(seg));
}

std::pair<int, int> RoadGraph::segment_ends(int seg) const {
  return segments_.at(static_cast<std::size_t>(seg));
}

int RoadGraph::segment_between(int a, int b) const {
  for (const auto& [nbr, seg] : adj_.at(static_cast<std::size_t>(a))) {
    if (nbr == b) return seg;
  }
  return -1;
}

int RoadGraph::segment_of_position(core::Vec2 pos) const {
  VANET_ASSERT_MSG(!segments_.empty(), "segment_of_position on empty graph");
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto [a, b] = segments_[s];
    const double d = core::distance_to_segment(pos, intersection_pos(a),
                                               intersection_pos(b));
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(s);
    }
  }
  return best;
}

std::vector<int> RoadGraph::neighbors_of(int idx) const {
  std::vector<int> out;
  for (const auto& [nbr, seg] : adj_.at(static_cast<std::size_t>(idx))) {
    out.push_back(nbr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int RoadGraph::degree(int idx) const {
  return static_cast<int>(adj_.at(static_cast<std::size_t>(idx)).size());
}

const std::vector<std::pair<int, int>>& RoadGraph::adjacency(int idx) const {
  return adj_.at(static_cast<std::size_t>(idx));
}

std::vector<int> RoadGraph::shortest_path(
    int from, int to, const std::function<double(int)>& cost) const {
  const int n = intersection_count();
  VANET_ASSERT(from >= 0 && from < n && to >= 0 && to < n);
  std::vector<double> dist(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::infinity());
  std::vector<int> prev(static_cast<std::size_t>(n), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(from)] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == to) break;
    for (const auto& [v, seg] : adj_[static_cast<std::size_t>(u)]) {
      const double w = std::max(0.0, cost(seg));
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        prev[static_cast<std::size_t>(v)] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (!std::isfinite(dist[static_cast<std::size_t>(to)])) return {};
  std::vector<int> path;
  for (int v = to; v != -1; v = prev[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != from) return {};
  return path;
}

std::vector<int> RoadGraph::shortest_path_by_length(int from, int to) const {
  return shortest_path(from, to, [this](int seg) { return segment_length(seg); });
}

namespace {

/// True when the open interiors of [a1,b1] and [a2,b2] properly cross.
/// Collinear / endpoint-touching cases return false — those are handled by
/// the distance and angle tests in the caller, which are conservative.
bool segments_properly_cross(core::Vec2 a1, core::Vec2 b1, core::Vec2 a2,
                             core::Vec2 b2) {
  const auto side = [](core::Vec2 p, core::Vec2 q, core::Vec2 r) {
    return (q - p).cross(r - p);
  };
  const double d1 = side(a2, b2, a1);
  const double d2 = side(a2, b2, b1);
  const double d3 = side(a1, b1, a2);
  const double d4 = side(a1, b1, b2);
  return ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0)) &&
         ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0));
}

/// Min distance between the closed segments (0 when they properly cross).
double segment_segment_distance(core::Vec2 a1, core::Vec2 b1, core::Vec2 a2,
                                core::Vec2 b2) {
  if (segments_properly_cross(a1, b1, a2, b2)) return 0.0;
  return std::min(std::min(core::distance_to_segment(a1, a2, b2),
                           core::distance_to_segment(b1, a2, b2)),
                  std::min(core::distance_to_segment(a2, a1, b1),
                           core::distance_to_segment(b2, a1, b1)));
}

}  // namespace

std::vector<bool> ambiguous_interior_segments(const RoadGraph& graph,
                                              double clearance_m,
                                              double min_sin) {
  const std::size_t n = graph.segment_count();
  std::vector<bool> flagged(n, false);
  std::vector<core::Vec2> pa(n), pb(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto [a, b] = graph.segment_ends(static_cast<int>(s));
    pa[s] = graph.intersection_pos(a);
    pb[s] = graph.intersection_pos(b);
  }
  for (std::size_t s = 0; s < n; ++s) {
    const auto [sa, sb] = graph.segment_ends(static_cast<int>(s));
    for (std::size_t t = s + 1; t < n; ++t) {
      // Inflated-bbox prefilter: pairs further apart than the clearance can
      // never tie a query within it.
      if (std::min(pa[s].x, pb[s].x) > std::max(pa[t].x, pb[t].x) + clearance_m ||
          std::min(pa[t].x, pb[t].x) > std::max(pa[s].x, pb[s].x) + clearance_m ||
          std::min(pa[s].y, pb[s].y) > std::max(pa[t].y, pb[t].y) + clearance_m ||
          std::min(pa[t].y, pb[t].y) > std::max(pa[s].y, pb[s].y) + clearance_m) {
        continue;
      }
      const auto [ta, tb] = graph.segment_ends(static_cast<int>(t));
      bool conflict = false;
      const int shared = (sa == ta || sa == tb) ? sa
                         : (sb == ta || sb == tb) ? sb
                                                  : -1;
      if (shared >= 0) {
        // Incident pair: only a near-collinear departure *on the same side*
        // lets one segment's interior shadow the other (overlap). A straight
        // road continuing through the intersection (opposite sides, dot < 0)
        // is safe: an interior point of one segment keeps the full distance
        // to the shared node from the other. Right-angle lattices never
        // trigger either branch.
        const core::Vec2 p = graph.intersection_pos(shared);
        const core::Vec2 u = (graph.intersection_pos(sa == shared ? sb : sa) - p)
                                 .normalized();
        const core::Vec2 v = (graph.intersection_pos(ta == shared ? tb : ta) - p)
                                 .normalized();
        conflict = std::abs(u.cross(v)) < min_sin && u.dot(v) > 0.0;
        // A far endpoint sitting on (or hugging) the other segment's interior
        // is a T-junction modelled without a node — also ambiguous.
        if (!conflict) {
          const core::Vec2 s_far = graph.intersection_pos(sa == shared ? sb : sa);
          const core::Vec2 t_far = graph.intersection_pos(ta == shared ? tb : ta);
          conflict = core::distance_to_segment(s_far, pa[t], pb[t]) < clearance_m ||
                     core::distance_to_segment(t_far, pa[s], pb[s]) < clearance_m;
        }
      } else {
        conflict =
            segment_segment_distance(pa[s], pb[s], pa[t], pb[t]) < clearance_m;
      }
      if (conflict) {
        flagged[s] = true;
        flagged[t] = true;
      }
    }
  }
  return flagged;
}

void SegmentDensityOracle::set_count(int seg, double vehicles) {
  counts_.at(static_cast<std::size_t>(seg)) = vehicles;
}

double SegmentDensityOracle::count(int seg) const {
  return counts_.at(static_cast<std::size_t>(seg));
}

}  // namespace vanet::map
