#include "map/segment_cells.h"

#include "core/assert.h"
#include "core/grid_key.h"

namespace vanet::map {

SegmentCells::SegmentCells(const RoadGraph& graph, double cell_m)
    : graph_{graph}, cell_{cell_m} {
  VANET_ASSERT_MSG(cell_ > 0.0, "road cell size must be positive");
  VANET_ASSERT_MSG(graph.segment_count() > 0, "road cells over an empty graph");
  std::unordered_map<std::int64_t, int> bucket_cell;
  seg_cell_.resize(graph.segment_count());
  for (std::size_t s = 0; s < graph.segment_count(); ++s) {
    const auto [a, b] = graph.segment_ends(static_cast<int>(s));
    const core::Vec2 mid =
        (graph.intersection_pos(a) + graph.intersection_pos(b)) / 2.0;
    const std::int64_t key =
        core::grid_cell_key(core::grid_cell_coord(mid.x, cell_),
                            core::grid_cell_coord(mid.y, cell_));
    auto [it, fresh] = bucket_cell.try_emplace(key, cell_count());
    if (fresh) {
      members_.emplace_back();
      anchors_.push_back({0.0, 0.0});
    }
    const int cell = it->second;
    seg_cell_[s] = cell;
    members_[static_cast<std::size_t>(cell)].push_back(static_cast<int>(s));
    anchors_[static_cast<std::size_t>(cell)] += mid;
  }
  for (std::size_t c = 0; c < members_.size(); ++c) {
    anchors_[c] = anchors_[c] / static_cast<double>(members_[c].size());
  }
}

int SegmentCells::cell_of_segment(int seg) const {
  return seg_cell_.at(static_cast<std::size_t>(seg));
}

int SegmentCells::cell_at(core::Vec2 pos, const SegmentIndex& index) const {
  VANET_ASSERT_MSG(&index.graph() == &graph_,
                   "segment index built over a different graph");
  return cell_of_segment(index.nearest_segment(pos));
}

core::Vec2 SegmentCells::anchor(int cell) const {
  return anchors_.at(static_cast<std::size_t>(cell));
}

const std::vector<int>& SegmentCells::segments_in(int cell) const {
  return members_.at(static_cast<std::size_t>(cell));
}

}  // namespace vanet::map
