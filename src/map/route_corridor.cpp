#include "map/route_corridor.h"

#include <algorithm>
#include <limits>

#include "core/assert.h"

namespace vanet::map {
namespace {

// Pre-reject slack. The axis gaps to a bounding box are computed with a
// handful of subtractions/multiplications, each exact to 0.5 ulp, while the
// exact test compares a norm() (sqrt of a dot product). Inflating the
// half-width budget by ~1e-12 relative makes the box test err only on the
// keep-the-candidate side, so skipping is provably safe — the same idiom as
// kAxisSlack in net/channel_state.cpp.
constexpr double kBoxSlack = 1.0 + 1e-12;

// Squared axis-distance from `pos` to the box [lo, hi] (0 inside).
double box_gap_sq(core::Vec2 pos, core::Vec2 lo, core::Vec2 hi) {
  const double dx = std::max({0.0, lo.x - pos.x, pos.x - hi.x});
  const double dy = std::max({0.0, lo.y - pos.y, pos.y - hi.y});
  return dx * dx + dy * dy;
}

}  // namespace

void RouteCorridor::add_segment(int seg) {
  if (std::find(segments_.begin(), segments_.end(), seg) != segments_.end()) {
    return;
  }
  const auto [ia, ib] = graph_->segment_ends(seg);
  const core::Vec2 a = graph_->intersection_pos(ia);
  const core::Vec2 b = graph_->intersection_pos(ib);
  if (segments_.empty()) {
    bbox_min_ = bbox_max_ = a;
  }
  bbox_min_.x = std::min({bbox_min_.x, a.x, b.x});
  bbox_min_.y = std::min({bbox_min_.y, a.y, b.y});
  bbox_max_.x = std::max({bbox_max_.x, a.x, b.x});
  bbox_max_.y = std::max({bbox_max_.y, a.y, b.y});
  segments_.push_back(seg);
  ends_.push_back({a, b});
  length_ += graph_->segment_length(seg);
}

int RouteCorridor::entry_intersection(const RoadGraph& graph, int segment,
                                      core::Vec2 pos) {
  const auto [a, b] = graph.segment_ends(segment);  // a < b
  const double da = (graph.intersection_pos(a) - pos).norm_sq();
  const double db = (graph.intersection_pos(b) - pos).norm_sq();
  return da <= db ? a : b;
}

RouteCorridor RouteCorridor::between(const RoadGraph& graph,
                                     const SegmentIndex& index, core::Vec2 src,
                                     core::Vec2 dst) {
  return between(graph, index, src, dst, -1, -1);
}

RouteCorridor RouteCorridor::between(const RoadGraph& graph,
                                     const SegmentIndex& index, core::Vec2 src,
                                     core::Vec2 dst, int src_seg,
                                     int dst_seg) {
  VANET_ASSERT_MSG(&index.graph() == &graph,
                   "segment index built over a different graph");
  RouteCorridor c;
  c.graph_ = &graph;
  if (src_seg < 0) src_seg = index.nearest_segment(src);
  if (dst_seg < 0) dst_seg = index.nearest_segment(dst);
  const std::vector<int> route =
      graph.shortest_path_by_length(entry_intersection(graph, src_seg, src),
                                    entry_intersection(graph, dst_seg, dst));
  c.route_found_ = !route.empty();
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    c.add_segment(graph.segment_between(route[i], route[i + 1]));
  }
  // Mid-block endpoints must be inside their own corridor even when the
  // route enters the graph at the far end of their street.
  c.add_segment(src_seg);
  c.add_segment(dst_seg);
  return c;
}

double RouteCorridor::distance_to(core::Vec2 pos) const {
  double best = std::numeric_limits<double>::infinity();
  for (const SegEnds& e : ends_) {
    best = std::min(best, core::distance_to_segment(pos, e.a, e.b));
  }
  return best;
}

bool RouteCorridor::contains(core::Vec2 pos, double half_width) const {
  if (ends_.empty()) return false;
  const double budget_sq = half_width * half_width * kBoxSlack;
  if (box_gap_sq(pos, bbox_min_, bbox_max_) > budget_sq) return false;
  for (const SegEnds& e : ends_) {
    const core::Vec2 lo{std::min(e.a.x, e.b.x), std::min(e.a.y, e.b.y)};
    const core::Vec2 hi{std::max(e.a.x, e.b.x), std::max(e.a.y, e.b.y)};
    if (box_gap_sq(pos, lo, hi) > budget_sq) continue;
    if (core::distance_to_segment(pos, e.a, e.b) <= half_width) return true;
  }
  return false;
}

}  // namespace vanet::map
