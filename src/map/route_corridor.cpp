#include "map/route_corridor.h"

#include <algorithm>
#include <limits>

#include "core/assert.h"

namespace vanet::map {

void RouteCorridor::add_segment(int seg) {
  if (std::find(segments_.begin(), segments_.end(), seg) != segments_.end()) {
    return;
  }
  segments_.push_back(seg);
  length_ += graph_->segment_length(seg);
}

int RouteCorridor::entry_intersection(const RoadGraph& graph, int segment,
                                      core::Vec2 pos) {
  const auto [a, b] = graph.segment_ends(segment);  // a < b
  const double da = (graph.intersection_pos(a) - pos).norm_sq();
  const double db = (graph.intersection_pos(b) - pos).norm_sq();
  return da <= db ? a : b;
}

RouteCorridor RouteCorridor::between(const RoadGraph& graph,
                                     const SegmentIndex& index, core::Vec2 src,
                                     core::Vec2 dst) {
  VANET_ASSERT_MSG(&index.graph() == &graph,
                   "segment index built over a different graph");
  RouteCorridor c;
  c.graph_ = &graph;
  const int src_seg = index.nearest_segment(src);
  const int dst_seg = index.nearest_segment(dst);
  const std::vector<int> route =
      graph.shortest_path_by_length(entry_intersection(graph, src_seg, src),
                                    entry_intersection(graph, dst_seg, dst));
  c.route_found_ = !route.empty();
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    c.add_segment(graph.segment_between(route[i], route[i + 1]));
  }
  // Mid-block endpoints must be inside their own corridor even when the
  // route enters the graph at the far end of their street.
  c.add_segment(src_seg);
  c.add_segment(dst_seg);
  return c;
}

double RouteCorridor::distance_to(core::Vec2 pos) const {
  double best = std::numeric_limits<double>::infinity();
  for (const int seg : segments_) {
    const auto [a, b] = graph_->segment_ends(seg);
    best = std::min(best,
                    core::distance_to_segment(pos, graph_->intersection_pos(a),
                                              graph_->intersection_pos(b)));
  }
  return best;
}

}  // namespace vanet::map
