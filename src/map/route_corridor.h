// Road-route corridors: the map query the geometry protocols forward along.
//
// A RouteCorridor is the set of road segments on the length-shortest graph
// route between two positions — the road-network analogue of the straight
// src→dst line the zone/grid protocols historically flooded around. On an
// imported (non-lattice) map a straight-line corridor cuts across blocks with
// no roads in them; the route corridor follows streets that actually connect
// the endpoints, so "inside the corridor" means "near a road that leads
// there".
//
// Construction (`between`): resolve each position to its nearest segment
// (grid-indexed — no O(intersections) scan) and enter the graph at that
// street's closer endpoint (`entry_intersection`), run Dijkstra over physical
// segment lengths between the two entries, and collect the route's segments
// plus the endpoint segments themselves (so positions mid-block are always
// covered by their own street). When the endpoints live in different graph
// components there is no route — `route_found()` is false and callers fall
// back to their legacy straight-line geometry.
//
// Determinism: segment order is route order (endpoint segments appended), all
// queries inherit the lowest-id tie-breaks of RoadGraph/SegmentIndex, and the
// corridor holds only segment ids — two builds from equal inputs are
// bit-identical. The corridor references the graph and must not outlive it.
//
// Admission cost: `contains` is the per-RREQ hot call of the route-geometry
// protocols (one test per received flood copy). It short-circuits through a
// corridor-level bounding box and per-segment boxes before any exact
// point-to-segment distance, with conservative slack so the boolean answer
// is exactly `distance_to(pos) <= half_width` — the same contract
// `distance_to` (kept exact, no prefilter) verifies in the property tests.
#pragma once

#include <vector>

#include "core/vec2.h"
#include "map/road_graph.h"
#include "map/segment_index.h"

namespace vanet::map {

class RouteCorridor {
 public:
  /// Empty corridor; distance_to() is infinite and route_found() is false.
  RouteCorridor() = default;

  /// Corridor between `src` and `dst` (see header comment). `graph` must be
  /// the graph `index` was built over and must outlive the corridor.
  static RouteCorridor between(const RoadGraph& graph, const SegmentIndex& index,
                               core::Vec2 src, core::Vec2 dst);

  /// Same corridor, with the endpoint segments already resolved by the
  /// caller (a SegmentSnapshot hit or a segment id stamped into a packet
  /// header). A negative id falls back to the index query; a non-negative id
  /// MUST equal index.nearest_segment of the matching position, so both
  /// overloads build bit-identical corridors.
  static RouteCorridor between(const RoadGraph& graph, const SegmentIndex& index,
                               core::Vec2 src, core::Vec2 dst, int src_seg,
                               int dst_seg);

  /// Where a position enters the graph: the endpoint of `segment` closer to
  /// `pos` (lower intersection id on exact ties). Cheap — two distance
  /// computations — which is what lets CorridorCache detect endpoint
  /// migration per packet without scanning the graph.
  static int entry_intersection(const RoadGraph& graph, int segment,
                                core::Vec2 pos);

  /// False when the endpoints are in different graph components (the
  /// corridor then holds only the two endpoint segments) or default-built.
  bool route_found() const { return route_found_; }

  /// Corridor segment ids: route order, then endpoint segments not already on
  /// the route.
  const std::vector<int>& segments() const { return segments_; }

  /// Distance from `pos` to the nearest corridor segment; infinity when the
  /// corridor is empty. Always exact — no prefilter.
  double distance_to(core::Vec2 pos) const;

  /// Exactly distance_to(pos) <= half_width, but served through bounding-box
  /// pre-rejects and an early-exit scan (see header comment).
  bool contains(core::Vec2 pos, double half_width) const;

  /// Sum of corridor segment lengths, metres.
  double length() const { return length_; }

 private:
  void add_segment(int seg);

  const RoadGraph* graph_ = nullptr;
  std::vector<int> segments_;
  /// Endpoint positions of segments_[i], cached at build so admission never
  /// re-derives them through RoadGraph per query.
  struct SegEnds {
    core::Vec2 a, b;
  };
  std::vector<SegEnds> ends_;
  // Axis-aligned bounds over all cached endpoints (empty corridor: min > max).
  core::Vec2 bbox_min_{1.0, 1.0};
  core::Vec2 bbox_max_{0.0, 0.0};
  double length_ = 0.0;
  bool route_found_ = false;
};

}  // namespace vanet::map
