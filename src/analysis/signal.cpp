#include "analysis/signal.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::analysis {

double path_loss_db(double d, const LogNormalParams& p) {
  const double dist = std::max(d, p.ref_distance_m);
  return p.ref_loss_db +
         10.0 * p.path_loss_exponent * std::log10(dist / p.ref_distance_m);
}

double mean_rx_dbm(double d, const LogNormalParams& p) {
  return p.tx_power_dbm - path_loss_db(d, p);
}

double receipt_probability(double d, const LogNormalParams& p) {
  VANET_ASSERT(p.shadowing_sigma_db >= 0.0);
  if (p.shadowing_sigma_db == 0.0) {
    return mean_rx_dbm(d, p) >= p.rx_threshold_dbm ? 1.0 : 0.0;
  }
  return normal_cdf((mean_rx_dbm(d, p) - p.rx_threshold_dbm) /
                    p.shadowing_sigma_db);
}

namespace {
/// Distance where mean_rx equals `level`.
double range_for_level(const LogNormalParams& p, double level) {
  const double budget_db = p.tx_power_dbm - p.ref_loss_db - level;
  if (budget_db <= 0.0) return p.ref_distance_m;
  return p.ref_distance_m *
         std::pow(10.0, budget_db / (10.0 * p.path_loss_exponent));
}
}  // namespace

double nominal_range(const LogNormalParams& p) {
  return range_for_level(p, p.rx_threshold_dbm);
}

double max_range(const LogNormalParams& p, double k_sigma) {
  return range_for_level(p, p.rx_threshold_dbm - k_sigma * p.shadowing_sigma_db);
}

}  // namespace vanet::analysis
