// Velocity-direction analysis (Sec. IV-A.2, Fig. 4).
//
// The paper decomposes the velocities of two vehicles a and b onto the line
// through their positions ("horizontal") and its perpendicular ("vertical").
// The vehicles move in the same direction when both pairs of projections
// agree in sign: v_ah * v_bh > 0 and v_av * v_bv > 0.
//
// Also provides the Taleb-style velocity-vector grouping (vehicles are binned
// into four groups by heading) used by the mobility-based protocols.
#pragma once

#include "core/vec2.h"

namespace vanet::analysis {

/// Projections of both velocities onto the a->b axis (`along`) and its
/// perpendicular (`perp`), per Fig. 4.
struct DirectionDecomposition {
  double a_along = 0.0;
  double b_along = 0.0;
  double a_perp = 0.0;
  double b_perp = 0.0;
};

/// Decompose velocities onto the line through `pos_a` -> `pos_b`.
/// Precondition: the two positions are distinct.
DirectionDecomposition decompose(core::Vec2 pos_a, core::Vec2 pos_b,
                                 core::Vec2 vel_a, core::Vec2 vel_b);

/// The paper's same-direction test: both projection products positive.
/// Zero projections (e.g. a parked vehicle) count as "not same direction".
bool same_direction(const DirectionDecomposition& d);
bool same_direction(core::Vec2 pos_a, core::Vec2 pos_b, core::Vec2 vel_a,
                    core::Vec2 vel_b);

/// A relaxed variant used by routing policies: headings within `max_angle_rad`
/// of each other (ignores positions). Stationary vehicles match everything.
bool similar_heading(core::Vec2 vel_a, core::Vec2 vel_b, double max_angle_rad);

/// Taleb-style grouping: bins a velocity vector into one of four groups by
/// heading quadrant (+x, +y, -x, -y dominant). Stationary vehicles map to
/// group of their last heading via the zero vector convention: group 0.
int velocity_group(core::Vec2 vel);

}  // namespace vanet::analysis
