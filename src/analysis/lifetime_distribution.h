// Stochastic link-lifetime model (Sec. VII-A; premise of GVGrid and Yan).
//
// Assume the relative speed of two vehicles is a constant Delta-v drawn from
// N(mu, sigma^2) — "speed ... often assumed as normally distributed". With
// signed initial separation d0 in (-r, r), each realization's separation
// d(t) = d0 + Dv * t is linear, so the link-alive indicator is monotone and
//   S(t) = P(T > t) = P(-r < d0 + Dv t < r)
//        = Phi((r - d0 - mu t)/(sigma t)) - Phi((-r - d0 - mu t)/(sigma t)).
// Expected lifetime, survival and quantiles follow from S(t). This is the
// "expected link duration" (Yan) and the link-reliability probability
// (GVGrid, NiuDe / Rubin-style availability) in one object.
#pragma once

namespace vanet::analysis {

class LinkLifetimeDistribution {
 public:
  /// Preconditions: r > 0, |d0| < r, sigma >= 0.
  LinkLifetimeDistribution(double r, double d0, double mu_dv, double sigma_dv);

  /// P(link still alive at time t). S(0) = 1; monotone non-increasing.
  double survival(double t) const;

  /// Truncated expectation E[min(T, horizon)] = integral of S over
  /// [0, horizon]. The truncation matters: whenever the relative-speed
  /// distribution has mass near zero, S(t) decays like 1/t and the untruncated
  /// mean diverges logarithmically — routing only needs a bounded ranking
  /// value. (sigma == 0 and mu == 0 returns horizon.)
  double expected_lifetime(double horizon = 3600.0) const;

  /// Smallest t with survival(t) <= 1 - q, by bisection. q in (0, 1).
  double quantile(double q) const;

  double range() const { return r_; }
  double initial_separation() const { return d0_; }

 private:
  double r_;
  double d0_;
  double mu_;
  double sigma_;
};

}  // namespace vanet::analysis
