// Road-segment connectivity probability (Sec. VII-B, CAR's model).
//
// CAR partitions each road segment into 5 m grid cells (one car length) and
// scores the segment by the probability that consecutive vehicles are within
// transmission range of each other. With Poisson traffic of linear density
// lambda (veh/m), inter-vehicle gaps are Exp(lambda), so a single gap is
// bridgeable with probability 1 - exp(-lambda r), and a segment expected to
// hold n gaps connects end-to-end with probability (1 - exp(-lambda r))^n.
// We also provide the exact empirical check on observed positions.
#pragma once

#include <vector>

namespace vanet::analysis {

/// P(one Exp(lambda) gap <= r).
double gap_bridgeable_probability(double lambda_veh_per_m, double range_m);

/// Analytic end-to-end connectivity of a `length_m` segment under Poisson
/// traffic: (1 - e^{-lambda r})^{E[#gaps]} with E[#gaps] = lambda * length.
double segment_connectivity_probability(double lambda_veh_per_m, double length_m,
                                        double range_m);

/// Exact empirical connectivity: true iff every consecutive gap of the
/// sorted positions is <= range, and the ends of the segment are covered
/// within range (i.e., a message can enter at 0 and leave at length).
bool empirical_segment_connected(std::vector<double> positions_m,
                                 double length_m, double range_m);

/// Largest gap between consecutive positions (including virtual endpoints at
/// 0 and length); the segment is connected iff this is <= range.
double max_gap(std::vector<double> positions_m, double length_m);

}  // namespace vanet::analysis
