#include "analysis/link_lifetime.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/assert.h"

namespace vanet::analysis {

namespace {

/// Time at which the speed saturates (hits 0 or v_max); infinity if never.
double saturation_time(const Kinematics1D& k, double v_max) {
  if (k.a > 0.0) {
    if (k.v >= v_max) return 0.0;
    return (v_max - k.v) / k.a;
  }
  if (k.a < 0.0) {
    if (k.v <= 0.0) return 0.0;
    return -k.v / k.a;
  }
  return kInfiniteLifetime;
}

/// State after `t` seconds with saturation applied.
Kinematics1D state_at(const Kinematics1D& k, double t, double v_max) {
  const double ts = saturation_time(k, v_max);
  if (t < ts) return {k.v + k.a * t, k.a};
  return {k.a > 0.0 ? v_max : (k.a < 0.0 ? 0.0 : k.v), 0.0};
}

/// Distance travelled in [0, t] with saturation applied.
double dist_travelled(const Kinematics1D& k, double t, double v_max) {
  const double ts = saturation_time(k, v_max);
  if (t <= ts) return k.v * t + 0.5 * k.a * t * t;
  const double d_sat = k.v * ts + 0.5 * k.a * ts * ts;
  const double v_after = k.a > 0.0 ? v_max : (k.a < 0.0 ? 0.0 : k.v);
  return d_sat + v_after * (t - ts);
}

/// Smallest tau in [0, tau_max] solving d0 + dv*tau + 0.5*da*tau^2 = target,
/// excluding the trivial tau=0 root unless the trajectory moves outward.
std::optional<double> first_crossing(double d0, double dv, double da,
                                     double target, double tau_max) {
  constexpr double kEps = 1e-12;
  const double c = d0 - target;
  std::vector<double> roots;
  if (std::abs(da) < kEps) {
    if (std::abs(dv) >= kEps) roots.push_back(-c / dv);
  } else {
    const double half_a = 0.5 * da;
    const double disc = dv * dv - 4.0 * half_a * c;
    if (disc >= 0.0) {
      const double sq = std::sqrt(disc);
      roots.push_back((-dv - sq) / (2.0 * half_a));
      roots.push_back((-dv + sq) / (2.0 * half_a));
    }
  }
  std::optional<double> best;
  for (double tau : roots) {
    if (tau < -1e-9 || tau > tau_max + 1e-9) continue;
    tau = std::clamp(tau, 0.0, tau_max);
    if (tau < kEps) {
      // Root at the phase start: only counts as a crossing if separation is
      // actually heading past the boundary.
      const double outward = (target > 0.0 ? 1.0 : -1.0) * dv;
      if (outward <= kEps) continue;
    }
    if (!best || tau < *best) best = tau;
  }
  return best;
}

}  // namespace

double separation_at(Kinematics1D i, Kinematics1D j, double d0, double t,
                     double v_max) {
  return d0 + dist_travelled(i, t, v_max) - dist_travelled(j, t, v_max);
}

LinkLifetimeResult link_lifetime_1d(Kinematics1D i, Kinematics1D j, double d0,
                                    double r, double v_max) {
  VANET_ASSERT(r > 0.0);
  if (std::abs(d0) > r) {
    return {0.0, d0 > 0.0 ? 1 : -1};
  }
  // Phase boundaries: the saturation times of both vehicles, sorted.
  const double ts_i = saturation_time(i, v_max);
  const double ts_j = saturation_time(j, v_max);
  std::vector<double> cuts{0.0};
  for (double ts : {ts_i, ts_j}) {
    if (std::isfinite(ts) && ts > 0.0) cuts.push_back(ts);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  auto result_at = [&](double t) -> LinkLifetimeResult {
    const double d = separation_at(i, j, d0, t, v_max);
    return {t, d >= 0.0 ? 1 : -1};
  };

  // Closed phases [cuts[k], cuts[k+1]], then the open final phase.
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    const double t0 = cuts[k];
    const double span = cuts[k + 1] - t0;
    const double d_t0 = separation_at(i, j, d0, t0, v_max);
    const Kinematics1D si = state_at(i, t0, v_max);
    const Kinematics1D sj = state_at(j, t0, v_max);
    const double dv = si.v - sj.v;
    const double da = si.a - sj.a;
    std::optional<double> hit;
    for (double target : {r, -r}) {
      if (auto tau = first_crossing(d_t0, dv, da, target, span)) {
        if (!hit || *tau < *hit) hit = tau;
      }
    }
    if (hit) return result_at(t0 + *hit);
  }

  // Final phase: both saturated (or never saturating) — constant relative
  // acceleration forever.
  const double t0 = cuts.back();
  const double d_t0 = separation_at(i, j, d0, t0, v_max);
  const Kinematics1D si = state_at(i, t0, v_max);
  const Kinematics1D sj = state_at(j, t0, v_max);
  const double dv = si.v - sj.v;
  const double da = si.a - sj.a;
  std::optional<double> hit;
  for (double target : {r, -r}) {
    if (auto tau = first_crossing(d_t0, dv, da, target, kInfiniteLifetime)) {
      if (!hit || *tau < *hit) hit = tau;
    }
  }
  if (hit) return result_at(t0 + *hit);
  return {kInfiniteLifetime, 0};
}

std::optional<double> link_lifetime_2d(core::Vec2 pos_i, core::Vec2 vel_i,
                                       core::Vec2 acc_i, core::Vec2 pos_j,
                                       core::Vec2 vel_j, core::Vec2 acc_j,
                                       double r, double horizon, double dt,
                                       double tol) {
  VANET_ASSERT(r > 0.0 && horizon > 0.0 && dt > 0.0 && tol > 0.0);
  const core::Vec2 dp = pos_i - pos_j;
  const core::Vec2 dv = vel_i - vel_j;
  const core::Vec2 da = acc_i - acc_j;
  auto sep_sq = [&](double t) {
    const core::Vec2 d = dp + dv * t + da * (0.5 * t * t);
    return d.norm_sq();
  };
  const double r2 = r * r;
  if (sep_sq(0.0) >= r2) return 0.0;
  double prev = 0.0;
  for (double t = dt; t <= horizon + dt * 0.5; t += dt) {
    if (sep_sq(t) >= r2) {
      // Bisection on [prev, t].
      double lo = prev, hi = t;
      while (hi - lo > tol) {
        const double mid = 0.5 * (lo + hi);
        (sep_sq(mid) >= r2 ? hi : lo) = mid;
      }
      return 0.5 * (lo + hi);
    }
    prev = t;
  }
  return std::nullopt;
}

double path_lifetime(const std::vector<double>& link_lifetimes) {
  double min_life = kInfiniteLifetime;
  for (double l : link_lifetimes) min_life = std::min(min_life, l);
  return min_life;
}

}  // namespace vanet::analysis
