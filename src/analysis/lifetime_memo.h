// Memoized link-lifetime scoring: the cache layer in front of
// LinkLifetimeDistribution::expected_lifetime.
//
// The expected-lifetime integral is a pure function of five doubles
// (radio range r, initial separation d0, relative-speed mean mu and sigma,
// truncation horizon) and costs a ~340-point numeric integration per call.
// The probability-model protocols (gvgrid, niude, yan) evaluate it once per
// received RREQ copy; because node kinematics only change on mobility ticks,
// the same (d0, mu) pair recurs across every flood of the same tick — the
// gvgrid route-geometry profile measured 43.7 M normal-CDF evaluations from
// 130 k calls in one 10 s run (docs/PERFORMANCE.md). The memo collapses the
// repeats:
//
//  - kExact (default, `lifetime.memo=true`): a hash map keyed on the *bit
//    patterns* of all five inputs. A hit returns the exact double the
//    integration produced, so scenario reports are bit-identical to the
//    uncached path by construction — this mode can never move a digest.
//  - kInterp (`lifetime.interp=true`): bilinear interpolation between
//    lazily-integrated corner values on a fixed (d0, mu) grid per
//    (r, sigma, horizon). Much higher hit economy, but the returned values
//    are approximations: results CHANGE, so this mode is opt-in and pinned
//    by its own golden digest row (town-gvgrid-interp).
//
// Ownership: one instance per Scenario, shared by every per-node protocol
// instance of that scenario (plumbed via ProtocolContext). Scenarios are
// single-threaded, so the memo is deliberately unsynchronized; the
// ExperimentEngine's parallelism is across scenarios, each with its own
// memo. Entries live for the scenario's lifetime (speed parameters are
// per-run constants and positions quantize to mobility ticks, so the
// working set is bounded by distinct link geometries per run — a few MB at
// the largest bench sizes). Lookups never iterate the map, so unordered
// storage cannot leak order into results.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace vanet::analysis {

class LifetimeMemo {
 public:
  enum class Mode {
    kExact,   ///< bit-exact memo: cached value == uncached value, always
    kInterp,  ///< bilinear table: approximate values, results-changing
  };

  struct Stats {
    std::uint64_t hits = 0;    ///< calls answered without a new integration
    std::uint64_t misses = 0;  ///< calls that ran >= 1 numeric integration
  };

  explicit LifetimeMemo(Mode mode = Mode::kExact) : mode_{mode} {}

  /// E[min(T, horizon)] for LinkLifetimeDistribution{r, d0, mu, sigma} —
  /// served from cache when possible. Preconditions mirror the
  /// distribution's: r > 0, |d0| < r, sigma >= 0, horizon > 0.
  double expected_lifetime(double r, double d0, double mu, double sigma,
                           double horizon);

  Mode mode() const { return mode_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    std::uint64_t r, d0, mu, sigma, horizon;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  double interpolated(double r, double d0, double mu, double sigma,
                      double horizon);
  /// Corner value of the interpolation grid, integrated on first use
  /// (sets *integrated when it was).
  double corner_value(double r, double sigma, double horizon, int di, int mj,
                      bool* integrated);

  Mode mode_;
  Stats stats_;
  std::unordered_map<Key, double, KeyHash> exact_;
  /// Interp corners, keyed (di, mj) — the (r, sigma, horizon) triple is a
  /// per-run constant so one corner map suffices; the key guards against a
  /// harness mixing triples.
  std::unordered_map<Key, double, KeyHash> corners_;
};

/// Convenience for protocol code: memoized when `memo` is non-null (the
/// scenario bound one), the plain exact integration otherwise (line/test
/// harnesses without a scenario). Both paths return bit-identical values
/// unless the memo is in kInterp mode.
double expected_lifetime_via(LifetimeMemo* memo, double r, double d0,
                             double mu, double sigma, double horizon);

}  // namespace vanet::analysis
