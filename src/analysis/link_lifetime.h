// Link lifetime under vehicle kinematics — the analytical core of the paper
// (Sec. IV-A.1, Eqns. 1-4, Fig. 3).
//
// Two vehicles i and j move along a road with speeds v_i, v_j and
// accelerations a_i, a_j. With initial separation d0 = x_i - x_j (signed,
// positive when i is ahead), the separation evolves as
//     d(t) = d0 + (S_i(t) - S_j(t)),   S(t) = ∫ v(x) dx          (Eqns. 1-2)
// and the link breaks at the first t with |d(t)| = r, where r is the
// communication range. The paper's indicator function I(i,j) (Eqn. 3) tells
// which vehicle is ahead at the break: d(t*) = r * I(i,j) (Eqn. 4).
//
// We provide the exact piecewise-quadratic solution: each vehicle accelerates
// until its speed saturates at 0 or the speed limit v_m (the paper's "speed
// limit vm"), after which it travels at constant speed — so d(t) is piecewise
// quadratic and the first crossing of ±r can be found in closed form per
// phase. A 2-D numeric solver covers general headings (urban scenarios).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/vec2.h"

namespace vanet::analysis {

inline constexpr double kInfiniteLifetime = std::numeric_limits<double>::infinity();

/// 1-D kinematic state along the road axis: signed speed and acceleration.
/// Speed saturates at [0, v_max] (set v_max = +inf to disable the cap).
struct Kinematics1D {
  double v = 0.0;
  double a = 0.0;
};

struct LinkLifetimeResult {
  /// Seconds until |d(t)| first reaches r; kInfiniteLifetime when it never does;
  /// 0 when the link does not exist at t=0 (|d0| > r).
  double lifetime = 0.0;
  /// The paper's I(i,j): +1 when vehicle i is ahead at the break, -1 otherwise.
  /// Meaningless (0) for infinite lifetimes.
  int indicator = 0;
};

/// Exact lifetime of the (i, j) link for 1-D motion with speed saturation.
/// `d0` is the signed initial separation x_i - x_j; `r` the communication range.
LinkLifetimeResult link_lifetime_1d(Kinematics1D i, Kinematics1D j, double d0,
                                    double r,
                                    double v_max = kInfiniteLifetime);

/// Separation d(t) = x_i(t) - x_j(t) under the same saturating kinematics;
/// exposed for validation against the closed-form crossing time.
double separation_at(Kinematics1D i, Kinematics1D j, double d0, double t,
                     double v_max = kInfiniteLifetime);

/// Numeric lifetime for full 2-D motion with constant acceleration vectors:
/// first t in [0, horizon] with |p_i(t) - p_j(t)| >= r, located by sampling at
/// `dt` and refining with bisection to `tol`. Returns nullopt if the link
/// survives the whole horizon. Returns 0 if already out of range.
std::optional<double> link_lifetime_2d(core::Vec2 pos_i, core::Vec2 vel_i,
                                       core::Vec2 acc_i, core::Vec2 pos_j,
                                       core::Vec2 vel_j, core::Vec2 acc_j,
                                       double r, double horizon = 300.0,
                                       double dt = 0.05, double tol = 1e-4);

/// The paper's path rule: the lifetime of a route is the minimum lifetime of
/// its links. Empty paths have infinite lifetime.
double path_lifetime(const std::vector<double>& link_lifetimes);

}  // namespace vanet::analysis
