#include "analysis/lifetime_memo.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "analysis/lifetime_distribution.h"
#include "analysis/signal.h"
#include "core/assert.h"

namespace vanet::analysis {
namespace {

// Interpolation-grid shape (kInterp mode only). d0 is quantized over
// (-r, r) and mu over [-kMuMax, kMuMax]; inputs outside the mu span fall
// back to the exact path. 512 bins keep the worst-case bilinear error well
// under the scoring noise floor for bench-sized geometries while bounding
// the corner map at (kD0Bins+1)*(kMuBins+1) integrations.
constexpr int kD0Bins = 512;
constexpr int kMuBins = 512;
constexpr double kMuMax = 64.0;  // m/s; |mu| beyond this is integrated exactly

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Same trapezoidal integral as LinkLifetimeDistribution::expected_lifetime,
// minus the ctor preconditions: interpolation-grid corners can sit exactly on
// |d0| == r (S(0+) < 1 there), which the distribution's "link must exist at
// t=0" assert rejects. kInterp is results-changing by definition, so this
// duplicate does not need to track the class bit-for-bit — but it does,
// which makes interior corners verifiable against the class in tests.
double raw_expected_lifetime(double r, double d0, double mu, double sigma,
                             double horizon) {
  const auto survival = [&](double t) {
    const double denom = sigma * t;
    const double upper = (r - d0 - mu * t) / denom;
    const double lower = (-r - d0 - mu * t) / denom;
    return normal_cdf(upper) - normal_cdf(lower);
  };
  double total = 0.0;
  double t = 0.0;
  double dt = 0.01;
  double s_prev = t <= 0.0 ? 1.0 : survival(t);
  while (t < horizon) {
    const double step = std::min(dt, horizon - t);
    const double s_next = survival(t + step);
    total += 0.5 * (s_prev + s_next) * step;
    t += step;
    s_prev = s_next;
    if (s_next < 1e-9) break;
    dt = std::min(dt * 1.05, 4.0);
  }
  return total;
}

}  // namespace

std::size_t LifetimeMemo::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the five 64-bit lanes; cheap and collision-resistant enough
  // for the per-run working set (tens of thousands of keys).
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t lane : {k.r, k.d0, k.mu, k.sigma, k.horizon}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (lane >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

double LifetimeMemo::expected_lifetime(double r, double d0, double mu,
                                       double sigma, double horizon) {
  if (mode_ == Mode::kInterp && sigma > 0.0 && std::abs(mu) <= kMuMax) {
    return interpolated(r, d0, mu, sigma, horizon);
  }
  const Key key{bits(r), bits(d0), bits(mu), bits(sigma), bits(horizon)};
  auto [it, inserted] = exact_.try_emplace(key, 0.0);
  if (inserted) {
    ++stats_.misses;
    it->second =
        LinkLifetimeDistribution{r, d0, mu, sigma}.expected_lifetime(horizon);
  } else {
    ++stats_.hits;
  }
  return it->second;
}

double LifetimeMemo::interpolated(double r, double d0, double mu, double sigma,
                                  double horizon) {
  VANET_ASSERT(r > 0.0);
  // Continuous grid coordinates; d0 in (-r, r) maps to [0, kD0Bins].
  const double x = (d0 / r + 1.0) * 0.5 * kD0Bins;
  const double y = (mu / kMuMax + 1.0) * 0.5 * kMuBins;
  const int i0 = std::clamp(static_cast<int>(x), 0, kD0Bins - 1);
  const int j0 = std::clamp(static_cast<int>(y), 0, kMuBins - 1);
  const double fx = std::clamp(x - i0, 0.0, 1.0);
  const double fy = std::clamp(y - j0, 0.0, 1.0);
  bool integrated = false;
  const double v00 = corner_value(r, sigma, horizon, i0, j0, &integrated);
  const double v10 = corner_value(r, sigma, horizon, i0 + 1, j0, &integrated);
  const double v01 = corner_value(r, sigma, horizon, i0, j0 + 1, &integrated);
  const double v11 =
      corner_value(r, sigma, horizon, i0 + 1, j0 + 1, &integrated);
  ++(integrated ? stats_.misses : stats_.hits);
  return (1.0 - fx) * ((1.0 - fy) * v00 + fy * v01) +
         fx * ((1.0 - fy) * v10 + fy * v11);
}

double LifetimeMemo::corner_value(double r, double sigma, double horizon,
                                  int di, int mj, bool* integrated) {
  const Key key{bits(r), static_cast<std::uint64_t>(di),
                static_cast<std::uint64_t>(mj), bits(sigma), bits(horizon)};
  auto [it, inserted] = corners_.try_emplace(key, 0.0);
  if (inserted) {
    *integrated = true;
    const double d0 = (2.0 * di / kD0Bins - 1.0) * r;
    const double mu = (2.0 * mj / kMuBins - 1.0) * kMuMax;
    it->second = raw_expected_lifetime(r, d0, mu, sigma, horizon);
  }
  return it->second;
}

double expected_lifetime_via(LifetimeMemo* memo, double r, double d0,
                             double mu, double sigma, double horizon) {
  if (memo != nullptr) {
    return memo->expected_lifetime(r, d0, mu, sigma, horizon);
  }
  return LinkLifetimeDistribution{r, d0, mu, sigma}.expected_lifetime(horizon);
}

}  // namespace vanet::analysis
