#include "analysis/direction.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::analysis {

DirectionDecomposition decompose(core::Vec2 pos_a, core::Vec2 pos_b,
                                 core::Vec2 vel_a, core::Vec2 vel_b) {
  const core::Vec2 axis = (pos_b - pos_a);
  VANET_ASSERT_MSG(axis.norm() > 0.0, "positions must be distinct");
  const core::Vec2 along = axis.normalized();
  const core::Vec2 perp{-along.y, along.x};
  return DirectionDecomposition{
      .a_along = vel_a.dot(along),
      .b_along = vel_b.dot(along),
      .a_perp = vel_a.dot(perp),
      .b_perp = vel_b.dot(perp),
  };
}

bool same_direction(const DirectionDecomposition& d) {
  return d.a_along * d.b_along > 0.0 && d.a_perp * d.b_perp > 0.0;
}

bool same_direction(core::Vec2 pos_a, core::Vec2 pos_b, core::Vec2 vel_a,
                    core::Vec2 vel_b) {
  return same_direction(decompose(pos_a, pos_b, vel_a, vel_b));
}

bool similar_heading(core::Vec2 vel_a, core::Vec2 vel_b, double max_angle_rad) {
  const double na = vel_a.norm();
  const double nb = vel_b.norm();
  if (na < 1e-9 || nb < 1e-9) return true;  // stationary: no constraint
  const double cosine = vel_a.dot(vel_b) / (na * nb);
  return std::acos(std::clamp(cosine, -1.0, 1.0)) <= max_angle_rad;
}

int velocity_group(core::Vec2 vel) {
  if (std::abs(vel.x) >= std::abs(vel.y)) {
    return vel.x >= 0.0 ? 0 : 2;
  }
  return vel.y >= 0.0 ? 1 : 3;
}

}  // namespace vanet::analysis
