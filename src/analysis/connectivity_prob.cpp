#include "analysis/connectivity_prob.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::analysis {

double gap_bridgeable_probability(double lambda_veh_per_m, double range_m) {
  VANET_ASSERT(lambda_veh_per_m >= 0.0 && range_m >= 0.0);
  return 1.0 - std::exp(-lambda_veh_per_m * range_m);
}

double segment_connectivity_probability(double lambda_veh_per_m, double length_m,
                                        double range_m) {
  VANET_ASSERT(length_m > 0.0);
  const double p_gap = gap_bridgeable_probability(lambda_veh_per_m, range_m);
  const double expected_gaps = lambda_veh_per_m * length_m;
  if (expected_gaps <= 0.0) return 0.0;  // empty road cannot relay
  return std::pow(p_gap, expected_gaps);
}

double max_gap(std::vector<double> positions_m, double length_m) {
  VANET_ASSERT(length_m > 0.0);
  if (positions_m.empty()) return length_m;
  std::sort(positions_m.begin(), positions_m.end());
  double worst = positions_m.front() - 0.0;
  for (std::size_t k = 1; k < positions_m.size(); ++k) {
    worst = std::max(worst, positions_m[k] - positions_m[k - 1]);
  }
  worst = std::max(worst, length_m - positions_m.back());
  return worst;
}

bool empirical_segment_connected(std::vector<double> positions_m,
                                 double length_m, double range_m) {
  return max_gap(std::move(positions_m), length_m) <= range_m;
}

}  // namespace vanet::analysis
