// Small statistics toolkit used by the metrics collector and the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace vanet::analysis {

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_half_width() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-th percentile (q in [0,1]) by linear interpolation; the input need not
/// be sorted. Returns 0 for empty input.
double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples clamp into the boundary buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t k) const;
  double bin_hi(std::size_t k) const;
  /// Fraction of samples in bin k (0 when empty).
  double fraction(std::size_t k) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vanet::analysis
