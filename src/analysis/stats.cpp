#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::analysis {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> samples, double q) {
  VANET_ASSERT(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double idx = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  VANET_ASSERT(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto k = static_cast<std::ptrdiff_t>((x - lo_) / width);
  k = std::clamp<std::ptrdiff_t>(k, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(k)];
  ++total_;
}

double Histogram::bin_lo(std::size_t k) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(k);
}

double Histogram::bin_hi(std::size_t k) const { return bin_lo(k + 1); }

double Histogram::fraction(std::size_t k) const {
  return total_ > 0
             ? static_cast<double>(counts_.at(k)) / static_cast<double>(total_)
             : 0.0;
}

}  // namespace vanet::analysis
