// Log-normal shadowing signal model and receipt probability (Sec. VII-A).
//
// "The received signal is often assumed to be normally or log-normally
// distributed. The distribution of the existence of a link can then be
// computed accordingly." — we implement the standard log-distance path loss
// with log-normal shadowing; REAR's receipt probability falls out as the
// Gaussian tail probability of the received power exceeding the threshold.
#pragma once

#include <cmath>

namespace vanet::analysis {

struct LogNormalParams {
  double tx_power_dbm = 20.0;        ///< transmit power
  double ref_distance_m = 1.0;       ///< d0 of the log-distance model
  double ref_loss_db = 46.7;         ///< path loss at d0 (5.9 GHz free space)
  double path_loss_exponent = 2.75;  ///< highway/urban mix
  double shadowing_sigma_db = 4.0;   ///< log-normal shadowing std dev
  double rx_threshold_dbm = -85.0;   ///< receiver sensitivity
};

/// Deterministic (mean) path loss at distance `d` >= ref_distance.
double path_loss_db(double d, const LogNormalParams& p);

/// Mean received power at distance `d`.
double mean_rx_dbm(double d, const LogNormalParams& p);

/// P(received power > threshold) at distance `d`:
/// Phi((mean_rx(d) - threshold) / sigma). This is REAR's receipt probability.
double receipt_probability(double d, const LogNormalParams& p);

/// Distance at which the *mean* received power equals the threshold
/// (receipt probability 0.5) — the "nominal range" used as r in the
/// lifetime equations when running over a shadowing channel.
double nominal_range(const LogNormalParams& p);

/// Distance beyond which receipt probability < Phi(-k): used by the channel
/// as a hard candidate-search cutoff (default 3 sigma ~ 0.13%).
double max_range(const LogNormalParams& p, double k_sigma = 3.0);

/// Standard normal CDF. Defined inline: the lifetime integrators call this
/// hundreds of times per link and the call overhead was measurable. The
/// expression is byte-for-byte the out-of-line version it replaces, so every
/// caller computes the same bits as before.
inline double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace vanet::analysis
