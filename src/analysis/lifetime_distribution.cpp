#include "analysis/lifetime_distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/signal.h"
#include "core/assert.h"

namespace vanet::analysis {

LinkLifetimeDistribution::LinkLifetimeDistribution(double r, double d0,
                                                   double mu_dv, double sigma_dv)
    : r_{r}, d0_{d0}, mu_{mu_dv}, sigma_{sigma_dv} {
  VANET_ASSERT(r > 0.0);
  VANET_ASSERT_MSG(std::abs(d0) < r, "link must exist at t=0");
  VANET_ASSERT(sigma_dv >= 0.0);
}

double LinkLifetimeDistribution::survival(double t) const {
  if (t <= 0.0) return 1.0;
  if (sigma_ == 0.0) {
    const double d = d0_ + mu_ * t;
    return (d > -r_ && d < r_) ? 1.0 : 0.0;
  }
  const double denom = sigma_ * t;
  const double upper = (r_ - d0_ - mu_ * t) / denom;
  const double lower = (-r_ - d0_ - mu_ * t) / denom;
  return normal_cdf(upper) - normal_cdf(lower);
}

double LinkLifetimeDistribution::expected_lifetime(double horizon) const {
  VANET_ASSERT(horizon > 0.0);
  if (sigma_ == 0.0) {
    if (mu_ == 0.0) return horizon;
    const double exact = mu_ > 0.0 ? (r_ - d0_) / mu_ : (r_ + d0_) / -mu_;
    return std::min(exact, horizon);
  }
  // E[min(T, horizon)] = integral of S(t) over [0, horizon], trapezoidal with
  // a geometrically growing step (S is smooth and monotone).
  double total = 0.0;
  double t = 0.0;
  double dt = 0.01;
  double s_prev = 1.0;
  while (t < horizon) {
    const double step = std::min(dt, horizon - t);
    const double s_next = survival(t + step);
    total += 0.5 * (s_prev + s_next) * step;
    t += step;
    s_prev = s_next;
    if (s_next < 1e-9) break;
    dt = std::min(dt * 1.05, 4.0);
  }
  return total;
}

double LinkLifetimeDistribution::quantile(double q) const {
  VANET_ASSERT(q > 0.0 && q < 1.0);
  const double target = 1.0 - q;
  double lo = 0.0, hi = 1.0;
  while (survival(hi) > target && hi < 1e9) hi *= 2.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    (survival(mid) > target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace vanet::analysis
