#include "mobility/graph_mobility.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/assert.h"

namespace vanet::mobility {

namespace {
/// Draw caps: trip planning retries (small graphs / disconnected components)
/// and intersections crossed in one step (high dt x short blocks).
constexpr int kTripDraws = 16;
constexpr int kMaxHopsPerStep = 16;
}  // namespace

GraphMobilityModel::GraphMobilityModel(
    std::shared_ptr<const map::RoadGraph> graph, GraphMobilityConfig cfg)
    : graph_{std::move(graph)}, cfg_{cfg} {
  VANET_ASSERT(graph_ != nullptr);
  VANET_ASSERT_MSG(graph_->intersection_count() >= 2,
                   "graph mobility needs at least two intersections");
  for (int i = 0; i < graph_->intersection_count(); ++i) {
    VANET_ASSERT_MSG(graph_->degree(i) > 0,
                     "graph mobility: isolated intersection");
  }
  VANET_ASSERT(cfg_.replan_prob >= 0.0 && cfg_.replan_prob <= 1.0);
}

std::vector<int> GraphMobilityModel::plan_path(int at, int dest) const {
  if (blocked_count_ == 0) return graph_->shortest_path_by_length(at, dest);
  // Blocked segments cost infinity; Dijkstra never relaxes an infinite-cost
  // edge, so the incident is routed around (or `dest` reads unreachable).
  return graph_->shortest_path(at, dest, [this](int seg) {
    return blocked_[static_cast<std::size_t>(seg)] != 0
               ? std::numeric_limits<double>::infinity()
               : graph_->segment_length(seg);
  });
}

void GraphMobilityModel::plan_trip(Car& c, int at, core::Rng& rng) {
  const int n = graph_->intersection_count();
  const core::Vec2 here = graph_->intersection_pos(at);
  // First pass honours the minimum trip length; the second drops it so tiny
  // maps still get real trips; the neighbor fallback covers the remote case
  // of every draw landing in another component.
  for (const bool want_long : {true, false}) {
    for (int tries = 0; tries < kTripDraws; ++tries) {
      const int dest = static_cast<int>(rng.uniform_int(0, n - 1));
      if (dest == at) continue;
      if (want_long &&
          (graph_->intersection_pos(dest) - here).norm() < cfg_.min_trip_m) {
        continue;
      }
      auto path = plan_path(at, dest);
      if (path.size() < 2) continue;  // unreachable
      c.from = at;
      c.dest = dest;
      c.path = std::move(path);
      c.path_idx = 1;
      c.to = c.path[1];
      c.along = 0.0;
      return;
    }
  }
  // Degree >= 1 is a class invariant, so a one-hop trip always exists.
  // Under incidents, prefer an open exit; when every street out of this
  // intersection is blocked, drive through anyway rather than stranding
  // the vehicle (with blocked_count_ == 0 the draw matches the pre-fault
  // sequence exactly).
  const auto& adj = graph_->adjacency(at);
  std::size_t pick;
  if (blocked_count_ > 0) {
    std::vector<std::size_t> open;
    for (std::size_t k = 0; k < adj.size(); ++k) {
      if (blocked_[static_cast<std::size_t>(adj[k].second)] == 0) {
        open.push_back(k);
      }
    }
    pick = open.empty()
               ? static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(adj.size()) - 1))
               : open[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(open.size()) - 1))];
  } else {
    pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(adj.size()) - 1));
  }
  const int nbr = adj[pick].first;
  c.from = at;
  c.dest = nbr;
  c.path = {at, nbr};
  c.path_idx = 1;
  c.to = nbr;
  c.along = 0.0;
}

VehicleId GraphMobilityModel::add_vehicle(int at, double speed,
                                          core::Rng& rng) {
  VANET_ASSERT(at >= 0 && at < graph_->intersection_count());
  Car c;
  c.speed = std::max(1.0, speed);
  plan_trip(c, at, rng);
  cars_.push_back(std::move(c));
  VehicleState s;
  s.id = static_cast<VehicleId>(states_.size());
  states_.push_back(s);
  refresh_state(states_.size() - 1);
  return states_.back().id;
}

void GraphMobilityModel::populate(int count, core::Rng& rng) {
  const int n = graph_->intersection_count();
  for (int i = 0; i < count; ++i) {
    const int at = static_cast<int>(rng.uniform_int(0, n - 1));
    const double v =
        std::max(2.0, rng.normal(cfg_.speed_mean, cfg_.speed_stddev));
    add_vehicle(at, v, rng);
  }
}

void GraphMobilityModel::step(double dt, core::Rng& rng) {
  VANET_ASSERT(dt > 0.0);
  for (std::size_t i = 0; i < cars_.size(); ++i) {
    Car& c = cars_[i];
    double remaining = c.speed * dt;
    int hops = 0;
    while (remaining > 1e-9 && hops < kMaxHopsPerStep) {
      const int seg = graph_->segment_between(c.from, c.to);
      const double len = graph_->segment_length(seg);
      const double left = len - c.along;
      if (remaining < left) {
        c.along += remaining;
        remaining = 0.0;
        break;
      }
      remaining -= left;
      ++hops;
      const int here = c.to;
      // An incident on the next planned segment forces a re-plan. Evaluated
      // before the replan draw: with nothing blocked this is always false,
      // so fault-free runs consume randomness exactly as before.
      const bool next_blocked =
          blocked_count_ > 0 && c.path_idx + 1 < c.path.size() &&
          blocked_[static_cast<std::size_t>(graph_->segment_between(
              here, c.path[c.path_idx + 1]))] != 0;
      if (here == c.dest || c.path_idx + 1 >= c.path.size() || next_blocked ||
          rng.bernoulli(cfg_.replan_prob)) {
        plan_trip(c, here, rng);
      } else {
        c.from = here;
        ++c.path_idx;
        c.to = c.path[c.path_idx];
        c.along = 0.0;
      }
    }
    refresh_state(i);
  }
}

void GraphMobilityModel::refresh_state(std::size_t i) {
  const Car& c = cars_[i];
  const core::Vec2 pa = graph_->intersection_pos(c.from);
  const core::Vec2 pb = graph_->intersection_pos(c.to);
  const double len = graph_->segment_length(graph_->segment_between(c.from, c.to));
  const double u = std::clamp(c.along / len, 0.0, 1.0);
  VehicleState& s = states_[i];
  // Convex combination of the endpoints: the position cannot leave the edge.
  s.pos = pa + (pb - pa) * u;
  s.heading = (pb - pa).normalized();
  s.speed = c.speed;
  s.accel = 0.0;
}

int GraphMobilityModel::current_segment(VehicleId id) const {
  const Car& c = cars_.at(id);
  return graph_->segment_between(c.from, c.to);
}

void GraphMobilityModel::set_segment_blocked(int segment, bool blocked) {
  VANET_ASSERT_MSG(
      segment >= 0 &&
          static_cast<std::size_t>(segment) < graph_->segment_count(),
      "set_segment_blocked: unknown segment");
  if (blocked_.empty()) blocked_.assign(graph_->segment_count(), 0);
  char& slot = blocked_[static_cast<std::size_t>(segment)];
  if ((slot != 0) == blocked) return;
  slot = blocked ? 1 : 0;
  blocked_count_ += blocked ? 1 : -1;
}

bool GraphMobilityModel::segment_blocked(int segment) const {
  VANET_ASSERT_MSG(
      segment >= 0 &&
          static_cast<std::size_t>(segment) < graph_->segment_count(),
      "segment_blocked: unknown segment");
  return blocked_count_ > 0 &&
         blocked_[static_cast<std::size_t>(segment)] != 0;
}

int GraphMobilityModel::reported_segment(std::size_t i) const {
  const Car& c = cars_.at(i);
  const int seg = graph_->segment_between(c.from, c.to);
  // Near an endpoint the incident streets approach equidistance and the
  // nearest-segment tie-break may pick a lower id; decline rather than guess.
  if (c.along <= kEdgeMargin || c.along >= graph_->segment_length(seg) - kEdgeMargin) {
    return -1;
  }
  return seg;
}

}  // namespace vanet::mobility
