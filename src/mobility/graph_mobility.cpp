#include "mobility/graph_mobility.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::mobility {

namespace {
/// Draw caps: trip planning retries (small graphs / disconnected components)
/// and intersections crossed in one step (high dt x short blocks).
constexpr int kTripDraws = 16;
constexpr int kMaxHopsPerStep = 16;
}  // namespace

GraphMobilityModel::GraphMobilityModel(
    std::shared_ptr<const map::RoadGraph> graph, GraphMobilityConfig cfg)
    : graph_{std::move(graph)}, cfg_{cfg} {
  VANET_ASSERT(graph_ != nullptr);
  VANET_ASSERT_MSG(graph_->intersection_count() >= 2,
                   "graph mobility needs at least two intersections");
  for (int i = 0; i < graph_->intersection_count(); ++i) {
    VANET_ASSERT_MSG(graph_->degree(i) > 0,
                     "graph mobility: isolated intersection");
  }
  VANET_ASSERT(cfg_.replan_prob >= 0.0 && cfg_.replan_prob <= 1.0);
}

void GraphMobilityModel::plan_trip(Car& c, int at, core::Rng& rng) {
  const int n = graph_->intersection_count();
  const core::Vec2 here = graph_->intersection_pos(at);
  // First pass honours the minimum trip length; the second drops it so tiny
  // maps still get real trips; the neighbor fallback covers the remote case
  // of every draw landing in another component.
  for (const bool want_long : {true, false}) {
    for (int tries = 0; tries < kTripDraws; ++tries) {
      const int dest = static_cast<int>(rng.uniform_int(0, n - 1));
      if (dest == at) continue;
      if (want_long &&
          (graph_->intersection_pos(dest) - here).norm() < cfg_.min_trip_m) {
        continue;
      }
      auto path = graph_->shortest_path_by_length(at, dest);
      if (path.size() < 2) continue;  // unreachable
      c.from = at;
      c.dest = dest;
      c.path = std::move(path);
      c.path_idx = 1;
      c.to = c.path[1];
      c.along = 0.0;
      return;
    }
  }
  // Degree >= 1 is a class invariant, so a one-hop trip always exists.
  const auto& adj = graph_->adjacency(at);
  const int nbr =
      adj[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(adj.size()) - 1))]
          .first;
  c.from = at;
  c.dest = nbr;
  c.path = {at, nbr};
  c.path_idx = 1;
  c.to = nbr;
  c.along = 0.0;
}

VehicleId GraphMobilityModel::add_vehicle(int at, double speed,
                                          core::Rng& rng) {
  VANET_ASSERT(at >= 0 && at < graph_->intersection_count());
  Car c;
  c.speed = std::max(1.0, speed);
  plan_trip(c, at, rng);
  cars_.push_back(std::move(c));
  VehicleState s;
  s.id = static_cast<VehicleId>(states_.size());
  states_.push_back(s);
  refresh_state(states_.size() - 1);
  return states_.back().id;
}

void GraphMobilityModel::populate(int count, core::Rng& rng) {
  const int n = graph_->intersection_count();
  for (int i = 0; i < count; ++i) {
    const int at = static_cast<int>(rng.uniform_int(0, n - 1));
    const double v =
        std::max(2.0, rng.normal(cfg_.speed_mean, cfg_.speed_stddev));
    add_vehicle(at, v, rng);
  }
}

void GraphMobilityModel::step(double dt, core::Rng& rng) {
  VANET_ASSERT(dt > 0.0);
  for (std::size_t i = 0; i < cars_.size(); ++i) {
    Car& c = cars_[i];
    double remaining = c.speed * dt;
    int hops = 0;
    while (remaining > 1e-9 && hops < kMaxHopsPerStep) {
      const int seg = graph_->segment_between(c.from, c.to);
      const double len = graph_->segment_length(seg);
      const double left = len - c.along;
      if (remaining < left) {
        c.along += remaining;
        remaining = 0.0;
        break;
      }
      remaining -= left;
      ++hops;
      const int here = c.to;
      if (here == c.dest || c.path_idx + 1 >= c.path.size() ||
          rng.bernoulli(cfg_.replan_prob)) {
        plan_trip(c, here, rng);
      } else {
        c.from = here;
        ++c.path_idx;
        c.to = c.path[c.path_idx];
        c.along = 0.0;
      }
    }
    refresh_state(i);
  }
}

void GraphMobilityModel::refresh_state(std::size_t i) {
  const Car& c = cars_[i];
  const core::Vec2 pa = graph_->intersection_pos(c.from);
  const core::Vec2 pb = graph_->intersection_pos(c.to);
  const double len = graph_->segment_length(graph_->segment_between(c.from, c.to));
  const double u = std::clamp(c.along / len, 0.0, 1.0);
  VehicleState& s = states_[i];
  // Convex combination of the endpoints: the position cannot leave the edge.
  s.pos = pa + (pb - pa) * u;
  s.heading = (pb - pa).normalized();
  s.speed = c.speed;
  s.accel = 0.0;
}

int GraphMobilityModel::current_segment(VehicleId id) const {
  const Car& c = cars_.at(id);
  return graph_->segment_between(c.from, c.to);
}

int GraphMobilityModel::reported_segment(std::size_t i) const {
  const Car& c = cars_.at(i);
  const int seg = graph_->segment_between(c.from, c.to);
  // Near an endpoint the incident streets approach equidistance and the
  // nearest-segment tie-break may pick a lower id; decline rather than guess.
  if (c.along <= kEdgeMargin || c.along >= graph_->segment_length(seg) - kEdgeMargin) {
    return -1;
  }
  return seg;
}

}  // namespace vanet::mobility
