// Multi-lane bidirectional highway with IDM car-following and simple
// incentive/safety lane changes (a MOBIL-lite policy).
//
// Geometry: the carriageway for each travel direction is a ring of `length`
// metres (positions wrap), so vehicle density stays constant over a run —
// the steady-state regime the survey's Table I compares protocols in.
// Forward lanes head +x at y >= 0; backward lanes head -x below a median gap.
#pragma once

#include <vector>

#include "mobility/mobility_model.h"

namespace vanet::mobility {

/// Intelligent Driver Model parameters (Treiber et al.).
struct IdmParams {
  double desired_speed = 30.0;        ///< v0, m/s
  double desired_speed_stddev = 3.0;  ///< per-vehicle v0 ~ N(v0, sd)
  double time_headway = 1.5;          ///< T, s
  double min_gap = 2.0;               ///< s0, m
  double max_accel = 1.5;             ///< a, m/s^2
  double comfortable_decel = 2.0;     ///< b, m/s^2
  double vehicle_length = 5.0;        ///< m (the paper's CAR protocol uses 5 m)
};

struct HighwayConfig {
  double length = 5000.0;          ///< ring length per direction, m
  int lanes_per_direction = 2;
  bool bidirectional = true;
  double lane_width = 4.0;         ///< m
  double median_gap = 8.0;         ///< m between the two carriageways
  double lane_change_prob = 0.1;   ///< per-vehicle evaluation probability per step
  IdmParams idm;
};

class IdmHighwayModel final : public MobilityModel {
 public:
  explicit IdmHighwayModel(HighwayConfig cfg);

  /// Direction 0 heads +x, direction 1 heads -x.
  /// `s` is the arc position along the direction of travel, in [0, length).
  VehicleId add_vehicle(int direction, int lane, double s, double desired_speed);

  /// Place `per_direction` vehicles uniformly at random (position, lane) with
  /// desired speeds drawn from the configured normal distribution.
  void populate(int per_direction, core::Rng& rng);

  void step(double dt, core::Rng& rng) override;
  const std::vector<VehicleState>& vehicles() const override { return states_; }

  const HighwayConfig& config() const { return cfg_; }
  double arc_position(VehicleId id) const { return cars_.at(id).s; }
  int direction(VehicleId id) const { return cars_.at(id).direction; }
  double desired_speed(VehicleId id) const { return cars_.at(id).desired_speed; }

 private:
  struct Car {
    double s = 0.0;
    double speed = 0.0;
    double accel = 0.0;
    double desired_speed = 30.0;
    int lane = 0;
    int direction = 0;
  };

  /// IDM acceleration for follower at speed v with `gap` to a leader at
  /// `leader_speed`; `gap` < 0 means free road.
  double idm_accel(double v, double v0, double gap, double leader_speed) const;
  void sync_world_state(VehicleId id);
  /// Leader gap/speed for a hypothetical car at (direction, lane, s); returns
  /// false when the lane is empty apart from `self`.
  bool leader_of(VehicleId self, int lane, double s, double& gap,
                 double& leader_speed) const;
  bool follower_of(VehicleId self, int lane, double s, double& gap,
                   double& follower_speed) const;
  void maybe_change_lane(VehicleId id, core::Rng& rng);

  HighwayConfig cfg_;
  std::vector<VehicleState> states_;  // world-frame mirror of cars_
  std::vector<Car> cars_;             // indexed by VehicleId
};

}  // namespace vanet::mobility
