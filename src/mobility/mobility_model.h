// Interface implemented by every mobility model.
//
// A model owns the vehicle states and advances them in fixed steps; the
// MobilityManager drives stepping from simulator events and republishes
// positions to the spatial index.
#pragma once

#include <vector>

#include "core/assert.h"
#include "core/rng.h"
#include "mobility/vehicle.h"

namespace vanet::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advance all vehicles by `dt` seconds.
  virtual void step(double dt, core::Rng& rng) = 0;

  /// Current states; ids are stable and unique across the model's lifetime.
  virtual const std::vector<VehicleState>& vehicles() const = 0;

  /// Road segment (shared map::RoadGraph id) that vehicle `i` — an index into
  /// vehicles() — is *provably* driving strictly inside right now, or -1 when
  /// the model does not know (default) or cannot prove it (vehicle at or near
  /// an intersection). A non-negative return is a contract: the position is a
  /// point of that segment's interior, at least ~1 cm from either endpoint,
  /// so `map::SegmentIndex::nearest_segment(pos)` returns exactly this id
  /// unless the segment is flagged by map::ambiguous_interior_segments. The
  /// scenario's incremental density oracle relies on that equivalence; when
  /// in doubt, return -1 — it only costs the caller an index query.
  virtual int reported_segment(std::size_t i) const {
    (void)i;
    return -1;
  }

  /// Linear-scan lookup by id (models keep vehicles() small enough that the
  /// hot path — MobilityManager — maintains its own index instead).
  const VehicleState& state(VehicleId id) const {
    for (const auto& v : vehicles()) {
      if (v.id == id) return v;
    }
    VANET_ASSERT_MSG(false, "unknown vehicle id");
    return vehicles().front();  // unreachable
  }
};

}  // namespace vanet::mobility
