// Drives a MobilityModel from simulator events and indexes the result.
//
// On every tick the manager steps the model, refreshes the id -> state index,
// and invokes registered listeners (the network uses one to update its
// spatial grid and check link breaks).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/simulator.h"
#include "mobility/mobility_model.h"

namespace vanet::mobility {

class MobilityManager {
 public:
  /// The manager draws per-step randomness from `rng` (a dedicated stream).
  MobilityManager(core::Simulator& sim, std::unique_ptr<MobilityModel> model,
                  core::Rng& rng,
                  core::SimTime tick = core::SimTime::millis(100));

  /// Begin periodic stepping (first step after one tick).
  void start();
  void stop();

  MobilityModel& model() { return *model_; }
  const MobilityModel& model() const { return *model_; }

  const VehicleState& state(VehicleId id) const;
  bool has_vehicle(VehicleId id) const {
    return id < index_.size() && index_[id] != kNoVehicle;
  }
  /// Index of `id` in model().vehicles(), or npos when the id is not a
  /// vehicle (RSUs live outside the mobility model).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t model_index(VehicleId id) const {
    return id < index_.size() ? index_[id] : npos;
  }
  const std::vector<VehicleState>& vehicles() const { return model_->vehicles(); }
  core::SimTime tick_interval() const { return tick_; }

  /// Called after every step with the new simulation time.
  void add_tick_listener(std::function<void(core::SimTime)> fn);

 private:
  static constexpr std::size_t kNoVehicle = static_cast<std::size_t>(-1);

  void on_tick();
  void rebuild_index();

  core::Simulator& sim_;
  std::unique_ptr<MobilityModel> model_;
  core::Rng& rng_;
  core::SimTime tick_;
  core::EventHandle pending_;
  bool running_ = false;
  /// id -> index into model vehicles(); dense vector so the per-tick rebuild
  /// never hashes (ids are small and stable over a model's lifetime).
  std::vector<std::size_t> index_;
  std::vector<std::function<void(core::SimTime)>> listeners_;
};

}  // namespace vanet::mobility
