// Graph-constrained mobility: vehicles drive on the edges of a map::RoadGraph.
//
// Each vehicle runs random trips over the shared road graph: pick a
// destination intersection, follow the length-shortest path toward it, pick a
// new destination on arrival. At every intersection along the way the driver
// re-plans with probability `replan_prob` (a fresh destination and path),
// which produces the direction churn urban protocols must cope with —
// without ever leaving the graph. Positions are exact convex combinations of
// the current edge's endpoints, so every vehicle is on a road segment at all
// times (property-tested by GraphMobility.VehiclesStayOnEdges); routing-layer
// consumers of the same RoadGraph (CAR's anchor paths, the density oracle)
// therefore reason about roads the vehicles are actually on.
//
// Unlike ManhattanGridModel — which synthesizes its own lattice geometry —
// this model works on any graph the map subsystem can build, including
// edge-list CSV imports of real road networks (map/builders.h).
#pragma once

#include <memory>
#include <vector>

#include "map/road_graph.h"
#include "mobility/mobility_model.h"

namespace vanet::mobility {

struct GraphMobilityConfig {
  double speed_mean = 13.9;    ///< m/s (~50 km/h), drawn per vehicle
  double speed_stddev = 2.0;   ///< m/s; draws are floored at 2 m/s
  double replan_prob = 0.05;   ///< P(new destination) at each intersection
  double min_trip_m = 400.0;   ///< minimum bee-line length of a new trip
};

class GraphMobilityModel final : public MobilityModel {
 public:
  /// `graph` must have >= 2 intersections and no isolated ones; it is shared
  /// with the routing layer and must outlive the model.
  GraphMobilityModel(std::shared_ptr<const map::RoadGraph> graph,
                     GraphMobilityConfig cfg);

  /// Place `count` vehicles at random intersections with random trips.
  void populate(int count, core::Rng& rng);

  /// Spawn one vehicle at intersection `at` with the given speed; the first
  /// trip destination is drawn from `rng`.
  VehicleId add_vehicle(int at, double speed, core::Rng& rng);

  void step(double dt, core::Rng& rng) override;
  const std::vector<VehicleState>& vehicles() const override { return states_; }
  /// Driven segment when strictly inside it (see MobilityModel contract);
  /// -1 within kEdgeMargin of an endpoint, where nearest-segment ties with
  /// the other incident streets are possible.
  int reported_segment(std::size_t i) const override;

  const map::RoadGraph& graph() const { return *graph_; }
  const GraphMobilityConfig& config() const { return cfg_; }
  /// Segment id vehicle `id` currently drives on (tests, diagnostics).
  int current_segment(VehicleId id) const;

  /// Block or clear a road segment (incident injection, sim::FaultPlan).
  /// Trip planning treats blocked segments as infinite cost, so new paths
  /// route around the incident; a vehicle already on the segment finishes
  /// traversing it (positions stay on-edge, the class invariant) and
  /// re-plans at the next intersection. When every street out of an
  /// intersection is blocked, the fallback hop drives through anyway rather
  /// than stranding the vehicle. With no segment blocked, planning and the
  /// per-step draw sequence are bit-identical to the fault-free model.
  void set_segment_blocked(int segment, bool blocked);
  bool segment_blocked(int segment) const;

 private:
  struct Car {
    int from = 0;              ///< intersection behind
    int to = 0;                ///< intersection ahead on the current segment
    double along = 0.0;        ///< metres travelled from `from` toward `to`
    int dest = 0;              ///< current trip destination intersection
    std::vector<int> path;     ///< intersections from `from` to `dest`
    std::size_t path_idx = 0;  ///< index of `to` within `path`
    double speed = 13.9;       ///< m/s, constant per vehicle
  };

  /// Endpoint clearance below which reported_segment declines to answer.
  static constexpr double kEdgeMargin = 0.01;  ///< metres

  /// Draw a destination reachable from `at` and install the path; falls back
  /// to a random neighbor hop when no distinct destination is reachable.
  void plan_trip(Car& c, int at, core::Rng& rng);
  /// Shortest path honouring blocked segments (plain by-length Dijkstra when
  /// nothing is blocked).
  std::vector<int> plan_path(int at, int dest) const;
  void refresh_state(std::size_t i);

  std::shared_ptr<const map::RoadGraph> graph_;
  GraphMobilityConfig cfg_;
  std::vector<VehicleState> states_;
  std::vector<Car> cars_;
  /// Per-segment incident flags, sized lazily on first block; empty (and
  /// blocked_count_ == 0) on every fault-free run.
  std::vector<char> blocked_;
  int blocked_count_ = 0;
};

}  // namespace vanet::mobility
