// Manhattan-grid urban mobility: vehicles travel along a lattice of streets
// and turn at intersections with configurable probabilities.
//
// This is the standard urban model used by the zone / grid-gateway / CAR
// family of protocols the survey describes (Sec. VI, VII). Traffic lights are
// deliberately not modelled; turning randomness already produces the
// direction churn those protocols must cope with (documented simplification).
//
// The lattice here is synthesized from ManhattanConfig, not taken from the
// map subsystem — scenarios build a matching map::RoadGraph from the same
// streets_x/streets_y/block values, so routing still sees the roads the
// vehicles use. For mobility over an *arbitrary* road graph (including
// imported CSV maps, where no such reconstruction is possible), use
// GraphMobilityModel (mobility/graph_mobility.h) instead.
#pragma once

#include <vector>

#include "mobility/mobility_model.h"

namespace vanet::mobility {

/// Shared by ManhattanGridModel and the scenario's grid map source: the same
/// streets_x/streets_y/block triple defines both the synthesized motion
/// lattice and the map::RoadGraph that routing sees.
struct ManhattanConfig {
  int streets_x = 5;        ///< number of vertical streets (constant-x lines)
  int streets_y = 5;        ///< number of horizontal streets (constant-y lines)
  double block = 200.0;     ///< street spacing, m (intersection (0,0) at origin)
  double speed_mean = 13.9; ///< m/s, ~50 km/h; per-vehicle normal draw
  double speed_stddev = 2.0;///< m/s; draws are floored at 2 m/s
  double turn_prob_left = 0.25;   ///< remainder after left+right goes straight
  double turn_prob_right = 0.25;
};

class ManhattanGridModel final : public MobilityModel {
 public:
  explicit ManhattanGridModel(ManhattanConfig cfg);

  /// Place `count` vehicles at random intersections with random directions.
  void populate(int count, core::Rng& rng);

  /// Spawn one vehicle at intersection (ix, iy) heading `dir` (0:+x 1:-x 2:+y 3:-y).
  VehicleId add_vehicle(int ix, int iy, int dir, double speed);

  void step(double dt, core::Rng& rng) override;
  const std::vector<VehicleState>& vehicles() const override { return states_; }

  const ManhattanConfig& config() const { return cfg_; }
  double width() const { return (cfg_.streets_x - 1) * cfg_.block; }
  double height() const { return (cfg_.streets_y - 1) * cfg_.block; }

 private:
  struct Car {
    core::Vec2 pos;
    int dir = 0;          ///< 0:+x 1:-x 2:+y 3:-y
    core::Vec2 target;    ///< next intersection on the current street
    double speed = 13.9;
  };

  static core::Vec2 dir_vec(int dir);
  /// Choose the outgoing direction at intersection (ix, iy), never reversing
  /// unless it is the only in-grid option.
  int choose_turn(int ix, int iy, int incoming_dir, core::Rng& rng) const;
  bool target_in_grid(int ix, int iy, int dir) const;
  void set_target_from(Car& c, int ix, int iy);

  ManhattanConfig cfg_;
  std::vector<VehicleState> states_;
  std::vector<Car> cars_;
};

}  // namespace vanet::mobility
