#include "mobility/idm_highway.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::mobility {

IdmHighwayModel::IdmHighwayModel(HighwayConfig cfg) : cfg_{cfg} {
  VANET_ASSERT(cfg_.length > 0.0);
  VANET_ASSERT(cfg_.lanes_per_direction >= 1);
}

VehicleId IdmHighwayModel::add_vehicle(int direction, int lane, double s,
                                       double desired_speed) {
  VANET_ASSERT(direction == 0 || (direction == 1 && cfg_.bidirectional));
  VANET_ASSERT(lane >= 0 && lane < cfg_.lanes_per_direction);
  VANET_ASSERT(s >= 0.0 && s < cfg_.length);
  Car c;
  c.s = s;
  c.speed = std::max(0.0, desired_speed * 0.8);  // enter below free-flow speed
  c.desired_speed = desired_speed;
  c.lane = lane;
  c.direction = direction;
  const auto id = static_cast<VehicleId>(cars_.size());
  cars_.push_back(c);
  VehicleState blank;
  blank.id = id;
  states_.push_back(blank);
  sync_world_state(id);
  return id;
}

void IdmHighwayModel::populate(int per_direction, core::Rng& rng) {
  const int directions = cfg_.bidirectional ? 2 : 1;
  for (int d = 0; d < directions; ++d) {
    for (int i = 0; i < per_direction; ++i) {
      const double s = rng.uniform(0.0, cfg_.length);
      const int lane =
          static_cast<int>(rng.uniform_int(0, cfg_.lanes_per_direction - 1));
      const double v0 = std::max(
          5.0, rng.normal(cfg_.idm.desired_speed, cfg_.idm.desired_speed_stddev));
      add_vehicle(d, lane, s, v0);
    }
  }
}

void IdmHighwayModel::sync_world_state(VehicleId id) {
  const Car& c = cars_[id];
  VehicleState& w = states_[id];
  w.id = id;
  if (c.direction == 0) {
    w.pos = {c.s, c.lane * cfg_.lane_width};
    w.heading = {1.0, 0.0};
  } else {
    w.pos = {cfg_.length - c.s, -(cfg_.median_gap + c.lane * cfg_.lane_width)};
    w.heading = {-1.0, 0.0};
  }
  w.speed = c.speed;
  w.accel = c.accel;
  w.lane = c.direction * cfg_.lanes_per_direction + c.lane;
}

double IdmHighwayModel::idm_accel(double v, double v0, double gap,
                                  double leader_speed) const {
  const IdmParams& p = cfg_.idm;
  const double free_term = 1.0 - std::pow(v / std::max(v0, 0.1), 4.0);
  if (gap < 0.0) return p.max_accel * free_term;  // free road
  const double dv = v - leader_speed;
  const double s_star =
      p.min_gap + std::max(0.0, v * p.time_headway +
                                    v * dv / (2.0 * std::sqrt(p.max_accel *
                                                              p.comfortable_decel)));
  const double g = std::max(gap, 0.1);
  return p.max_accel * (free_term - (s_star / g) * (s_star / g));
}

bool IdmHighwayModel::leader_of(VehicleId self, int lane, double s, double& gap,
                                double& leader_speed) const {
  const Car& me = cars_[self];
  double best = cfg_.length + 1.0;
  bool found = false;
  for (VehicleId other = 0; other < cars_.size(); ++other) {
    if (other == self) continue;
    const Car& o = cars_[other];
    if (o.direction != me.direction || o.lane != lane) continue;
    double ahead = o.s - s;
    if (ahead <= 0.0) ahead += cfg_.length;  // ring wrap
    if (ahead < best) {
      best = ahead;
      leader_speed = o.speed;
      found = true;
    }
  }
  if (!found) return false;
  gap = best - cfg_.idm.vehicle_length;
  return true;
}

bool IdmHighwayModel::follower_of(VehicleId self, int lane, double s, double& gap,
                                  double& follower_speed) const {
  const Car& me = cars_[self];
  double best = cfg_.length + 1.0;
  bool found = false;
  for (VehicleId other = 0; other < cars_.size(); ++other) {
    if (other == self) continue;
    const Car& o = cars_[other];
    if (o.direction != me.direction || o.lane != lane) continue;
    double behind = s - o.s;
    if (behind <= 0.0) behind += cfg_.length;
    if (behind < best) {
      best = behind;
      follower_speed = o.speed;
      found = true;
    }
  }
  if (!found) return false;
  gap = best - cfg_.idm.vehicle_length;
  return true;
}

void IdmHighwayModel::maybe_change_lane(VehicleId id, core::Rng& rng) {
  Car& c = cars_[id];
  double cur_gap = -1.0, cur_leader_speed = 0.0;
  leader_of(id, c.lane, c.s, cur_gap, cur_leader_speed);
  for (const int target : {c.lane - 1, c.lane + 1}) {
    if (target < 0 || target >= cfg_.lanes_per_direction) continue;
    double new_gap = -1.0, new_leader_speed = 0.0;
    const bool has_leader = leader_of(id, target, c.s, new_gap, new_leader_speed);
    double back_gap = -1.0, follower_speed = 0.0;
    const bool has_follower =
        follower_of(id, target, c.s, back_gap, follower_speed);
    // Safety: both gaps in the target lane must exceed a speed-dependent margin.
    const double safe_ahead = cfg_.idm.min_gap + 0.5 * c.speed;
    const double safe_behind = cfg_.idm.min_gap + 0.5 * follower_speed;
    if (has_leader && new_gap < safe_ahead) continue;
    if (has_follower && back_gap < safe_behind) continue;
    // Incentive: noticeably more headway than the current lane offers.
    const double cur = cur_gap < 0.0 ? cfg_.length : cur_gap;
    const double alt = !has_leader ? cfg_.length : new_gap;
    if (alt > 1.2 * cur + cfg_.idm.min_gap) {
      c.lane = target;
      return;
    }
  }
  (void)rng;
}

void IdmHighwayModel::step(double dt, core::Rng& rng) {
  VANET_ASSERT(dt > 0.0);
  // Phase 1: compute accelerations against the *current* snapshot.
  for (VehicleId id = 0; id < cars_.size(); ++id) {
    Car& c = cars_[id];
    double gap = -1.0, leader_speed = 0.0;
    if (!leader_of(id, c.lane, c.s, gap, leader_speed)) gap = -1.0;
    c.accel = idm_accel(c.speed, c.desired_speed, gap, leader_speed);
    // Bound braking at a physical limit (emergency braking).
    c.accel = std::max(c.accel, -3.0 * cfg_.idm.comfortable_decel);
  }
  // Phase 2: integrate.
  for (VehicleId id = 0; id < cars_.size(); ++id) {
    Car& c = cars_[id];
    const double new_speed = std::max(0.0, c.speed + c.accel * dt);
    c.s += 0.5 * (c.speed + new_speed) * dt;
    c.speed = new_speed;
    if (c.s >= cfg_.length) c.s -= cfg_.length;
  }
  // Phase 3: occasional lane changes.
  for (VehicleId id = 0; id < cars_.size(); ++id) {
    if (cfg_.lanes_per_direction > 1 && rng.bernoulli(cfg_.lane_change_prob)) {
      maybe_change_lane(id, rng);
    }
  }
  for (VehicleId id = 0; id < cars_.size(); ++id) sync_world_state(id);
}

}  // namespace vanet::mobility
