// Constant-velocity (optionally constant-acceleration) motion on a highway
// ring or in free space.
//
// This is the model under which the paper's link-lifetime equations (Sec.
// IV-A.1, Fig. 3) have closed forms, so the analytical experiments use it as
// ground truth. The highway variant wraps positions modulo the road length to
// keep density constant.
#pragma once

#include <optional>
#include <vector>

#include "mobility/mobility_model.h"

namespace vanet::mobility {

class ConstantVelocityModel final : public MobilityModel {
 public:
  /// Free-space motion: vehicles keep their initial velocity/acceleration.
  ConstantVelocityModel() = default;

  /// Highway ring of `length` metres: x wraps modulo length, y is preserved.
  explicit ConstantVelocityModel(double ring_length) : ring_length_{ring_length} {}

  /// Adds a vehicle and returns its id (assigned sequentially from 0).
  VehicleId add_vehicle(core::Vec2 pos, core::Vec2 heading, double speed,
                        double accel = 0.0, int lane = 0);

  void step(double dt, core::Rng& rng) override;
  const std::vector<VehicleState>& vehicles() const override { return states_; }

 private:
  std::vector<VehicleState> states_;
  std::optional<double> ring_length_;
};

}  // namespace vanet::mobility
