#include "mobility/trace.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/assert.h"

namespace vanet::mobility {

void Trace::add(VehicleId id, TraceSample sample) {
  auto& v = samples_[id];
  VANET_ASSERT_MSG(v.empty() || sample.t >= v.back().t,
                   "trace samples must be time-ordered per vehicle");
  v.push_back(sample);
}

double Trace::end_time() const {
  double end = 0.0;
  for (const auto& [id, v] : samples_) {
    if (!v.empty()) end = std::max(end, v.back().t);
  }
  return end;
}

Trace Trace::load_csv(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss{line};
    std::string field;
    double vals[5] = {};
    VehicleId id = 0;
    bool ok = true;
    for (int i = 0; i < 6 && ok; ++i) {
      if (!std::getline(ss, field, ',')) {
        ok = false;
        break;
      }
      try {
        if (i == 1) {
          id = static_cast<VehicleId>(std::stoul(field));
        } else {
          vals[i > 1 ? i - 1 : i] = std::stod(field);
        }
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) {
      throw std::runtime_error("trace csv: malformed line " +
                               std::to_string(line_no) + ": " + line);
    }
    trace.add(id,
              TraceSample{vals[0], vals[1], vals[2], vals[3], vals[4], line_no});
  }
  return trace;
}

Trace Trace::load_csv_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("trace csv: cannot open " + path);
  return load_csv(in);
}

void Trace::save_csv(std::ostream& out) const {
  out << "# time,id,x,y,speed,angle\n";
  for (const auto& [id, v] : samples_) {
    for (const auto& s : v) {
      out << s.t << ',' << id << ',' << s.x << ',' << s.y << ',' << s.speed << ','
          << s.angle << '\n';
    }
  }
}

void Trace::save_csv_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("trace csv: cannot write " + path);
  save_csv(out);
}

void TraceRecorder::capture(double t, const MobilityModel& model) {
  for (const auto& v : model.vehicles()) {
    trace_.add(v.id, TraceSample{t, v.pos.x, v.pos.y, v.speed,
                                 std::atan2(v.heading.y, v.heading.x)});
  }
}

TracePlaybackModel::TracePlaybackModel(Trace trace) : trace_{std::move(trace)} {
  states_.reserve(trace_.samples().size());
  for (const auto& [id, v] : trace_.samples()) {
    VANET_ASSERT_MSG(!v.empty(), "trace vehicle with no samples");
    VehicleState s;
    s.id = id;
    states_.push_back(s);
  }
  refresh_states();
}

void TracePlaybackModel::step(double dt, core::Rng& /*rng*/) {
  VANET_ASSERT(dt > 0.0);
  clock_ += dt;
  refresh_states();
}

void TracePlaybackModel::refresh_states() {
  std::size_t i = 0;
  for (const auto& [id, v] : trace_.samples()) {
    VehicleState& s = states_[i++];
    if (clock_ <= v.front().t || v.size() == 1) {
      const auto& a = v.front();
      s.pos = {a.x, a.y};
      s.speed = clock_ < a.t ? 0.0 : a.speed;
      s.heading = {std::cos(a.angle), std::sin(a.angle)};
      continue;
    }
    if (clock_ >= v.back().t) {
      const auto& b = v.back();
      s.pos = {b.x, b.y};
      s.speed = 0.0;  // parked at end of trace
      s.heading = {std::cos(b.angle), std::sin(b.angle)};
      continue;
    }
    // Binary search for the bracketing segment [lo, lo+1].
    std::size_t lo = 0, hi = v.size() - 1;
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (v[mid].t <= clock_)
        lo = mid;
      else
        hi = mid;
    }
    const auto& a = v[lo];
    const auto& b = v[lo + 1];
    const double span = b.t - a.t;
    const double u = span > 0.0 ? (clock_ - a.t) / span : 0.0;
    s.pos = {a.x + (b.x - a.x) * u, a.y + (b.y - a.y) * u};
    const core::Vec2 seg{b.x - a.x, b.y - a.y};
    s.heading = seg.norm() > 1e-9 ? seg.normalized()
                                  : core::Vec2{std::cos(a.angle), std::sin(a.angle)};
    s.speed = a.speed + (b.speed - a.speed) * u;
  }
}

}  // namespace vanet::mobility
