// Intentionally empty: VehicleState is a plain aggregate. This TU anchors the
// header into the mobility library so IDEs index it with the right flags.
#include "mobility/vehicle.h"
