#include "mobility/mobility_manager.h"

#include <algorithm>

#include "core/assert.h"

namespace vanet::mobility {

MobilityManager::MobilityManager(core::Simulator& sim,
                                 std::unique_ptr<MobilityModel> model,
                                 core::Rng& rng, core::SimTime tick)
    : sim_{sim}, model_{std::move(model)}, rng_{rng}, tick_{tick} {
  VANET_ASSERT(model_ != nullptr);
  VANET_ASSERT(tick_ > core::SimTime::zero());
  rebuild_index();
}

void MobilityManager::start() {
  if (running_) return;
  running_ = true;
  // One recurring timer drives every tick; cancel() in stop() retires it.
  pending_ = sim_.schedule_every(tick_, tick_, [this] { on_tick(); });
}

void MobilityManager::stop() {
  running_ = false;
  pending_.cancel();
}

void MobilityManager::on_tick() {
  if (!running_) return;
  model_->step(tick_.as_seconds(), rng_);
  rebuild_index();
  for (const auto& fn : listeners_) fn(sim_.now());
}

void MobilityManager::rebuild_index() {
  const auto& vs = model_->vehicles();
  std::fill(index_.begin(), index_.end(), kNoVehicle);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const VehicleId id = vs[i].id;
    if (id >= index_.size()) index_.resize(id + 1, kNoVehicle);
    index_[id] = i;
  }
}

const VehicleState& MobilityManager::state(VehicleId id) const {
  VANET_ASSERT_MSG(has_vehicle(id), "unknown vehicle id");
  return model_->vehicles()[index_[id]];
}

void MobilityManager::add_tick_listener(std::function<void(core::SimTime)> fn) {
  listeners_.push_back(std::move(fn));
}

}  // namespace vanet::mobility
