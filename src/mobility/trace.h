// SUMO-like mobility traces: CSV `(time,id,x,y,speed,angle)` rows.
//
// This is the drop-in substitution for public SUMO `fcd-output` data: our
// generators write the schema, and TracePlaybackModel replays any file in it
// (including converted real traces) with linear interpolation between samples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "mobility/mobility_model.h"

namespace vanet::mobility {

struct TraceSample {
  double t = 0.0;       ///< seconds
  double x = 0.0;       ///< m
  double y = 0.0;       ///< m
  double speed = 0.0;   ///< m/s
  double angle = 0.0;   ///< heading in radians, atan2 convention
  /// Source CSV line of this sample (1-based); 0 for samples built in memory
  /// (TraceRecorder, tests). Diagnostics only — save_csv does not persist it
  /// — so trace↔map validation errors can point at the offending input line.
  std::size_t line = 0;
};

/// In-memory trace: per-vehicle samples sorted by time.
class Trace {
 public:
  void add(VehicleId id, TraceSample sample);

  const std::map<VehicleId, std::vector<TraceSample>>& samples() const {
    return samples_;
  }
  std::size_t vehicle_count() const { return samples_.size(); }
  double end_time() const;

  /// CSV round-trip. Throws std::runtime_error on malformed input.
  static Trace load_csv(std::istream& in);
  static Trace load_csv_file(const std::string& path);
  void save_csv(std::ostream& out) const;
  void save_csv_file(const std::string& path) const;

 private:
  std::map<VehicleId, std::vector<TraceSample>> samples_;
};

/// Records a running MobilityModel into a Trace (call `capture` per tick).
class TraceRecorder {
 public:
  void capture(double t, const MobilityModel& model);
  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }

 private:
  Trace trace_;
};

/// Replays a Trace as a MobilityModel. Vehicle ids are the trace ids; between
/// samples, position is interpolated linearly and speed/heading come from the
/// bracketing segment. Before the first / after the last sample the vehicle
/// is pinned at the boundary sample.
class TracePlaybackModel final : public MobilityModel {
 public:
  explicit TracePlaybackModel(Trace trace);

  void step(double dt, core::Rng& rng) override;
  const std::vector<VehicleState>& vehicles() const override { return states_; }
  double clock() const { return clock_; }

 private:
  void refresh_states();

  Trace trace_;
  double clock_ = 0.0;
  std::vector<VehicleState> states_;
};

}  // namespace vanet::mobility
