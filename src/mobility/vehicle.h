// Kinematic state of one vehicle.
#pragma once

#include <cstdint>

#include "core/vec2.h"

namespace vanet::mobility {

using VehicleId = std::uint32_t;

/// Instantaneous kinematic state. `heading` is a unit vector; scalar `speed`
/// and `accel` are measured along it, so `velocity() = heading * speed`.
struct VehicleState {
  VehicleId id = 0;
  core::Vec2 pos;
  core::Vec2 heading{1.0, 0.0};
  double speed = 0.0;   ///< m/s, non-negative
  double accel = 0.0;   ///< m/s^2 along heading (signed)
  int lane = 0;         ///< model-specific lane index

  core::Vec2 velocity() const { return heading * speed; }
  core::Vec2 acceleration() const { return heading * accel; }
};

}  // namespace vanet::mobility
