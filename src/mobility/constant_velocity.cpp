#include "mobility/constant_velocity.h"

#include <cmath>

#include "core/assert.h"

namespace vanet::mobility {

VehicleId ConstantVelocityModel::add_vehicle(core::Vec2 pos, core::Vec2 heading,
                                             double speed, double accel, int lane) {
  VANET_ASSERT_MSG(heading.norm() > 0.0, "heading must be non-zero");
  VehicleState s;
  s.id = static_cast<VehicleId>(states_.size());
  s.pos = pos;
  s.heading = heading.normalized();
  s.speed = speed;
  s.accel = accel;
  s.lane = lane;
  states_.push_back(s);
  return s.id;
}

void ConstantVelocityModel::step(double dt, core::Rng& /*rng*/) {
  for (auto& s : states_) {
    // Exact constant-acceleration kinematics; speed clamps at zero (vehicles
    // do not reverse).
    double new_speed = s.speed + s.accel * dt;
    double travelled = 0.0;
    if (new_speed < 0.0) {
      // Decelerated to a stop partway through the step.
      const double t_stop = s.accel != 0.0 ? -s.speed / s.accel : 0.0;
      travelled = s.speed * t_stop + 0.5 * s.accel * t_stop * t_stop;
      new_speed = 0.0;
      s.accel = 0.0;
    } else {
      travelled = s.speed * dt + 0.5 * s.accel * dt * dt;
    }
    s.pos += s.heading * travelled;
    s.speed = new_speed;
    if (ring_length_) {
      s.pos.x = std::fmod(s.pos.x, *ring_length_);
      if (s.pos.x < 0.0) s.pos.x += *ring_length_;
    }
  }
}

}  // namespace vanet::mobility
