#include "mobility/manhattan_grid.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::mobility {

ManhattanGridModel::ManhattanGridModel(ManhattanConfig cfg) : cfg_{cfg} {
  VANET_ASSERT(cfg_.streets_x >= 2 && cfg_.streets_y >= 2);
  VANET_ASSERT(cfg_.block > 0.0);
}

core::Vec2 ManhattanGridModel::dir_vec(int dir) {
  switch (dir) {
    case 0: return {1.0, 0.0};
    case 1: return {-1.0, 0.0};
    case 2: return {0.0, 1.0};
    default: return {0.0, -1.0};
  }
}

bool ManhattanGridModel::target_in_grid(int ix, int iy, int dir) const {
  switch (dir) {
    case 0: return ix + 1 < cfg_.streets_x;
    case 1: return ix - 1 >= 0;
    case 2: return iy + 1 < cfg_.streets_y;
    default: return iy - 1 >= 0;
  }
}

int ManhattanGridModel::choose_turn(int ix, int iy, int incoming_dir,
                                    core::Rng& rng) const {
  // Relative options: straight keeps incoming_dir; left/right are the two
  // perpendicular directions. (For +x: left=+y, right=-y, and so on.)
  static constexpr int kLeft[4] = {2, 3, 1, 0};
  static constexpr int kRight[4] = {3, 2, 0, 1};
  static constexpr int kReverse[4] = {1, 0, 3, 2};
  struct Option {
    int dir;
    double weight;
  };
  std::vector<Option> options;
  const double straight_w =
      std::max(0.0, 1.0 - cfg_.turn_prob_left - cfg_.turn_prob_right);
  if (target_in_grid(ix, iy, incoming_dir))
    options.push_back({incoming_dir, straight_w});
  if (target_in_grid(ix, iy, kLeft[incoming_dir]))
    options.push_back({kLeft[incoming_dir], cfg_.turn_prob_left});
  if (target_in_grid(ix, iy, kRight[incoming_dir]))
    options.push_back({kRight[incoming_dir], cfg_.turn_prob_right});
  double total = 0.0;
  for (const auto& o : options) total += o.weight;
  if (options.empty() || total <= 0.0) return kReverse[incoming_dir];
  double pick = rng.uniform(0.0, total);
  for (const auto& o : options) {
    if (pick < o.weight) return o.dir;
    pick -= o.weight;
  }
  return options.back().dir;
}

void ManhattanGridModel::set_target_from(Car& c, int ix, int iy) {
  const core::Vec2 d = dir_vec(c.dir);
  c.target = {(ix + static_cast<int>(d.x)) * cfg_.block,
              (iy + static_cast<int>(d.y)) * cfg_.block};
}

VehicleId ManhattanGridModel::add_vehicle(int ix, int iy, int dir, double speed) {
  VANET_ASSERT(ix >= 0 && ix < cfg_.streets_x && iy >= 0 && iy < cfg_.streets_y);
  VANET_ASSERT(dir >= 0 && dir < 4);
  VANET_ASSERT_MSG(target_in_grid(ix, iy, dir), "initial direction leaves the grid");
  Car c;
  c.pos = {ix * cfg_.block, iy * cfg_.block};
  c.dir = dir;
  c.speed = std::max(1.0, speed);
  set_target_from(c, ix, iy);
  cars_.push_back(c);
  VehicleState w;
  w.id = static_cast<VehicleId>(states_.size());
  states_.push_back(w);
  // Fill world mirror.
  VehicleState& s = states_.back();
  s.pos = c.pos;
  s.heading = dir_vec(c.dir);
  s.speed = c.speed;
  return s.id;
}

void ManhattanGridModel::populate(int count, core::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    int ix = 0, iy = 0, dir = 0;
    do {
      ix = static_cast<int>(rng.uniform_int(0, cfg_.streets_x - 1));
      iy = static_cast<int>(rng.uniform_int(0, cfg_.streets_y - 1));
      dir = static_cast<int>(rng.uniform_int(0, 3));
    } while (!target_in_grid(ix, iy, dir));
    const double v = std::max(2.0, rng.normal(cfg_.speed_mean, cfg_.speed_stddev));
    add_vehicle(ix, iy, dir, v);
  }
}

void ManhattanGridModel::step(double dt, core::Rng& rng) {
  VANET_ASSERT(dt > 0.0);
  for (std::size_t i = 0; i < cars_.size(); ++i) {
    Car& c = cars_[i];
    double remaining = c.speed * dt;
    // A vehicle may cross more than one intersection per step at high dt.
    int hops = 0;
    while (remaining > 1e-9 && hops < 16) {
      const double dist = (c.target - c.pos).norm();
      if (remaining < dist) {
        c.pos += dir_vec(c.dir) * remaining;
        remaining = 0.0;
      } else {
        c.pos = c.target;
        remaining -= dist;
        const int ix = static_cast<int>(std::lround(c.pos.x / cfg_.block));
        const int iy = static_cast<int>(std::lround(c.pos.y / cfg_.block));
        c.dir = choose_turn(ix, iy, c.dir, rng);
        set_target_from(c, ix, iy);
        ++hops;
      }
    }
    VehicleState& w = states_[i];
    w.pos = c.pos;
    w.heading = dir_vec(c.dir);
    w.speed = c.speed;
    w.accel = 0.0;
  }
}

}  // namespace vanet::mobility
