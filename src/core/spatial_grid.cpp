#include "core/spatial_grid.h"

#include <algorithm>

#include "core/assert.h"
#include "core/grid_key.h"

namespace vanet::core {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_{cell_size} {
  VANET_ASSERT(cell_size > 0.0);
}

SpatialGrid::CellKey SpatialGrid::key_for(Vec2 pos) const {
  return grid_cell_key(grid_cell_coord(pos.x, cell_size_),
                       grid_cell_coord(pos.y, cell_size_));
}

void SpatialGrid::insert(Id id, Vec2 pos) {
  if (id >= slots_.size()) slots_.resize(id + 1);
  VANET_ASSERT_MSG(!slots_[id].present, "duplicate insert");
  const CellKey key = key_for(pos);
  slots_[id] = Slot{pos, key, true};
  cells_[key].push_back(id);
  ++count_;
}

void SpatialGrid::remove(Id id) {
  VANET_ASSERT_MSG(contains(id), "remove of unknown id");
  auto& bucket = cells_[slots_[id].cell];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  slots_[id].present = false;
  --count_;
}

void SpatialGrid::update(Id id, Vec2 pos) {
  VANET_ASSERT_MSG(contains(id), "update of unknown id");
  Slot& slot = slots_[id];
  const CellKey new_key = key_for(pos);
  if (slot.cell != new_key) {
    auto& bucket = cells_[slot.cell];
    bucket.erase(std::find(bucket.begin(), bucket.end(), id));
    cells_[new_key].push_back(id);
    slot.cell = new_key;
  }
  slot.pos = pos;
}

Vec2 SpatialGrid::position(Id id) const {
  VANET_ASSERT_MSG(contains(id), "position of unknown id");
  return slots_[id].pos;
}

void SpatialGrid::query_radius_into(Vec2 center, double radius, Id exclude,
                                    std::vector<Id>& out) const {
  out.clear();
  const double r2 = radius * radius;
  const std::int64_t lo_x = grid_cell_coord(center.x - radius, cell_size_);
  const std::int64_t hi_x = grid_cell_coord(center.x + radius, cell_size_);
  const std::int64_t lo_y = grid_cell_coord(center.y - radius, cell_size_);
  const std::int64_t hi_y = grid_cell_coord(center.y + radius, cell_size_);
  for (std::int64_t cx = lo_x; cx <= hi_x; ++cx) {
    for (std::int64_t cy = lo_y; cy <= hi_y; ++cy) {
      auto it = cells_.find(grid_cell_key(cx, cy));
      if (it == cells_.end()) continue;
      for (Id id : it->second) {
        if (id == exclude) continue;
        if ((slots_[id].pos - center).norm_sq() < r2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<SpatialGrid::Id> SpatialGrid::query_radius(Vec2 center,
                                                       double radius) const {
  std::vector<Id> out;
  query_radius_into(center, radius, kNoExclude, out);
  return out;
}

std::vector<SpatialGrid::Id> SpatialGrid::query_radius(Vec2 center, double radius,
                                                       Id exclude) const {
  std::vector<Id> out;
  query_radius_into(center, radius, exclude, out);
  return out;
}

}  // namespace vanet::core
