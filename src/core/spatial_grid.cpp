#include "core/spatial_grid.h"

#include <algorithm>

#include "core/assert.h"
#include "core/grid_key.h"

namespace vanet::core {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_{cell_size} {
  VANET_ASSERT(cell_size > 0.0);
}

SpatialGrid::CellKey SpatialGrid::key_for(Vec2 pos) const {
  return grid_cell_key(grid_cell_coord(pos.x, cell_size_),
                       grid_cell_coord(pos.y, cell_size_));
}

void SpatialGrid::insert(Id id, Vec2 pos) {
  if (id >= slots_.size()) slots_.resize(id + 1);
  VANET_ASSERT_MSG(!slots_[id].present, "duplicate insert");
  const CellKey key = key_for(pos);
  Bucket& bucket = cells_[key];
  bucket.push_back(Item{id, pos});
  slots_[id] = Slot{&bucket, static_cast<std::uint32_t>(bucket.size() - 1),
                    key, true};
  ++count_;
}

void SpatialGrid::detach(Id id) {
  Slot& slot = slots_[id];
  Bucket& bucket = *slot.bucket;
  const std::uint32_t idx = slot.idx;
  bucket[idx] = bucket.back();
  slots_[bucket[idx].id].idx = idx;
  bucket.pop_back();
}

void SpatialGrid::remove(Id id) {
  VANET_ASSERT_MSG(contains(id), "remove of unknown id");
  detach(id);
  slots_[id].present = false;
  slots_[id].bucket = nullptr;
  --count_;
}

void SpatialGrid::update(Id id, Vec2 pos) {
  VANET_ASSERT_MSG(contains(id), "update of unknown id");
  Slot& slot = slots_[id];
  const CellKey new_key = key_for(pos);
  if (slot.cell == new_key) {
    (*slot.bucket)[slot.idx].pos = pos;
    return;
  }
  detach(id);
  Bucket& bucket = cells_[new_key];
  bucket.push_back(Item{id, pos});
  slot.bucket = &bucket;
  slot.idx = static_cast<std::uint32_t>(bucket.size() - 1);
  slot.cell = new_key;
}

Vec2 SpatialGrid::position(Id id) const {
  VANET_ASSERT_MSG(contains(id), "position of unknown id");
  const Slot& slot = slots_[id];
  return (*slot.bucket)[slot.idx].pos;
}

void SpatialGrid::query_radius_into(Vec2 center, double radius, Id exclude,
                                    std::vector<Id>& out) const {
  out.clear();
  const double r2 = radius * radius;
  const std::int64_t lo_x = grid_cell_coord(center.x - radius, cell_size_);
  const std::int64_t hi_x = grid_cell_coord(center.x + radius, cell_size_);
  const std::int64_t lo_y = grid_cell_coord(center.y - radius, cell_size_);
  const std::int64_t hi_y = grid_cell_coord(center.y + radius, cell_size_);
  for (std::int64_t cx = lo_x; cx <= hi_x; ++cx) {
    for (std::int64_t cy = lo_y; cy <= hi_y; ++cy) {
      auto it = cells_.find(grid_cell_key(cx, cy));
      if (it == cells_.end()) continue;
      for (const Item& item : it->second) {
        if (item.id == exclude) continue;
        if ((item.pos - center).norm_sq() < r2) out.push_back(item.id);
      }
    }
  }
  // Bucket order is swap-erase history; the sort restores the deterministic
  // id order every caller iterates in.
  std::sort(out.begin(), out.end());
}

std::vector<SpatialGrid::Id> SpatialGrid::query_radius(Vec2 center,
                                                       double radius) const {
  std::vector<Id> out;
  query_radius_into(center, radius, kNoExclude, out);
  return out;
}

std::vector<SpatialGrid::Id> SpatialGrid::query_radius(Vec2 center, double radius,
                                                       Id exclude) const {
  std::vector<Id> out;
  query_radius_into(center, radius, exclude, out);
  return out;
}

}  // namespace vanet::core
