#include "core/spatial_grid.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace vanet::core {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_{cell_size} {
  VANET_ASSERT(cell_size > 0.0);
}

SpatialGrid::CellKey SpatialGrid::key_for(Vec2 pos) const {
  const auto cx = static_cast<std::int64_t>(std::floor(pos.x / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor(pos.y / cell_size_));
  // Pack two 32-bit cell coordinates into one key.
  return (cx << 32) ^ (cy & 0xffffffffLL);
}

void SpatialGrid::insert(Id id, Vec2 pos) {
  VANET_ASSERT_MSG(!positions_.contains(id), "duplicate insert");
  positions_[id] = pos;
  cells_[key_for(pos)].push_back(id);
}

void SpatialGrid::remove(Id id) {
  auto it = positions_.find(id);
  VANET_ASSERT_MSG(it != positions_.end(), "remove of unknown id");
  auto& bucket = cells_[key_for(it->second)];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  positions_.erase(it);
}

void SpatialGrid::update(Id id, Vec2 pos) {
  auto it = positions_.find(id);
  VANET_ASSERT_MSG(it != positions_.end(), "update of unknown id");
  const CellKey old_key = key_for(it->second);
  const CellKey new_key = key_for(pos);
  if (old_key != new_key) {
    auto& bucket = cells_[old_key];
    bucket.erase(std::find(bucket.begin(), bucket.end(), id));
    cells_[new_key].push_back(id);
  }
  it->second = pos;
}

Vec2 SpatialGrid::position(Id id) const {
  auto it = positions_.find(id);
  VANET_ASSERT_MSG(it != positions_.end(), "position of unknown id");
  return it->second;
}

std::vector<SpatialGrid::Id> SpatialGrid::query_radius(Vec2 center,
                                                       double radius) const {
  std::vector<Id> out;
  const double r2 = radius * radius;
  const auto lo_x = static_cast<std::int64_t>(std::floor((center.x - radius) / cell_size_));
  const auto hi_x = static_cast<std::int64_t>(std::floor((center.x + radius) / cell_size_));
  const auto lo_y = static_cast<std::int64_t>(std::floor((center.y - radius) / cell_size_));
  const auto hi_y = static_cast<std::int64_t>(std::floor((center.y + radius) / cell_size_));
  for (std::int64_t cx = lo_x; cx <= hi_x; ++cx) {
    for (std::int64_t cy = lo_y; cy <= hi_y; ++cy) {
      const CellKey key = (cx << 32) ^ (cy & 0xffffffffLL);
      auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (Id id : it->second) {
        const Vec2 p = positions_.at(id);
        if ((p - center).norm_sq() < r2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SpatialGrid::Id> SpatialGrid::query_radius(Vec2 center, double radius,
                                                       Id exclude) const {
  std::vector<Id> out = query_radius(center, radius);
  out.erase(std::remove(out.begin(), out.end(), exclude), out.end());
  return out;
}

}  // namespace vanet::core
