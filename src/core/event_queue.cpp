#include "core/event_queue.h"

namespace vanet::core {

EventQueue::~EventQueue() {
  // Live callbacks are exactly the heap entries (nothing fires during
  // destruction); boxed ones own heap memory that must be released.
  for (const HeapEntry& e : heap_) {
    Slot& s = slot_ref(e.slot);
    s.destroy(s.storage);
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ == kNullSlot) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
    ++stats_.slab_allocations;
    // Thread the new slab onto the free list so the lowest index pops first.
    Slot* slab = slabs_.back().get();
    const std::uint32_t base = slot_count_;
    for (std::uint32_t i = kSlabSlots; i-- > 0;) {
      slab[i].aux = free_head_;
      free_head_ = base + i;
    }
    slot_count_ += kSlabSlots;
  }
  const std::uint32_t idx = free_head_;
  Slot& s = slot_ref(idx);
  free_head_ = s.aux;
  return idx;
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slot_ref(idx);
  if (s.reserved_seq) {
    for (auto& entry : reserved_ends_) {
      if (entry.first == idx) {
        entry = reserved_ends_.back();
        reserved_ends_.pop_back();
        break;
      }
    }
    s.reserved_seq = false;
  }
  ++s.generation;  // stale handles to this slot become inert
  s.pos = kFreePos;
  s.aux = free_head_;
  free_head_ = idx;
}

std::uint32_t EventQueue::reserved_end_of(std::uint32_t idx) const {
  for (const auto& [slot, end] : reserved_ends_) {
    if (slot == idx) return end;
  }
  VANET_ASSERT_MSG(false, "reserved-seq event without a registered block");
  return 0;
}

void EventQueue::sift_up(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!entry_less(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void EventQueue::sift_down(std::uint32_t pos) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  const HeapEntry e = heap_[pos];
  for (;;) {
    const std::uint32_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 3 < n ? first_child + 3 : n - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (entry_less(heap_[c], heap_[best])) best = c;
    }
    if (!entry_less(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

void EventQueue::heap_push(const HeapEntry& e) {
  heap_.push_back(e);
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
  if (heap_.size() > stats_.peak_pending) stats_.peak_pending = heap_.size();
}

void EventQueue::heap_remove(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != last) {
    place(pos, heap_[last]);
    heap_.pop_back();
    if (pos > 0 && entry_less(heap_[pos], heap_[(pos - 1) >> 2])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    heap_.pop_back();
  }
}

std::uint32_t EventQueue::reserve_seq_block(std::uint32_t count) {
  VANET_ASSERT_MSG(next_seq_ <= kSeqLimit - count,
                   "event sequence space exhausted by reservation");
  const std::uint32_t base = next_seq_;
  next_seq_ += count;
  return base;
}

bool EventQueue::run_next(SimTime& now) {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  heap_remove(0);
  VANET_ASSERT_MSG(top.at >= now, "event scheduled in the past");
  now = top.at;
  ++dispatched_;
  Slot& s = slot_ref(top.slot);  // slabs never move: stable across callbacks
  s.pos = kFiringPos;
  const SimTime next = s.invoke(s.storage, top.at);
  if (s.recurring && !next.is_negative() && s.pos == kFiringPos) {
    VANET_ASSERT_MSG(next >= top.at, "recurring event re-armed in the past");
    std::uint32_t seq;
    if (s.reserved_seq) {
      VANET_ASSERT_MSG(s.aux < reserved_end_of(top.slot),
                       "reserved-seq event fired past its block (seqs would "
                       "collide with the shared counter)");
      seq = s.aux++;
    } else {
      seq = alloc_seq();
    }
    heap_push(HeapEntry{next, seq, top.slot});
  } else {
    s.destroy(s.storage);
    release_slot(top.slot);
  }
  return true;
}

void EventQueue::do_cancel(std::uint32_t slot_idx, std::uint32_t generation) {
  if (slot_idx >= slot_count_) return;
  Slot& s = slot_ref(slot_idx);
  if (s.generation != generation) return;
  if (s.pos == kFreePos || s.pos == kFiringCancelledPos) return;
  if (s.pos == kFiringPos) {
    // Mid-callback: a one-shot is already past the point of cancellation;
    // a recurring event records the cancel so run_next skips the re-arm.
    if (s.recurring) s.pos = kFiringCancelledPos;
    return;
  }
  heap_remove(s.pos);  // eager removal: dead timers leave the heap now
  s.destroy(s.storage);
  release_slot(slot_idx);
}

bool EventQueue::is_pending(std::uint32_t slot_idx,
                            std::uint32_t generation) const {
  if (slot_idx >= slot_count_) return false;
  const Slot& s = slot_ref(slot_idx);
  if (s.generation != generation) return false;
  if (s.pos == kFreePos || s.pos == kFiringCancelledPos) return false;
  if (s.pos == kFiringPos) return s.recurring;
  return true;
}

}  // namespace vanet::core
