#include "core/event_queue.h"

#include "core/assert.h"

namespace vanet::core {

EventHandle EventQueue::schedule(SimTime at, Callback fn) {
  VANET_ASSERT_MSG(fn != nullptr, "scheduling a null callback");
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{cancelled};
  heap_.push(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::run_next(SimTime& now) {
  drop_cancelled();
  if (heap_.empty()) return false;
  // A const_cast-free pop: copy the callback out, then pop.
  Entry entry = heap_.top();
  heap_.pop();
  VANET_ASSERT_MSG(entry.at >= now, "event scheduled in the past");
  now = entry.at;
  *entry.cancelled = true;  // mark as fired so the handle reports !pending()
  ++dispatched_;
  entry.fn();
  return true;
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? SimTime::max() : heap_.top().at;
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

}  // namespace vanet::core
