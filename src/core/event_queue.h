// Deterministic discrete-event queue.
//
// Events at equal timestamps are dispatched in insertion order (FIFO), which
// together with the integral SimTime makes whole simulations reproducible.
// Scheduling returns a cancellable handle; cancellation is O(1) (lazy removal).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "core/sim_time.h"

namespace vanet::core {

/// Handle to a scheduled event. Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not yet fired. Safe to call repeatedly.
  void cancel() {
    if (auto s = state_.lock()) *s = true;
  }

  /// True while the event is still pending (scheduled and not cancelled/fired).
  bool pending() const {
    auto s = state_.lock();
    return s && !*s;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> state) : state_{std::move(state)} {}
  std::weak_ptr<bool> state_;  // true => cancelled
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute time `at`.
  EventHandle schedule(SimTime at, Callback fn);

  /// Pop and run the next non-cancelled event; returns false if empty.
  /// `now` is updated to the event's timestamp before the callback runs.
  bool run_next(SimTime& now);

  /// Timestamp of the next pending event, or SimTime::max() when empty.
  SimTime next_time() const;

  bool empty() const;
  std::size_t size() const { return heap_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace vanet::core
