// Zero-steady-state-allocation discrete-event queue.
//
// Events at equal timestamps are dispatched in insertion order (FIFO), which
// together with the integral SimTime makes whole simulations reproducible.
//
// Core design (see docs/PERFORMANCE.md for the full write-up):
//  - Events live in reusable slots carved out of 256-slot slabs; slots are
//    recycled through a free list, so steady-state scheduling allocates
//    nothing. Slabs never move, so slot references stay valid while a
//    callback runs even if the pool grows underneath it.
//  - Callbacks are stored in 96 bytes of inline storage inside the slot
//    (enough for every closure the simulator schedules); oversized captures
//    fall back to one heap box and bump a counter that proves the fallback
//    stays cold.
//  - The priority structure is a 4-ary implicit heap over 16-byte
//    (time, seq, slot) entries — shallower and more cache-friendly than a
//    binary heap of fat nodes, and entries never carry the callback.
//  - EventHandle is a trivially-copyable {queue, slot, generation} triple.
//    cancel()/pending() are O(1) field checks (no weak_ptr, no atomics), a
//    cancel eagerly removes the heap entry (dead timers stop inflating the
//    heap), and a stale handle whose slot has been reused is inert because
//    the generation no longer matches.
//  - Recurring events (schedule_every / schedule_recurring) re-arm in place:
//    the same slot and callback are reused across firings, consuming exactly
//    one sequence number per firing at the point the callback returns — the
//    same point at which a self-rescheduling callback would have called
//    schedule(), so migrating periodic users preserves equal-time FIFO order
//    bit-for-bit.
//  - reserve_seq_block() lets a caller pre-claim the sequence numbers a batch
//    of future events will use (CbrTraffic claims exactly the block its old
//    schedule-everything-upfront loop consumed), again preserving global
//    dispatch order while keeping only one pending event per flow.
//
// Sequence numbers are 32-bit so a heap entry fits in 16 bytes; one queue
// therefore supports 2^32-1 schedules over its lifetime (hours of simulated
// load — a fresh Simulator per run, as every harness here creates, never gets
// close). Exhaustion fails loudly via VANET_ASSERT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/assert.h"
#include "core/sim_time.h"

namespace vanet::core {

class EventQueue;

/// Handle to a scheduled event. Default-constructed handles are inert.
/// Trivially copyable; does not own the event (dropping a handle never
/// cancels). Must not outlive the EventQueue it came from.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not yet fired (for recurring events: stop the
  /// recurrence and reclaim the slot). Safe to call repeatedly.
  void cancel();

  /// True while the event is still pending (scheduled and not cancelled or
  /// fired). A recurring event stays pending across firings until stopped.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
      : queue_{queue}, slot_{slot}, generation_{generation} {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  /// Inline capacity for callback state. The largest closures the simulator
  /// schedules capture a Packet by value (~96 bytes with the capturing
  /// object's pointer); anything larger goes through one heap box and bumps
  /// alloc_stats().oversize_callbacks.
  static constexpr std::size_t kInlineBytes = 96;

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` (any void() callable) to run once at absolute time `at`.
  template <typename F>
  EventHandle schedule(SimTime at, F&& fn);

  /// Schedule `fn` (void()) at `first_at`, then every `period` after the
  /// previous firing — drift-free, since the next time is computed from the
  /// fired-at timestamp, not wall progress. The slot is reused across
  /// firings. Stop with EventHandle::cancel() (also valid mid-callback).
  template <typename F>
  EventHandle schedule_every(SimTime first_at, SimTime period, F&& fn);

  /// Schedule a variable-period recurring event. `fn` is SimTime(SimTime
  /// fired_at) and returns the next absolute firing time, or any negative
  /// SimTime to stop and release the slot.
  template <typename F>
  EventHandle schedule_recurring(SimTime first_at, F&& fn);

  /// As schedule_recurring, but the event draws its per-firing sequence
  /// numbers consecutively from the `seq_count`-wide block starting at
  /// `seq_base` (obtained via reserve_seq_block) instead of from the shared
  /// counter. Lets a batch scheduler keep the exact equal-time FIFO rank its
  /// events would have had if they had all been scheduled upfront. Firing
  /// more than `seq_count` times fails loudly: seqs past the block would
  /// collide with the shared counter and silently break FIFO determinism.
  template <typename F>
  EventHandle schedule_recurring(SimTime first_at, std::uint32_t seq_base,
                                 std::uint32_t seq_count, F&& fn);

  /// Claim `count` consecutive sequence numbers and return the first.
  std::uint32_t reserve_seq_block(std::uint32_t count);

  /// Pop and run the next event; returns false if empty.
  /// `now` is updated to the event's timestamp before the callback runs.
  bool run_next(SimTime& now);

  /// Timestamp of the next pending event, or SimTime::max() when empty.
  SimTime next_time() const {
    return heap_.empty() ? SimTime::max() : heap_[0].at;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

  /// Allocation telemetry: steady-state scheduling must not allocate, and
  /// these counters are how benches prove it (see bench_scenario_throughput).
  struct AllocStats {
    std::uint64_t slab_allocations = 0;   ///< 256-slot pool growth events
    std::uint64_t oversize_callbacks = 0; ///< closures that missed the SBO
    std::size_t peak_pending = 0;         ///< high-water heap depth
  };
  const AllocStats& alloc_stats() const { return stats_; }

 private:
  friend class EventHandle;

  using InvokeFn = SimTime (*)(void* obj, SimTime fired_at);
  using DestroyFn = void (*)(void* obj);

  static constexpr std::uint32_t kSlabShift = 8;  // 256 slots per slab
  static constexpr std::uint32_t kSlabSlots = 1u << kSlabShift;
  static constexpr std::uint32_t kSlabMask = kSlabSlots - 1;
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;
  // Slot::pos sentinels (anything below is a real heap index).
  static constexpr std::uint32_t kFreePos = 0xffffffffu;
  static constexpr std::uint32_t kFiringPos = 0xfffffffeu;
  static constexpr std::uint32_t kFiringCancelledPos = 0xfffffffdu;
  static constexpr std::uint32_t kSeqLimit = 0xffffffffu;

  /// One pooled event: 32 bytes of bookkeeping + inline callback storage.
  struct Slot {
    InvokeFn invoke = nullptr;
    DestroyFn destroy = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t pos = kFreePos;  ///< heap index or a k*Pos sentinel
    /// Next reserved sequence number while queued with reserved seqs;
    /// free-list link while on the free list.
    std::uint32_t aux = kNullSlot;
    bool recurring = false;
    bool reserved_seq = false;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };
  static_assert(sizeof(Slot) == 128, "one slot should span two cache lines");

  /// 16-byte heap entry; the callback stays in the slot.
  struct HeapEntry {
    SimTime at;
    std::uint32_t seq = 0;
    std::uint32_t slot = 0;
  };
  static_assert(sizeof(HeapEntry) == 16, "heap entries must stay compact");

  // ---- adapters: uniform invoke signature over one-shot / recurring -------
  template <typename D>
  struct OneShot {
    static SimTime invoke(void* obj, SimTime) {
      (*static_cast<D*>(obj))();
      return SimTime::micros(-1);
    }
    static void destroy(void* obj) { static_cast<D*>(obj)->~D(); }
  };
  template <typename D>
  struct Recurring {
    static SimTime invoke(void* obj, SimTime fired_at) {
      return (*static_cast<D*>(obj))(fired_at);
    }
    static void destroy(void* obj) { static_cast<D*>(obj)->~D(); }
  };
  template <typename D, typename Inline>
  struct Boxed {
    static SimTime invoke(void* obj, SimTime fired_at) {
      return Inline::invoke(*static_cast<D**>(obj), fired_at);
    }
    static void destroy(void* obj) { delete *static_cast<D**>(obj); }
  };

  template <template <typename> class Adapter, typename F>
  std::uint32_t emplace_event(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (requires { fn == nullptr; }) {
      VANET_ASSERT_MSG(!(fn == nullptr), "scheduling a null callback");
    }
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot_ref(idx);
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) D(std::forward<F>(fn));
      s.invoke = &Adapter<D>::invoke;
      s.destroy = &Adapter<D>::destroy;
    } else {
      ++stats_.oversize_callbacks;
      ::new (static_cast<void*>(s.storage)) D*(new D(std::forward<F>(fn)));
      s.invoke = &Boxed<D, Adapter<D>>::invoke;
      s.destroy = &Boxed<D, Adapter<D>>::destroy;
    }
    return idx;
  }

  Slot& slot_ref(std::uint32_t idx) {
    return slabs_[idx >> kSlabShift][idx & kSlabMask];
  }
  const Slot& slot_ref(std::uint32_t idx) const {
    return slabs_[idx >> kSlabShift][idx & kSlabMask];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  /// Reserved-block upper bound for a reserved-seq slot's next firing.
  std::uint32_t reserved_end_of(std::uint32_t idx) const;
  std::uint32_t alloc_seq() {
    VANET_ASSERT_MSG(next_seq_ < kSeqLimit,
                     "event sequence space exhausted (2^32 schedules on one "
                     "queue); use a fresh Simulator per run");
    return next_seq_++;
  }

  // 4-ary implicit heap, min at index 0, ordered by (at, seq).
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void place(std::uint32_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    slot_ref(e.slot).pos = pos;
  }
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void heap_push(const HeapEntry& e);
  void heap_remove(std::uint32_t pos);

  void do_cancel(std::uint32_t slot_idx, std::uint32_t generation);
  bool is_pending(std::uint32_t slot_idx, std::uint32_t generation) const;

  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t slot_count_ = 0;      ///< total slots across slabs
  std::uint32_t free_head_ = kNullSlot;
  std::uint32_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  /// (slot, block end) per live reserved-seq event — a handful of entries
  /// (one per CBR flow), kept out of Slot to preserve its two-line layout.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reserved_ends_;
  AllocStats stats_;
};

// ---- template definitions ---------------------------------------------------

template <typename F>
EventHandle EventQueue::schedule(SimTime at, F&& fn) {
  const std::uint32_t idx = emplace_event<OneShot>(std::forward<F>(fn));
  Slot& s = slot_ref(idx);
  s.recurring = false;
  s.reserved_seq = false;
  heap_push(HeapEntry{at, alloc_seq(), idx});
  return EventHandle{this, idx, s.generation};
}

template <typename F>
EventHandle EventQueue::schedule_recurring(SimTime first_at, F&& fn) {
  static_assert(std::is_invocable_r_v<SimTime, std::decay_t<F>, SimTime>,
                "recurring callbacks are SimTime(SimTime fired_at)");
  const std::uint32_t idx = emplace_event<Recurring>(std::forward<F>(fn));
  Slot& s = slot_ref(idx);
  s.recurring = true;
  s.reserved_seq = false;
  heap_push(HeapEntry{first_at, alloc_seq(), idx});
  return EventHandle{this, idx, s.generation};
}

template <typename F>
EventHandle EventQueue::schedule_recurring(SimTime first_at,
                                           std::uint32_t seq_base,
                                           std::uint32_t seq_count, F&& fn) {
  static_assert(std::is_invocable_r_v<SimTime, std::decay_t<F>, SimTime>,
                "recurring callbacks are SimTime(SimTime fired_at)");
  VANET_ASSERT_MSG(seq_count >= 1, "reserved-seq event needs a non-empty block");
  const std::uint32_t idx = emplace_event<Recurring>(std::forward<F>(fn));
  Slot& s = slot_ref(idx);
  s.recurring = true;
  s.reserved_seq = true;
  s.aux = seq_base + 1;  // the first firing uses seq_base itself
  reserved_ends_.push_back({idx, seq_base + seq_count});
  heap_push(HeapEntry{first_at, seq_base, idx});
  return EventHandle{this, idx, s.generation};
}

template <typename F>
EventHandle EventQueue::schedule_every(SimTime first_at, SimTime period,
                                       F&& fn) {
  VANET_ASSERT_MSG(period > SimTime::zero(),
                   "schedule_every requires a positive period");
  return schedule_recurring(
      first_at, [f = std::forward<F>(fn), period](SimTime fired_at) mutable {
        f();
        return fired_at + period;
      });
}

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->do_cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->is_pending(slot_, generation_);
}

}  // namespace vanet::core
