// Simulation time as a strong integer-microsecond type.
//
// Using an integral representation keeps event ordering exact and deterministic
// (no floating-point drift), which matters for reproducible experiments.
// A single type is used both for time points and durations, mirroring ns-3's
// `Time`; the arithmetic that makes sense for both is provided.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace vanet::core {

/// A point in simulation time or a duration, with microsecond resolution.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors.
  static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1000}; }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  /// Accessors.
  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_seconds() const { return static_cast<double>(us_) * 1e-6; }
  constexpr double as_millis() const { return static_cast<double>(us_) * 1e-3; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  /// Arithmetic.
  constexpr SimTime operator+(SimTime o) const { return SimTime{us_ + o.us_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{us_ - o.us_}; }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{us_ * k}; }
  constexpr SimTime operator*(double k) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr SimTime& operator+=(SimTime o) {
    us_ += o.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    us_ -= o.us_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

}  // namespace vanet::core
