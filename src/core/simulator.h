// The simulation driver: owns virtual time and the event queue.
//
// All model components hold a reference to one Simulator and schedule work
// relative to `now()`. There are no global singletons; tests may run several
// simulators side by side.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "core/event_queue.h"
#include "core/sim_time.h"

namespace vanet::core {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` after `delay` from now. Negative delays are clamped to now.
  template <typename F>
  EventHandle schedule(SimTime delay, F&& fn) {
    const SimTime at = delay.is_negative() ? now_ : now_ + delay;
    return queue_.schedule(at, std::forward<F>(fn));
  }

  /// Schedule `fn` at an absolute time (>= now).
  template <typename F>
  EventHandle schedule_at(SimTime at, F&& fn) {
    return queue_.schedule(at < now_ ? now_ : at, std::forward<F>(fn));
  }

  /// Recurring drift-free timer: first firing after `first_delay`, then every
  /// `period` after the previous firing, reusing one pool slot throughout.
  /// Stop it with EventHandle::cancel().
  template <typename F>
  EventHandle schedule_every(SimTime first_delay, SimTime period, F&& fn) {
    const SimTime at = first_delay.is_negative() ? now_ : now_ + first_delay;
    return queue_.schedule_every(at, period, std::forward<F>(fn));
  }

  /// Variable-period recurring timer. `fn` is SimTime(SimTime fired_at) and
  /// returns the next absolute firing time, or any negative SimTime to stop.
  template <typename F>
  EventHandle schedule_recurring(SimTime first_delay, F&& fn) {
    const SimTime at = first_delay.is_negative() ? now_ : now_ + first_delay;
    return queue_.schedule_recurring(at, std::forward<F>(fn));
  }

  /// As schedule_recurring, but at an absolute first time and drawing
  /// per-firing sequence numbers from the `seq_count`-wide block starting at
  /// `seq_base`, claimed via reserve_seq_block (equal-time FIFO rank as if
  /// every firing had been scheduled upfront).
  template <typename F>
  EventHandle schedule_recurring_at(SimTime first_at, std::uint32_t seq_base,
                                    std::uint32_t seq_count, F&& fn) {
    return queue_.schedule_recurring(first_at < now_ ? now_ : first_at,
                                     seq_base, seq_count, std::forward<F>(fn));
  }

  /// Claim `count` consecutive event sequence numbers (see EventQueue).
  std::uint32_t reserve_seq_block(std::uint32_t count) {
    return queue_.reserve_seq_block(count);
  }

  /// Run until the queue drains or `end` is reached (events at `end` included).
  void run_until(SimTime end);

  /// Run every event strictly before `end`, then advance now() to `end`.
  /// The window-barrier primitive of the sharded engine: consecutive calls
  /// with increasing `end` values dispatch exactly the events run_until(last)
  /// would, in the same (time, seq) order, but with safe pause points at each
  /// window edge where cross-shard work may be injected at time `end`.
  void run_before(SimTime end);

  /// Timestamp of the earliest pending event, or SimTime::max() when idle.
  SimTime next_event_time() const {
    return queue_.empty() ? SimTime::max() : queue_.next_time();
  }

  /// Run until the queue drains completely.
  void run();

  /// Request that the run loop stops after the current event.
  void stop() { stopped_ = true; }

  /// Install a guard polled every `every` dispatched events during run loops;
  /// it may throw (aborting the run) or call stop(). Used by the experiment
  /// engine's watchdog (wall-clock timeout, event budget). Pass a null
  /// function to remove. The check never runs mid-event, so model state stays
  /// consistent at the throw point.
  void set_abort_check(std::function<void()> fn, std::uint64_t every = 1024) {
    abort_check_ = std::move(fn);
    abort_check_every_ = every == 0 ? 1 : every;
  }

  std::uint64_t events_dispatched() const { return queue_.dispatched(); }
  std::size_t events_pending() const { return queue_.size(); }

  /// Scheduler allocation telemetry (perf harness; see EventQueue).
  const EventQueue::AllocStats& scheduler_stats() const {
    return queue_.alloc_stats();
  }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::function<void()> abort_check_;
  std::uint64_t abort_check_every_ = 1024;
  std::uint64_t abort_check_countdown_ = 0;
};

}  // namespace vanet::core
