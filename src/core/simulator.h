// The simulation driver: owns virtual time and the event queue.
//
// All model components hold a reference to one Simulator and schedule work
// relative to `now()`. There are no global singletons; tests may run several
// simulators side by side.
#pragma once

#include <functional>

#include "core/event_queue.h"
#include "core/sim_time.h"

namespace vanet::core {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` after `delay` from now. Negative delays are clamped to now.
  EventHandle schedule(SimTime delay, EventQueue::Callback fn);

  /// Schedule `fn` at an absolute time (>= now).
  EventHandle schedule_at(SimTime at, EventQueue::Callback fn);

  /// Run until the queue drains or `end` is reached (events at `end` included).
  void run_until(SimTime end);

  /// Run until the queue drains completely.
  void run();

  /// Request that the run loop stops after the current event.
  void stop() { stopped_ = true; }

  std::uint64_t events_dispatched() const { return queue_.dispatched(); }
  std::size_t events_pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
};

}  // namespace vanet::core
