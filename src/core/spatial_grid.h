// Uniform hash grid for radius queries over moving points.
//
// The wireless channel asks "who is within r of this transmitter?" once per
// transmission; a grid with cell size ~= the query radius answers that in
// O(points in the 3x3 neighborhood) instead of O(N).
//
// Point records live in a dense vector indexed by id (ids are expected to be
// small and dense — node ids are). Each slot keeps a direct pointer to its
// bucket plus its index inside it, so the per-tick update() never hashes
// unless the point crosses a cell boundary, and positions are stored inline
// in the buckets: the query's candidate scan reads (id, pos) pairs
// sequentially instead of chasing a random slot load per candidate — those
// cache misses were the hottest line of dense reception fan-out.
//
// The bucket back-pointers make the grid self-referential, so it is
// deliberately non-copyable and non-movable (its one owner, net::Network,
// holds it by value and never moves it).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/vec2.h"

namespace vanet::core {

class SpatialGrid {
 public:
  using Id = std::uint32_t;

  /// `cell_size` should be on the order of the most common query radius.
  explicit SpatialGrid(double cell_size);

  SpatialGrid(const SpatialGrid&) = delete;
  SpatialGrid& operator=(const SpatialGrid&) = delete;

  /// Insert `id` at `pos`; `id` must not already be present.
  void insert(Id id, Vec2 pos);
  /// Move `id` to `pos`; `id` must be present. No hashing unless the cell
  /// changed.
  void update(Id id, Vec2 pos);
  /// Remove `id`; `id` must be present.
  void remove(Id id);
  bool contains(Id id) const {
    return id < slots_.size() && slots_[id].present;
  }
  Vec2 position(Id id) const;

  /// Ids strictly within `radius` of `center` (excluding `exclude` if given).
  /// Results are sorted by id for determinism.
  std::vector<Id> query_radius(Vec2 center, double radius) const;
  std::vector<Id> query_radius(Vec2 center, double radius, Id exclude) const;

  /// `exclude` value meaning "exclude nothing" for query_radius_into.
  static constexpr Id kNoExclude = static_cast<Id>(-1);

  /// As query_radius, but replaces the contents of `out` instead of
  /// allocating — the hot-path form (reception fan-out runs once per frame).
  void query_radius_into(Vec2 center, double radius, Id exclude,
                         std::vector<Id>& out) const;

  std::size_t size() const { return count_; }

 private:
  using CellKey = std::int64_t;
  /// Bucket element: position inline so queries scan sequentially.
  struct Item {
    Id id = 0;
    Vec2 pos;
  };
  using Bucket = std::vector<Item>;
  struct Slot {
    Bucket* bucket = nullptr;  ///< stable: map references survive rehash
    std::uint32_t idx = 0;     ///< index of this point's Item in *bucket
    CellKey cell = 0;
    bool present = false;
  };

  CellKey key_for(Vec2 pos) const;
  /// Swap-erase slot `id`'s Item out of its bucket, fixing the moved Item's
  /// back-index.
  void detach(Id id);

  double cell_size_;
  std::unordered_map<CellKey, Bucket> cells_;
  std::vector<Slot> slots_;  ///< indexed by id
  std::size_t count_ = 0;
};

}  // namespace vanet::core
